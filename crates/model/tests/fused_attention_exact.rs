//! Fused online-softmax attention test wall.
//!
//! Two promises guard the fused path:
//!
//! 1. **Closeness** — against the materialized two-phase softmax oracle
//!    (`attend_heads_segments_into`), the fused result agrees to tight
//!    f32 tolerance for every head dim and KV length, including lengths
//!    straddling [`FUSED_TILE`] and page boundaries.
//! 2. **Bitwise invariance** — the fused arithmetic is a function of the
//!    token sequence alone: page geometry, contiguous vs paged storage,
//!    and head partitioning must not change a single bit.

use proptest::prelude::*;

use looplynx_model::attention::{
    attend_all_fused, attend_heads_fused_segments_into, attend_heads_segments_into, AttnScratch,
    FUSED_TILE,
};
use looplynx_model::kv_cache::LayerKvCache;
use looplynx_model::paged::{PagedKvArena, PagedLayerView};
use looplynx_tensor::quant::quantize_into;

/// Proptest case count — shrunk under Miri (~100× interpreter slowdown).
const CASES: u32 = if cfg!(miri) { 2 } else { 48 };

/// Deterministic pseudo-random f32s in [-1, 1).
fn arb_vec(len: usize, seed: u64) -> Vec<f32> {
    let mut state = seed.wrapping_mul(0x9E37_79B9_7F4A_7C15).max(1);
    (0..len)
        .map(|_| {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            ((state >> 11) as f32 / (1u64 << 53) as f32).mul_add(2.0, -1.0)
        })
        .collect()
}

/// Builds a single-layer paged arena with the given page size holding
/// `tokens` seeded KV pairs across `heads` heads.
fn paged_arena(
    heads: usize,
    d_head: usize,
    tokens: usize,
    page_tokens: usize,
    seed: u64,
) -> PagedKvArena {
    let pages = tokens.div_ceil(page_tokens).max(1);
    let mut arena = PagedKvArena::new(1, d_head, heads, 1, tokens.max(1), page_tokens, pages);
    let slot = arena.acquire().expect("one slot");
    assert_eq!(slot, 0);
    arena.try_reserve(slot, tokens).expect("pool sized to fit");
    let w = heads * d_head;
    for t in 0..tokens {
        let k = arb_vec(w, seed ^ (t as u64) << 1);
        let v = arb_vec(w, seed ^ (t as u64) << 1 ^ 1);
        arena.append_at(slot, 0, t, &k, &v);
    }
    arena.advance(slot, tokens);
    arena
}

/// Scalar f64 reference: identical integer score dots, exact softmax, f64
/// value mixing. The fused path must sit tight against this; the
/// materialized path differs from it by its int8 *weight* requantization
/// (a deliberate accuracy trade the fused path does not make), so it gets
/// a quantization-sized tolerance.
fn exact_oracle(
    q: &[f32],
    view: &PagedLayerView<'_>,
    heads: usize,
    d_head: usize,
    tokens: usize,
) -> Vec<f32> {
    let inv_sqrt = 1.0 / (d_head as f32).sqrt();
    let mut out = vec![0.0f32; heads * d_head];
    let mut q8 = Vec::new();
    for h in 0..heads {
        let q_scale = quantize_into(&q[h * d_head..(h + 1) * d_head], &mut q8);
        let mut scores: Vec<f32> = Vec::new();
        let mut vals: Vec<(Vec<i8>, f32)> = Vec::new();
        'walk: for seg in view.segments(h) {
            for ((k, v), (&ks, &vs)) in seg
                .keys
                .chunks_exact(d_head)
                .zip(seg.values.chunks_exact(d_head))
                .zip(seg.key_scales.iter().zip(seg.value_scales))
            {
                if scores.len() == tokens {
                    break 'walk;
                }
                let dot: i64 = q8.iter().zip(k).map(|(&a, &b)| a as i64 * b as i64).sum();
                scores.push(dot as f32 * q_scale * ks * inv_sqrt);
                vals.push((v.to_vec(), vs));
            }
        }
        assert_eq!(scores.len(), tokens, "oracle saw fewer tokens than asked");
        let m = scores
            .iter()
            .fold(f64::NEG_INFINITY, |a, &s| a.max(s as f64));
        let exps: Vec<f64> = scores.iter().map(|&s| (s as f64 - m).exp()).collect();
        let sigma: f64 = exps.iter().sum();
        let mut acc = vec![0.0f64; d_head];
        for (e, (v, vs)) in exps.iter().zip(&vals) {
            let w = e / sigma;
            for (a, &x) in acc.iter_mut().zip(v) {
                *a += w * x as f64 * *vs as f64;
            }
        }
        for (o, a) in out[h * d_head..(h + 1) * d_head].iter_mut().zip(acc) {
            *o = a as f32;
        }
    }
    out
}

fn assert_close(a: &[f32], b: &[f32], abs_tol: f32, what: &str) {
    assert_eq!(a.len(), b.len());
    for (i, (&x, &y)) in a.iter().zip(b).enumerate() {
        let tol = abs_tol.max(abs_tol * y.abs());
        assert!((x - y).abs() <= tol, "{what}: element {i} got={x} want={y}");
    }
}

fn assert_bits_equal(a: &[f32], b: &[f32], what: &str) {
    assert_eq!(a.len(), b.len());
    for (i, (&x, &y)) in a.iter().zip(b).enumerate() {
        assert!(
            x.to_bits() == y.to_bits(),
            "{what}: element {i} {x} vs {y} (bits differ)"
        );
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(CASES))]

    /// Fused matches the materialized oracle over paged storage for every
    /// (head dim, KV length, page size) combination — lengths run past
    /// the tile width so multi-tile rescaling is exercised.
    #[test]
    fn fused_close_to_materialized_over_pages(
        d_head in prop::sample::select(vec![2usize, 4, 8, 16]),
        heads in 1usize..4,
        tokens in 1usize..150,
        page_tokens in prop::sample::select(vec![3usize, 4, 16, 64]),
        seed in any::<u64>(),
    ) {
        let arena = paged_arena(heads, d_head, tokens, page_tokens, seed);
        let view = arena.layer_view(0, 0);
        let q = arb_vec(heads * d_head, seed ^ 0xABCD);
        let mut scratch = AttnScratch::new();

        let exact = exact_oracle(&q, &view, heads, d_head, tokens);
        let mut fused = Vec::new();
        attend_heads_fused_segments_into(
            &q, |h| view.segments(h), 0..heads, 0, d_head, tokens, &mut scratch, &mut fused,
        );
        // Fused keeps f32 softmax weights, so it must sit tight against
        // the exact reference…
        assert_close(&fused, &exact, 1e-3, "paged fused vs exact softmax");
        // …while the materialized path's int8 weight requantization puts
        // it within quantization noise of the same reference.
        let mut materialized = Vec::new();
        attend_heads_segments_into(
            &q, |h| view.segments(h), 0..heads, 0, d_head, tokens, &mut scratch, &mut materialized,
        );
        assert_close(&materialized, &exact, 5e-2, "materialized vs exact softmax");
    }

    /// Page geometry must not change the fused output bitwise: the same
    /// token sequence stored under different page sizes (and in a
    /// contiguous cache) gives identical bits.
    #[test]
    fn fused_bitwise_invariant_across_page_geometry(
        d_head in prop::sample::select(vec![2usize, 4, 8]),
        heads in 1usize..3,
        tokens in 1usize..100,
        seed in any::<u64>(),
    ) {
        let q = arb_vec(heads * d_head, seed ^ 0xABCD);
        let mut scratch = AttnScratch::new();
        let mut outputs: Vec<Vec<f32>> = Vec::new();

        for page_tokens in [3usize, 7, 64] {
            let arena = paged_arena(heads, d_head, tokens, page_tokens, seed);
            let view = arena.layer_view(0, 0);
            let mut out = Vec::new();
            attend_heads_fused_segments_into(
                &q, |h| view.segments(h), 0..heads, 0, d_head, tokens, &mut scratch, &mut out,
            );
            outputs.push(out);
        }

        // contiguous cache as a fourth geometry
        let mut cache = LayerKvCache::new(d_head);
        let w = heads * d_head;
        for t in 0..tokens {
            cache.append(
                &arb_vec(w, seed ^ (t as u64) << 1),
                &arb_vec(w, seed ^ (t as u64) << 1 ^ 1),
            );
        }
        outputs.push(attend_all_fused(&q, &cache, heads, d_head, tokens));

        for other in &outputs[1..] {
            assert_bits_equal(&outputs[0], other, "page-geometry invariance");
        }
    }

    /// Splitting the heads across "nodes" (head ranges with a cache
    /// offset) and concatenating reproduces the full-width fused result
    /// bitwise — the property the ring engine relies on.
    #[test]
    fn fused_bitwise_invariant_across_head_partition(
        d_head in prop::sample::select(vec![2usize, 4, 8]),
        tokens in 1usize..80,
        seed in any::<u64>(),
    ) {
        let heads = 4usize;
        let arena = paged_arena(heads, d_head, tokens, 16, seed);
        let view = arena.layer_view(0, 0);
        let q = arb_vec(heads * d_head, seed ^ 0xABCD);
        let mut scratch = AttnScratch::new();

        let mut full = Vec::new();
        attend_heads_fused_segments_into(
            &q, |h| view.segments(h), 0..heads, 0, d_head, tokens, &mut scratch, &mut full,
        );

        for split in [1usize, 2, 3] {
            let mut stitched = Vec::new();
            for range in [0..split, split..heads] {
                let mut part = Vec::new();
                attend_heads_fused_segments_into(
                    &q[range.start * d_head..range.end * d_head],
                    |h| view.segments(h),
                    range.clone(),
                    0,
                    d_head,
                    tokens,
                    &mut scratch,
                    &mut part,
                );
                stitched.extend_from_slice(&part);
            }
            assert_bits_equal(&full, &stitched, "head-partition invariance");
        }
    }
}

/// Exact tile-boundary lengths: one element under, at, and over each of
/// the first two [`FUSED_TILE`] multiples.
#[test]
fn fused_handles_tile_boundaries() {
    let (heads, d_head, seed) = (2usize, 8usize, 0xF00D_u64);
    for tokens in [
        1,
        FUSED_TILE - 1,
        FUSED_TILE,
        FUSED_TILE + 1,
        2 * FUSED_TILE,
        2 * FUSED_TILE + 1,
    ] {
        let arena = paged_arena(heads, d_head, tokens, 16, seed);
        let view = arena.layer_view(0, 0);
        let q = arb_vec(heads * d_head, seed ^ 0xABCD);
        let mut scratch = AttnScratch::new();
        let mut fused = Vec::new();
        attend_heads_fused_segments_into(
            &q,
            |h| view.segments(h),
            0..heads,
            0,
            d_head,
            tokens,
            &mut scratch,
            &mut fused,
        );
        let exact = exact_oracle(&q, &view, heads, d_head, tokens);
        assert_close(&fused, &exact, 1e-3, &format!("tile boundary at {tokens}"));
    }
}
