//! Layer normalization and residual connections.
//!
//! These are the paper's "critical path operators — those between each
//! linear layer computation and MHA computation" (Section III-C). They are
//! computed in f32 (the accelerator dedicates a fused LN&Res kernel to
//! them); quantization happens after, when results re-enter an int8 kernel.

use serde::{Deserialize, Serialize};

use crate::error::ShapeError;

/// Learned layer-norm parameters.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct LayerNormParams {
    /// Per-element scale γ.
    pub gamma: Vec<f32>,
    /// Per-element shift β.
    pub beta: Vec<f32>,
    /// Numerical-stability epsilon.
    pub eps: f32,
}

impl LayerNormParams {
    /// Identity normalization (γ=1, β=0) over `dim` elements.
    pub fn identity(dim: usize) -> Self {
        LayerNormParams {
            gamma: vec![1.0; dim],
            beta: vec![0.0; dim],
            eps: 1e-5,
        }
    }

    /// Creates parameters.
    ///
    /// # Errors
    ///
    /// Returns [`ShapeError`] if `gamma` and `beta` lengths differ.
    pub fn new(gamma: Vec<f32>, beta: Vec<f32>, eps: f32) -> Result<Self, ShapeError> {
        if gamma.len() != beta.len() {
            return Err(ShapeError::new(
                "layernorm params",
                (gamma.len(), 1),
                (beta.len(), 1),
            ));
        }
        Ok(LayerNormParams { gamma, beta, eps })
    }

    /// Normalized dimension.
    pub fn dim(&self) -> usize {
        self.gamma.len()
    }
}

/// Applies layer normalization:
/// `y = γ · (x − mean) / sqrt(var + eps) + β`.
///
/// The three sequential passes (mean, variance, normalize) are what make the
/// un-parallelized operator expensive on the critical path — the fused
/// LN&Res kernel's job is to widen and overlap them.
///
/// # Panics
///
/// Panics if `x.len() != params.dim()`.
pub fn layernorm(x: &[f32], params: &LayerNormParams) -> Vec<f32> {
    let mut out = Vec::new();
    layernorm_into(x, params, &mut out);
    out
}

/// [`layernorm`] writing into a caller-provided buffer (cleared and
/// resized) — identical operations in identical order, no allocation on
/// the steady-state path.
///
/// # Panics
///
/// Panics if `x.len() != params.dim()`.
pub fn layernorm_into(x: &[f32], params: &LayerNormParams, out: &mut Vec<f32>) {
    assert_eq!(x.len(), params.dim(), "layernorm dimension mismatch");
    let n = x.len() as f32;
    let mean = x.iter().sum::<f32>() / n;
    let var = x.iter().map(|&v| (v - mean) * (v - mean)).sum::<f32>() / n;
    let inv = 1.0 / (var + params.eps).sqrt();
    out.clear();
    out.extend(
        x.iter()
            .zip(params.gamma.iter().zip(&params.beta))
            .map(|(&v, (&g, &b))| g * (v - mean) * inv + b),
    );
}

/// Residual connection `y = x + r`.
///
/// # Panics
///
/// Panics if lengths differ.
pub fn residual_add(x: &[f32], r: &[f32]) -> Vec<f32> {
    let mut out = Vec::new();
    residual_add_into(x, r, &mut out);
    out
}

/// [`residual_add`] writing into a caller-provided buffer (cleared and
/// resized).
///
/// # Panics
///
/// Panics if lengths differ.
pub fn residual_add_into(x: &[f32], r: &[f32], out: &mut Vec<f32>) {
    assert_eq!(x.len(), r.len(), "residual length mismatch");
    out.clear();
    out.extend(x.iter().zip(r).map(|(a, b)| a + b));
}

/// Fused residual + layernorm (`layernorm(x + r)`), the combined operation
/// the Fused LN&Res kernel performs with overlapped execution.
///
/// # Panics
///
/// Panics if lengths differ.
pub fn residual_layernorm(x: &[f32], r: &[f32], params: &LayerNormParams) -> Vec<f32> {
    layernorm(&residual_add(x, r), params)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn layernorm_zero_mean_unit_var() {
        let x = vec![1.0f32, 2.0, 3.0, 4.0];
        let y = layernorm(&x, &LayerNormParams::identity(4));
        let mean: f32 = y.iter().sum::<f32>() / 4.0;
        let var: f32 = y.iter().map(|v| (v - mean) * (v - mean)).sum::<f32>() / 4.0;
        assert!(mean.abs() < 1e-5);
        assert!((var - 1.0).abs() < 1e-3);
    }

    #[test]
    fn layernorm_applies_affine() {
        let params = LayerNormParams::new(vec![2.0, 2.0], vec![1.0, 1.0], 1e-5).unwrap();
        let y = layernorm(&[-1.0, 1.0], &params);
        // normalized to ±1, then *2 + 1
        assert!((y[0] + 1.0).abs() < 1e-3);
        assert!((y[1] - 3.0).abs() < 1e-3);
    }

    #[test]
    fn layernorm_constant_input_maps_to_beta() {
        let params = LayerNormParams::new(vec![1.0; 3], vec![0.5; 3], 1e-5).unwrap();
        let y = layernorm(&[7.0, 7.0, 7.0], &params);
        for v in y {
            assert!((v - 0.5).abs() < 1e-3);
        }
    }

    #[test]
    fn residual_is_elementwise_sum() {
        assert_eq!(residual_add(&[1.0, 2.0], &[0.5, -2.0]), vec![1.5, 0.0]);
    }

    #[test]
    fn fused_equals_sequential() {
        let params = LayerNormParams::identity(4);
        let x = [0.1f32, 0.4, -0.3, 0.9];
        let r = [1.0f32, -1.0, 0.5, 0.25];
        let fused = residual_layernorm(&x, &r, &params);
        let seq = layernorm(&residual_add(&x, &r), &params);
        assert_eq!(fused, seq);
    }

    #[test]
    #[should_panic(expected = "dimension mismatch")]
    fn dimension_mismatch_panics() {
        let _ = layernorm(&[1.0], &LayerNormParams::identity(2));
    }

    #[test]
    fn params_validate_lengths() {
        assert!(LayerNormParams::new(vec![1.0], vec![0.0, 0.0], 1e-5).is_err());
        assert_eq!(LayerNormParams::identity(8).dim(), 8);
    }
}
