//! Chat-style multi-request serving on the LoopLynx ring.
//!
//! The paper measures one generation at a time; a deployed accelerator
//! faces a *stream* of chat requests. This example offers a Poisson
//! workload with a mixed `[prefill : decode]` shape to a 2-node ring and
//! compares two schedulers that share the same cycle-accurate cost model:
//!
//! * **sequential** — one request start-to-finish at a time;
//! * **continuous batching** — requests join the decode loop between
//!   iterations and share every weight pass (the serving-side twin of the
//!   batched-prefill extension).
//!
//! ```text
//! cargo run --release --example serving
//! ```

use looplynx::core::{ArchConfig, LoopLynx};
use looplynx::model::ModelConfig;
use looplynx::serve::{serve_continuous, serve_sequential, ArrivalProcess, ServeConfig};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let model = ModelConfig::gpt2_medium();
    let engine = LoopLynx::new(model, ArchConfig::builder().nodes(2).build()?)?;

    // A chat mix: short questions with mid-size answers, long prompts with
    // short answers, short prompts with long answers.
    let shapes = [(32usize, 32usize), (96, 16), (16, 64)];
    let requests = 24;

    println!("— 24 chat requests on a 2-node ring, Poisson arrivals —\n");
    println!(
        "{:>6} {:>10} {:>10} {:>6} {:>16} {:>10}",
        "req/s", "seq tok/s", "cb tok/s", "gain", "TTFT p50/p99", "E2E p95"
    );
    for rate in [2.0, 6.0, 12.0, 24.0] {
        let workload = ArrivalProcess::Poisson {
            rate_per_s: rate,
            seed: 42,
        }
        .workload(requests, &shapes);
        let serial = serve_sequential(&engine, &workload);
        let batched = serve_continuous(&engine, &workload, &ServeConfig::default());
        println!(
            "{:>6.0} {:>10.1} {:>10.1} {:>5.2}x {:>8.0} {:>6.0}ms {:>8.0}ms",
            rate,
            serial.tokens_per_second(),
            batched.tokens_per_second(),
            batched.tokens_per_second() / serial.tokens_per_second(),
            batched.ttft_ms.p50().expect("non-empty"),
            batched.ttft_ms.p99().expect("non-empty"),
            batched.e2e_ms.p95().expect("non-empty"),
        );
    }

    // A bursty spike: everyone hits enter at once, twice.
    println!("\n— bursty spike (2 bursts of 8 requests) under continuous batching —\n");
    let spike = ArrivalProcess::Bursty {
        bursts_per_s: 1.0,
        burst_size: 8,
        seed: 7,
    }
    .workload(16, &shapes);
    let report = serve_continuous(&engine, &spike, &ServeConfig::default());
    println!("{report}");

    println!("\ncontinuous batching keeps the weight stream shared across every");
    println!("resident request, so saturated throughput rises without touching");
    println!("per-request decode latency at low load.");
    Ok(())
}
