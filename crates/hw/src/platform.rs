//! Platform comparison constants (paper Table I).

use std::fmt;

use serde::{Deserialize, Serialize};

/// One row of the paper's platform-comparison table.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PlatformSpec {
    /// Platform name.
    pub name: String,
    /// Process node, e.g. `"7nm"`.
    pub process: String,
    /// Clock description, e.g. `"1065MHz"` or `"200-300MHz"`.
    pub frequency: String,
    /// Computing-unit description.
    pub computing_units: String,
    /// Peak memory bandwidth in GB/s.
    pub bandwidth_gbps: f64,
    /// Thermal design power in watts.
    pub tdp_watts: f64,
}

impl PlatformSpec {
    /// Nvidia A100 (Table I row 1).
    pub fn nvidia_a100() -> Self {
        PlatformSpec {
            name: "Nvidia A100".into(),
            process: "7nm".into(),
            frequency: "1065MHz".into(),
            computing_units: "432 Tensor Cores".into(),
            bandwidth_gbps: 1935.0,
            tdp_watts: 300.0,
        }
    }

    /// Xilinx Alveo U280 (Table I row 2).
    pub fn alveo_u280() -> Self {
        PlatformSpec {
            name: "Xilinx Alveo U280".into(),
            process: "16nm".into(),
            frequency: "200-300MHz".into(),
            computing_units: "9024 DSPs".into(),
            bandwidth_gbps: 460.0,
            tdp_watts: 215.0,
        }
    }

    /// Xilinx Alveo U50 (Table I row 3).
    pub fn alveo_u50() -> Self {
        PlatformSpec {
            name: "Xilinx Alveo U50".into(),
            process: "16nm".into(),
            frequency: "200-300MHz".into(),
            computing_units: "5952 DSPs".into(),
            bandwidth_gbps: 201.0,
            tdp_watts: 75.0,
        }
    }

    /// All Table I rows in paper order.
    pub fn table1() -> Vec<PlatformSpec> {
        vec![
            PlatformSpec::nvidia_a100(),
            PlatformSpec::alveo_u280(),
            PlatformSpec::alveo_u50(),
        ]
    }
}

impl fmt::Display for PlatformSpec {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{:<18} {:<8} {:<12} {:<18} {:>8.0} GB/s {:>6.0} W",
            self.name,
            self.process,
            self.frequency,
            self.computing_units,
            self.bandwidth_gbps,
            self.tdp_watts
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table1_has_three_rows_in_order() {
        let t = PlatformSpec::table1();
        assert_eq!(t.len(), 3);
        assert_eq!(t[0].name, "Nvidia A100");
        assert_eq!(t[1].name, "Xilinx Alveo U280");
        assert_eq!(t[2].name, "Xilinx Alveo U50");
    }

    #[test]
    fn paper_constants() {
        let a100 = PlatformSpec::nvidia_a100();
        assert_eq!(a100.bandwidth_gbps, 1935.0);
        assert_eq!(a100.tdp_watts, 300.0);
        let u50 = PlatformSpec::alveo_u50();
        assert_eq!(u50.bandwidth_gbps, 201.0);
        assert_eq!(u50.tdp_watts, 75.0);
        let u280 = PlatformSpec::alveo_u280();
        assert_eq!(u280.bandwidth_gbps, 460.0);
        assert_eq!(u280.tdp_watts, 215.0);
    }

    #[test]
    fn bandwidth_ordering_favours_gpu() {
        let t = PlatformSpec::table1();
        assert!(t[0].bandwidth_gbps > t[1].bandwidth_gbps);
        assert!(t[1].bandwidth_gbps > t[2].bandwidth_gbps);
    }

    #[test]
    fn display_renders_row() {
        let s = PlatformSpec::nvidia_a100().to_string();
        assert!(s.contains("A100"));
        assert!(s.contains("1935"));
    }
}
