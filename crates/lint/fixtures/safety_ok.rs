// Positive fixture for `safety_comment`: every unsafe is documented.

fn documented(p: &u8) -> u8 {
    // SAFETY: the reference guarantees the pointer is valid and aligned.
    unsafe { *(p as *const u8) }
}

fn trailing(p: &u8) -> u8 {
    unsafe { *(p as *const u8) } // SAFETY: derived from a live reference.
}

/// Reads one byte.
///
/// # Safety
///
/// `p` must point to a valid, initialized byte.
#[inline]
#[allow(dead_code)]
unsafe fn documented_fn(p: *const u8) -> u8 {
    // SAFETY: the function contract requires `p` valid (see # Safety).
    unsafe { *p }
}
