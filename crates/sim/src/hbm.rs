//! High-bandwidth-memory channel model.
//!
//! The paper's accelerator stores weights and the KV cache in off-chip HBM
//! and measures inference with "cycle-accurate simulation, fully accounting
//! for the per-channel HBM bandwidth (peak 8.49 GB/s)". Each MP slice of the
//! fused matrix-processing kernel is fed by one HBM channel through a DMA
//! engine running in *burst mode*, loading concatenated `n_group × 8-bit`
//! datapacks (`n_group = 32`, i.e. 32-byte datapacks).
//!
//! This module models a channel as a peak byte rate plus a fixed
//! per-burst overhead, which yields the usual burst-length efficiency curve:
//! long bursts approach peak bandwidth, short bursts are dominated by
//! protocol overhead.

use std::fmt;

use serde::{Deserialize, Serialize};

use crate::time::{Cycles, Frequency};

/// One HBM (pseudo-)channel.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct HbmChannel {
    peak_bytes_per_cycle: f64,
    burst_overhead: Cycles,
    max_burst_bytes: usize,
}

impl HbmChannel {
    /// Creates a channel from its peak bandwidth in bytes/cycle.
    ///
    /// # Panics
    ///
    /// Panics if `peak_bytes_per_cycle` is not strictly positive or
    /// `max_burst_bytes` is zero.
    pub fn new(peak_bytes_per_cycle: f64, burst_overhead: Cycles, max_burst_bytes: usize) -> Self {
        assert!(
            peak_bytes_per_cycle.is_finite() && peak_bytes_per_cycle > 0.0,
            "peak bandwidth must be positive"
        );
        assert!(max_burst_bytes > 0, "burst size must be positive");
        HbmChannel {
            peak_bytes_per_cycle,
            burst_overhead,
            max_burst_bytes,
        }
    }

    /// Creates the paper's channel: peak 8.49 GB/s on the given kernel clock.
    ///
    /// At 285 MHz this is ≈29.8 bytes/cycle — slightly less than one
    /// 32-byte datapack per cycle, which is why the MAC array (consuming
    /// 32 B/cycle) is memory-bound on a single channel.
    pub fn paper_channel(clock: Frequency) -> Self {
        HbmChannel::new(clock.bytes_per_cycle(8.49e9), Cycles::new(8), 4096)
    }

    /// Peak bandwidth in bytes per cycle.
    pub fn peak_bytes_per_cycle(&self) -> f64 {
        self.peak_bytes_per_cycle
    }

    /// Fixed overhead charged once per burst (address phase, row activation).
    pub fn burst_overhead(&self) -> Cycles {
        self.burst_overhead
    }

    /// Largest contiguous burst the DMA engine issues.
    pub fn max_burst_bytes(&self) -> usize {
        self.max_burst_bytes
    }

    /// Cycles to transfer `bytes` using bursts of `burst_bytes` each.
    ///
    /// The transfer is split into `ceil(bytes / burst)` bursts; each pays the
    /// fixed overhead once and then streams at peak bandwidth. Consecutive
    /// bursts are pipelined on the data bus, so overhead of burst *i+1*
    /// overlaps the tail of burst *i* only up to the bus occupancy — we model
    /// the conservative (non-overlapped) case, which matches AXI read
    /// channels without outstanding transactions and keeps the model simple
    /// and monotone.
    ///
    /// # Panics
    ///
    /// Panics if `burst_bytes` is zero or exceeds [`max_burst_bytes`].
    ///
    /// [`max_burst_bytes`]: HbmChannel::max_burst_bytes
    pub fn transfer_cycles(&self, bytes: usize, burst_bytes: usize) -> Cycles {
        assert!(burst_bytes > 0, "burst length must be positive");
        assert!(
            burst_bytes <= self.max_burst_bytes,
            "burst {burst_bytes} exceeds channel max {}",
            self.max_burst_bytes
        );
        if bytes == 0 {
            return Cycles::ZERO;
        }
        let bursts = bytes.div_ceil(burst_bytes) as u64;
        let stream = Cycles::from_f64_ceil(bytes as f64 / self.peak_bytes_per_cycle);
        stream + self.burst_overhead * bursts
    }

    /// Cycles to transfer `bytes` at maximum burst length.
    pub fn transfer_cycles_max_burst(&self, bytes: usize) -> Cycles {
        self.transfer_cycles(bytes, self.max_burst_bytes)
    }

    /// Effective bandwidth (bytes/cycle) achieved for the given burst length.
    pub fn effective_bandwidth(&self, burst_bytes: usize) -> f64 {
        let cycles = self.transfer_cycles(burst_bytes, burst_bytes);
        burst_bytes as f64 / cycles.as_f64()
    }

    /// Burst efficiency in `[0, 1]`: effective / peak bandwidth.
    pub fn burst_efficiency(&self, burst_bytes: usize) -> f64 {
        self.effective_bandwidth(burst_bytes) / self.peak_bytes_per_cycle
    }
}

impl fmt::Display for HbmChannel {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "HBM channel {:.2} B/cyc peak, {} per burst",
            self.peak_bytes_per_cycle, self.burst_overhead
        )
    }
}

/// A set of identical HBM channels with a named allocation.
///
/// The fused MP kernel owns `n_channel` slices, each wired to its own
/// channel; the fused MHA kernel owns separate channels for the key cache
/// and value cache. [`HbmSubsystem`] tracks how many channels each consumer
/// was granted and answers aggregate-transfer questions.
///
/// # Example
///
/// ```
/// use looplynx_sim::hbm::{HbmChannel, HbmSubsystem};
/// use looplynx_sim::time::{Cycles, Frequency};
///
/// let ch = HbmChannel::paper_channel(Frequency::from_mhz(285.0));
/// let mut hbm = HbmSubsystem::new(ch, 32);
/// hbm.allocate("mp", 8).unwrap();
/// hbm.allocate("kv", 4).unwrap();
/// assert_eq!(hbm.remaining(), 20);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct HbmSubsystem {
    channel: HbmChannel,
    total_channels: usize,
    allocations: Vec<(String, usize)>,
}

/// Error returned when an HBM allocation cannot be satisfied.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AllocationError {
    requested: usize,
    available: usize,
    consumer: String,
}

impl fmt::Display for AllocationError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "cannot allocate {} HBM channels to `{}`: only {} available",
            self.requested, self.consumer, self.available
        )
    }
}

impl std::error::Error for AllocationError {}

impl HbmSubsystem {
    /// Creates a subsystem of `total_channels` identical channels.
    ///
    /// # Panics
    ///
    /// Panics if `total_channels` is zero.
    pub fn new(channel: HbmChannel, total_channels: usize) -> Self {
        assert!(total_channels > 0, "need at least one channel");
        HbmSubsystem {
            channel,
            total_channels,
            allocations: Vec::new(),
        }
    }

    /// The per-channel model.
    pub fn channel(&self) -> &HbmChannel {
        &self.channel
    }

    /// Total channels in the subsystem.
    pub fn total_channels(&self) -> usize {
        self.total_channels
    }

    /// Channels not yet allocated.
    pub fn remaining(&self) -> usize {
        self.total_channels - self.allocations.iter().map(|(_, n)| n).sum::<usize>()
    }

    /// Grants `count` channels to `consumer`.
    ///
    /// # Errors
    ///
    /// Returns [`AllocationError`] if fewer than `count` channels remain.
    pub fn allocate(
        &mut self,
        consumer: impl Into<String>,
        count: usize,
    ) -> Result<(), AllocationError> {
        let consumer = consumer.into();
        if count > self.remaining() {
            return Err(AllocationError {
                requested: count,
                available: self.remaining(),
                consumer,
            });
        }
        self.allocations.push((consumer, count));
        Ok(())
    }

    /// Channels granted to `consumer` (0 if none).
    pub fn allocated_to(&self, consumer: &str) -> usize {
        self.allocations
            .iter()
            .filter(|(c, _)| c == consumer)
            .map(|(_, n)| n)
            .sum()
    }

    /// Cycles for `consumer` to stream `bytes` split evenly over its
    /// channels at the given burst length.
    ///
    /// # Panics
    ///
    /// Panics if `consumer` holds no channels.
    pub fn parallel_transfer_cycles(
        &self,
        consumer: &str,
        bytes: usize,
        burst_bytes: usize,
    ) -> Cycles {
        let n = self.allocated_to(consumer);
        assert!(n > 0, "consumer `{consumer}` holds no HBM channels");
        let per_channel = bytes.div_ceil(n);
        self.channel.transfer_cycles(per_channel, burst_bytes)
    }

    /// Aggregate peak bandwidth (bytes/cycle) of all channels held by
    /// `consumer`.
    pub fn aggregate_peak(&self, consumer: &str) -> f64 {
        self.allocated_to(consumer) as f64 * self.channel.peak_bytes_per_cycle
    }
}

impl fmt::Display for HbmSubsystem {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "HBM x{} ({} free), {}",
            self.total_channels,
            self.remaining(),
            self.channel
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn clock() -> Frequency {
        Frequency::from_mhz(285.0)
    }

    #[test]
    fn paper_channel_is_just_under_a_datapack_per_cycle() {
        let ch = HbmChannel::paper_channel(clock());
        let bpc = ch.peak_bytes_per_cycle();
        assert!(bpc > 29.0 && bpc < 32.0);
    }

    #[test]
    fn transfer_scales_linearly_at_large_sizes() {
        let ch = HbmChannel::paper_channel(clock());
        let one = ch.transfer_cycles_max_burst(1 << 20).as_f64();
        let two = ch.transfer_cycles_max_burst(2 << 20).as_f64();
        let ratio = two / one;
        assert!((ratio - 2.0).abs() < 0.01, "ratio {ratio}");
    }

    #[test]
    fn longer_bursts_are_more_efficient() {
        let ch = HbmChannel::paper_channel(clock());
        let short = ch.burst_efficiency(64);
        let long = ch.burst_efficiency(4096);
        assert!(long > short);
        assert!(long > 0.9, "long-burst efficiency {long}");
        assert!(short < 0.2, "short-burst efficiency {short}");
    }

    #[test]
    fn zero_bytes_costs_nothing() {
        let ch = HbmChannel::paper_channel(clock());
        assert_eq!(ch.transfer_cycles(0, 4096), Cycles::ZERO);
    }

    #[test]
    #[should_panic(expected = "exceeds channel max")]
    fn oversized_burst_rejected() {
        let ch = HbmChannel::paper_channel(clock());
        let _ = ch.transfer_cycles(1 << 20, 1 << 20);
    }

    #[test]
    fn transfer_is_monotone_in_bytes() {
        let ch = HbmChannel::paper_channel(clock());
        let mut prev = Cycles::ZERO;
        for kb in 1..64 {
            let t = ch.transfer_cycles_max_burst(kb * 1024);
            assert!(t >= prev);
            prev = t;
        }
    }

    #[test]
    fn subsystem_allocation_bookkeeping() {
        let mut hbm = HbmSubsystem::new(HbmChannel::paper_channel(clock()), 16);
        hbm.allocate("mp", 8).unwrap();
        hbm.allocate("k", 2).unwrap();
        hbm.allocate("v", 2).unwrap();
        assert_eq!(hbm.allocated_to("mp"), 8);
        assert_eq!(hbm.remaining(), 4);
        let err = hbm.allocate("extra", 8).unwrap_err();
        assert!(err.to_string().contains("only 4 available"));
    }

    #[test]
    fn parallel_transfer_divides_by_channel_count() {
        let mut hbm = HbmSubsystem::new(HbmChannel::paper_channel(clock()), 16);
        hbm.allocate("mp", 8).unwrap();
        hbm.allocate("solo", 1).unwrap();
        let bytes = 8 << 20;
        let eight = hbm.parallel_transfer_cycles("mp", bytes, 4096).as_f64();
        let one = hbm.parallel_transfer_cycles("solo", bytes, 4096).as_f64();
        let ratio = one / eight;
        assert!((ratio - 8.0).abs() < 0.05, "ratio {ratio}");
    }

    #[test]
    #[should_panic(expected = "holds no HBM channels")]
    fn unallocated_consumer_panics() {
        let hbm = HbmSubsystem::new(HbmChannel::paper_channel(clock()), 4);
        let _ = hbm.parallel_transfer_cycles("ghost", 1024, 1024);
    }

    #[test]
    fn display_is_informative() {
        let hbm = HbmSubsystem::new(HbmChannel::paper_channel(clock()), 4);
        let s = hbm.to_string();
        assert!(s.contains("x4"));
        assert!(s.contains("B/cyc"));
    }
}
