//! Property-based tests for the platform substrate.

use proptest::prelude::*;

use looplynx_hw::device::FpgaDevice;
use looplynx_hw::floorplan::FloorPlan;
use looplynx_hw::power::{FpgaPowerModel, GpuPowerModel};
use looplynx_hw::resources::{NodeResourceModel, ResourceVector};

fn arb_vec() -> impl Strategy<Value = ResourceVector> {
    (
        0.0f64..5000.0,
        0.0f64..1e6,
        0.0f64..2e6,
        0.0f64..2000.0,
        0.0f64..500.0,
    )
        .prop_map(|(d, l, f, b, u)| ResourceVector::new(d, l, f, b, u))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Resource addition is commutative and compatible with fits_within.
    #[test]
    fn resource_algebra(a in arb_vec(), b in arb_vec()) {
        let ab = a + b;
        let ba = b + a;
        prop_assert_eq!(ab, ba);
        prop_assert!(a.fits_within(&ab));
        prop_assert!(b.fits_within(&ab));
        // scaling by 1 is identity
        prop_assert_eq!(a * 1.0, a);
    }

    /// Utilization fractions are consistent with fits_within.
    #[test]
    fn utilization_consistent(used in arb_vec(), extra in arb_vec()) {
        let budget = used + extra + ResourceVector::new(1.0, 1.0, 1.0, 1.0, 1.0);
        prop_assert!(used.fits_within(&budget));
        prop_assert!(used.max_utilization_of(&budget) <= 1.0);
        let over = budget + ResourceVector::new(1.0, 0.0, 0.0, 0.0, 0.0);
        prop_assert!(!over.fits_within(&budget));
    }

    /// The ring total is monotone in ring size and per-node resources are
    /// monotone non-increasing (shared buffer shrinks).
    #[test]
    fn ring_total_monotone(n in 1usize..16) {
        let m = NodeResourceModel::paper();
        let a = m.ring_total(n);
        let b = m.ring_total(n + 1);
        prop_assert!(b.dsp >= a.dsp);
        prop_assert!(b.lut >= a.lut);
        prop_assert!(m.per_node(n + 1).bram <= m.per_node(n).bram);
    }

    /// Any ring of paper nodes places successfully on U50s, one per SLR,
    /// and uses ceil(n/2) devices.
    #[test]
    fn paper_nodes_always_place(n in 1usize..12) {
        let m = NodeResourceModel::paper();
        let plan = FloorPlan::place(&FpgaDevice::alveo_u50(), m.per_node(n), n)
            .expect("paper node fits an SLR");
        prop_assert_eq!(plan.devices(), n.div_ceil(2));
        prop_assert_eq!(plan.nodes().len(), n);
        for node in plan.nodes() {
            prop_assert!(node.slr_utilization <= 1.0);
        }
    }

    /// FPGA power is monotone in activity and node count, and always at
    /// least the static floor.
    #[test]
    fn fpga_power_monotone(activity in 0.0f64..=1.0, nodes in 1usize..8) {
        let p = FpgaPowerModel::paper();
        let m = NodeResourceModel::paper();
        let node = m.per_node(nodes);
        let devices = nodes.div_ceil(2);
        let w = p.total_watts(devices, &node, nodes, 14, activity);
        prop_assert!(w >= devices as f64 * p.static_watts_per_device - 1e-9);
        let w_more = p.total_watts(devices, &node, nodes, 14, (activity + 0.1).min(1.0));
        prop_assert!(w_more >= w);
    }

    /// GPU power interpolates monotonically between idle and peak.
    #[test]
    fn gpu_power_monotone(a in 0.0f64..=1.0, b in 0.0f64..=1.0) {
        let g = GpuPowerModel::a100();
        let (lo, hi) = if a <= b { (a, b) } else { (b, a) };
        prop_assert!(g.watts_at(lo) <= g.watts_at(hi));
        prop_assert!(g.watts_at(lo) >= g.idle_watts);
        prop_assert!(g.watts_at(hi) <= g.peak_watts);
    }
}
