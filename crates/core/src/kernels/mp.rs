//! The fused matrix-processing (MP) kernel.
//!
//! Paper Fig. 6(a): DMA engines → matrix-processing unit (MPU) → packer →
//! quantization unit → router, all decoupled by FIFOs. The MPU holds
//! `mp_channels` MP slices, each fed by its own HBM channel and containing
//! `n_group` MAC units; a *block* is the `n_group` weight rows one slice
//! processes concurrently (each MAC accumulates one output row over `cols`
//! cycles while the DMA streams `n_group × cols` bytes).
//!
//! The kernel is memory-bound by design: one channel delivers ≈29.8 B/cycle
//! against the 32 B/cycle the MACs could consume, so block time is the DMA
//! time and the MAC array trails slightly behind — exactly the behaviour
//! the pipeline recurrence produces.
//!
//! Because every linear layer in the model runs on this one kernel (the
//! scheduler reuses it temporally), its activation count per token is
//! `4 × layers + 1` (QKV, out-proj, FC1, FC2 per block, plus the LM head).

use serde::{Deserialize, Serialize};

use looplynx_sim::pipeline::{PipelineSpec, StageSpec};
use looplynx_sim::time::Cycles;
use looplynx_tensor::linear::QuantLinear;
use looplynx_tensor::quant::QuantizedVector;

use crate::config::ArchConfig;
use crate::kernels::{KernelTiming, Segment};

/// One activation of the fused MP kernel: a `rows × cols` GEMV shard on
/// this node, optionally followed by a ring all-gather of the produced
/// sub-vector.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct MpJob {
    /// Output rows computed on this node (already sharded).
    pub rows: usize,
    /// Input dimension (dot-product length).
    pub cols: usize,
    /// Bytes of this node's output sub-vector that must be all-gathered
    /// around the ring afterwards (0 when no synchronization is needed —
    /// e.g. the head-aligned QKV projection).
    pub sync_bytes: usize,
    /// Activation vectors sharing this weight pass (1 = GEMV decode;
    /// larger values are the batched-prefill extension where each streamed
    /// weight is reused across `batch` prompt tokens, two weight-sharing
    /// int8 MACs packed per DSP per cycle).
    pub batch: usize,
}

impl MpJob {
    /// A single-token (decode) GEMV job.
    pub fn gemv(rows: usize, cols: usize, sync_bytes: usize) -> Self {
        MpJob {
            rows,
            cols,
            sync_bytes,
            batch: 1,
        }
    }

    /// Int8 weight bytes this activation streams from HBM (independent of
    /// the batch — that is the point of batching).
    pub fn weight_bytes(&self) -> usize {
        self.rows * self.cols
    }
}

/// The fused MP kernel timing model.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FusedMpKernel {
    cfg: ArchConfig,
}

impl FusedMpKernel {
    /// Creates the kernel for a configuration.
    pub fn new(cfg: &ArchConfig) -> Self {
        FusedMpKernel { cfg: cfg.clone() }
    }

    /// Number of row-blocks one activation is tiled into (per slice).
    pub fn blocks_for(&self, rows: usize) -> usize {
        let per_slice = rows.div_ceil(self.cfg.mp_channels());
        per_slice.div_ceil(self.cfg.n_group()).max(1)
    }

    /// Cycle-accurate timing of one activation.
    ///
    /// # Panics
    ///
    /// Panics if the job has zero rows or columns.
    pub fn timing(&self, job: &MpJob) -> KernelTiming {
        assert!(job.rows > 0 && job.cols > 0, "degenerate MP job");
        assert!(job.batch > 0, "batch must be at least 1");
        let cfg = &self.cfg;
        let n_group = cfg.n_group();
        let blocks = self.blocks_for(job.rows);

        // Per-block, per-slice quantities. All slices run in lock-step on
        // identical block shapes, so one slice's pipeline is the kernel's.
        let block_bytes = n_group * job.cols;
        let bpc = cfg.channel_bytes_per_cycle();
        let dma_ii = (block_bytes as f64 / bpc).ceil() as u64;
        // n_group MACs, 1 weight byte per cycle each. With a batch, every
        // weight byte multiplies `batch` activation elements; weight-shared
        // int8 DSP packing executes two of those per DSP per cycle.
        let mac_ii = job.cols as u64 * (job.batch as u64).div_ceil(2);
        let mac_latency = mac_ii + 8; // accumulator drain

        // Packer emits one datapack per slice per block per batched token.
        let pack_ii = job.batch as u64;
        // Quant unit: one datapack/cycle; pipeline depth from config.
        let quant_ii = job.batch as u64;
        let quant_latency = cfg.quant_latency().as_u64().max(1);
        // Router ingest: `mp_channels` datapacks per block per batched
        // token at link rate.
        let send_ii = ((cfg.mp_channels() * n_group * job.batch) as f64 / bpc).ceil() as u64;

        let spec = PipelineSpec::new(vec![
            StageSpec::new("dma", dma_ii, dma_ii).with_out_capacity(cfg.fifo_depth()),
            StageSpec::new("mac", mac_latency, mac_ii).with_out_capacity(cfg.fifo_depth()),
            StageSpec::new("pack", 4, pack_ii).with_out_capacity(cfg.fifo_depth()),
            StageSpec::new("quant", quant_latency, quant_ii).with_out_capacity(cfg.fifo_depth()),
            StageSpec::new("send", send_ii.max(1), send_ii.max(1)),
        ]);
        let run = spec.evaluate_uniform(blocks);
        let compute = run.makespan();

        // Ring synchronization of the produced sub-vector. With
        // transmission hiding, the sync of block i−1 overlaps the compute
        // of block i and only the final block's share is exposed.
        let sync_total = cfg.ring().all_gather_cycles(job.sync_bytes);
        let sync_exposed = if job.sync_bytes == 0 || cfg.nodes() == 1 {
            Cycles::ZERO
        } else if cfg.opts().hide_transmission {
            Cycles::new(sync_total.as_u64().div_ceil(blocks as u64))
        } else {
            sync_total
        };

        let dma_total = Cycles::new(dma_ii * blocks as u64);
        let total = compute + sync_exposed + cfg.stage_overhead();
        KernelTiming::new(
            total,
            vec![
                Segment::new("dma", dma_total),
                Segment::new("mac", Cycles::new(mac_ii * blocks as u64)),
                Segment::new("quant", Cycles::new(quant_latency + blocks as u64)),
                Segment::new("sync", sync_exposed),
                Segment::new("overhead", cfg.stage_overhead()),
            ],
        )
    }

    /// Functional path: runs the sharded linear on this node's weights.
    /// (Delegates to the substrate; the kernel's value is pairing this with
    /// [`FusedMpKernel::timing`] for the same shapes.)
    pub fn forward(&self, shard: &QuantLinear, x: &QuantizedVector) -> Vec<f32> {
        shard.forward(x)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::OptimizationFlags;

    fn kernel(nodes: usize) -> FusedMpKernel {
        FusedMpKernel::new(&ArchConfig::builder().nodes(nodes).build().unwrap())
    }

    #[test]
    fn memory_bound_matches_byte_count() {
        // A large GEMV must take ≈ bytes / aggregate-bandwidth cycles.
        let k = kernel(1);
        let job = MpJob {
            rows: 4096,
            cols: 1024,
            sync_bytes: 0,
            batch: 1,
        };
        let t = k.timing(&job).total.as_f64();
        let cfg = ArchConfig::builder().nodes(1).build().unwrap();
        let ideal =
            job.weight_bytes() as f64 / (cfg.mp_channels() as f64 * cfg.channel_bytes_per_cycle());
        assert!(t > ideal, "cannot beat the memory bound");
        assert!(
            t < 1.25 * ideal + 3000.0,
            "too far off the bound: {t} vs {ideal}"
        );
    }

    #[test]
    fn blocks_tile_rows() {
        let k = kernel(1);
        // 10 channels × 32 rows = 320 rows per block wave
        assert_eq!(k.blocks_for(320), 1);
        assert_eq!(k.blocks_for(321), 2);
        assert_eq!(k.blocks_for(3072), 10);
        assert_eq!(k.blocks_for(1), 1);
    }

    #[test]
    fn doubling_rows_roughly_doubles_time() {
        let k = kernel(1);
        let small = k
            .timing(&MpJob {
                rows: 2048,
                cols: 1024,
                sync_bytes: 0,
                batch: 1,
            })
            .total
            .as_f64();
        let large = k
            .timing(&MpJob {
                rows: 4096,
                cols: 1024,
                sync_bytes: 0,
                batch: 1,
            })
            .total
            .as_f64();
        let ratio = large / small;
        assert!((1.7..2.3).contains(&ratio), "ratio {ratio}");
    }

    #[test]
    fn transmission_hiding_reduces_exposed_sync() {
        let cfg = ArchConfig::builder().nodes(4).build().unwrap();
        let hidden = FusedMpKernel::new(&cfg);
        let exposed = FusedMpKernel::new(&cfg.with_opts(OptimizationFlags {
            hide_transmission: false,
            ..OptimizationFlags::ALL
        }));
        let job = MpJob {
            rows: 1024,
            cols: 1024,
            sync_bytes: 256,
            batch: 1,
        };
        let t_hidden = hidden.timing(&job);
        let t_exposed = exposed.timing(&job);
        assert!(t_hidden.segment("sync") < t_exposed.segment("sync"));
        assert!(t_hidden.total < t_exposed.total);
    }

    #[test]
    fn single_node_never_syncs() {
        let k = kernel(1);
        let t = k.timing(&MpJob {
            rows: 512,
            cols: 512,
            sync_bytes: 512,
            batch: 1,
        });
        assert_eq!(t.segment("sync"), Cycles::ZERO);
    }

    #[test]
    fn segments_are_labelled() {
        let k = kernel(2);
        let t = k.timing(&MpJob {
            rows: 512,
            cols: 512,
            sync_bytes: 256,
            batch: 1,
        });
        for label in ["dma", "mac", "quant", "sync", "overhead"] {
            assert!(
                t.segments.iter().any(|s| s.label == label),
                "missing {label}"
            );
        }
    }

    #[test]
    #[should_panic(expected = "degenerate MP job")]
    fn zero_rows_rejected() {
        let _ = kernel(1).timing(&MpJob {
            rows: 0,
            cols: 4,
            sync_bytes: 0,
            batch: 1,
        });
    }
}
