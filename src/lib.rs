//! # LoopLynx — facade crate
//!
//! Reproduction of *"LoopLynx: A Scalable Dataflow Architecture for
//! Efficient LLM Inference"* (DATE 2025). This crate re-exports the
//! workspace's public surface so downstream users can depend on a single
//! crate:
//!
//! * [`sim`] — cycle-accurate dataflow simulation substrate.
//! * [`tensor`] — W8A8 quantized tensor math.
//! * [`model`] — functional GPT-2 with KV cache.
//! * [`hw`] — FPGA/GPU platform, resource and power models.
//! * [`core`] — the LoopLynx architecture itself (macro dataflow kernels,
//!   scheduler, ring router, model parallelism, inference engine).
//! * [`baselines`] — DFX-like temporal, spatial, and A100 comparators.
//! * [`serve`] — multi-request serving layer: arrival processes,
//!   continuous batching, and latency-percentile metrics.
//!
//! # Quickstart
//!
//! See `examples/quickstart.rs`; in short:
//!
//! ```
//! use looplynx::core::{ArchConfig, LoopLynx};
//! use looplynx::model::ModelConfig;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let arch = ArchConfig::builder().nodes(2).build()?;
//! let engine = LoopLynx::new(ModelConfig::gpt2_medium(), arch)?;
//! let report = engine.simulate_generation(32, 32);
//! assert!(report.decode_ms_per_token() > 0.0);
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]

pub use looplynx_baselines as baselines;
pub use looplynx_core as core;
pub use looplynx_hw as hw;
pub use looplynx_model as model;
pub use looplynx_serve as serve;
pub use looplynx_sim as sim;
pub use looplynx_tensor as tensor;
