//! Quickstart: simulate the paper's flagship configuration and run real
//! tokens through the functional model.
//!
//! ```text
//! cargo run --example quickstart
//! ```

use looplynx::core::engine::DistributedGpt2;
use looplynx::core::router::RingMode;
use looplynx::core::{ArchConfig, LoopLynx};
use looplynx::model::gpt2::Gpt2Model;
use looplynx::model::tokenizer::ByteTokenizer;
use looplynx::model::{Autoregressive, ModelConfig, Sampler};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // --- 1. Cycle-accurate timing of GPT-2 (345M) on a dual-node U50 ----
    let arch = ArchConfig::builder().nodes(2).build()?;
    println!("architecture: {arch}");
    let engine = LoopLynx::new(ModelConfig::gpt2_medium(), arch)?;
    let report = engine.simulate_generation(32, 64);
    println!("simulated [32:64] generation: {report}");
    println!(
        "  breakdown: {} ({}ms prefill + {}ms decode)",
        report.breakdown,
        report.prefill_ms.round(),
        report.decode_ms.round()
    );

    // --- 1b. How the hybrid schedule occupies the kernels -----------------
    // One decode token's kernel activations (first layer shown): the MP
    // kernel is reused for every linear layer — the "temporal" half of the
    // hybrid design.
    let timing = engine.simulate_token(64, looplynx::core::TokenPhase::Decode, false);
    let first_layer: looplynx::sim::trace::Trace = timing
        .trace
        .spans()
        .iter()
        .filter(|s| s.label.starts_with("L0."))
        .cloned()
        .collect();
    println!("\nkernel occupancy across one transformer block (one decode token):");
    print!("{}", first_layer.render_gantt(72));

    // --- 2. Functional W8A8 inference, distributed over the same ring ---
    // (tiny synthetic model so the example runs in milliseconds; the
    // timing above depends only on tensor shapes)
    let cfg = ModelConfig::tiny();
    let reference = Gpt2Model::synthetic(&cfg, 42);
    let mut dist = DistributedGpt2::new(&reference, 2, RingMode::Exact)?;

    let tok = ByteTokenizer::new();
    let prompt = tok.encode("Earth is the");
    let generated = dist.generate(&prompt, 12, &mut Sampler::greedy());
    println!(
        "functional 2-node generation ({} prompt tokens -> {} generated): {:?}",
        prompt.len(),
        generated.len(),
        tok.decode(&generated)
    );

    // The distributed result is bit-identical to a single-node run.
    let mut single = reference.clone();
    let expected = single.generate(&prompt, 12, &mut Sampler::greedy());
    assert_eq!(generated, expected, "ring-parallel inference must match");
    println!("distributed output verified against the single-node reference ✓");
    Ok(())
}
