//! `any::<T>()`: whole-domain strategies for primitive types.

use crate::strategy::Strategy;
use crate::test_runner::{CaseResult, TestRng};

/// Types with a canonical whole-domain strategy.
pub trait Arbitrary: Sized {
    /// Draws one arbitrary value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

/// Strategy over the full domain of `T` (like `proptest::arbitrary::any`).
///
/// Floats are drawn from raw bit patterns, so infinities and NaNs occur
/// (filter with `prop_filter("finite", ..)` as with the real crate).
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(std::marker::PhantomData)
}

/// See [`any`].
#[derive(Debug, Clone, Copy)]
pub struct Any<T>(std::marker::PhantomData<T>);

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;

    fn sample_one(&self, rng: &mut TestRng) -> CaseResult<T> {
        Ok(T::arbitrary(rng))
    }
}

macro_rules! arbitrary_from_bits {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}

arbitrary_from_bits!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Arbitrary for f32 {
    fn arbitrary(rng: &mut TestRng) -> Self {
        f32::from_bits(rng.next_u64() as u32)
    }
}

impl Arbitrary for f64 {
    fn arbitrary(rng: &mut TestRng) -> Self {
        f64::from_bits(rng.next_u64())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn any_bool_covers_both() {
        let mut rng = TestRng::from_name("arb-bool");
        let mut t = false;
        let mut f = false;
        for _ in 0..64 {
            if bool::arbitrary(&mut rng) {
                t = true;
            } else {
                f = true;
            }
        }
        assert!(t && f);
    }

    #[test]
    fn any_f32_is_samplable() {
        let mut rng = TestRng::from_name("arb-f32");
        let s = any::<f32>();
        for _ in 0..100 {
            let _ = s.sample_one(&mut rng).unwrap();
        }
    }
}
