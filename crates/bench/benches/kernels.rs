//! Micro-benchmarks of the macro dataflow kernels and the W8A8 substrate:
//! how fast the *simulator* evaluates the cycle-accurate models, and how
//! fast the functional integer math runs on the host.

use std::hint::black_box;
use std::time::Duration;

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use looplynx_core::config::ArchConfig;
use looplynx_core::kernels::lnres::{FusedLnResKernel, LnResJob};
use looplynx_core::kernels::mha::{FusedMhaKernel, MhaJob};
use looplynx_core::kernels::mp::{FusedMpKernel, MpJob};
use looplynx_tensor::linear::{gemv_i32, QuantLinear};
use looplynx_tensor::matrix::Matrix;
use looplynx_tensor::quant::quantize_vec;

fn bench_mp_timing(c: &mut Criterion) {
    let cfg = ArchConfig::paper();
    let kernel = FusedMpKernel::new(&cfg);
    let mut group = c.benchmark_group("mp_kernel_timing");
    for (label, rows, cols) in [
        ("qkv_3072x1024", 1536usize, 1024usize),
        ("fc1_4096x1024", 2048, 1024),
        ("fc2_1024x4096", 512, 4096),
        ("lm_head_50257x1024", 25129, 1024),
    ] {
        group.bench_function(label, |b| {
            b.iter(|| {
                kernel.timing(black_box(&MpJob {
                    rows,
                    cols,
                    sync_bytes: rows,
                    batch: 1,
                }))
            })
        });
    }
    group.finish();
}

fn bench_mha_timing(c: &mut Criterion) {
    let cfg = ArchConfig::paper();
    let kernel = FusedMhaKernel::new(&cfg);
    let mut group = c.benchmark_group("mha_kernel_timing");
    for context in [64usize, 256, 512, 1024] {
        group.bench_with_input(BenchmarkId::from_parameter(context), &context, |b, &ctx| {
            b.iter(|| {
                kernel.timing(black_box(&MhaJob {
                    heads: 8,
                    d_head: 64,
                    context: ctx,
                    sync_bytes: 512,
                }))
            })
        });
    }
    group.finish();
}

fn bench_lnres_timing(c: &mut Criterion) {
    let cfg = ArchConfig::paper();
    let kernel = FusedLnResKernel::new(&cfg);
    c.bench_function("lnres_kernel_timing_1024", |b| {
        b.iter(|| {
            kernel.timing(black_box(&LnResJob {
                dim: 1024,
                with_residual: true,
            }))
        })
    });
}

fn bench_functional_gemv(c: &mut Criterion) {
    let w = Matrix::from_fn(1024, 1024, |r, c2| ((r * 31 + c2 * 7) % 255) as i8 - 127);
    let x: Vec<i8> = (0..1024).map(|i| ((i * 13) % 255) as i8 - 127).collect();
    c.bench_function("gemv_i8_1024x1024", |b| {
        b.iter(|| gemv_i32(black_box(&w), black_box(&x)).expect("shapes match"))
    });
}

fn bench_quant_linear(c: &mut Criterion) {
    let w = Matrix::from_fn(1024, 1024, |r, c2| ((r + c2) as f32 * 0.001).sin() * 0.02);
    let lin = QuantLinear::from_f32(&w, &vec![0.0; 1024]).expect("valid layer");
    let x = quantize_vec(
        &(0..1024)
            .map(|i| (i as f32 * 0.01).cos())
            .collect::<Vec<_>>(),
    );
    c.bench_function("quant_linear_forward_1024", |b| {
        b.iter(|| lin.forward(black_box(&x)))
    });
}

fn config() -> Criterion {
    Criterion::default()
        .sample_size(10)
        .warm_up_time(Duration::from_millis(200))
        .measurement_time(Duration::from_millis(600))
}

criterion_group! {
    name = benches;
    config = config();
    targets = bench_mp_timing, bench_mha_timing, bench_lnres_timing,
              bench_functional_gemv, bench_quant_linear
}
criterion_main!(benches);
