//! FPGA device capacity models.
//!
//! The paper deploys two accelerator nodes per Alveo U50 — "one accelerator
//! node can fit within one SLR region" — and compares against baselines on
//! the larger Alveo U280. Capacities below are the public data-sheet
//! figures for the two cards.

use std::fmt;

use serde::{Deserialize, Serialize};

use crate::resources::ResourceVector;

/// An FPGA card.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FpgaDevice {
    name: String,
    resources: ResourceVector,
    slr_count: usize,
    hbm_channels: usize,
    hbm_total_gbps: f64,
    max_kernel_mhz: f64,
    tdp_watts: f64,
}

impl FpgaDevice {
    /// Xilinx Alveo U50: 2 SLRs, 8 GB HBM2 over 32 pseudo-channels,
    /// 201 GB/s peak, 75 W.
    pub fn alveo_u50() -> Self {
        FpgaDevice {
            name: "Alveo U50".into(),
            resources: ResourceVector::new(5952.0, 872_000.0, 1_743_000.0, 1344.0, 640.0),
            slr_count: 2,
            hbm_channels: 32,
            hbm_total_gbps: 201.0,
            max_kernel_mhz: 300.0,
            tdp_watts: 75.0,
        }
    }

    /// Xilinx Alveo U280: 3 SLRs, 8 GB HBM2 + DDR4, 460 GB/s peak, 215 W.
    pub fn alveo_u280() -> Self {
        FpgaDevice {
            name: "Alveo U280".into(),
            resources: ResourceVector::new(9024.0, 1_304_000.0, 2_607_000.0, 2016.0, 960.0),
            slr_count: 3,
            hbm_channels: 32,
            hbm_total_gbps: 460.0,
            max_kernel_mhz: 300.0,
            tdp_watts: 215.0,
        }
    }

    /// Device name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Total device resources.
    pub fn resources(&self) -> ResourceVector {
        self.resources
    }

    /// Number of super logic regions.
    pub fn slr_count(&self) -> usize {
        self.slr_count
    }

    /// Approximate resources of one SLR (uniform split; Xilinx SLRs are
    /// close to symmetric on these parts).
    pub fn slr_resources(&self) -> ResourceVector {
        self.resources * (1.0 / self.slr_count as f64)
    }

    /// HBM pseudo-channel count.
    pub fn hbm_channels(&self) -> usize {
        self.hbm_channels
    }

    /// Aggregate HBM bandwidth in GB/s.
    pub fn hbm_total_gbps(&self) -> f64 {
        self.hbm_total_gbps
    }

    /// Peak per-channel HBM bandwidth in GB/s.
    pub fn hbm_channel_gbps(&self) -> f64 {
        self.hbm_total_gbps / self.hbm_channels as f64
    }

    /// Maximum supported kernel clock in MHz.
    pub fn max_kernel_mhz(&self) -> f64 {
        self.max_kernel_mhz
    }

    /// Board thermal design power in watts.
    pub fn tdp_watts(&self) -> f64 {
        self.tdp_watts
    }
}

impl fmt::Display for FpgaDevice {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} ({} SLRs, {} HBM ch @ {:.1} GB/s, {:.0} W TDP)",
            self.name,
            self.slr_count,
            self.hbm_channels,
            self.hbm_channel_gbps(),
            self.tdp_watts
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::resources::NodeResourceModel;

    #[test]
    fn u50_capacities() {
        let d = FpgaDevice::alveo_u50();
        assert_eq!(d.slr_count(), 2);
        assert_eq!(d.hbm_channels(), 32);
        assert!((d.tdp_watts() - 75.0).abs() < 1e-9);
        // ~6.3 GB/s nominal per channel; the paper measured 8.49 peak with
        // its access pattern — both orders agree.
        assert!(d.hbm_channel_gbps() > 5.0 && d.hbm_channel_gbps() < 9.0);
    }

    #[test]
    fn u280_is_bigger_than_u50() {
        let u50 = FpgaDevice::alveo_u50();
        let u280 = FpgaDevice::alveo_u280();
        assert!(u50.resources().fits_within(&u280.resources()));
        assert!(u280.hbm_total_gbps() > u50.hbm_total_gbps());
    }

    #[test]
    fn one_node_fits_one_slr() {
        // The paper's claim: "one accelerator node can fit within one SLR
        // region of the Alveo U50".
        let node = NodeResourceModel::paper().per_node(2);
        let slr = FpgaDevice::alveo_u50().slr_resources();
        assert!(node.fits_within(&slr), "node {node} vs SLR {slr}");
    }

    #[test]
    fn dual_node_fits_u50() {
        let total = NodeResourceModel::paper().device_total(2);
        assert!(total.fits_within(&FpgaDevice::alveo_u50().resources()));
    }

    #[test]
    fn slr_split_sums_back() {
        let d = FpgaDevice::alveo_u280();
        let slr = d.slr_resources();
        let back = slr * d.slr_count() as f64;
        assert!((back.dsp - d.resources().dsp).abs() < 1.0);
    }

    #[test]
    fn display_mentions_name() {
        assert!(FpgaDevice::alveo_u50().to_string().contains("U50"));
    }
}
