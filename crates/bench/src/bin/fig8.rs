//! Regenerates paper Fig. 8 (latency + energy efficiency vs A100).
use looplynx_bench::{experiments, paper};
use looplynx_model::ModelConfig;

fn main() {
    let model = ModelConfig::gpt2_medium();
    print!("{}", experiments::render_fig8(&model));
    println!();
    let data = experiments::fig8(&model);
    println!("paper-vs-measured:");
    println!(
        "  2-node speedup {} | 4-node speedup {}",
        paper::compare(data.mean_speedup[1], paper::FIG8_SPEEDUP_VS_A100[0]),
        paper::compare(data.mean_speedup[2], paper::FIG8_SPEEDUP_VS_A100[1]),
    );
    println!(
        "  2-node energy fraction {} | 4-node energy fraction {}",
        paper::compare(data.mean_energy_fraction[1], paper::FIG8_ENERGY_FRACTION[0]),
        paper::compare(data.mean_energy_fraction[2], paper::FIG8_ENERGY_FRACTION[1]),
    );
    println!(
        "  energy efficiency 1/2/4-node: {} | {} | {}",
        paper::compare(data.mean_energy_efficiency[0], paper::FIG8_ENERGY_EFF[0]),
        paper::compare(data.mean_energy_efficiency[1], paper::FIG8_ENERGY_EFF[1]),
        paper::compare(data.mean_energy_efficiency[2], paper::FIG8_ENERGY_EFF[2]),
    );
}
