//! Strongly-typed simulation time.
//!
//! All timing in the simulator is expressed in clock cycles of a named clock
//! domain. A [`Cycles`] value is only meaningful together with a
//! [`Frequency`]; conversion to wall-clock time happens at reporting
//! boundaries only, so no floating-point error accumulates inside the
//! cycle-level models.

use std::fmt;
use std::iter::Sum;
use std::ops::{Add, AddAssign, Div, Mul, Sub, SubAssign};

use serde::{Deserialize, Serialize};

/// A number of clock cycles.
///
/// Newtype over `u64` so cycle counts cannot be accidentally mixed with item
/// counts or byte counts (C-NEWTYPE).
///
/// # Example
///
/// ```
/// use looplynx_sim::time::{Cycles, Frequency};
///
/// let lat = Cycles::new(285_000);
/// let f = Frequency::from_mhz(285.0);
/// assert!((lat.to_seconds(f) - 0.001).abs() < 1e-12);
/// ```
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
pub struct Cycles(u64);

impl Cycles {
    /// Zero cycles.
    pub const ZERO: Cycles = Cycles(0);

    /// Creates a cycle count.
    pub const fn new(n: u64) -> Self {
        Cycles(n)
    }

    /// Returns the raw cycle count.
    pub const fn as_u64(self) -> u64 {
        self.0
    }

    /// Returns the raw cycle count as `f64` (for ratio reporting).
    pub fn as_f64(self) -> f64 {
        self.0 as f64
    }

    /// Converts a (possibly fractional) cycle estimate into a whole number of
    /// cycles, rounding up — hardware cannot finish mid-cycle.
    ///
    /// # Panics
    ///
    /// Panics if `x` is negative or not finite.
    pub fn from_f64_ceil(x: f64) -> Self {
        assert!(x.is_finite() && x >= 0.0, "invalid cycle estimate: {x}");
        Cycles(x.ceil() as u64)
    }

    /// Saturating subtraction.
    pub fn saturating_sub(self, rhs: Cycles) -> Cycles {
        Cycles(self.0.saturating_sub(rhs.0))
    }

    /// The larger of two cycle counts (used when two activities overlap and
    /// the slower one dominates).
    pub fn max(self, rhs: Cycles) -> Cycles {
        Cycles(self.0.max(rhs.0))
    }

    /// The smaller of two cycle counts.
    pub fn min(self, rhs: Cycles) -> Cycles {
        Cycles(self.0.min(rhs.0))
    }

    /// Converts this cycle count to seconds under the given clock.
    pub fn to_seconds(self, freq: Frequency) -> f64 {
        self.0 as f64 / freq.as_hz()
    }

    /// Converts this cycle count to milliseconds under the given clock.
    pub fn to_millis(self, freq: Frequency) -> f64 {
        self.to_seconds(freq) * 1e3
    }

    /// Converts this cycle count to microseconds under the given clock.
    pub fn to_micros(self, freq: Frequency) -> f64 {
        self.to_seconds(freq) * 1e6
    }
}

impl Add for Cycles {
    type Output = Cycles;
    fn add(self, rhs: Cycles) -> Cycles {
        Cycles(self.0 + rhs.0)
    }
}

impl AddAssign for Cycles {
    fn add_assign(&mut self, rhs: Cycles) {
        self.0 += rhs.0;
    }
}

impl Sub for Cycles {
    type Output = Cycles;
    fn sub(self, rhs: Cycles) -> Cycles {
        Cycles(
            self.0
                .checked_sub(rhs.0)
                .expect("cycle subtraction underflow"),
        )
    }
}

impl SubAssign for Cycles {
    fn sub_assign(&mut self, rhs: Cycles) {
        *self = *self - rhs;
    }
}

impl Mul<u64> for Cycles {
    type Output = Cycles;
    fn mul(self, rhs: u64) -> Cycles {
        Cycles(self.0 * rhs)
    }
}

impl Div<u64> for Cycles {
    type Output = Cycles;
    fn div(self, rhs: u64) -> Cycles {
        Cycles(self.0 / rhs)
    }
}

impl Sum for Cycles {
    fn sum<I: Iterator<Item = Cycles>>(iter: I) -> Cycles {
        iter.fold(Cycles::ZERO, |a, b| a + b)
    }
}

impl fmt::Display for Cycles {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} cyc", self.0)
    }
}

impl From<u64> for Cycles {
    fn from(n: u64) -> Self {
        Cycles(n)
    }
}

/// A clock frequency.
///
/// # Example
///
/// ```
/// use looplynx_sim::time::Frequency;
///
/// let f = Frequency::from_mhz(285.0);
/// assert!((f.period_ns() - 3.5087719).abs() < 1e-4);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, PartialOrd, Serialize, Deserialize)]
pub struct Frequency {
    hz: f64,
}

impl Frequency {
    /// Creates a frequency from hertz.
    ///
    /// # Panics
    ///
    /// Panics if `hz` is not strictly positive and finite.
    pub fn from_hz(hz: f64) -> Self {
        assert!(hz.is_finite() && hz > 0.0, "invalid frequency: {hz} Hz");
        Frequency { hz }
    }

    /// Creates a frequency from megahertz.
    pub fn from_mhz(mhz: f64) -> Self {
        Self::from_hz(mhz * 1e6)
    }

    /// Creates a frequency from gigahertz.
    pub fn from_ghz(ghz: f64) -> Self {
        Self::from_hz(ghz * 1e9)
    }

    /// Returns the frequency in hertz.
    pub fn as_hz(self) -> f64 {
        self.hz
    }

    /// Returns the frequency in megahertz.
    pub fn as_mhz(self) -> f64 {
        self.hz / 1e6
    }

    /// Returns the clock period in nanoseconds.
    pub fn period_ns(self) -> f64 {
        1e9 / self.hz
    }

    /// Number of whole cycles elapsed in `seconds` (rounded up).
    pub fn cycles_in_seconds(self, seconds: f64) -> Cycles {
        Cycles::from_f64_ceil(seconds * self.hz)
    }

    /// Converts a byte-per-second rate into bytes-per-cycle under this clock.
    pub fn bytes_per_cycle(self, bytes_per_second: f64) -> f64 {
        bytes_per_second / self.hz
    }
}

impl fmt::Display for Frequency {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.1} MHz", self.as_mhz())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cycles_arithmetic() {
        let a = Cycles::new(10);
        let b = Cycles::new(4);
        assert_eq!((a + b).as_u64(), 14);
        assert_eq!((a - b).as_u64(), 6);
        assert_eq!((a * 3).as_u64(), 30);
        assert_eq!((a / 2).as_u64(), 5);
        assert_eq!(a.max(b), a);
        assert_eq!(a.min(b), b);
    }

    #[test]
    fn cycles_saturating_sub_clamps_to_zero() {
        assert_eq!(Cycles::new(3).saturating_sub(Cycles::new(5)), Cycles::ZERO);
    }

    #[test]
    #[should_panic(expected = "underflow")]
    fn cycles_sub_underflow_panics() {
        let _ = Cycles::new(3) - Cycles::new(5);
    }

    #[test]
    fn cycles_sum() {
        let total: Cycles = (1..=4).map(Cycles::new).sum();
        assert_eq!(total.as_u64(), 10);
    }

    #[test]
    fn from_f64_rounds_up() {
        assert_eq!(Cycles::from_f64_ceil(10.01).as_u64(), 11);
        assert_eq!(Cycles::from_f64_ceil(10.0).as_u64(), 10);
    }

    #[test]
    #[should_panic(expected = "invalid cycle estimate")]
    fn from_f64_rejects_negative() {
        let _ = Cycles::from_f64_ceil(-1.0);
    }

    #[test]
    fn frequency_conversions() {
        let f = Frequency::from_mhz(285.0);
        assert!((f.as_hz() - 285e6).abs() < 1.0);
        // 8.49 GB/s on the 285 MHz clock is just under one 32-byte datapack
        // per cycle — the paper's burst-size design point.
        let bpc = f.bytes_per_cycle(8.49e9);
        assert!(bpc > 29.0 && bpc < 30.0, "bytes/cycle {bpc}");
    }

    #[test]
    fn wall_clock_roundtrip() {
        let f = Frequency::from_mhz(200.0);
        let c = f.cycles_in_seconds(0.5);
        assert_eq!(c.as_u64(), 100_000_000);
        assert!((c.to_seconds(f) - 0.5).abs() < 1e-12);
        assert!((c.to_millis(f) - 500.0).abs() < 1e-9);
    }

    #[test]
    #[should_panic(expected = "invalid frequency")]
    fn frequency_rejects_zero() {
        let _ = Frequency::from_hz(0.0);
    }

    #[test]
    fn display_formats() {
        assert_eq!(Cycles::new(42).to_string(), "42 cyc");
        assert_eq!(Frequency::from_mhz(285.0).to_string(), "285.0 MHz");
    }
}
