//! Offline stand-in for the `criterion` crate (see `vendor/README.md`).
//!
//! Provides the API subset the workspace's benches use: [`Criterion`]
//! with `bench_function` / `benchmark_group`, [`Bencher::iter`],
//! [`BenchmarkId`], the [`criterion_group!`] / [`criterion_main!`]
//! macros, and [`black_box`]. Measurement is a plain time-boxed loop
//! printing mean iteration time — no statistics, no HTML reports.

use std::fmt::Display;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Top-level benchmark driver (stand-in for `criterion::Criterion`).
#[derive(Debug, Clone)]
pub struct Criterion {
    sample_size: usize,
    warm_up_time: Duration,
    measurement_time: Duration,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            sample_size: 10,
            warm_up_time: Duration::from_millis(100),
            measurement_time: Duration::from_millis(500),
        }
    }
}

impl Criterion {
    /// Sets the number of measurement samples (builder style).
    pub fn sample_size(mut self, n: usize) -> Self {
        assert!(n > 0, "sample_size must be positive");
        self.sample_size = n;
        self
    }

    /// Sets the warm-up duration before measuring (builder style).
    pub fn warm_up_time(mut self, d: Duration) -> Self {
        self.warm_up_time = d;
        self
    }

    /// Sets the measurement window per benchmark (builder style).
    pub fn measurement_time(mut self, d: Duration) -> Self {
        self.measurement_time = d;
        self
    }

    /// Accepted for CLI compatibility with the real crate; no-op here.
    pub fn configure_from_args(self) -> Self {
        self
    }

    /// Runs one named benchmark.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_one(&id.into().0, self, f);
        self
    }

    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.into(),
        }
    }
}

/// A named group of benchmarks (stand-in for
/// `criterion::BenchmarkGroup`).
#[derive(Debug)]
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
}

impl BenchmarkGroup<'_> {
    /// Runs one benchmark inside the group.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = format!("{}/{}", self.name, id.into().0);
        run_one(&id, self.criterion, f);
        self
    }

    /// Runs one benchmark that receives a borrowed input value.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: impl Into<BenchmarkId>,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let id = format!("{}/{}", self.name, id.into().0);
        run_one(&id, self.criterion, |b| f(b, input));
        self
    }

    /// Finishes the group (accepted for API compatibility).
    pub fn finish(self) {}
}

/// Identifier of a single benchmark within a group.
#[derive(Debug, Clone)]
pub struct BenchmarkId(String);

impl BenchmarkId {
    /// `function_name/parameter`-style id.
    pub fn new(function_name: impl Display, parameter: impl Display) -> Self {
        BenchmarkId(format!("{function_name}/{parameter}"))
    }

    /// Id from the parameter value alone.
    pub fn from_parameter(parameter: impl Display) -> Self {
        BenchmarkId(format!("{parameter}"))
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        BenchmarkId(s.to_owned())
    }
}

impl From<String> for BenchmarkId {
    fn from(s: String) -> Self {
        BenchmarkId(s)
    }
}

/// Timing loop handle passed to each benchmark closure.
#[derive(Debug)]
pub struct Bencher {
    iterations: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Measures `routine` over this sample's iteration budget.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        let start = Instant::now();
        for _ in 0..self.iterations {
            black_box(routine());
        }
        self.elapsed = start.elapsed();
    }
}

fn run_one<F: FnMut(&mut Bencher)>(id: &str, config: &Criterion, mut f: F) {
    // Warm-up: calibrate how many iterations fit one sample so the
    // whole benchmark stays within measurement_time.
    let mut bencher = Bencher {
        iterations: 1,
        elapsed: Duration::ZERO,
    };
    let warm_up_start = Instant::now();
    let mut per_iter = Duration::from_nanos(1);
    while warm_up_start.elapsed() < config.warm_up_time {
        f(&mut bencher);
        per_iter = Duration::from_nanos(
            (bencher.elapsed.as_nanos() / bencher.iterations as u128).max(1) as u64,
        );
        // Grow the batch until one call is ~1/4 of the warm-up budget.
        if bencher.elapsed * 4 < config.warm_up_time {
            bencher.iterations = bencher.iterations.saturating_mul(2);
        }
    }

    let budget = config.measurement_time / config.sample_size as u32;
    let iters_per_sample =
        (budget.as_nanos() / per_iter.as_nanos().max(1)).clamp(1, u64::MAX as u128) as u64;

    let mut total = Duration::ZERO;
    let mut iters = 0u64;
    for _ in 0..config.sample_size {
        bencher.iterations = iters_per_sample;
        f(&mut bencher);
        total += bencher.elapsed;
        iters += bencher.iterations;
    }
    let mean = total.as_secs_f64() / iters.max(1) as f64;
    println!(
        "bench: {id:<50} {:>12.3} ns/iter ({iters} iters)",
        mean * 1e9
    );
}

/// Declares a benchmark harness entry point from a config expression
/// and a list of target functions (stand-in for
/// `criterion::criterion_group!`).
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        fn $name() {
            let mut criterion = $config;
            $($target(&mut criterion);)+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group! {
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        }
    };
}

/// Declares `main` from one or more [`criterion_group!`] names.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fast() -> Criterion {
        Criterion::default()
            .sample_size(2)
            .warm_up_time(Duration::from_millis(1))
            .measurement_time(Duration::from_millis(2))
    }

    #[test]
    fn bench_function_runs_closure() {
        let mut ran = false;
        fast().bench_function("t", |b| {
            b.iter(|| 1 + 1);
            ran = true;
        });
        assert!(ran);
    }

    #[test]
    fn group_runs_with_input() {
        let mut c = fast();
        let mut group = c.benchmark_group("g");
        group.bench_with_input(BenchmarkId::from_parameter(4), &4usize, |b, &n| {
            b.iter(|| n * 2)
        });
        group.finish();
    }

    #[test]
    fn benchmark_id_formats() {
        assert_eq!(BenchmarkId::new("f", 8).0, "f/8");
        assert_eq!(BenchmarkId::from_parameter("x").0, "x");
    }
}
