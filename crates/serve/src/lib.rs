//! # looplynx-serve — multi-request serving layer
//!
//! The LoopLynx paper evaluates single-generation latency; a deployed
//! accelerator serves a *stream* of requests. This crate adds the serving
//! tier, generic over the execution substrate
//! ([`looplynx_core::backend::InferenceBackend`]): the same schedulers
//! drive the cycle-accurate [`looplynx_core::engine::LoopLynx`] timing
//! engine (scheduling studies, paper reproduction) and the functional
//! W8A8 [`looplynx_core::engine::DistributedGpt2`] pipeline (real tokens,
//! measured host throughput).
//!
//! * [`arrival`] — offered-load generators: Poisson, bursty, and
//!   fixed-trace arrival processes (with or without real prompt tokens).
//! * [`request`] — requests and per-request latency records (TTFT, TPOT,
//!   end-to-end).
//! * [`batcher`] — the schedulers: [`batcher::serve_continuous_on`]
//!   (continuous batching — requests join the decode loop between
//!   iterations and share every weight pass) and
//!   [`batcher::serve_sequential_on`] (the one-request-at-a-time
//!   baseline), plus sim-pinned convenience wrappers.
//! * [`gateway`] — the fault-tolerant ingress tier
//!   ([`gateway::serve_gateway_on`]): per-request deadlines and
//!   cancellation, bounded-queue admission control with load shedding,
//!   retry with exponential backoff, and exactly-one-terminal-state
//!   accounting ([`gateway::Terminal`]) for every offered request.
//! * [`metrics`] — [`metrics::ServingReport`]: throughput, p50/p95/p99
//!   latency percentiles via [`looplynx_sim::stats::Percentiles`], and —
//!   on token-producing backends — every request's generated tokens.
//!
//! # Example
//!
//! ```
//! use looplynx_core::config::ArchConfig;
//! use looplynx_core::engine::LoopLynx;
//! use looplynx_model::config::ModelConfig;
//! use looplynx_serve::{serve_continuous, ArrivalProcess, ServeConfig};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let engine = LoopLynx::new(
//!     ModelConfig::gpt2_medium(),
//!     ArchConfig::builder().nodes(2).build()?,
//! )?;
//! let workload = ArrivalProcess::Poisson { rate_per_s: 8.0, seed: 1 }
//!     .workload(16, &[(32, 16)]);
//! let report = serve_continuous(&engine, &workload, &ServeConfig::default());
//! assert_eq!(report.completed(), 16);
//! assert!(report.ttft_ms.p99().is_some());
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![deny(missing_docs)]
#![deny(missing_debug_implementations)]

pub mod arrival;
pub mod batcher;
pub mod gateway;
pub mod metrics;
pub mod request;

pub use arrival::ArrivalProcess;
pub use batcher::{
    serve_continuous, serve_continuous_on, serve_sequential, serve_sequential_on, ServeConfig,
};
pub use gateway::{
    serve_gateway_on, EvictPolicy, EvictPolicyKind, GatewayConfig, GatewayReport, GatewayRequest,
    RejectReason, ShedPolicy, Terminal, TimeoutPhase,
};
pub use metrics::{GeneratedOutput, ServingReport};
pub use request::{Request, RequestMetrics};
