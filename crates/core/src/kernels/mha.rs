//! The fused multi-head attention (MHA) kernel.
//!
//! Paper Fig. 6(b): "two separate MAC hardware implementations, a mask unit
//! and a softmax unit, forming a head-wise task-level pipeline. The first
//! MAC hardware is connected to HBM channels used as key cache and computes
//! attention scores for each head … the softmax unit … the second MAC
//! hardware, where cached values are loaded to perform token mixing."
//!
//! The head-wise pipelining optimization (Section III-C, Fig. 4(b))
//! reorders the computation so softmax of head *i−1* hides inside the
//! score/mixing MACs of head *i*; with the flag off the three phases of a
//! head run back-to-back — the difference is the ≈4 % of token latency the
//! paper reports in Fig. 5.

use serde::{Deserialize, Serialize};

use looplynx_sim::pipeline::{PipelineSpec, StageSpec};
use looplynx_sim::time::Cycles;

use crate::config::ArchConfig;
use crate::kernels::{KernelTiming, Segment};

/// One activation of the fused MHA kernel.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct MhaJob {
    /// Heads computed on this node (head-wise partitioning).
    pub heads: usize,
    /// Dimension of one head.
    pub d_head: usize,
    /// Context length attended over (cached tokens including the current).
    pub context: usize,
    /// Bytes of this node's attention output to all-gather afterwards.
    pub sync_bytes: usize,
}

impl MhaJob {
    /// Int8 bytes read from the key cache by this activation.
    pub fn key_bytes(&self) -> usize {
        self.heads * self.d_head * self.context
    }

    /// Int8 bytes read from the value cache by this activation.
    pub fn value_bytes(&self) -> usize {
        self.key_bytes()
    }
}

/// The fused MHA kernel timing model.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FusedMhaKernel {
    cfg: ArchConfig,
}

impl FusedMhaKernel {
    /// Creates the kernel for a configuration.
    pub fn new(cfg: &ArchConfig) -> Self {
        FusedMhaKernel { cfg: cfg.clone() }
    }

    /// Cycles of one head's score MACs (key-cache streaming bound).
    fn score_cycles(&self, job: &MhaJob) -> u64 {
        let k_channels = (self.cfg.kv_channels() / 2).max(1);
        let bytes = job.d_head * job.context;
        let fill = 16; // mask unit + score fifo fill
        (bytes as f64 / (k_channels as f64 * self.cfg.channel_bytes_per_cycle())).ceil() as u64
            + fill
    }

    /// Cycles of one head's token-mixing MACs (value-cache streaming bound).
    fn mix_cycles(&self, job: &MhaJob) -> u64 {
        let v_channels = (self.cfg.kv_channels() / 2).max(1);
        let bytes = job.d_head * job.context;
        (bytes as f64 / (v_channels as f64 * self.cfg.channel_bytes_per_cycle())).ceil() as u64 + 16
    }

    /// Cycles of one head's two-phase softmax.
    fn softmax_cycles(&self, job: &MhaJob) -> u64 {
        let lanes = self.cfg.softmax_lanes() as u64;
        // phase 1 (exp + global sum) and phase 2 (weighted scores)
        2 * (job.context as u64).div_ceil(lanes) + 32
    }

    /// Cycle-accurate timing of one activation.
    ///
    /// # Panics
    ///
    /// Panics if the job has zero heads, head size, or context.
    pub fn timing(&self, job: &MhaJob) -> KernelTiming {
        assert!(
            job.heads > 0 && job.d_head > 0 && job.context > 0,
            "degenerate MHA job"
        );
        let score = self.score_cycles(job);
        let softmax = self.softmax_cycles(job);
        let mix = self.mix_cycles(job);

        let compute = if self.cfg.opts().headwise_pipeline {
            // Head-wise task-level pipeline: items are heads flowing
            // through score → softmax → mix; softmax of head i−1 overlaps
            // the score MACs of head i.
            let spec = PipelineSpec::new(vec![
                StageSpec::new("score", score, score).with_out_capacity(2),
                StageSpec::new("softmax", softmax, softmax).with_out_capacity(2),
                StageSpec::new("mix", mix, mix),
            ]);
            spec.evaluate_uniform(job.heads).makespan()
        } else {
            // Without the reordering, the two MAC arrays still pipeline
            // across heads (separate hardware on separate channels), but
            // "it is difficult to overlap these two stages" of softmax —
            // its global-sum barrier is exposed once per head.
            let spec = PipelineSpec::new(vec![
                StageSpec::new("score", score, score).with_out_capacity(2),
                StageSpec::new("mix", mix, mix),
            ]);
            spec.evaluate_uniform(job.heads).makespan() + Cycles::new(job.heads as u64 * softmax)
        };

        // All-gather of this node's attention output. Head-wise hiding also
        // applies: earlier heads' sub-vectors travel while later heads
        // compute.
        let sync_total = self.cfg.ring().all_gather_cycles(job.sync_bytes);
        let sync_exposed = if job.sync_bytes == 0 || self.cfg.nodes() == 1 {
            Cycles::ZERO
        } else if self.cfg.opts().hide_transmission {
            Cycles::new(sync_total.as_u64().div_ceil(job.heads as u64))
        } else {
            sync_total
        };

        let total = compute + sync_exposed + self.cfg.stage_overhead();
        KernelTiming::new(
            total,
            vec![
                Segment::new("score", Cycles::new(score * job.heads as u64)),
                Segment::new("softmax", Cycles::new(softmax * job.heads as u64)),
                Segment::new("mix", Cycles::new(mix * job.heads as u64)),
                Segment::new("sync", sync_exposed),
                Segment::new("overhead", self.cfg.stage_overhead()),
            ],
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::OptimizationFlags;

    fn job(context: usize) -> MhaJob {
        MhaJob {
            heads: 16,
            d_head: 64,
            context,
            sync_bytes: 0,
        }
    }

    fn kernel(headwise: bool) -> FusedMhaKernel {
        let cfg = ArchConfig::builder()
            .opts(OptimizationFlags {
                headwise_pipeline: headwise,
                ..OptimizationFlags::ALL
            })
            .build()
            .unwrap();
        FusedMhaKernel::new(&cfg)
    }

    #[test]
    fn headwise_pipeline_is_faster() {
        let on = kernel(true).timing(&job(512)).total;
        let off = kernel(false).timing(&job(512)).total;
        assert!(on < off, "pipelined {on} vs serialized {off}");
        // hiding softmax should save roughly the softmax time of all but
        // the pipeline-fill heads
        let saved = off.as_f64() - on.as_f64();
        assert!(saved > 0.5 * kernel(true).softmax_cycles(&job(512)) as f64 * 15.0);
    }

    #[test]
    fn longer_context_costs_more() {
        let k = kernel(true);
        let short = k.timing(&job(64)).total;
        let long = k.timing(&job(512)).total;
        assert!(long > short);
        // roughly linear in context once streaming dominates
        let ratio = long.as_f64() / short.as_f64();
        assert!(ratio > 4.0 && ratio < 10.0, "ratio {ratio}");
    }

    #[test]
    fn fewer_heads_scale_down() {
        let k = kernel(true);
        let full = k.timing(&job(256)).total.as_f64();
        let half = k
            .timing(&MhaJob {
                heads: 8,
                ..job(256)
            })
            .total
            .as_f64();
        let ratio = full / half;
        assert!(ratio > 1.6 && ratio < 2.4, "ratio {ratio}");
    }

    #[test]
    fn byte_accounting() {
        let j = job(128);
        assert_eq!(j.key_bytes(), 16 * 64 * 128);
        assert_eq!(j.key_bytes(), j.value_bytes());
    }

    #[test]
    fn sync_hidden_across_heads() {
        let cfg4 = ArchConfig::builder().nodes(4).build().unwrap();
        let k_on = FusedMhaKernel::new(&cfg4);
        let k_off = FusedMhaKernel::new(&cfg4.with_opts(OptimizationFlags {
            hide_transmission: false,
            ..OptimizationFlags::ALL
        }));
        let j = MhaJob {
            heads: 4,
            d_head: 64,
            context: 256,
            sync_bytes: 256,
        };
        assert!(k_on.timing(&j).segment("sync") < k_off.timing(&j).segment("sync"));
    }

    #[test]
    fn segments_present() {
        let t = kernel(true).timing(&job(64));
        for label in ["score", "softmax", "mix", "sync", "overhead"] {
            assert!(t.segments.iter().any(|s| s.label == label));
        }
    }

    #[test]
    #[should_panic(expected = "degenerate MHA job")]
    fn zero_context_rejected() {
        let _ = kernel(true).timing(&MhaJob {
            heads: 1,
            d_head: 64,
            context: 0,
            sync_bytes: 0,
        });
    }
}
