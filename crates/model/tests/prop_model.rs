//! Property-based tests for the functional GPT-2 substrate.

use proptest::prelude::*;

use looplynx_model::attention::{attend_all, attend_heads};
use looplynx_model::config::ModelConfig;
use looplynx_model::generate::Autoregressive;
use looplynx_model::gpt2::Gpt2Model;
use looplynx_model::kv_cache::LayerKvCache;
use looplynx_model::sampler::Sampler;
use looplynx_model::tokenizer::ByteTokenizer;

fn arb_vec(d: usize, seed: u64) -> Vec<f32> {
    (0..d)
        .map(|i| {
            (((seed as usize).wrapping_mul(31).wrapping_add(i * 17)) % 200) as f32 / 50.0 - 2.0
        })
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Attention weights are causal: tokens appended after `valid_len`
    /// never influence the output, whatever their contents.
    #[test]
    fn attention_is_causal(seed in any::<u64>(), tokens in 2usize..8, poison in any::<u64>()) {
        let d_head = 8;
        let heads = 2;
        let d = d_head * heads;
        let mut clean = LayerKvCache::new(d_head);
        let mut poisoned = LayerKvCache::new(d_head);
        for t in 0..tokens {
            let k = arb_vec(d, seed.wrapping_add(t as u64));
            let v = arb_vec(d, seed.wrapping_add(1000 + t as u64));
            clean.append(&k, &v);
            poisoned.append(&k, &v);
        }
        // append junk future tokens only to the poisoned cache
        poisoned.append(&arb_vec(d, poison), &arb_vec(d, poison.wrapping_add(1)));
        let q = arb_vec(d, seed ^ 0xABCD);
        let a = attend_all(&q, &clean, heads, d_head, tokens);
        let b = attend_all(&q, &poisoned, heads, d_head, tokens);
        prop_assert_eq!(a, b);
    }

    /// Head-partitioned attention over head-sliced caches stitches to the
    /// full-width result bit-for-bit, for any split point.
    #[test]
    fn head_partition_exact(seed in any::<u64>(), tokens in 1usize..6, split in 1usize..4) {
        let d_head = 4;
        let heads = 4;
        let d = d_head * heads;
        let cut = split * d_head;
        let mut full = LayerKvCache::new(d_head);
        let mut lo = LayerKvCache::new(d_head);
        let mut hi = LayerKvCache::new(d_head);
        for t in 0..tokens {
            let k = arb_vec(d, seed.wrapping_add(t as u64 * 3));
            let v = arb_vec(d, seed.wrapping_add(t as u64 * 7 + 1));
            full.append(&k, &v);
            lo.append(&k[..cut], &v[..cut]);
            hi.append(&k[cut..], &v[cut..]);
        }
        let q = arb_vec(d, seed ^ 0x1234);
        let reference = attend_all(&q, &full, heads, d_head, tokens);
        let a = attend_heads(&q[..cut], &lo, 0..split, 0, d_head, tokens);
        let b = attend_heads(&q[cut..], &hi, split..heads, split, d_head, tokens);
        let stitched: Vec<f32> = a.into_iter().chain(b).collect();
        prop_assert_eq!(reference, stitched);
    }

    /// Greedy generation is a pure function of (seed, prompt).
    #[test]
    fn generation_deterministic(seed in any::<u64>(), prompt in prop::collection::vec(0u32..256, 1..6)) {
        let cfg = ModelConfig::tiny();
        let mut a = Gpt2Model::synthetic(&cfg, seed);
        let mut b = Gpt2Model::synthetic(&cfg, seed);
        let ta = a.generate(&prompt, 4, &mut Sampler::greedy());
        let tb = b.generate(&prompt, 4, &mut Sampler::greedy());
        prop_assert_eq!(ta, tb);
    }

    /// Prefill-then-decode equals token-by-token processing (KV-cache
    /// correctness) for arbitrary prompts.
    #[test]
    fn kv_cache_equivalence(seed in 0u64..100, prompt in prop::collection::vec(0u32..256, 2..6)) {
        let cfg = ModelConfig::tiny();
        let mut fast = Gpt2Model::synthetic(&cfg, seed);
        let mut slow = Gpt2Model::synthetic(&cfg, seed);
        let fast_logits = fast.prefill(&prompt);
        slow.prefill(&prompt[..1]);
        let mut slow_logits = Vec::new();
        for &t in &prompt[1..] {
            slow_logits = slow.decode_step(t);
        }
        for (x, y) in fast_logits.iter().zip(&slow_logits) {
            prop_assert!((x - y).abs() < 1e-4, "{x} vs {y}");
        }
    }

    /// Generated token ids are always within the vocabulary.
    #[test]
    fn tokens_in_vocab(seed in any::<u64>(), k in 1usize..16) {
        let cfg = ModelConfig::tiny();
        let mut m = Gpt2Model::synthetic(&cfg, seed);
        let mut sampler = Sampler::top_k(k, 1.0, seed);
        let out = m.generate(&[1, 2], 6, &mut sampler);
        prop_assert!(out.iter().all(|&t| (t as usize) < cfg.vocab));
    }

    /// The byte tokenizer round-trips arbitrary strings.
    #[test]
    fn tokenizer_roundtrip(s in "\\PC{0,64}") {
        let tok = ByteTokenizer::new();
        prop_assert_eq!(tok.decode(&tok.encode(&s)), s);
    }

    /// KV byte accounting is exact: 2 bytes per element per token.
    #[test]
    fn kv_bytes_exact(d_head in prop::sample::select(vec![2usize, 4, 8]), heads in 1usize..5, tokens in 0usize..10) {
        let d = d_head * heads;
        let mut c = LayerKvCache::new(d_head);
        for t in 0..tokens {
            c.append(&arb_vec(d, t as u64), &arb_vec(d, 100 + t as u64));
        }
        prop_assert_eq!(c.byte_len(), 2 * d * tokens);
    }
}
