//! SLR floorplanning (paper Fig. 7 left panel).
//!
//! "One Alveo U50 FPGA is composed of two super logic regions (SLRs) …
//! one accelerator node can fit within one SLR region. Therefore, we deploy
//! two accelerator nodes across two SLRs in one Alveo U50 FPGA."
//! [`FloorPlan::place`] verifies that fit and renders the layout.

use std::fmt;

use serde::{Deserialize, Serialize};

use crate::device::FpgaDevice;
use crate::resources::ResourceVector;

/// Error returned when a node does not fit its SLR.
#[derive(Debug, Clone, PartialEq)]
pub struct PlacementError {
    slr: usize,
    needed: ResourceVector,
    available: ResourceVector,
}

impl fmt::Display for PlacementError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "node does not fit SLR{}: needs {} but SLR offers {}",
            self.slr, self.needed, self.available
        )
    }
}

impl std::error::Error for PlacementError {}

/// A node placed on one SLR.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PlacedNode {
    /// Node index within the ring.
    pub node_id: usize,
    /// Device index.
    pub device: usize,
    /// SLR index within the device.
    pub slr: usize,
    /// Resources the node occupies.
    pub resources: ResourceVector,
    /// Fraction of the SLR's binding resource consumed.
    pub slr_utilization: f64,
}

/// A complete multi-device placement.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FloorPlan {
    device_name: String,
    slrs_per_device: usize,
    nodes: Vec<PlacedNode>,
}

impl FloorPlan {
    /// Places `ring_nodes` identical nodes onto as many devices as needed,
    /// one node per SLR, filling each device before opening the next.
    ///
    /// # Errors
    ///
    /// Returns [`PlacementError`] if a node exceeds its SLR's resources.
    pub fn place(
        device: &FpgaDevice,
        node_resources: ResourceVector,
        ring_nodes: usize,
    ) -> Result<FloorPlan, PlacementError> {
        let slr = device.slr_resources();
        let mut nodes = Vec::with_capacity(ring_nodes);
        for id in 0..ring_nodes {
            let slr_idx = id % device.slr_count();
            if !node_resources.fits_within(&slr) {
                return Err(PlacementError {
                    slr: slr_idx,
                    needed: node_resources,
                    available: slr,
                });
            }
            nodes.push(PlacedNode {
                node_id: id,
                device: id / device.slr_count(),
                slr: slr_idx,
                resources: node_resources,
                slr_utilization: node_resources.max_utilization_of(&slr),
            });
        }
        Ok(FloorPlan {
            device_name: device.name().to_owned(),
            slrs_per_device: device.slr_count(),
            nodes,
        })
    }

    /// Placed nodes in ring order.
    pub fn nodes(&self) -> &[PlacedNode] {
        &self.nodes
    }

    /// Number of devices the plan occupies.
    pub fn devices(&self) -> usize {
        self.nodes.iter().map(|n| n.device + 1).max().unwrap_or(0)
    }

    /// Renders the Fig. 7-style layout: one box per device, one row per
    /// SLR, ring links drawn between consecutive nodes.
    pub fn render(&self) -> String {
        let mut out = String::new();
        for dev in 0..self.devices() {
            out.push_str(&format!(
                "┌── {} #{dev} ──────────────┐\n",
                self.device_name
            ));
            for slr in (0..self.slrs_per_device).rev() {
                let occupant = self.nodes.iter().find(|n| n.device == dev && n.slr == slr);
                match occupant {
                    Some(n) => out.push_str(&format!(
                        "│ SLR{slr}: node {} ({:>4.1}% busy) │\n",
                        n.node_id,
                        n.slr_utilization * 100.0
                    )),
                    None => out.push_str(&format!("│ SLR{slr}: (empty)             │\n")),
                }
            }
            out.push_str("└──────────────────────────────┘\n");
            if dev + 1 < self.devices() {
                out.push_str("        │ ring (AXI-Stream)\n");
            }
        }
        out
    }
}

impl fmt::Display for FloorPlan {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} nodes on {} device(s) of {}",
            self.nodes.len(),
            self.devices(),
            self.device_name
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::resources::NodeResourceModel;

    #[test]
    fn paper_dual_node_placement() {
        let plan = FloorPlan::place(
            &FpgaDevice::alveo_u50(),
            NodeResourceModel::paper().per_node(2),
            2,
        )
        .unwrap();
        assert_eq!(plan.devices(), 1);
        assert_eq!(plan.nodes().len(), 2);
        assert_eq!(plan.nodes()[0].slr, 0);
        assert_eq!(plan.nodes()[1].slr, 1);
    }

    #[test]
    fn four_nodes_take_two_devices() {
        let plan = FloorPlan::place(
            &FpgaDevice::alveo_u50(),
            NodeResourceModel::paper().per_node(4),
            4,
        )
        .unwrap();
        assert_eq!(plan.devices(), 2);
        assert_eq!(plan.nodes()[2].device, 1);
    }

    #[test]
    fn oversized_node_fails_placement() {
        let huge = ResourceVector::new(1e6, 1e9, 1e9, 1e6, 1e6);
        let err = FloorPlan::place(&FpgaDevice::alveo_u50(), huge, 1).unwrap_err();
        assert!(err.to_string().contains("does not fit"));
    }

    #[test]
    fn utilization_is_sane() {
        let plan = FloorPlan::place(
            &FpgaDevice::alveo_u50(),
            NodeResourceModel::paper().per_node(2),
            2,
        )
        .unwrap();
        for n in plan.nodes() {
            assert!(n.slr_utilization > 0.1 && n.slr_utilization <= 1.0);
        }
    }

    #[test]
    fn render_shows_every_node() {
        let plan = FloorPlan::place(
            &FpgaDevice::alveo_u50(),
            NodeResourceModel::paper().per_node(4),
            4,
        )
        .unwrap();
        let art = plan.render();
        assert!(art.contains("node 0"));
        assert!(art.contains("node 3"));
        assert!(art.contains("ring"));
    }

    #[test]
    fn display_summarises() {
        let plan = FloorPlan::place(
            &FpgaDevice::alveo_u50(),
            NodeResourceModel::paper().per_node(1),
            1,
        )
        .unwrap();
        assert!(plan.to_string().contains("1 nodes on 1 device"));
    }
}
