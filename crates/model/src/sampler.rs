//! Token sampling strategies.
//!
//! The paper's host performs sampling after synchronizing model output from
//! the accelerator; greedy decoding is what its latency measurements imply
//! (one deterministic token per step). Top-k is provided for the example
//! applications.

use std::fmt;

use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};

/// A sampling strategy over next-token logits.
///
/// `Clone` snapshots the full sampler state (including the top-k RNG
/// stream position), so a preempted sequence can be resumed later and
/// continue sampling the exact token stream it would have produced.
#[derive(Clone)]
pub enum Sampler {
    /// Always pick the arg-max logit (ties break to the lowest id).
    Greedy,
    /// Sample among the `k` highest logits with a temperature.
    TopK {
        /// Number of candidates kept.
        k: usize,
        /// Softmax temperature (> 0).
        temperature: f32,
        /// Seeded RNG for reproducibility.
        rng: StdRng,
    },
}

impl fmt::Debug for Sampler {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Sampler::Greedy => write!(f, "Sampler::Greedy"),
            Sampler::TopK { k, temperature, .. } => {
                write!(f, "Sampler::TopK(k={k}, T={temperature})")
            }
        }
    }
}

impl Sampler {
    /// Greedy (arg-max) sampler.
    pub fn greedy() -> Self {
        Sampler::Greedy
    }

    /// Top-k sampler with the given temperature and seed.
    ///
    /// # Panics
    ///
    /// Panics if `k == 0` or `temperature <= 0`.
    pub fn top_k(k: usize, temperature: f32, seed: u64) -> Self {
        assert!(k > 0, "k must be positive");
        assert!(
            temperature > 0.0 && temperature.is_finite(),
            "temperature must be positive"
        );
        Sampler::TopK {
            k,
            temperature,
            rng: StdRng::seed_from_u64(seed),
        }
    }

    /// Picks the next token id from `logits`.
    ///
    /// # Panics
    ///
    /// Panics if `logits` is empty.
    pub fn sample(&mut self, logits: &[f32]) -> u32 {
        assert!(!logits.is_empty(), "cannot sample from empty logits");
        match self {
            Sampler::Greedy => argmax(logits) as u32,
            Sampler::TopK {
                k,
                temperature,
                rng,
            } => {
                let mut idx: Vec<usize> = (0..logits.len()).collect();
                idx.sort_by(|&a, &b| {
                    logits[b]
                        .partial_cmp(&logits[a])
                        .unwrap_or(std::cmp::Ordering::Equal)
                        .then(a.cmp(&b))
                });
                idx.truncate(*k);
                let max = logits[idx[0]];
                let weights: Vec<f32> = idx
                    .iter()
                    .map(|&i| ((logits[i] - max) / *temperature).exp())
                    .collect();
                let total: f32 = weights.iter().sum();
                let mut draw = rng.random::<f32>() * total;
                for (&i, &w) in idx.iter().zip(&weights) {
                    if draw <= w {
                        return i as u32;
                    }
                    draw -= w;
                }
                idx[idx.len() - 1] as u32
            }
        }
    }
}

/// Index of the largest value (first occurrence wins).
pub fn argmax(xs: &[f32]) -> usize {
    let mut best = 0;
    for (i, &x) in xs.iter().enumerate() {
        if x > xs[best] {
            best = i;
        }
    }
    best
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn greedy_picks_argmax() {
        let mut s = Sampler::greedy();
        assert_eq!(s.sample(&[0.1, 3.0, 2.0]), 1);
    }

    #[test]
    fn greedy_tie_breaks_low() {
        let mut s = Sampler::greedy();
        assert_eq!(s.sample(&[5.0, 5.0, 1.0]), 0);
    }

    #[test]
    fn top1_equals_greedy() {
        let logits = [0.5f32, -2.0, 4.0, 1.0];
        let mut tk = Sampler::top_k(1, 1.0, 123);
        let mut g = Sampler::greedy();
        for _ in 0..5 {
            assert_eq!(tk.sample(&logits), g.sample(&logits));
        }
    }

    #[test]
    fn top_k_stays_within_candidates() {
        let logits = [10.0f32, 9.0, 8.0, -50.0, -60.0];
        let mut s = Sampler::top_k(3, 1.0, 7);
        for _ in 0..50 {
            let t = s.sample(&logits);
            assert!(t < 3, "sampled outside top-3: {t}");
        }
    }

    #[test]
    fn same_seed_reproduces() {
        let logits: Vec<f32> = (0..20).map(|i| (i as f32 * 0.7).sin()).collect();
        let mut a = Sampler::top_k(5, 0.8, 42);
        let mut b = Sampler::top_k(5, 0.8, 42);
        let sa: Vec<u32> = (0..10).map(|_| a.sample(&logits)).collect();
        let sb: Vec<u32> = (0..10).map(|_| b.sample(&logits)).collect();
        assert_eq!(sa, sb);
    }

    #[test]
    fn high_temperature_spreads_mass() {
        let logits = [2.0f32, 1.0, 0.0];
        let mut s = Sampler::top_k(3, 100.0, 3);
        let mut seen = [false; 3];
        for _ in 0..200 {
            seen[s.sample(&logits) as usize] = true;
        }
        assert!(seen.iter().all(|&b| b), "high T should visit all: {seen:?}");
    }

    #[test]
    #[should_panic(expected = "empty logits")]
    fn empty_logits_panics() {
        Sampler::greedy().sample(&[]);
    }

    #[test]
    #[should_panic(expected = "k must be positive")]
    fn zero_k_panics() {
        let _ = Sampler::top_k(0, 1.0, 1);
    }
}
