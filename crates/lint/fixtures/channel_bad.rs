// Negative fixture for `bounded_channel`: unbounded mpsc in serve.

use std::sync::mpsc;

fn offender() {
    let (tx, rx) = mpsc::channel::<u32>();
    tx.send(1).ok();
    let _ = rx.recv();
}
