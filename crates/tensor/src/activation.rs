//! GELU and two-phase softmax.
//!
//! The softmax decomposition mirrors the hardware: "the calculation of
//! softmax requires obtaining the global sum of exponent values (softmax.1)
//! before generating the weighted score (softmax.2)" (paper Section III-C).
//! Keeping the two phases as separate functions lets the MHA kernel model
//! account for them individually and lets the head-wise pipeline hide phase
//! boundaries between heads.

use serde::{Deserialize, Serialize};

/// GELU activation (tanh approximation, as used by GPT-2).
///
/// The inner tanh is [`tanh_fast`] rather than libm's `tanhf`: the
/// accelerator evaluates GELU in a dedicated piecewise hardware unit, and
/// the host model needs the same property — a fixed, branchless sequence
/// of f32 operations. `tanhf` is a per-element library call costing tens
/// of nanoseconds; at batched-decode volume (`batch × d_ff × layers`
/// activations per step) it was the single largest non-GEMM cost of a
/// decode iteration. [`tanh_fast`] agrees with `tanhf` to ~1e-7 absolute
/// (beneath the int8 quantization granularity of every downstream
/// consumer) and is bit-deterministic across platforms, so all
/// functional paths — single-token, batched prefill, batched decode —
/// stay exactly equal to each other.
#[inline]
pub fn gelu(x: f32) -> f32 {
    const SQRT_2_OVER_PI: f32 = 0.797_884_6;
    0.5 * x * (1.0 + tanh_fast(SQRT_2_OVER_PI * (x + 0.044_715 * x * x * x)))
}

/// Fast deterministic tanh: `tanh(|x|) = (1 - e⁻²ˡˣˡ) / (1 + e⁻²ˡˣˡ)`
/// with a polynomial `exp`, saturating for `|x| ≥ 9` (where `tanh`
/// rounds to ±1 in f32 anyway). Branchless — every lane runs the same
/// instruction sequence, so the loop auto-vectorizes. Maximum absolute
/// error vs libm `tanhf` is ~1e-7.
#[inline]
pub fn tanh_fast(x: f32) -> f32 {
    let a = x.abs().min(9.0);
    let t = exp_fast(-2.0 * a);
    ((1.0 - t) / (1.0 + t)).copysign(x)
}

/// Polynomial `eˣ` for `x ∈ [-18, 0]`: split `x·log₂e` into integer and
/// fractional parts, evaluate `e^(f·ln2)` by a degree-6 Taylor polynomial
/// (|f| ≤ ½ keeps the argument small), and apply the integer power of two
/// through the f32 exponent field. Pure f32 arithmetic, no library calls.
#[inline]
fn exp_fast(x: f32) -> f32 {
    const LOG2E: f32 = std::f32::consts::LOG2_E;
    const LN2: f32 = std::f32::consts::LN_2;
    let y = x * LOG2E;
    // Ties-even rounding compiles to a single vectorizable `roundps`
    // (plain `round` scalarizes); either split keeps |y - n| ≤ ½.
    let n = y.round_ties_even();
    let g = (y - n) * LN2;
    let p = 1.0
        + g * (1.0
            + g * (0.5
                + g * (1.0 / 6.0 + g * (1.0 / 24.0 + g * (1.0 / 120.0 + g * (1.0 / 720.0))))));
    // 2^n via the exponent field; n ∈ [-26, 0] here so the biased
    // exponent stays in range.
    p * f32::from_bits((((n as i32) + 127) << 23) as u32)
}

/// Applies GELU elementwise (via the vectorized
/// [`crate::simd::gelu_slice`], bit-identical to mapping [`gelu`]).
pub fn gelu_vec(xs: &[f32]) -> Vec<f32> {
    let mut out = xs.to_vec();
    crate::simd::gelu_slice(&mut out);
    out
}

/// Applies GELU elementwise in place (same math as [`gelu_vec`], no
/// allocation).
pub fn gelu_in_place(xs: &mut [f32]) {
    crate::simd::gelu_slice(xs);
}

/// Intermediate state after softmax phase 1: shifted exponentials and their
/// global sum.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SoftmaxPhase1 {
    exps: Vec<f32>,
    sum: f32,
}

impl SoftmaxPhase1 {
    /// The global exponent sum that phase 2 blocks on.
    pub fn sum(&self) -> f32 {
        self.sum
    }

    /// Number of scores.
    pub fn len(&self) -> usize {
        self.exps.len()
    }

    /// Whether there were no scores.
    pub fn is_empty(&self) -> bool {
        self.exps.is_empty()
    }
}

/// Softmax phase 1: numerically-stable exponentials and their global sum.
pub fn softmax_phase1(scores: &[f32]) -> SoftmaxPhase1 {
    let max = scores.iter().copied().fold(f32::NEG_INFINITY, f32::max);
    let exps: Vec<f32> = if scores.is_empty() {
        Vec::new()
    } else {
        scores.iter().map(|&s| (s - max).exp()).collect()
    };
    let sum = exps.iter().sum();
    SoftmaxPhase1 { exps, sum }
}

/// Softmax phase 2: divides by the global sum to produce weights.
pub fn softmax_phase2(phase1: &SoftmaxPhase1) -> Vec<f32> {
    if phase1.exps.is_empty() {
        return Vec::new();
    }
    let inv = 1.0 / phase1.sum;
    phase1.exps.iter().map(|&e| e * inv).collect()
}

/// Complete softmax (both phases).
pub fn softmax(scores: &[f32]) -> Vec<f32> {
    softmax_phase2(&softmax_phase1(scores))
}

/// Complete softmax into a caller-provided buffer (cleared and resized).
///
/// Performs the identical operations of [`softmax`] in the identical
/// order — shifted exponentials, global sum, multiply by the reciprocal —
/// so results are bit-identical, just without the two allocations.
pub fn softmax_into(scores: &[f32], out: &mut Vec<f32>) {
    out.clear();
    if scores.is_empty() {
        return;
    }
    let max = scores.iter().copied().fold(f32::NEG_INFINITY, f32::max);
    out.extend(scores.iter().map(|&s| (s - max).exp()));
    let sum: f32 = out.iter().sum();
    let inv = 1.0 / sum;
    for e in out.iter_mut() {
        *e *= inv;
    }
}

/// Causal mask: positions after `valid_len` are forced to `-inf` so the
/// subsequent softmax assigns them zero weight — "the mask unit ensures
/// that only forward attention is kept" (paper Section III-D).
pub fn causal_mask(scores: &mut [f32], valid_len: usize) {
    for s in scores.iter_mut().skip(valid_len) {
        *s = f32::NEG_INFINITY;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn gelu_known_points() {
        assert_eq!(gelu(0.0), 0.0);
        assert!((gelu(1.0) - 0.8412).abs() < 1e-3);
        assert!((gelu(-1.0) + 0.1588).abs() < 1e-3);
        // large positive ≈ identity; large negative ≈ 0
        assert!((gelu(10.0) - 10.0).abs() < 1e-3);
        assert!(gelu(-10.0).abs() < 1e-3);
    }

    #[test]
    fn tanh_fast_tracks_libm_to_1e6() {
        let mut worst = 0.0f32;
        let mut x = -12.0f32;
        while x <= 12.0 {
            let err = (tanh_fast(x) - x.tanh()).abs();
            worst = worst.max(err);
            x += 0.003;
        }
        assert!(worst < 1e-6, "worst tanh_fast error {worst}");
        assert_eq!(tanh_fast(0.0), 0.0);
        assert_eq!(tanh_fast(50.0), 1.0);
        assert_eq!(tanh_fast(-50.0), -1.0);
        // odd symmetry is exact (computed on |x| then sign-copied)
        assert_eq!(tanh_fast(1.7), -tanh_fast(-1.7));
    }

    #[test]
    fn softmax_sums_to_one() {
        let w = softmax(&[1.0, 2.0, 3.0, 4.0]);
        let sum: f32 = w.iter().sum();
        assert!((sum - 1.0).abs() < 1e-6);
        assert!(w.windows(2).all(|p| p[0] < p[1]), "monotone in scores");
    }

    #[test]
    fn softmax_is_shift_invariant() {
        let a = softmax(&[1.0, 2.0, 3.0]);
        let b = softmax(&[101.0, 102.0, 103.0]);
        for (x, y) in a.iter().zip(&b) {
            assert!((x - y).abs() < 1e-6);
        }
    }

    #[test]
    fn softmax_survives_large_scores() {
        let w = softmax(&[1000.0, 999.0]);
        assert!(w.iter().all(|v| v.is_finite()));
        assert!((w.iter().sum::<f32>() - 1.0).abs() < 1e-6);
    }

    #[test]
    fn softmax_into_is_bit_identical_to_softmax() {
        // The hot path's single-buffer variant must never drift from the
        // two-phase composition (the attention bit-exactness suite's
        // premise).
        for scores in [
            vec![],
            vec![0.0f32],
            vec![1.0, 2.0, 3.0, 4.0],
            vec![1000.0, 999.0, -1000.0],
            (0..257).map(|i| (i as f32 * 0.37).sin() * 9.0).collect(),
        ] {
            let mut out = vec![7.0f32; 3]; // dirty buffer
            softmax_into(&scores, &mut out);
            assert_eq!(out, softmax(&scores), "len {}", scores.len());
        }
    }

    #[test]
    fn phases_compose_to_softmax() {
        let scores = [0.5f32, -1.0, 2.0];
        let p1 = softmax_phase1(&scores);
        assert_eq!(p1.len(), 3);
        let direct = softmax(&scores);
        let phased = softmax_phase2(&p1);
        assert_eq!(direct, phased);
    }

    #[test]
    fn empty_softmax_is_empty() {
        assert!(softmax(&[]).is_empty());
        assert!(softmax_phase1(&[]).is_empty());
    }

    #[test]
    fn causal_mask_zeroes_future() {
        let mut scores = vec![1.0f32; 5];
        causal_mask(&mut scores, 3);
        let w = softmax(&scores);
        assert!(w[3] == 0.0 && w[4] == 0.0);
        assert!((w[..3].iter().sum::<f32>() - 1.0).abs() < 1e-6);
    }

    #[test]
    fn full_mask_keeps_everything() {
        let mut scores = vec![1.0f32, 2.0];
        causal_mask(&mut scores, 2);
        assert!(scores.iter().all(|s| s.is_finite()));
    }
}
