//! The tier-1 gate: the workspace itself must lint clean. This is the
//! same check `cargo run -p looplynx-lint` (and CI) performs, expressed
//! as a test so `cargo test -q` cannot go green over a violation.

use looplynx_lint::{lint_workspace, workspace_root};

#[test]
fn workspace_has_no_unwaived_findings() {
    let root = workspace_root();
    let findings = lint_workspace(&root).expect("workspace sources readable");
    assert!(
        findings.is_empty(),
        "workspace lint violations (fix, or waive with \
         `// lint: allow(<rule>) — <reason>`; see docs/INVARIANTS.md):\n{}",
        findings
            .iter()
            .map(|f| format!("  {f}"))
            .collect::<Vec<_>>()
            .join("\n")
    );
}
