//! Regenerates paper Fig. 7 (resource utilization + FPGA layout).
fn main() {
    print!("{}", looplynx_bench::experiments::render_fig7());
}
