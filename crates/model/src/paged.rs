//! Paged (block-table) multi-sequence KV allocator.
//!
//! [`crate::kv_cache::SlotKvArena`] preallocates `capacity` tokens per
//! slot, so KV memory scales with `slots × worst-case context` and caps
//! resident concurrency long before admission control does. The paged
//! arena decouples the two: KV storage is a pool of fixed-size **pages**
//! (`page_tokens` tokens each), slots hold a **page table** instead of a
//! private arena, and pages are granted on demand as a sequence grows.
//! Many short sequences can then share the bytes one worst-case sequence
//! would have monopolized — the oversubscription that lets the serving
//! gateway admit bursts instead of rejecting them.
//!
//! # Layout
//!
//! Storage is one pool *per layer* (`LayerPool`), each holding `pages`
//! pages. Within a page the layout is head-major, exactly like the
//! contiguous arena:
//!
//! ```text
//! keys[((page * heads + h) * page_tokens + t) * d_head + j]   (int8)
//! key_scales[(page * heads + h) * page_tokens + t]            (f32)
//! ```
//!
//! so one `(page, head)` pair is a contiguous strip of `page_tokens`
//! tokens — a [`KvSegment`] the attention core iterates directly.
//!
//! Page *indices* form a single space shared by all layers: because every
//! layer of a slot appends the same tokens in lockstep, one grant hands
//! page `p` of **every** layer's pool to the slot, and one per-slot page
//! table serves all layers. Grants take the lowest free index first and
//! releases restore sort order, so identical operation sequences always
//! produce identical page tables (reproducible schedules, and replayed
//! computations stay bit-identical).
//!
//! # Bit-exactness
//!
//! Appends quantize with the same per-head math as the contiguous cache
//! ([`crate::kv_cache`]'s `quantize_chunk`) and attention walks pages in
//! token order through the segment-generic core
//! ([`crate::attention::attend_heads_segments_into`]); per-token dot
//! products are independent, so splitting a sequence across pages changes
//! *where* bytes live but not one arithmetic operation. Paged decode is
//! therefore byte-identical to the contiguous arena by construction — and
//! by the property suites in `tests/paged_exact.rs`.
//!
//! # Sharing and copy-on-write
//!
//! Pages carry a **reference count** so one physical page can back the
//! same token span in many readers at once — the substrate of the
//! engine-level prefix cache ([`crate::prefix`] holds the
//! content-addressing). Three kinds of reference exist: a slot's page
//! table entry (granted pages start at count 1), an extra table entry
//! from [`PagedKvArena::map_shared`] (a second sequence mapping a cached
//! prefix), and a cache pin from [`PagedKvArena::retain_page`]. A page
//! returns to the free list only when its count reaches zero, and
//! [`PagedKvArena::release`] reports how many pages a release actually
//! freed so callers can audit conservation.
//!
//! Shared pages are strictly read-only: attention iterates them through
//! [`PagedLayerView`] without writing, and the only writer,
//! [`PagedKvArena::append_at`], requires exclusive ownership. The one
//! legal write into shared territory is appending to a partially-filled
//! boundary page, and [`PagedKvArena::try_reserve`] handles it by
//! **copy-on-write**: it counts one extra page, copies the shared page's
//! bytes across every layer pool into a fresh page, swaps the slot's
//! table entry, and drops one reference on the original — after which
//! the append is an ordinary exclusive write. The fork allocates from
//! the same descending free list as any grant, so replayed schedules
//! still produce identical page tables.

use serde::{Deserialize, Serialize};

use crate::attention::KvSegment;
use crate::kv_cache::{quantize_chunk, LayerKvCache};

/// A page grant could not be satisfied: the pool has fewer free pages
/// than the operation needs. Nothing was modified — the caller can wait
/// for releases, evict a resident, or surface a typed backend error.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PagesExhausted {
    /// Pages the operation needed (per layer; layers grant in lockstep).
    pub needed: usize,
    /// Pages free when the grant was attempted.
    pub free: usize,
}

impl std::fmt::Display for PagesExhausted {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "page pool exhausted: need {} page(s), {} free",
            self.needed, self.free
        )
    }
}

impl std::error::Error for PagesExhausted {}

/// One layer's page pool: `pages` fixed-size pages of head-major int8
/// keys/values plus per-(head, token) scales.
#[derive(Debug, Clone, Serialize, Deserialize)]
struct LayerPool {
    keys: Vec<i8>,
    values: Vec<i8>,
    key_scales: Vec<f32>,
    value_scales: Vec<f32>,
}

/// One resident sequence's bookkeeping: its page table and position.
#[derive(Debug, Clone)]
struct PagedSlot {
    /// `table[i]` backs tokens `[i * page_tokens, (i + 1) * page_tokens)`
    /// in every layer's pool.
    table: Vec<usize>,
    /// Tokens this sequence has processed (all layers stay in step).
    pos: usize,
    /// Whether a sequence currently owns this slot.
    in_use: bool,
}

/// The paged multi-sequence KV arena: drop-in replacement for
/// [`crate::kv_cache::SlotKvArena`] in the engine's continuous-batching
/// path, with storage decoupled from slot count. See the module docs for
/// layout and invariants.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct PagedKvArena {
    layers: usize,
    d_head: usize,
    heads: usize,
    /// Per-slot token bound (admission-checked worst case).
    capacity: usize,
    /// Tokens per page.
    page_tokens: usize,
    /// Pages per layer pool.
    pages: usize,
    pools: Vec<LayerPool>,
    /// Free page indices, sorted descending so `pop()` yields the lowest
    /// free index (deterministic allocation order).
    free: Vec<usize>,
    /// References per page: table entries holding it (grants and shared
    /// mappings) plus cache pins. Zero exactly when the page is free.
    refcount: Vec<u32>,
    slots: Vec<PagedSlot>,
}

impl PagedKvArena {
    /// Creates an arena of `slots` sequences over a pool of `pages` pages
    /// of `page_tokens` tokens per layer. `capacity` bounds any single
    /// sequence; the pool may hold fewer tokens than `slots × capacity`
    /// (oversubscription) or more (never exhausts).
    ///
    /// # Panics
    ///
    /// Panics if any dimension is zero or a single sequence at `capacity`
    /// could not fit in the pool.
    #[allow(clippy::too_many_arguments)]
    pub fn new(
        layers: usize,
        d_head: usize,
        heads: usize,
        slots: usize,
        capacity: usize,
        page_tokens: usize,
        pages: usize,
    ) -> Self {
        assert!(layers > 0, "layers must be positive");
        assert!(d_head > 0, "d_head must be positive");
        assert!(heads > 0, "heads must be positive");
        assert!(slots > 0, "slots must be positive");
        assert!(capacity > 0, "capacity must be positive");
        assert!(page_tokens > 0, "page_tokens must be positive");
        assert!(pages > 0, "pages must be positive");
        assert!(
            pages >= pages_for(capacity, page_tokens),
            "pool too small for one sequence at capacity"
        );
        let cells = pages * heads * page_tokens;
        PagedKvArena {
            layers,
            d_head,
            heads,
            capacity,
            page_tokens,
            pages,
            pools: (0..layers)
                .map(|_| LayerPool {
                    keys: vec![0; cells * d_head],
                    values: vec![0; cells * d_head],
                    key_scales: vec![0.0; cells],
                    value_scales: vec![0.0; cells],
                })
                .collect(),
            free: (0..pages).rev().collect(),
            refcount: vec![0; pages],
            slots: (0..slots)
                .map(|_| PagedSlot {
                    table: Vec::new(),
                    pos: 0,
                    in_use: false,
                })
                .collect(),
        }
    }

    /// Total slots (resident-sequence capacity).
    pub fn slots(&self) -> usize {
        self.slots.len()
    }

    /// Token bound of any single sequence.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Layers per slot.
    pub fn layers(&self) -> usize {
        self.layers
    }

    /// Heads per cached vector.
    pub fn heads(&self) -> usize {
        self.heads
    }

    /// Tokens per page.
    pub fn page_tokens(&self) -> usize {
        self.page_tokens
    }

    /// Pages in each layer's pool.
    pub fn total_pages(&self) -> usize {
        self.pages
    }

    /// Currently free pages (per layer; layers grant in lockstep).
    pub fn free_pages(&self) -> usize {
        self.free.len()
    }

    /// The block table of `slot`: page indices in token order (entry `i`
    /// backs tokens `[i * page_tokens, (i + 1) * page_tokens)`). Exposed
    /// for allocator audits — no double-grant, deterministic order.
    ///
    /// # Panics
    ///
    /// Panics if `slot` is out of range.
    pub fn slot_pages(&self, slot: usize) -> &[usize] {
        &self.slots[slot].table
    }

    /// Currently free slots.
    pub fn free_slots(&self) -> usize {
        self.slots.iter().filter(|s| !s.in_use).count()
    }

    /// Whether `slot` is owned by a resident sequence.
    ///
    /// # Panics
    ///
    /// Panics if `slot` is out of range.
    pub fn in_use(&self, slot: usize) -> bool {
        self.slots[slot].in_use
    }

    /// Claims the lowest-index free slot (empty page table, position 0),
    /// or `None` when every slot is resident. Claims **no pages**; the
    /// first [`PagedKvArena::try_reserve`] does.
    pub fn acquire(&mut self) -> Option<usize> {
        let slot = self.slots.iter().position(|s| !s.in_use)?;
        let state = &mut self.slots[slot];
        state.in_use = true;
        state.pos = 0;
        debug_assert!(state.table.is_empty(), "released slot kept pages");
        Some(slot)
    }

    /// Returns `slot` to the free list and drops one reference on each of
    /// its pages; pages whose count reaches zero return to the pool. Also
    /// the eviction primitive: a preempted sequence releases exactly like
    /// a finished one and is later rebuilt by re-prefill. Returns how many
    /// pages were actually freed (shared pages survive their other
    /// holders), so double-release bugs cannot hide inside aggregate
    /// free-page counts.
    ///
    /// # Panics
    ///
    /// Panics if `slot` is out of range or not in use.
    pub fn release(&mut self, slot: usize) -> usize {
        let state = &mut self.slots[slot];
        assert!(state.in_use, "slot {slot} not in use");
        state.in_use = false;
        state.pos = 0;
        let mut freed = 0;
        for page in state.table.drain(..) {
            assert!(self.refcount[page] > 0, "page {page} already free");
            self.refcount[page] -= 1;
            if self.refcount[page] == 0 {
                self.free.push(page);
                freed += 1;
            }
        }
        // Restore descending order so future grants stay lowest-first
        // regardless of release order (deterministic allocation).
        self.free.sort_unstable_by(|a, b| b.cmp(a));
        self.debug_assert_conserved();
        freed
    }

    /// Pool conservation: every page is either free or referenced, never
    /// both, never neither. Debug builds re-check after every lifecycle
    /// transition so a double-free of a shared page can never pass
    /// silently.
    fn debug_assert_conserved(&self) {
        debug_assert_eq!(
            self.free.len() + self.refcount.iter().filter(|&&r| r > 0).count(),
            self.pages,
            "page pool not conserved: free + referenced != total"
        );
        debug_assert!(
            self.free.iter().all(|&p| self.refcount[p] == 0),
            "a free page still carries references"
        );
    }

    /// Reference count of `page` (0 = free).
    ///
    /// # Panics
    ///
    /// Panics if `page` is out of range.
    pub fn page_refcount(&self, page: usize) -> u32 {
        self.refcount[page]
    }

    /// The per-page reference counts, indexed by page — the snapshot the
    /// prefix cache's eviction bookkeeping reads.
    pub fn refcounts(&self) -> &[u32] {
        &self.refcount
    }

    /// Pages in `slot`'s table that only it references — what a
    /// preemption of this slot would actually return to the pool.
    ///
    /// # Panics
    ///
    /// Panics if `slot` is out of range.
    pub fn unshared_pages(&self, slot: usize) -> usize {
        self.slots[slot]
            .table
            .iter()
            .filter(|&&p| self.refcount[p] == 1)
            .count()
    }

    /// Adds a cache pin to a live page (reference count +1). The caller —
    /// the prefix cache — promises to balance it with
    /// [`PagedKvArena::release_page`].
    ///
    /// # Panics
    ///
    /// Panics if `page` is out of range or free (a free page has no
    /// content to pin).
    pub fn retain_page(&mut self, page: usize) {
        assert!(self.refcount[page] > 0, "cannot pin free page {page}");
        self.refcount[page] += 1;
    }

    /// Drops one reference on `page`; when the count reaches zero the
    /// page returns to the free list. Returns whether this call freed it.
    ///
    /// # Panics
    ///
    /// Panics if `page` is out of range or already free.
    pub fn release_page(&mut self, page: usize) -> bool {
        assert!(self.refcount[page] > 0, "page {page} already free");
        self.refcount[page] -= 1;
        if self.refcount[page] > 0 {
            return false;
        }
        self.free.push(page);
        self.free.sort_unstable_by(|a, b| b.cmp(a));
        self.debug_assert_conserved();
        true
    }

    /// Maps already-populated pages into a freshly acquired `slot` as a
    /// shared read-only prefix covering `tokens` tokens: each page gains a
    /// reference, the slot's table adopts them in order, and its position
    /// jumps to `tokens` as if it had appended them itself. The caller
    /// guarantees the pages hold exactly the KV bytes a prefill of those
    /// tokens would have produced (the prefix cache verifies token spans
    /// before handing pages out).
    ///
    /// # Panics
    ///
    /// Panics if `slot` is out of range, not in use, or has any history
    /// (mapping goes under a sequence, never into one); if `tokens`
    /// exceeds the slot capacity or does not fit `pages`'s span; or if
    /// any page is out of range or free.
    pub fn map_shared(&mut self, slot: usize, pages: &[usize], tokens: usize) {
        let state = &self.slots[slot];
        assert!(state.in_use, "slot {slot} not in use");
        assert!(
            state.table.is_empty() && state.pos == 0,
            "slot {slot} already has history; shared prefixes map under a fresh sequence"
        );
        assert!(
            tokens <= self.capacity,
            "shared prefix overflows capacity {}",
            self.capacity
        );
        assert_eq!(
            pages.len(),
            pages_for(tokens, self.page_tokens),
            "page list does not match the token span"
        );
        for &page in pages {
            assert!(self.refcount[page] > 0, "cannot share free page {page}");
        }
        for &page in pages {
            self.refcount[page] += 1;
            self.slots[slot].table.push(page);
        }
        self.slots[slot].pos = tokens;
        self.debug_assert_conserved();
    }

    /// Tokens processed by the sequence in `slot`.
    ///
    /// # Panics
    ///
    /// Panics if `slot` is out of range.
    pub fn pos(&self, slot: usize) -> usize {
        self.slots[slot].pos
    }

    /// Tokens `slot`'s granted pages can hold.
    ///
    /// # Panics
    ///
    /// Panics if `slot` is out of range.
    pub fn granted_tokens(&self, slot: usize) -> usize {
        self.slots[slot].table.len() * self.page_tokens
    }

    /// Pages a grant for `additional` more tokens in `slot` would need —
    /// including the extra page a copy-on-write fork of a shared boundary
    /// page costs (see [`PagedKvArena::try_reserve`]).
    ///
    /// # Panics
    ///
    /// Panics if `slot` is out of range.
    pub fn pages_needed(&self, slot: usize, additional: usize) -> usize {
        let state = &self.slots[slot];
        pages_for(state.pos + additional, self.page_tokens).saturating_sub(state.table.len())
            + usize::from(self.needs_cow(slot, additional))
    }

    /// Whether appending `additional` tokens to `slot` would write into a
    /// shared page — only ever the partially-filled boundary page of a
    /// mapped prefix, since fully-written pages are never appended again.
    fn needs_cow(&self, slot: usize, additional: usize) -> bool {
        let state = &self.slots[slot];
        if additional == 0 {
            return false;
        }
        let first = state.pos / self.page_tokens;
        first < state.table.len() && self.refcount[state.table[first]] > 1
    }

    /// Grants pages so `slot` can hold `additional` more tokens. Grants
    /// are all-or-nothing: on [`PagesExhausted`] nothing was modified.
    ///
    /// When the append would land inside a **shared** boundary page (a
    /// mapped prefix ending mid-page), the grant also forks that page
    /// copy-on-write: one extra page is claimed, the shared page's bytes
    /// are copied across every layer pool, the slot's table entry swaps
    /// to the copy, and one reference on the original is dropped. The
    /// slot then owns its whole writable frontier exclusively.
    ///
    /// # Panics
    ///
    /// Panics if `slot` is out of range, not in use, or the request would
    /// exceed the per-slot `capacity` (callers screen lengths at
    /// admission, exactly as with the fixed-stride arena).
    pub fn try_reserve(&mut self, slot: usize, additional: usize) -> Result<(), PagesExhausted> {
        assert!(self.slots[slot].in_use, "slot {slot} not in use");
        assert!(
            self.slots[slot].pos + additional <= self.capacity,
            "slot {slot} overflows capacity {}",
            self.capacity
        );
        let needed = self.pages_needed(slot, additional);
        if needed > self.free.len() {
            return Err(PagesExhausted {
                needed,
                free: self.free.len(),
            });
        }
        if self.needs_cow(slot, additional) {
            self.cow_fork(slot);
        }
        let grow = pages_for(self.slots[slot].pos + additional, self.page_tokens)
            - self.slots[slot].table.len();
        for _ in 0..grow {
            let page = self.free.pop().expect("free count checked above");
            debug_assert_eq!(self.refcount[page], 0, "free page was referenced");
            self.refcount[page] = 1;
            self.slots[slot].table.push(page);
        }
        self.debug_assert_conserved();
        Ok(())
    }

    /// Copy-on-write fork of `slot`'s boundary page: claims a free page,
    /// copies the boundary page's bytes (keys, values, both scale planes)
    /// in every layer pool, swaps the table entry and drops one reference
    /// on the shared original. Caller has verified a free page exists.
    fn cow_fork(&mut self, slot: usize) {
        let idx = self.slots[slot].pos / self.page_tokens;
        let src = self.slots[slot].table[idx];
        let dst = self.free.pop().expect("caller checked a free page exists");
        debug_assert_eq!(self.refcount[dst], 0, "free page was referenced");
        let cells = self.heads * self.page_tokens;
        let bytes = cells * self.d_head;
        for pool in &mut self.pools {
            pool.keys
                .copy_within(src * bytes..(src + 1) * bytes, dst * bytes);
            pool.values
                .copy_within(src * bytes..(src + 1) * bytes, dst * bytes);
            pool.key_scales
                .copy_within(src * cells..(src + 1) * cells, dst * cells);
            pool.value_scales
                .copy_within(src * cells..(src + 1) * cells, dst * cells);
        }
        self.refcount[dst] = 1;
        self.refcount[src] -= 1;
        debug_assert!(self.refcount[src] > 0, "fork of an exclusive page");
        self.slots[slot].table[idx] = dst;
    }

    /// Grants pages for a *batch* of `(slot, additional)` requests,
    /// all-or-nothing across the whole batch: on [`PagesExhausted`]
    /// nothing was modified — the error-atomicity the backend's
    /// "on `Err` no state changed" contract requires.
    ///
    /// # Panics
    ///
    /// As [`PagedKvArena::try_reserve`], for any entry.
    pub fn try_reserve_batch(&mut self, entries: &[(usize, usize)]) -> Result<(), PagesExhausted> {
        let needed = entries
            .iter()
            .map(|&(slot, additional)| self.pages_needed(slot, additional))
            .sum();
        if needed > self.free.len() {
            return Err(PagesExhausted {
                needed,
                free: self.free.len(),
            });
        }
        for &(slot, additional) in entries {
            self.try_reserve(slot, additional)
                .expect("batch total checked above");
        }
        Ok(())
    }

    /// Advances `slot`'s position by `tokens` (call after the token walk
    /// appended to every layer).
    ///
    /// # Panics
    ///
    /// Panics if `slot` is out of range, the position would exceed the
    /// slot capacity, or the tokens were never granted pages.
    pub fn advance(&mut self, slot: usize, tokens: usize) {
        let granted = self.granted_tokens(slot);
        let state = &mut self.slots[slot];
        assert!(
            state.pos + tokens <= self.capacity,
            "slot {slot} overflows capacity {}",
            self.capacity
        );
        assert!(
            state.pos + tokens <= granted,
            "slot {slot} advanced past its granted pages (reserve first)"
        );
        state.pos += tokens;
    }

    /// Quantizes and appends one token's key/value vectors at absolute
    /// token index `t` of `slot` in `layer` — the same per-head
    /// quantization as [`LayerKvCache::append`], writing into the granted
    /// page instead of a private arena.
    ///
    /// # Panics
    ///
    /// Panics if indices are out of range or `t` has no granted page.
    /// Debug builds additionally assert the vector geometry and the
    /// slot's in-use flag — both loop-invariant caller contracts on the
    /// per-token append path, so release builds skip the re-check (a
    /// violation still cannot write out of bounds: the page-table lookup
    /// below and the pool slices bound every index).
    pub fn append_at(&mut self, slot: usize, layer: usize, t: usize, k: &[f32], v: &[f32]) {
        debug_assert_eq!(k.len(), v.len(), "key/value length mismatch");
        debug_assert_eq!(
            k.len(),
            self.heads * self.d_head,
            "vector geometry mismatch"
        );
        let state = &self.slots[slot];
        debug_assert!(state.in_use, "slot {slot} not in use");
        let (pt, d, heads) = (self.page_tokens, self.d_head, self.heads);
        let page = *state
            .table
            .get(t / pt)
            .unwrap_or_else(|| panic!("token {t} of slot {slot} has no granted page"));
        let local = t % pt;
        debug_assert_eq!(
            self.refcount[page], 1,
            "append into shared page {page} — reserve must copy-on-write first"
        );
        let pool = &mut self.pools[layer];
        for h in 0..heads {
            let cell = (page * heads + h) * pt + local;
            let dst = cell * d;
            pool.key_scales[cell] =
                quantize_chunk(&k[h * d..(h + 1) * d], &mut pool.keys[dst..dst + d]);
            pool.value_scales[cell] =
                quantize_chunk(&v[h * d..(h + 1) * d], &mut pool.values[dst..dst + d]);
        }
    }

    /// A borrowed view of `slot`'s cached tokens in `layer`, iterable as
    /// per-head [`KvSegment`]s (one per page, token order).
    ///
    /// # Panics
    ///
    /// Panics if either index is out of range.
    pub fn layer_view(&self, slot: usize, layer: usize) -> PagedLayerView<'_> {
        PagedLayerView {
            pool: &self.pools[layer],
            table: &self.slots[slot].table,
            d_head: self.d_head,
            heads: self.heads,
            page_tokens: self.page_tokens,
        }
    }

    /// Copies `slot`'s live tokens in `layer` into a contiguous
    /// [`LayerKvCache`] **without requantizing** — for differential tests
    /// comparing paged content against the fixed-stride reference via
    /// content equality.
    ///
    /// # Panics
    ///
    /// Panics if either index is out of range.
    pub fn materialize(&self, slot: usize, layer: usize) -> LayerKvCache {
        let pos = self.slots[slot].pos;
        let (d, heads) = (self.d_head, self.heads);
        let mut out = LayerKvCache::with_capacity(d, heads, pos.max(1));
        let view = self.layer_view(slot, layer);
        let mut k = vec![0i8; heads * d];
        let mut v = vec![0i8; heads * d];
        let mut ks = vec![0f32; heads];
        let mut vs = vec![0f32; heads];
        for t in 0..pos {
            for h in 0..heads {
                let (page_idx, local) = (t / self.page_tokens, t % self.page_tokens);
                let page = view.table[page_idx];
                let cell = (page * heads + h) * self.page_tokens + local;
                let src = cell * d;
                k[h * d..(h + 1) * d].copy_from_slice(&view.pool.keys[src..src + d]);
                v[h * d..(h + 1) * d].copy_from_slice(&view.pool.values[src..src + d]);
                ks[h] = view.pool.key_scales[cell];
                vs[h] = view.pool.value_scales[cell];
            }
            out.append_quantized(&k, &ks, &v, &vs);
        }
        out
    }

    /// Live int8 bytes across all resident sequences and layers (keys +
    /// values), counting tokens actually cached — the same accounting as
    /// the fixed-stride arena.
    pub fn byte_len(&self) -> usize {
        self.slots
            .iter()
            .filter(|s| s.in_use)
            .map(|s| 2 * s.pos * self.layers * self.heads * self.d_head)
            .sum()
    }

    /// Total int8 bytes the page pools hold (keys + values across all
    /// layers), independent of occupancy — the "equal arena bytes" axis
    /// of the page-pressure benchmark.
    pub fn pool_byte_len(&self) -> usize {
        2 * self.layers * self.pages * self.heads * self.page_tokens * self.d_head
    }
}

/// Content equality: same geometry bound (`d_head`, `heads`, `layers`)
/// and the same live sequences (occupancy, positions, cached tokens).
/// Pool size, page size and which physical pages back which tokens are
/// ignored — two arenas are equal when attention would read the same
/// bytes from both.
impl PartialEq for PagedKvArena {
    fn eq(&self, other: &Self) -> bool {
        if self.layers != other.layers
            || self.d_head != other.d_head
            || self.heads != other.heads
            || self.slots.len() != other.slots.len()
        {
            return false;
        }
        self.slots
            .iter()
            .zip(&other.slots)
            .enumerate()
            .all(|(slot, (a, b))| {
                a.in_use == b.in_use
                    && a.pos == b.pos
                    && (!a.in_use
                        || (0..self.layers)
                            .all(|l| self.materialize(slot, l) == other.materialize(slot, l)))
            })
    }
}

/// Pages required to hold `tokens` tokens at `page_tokens` per page.
fn pages_for(tokens: usize, page_tokens: usize) -> usize {
    tokens.div_ceil(page_tokens)
}

/// A borrowed view of one slot's cached tokens in one layer. The segment
/// iterator covers every *granted* token slot in token order; callers
/// bound reads with their `valid_len` exactly as with a contiguous cache.
#[derive(Debug, Clone, Copy)]
pub struct PagedLayerView<'a> {
    pool: &'a LayerPool,
    table: &'a [usize],
    d_head: usize,
    heads: usize,
    page_tokens: usize,
}

impl PagedLayerView<'_> {
    /// Head dimension.
    pub fn d_head(&self) -> usize {
        self.d_head
    }

    /// Heads per cached vector.
    pub fn heads(&self) -> usize {
        self.heads
    }

    /// Tokens the granted pages can hold (upper bound for `valid_len`).
    pub fn granted_tokens(&self) -> usize {
        self.table.len() * self.page_tokens
    }

    /// Head `h`'s cached tokens as contiguous segments, one per page, in
    /// token order.
    ///
    /// # Panics
    ///
    /// The iterator panics on a head out of range.
    pub fn segments(&self, h: usize) -> impl Iterator<Item = KvSegment<'_>> + '_ {
        assert!(h < self.heads, "head {h} out of range");
        let (pt, d, heads) = (self.page_tokens, self.d_head, self.heads);
        let pool = self.pool;
        self.table.iter().map(move |&page| {
            let cell = (page * heads + h) * pt;
            let base = cell * d;
            KvSegment {
                keys: &pool.keys[base..base + pt * d],
                values: &pool.values[base..base + pt * d],
                key_scales: &pool.key_scales[cell..cell + pt],
                value_scales: &pool.value_scales[cell..cell + pt],
            }
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tok(seed: usize, t: usize, n: usize) -> (Vec<f32>, Vec<f32>) {
        (
            (0..n)
                .map(|i| ((seed * 131 + t * 17 + i) as f32 * 0.23).sin())
                .collect(),
            (0..n)
                .map(|i| ((seed * 37 + t * 5 + i + 1) as f32 * 0.19).cos())
                .collect(),
        )
    }

    /// Feeds `len` tokens into `slot`, reserving page by page.
    fn feed(a: &mut PagedKvArena, slot: usize, seed: usize, len: usize) {
        let n = a.heads() * 4;
        for t in 0..len {
            a.try_reserve(slot, 1).expect("pool sized for test");
            let (k, v) = tok(seed, t, n);
            for l in 0..a.layers() {
                a.append_at(slot, l, a.pos(slot), &k, &v);
            }
            a.advance(slot, 1);
        }
    }

    #[test]
    fn paged_content_matches_contiguous_cache_bitwise() {
        // The foundational property: a paged slot holds byte-identical
        // content to a LayerKvCache fed the same tokens.
        let mut a = PagedKvArena::new(2, 4, 2, 2, 16, 3, 16);
        let slot = a.acquire().unwrap();
        let mut lone = LayerKvCache::with_capacity(4, 2, 16);
        for t in 0..7 {
            a.try_reserve(slot, 1).unwrap();
            let (k, v) = tok(9, t, 8);
            for l in 0..2 {
                a.append_at(slot, l, t, &k, &v);
            }
            a.advance(slot, 1);
            lone.append(&k, &v);
        }
        assert_eq!(a.materialize(slot, 0), lone);
        assert_eq!(a.materialize(slot, 1), lone);
    }

    #[test]
    fn grants_are_lowest_index_first_and_lazy() {
        let mut a = PagedKvArena::new(1, 4, 1, 2, 12, 4, 3);
        let s0 = a.acquire().unwrap();
        assert_eq!(a.free_pages(), 3, "acquire claims no pages");
        a.try_reserve(s0, 1).unwrap();
        assert_eq!(a.free_pages(), 2);
        assert_eq!(a.granted_tokens(s0), 4);
        // Tokens 2..4 fit the granted page: no further grant.
        a.try_reserve(s0, 4).unwrap();
        assert_eq!(a.free_pages(), 2);
        let s1 = a.acquire().unwrap();
        a.try_reserve(s1, 5).unwrap();
        assert_eq!(a.free_pages(), 0);
        assert_eq!(a.slots[s0].table, vec![0]);
        assert_eq!(a.slots[s1].table, vec![1, 2], "lowest free pages first");
    }

    #[test]
    fn no_double_grant_across_slots() {
        let mut a = PagedKvArena::new(1, 4, 1, 4, 8, 2, 8);
        let slots: Vec<usize> = (0..4).map(|_| a.acquire().unwrap()).collect();
        for (i, &s) in slots.iter().enumerate() {
            a.try_reserve(s, 1 + 2 * (i % 2)).unwrap();
        }
        let mut seen = std::collections::HashSet::new();
        for s in &a.slots {
            for &p in &s.table {
                assert!(seen.insert(p), "page {p} granted twice");
            }
        }
        assert_eq!(seen.len() + a.free_pages(), a.total_pages());
    }

    #[test]
    fn release_returns_pool_to_initial_free_count() {
        let mut a = PagedKvArena::new(2, 4, 2, 3, 16, 4, 12);
        let initial = a.free_pages();
        let s0 = a.acquire().unwrap();
        let s1 = a.acquire().unwrap();
        feed(&mut a, s0, 1, 10);
        feed(&mut a, s1, 2, 5);
        assert!(a.free_pages() < initial);
        a.release(s1);
        a.release(s0);
        assert_eq!(a.free_pages(), initial, "pages leaked");
        assert_eq!(a.byte_len(), 0);
        // And the free list is back in lowest-first order.
        let s = a.acquire().unwrap();
        a.try_reserve(s, 1).unwrap();
        assert_eq!(a.slots[s].table, vec![0]);
    }

    #[test]
    fn allocation_order_is_deterministic() {
        // Two arenas replaying the same acquire/feed/release sequence end
        // with identical page tables — reproducible schedules.
        let run = |a: &mut PagedKvArena| {
            let s0 = a.acquire().unwrap();
            let s1 = a.acquire().unwrap();
            feed(a, s0, 3, 6);
            feed(a, s1, 4, 3);
            a.release(s0);
            let s2 = a.acquire().unwrap();
            feed(a, s2, 5, 4);
            (
                a.slots.iter().map(|s| s.table.clone()).collect::<Vec<_>>(),
                a.free.clone(),
            )
        };
        let mut a = PagedKvArena::new(1, 4, 2, 3, 16, 2, 12);
        let mut b = PagedKvArena::new(1, 4, 2, 3, 16, 2, 12);
        assert_eq!(run(&mut a), run(&mut b));
    }

    #[test]
    fn pages_exhausted_exactly_at_exhaustion() {
        let mut a = PagedKvArena::new(1, 4, 1, 2, 8, 2, 4);
        let s0 = a.acquire().unwrap();
        let s1 = a.acquire().unwrap();
        a.try_reserve(s0, 6).unwrap(); // 3 pages
        a.try_reserve(s1, 2).unwrap(); // 1 page → pool dry
        assert_eq!(a.free_pages(), 0);
        // Within granted pages: still fine.
        assert!(a.try_reserve(s1, 2).is_ok());
        // One token past the granted page: exhausted, nothing changed.
        let before = a.slots[s1].table.clone();
        let err = a.try_reserve(s1, 3).unwrap_err();
        assert_eq!(err, PagesExhausted { needed: 1, free: 0 });
        assert_eq!(a.slots[s1].table, before);
        assert_eq!(a.free_pages(), 0);
        // Releasing the big slot makes the same grant succeed.
        a.release(s0);
        assert!(a.try_reserve(s1, 3).is_ok());
    }

    #[test]
    fn batch_reserve_is_all_or_nothing() {
        let mut a = PagedKvArena::new(1, 4, 1, 2, 4, 2, 2);
        let s0 = a.acquire().unwrap();
        let s1 = a.acquire().unwrap();
        a.try_reserve_batch(&[(s0, 2), (s1, 2)]).unwrap();
        assert_eq!(a.free_pages(), 0);
        // Both slots full: a batch needing 2 pages fails without granting
        // the first entry's page.
        let err = a.try_reserve_batch(&[(s0, 3), (s1, 3)]).unwrap_err();
        assert_eq!(err.needed, 2);
        assert_eq!(a.granted_tokens(s0), 2);
        assert_eq!(a.granted_tokens(s1), 2);
    }

    #[test]
    fn attention_over_pages_matches_contiguous() {
        use crate::attention::{attend_heads, attend_heads_segments_into, AttnScratch};
        let (d_head, heads) = (4, 2);
        let mut a = PagedKvArena::new(1, d_head, heads, 1, 32, 3, 11);
        let slot = a.acquire().unwrap();
        let mut lone = LayerKvCache::with_capacity(d_head, heads, 32);
        for t in 0..10 {
            a.try_reserve(slot, 1).unwrap();
            let (k, v) = tok(7, t, heads * d_head);
            a.append_at(slot, 0, t, &k, &v);
            a.advance(slot, 1);
            lone.append(&k, &v);
        }
        let q: Vec<f32> = (0..heads * d_head)
            .map(|i| (i as f32 * 0.41).cos())
            .collect();
        for valid in [1usize, 3, 4, 7, 10] {
            let reference = attend_heads(&q, &lone, 0..heads, 0, d_head, valid);
            let view = a.layer_view(slot, 0);
            let mut scratch = AttnScratch::new();
            let mut out = Vec::new();
            attend_heads_segments_into(
                &q,
                |h| view.segments(h),
                0..heads,
                0,
                d_head,
                valid,
                &mut scratch,
                &mut out,
            );
            assert_eq!(out, reference, "valid_len {valid} diverged");
        }
    }

    #[test]
    fn slot_reuse_after_long_sequence_is_clean() {
        // Regression for the stale-state bug class: a slot that held a
        // long sequence must serve a shorter one with content identical
        // to a never-used arena (no stale positions, scales or page
        // mappings bleeding through).
        let mut a = PagedKvArena::new(2, 4, 2, 2, 32, 4, 16);
        let s = a.acquire().unwrap();
        feed(&mut a, s, 11, 30);
        a.release(s);
        let s2 = a.acquire().unwrap();
        assert_eq!(s2, s, "lowest slot recycled");
        assert_eq!(a.pos(s2), 0, "stale position");
        assert_eq!(a.granted_tokens(s2), 0, "stale page table");
        feed(&mut a, s2, 12, 5);

        let mut fresh = PagedKvArena::new(2, 4, 2, 2, 32, 4, 16);
        let f = fresh.acquire().unwrap();
        feed(&mut fresh, f, 12, 5);
        for l in 0..2 {
            assert_eq!(
                a.materialize(s2, l),
                fresh.materialize(f, l),
                "layer {l} differs from fresh arena"
            );
        }
        assert_eq!(a, fresh, "arena content equality");
    }

    #[test]
    fn equality_ignores_page_geometry() {
        let mut a = PagedKvArena::new(1, 4, 2, 2, 16, 2, 16);
        let mut b = PagedKvArena::new(1, 4, 2, 2, 16, 5, 7);
        let sa = a.acquire().unwrap();
        let sb = b.acquire().unwrap();
        feed(&mut a, sa, 21, 6);
        feed(&mut b, sb, 21, 6);
        assert_eq!(a, b);
        feed(&mut b, sb, 21, 1);
        assert_ne!(a, b);
    }

    #[test]
    #[should_panic(expected = "overflows capacity")]
    fn reserve_past_capacity_panics() {
        let mut a = PagedKvArena::new(1, 4, 1, 1, 4, 2, 4);
        let s = a.acquire().unwrap();
        let _ = a.try_reserve(s, 5);
    }

    #[test]
    #[should_panic(expected = "advanced past its granted pages")]
    fn advance_without_reserve_panics() {
        let mut a = PagedKvArena::new(1, 4, 1, 1, 8, 2, 4);
        let s = a.acquire().unwrap();
        a.advance(s, 1);
    }

    #[test]
    #[should_panic(expected = "no granted page")]
    fn append_without_reserve_panics() {
        let mut a = PagedKvArena::new(1, 4, 1, 1, 8, 2, 4);
        let s = a.acquire().unwrap();
        a.append_at(s, 0, 0, &[0.5; 4], &[0.5; 4]);
    }

    #[test]
    #[should_panic(expected = "not in use")]
    fn releasing_free_slot_panics() {
        let mut a = PagedKvArena::new(1, 4, 1, 1, 8, 2, 4);
        a.release(0);
    }

    #[test]
    fn release_reports_freed_pages_and_conserves_pool() {
        let mut a = PagedKvArena::new(1, 4, 1, 2, 16, 4, 8);
        let s = a.acquire().unwrap();
        feed(&mut a, s, 1, 9); // 3 pages
        assert_eq!(a.release(s), 3, "exclusive pages all free on release");
        assert_eq!(a.free_pages(), 8);
    }

    #[test]
    fn shared_pages_survive_one_release_and_free_on_the_last() {
        let mut a = PagedKvArena::new(2, 4, 2, 3, 16, 4, 8);
        let s0 = a.acquire().unwrap();
        feed(&mut a, s0, 5, 8); // exactly 2 full pages
        let pages = a.slot_pages(s0).to_vec();
        // Pin both pages as a cache would, then map them under s1.
        for &p in &pages {
            a.retain_page(p);
        }
        let s1 = a.acquire().unwrap();
        a.map_shared(s1, &pages, 8);
        assert_eq!(a.pos(s1), 8);
        for &p in &pages {
            assert_eq!(a.page_refcount(p), 3, "owner + pin + shared mapping");
        }
        // Owner leaves: nothing freed, s1 still reads identical bytes.
        assert_eq!(a.release(s0), 0);
        for l in 0..2 {
            let m = a.materialize(s1, l);
            assert_eq!(m.len(), 8);
        }
        // Shared reader leaves: still pinned by the cache.
        assert_eq!(a.release(s1), 0);
        // Cache unpins: pages finally free.
        assert!(a.release_page(pages[0]));
        assert!(a.release_page(pages[1]));
        assert_eq!(a.free_pages(), 8);
    }

    #[test]
    fn unshared_page_count_sees_through_sharing() {
        let mut a = PagedKvArena::new(1, 4, 1, 2, 16, 4, 8);
        let s0 = a.acquire().unwrap();
        feed(&mut a, s0, 2, 8); // 2 pages
        let pages = a.slot_pages(s0).to_vec();
        for &p in &pages {
            a.retain_page(p);
        }
        assert_eq!(a.unshared_pages(s0), 0, "every page pinned by the cache");
        let s1 = a.acquire().unwrap();
        a.map_shared(s1, &pages, 8);
        a.try_reserve(s1, 4).unwrap(); // grows one exclusive page
        assert_eq!(a.unshared_pages(s1), 1);
    }

    #[test]
    fn cow_fork_splits_partial_boundary_page_bitwise() {
        // Fill 6 tokens (1.5 pages of 4), share both pages into s1, then
        // append through the boundary: the fork must copy the 2 valid
        // boundary tokens bit-exactly and leave the original untouched.
        let mut a = PagedKvArena::new(2, 4, 2, 2, 16, 4, 8);
        let s0 = a.acquire().unwrap();
        feed(&mut a, s0, 9, 6);
        let pages = a.slot_pages(s0).to_vec();
        for &p in &pages {
            a.retain_page(p);
        }
        let before: Vec<LayerKvCache> = (0..2).map(|l| a.materialize(s0, l)).collect();

        let s1 = a.acquire().unwrap();
        a.map_shared(s1, &pages, 6);
        // Appending one token needs no new span page but must COW the
        // boundary page.
        assert_eq!(a.pages_needed(s1, 1), 1, "COW page counted");
        let free_before = a.free_pages();
        a.try_reserve(s1, 1).unwrap();
        assert_eq!(a.free_pages(), free_before - 1);
        assert_ne!(a.slot_pages(s1)[1], pages[1], "boundary page forked");
        assert_eq!(a.slot_pages(s1)[0], pages[0], "full page still shared");
        assert_eq!(a.page_refcount(pages[1]), 2, "owner + pin, mapping gone");

        // Continue the sequence in s1 identically to a lone arena.
        let n = a.heads() * 4;
        for t in 6..9 {
            a.try_reserve(s1, 1).unwrap();
            let (k, v) = tok(9, t, n);
            for l in 0..a.layers() {
                a.append_at(s1, l, t, &k, &v);
            }
            a.advance(s1, 1);
        }
        let mut fresh = PagedKvArena::new(2, 4, 2, 2, 16, 4, 8);
        let f = fresh.acquire().unwrap();
        feed(&mut fresh, f, 9, 9);
        for (l, kept) in before.iter().enumerate() {
            assert_eq!(
                a.materialize(s1, l),
                fresh.materialize(f, l),
                "layer {l}: COW continuation diverged"
            );
            assert_eq!(
                &a.materialize(s0, l),
                kept,
                "layer {l}: original mutated by the fork"
            );
        }
    }

    #[test]
    fn map_shared_at_page_boundary_needs_no_cow() {
        let mut a = PagedKvArena::new(1, 4, 1, 2, 16, 4, 8);
        let s0 = a.acquire().unwrap();
        feed(&mut a, s0, 3, 4); // exactly one full page
        let pages = a.slot_pages(s0).to_vec();
        a.retain_page(pages[0]);
        let s1 = a.acquire().unwrap();
        a.map_shared(s1, &pages, 4);
        assert_eq!(a.pages_needed(s1, 1), 1, "just the new span page");
        a.try_reserve(s1, 1).unwrap();
        assert_eq!(a.slot_pages(s1)[0], pages[0], "boundary-aligned share kept");
    }

    #[test]
    #[should_panic(expected = "already has history")]
    fn map_shared_into_running_sequence_panics() {
        let mut a = PagedKvArena::new(1, 4, 1, 2, 16, 4, 8);
        let s0 = a.acquire().unwrap();
        feed(&mut a, s0, 3, 4);
        let pages = a.slot_pages(s0).to_vec();
        a.retain_page(pages[0]);
        let s1 = a.acquire().unwrap();
        feed(&mut a, s1, 4, 1);
        a.map_shared(s1, &pages, 4);
    }

    #[test]
    #[should_panic(expected = "already free")]
    fn double_release_of_cache_pin_panics() {
        let mut a = PagedKvArena::new(1, 4, 1, 1, 16, 4, 8);
        let s = a.acquire().unwrap();
        feed(&mut a, s, 1, 4);
        let page = a.slot_pages(s)[0];
        a.retain_page(page);
        a.release(s);
        assert!(a.release_page(page));
        let _ = a.release_page(page);
    }

    #[test]
    fn byte_accounting_counts_live_tokens_only() {
        let mut a = PagedKvArena::new(2, 4, 2, 2, 8, 4, 4);
        assert_eq!(a.byte_len(), 0);
        let s = a.acquire().unwrap();
        feed(&mut a, s, 1, 1);
        // 1 token × 2 layers × 2 heads × 4 d_head × 2 sides
        assert_eq!(a.byte_len(), 32);
        // Pool bytes are occupancy-independent.
        assert_eq!(a.pool_byte_len(), 2 * 2 * 4 * 2 * 4 * 4);
    }
}
