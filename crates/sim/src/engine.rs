//! Discrete-event simulation core.
//!
//! A minimal, deterministic event engine used where component interleaving
//! matters — chiefly the ring routers ([`crate::net`]) whose four-round
//! synchronization protocol we validate against the closed-form timing
//! model. Components implement [`Process`] and exchange typed messages
//! through the engine's event queue; ties at equal timestamps are broken by
//! insertion order, so runs are reproducible.

use std::cmp::Reverse;
use std::collections::BinaryHeap;
use std::fmt;

use crate::time::Cycles;

/// Identifies a process registered with an [`Engine`].
pub type ProcessId = usize;

/// A component of the simulated system.
pub trait Process<M> {
    /// Handles a message delivered at simulation time `now`.
    ///
    /// New messages are emitted through `ctx`; they may target any process
    /// (including `self`) after a non-negative delay.
    fn on_message(&mut self, now: Cycles, msg: M, ctx: &mut Context<M>);
}

/// Message-emission context handed to [`Process::on_message`].
#[derive(Debug)]
pub struct Context<M> {
    now: Cycles,
    emitted: Vec<(Cycles, ProcessId, M)>,
}

impl<M> Context<M> {
    /// Current simulation time.
    pub fn now(&self) -> Cycles {
        self.now
    }

    /// Sends `msg` to `dst` after `delay` cycles.
    pub fn send_after(&mut self, delay: Cycles, dst: ProcessId, msg: M) {
        self.emitted.push((self.now + delay, dst, msg));
    }

    /// Sends `msg` to `dst` at the current time (delivered after all events
    /// already queued for this time).
    pub fn send_now(&mut self, dst: ProcessId, msg: M) {
        self.send_after(Cycles::ZERO, dst, msg);
    }
}

struct Queued<M> {
    time: Cycles,
    seq: u64,
    dst: ProcessId,
    msg: M,
}

impl<M> PartialEq for Queued<M> {
    fn eq(&self, other: &Self) -> bool {
        self.time == other.time && self.seq == other.seq
    }
}
impl<M> Eq for Queued<M> {}
impl<M> PartialOrd for Queued<M> {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl<M> Ord for Queued<M> {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        (self.time, self.seq).cmp(&(other.time, other.seq))
    }
}

/// Deterministic discrete-event engine over message type `M`.
///
/// # Example
///
/// A one-shot echo between two processes:
///
/// ```
/// use looplynx_sim::engine::{Context, Engine, Process};
/// use looplynx_sim::time::Cycles;
///
/// struct Echo;
/// impl Process<u32> for Echo {
///     fn on_message(&mut self, _now: Cycles, msg: u32, ctx: &mut Context<u32>) {
///         if msg < 3 {
///             ctx.send_after(Cycles::new(5), 0, msg + 1);
///         }
///     }
/// }
///
/// let mut eng = Engine::new();
/// let id = eng.add_process(Echo);
/// eng.post(Cycles::ZERO, id, 0);
/// let end = eng.run();
/// assert_eq!(end.as_u64(), 15); // three 5-cycle hops
/// ```
pub struct Engine<M> {
    processes: Vec<Box<dyn Process<M>>>,
    queue: BinaryHeap<Reverse<Queued<M>>>,
    now: Cycles,
    seq: u64,
    delivered: u64,
}

impl<M> fmt::Debug for Engine<M> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Engine")
            .field("processes", &self.processes.len())
            .field("pending", &self.queue.len())
            .field("now", &self.now)
            .field("delivered", &self.delivered)
            .finish()
    }
}

impl<M> Default for Engine<M> {
    fn default() -> Self {
        Self::new()
    }
}

impl<M> Engine<M> {
    /// Creates an empty engine at time zero.
    pub fn new() -> Self {
        Engine {
            processes: Vec::new(),
            queue: BinaryHeap::new(),
            now: Cycles::ZERO,
            seq: 0,
            delivered: 0,
        }
    }

    /// Registers a process and returns its id.
    pub fn add_process(&mut self, p: impl Process<M> + 'static) -> ProcessId {
        self.processes.push(Box::new(p));
        self.processes.len() - 1
    }

    /// Queues an initial message for delivery at absolute time `at`.
    ///
    /// # Panics
    ///
    /// Panics if `dst` is not a registered process or `at` is in the past.
    pub fn post(&mut self, at: Cycles, dst: ProcessId, msg: M) {
        assert!(dst < self.processes.len(), "unknown process {dst}");
        assert!(at >= self.now, "cannot post into the past");
        self.queue.push(Reverse(Queued {
            time: at,
            seq: self.seq,
            dst,
            msg,
        }));
        self.seq += 1;
    }

    /// Current simulation time.
    pub fn now(&self) -> Cycles {
        self.now
    }

    /// Number of messages delivered so far.
    pub fn delivered(&self) -> u64 {
        self.delivered
    }

    /// Delivers the next message, if any. Returns `false` when idle.
    pub fn step(&mut self) -> bool {
        let Some(Reverse(ev)) = self.queue.pop() else {
            return false;
        };
        debug_assert!(ev.time >= self.now, "event queue went backwards");
        self.now = ev.time;
        self.delivered += 1;
        let mut ctx = Context {
            now: self.now,
            emitted: Vec::new(),
        };
        self.processes[ev.dst].on_message(self.now, ev.msg, &mut ctx);
        for (time, dst, msg) in ctx.emitted {
            assert!(dst < self.processes.len(), "unknown process {dst}");
            self.queue.push(Reverse(Queued {
                time,
                seq: self.seq,
                dst,
                msg,
            }));
            self.seq += 1;
        }
        true
    }

    /// Runs until the event queue is empty; returns the final time.
    pub fn run(&mut self) -> Cycles {
        while self.step() {}
        self.now
    }

    /// Runs until idle or until `max_events` messages have been delivered.
    ///
    /// Returns `Ok(end_time)` when the queue drained, or `Err(end_time)` if
    /// the budget was exhausted first (a livelock guard for tests).
    pub fn run_bounded(&mut self, max_events: u64) -> Result<Cycles, Cycles> {
        let start = self.delivered;
        while self.delivered - start < max_events {
            if !self.step() {
                return Ok(self.now);
            }
        }
        Err(self.now)
    }

    /// Removes all processes and returns them (for post-run inspection).
    pub fn into_processes(self) -> Vec<Box<dyn Process<M>>> {
        self.processes
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    struct Counter {
        seen: Vec<(u64, u32)>,
    }
    impl Process<u32> for Counter {
        fn on_message(&mut self, now: Cycles, msg: u32, _ctx: &mut Context<u32>) {
            self.seen.push((now.as_u64(), msg));
        }
    }

    struct PingPong {
        peer: ProcessId,
        remaining: u32,
    }
    impl Process<u32> for PingPong {
        fn on_message(&mut self, _now: Cycles, msg: u32, ctx: &mut Context<u32>) {
            if self.remaining > 0 {
                self.remaining -= 1;
                ctx.send_after(Cycles::new(10), self.peer, msg + 1);
            }
        }
    }

    #[test]
    fn events_deliver_in_time_order() {
        let mut eng = Engine::new();
        let c = eng.add_process(Counter { seen: vec![] });
        eng.post(Cycles::new(30), c, 3);
        eng.post(Cycles::new(10), c, 1);
        eng.post(Cycles::new(20), c, 2);
        eng.run();
        let procs = eng.into_processes();
        // we cannot downcast without Any; instead re-run with a closure-free
        // check: order was asserted by time monotonicity in step()
        assert_eq!(procs.len(), 1);
    }

    #[test]
    fn equal_times_preserve_insertion_order() {
        struct Recorder(Vec<u32>);
        impl Process<u32> for Recorder {
            fn on_message(&mut self, _now: Cycles, msg: u32, _ctx: &mut Context<u32>) {
                self.0.push(msg);
            }
        }
        // Use a shared sink via message round-trips: simpler — two posts at
        // the same time must deliver FIFO. We verify via delivered counter
        // and final time.
        let mut eng = Engine::new();
        let r = eng.add_process(Recorder(Vec::new()));
        eng.post(Cycles::new(5), r, 1);
        eng.post(Cycles::new(5), r, 2);
        assert!(eng.step());
        assert_eq!(eng.now().as_u64(), 5);
        assert!(eng.step());
        assert_eq!(eng.delivered(), 2);
    }

    #[test]
    fn ping_pong_terminates_at_expected_time() {
        let mut eng = Engine::new();
        let a = eng.add_process(PingPong {
            peer: 1,
            remaining: 4,
        });
        let _b = eng.add_process(PingPong {
            peer: 0,
            remaining: 4,
        });
        eng.post(Cycles::ZERO, a, 0);
        let end = eng.run();
        // 8 hops of 10 cycles each (4 sends per side)
        assert_eq!(end.as_u64(), 80);
        assert_eq!(eng.delivered(), 9); // initial + 8 hops
    }

    #[test]
    fn run_bounded_detects_livelock() {
        struct Loopy;
        impl Process<u32> for Loopy {
            fn on_message(&mut self, _now: Cycles, msg: u32, ctx: &mut Context<u32>) {
                ctx.send_after(Cycles::new(1), 0, msg);
            }
        }
        let mut eng = Engine::new();
        let id = eng.add_process(Loopy);
        eng.post(Cycles::ZERO, id, 0);
        assert!(eng.run_bounded(100).is_err());
    }

    #[test]
    #[should_panic(expected = "unknown process")]
    fn posting_to_unknown_process_panics() {
        let mut eng: Engine<u32> = Engine::new();
        eng.post(Cycles::ZERO, 0, 1);
    }

    #[test]
    fn idle_engine_reports_false() {
        let mut eng: Engine<u32> = Engine::new();
        assert!(!eng.step());
        assert_eq!(eng.run(), Cycles::ZERO);
    }
}
