//! Functional continuous-batching serving benchmark: sustained tokens/s
//! at decode-batch ceilings 1/4/16 vs the sequential baseline, written to
//! `BENCH_serve_functional.json` (pass `--quick` for the CI-sized
//! workload, and an optional output path as the other argument).

use std::env;
use std::fs;

use looplynx_bench::serve_functional;

fn main() {
    let mut quick = false;
    let mut out_path = String::from("BENCH_serve_functional.json");
    for arg in env::args().skip(1) {
        match arg.as_str() {
            "--quick" => quick = true,
            other if other.starts_with('-') => {
                eprintln!("unknown flag {other}; usage: serve_functional [--quick] [output.json]");
                std::process::exit(2);
            }
            other => out_path = other.to_string(),
        }
    }
    let report = serve_functional::measure(quick);
    print!("{}", serve_functional::render(&report));
    let json = serve_functional::to_json(&report);
    fs::write(&out_path, &json).expect("write benchmark JSON");
    println!("wrote {out_path}");
}
