//! Quantized checkpoint save/load with a memory-mapped, zero-copy arena.
//!
//! The paper's host loads W8A8 weights once and streams them to the
//! accelerator; the functional reproduction mirrors that with an on-disk
//! checkpoint format built for `mmap(2)`:
//!
//! ```text
//! offset 0   magic    b"LLXCKPT1"
//!        8   version  u32 (= 1)
//!       12   layers, d_model, heads, d_ff, vocab, max_seq   6 × u32
//!       36   name_len u32
//!       40   file_len u64   (total size — cheap truncation check)
//!       48   arena_offset u64  (page-aligned: 4096)
//!       56   name bytes (UTF-8, name_len long)
//!       ...  zero padding
//! arena_offset   tensor arena
//! ```
//!
//! The arena holds every tensor back to back, each aligned to 64 bytes,
//! in an order derived purely from the header dims — there is no tensor
//! directory to parse or trust. Large payloads (the int8 weight matrices
//! and the f32 embedding tables) become zero-copy
//! [`Matrix::from_arena`] views into the mapping, so loading touches no
//! weight pages until the first decode step streams them. Small per-row
//! vectors (scales, sums, biases, layernorm params) are copied to the
//! heap — they are a rounding error next to the matrices.
//!
//! All multi-byte fields are little-endian, and the zero-copy views
//! reinterpret bytes natively, so the format is only portable between
//! little-endian hosts (every target this workspace supports).

use std::fs::File;
use std::io::{BufWriter, Write};
use std::path::Path;
use std::sync::Arc;

use looplynx_tensor::linear::QuantLinear;
use looplynx_tensor::matrix::Matrix;
use looplynx_tensor::mmap::{ArenaError, MappedArena};
use looplynx_tensor::norm::LayerNormParams;
use looplynx_tensor::quant::QuantizedMatrix;

use crate::config::ModelConfig;
use crate::gpt2::Gpt2Model;
use crate::weights::{BlockWeights, Gpt2Weights};

/// File identifier, first 8 bytes of every checkpoint.
pub const MAGIC: [u8; 8] = *b"LLXCKPT1";
/// Current format version.
pub const VERSION: u32 = 1;
/// The arena starts on a page boundary so `mmap` hands out aligned,
/// page-granular views.
pub const ARENA_ALIGN: usize = 4096;
/// Every tensor inside the arena starts on a 64-byte (cache-line)
/// boundary, which also satisfies f32/i32 alignment for the zero-copy
/// views.
pub const TENSOR_ALIGN: usize = 64;

const HEADER_FIXED: usize = 56;

/// Why a checkpoint failed to load.
#[derive(Debug)]
pub enum CheckpointError {
    /// Underlying filesystem error.
    Io(std::io::Error),
    /// The file is shorter than its header claims.
    Truncated {
        /// Bytes the header (or fixed layout) requires.
        expected: u64,
        /// Bytes actually present.
        actual: u64,
    },
    /// The first 8 bytes are not [`MAGIC`].
    BadMagic([u8; 8]),
    /// Unknown format version.
    BadVersion {
        /// Version found in the file.
        found: u32,
        /// Version this loader understands.
        expected: u32,
    },
    /// The arena does not start on an [`ARENA_ALIGN`] boundary.
    MisalignedArena {
        /// Arena offset found in the header.
        offset: u64,
    },
    /// Structurally invalid contents (bad dims, overlapping sections,
    /// non-UTF-8 name, out-of-range tensor, …).
    Corrupt(&'static str),
}

impl std::fmt::Display for CheckpointError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CheckpointError::Io(e) => write!(f, "checkpoint I/O error: {e}"),
            CheckpointError::Truncated { expected, actual } => {
                write!(
                    f,
                    "checkpoint truncated: need {expected} bytes, have {actual}"
                )
            }
            CheckpointError::BadMagic(m) => write!(f, "not a checkpoint (magic {m:02x?})"),
            CheckpointError::BadVersion { found, expected } => {
                write!(
                    f,
                    "checkpoint version {found}, loader understands {expected}"
                )
            }
            CheckpointError::MisalignedArena { offset } => {
                write!(
                    f,
                    "tensor arena at byte {offset} is not {ARENA_ALIGN}-aligned"
                )
            }
            CheckpointError::Corrupt(what) => write!(f, "corrupt checkpoint: {what}"),
        }
    }
}

impl std::error::Error for CheckpointError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            CheckpointError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<std::io::Error> for CheckpointError {
    fn from(e: std::io::Error) -> Self {
        CheckpointError::Io(e)
    }
}

impl From<ArenaError> for CheckpointError {
    fn from(e: ArenaError) -> Self {
        match e {
            ArenaError::OutOfBounds { .. } => {
                CheckpointError::Corrupt("tensor runs past the end of the arena")
            }
            ArenaError::Misaligned { .. } => {
                CheckpointError::Corrupt("tensor not aligned inside the arena")
            }
        }
    }
}

fn align_up(x: usize, a: usize) -> usize {
    x.div_ceil(a) * a
}

// ---------------------------------------------------------------------------
// Save
// ---------------------------------------------------------------------------

/// Sequential arena writer: pads to [`TENSOR_ALIGN`] before each tensor.
struct ArenaWriter<W: Write> {
    w: W,
    /// Bytes written into the arena so far.
    off: usize,
}

impl<W: Write> ArenaWriter<W> {
    fn pad_to(&mut self, align: usize) -> std::io::Result<()> {
        let target = align_up(self.off, align);
        const ZEROS: [u8; 64] = [0; 64];
        let mut gap = target - self.off;
        while gap > 0 {
            let n = gap.min(ZEROS.len());
            self.w.write_all(&ZEROS[..n])?;
            gap -= n;
        }
        self.off = target;
        Ok(())
    }

    fn tensor(&mut self, bytes_len: usize) -> std::io::Result<&mut W> {
        self.pad_to(TENSOR_ALIGN)?;
        self.off += bytes_len;
        Ok(&mut self.w)
    }

    fn f32s(&mut self, xs: &[f32]) -> std::io::Result<()> {
        let w = self.tensor(xs.len() * 4)?;
        for &x in xs {
            w.write_all(&x.to_le_bytes())?;
        }
        Ok(())
    }

    fn i32s(&mut self, xs: &[i32]) -> std::io::Result<()> {
        let w = self.tensor(xs.len() * 4)?;
        for &x in xs {
            w.write_all(&x.to_le_bytes())?;
        }
        Ok(())
    }

    fn i8_matrix(&mut self, m: &Matrix<i8>) -> std::io::Result<()> {
        let w = self.tensor(m.len())?;
        // i8 → u8 is a bit-preserving cast; write row-major as stored.
        let mut buf = Vec::with_capacity(m.cols());
        for row in m.iter_rows() {
            buf.clear();
            buf.extend(row.iter().map(|&v| v as u8));
            w.write_all(&buf)?;
        }
        Ok(())
    }

    fn f32_matrix(&mut self, m: &Matrix<f32>) -> std::io::Result<()> {
        self.f32s(m.as_slice())
    }

    fn linear(&mut self, lin: &QuantLinear) -> std::io::Result<()> {
        let q = lin.weight();
        self.i8_matrix(q.data())?;
        self.f32s(q.row_scales())?;
        self.i32s(q.row_sums())?;
        self.f32s(lin.bias())
    }

    fn layernorm(&mut self, ln: &LayerNormParams) -> std::io::Result<()> {
        self.f32s(&ln.gamma)?;
        self.f32s(&ln.beta)?;
        self.f32s(&[ln.eps])
    }
}

/// Bytes the arena will occupy for `cfg` (including inter-tensor
/// padding). Mirrors the save/load walk exactly.
fn arena_len(cfg: &ModelConfig) -> usize {
    let (d, d_ff, vocab, max_seq) = (cfg.d_model, cfg.d_ff, cfg.vocab, cfg.max_seq);
    let mut off = 0usize;
    let mut take = |bytes: usize| off = align_up(off, TENSOR_ALIGN) + bytes;
    let ln = |take: &mut dyn FnMut(usize)| {
        take(d * 4); // gamma
        take(d * 4); // beta
        take(4); // eps
    };
    let linear = |take: &mut dyn FnMut(usize), rows: usize, cols: usize| {
        take(rows * cols); // i8 data
        take(rows * 4); // scales
        take(rows * 4); // sums
        take(rows * 4); // bias
    };
    take(vocab * d * 4); // wte
    take(max_seq * d * 4); // wpe
    for _ in 0..cfg.layers {
        ln(&mut take);
        linear(&mut take, 3 * d, d);
        linear(&mut take, d, d);
        ln(&mut take);
        linear(&mut take, d_ff, d);
        linear(&mut take, d, d_ff);
    }
    ln(&mut take);
    linear(&mut take, vocab, d);
    off
}

/// Writes `weights` for `cfg` to `path` in the checkpoint format.
///
/// # Errors
///
/// Any I/O error from creating or writing the file.
pub fn save(cfg: &ModelConfig, weights: &Gpt2Weights, path: &Path) -> std::io::Result<()> {
    let name = cfg.name.as_bytes();
    let file_len = ARENA_ALIGN as u64 + arena_len(cfg) as u64;

    let mut w = BufWriter::new(File::create(path)?);
    w.write_all(&MAGIC)?;
    w.write_all(&VERSION.to_le_bytes())?;
    for dim in [
        cfg.layers,
        cfg.d_model,
        cfg.heads,
        cfg.d_ff,
        cfg.vocab,
        cfg.max_seq,
    ] {
        w.write_all(&(dim as u32).to_le_bytes())?;
    }
    w.write_all(&(name.len() as u32).to_le_bytes())?;
    w.write_all(&file_len.to_le_bytes())?;
    w.write_all(&(ARENA_ALIGN as u64).to_le_bytes())?;
    w.write_all(name)?;
    assert!(
        HEADER_FIXED + name.len() <= ARENA_ALIGN,
        "model name too long for the header page"
    );

    let mut aw = ArenaWriter {
        off: HEADER_FIXED + name.len(),
        w,
    };
    aw.pad_to(ARENA_ALIGN)?;
    aw.off = 0; // arena-relative from here on

    aw.f32_matrix(&weights.wte)?;
    aw.f32_matrix(&weights.wpe)?;
    for block in &weights.blocks {
        aw.layernorm(&block.ln1)?;
        aw.linear(&block.qkv)?;
        aw.linear(&block.proj)?;
        aw.layernorm(&block.ln2)?;
        aw.linear(&block.fc1)?;
        aw.linear(&block.fc2)?;
    }
    aw.layernorm(&weights.ln_f)?;
    aw.linear(&weights.lm_head)?;
    aw.w.flush()
}

// ---------------------------------------------------------------------------
// Load
// ---------------------------------------------------------------------------

/// Positional reader over the mapped arena; must consume tensors in the
/// exact order [`save`] wrote them.
struct ArenaCursor<'a> {
    arena: &'a Arc<MappedArena>,
    /// Absolute byte offset of the arena within the file.
    base: usize,
    /// Arena-relative offset of the next tensor.
    off: usize,
}

impl ArenaCursor<'_> {
    /// Aligns, bounds-checks, and consumes `bytes` — returning the
    /// absolute file offset of the tensor.
    fn tensor(&mut self, bytes: usize) -> Result<usize, CheckpointError> {
        self.off = align_up(self.off, TENSOR_ALIGN);
        let abs = self
            .base
            .checked_add(self.off)
            .ok_or(CheckpointError::Corrupt("tensor offset overflows"))?;
        let end = abs
            .checked_add(bytes)
            .ok_or(CheckpointError::Corrupt("tensor offset overflows"))?;
        if end > self.arena.len() {
            return Err(CheckpointError::Truncated {
                expected: end as u64,
                actual: self.arena.len() as u64,
            });
        }
        self.off += bytes;
        Ok(abs)
    }

    fn f32s(&mut self, n: usize) -> Result<Vec<f32>, CheckpointError> {
        let bytes = n
            .checked_mul(4)
            .ok_or(CheckpointError::Corrupt("tensor size overflows"))?;
        let abs = self.tensor(bytes)?;
        let raw = &self.arena.bytes()[abs..abs + bytes];
        Ok(raw
            .chunks_exact(4)
            .map(|c| f32::from_le_bytes([c[0], c[1], c[2], c[3]]))
            .collect())
    }

    fn i32s(&mut self, n: usize) -> Result<Vec<i32>, CheckpointError> {
        let bytes = n
            .checked_mul(4)
            .ok_or(CheckpointError::Corrupt("tensor size overflows"))?;
        let abs = self.tensor(bytes)?;
        let raw = &self.arena.bytes()[abs..abs + bytes];
        Ok(raw
            .chunks_exact(4)
            .map(|c| i32::from_le_bytes([c[0], c[1], c[2], c[3]]))
            .collect())
    }

    fn i8_matrix(&mut self, rows: usize, cols: usize) -> Result<Matrix<i8>, CheckpointError> {
        let bytes = rows
            .checked_mul(cols)
            .ok_or(CheckpointError::Corrupt("tensor size overflows"))?;
        let abs = self.tensor(bytes)?;
        Ok(Matrix::from_arena(rows, cols, self.arena, abs)?)
    }

    fn f32_matrix(&mut self, rows: usize, cols: usize) -> Result<Matrix<f32>, CheckpointError> {
        let bytes = rows
            .checked_mul(cols)
            .and_then(|n| n.checked_mul(4))
            .ok_or(CheckpointError::Corrupt("tensor size overflows"))?;
        let abs = self.tensor(bytes)?;
        Ok(Matrix::from_arena(rows, cols, self.arena, abs)?)
    }

    fn linear(&mut self, rows: usize, cols: usize) -> Result<QuantLinear, CheckpointError> {
        let data = self.i8_matrix(rows, cols)?;
        let scales = self.f32s(rows)?;
        if !scales.iter().all(|&s| s > 0.0 && s.is_finite()) {
            return Err(CheckpointError::Corrupt("non-positive quantization scale"));
        }
        let sums = self.i32s(rows)?;
        let bias = self.f32s(rows)?;
        let weight = QuantizedMatrix::from_parts(data, scales, sums);
        QuantLinear::new(weight, bias)
            .map_err(|_| CheckpointError::Corrupt("linear bias length mismatch"))
    }

    fn layernorm(&mut self, dim: usize) -> Result<LayerNormParams, CheckpointError> {
        let gamma = self.f32s(dim)?;
        let beta = self.f32s(dim)?;
        let eps = self.f32s(1)?[0];
        if !(eps.is_finite() && eps > 0.0) {
            return Err(CheckpointError::Corrupt("layernorm eps must be positive"));
        }
        LayerNormParams::new(gamma, beta, eps)
            .map_err(|_| CheckpointError::Corrupt("layernorm length mismatch"))
    }
}

fn header_u32(bytes: &[u8], off: usize) -> u32 {
    u32::from_le_bytes([bytes[off], bytes[off + 1], bytes[off + 2], bytes[off + 3]])
}

fn header_u64(bytes: &[u8], off: usize) -> u64 {
    let mut b = [0u8; 8];
    b.copy_from_slice(&bytes[off..off + 8]);
    u64::from_le_bytes(b)
}

/// Loads a checkpoint, returning its config and weights. The large
/// matrices are zero-copy views into the file mapping.
///
/// # Errors
///
/// Any [`CheckpointError`]; this function never panics on malformed
/// input.
pub fn load(path: &Path) -> Result<(ModelConfig, Gpt2Weights), CheckpointError> {
    let arena = MappedArena::map_file(path)?;
    let bytes = arena.bytes();

    if bytes.len() < HEADER_FIXED {
        return Err(CheckpointError::Truncated {
            expected: HEADER_FIXED as u64,
            actual: bytes.len() as u64,
        });
    }
    let mut magic = [0u8; 8];
    magic.copy_from_slice(&bytes[..8]);
    if magic != MAGIC {
        return Err(CheckpointError::BadMagic(magic));
    }
    let version = header_u32(bytes, 8);
    if version != VERSION {
        return Err(CheckpointError::BadVersion {
            found: version,
            expected: VERSION,
        });
    }
    let layers = header_u32(bytes, 12) as usize;
    let d_model = header_u32(bytes, 16) as usize;
    let heads = header_u32(bytes, 20) as usize;
    let d_ff = header_u32(bytes, 24) as usize;
    let vocab = header_u32(bytes, 28) as usize;
    let max_seq = header_u32(bytes, 32) as usize;
    let name_len = header_u32(bytes, 36) as usize;
    let file_len = header_u64(bytes, 40);
    let arena_offset = header_u64(bytes, 48);

    if file_len != bytes.len() as u64 {
        return Err(CheckpointError::Truncated {
            expected: file_len,
            actual: bytes.len() as u64,
        });
    }
    if !(arena_offset as usize).is_multiple_of(ARENA_ALIGN) {
        return Err(CheckpointError::MisalignedArena {
            offset: arena_offset,
        });
    }
    if HEADER_FIXED + name_len > arena_offset as usize {
        return Err(CheckpointError::Corrupt("name overruns the arena"));
    }
    if arena_offset > file_len {
        return Err(CheckpointError::Corrupt("arena starts past end of file"));
    }
    if d_model == 0 || heads == 0 || vocab == 0 || max_seq == 0 || d_ff == 0 {
        return Err(CheckpointError::Corrupt("zero model dimension"));
    }
    // Each layer occupies far more than one byte, so a layer count at or
    // beyond the file length is definitely corrupt — reject it before
    // looping (a hostile count must not drive allocation).
    if layers as u64 >= file_len {
        return Err(CheckpointError::Corrupt("layer count exceeds file size"));
    }
    if !d_model.is_multiple_of(heads) {
        return Err(CheckpointError::Corrupt("heads must divide d_model"));
    }
    let name = std::str::from_utf8(&bytes[HEADER_FIXED..HEADER_FIXED + name_len])
        .map_err(|_| CheckpointError::Corrupt("model name is not UTF-8"))?
        .to_string();

    let cfg = ModelConfig {
        name,
        layers,
        d_model,
        heads,
        d_ff,
        vocab,
        max_seq,
    };

    let mut cur = ArenaCursor {
        arena: &arena,
        base: arena_offset as usize,
        off: 0,
    };
    let wte = cur.f32_matrix(vocab, d_model)?;
    let wpe = cur.f32_matrix(max_seq, d_model)?;
    let mut blocks = Vec::new();
    for _ in 0..layers {
        let ln1 = cur.layernorm(d_model)?;
        let qkv = cur.linear(3 * d_model, d_model)?;
        let proj = cur.linear(d_model, d_model)?;
        let ln2 = cur.layernorm(d_model)?;
        let fc1 = cur.linear(d_ff, d_model)?;
        let fc2 = cur.linear(d_model, d_ff)?;
        blocks.push(BlockWeights {
            ln1,
            qkv,
            proj,
            ln2,
            fc1,
            fc2,
        });
    }
    let ln_f = cur.layernorm(d_model)?;
    let lm_head = cur.linear(vocab, d_model)?;

    Ok((
        cfg,
        Gpt2Weights {
            wte,
            wpe,
            blocks,
            ln_f,
            lm_head,
        },
    ))
}

/// [`load`] plus model construction — the one-call path from a
/// checkpoint file to a ready [`Gpt2Model`].
///
/// # Errors
///
/// Any [`CheckpointError`] from [`load`].
pub fn load_model(path: &Path) -> Result<Gpt2Model, CheckpointError> {
    let (cfg, weights) = load(path)?;
    Ok(Gpt2Model::from_weights(cfg, weights))
}
