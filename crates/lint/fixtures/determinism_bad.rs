// Negative fixture for `determinism`: wall-clock, hash-order
// collections, and entropy seeding in a bit-exact crate.

use std::collections::HashMap;
use std::time::Instant;

fn offenders() {
    let t = Instant::now();
    let mut m = HashMap::new();
    m.insert(1u32, t);
    let s: std::collections::HashSet<u32> = Default::default();
    let _ = (m, s);
    let _ = std::time::SystemTime::now();
}

fn randomly_keyed_hashing() -> u64 {
    use std::collections::hash_map::{DefaultHasher, RandomState};
    use std::hash::{BuildHasher, Hasher};
    let h: DefaultHasher = RandomState::new().build_hasher();
    h.finish()
}
