// Positive fixture for `determinism`: ordered collections, seeded RNG,
// waived wall-clock, and test-only hash sets are all fine.

use std::collections::BTreeMap;

fn fine(seed: u64) -> BTreeMap<u32, u64> {
    let mut m = BTreeMap::new();
    m.insert(0, seed.wrapping_mul(6364136223846793005));
    // lint: allow(determinism) — fixture: measured wall-clock, tokens unaffected
    let _t = std::time::Instant::now();
    m
}

#[cfg(test)]
mod tests {
    use std::collections::HashSet;

    #[test]
    fn tests_may_hash() {
        let mut seen = HashSet::new();
        assert!(seen.insert(1u32));
    }
}
