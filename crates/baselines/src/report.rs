//! Shared report types for baseline comparisons.

use std::fmt;

use serde::{Deserialize, Serialize};

use looplynx_hw::resources::ResourceVector;

/// One row of the paper's Table II (FPGA implementation comparison).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FpgaBaselineReport {
    /// Architecture name.
    pub name: String,
    /// Node/device description (e.g. `"U280"`, `"2 Nodes (U50 x1)"`).
    pub nodes_desc: String,
    /// Kernel clock in MHz.
    pub freq_mhz: f64,
    /// Quantization scheme (e.g. `"W8A8"`, `"Float16"`).
    pub quantization: String,
    /// Average per-token latency in milliseconds.
    pub token_latency_ms: f64,
    /// Device resource utilization.
    pub resources: ResourceVector,
}

impl fmt::Display for FpgaBaselineReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{:<24} {:<18} {:>4.0} MHz {:<8} {:>6.2} ms  [{}]",
            self.name,
            self.nodes_desc,
            self.freq_mhz,
            self.quantization,
            self.token_latency_ms,
            self.resources
        )
    }
}

/// Latency/energy outcome of a GPU generation run.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct GpuGenerationReport {
    /// Prompt length.
    pub prefill_tokens: usize,
    /// Generated tokens.
    pub decode_tokens: usize,
    /// Prefill wall-clock in milliseconds.
    pub prefill_ms: f64,
    /// Decode wall-clock in milliseconds.
    pub decode_ms: f64,
    /// Total wall-clock in milliseconds.
    pub total_ms: f64,
    /// Total energy in joules.
    pub energy_joules: f64,
    /// Generated tokens per joule.
    pub tokens_per_joule: f64,
}

impl fmt::Display for GpuGenerationReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "[{}:{}] {:.1} ms, {:.1} J, {:.2} tok/J",
            self.prefill_tokens,
            self.decode_tokens,
            self.total_ms,
            self.energy_joules,
            self.tokens_per_joule
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_renders_table_row() {
        let row = FpgaBaselineReport {
            name: "LoopLynx".into(),
            nodes_desc: "2 Nodes (U50 x1)".into(),
            freq_mhz: 285.0,
            quantization: "W8A8".into(),
            token_latency_ms: 3.85,
            resources: ResourceVector::new(1132.0, 312_000.0, 478_000.0, 924.5, 4.0),
        };
        let s = row.to_string();
        assert!(s.contains("LoopLynx"));
        assert!(s.contains("3.85"));
        assert!(s.contains("285"));
    }
}
