//! # looplynx-bench — experiment harness
//!
//! One function per table/figure of the LoopLynx paper, shared between the
//! `src/bin/*` report binaries and the Criterion benches. Each function
//! returns structured data (so tests can assert the *shape* of the
//! results) and offers a `render` that prints rows comparable
//! one-for-one with the paper.
//!
//! | Paper artifact | Function | Binary |
//! |---|---|---|
//! | Table I   | [`experiments::table1`] | `table1` |
//! | Fig. 5    | [`experiments::fig5`]   | `fig5`   |
//! | Fig. 7    | [`experiments::fig7`]   | `fig7`   |
//! | Table II  | [`experiments::table2`] | `table2` |
//! | Fig. 8    | [`experiments::fig8`]   | `fig8`   |
//! | Table III | [`experiments::table3`] | `table3` |
//!
//! Beyond the paper, [`experiments::offered_load_sweep`] (binary
//! `serve_sweep`) measures the serving layer: sustained tokens/s and
//! TTFT/TPOT/end-to-end latency percentiles vs Poisson arrival rate,
//! continuous batching against a serve-one-request-at-a-time baseline.
//! [`chaos`] (binary `chaos`) is the robustness gate: it replays
//! bursty/overload traces through the fault-tolerant gateway under
//! injected faults and verifies conservation, bit-exact completions,
//! and graceful goodput degradation. [`prefix`] (binary `prefix`)
//! replays a multi-turn chat trace with the prefix cache on and off at
//! equal arena bytes, reporting prefill amplification and hit rate.

#![forbid(unsafe_code)]
#![deny(missing_docs)]

pub mod chaos;
pub mod experiments;
pub mod hotpath;
pub mod paper;
pub mod prefix;
pub mod serve_functional;
