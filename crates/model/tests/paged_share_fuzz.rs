//! Sharing fuzz: random acquire/feed/pin/share/release scripts against
//! [`PagedKvArena`] with page sharing in play, auditing the refcount
//! ledger against ground truth after every op — a page's count must
//! equal the slot tables holding it plus its cache-style pins, free
//! pages are exactly the zero-count pages, and copy-on-write forks the
//! boundary page out of a shared chain without touching the original.
//!
//! This suite is the Miri-facing wall for the shared-page lifecycle:
//! it drives every grant/map/fork/release path with no model compute,
//! so the interpreter can afford full scripts.

use proptest::prelude::*;

use looplynx_model::paged::PagedKvArena;

const LAYERS: usize = 2;
const D_HEAD: usize = 4;
const HEADS: usize = 2;
const SLOTS: usize = 4;
const CAPACITY: usize = 24;

/// A released slot's pinned page chain, available for `map_shared`.
struct Cached {
    pages: Vec<usize>,
    tokens: usize,
}

fn kv(seed: usize, t: usize) -> (Vec<f32>, Vec<f32>) {
    let n = HEADS * D_HEAD;
    (
        (0..n)
            .map(|i| ((seed * 131 + t * 17 + i) as f32 * 0.23).sin())
            .collect(),
        (0..n)
            .map(|i| ((seed * 37 + t * 5 + i + 1) as f32 * 0.19).cos())
            .collect(),
    )
}

/// Feeds `len` tokens into `slot`, reserving token by token (each
/// reserve may copy-on-write a shared boundary page first).
fn feed(a: &mut PagedKvArena, slot: usize, seed: usize, len: usize) {
    for _ in 0..len {
        a.try_reserve(slot, 1).expect("pool sized for script");
        let t = a.pos(slot);
        let (k, v) = kv(seed, t);
        for l in 0..a.layers() {
            a.append_at(slot, l, t, &k, &v);
        }
        a.advance(slot, 1);
    }
}

/// Audits the arena's refcount ledger against ground truth: every
/// page's count equals the in-use slot tables holding it plus its
/// pins, and the free-page count is exactly the zero-count pages.
fn audit(a: &PagedKvArena, pins: &[u32]) {
    let mut expected = pins.to_vec();
    for slot in 0..a.slots() {
        if !a.in_use(slot) {
            continue;
        }
        for &page in a.slot_pages(slot) {
            expected[page] += 1;
        }
    }
    for (page, (&want, &got)) in expected.iter().zip(a.refcounts()).enumerate() {
        assert_eq!(got, want, "page {page} refcount ledger drifted");
    }
    let zero = expected.iter().filter(|&&r| r == 0).count();
    assert_eq!(a.free_pages(), zero, "free list disagrees with refcounts");
}

const CASES: u32 = if cfg!(miri) { 4 } else { 48 };

proptest! {
    #![proptest_config(ProptestConfig::with_cases(CASES))]

    /// For any op script over shared pages: the refcount ledger always
    /// matches ground truth, releases free exactly the sole-owner
    /// pages, copy-on-write evicts the shared boundary page from the
    /// writer's table (and only the writer's), and dropping every pin
    /// and slot drains the pool back to its initial free count.
    #[test]
    fn shared_page_lifecycle_holds_under_any_script(
        ops in proptest::collection::vec((0u8..5, 0usize..4, 1usize..7), 0..50),
        page_idx in 0usize..3,
    ) {
        let page_tokens = [2usize, 4, 8][page_idx];
        let pool = CAPACITY.div_ceil(page_tokens) * 2 + 4;
        let mut a = PagedKvArena::new(
            LAYERS, D_HEAD, HEADS, SLOTS, CAPACITY, page_tokens, pool,
        );
        let mut pins = vec![0u32; pool];
        let mut cached: Vec<Cached> = Vec::new();
        let mut seed = 1usize;

        for (op, pick, amount) in ops {
            match op {
                // Admit a fresh sequence.
                0 => {
                    a.acquire();
                }
                // Feed tokens; through a shared boundary page this is
                // the copy-on-write path.
                1 => {
                    let slot = pick % SLOTS;
                    if a.in_use(slot) && a.pos(slot) + amount <= CAPACITY {
                        let needed = a.pages_needed(slot, amount);
                        if needed <= a.free_pages() {
                            let boundary = a.pos(slot) / page_tokens;
                            let shared_boundary = a
                                .slot_pages(slot)
                                .get(boundary)
                                .copied()
                                .filter(|&p| a.page_refcount(p) > 1);
                            seed += 1;
                            feed(&mut a, slot, seed, amount);
                            if let Some(old) = shared_boundary {
                                let now = a.slot_pages(slot)[boundary];
                                // Append through a shared page must fork it.
                                prop_assert_ne!(now, old);
                                prop_assert!(
                                    a.page_refcount(old) > 0,
                                    "the original kept its other holders"
                                );
                            }
                        }
                    }
                }
                // Release, pinning the chain first (the cache's move):
                // the freed count must be exactly the sole-owner pages.
                2 => {
                    let slot = pick % SLOTS;
                    if a.in_use(slot) {
                        let table = a.slot_pages(slot).to_vec();
                        let tokens = a.pos(slot);
                        let keep = amount % 2 == 0 && tokens > 0;
                        if keep {
                            for &p in &table {
                                a.retain_page(p);
                                pins[p] += 1;
                            }
                        }
                        let sole = table
                            .iter()
                            .filter(|&&p| a.page_refcount(p) == 1)
                            .count();
                        let free_before = a.free_pages();
                        let freed = a.release(slot);
                        prop_assert_eq!(freed, sole, "release freed the wrong pages");
                        prop_assert_eq!(a.free_pages(), free_before + freed);
                        if keep {
                            cached.push(Cached { pages: table, tokens });
                        }
                    }
                }
                // Map a pinned chain under a fresh slot, read-only.
                3 => {
                    if !cached.is_empty() {
                        let c = &cached[pick % cached.len()];
                        if let Some(slot) = a.acquire() {
                            a.map_shared(slot, &c.pages, c.tokens);
                            prop_assert_eq!(a.pos(slot), c.tokens);
                        }
                    }
                }
                // Drop one cached chain's pins (cache eviction).
                _ => {
                    if !cached.is_empty() {
                        let c = cached.swap_remove(pick % cached.len());
                        for p in c.pages {
                            a.release_page(p);
                            pins[p] -= 1;
                        }
                    }
                }
            }
            audit(&a, &pins);
        }

        // Drain everything: the pool must come back whole.
        for c in cached.drain(..) {
            for p in c.pages {
                a.release_page(p);
                pins[p] -= 1;
            }
        }
        for slot in 0..SLOTS {
            if a.in_use(slot) {
                a.release(slot);
            }
        }
        audit(&a, &pins);
        prop_assert_eq!(a.free_pages(), pool, "drained pool leaked pages");
    }

    /// Sharing is content-transparent: a slot that maps a cached chain
    /// and appends a continuation materializes bit-identically to a
    /// slot fed the same tokens from scratch — including when the
    /// continuation forks a partially-filled boundary page.
    #[test]
    fn mapped_continuation_matches_from_scratch_bitwise(
        prefix in 1usize..12,
        extra in 1usize..8,
        page_idx in 0usize..3,
    ) {
        let page_tokens = [2usize, 4, 8][page_idx];
        let pool = 24usize.div_ceil(page_tokens) * 3;
        let mut a = PagedKvArena::new(
            LAYERS, D_HEAD, HEADS, SLOTS, CAPACITY, page_tokens, pool,
        );

        // Build the prefix, pin it, release the builder.
        let s0 = a.acquire().unwrap();
        feed(&mut a, s0, 7, prefix);
        let chain = a.slot_pages(s0).to_vec();
        for &p in &chain {
            a.retain_page(p);
        }
        a.release(s0);

        // Map + continue in one slot; replay everything in another.
        let hit = a.acquire().unwrap();
        a.map_shared(hit, &chain, prefix);
        for t in 0..extra {
            a.try_reserve(hit, 1).unwrap();
            let (k, v) = kv(7, prefix + t);
            for l in 0..LAYERS {
                a.append_at(hit, l, prefix + t, &k, &v);
            }
            a.advance(hit, 1);
        }
        let replay = a.acquire().unwrap();
        feed(&mut a, replay, 7, prefix + extra);

        for l in 0..LAYERS {
            prop_assert_eq!(
                a.materialize(hit, l),
                a.materialize(replay, l),
                "mapped continuation diverged at layer {}",
                l
            );
        }
    }
}
