//! The paper's reported numbers, kept next to the harness so every run can
//! print paper-vs-measured deltas (recorded in `EXPERIMENTS.md`).

/// Table II: token latency in ms for LoopLynx 1/2/4 nodes.
pub const TABLE2_LOOPLYNX_MS: [f64; 3] = [6.59, 3.85, 2.55];

/// Table II: DFX (temporal architecture) token latency in ms.
pub const TABLE2_DFX_MS: f64 = 5.37;

/// Table II: spatial architecture token latency in ms.
pub const TABLE2_SPATIAL_MS: f64 = 4.17;

/// Table III: tokens per second for 1/2/4 nodes.
pub const TABLE3_TOKENS_PER_S: [f64; 3] = [151.7, 259.7, 392.2];

/// Table III: speedup of 2-node over 1-node and of 4-node over 2-node.
pub const TABLE3_SPEEDUPS: [f64; 2] = [1.71, 1.51];

/// Fig. 5(a): fraction of unoptimized token latency spent in linear + MHA.
pub const FIG5_LINEAR_MHA_FRACTION: f64 = 0.815;

/// Fig. 5(b): latency reduction from critical-path optimization.
pub const FIG5_FUSION_REDUCTION: f64 = 0.11;

/// Fig. 5(c): cumulative latency reduction with head-wise pipelining.
pub const FIG5_CUMULATIVE_REDUCTION: f64 = 0.15;

/// §III-F: average speedups of 2-node / 4-node over the A100.
pub const FIG8_SPEEDUP_VS_A100: [f64; 2] = [1.67, 2.52];

/// §III-F: LoopLynx energy as a fraction of the A100's (2-node, 4-node).
pub const FIG8_ENERGY_FRACTION: [f64; 2] = [0.373, 0.481];

/// §III-F: normalized energy efficiency vs A100 for 1/2/4 nodes.
pub const FIG8_ENERGY_EFF: [f64; 3] = [2.3, 2.7, 2.1];

/// Relative deviation of `measured` from `paper` (positive = slower/bigger).
pub fn deviation(measured: f64, paper: f64) -> f64 {
    (measured - paper) / paper
}

/// Formats a paper-vs-measured comparison cell.
pub fn compare(measured: f64, paper: f64) -> String {
    format!(
        "{measured:.2} (paper {paper:.2}, {:+.1}%)",
        deviation(measured, paper) * 100.0
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deviation_is_signed_relative_error() {
        assert!((deviation(11.0, 10.0) - 0.1).abs() < 1e-12);
        assert!((deviation(9.0, 10.0) + 0.1).abs() < 1e-12);
    }

    #[test]
    fn table3_is_reciprocal_of_table2() {
        // internal consistency of the paper: throughput = 1 / latency
        for (ms, tps) in TABLE2_LOOPLYNX_MS.iter().zip(TABLE3_TOKENS_PER_S) {
            assert!((1000.0 / ms - tps).abs() / tps < 0.01);
        }
    }

    #[test]
    fn compare_renders_both_numbers() {
        let s = compare(4.0, 3.85);
        assert!(s.contains("4.00"));
        assert!(s.contains("3.85"));
    }
}
