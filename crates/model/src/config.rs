//! Model hyper-parameters and derived byte counts.
//!
//! The derived quantities (weight bytes per block, KV bytes per token) are
//! the single source of truth for the accelerator's HBM traffic model: a
//! decode token must stream every weight byte once, which is why GPT-2
//! decode is memory-bound and why LoopLynx scales with channels and nodes.

use std::fmt;

use serde::{Deserialize, Serialize};

/// Hyper-parameters of a GPT-2 style decoder-only transformer.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct ModelConfig {
    /// Human-readable name (e.g. `"gpt2-medium"`).
    pub name: String,
    /// Number of transformer blocks.
    pub layers: usize,
    /// Embedding (hidden) dimension `l_embed`.
    pub d_model: usize,
    /// Number of attention heads.
    pub heads: usize,
    /// Feed-forward inner dimension.
    pub d_ff: usize,
    /// Vocabulary size.
    pub vocab: usize,
    /// Maximum sequence length (positional-embedding table size).
    pub max_seq: usize,
}

impl ModelConfig {
    /// GPT-2 small (124M parameters).
    pub fn gpt2_small() -> Self {
        ModelConfig {
            name: "gpt2-small".into(),
            layers: 12,
            d_model: 768,
            heads: 12,
            d_ff: 3072,
            vocab: 50257,
            max_seq: 1024,
        }
    }

    /// GPT-2 medium (345M parameters) — the model evaluated in the paper.
    pub fn gpt2_medium() -> Self {
        ModelConfig {
            name: "gpt2-medium".into(),
            layers: 24,
            d_model: 1024,
            heads: 16,
            d_ff: 4096,
            vocab: 50257,
            max_seq: 1024,
        }
    }

    /// GPT-2 large (774M parameters).
    pub fn gpt2_large() -> Self {
        ModelConfig {
            name: "gpt2-large".into(),
            layers: 36,
            d_model: 1280,
            heads: 20,
            d_ff: 5120,
            vocab: 50257,
            max_seq: 1024,
        }
    }

    /// GPT-2 XL (1.5B parameters).
    pub fn gpt2_xl() -> Self {
        ModelConfig {
            name: "gpt2-xl".into(),
            layers: 48,
            d_model: 1600,
            heads: 25,
            d_ff: 6400,
            vocab: 50257,
            max_seq: 1024,
        }
    }

    /// A miniature config for fast functional tests (2 layers, d=64).
    pub fn tiny() -> Self {
        ModelConfig {
            name: "tiny".into(),
            layers: 2,
            d_model: 64,
            heads: 4,
            d_ff: 128,
            vocab: 320,
            max_seq: 64,
        }
    }

    /// Head dimension `d_model / heads`.
    ///
    /// # Panics
    ///
    /// Panics if `d_model` is not divisible by `heads`.
    pub fn d_head(&self) -> usize {
        assert_eq!(
            self.d_model % self.heads,
            0,
            "d_model {} not divisible by heads {}",
            self.d_model,
            self.heads
        );
        self.d_model / self.heads
    }

    /// Int8 weight bytes of one block's QKV projection (`3·d_model²`).
    pub fn qkv_bytes(&self) -> usize {
        3 * self.d_model * self.d_model
    }

    /// Int8 weight bytes of one block's output projection (`d_model²`).
    pub fn proj_bytes(&self) -> usize {
        self.d_model * self.d_model
    }

    /// Int8 weight bytes of one block's first MLP linear (`d_ff·d_model`).
    pub fn fc1_bytes(&self) -> usize {
        self.d_ff * self.d_model
    }

    /// Int8 weight bytes of one block's second MLP linear (`d_model·d_ff`).
    pub fn fc2_bytes(&self) -> usize {
        self.d_model * self.d_ff
    }

    /// Int8 weight bytes of one transformer block.
    pub fn block_weight_bytes(&self) -> usize {
        self.qkv_bytes() + self.proj_bytes() + self.fc1_bytes() + self.fc2_bytes()
    }

    /// Int8 weight bytes of the LM head (`vocab·d_model`).
    pub fn lm_head_bytes(&self) -> usize {
        self.vocab * self.d_model
    }

    /// Total int8 weight bytes streamed per decode token
    /// (all blocks + LM head).
    pub fn weights_bytes_total(&self) -> usize {
        self.layers * self.block_weight_bytes() + self.lm_head_bytes()
    }

    /// Int8 KV-cache bytes appended per token per layer (`2·d_model`).
    pub fn kv_bytes_per_token_per_layer(&self) -> usize {
        2 * self.d_model
    }

    /// Int8 KV-cache bytes read when attending over `context_len` cached
    /// tokens in one layer.
    pub fn kv_read_bytes(&self, context_len: usize) -> usize {
        self.kv_bytes_per_token_per_layer() * context_len
    }

    /// Approximate parameter count (weights only, no embeddings).
    pub fn approx_params(&self) -> usize {
        self.weights_bytes_total()
    }
}

impl fmt::Display for ModelConfig {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}: {} layers, d={}, {} heads, ffn={}, vocab={}",
            self.name, self.layers, self.d_model, self.heads, self.d_ff, self.vocab
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn medium_matches_paper_shape() {
        let c = ModelConfig::gpt2_medium();
        assert_eq!(c.d_head(), 64);
        // 4·d² + 2·d·dff = 4·1024² + 2·1024·4096 = 12,582,912 per block
        assert_eq!(c.block_weight_bytes(), 12_582_912);
        // ≈302 MB of block weights + ≈51 MB LM head per decode token
        let total = c.weights_bytes_total();
        assert!(total > 350_000_000 && total < 360_000_000, "total {total}");
    }

    #[test]
    fn small_is_smaller_than_medium() {
        assert!(
            ModelConfig::gpt2_small().weights_bytes_total()
                < ModelConfig::gpt2_medium().weights_bytes_total()
        );
    }

    #[test]
    fn family_ordering_holds() {
        let sizes: Vec<usize> = [
            ModelConfig::gpt2_small(),
            ModelConfig::gpt2_medium(),
            ModelConfig::gpt2_large(),
            ModelConfig::gpt2_xl(),
        ]
        .iter()
        .map(ModelConfig::weights_bytes_total)
        .collect();
        assert!(sizes.windows(2).all(|w| w[0] < w[1]));
    }

    #[test]
    fn kv_accounting() {
        let c = ModelConfig::gpt2_medium();
        assert_eq!(c.kv_bytes_per_token_per_layer(), 2048);
        assert_eq!(c.kv_read_bytes(512), 1_048_576);
        assert_eq!(c.kv_read_bytes(0), 0);
    }

    #[test]
    fn tiny_is_consistent() {
        let c = ModelConfig::tiny();
        assert_eq!(c.d_head(), 16);
        assert!(c.vocab >= 256, "byte tokenizer needs vocab >= 256");
        assert!(c.weights_bytes_total() < 1_000_000);
    }

    #[test]
    #[should_panic(expected = "not divisible")]
    fn bad_head_split_panics() {
        let mut c = ModelConfig::tiny();
        c.heads = 3;
        let _ = c.d_head();
    }

    #[test]
    fn display_mentions_name() {
        assert!(ModelConfig::gpt2_medium()
            .to_string()
            .contains("gpt2-medium"));
    }
}
