//! Execution backends: one serving contract, two substrates.
//!
//! The serving layer (`looplynx-serve`) schedules requests; *how* a
//! prefill or a batched decode iteration actually executes is the
//! backend's business. [`InferenceBackend`] is that seam:
//!
//! * [`SimBackend`] — the cycle-accurate [`LoopLynx`] timing engine.
//!   Nothing is computed; every operation returns the simulated
//!   accelerator wall-clock. Use it for scheduling studies, offered-load
//!   sweeps and paper reproduction, where the metric is *modelled* time.
//! * [`FunctionalBackend`] — the real W8A8 [`DistributedGpt2`] pipeline
//!   over a multi-sequence slot arena. Tokens are actually produced
//!   (per-request samplers over real logits), batched decode shares every
//!   weight stream across residents, and operations report measured host
//!   wall-clock. Use it to serve real prompts and to measure functional
//!   throughput.
//!
//! The contract mirrors continuous batching's shape: admission runs one
//! prompt (`prefill`, returning a slot and — for token-producing
//! backends — the request's first output token, sampled from the prefill
//! logits), each decode iteration advances a *batch* of resident slots by
//! one token, and completed requests release their slots.

use std::fmt;
use std::panic::{catch_unwind, AssertUnwindSafe};
// lint: allow(determinism) — wall-clock feeds only measured elapsed_ms, never token streams
use std::time::Instant;

use looplynx_model::sampler::Sampler;

use crate::engine::{DistributedGpt2, LoopLynx};

/// Why a backend operation could not be carried out.
///
/// Failure is part of the serving contract: a gateway that admits
/// millions of requests must be able to *observe* slot pressure, injected
/// chaos faults, and crashed worker threads as values, not as process
/// aborts. Every variant is either **transient** (retrying the same
/// operation may succeed — see [`BackendError::is_transient`]) or
/// **permanent** (the request, or the whole backend, is lost).
#[derive(Debug, Clone, PartialEq)]
pub enum BackendError {
    /// Every resident-sequence slot is occupied: admission outran
    /// completion. Not retryable *now*, but clears when a resident
    /// releases — schedulers should hold the request, not drop it.
    SlotsExhausted {
        /// The backend's slot capacity at the time of the call.
        capacity: usize,
    },
    /// A deterministic fault-injection wrapper
    /// ([`crate::fault::FaultyBackend`]) vetoed the operation before the
    /// inner backend ran. The inner state is untouched, so a retry is
    /// exact: completed requests stay bit-identical to a fault-free run.
    InjectedFault {
        /// Operation the fault was injected into (`"prefill"`,
        /// `"decode"`).
        op: &'static str,
    },
    /// A token-producing backend was asked to prefill a request that
    /// carries no prompt tokens.
    MissingPrompt,
    /// The declared prompt length disagrees with the prompt tokens
    /// actually supplied.
    PromptLengthMismatch {
        /// `prefill_tokens` the caller declared.
        declared: usize,
        /// Tokens actually present in the prompt.
        got: usize,
    },
    /// A node worker panicked mid-operation. The engine's KV/slot state
    /// can no longer be trusted, so the backend poisons itself: every
    /// subsequent operation fails with this error and the gateway must
    /// drain its residents as failed.
    WorkerPoisoned {
        /// Rendered panic payload (best effort).
        detail: String,
    },
    /// An operation named a slot no resident sequence owns.
    SlotNotResident {
        /// The offending slot index.
        slot: usize,
    },
    /// The paged KV pool cannot grant the pages the operation needs:
    /// resident context outran physical arena bytes. Not retryable *now*
    /// — it clears when pages free (a release or a preemption), so
    /// schedulers should preempt or hold, never drop. The operation did
    /// not run; no KV state changed.
    PagesExhausted {
        /// Pages the operation needed.
        needed: usize,
        /// Pages that were free at the time of the call.
        free: usize,
    },
    /// The backend does not implement this optional capability (chunked
    /// prefill, preemption). Permanent for the backend's lifetime: gate
    /// on [`InferenceBackend::supports_chunked_prefill`] /
    /// [`InferenceBackend::supports_preemption`] instead of retrying.
    Unsupported {
        /// The capability that was requested.
        op: &'static str,
    },
}

impl BackendError {
    /// Whether retrying the *same* operation can succeed: injected faults
    /// veto one call, not the request. Slot exhaustion is wait-don't-retry
    /// (it clears on release, not on retry), and the remaining variants
    /// are permanent contract violations or lost engines.
    pub fn is_transient(&self) -> bool {
        matches!(self, BackendError::InjectedFault { .. })
    }

    /// Whether this is resource pressure that clears when a resident
    /// releases (slots) or shrinks (KV pages) — wait or preempt, don't
    /// retry blindly and don't treat it as a permanent failure.
    pub fn is_resource_pressure(&self) -> bool {
        matches!(
            self,
            BackendError::SlotsExhausted { .. } | BackendError::PagesExhausted { .. }
        )
    }
}

impl fmt::Display for BackendError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            BackendError::SlotsExhausted { capacity } => {
                write!(f, "all {capacity} sequence slots are resident")
            }
            BackendError::InjectedFault { op } => write!(f, "injected {op} fault"),
            BackendError::MissingPrompt => write!(
                f,
                "token-producing backend needs real prompt tokens \
                 (Request::with_prompt / ArrivalProcess::workload_with_prompts)"
            ),
            BackendError::PromptLengthMismatch { declared, got } => {
                write!(f, "prompt declared {declared} tokens but carries {got}")
            }
            BackendError::WorkerPoisoned { detail } => {
                write!(f, "worker panicked, backend poisoned: {detail}")
            }
            BackendError::SlotNotResident { slot } => {
                write!(f, "slot {slot} has no resident sequence")
            }
            BackendError::PagesExhausted { needed, free } => {
                write!(f, "KV page pool exhausted: need {needed}, {free} free")
            }
            BackendError::Unsupported { op } => {
                write!(f, "backend does not support {op}")
            }
        }
    }
}

impl std::error::Error for BackendError {}

/// Outcome of admitting one request's prompt.
#[derive(Debug, Clone, PartialEq)]
pub struct PrefillOutcome {
    /// Slot the sequence now occupies (pass to
    /// [`InferenceBackend::decode_batch`] / [`InferenceBackend::release`]).
    pub slot: usize,
    /// Time the prefill took, in the backend's clock domain (simulated
    /// accelerator ms or measured host ms).
    pub elapsed_ms: f64,
    /// The request's first output token, sampled from the prefill logits
    /// (`None` for timing-only backends).
    pub first_token: Option<u32>,
}

/// Outcome of one batched decode iteration.
#[derive(Debug, Clone, PartialEq)]
pub struct DecodeOutcome {
    /// Time the iteration took, in the backend's clock domain.
    pub elapsed_ms: f64,
    /// Next token per requested slot, in call order (`None` for
    /// timing-only backends).
    pub tokens: Option<Vec<u32>>,
}

/// Progress of one chunked-prefill step
/// ([`InferenceBackend::prefill_step`]).
#[derive(Debug, Clone, PartialEq)]
pub struct PrefillProgress {
    /// Time this chunk took, in the backend's clock domain.
    pub elapsed_ms: f64,
    /// Prompt tokens still to feed; `0` means the prefill finished and
    /// the slot is now a decodable resident.
    pub remaining: usize,
    /// The request's first output token, sampled when the *final* chunk
    /// lands (`None` on non-final chunks and for timing-only backends).
    pub first_token: Option<u32>,
}

/// A preempted sequence's resumable state, returned by
/// [`InferenceBackend::preempt`] and consumed by
/// [`InferenceBackend::resume`].
///
/// Holds everything the backend cannot recompute: the sampler mid-stream
/// (its RNG position matters for top-k) and the last sampled token. The
/// KV cache itself is *not* carried — resume rebuilds it bit-identically
/// by re-prefilling the context (int8 GEMM rows accumulate independently,
/// so a batched re-prefill equals the original token-by-token history).
#[derive(Debug)]
pub struct PreemptedSeq {
    /// Tokens of KV context the sequence held when preempted (prompt +
    /// produced-but-last); resume must re-feed exactly this many.
    pub context_len: usize,
    /// Most recently sampled token, not yet fed to the model (`None` for
    /// timing-only backends).
    pub last_token: Option<u32>,
    /// The sequence's sampler, frozen mid-stream (`None` for timing-only
    /// backends).
    pub sampler: Option<Sampler>,
}

/// The execution substrate behind the serving schedulers.
///
/// Slot discipline: `prefill` claims a slot, every `decode_batch` may
/// include it at most once, `release` frees it. A slot's sequence length
/// grows by one per decode iteration; the backend enforces its own
/// capacity bounds.
///
/// Every operation is fallible: slot pressure, injected chaos faults and
/// crashed worker threads surface as [`BackendError`] values the serving
/// gateway can retry, shed or fail — never as panics that take the
/// process down. An `Err` means the operation did **not** happen (no slot
/// claimed, no token produced, no clock advanced), except
/// [`BackendError::WorkerPoisoned`], after which the backend is lost.
pub trait InferenceBackend {
    /// Short name for reports (`"sim"`, `"functional"`).
    fn name(&self) -> &'static str;

    /// Longest prompt + output a resident sequence can hold. The
    /// scheduler must reject requests whose peak context exceeds this.
    fn max_seq(&self) -> usize;

    /// Sequences the backend can hold resident simultaneously (the
    /// admission ceiling alongside the scheduler's own batch bound).
    /// May *shrink* over a backend's lifetime — e.g. when a fault
    /// wrapper leaks slot releases — so schedulers should re-read it.
    fn capacity(&self) -> usize;

    /// Admits one prompt: claims a slot, processes `prompt_len` prompt
    /// tokens, and (for token-producing backends) samples the first
    /// output token with a sampler seeded by `sampler_seed`.
    ///
    /// `prompt` carries the real token ids when the workload has them;
    /// timing-only backends ignore it, token-producing backends require
    /// it.
    ///
    /// # Errors
    ///
    /// [`BackendError::SlotsExhausted`] when no slot is free;
    /// [`BackendError::MissingPrompt`] /
    /// [`BackendError::PromptLengthMismatch`] on bad prompts;
    /// [`BackendError::InjectedFault`] / [`BackendError::WorkerPoisoned`]
    /// from fault wrappers and crashed workers. On error no slot is held.
    fn prefill(
        &mut self,
        prompt_len: usize,
        prompt: Option<&[u32]>,
        sampler_seed: u64,
    ) -> Result<PrefillOutcome, BackendError>;

    /// One decode iteration: every slot in `slots` advances by one token,
    /// sharing every weight pass.
    ///
    /// # Errors
    ///
    /// [`BackendError::SlotNotResident`] if a slot is free;
    /// [`BackendError::InjectedFault`] / [`BackendError::WorkerPoisoned`]
    /// from fault wrappers and crashed workers. On `Err` no slot
    /// advanced, so retrying the identical call is exact.
    ///
    /// # Panics
    ///
    /// May panic if `slots` is empty or repeats a slot — those are
    /// scheduler bugs, not runtime conditions.
    fn decode_batch(&mut self, slots: &[usize]) -> Result<DecodeOutcome, BackendError>;

    /// Frees a completed request's slot.
    ///
    /// # Errors
    ///
    /// [`BackendError::SlotNotResident`] if the slot is already free.
    fn release(&mut self, slot: usize) -> Result<(), BackendError>;

    /// Whether [`InferenceBackend::prefill_open`] /
    /// [`InferenceBackend::prefill_step`] are available, letting the
    /// scheduler feed long prompts in chunks interleaved with resident
    /// decode steps.
    fn supports_chunked_prefill(&self) -> bool {
        false
    }

    /// Opens a chunked prefill: claims a slot and stages the prompt
    /// without feeding any token. Follow with
    /// [`InferenceBackend::prefill_step`] until `remaining` hits zero;
    /// the slot only becomes a decodable resident then. Chunk boundaries
    /// cannot perturb the output: the finished sequence is bit-identical
    /// to a single-pass [`InferenceBackend::prefill`].
    ///
    /// # Errors
    ///
    /// The same admission errors as [`InferenceBackend::prefill`]. On
    /// error no slot is held. The default implementation returns
    /// [`BackendError::Unsupported`]: gate on
    /// [`InferenceBackend::supports_chunked_prefill`].
    fn prefill_open(
        &mut self,
        prompt_len: usize,
        prompt: Option<&[u32]>,
        sampler_seed: u64,
    ) -> Result<usize, BackendError> {
        let _ = (prompt_len, prompt, sampler_seed);
        Err(BackendError::Unsupported {
            op: "chunked prefill",
        })
    }

    /// Feeds the next `max_tokens` (at most) staged prompt tokens into an
    /// open chunked prefill. The final chunk samples the request's first
    /// output token.
    ///
    /// # Errors
    ///
    /// [`BackendError::SlotNotResident`] if `slot` has no open prefill;
    /// [`BackendError::PagesExhausted`] when the KV pool cannot back the
    /// chunk (nothing was fed — shrink the chunk, free pages, or
    /// preempt); fault-wrapper and poisoned-worker errors as usual. The
    /// default implementation returns [`BackendError::Unsupported`]: gate
    /// on [`InferenceBackend::supports_chunked_prefill`].
    ///
    /// # Panics
    ///
    /// Implementations may panic if `max_tokens` is zero.
    fn prefill_step(
        &mut self,
        slot: usize,
        max_tokens: usize,
    ) -> Result<PrefillProgress, BackendError> {
        let _ = (slot, max_tokens);
        Err(BackendError::Unsupported {
            op: "chunked prefill",
        })
    }

    /// Whether [`InferenceBackend::preempt`] /
    /// [`InferenceBackend::resume`] are available, letting the scheduler
    /// evict a resident under page pressure and re-admit it later.
    fn supports_preemption(&self) -> bool {
        false
    }

    /// KV pages that preempting `slot` would actually return to the
    /// free pool: pages the sequence holds *exclusively*. Pages shared
    /// with the prefix cache or other sequences survive the preemption,
    /// so victim selection should weigh this — not context length —
    /// when the goal is relieving page pressure. Timing-only and
    /// non-paged backends report 0.
    fn reclaimable_pages(&self, slot: usize) -> usize {
        let _ = slot;
        0
    }

    /// Evicts a resident sequence: frees its slot (and, on paged
    /// backends, every page it held) and returns the state needed to
    /// resume it. The scheduler keeps the request's produced tokens; the
    /// backend keeps nothing.
    ///
    /// # Errors
    ///
    /// [`BackendError::SlotNotResident`] if the slot is free or mid
    /// chunked-prefill (abandon those by [`InferenceBackend::release`]
    /// and re-admit from scratch). The default implementation returns
    /// [`BackendError::Unsupported`]: gate on
    /// [`InferenceBackend::supports_preemption`].
    fn preempt(&mut self, slot: usize) -> Result<PreemptedSeq, BackendError> {
        let _ = slot;
        Err(BackendError::Unsupported { op: "preemption" })
    }

    /// Re-admits a preempted sequence: claims a slot, rebuilds its KV
    /// context bit-identically (token-producing backends re-prefill
    /// `context`, which must hold exactly `seq.context_len` tokens:
    /// prompt followed by every produced token except the last), and
    /// restores its sampler. No new token is sampled — the outcome's
    /// `first_token` is `None`; decoding continues from the preempted
    /// `last_token`. `seq` is borrowed so a failed resume leaves the
    /// caller holding it for the next attempt.
    ///
    /// # Errors
    ///
    /// [`BackendError::SlotsExhausted`] / [`BackendError::PagesExhausted`]
    /// when the sequence does not fit right now;
    /// [`BackendError::MissingPrompt`] /
    /// [`BackendError::PromptLengthMismatch`] on bad contexts. On error
    /// no slot is held. The default implementation returns
    /// [`BackendError::Unsupported`]: gate on
    /// [`InferenceBackend::supports_preemption`].
    fn resume(
        &mut self,
        seq: &PreemptedSeq,
        context: Option<&[u32]>,
    ) -> Result<PrefillOutcome, BackendError> {
        let _ = (seq, context);
        Err(BackendError::Unsupported { op: "preemption" })
    }
}

// ------------------------------------------------------------ SimBackend

/// The timing substrate: scheduling against the cycle-accurate
/// [`LoopLynx`] engine. Tracks one context counter per resident slot and
/// charges [`LoopLynx::simulate_prefill`] /
/// [`LoopLynx::simulate_decode_batch`] time; no tokens are produced.
#[derive(Debug)]
pub struct SimBackend<'a> {
    engine: &'a LoopLynx,
    /// Per-slot KV context (prompt + produced-but-one tokens); `None`
    /// marks a free slot. Grows on demand up to [`SimBackend::capacity`].
    contexts: Vec<Option<usize>>,
}

impl<'a> SimBackend<'a> {
    /// Wraps a timing engine.
    pub fn new(engine: &'a LoopLynx) -> Self {
        SimBackend {
            engine,
            contexts: Vec::new(),
        }
    }

    /// The underlying timing engine.
    pub fn engine(&self) -> &LoopLynx {
        self.engine
    }

    /// Claims the lowest free context slot, growing the table on demand
    /// up to [`SimBackend::capacity`].
    fn claim_slot(&mut self) -> Result<usize, BackendError> {
        match self.contexts.iter().position(Option::is_none) {
            Some(free) => Ok(free),
            None => {
                if self.contexts.len() >= self.capacity() {
                    return Err(BackendError::SlotsExhausted {
                        capacity: self.capacity(),
                    });
                }
                self.contexts.push(None);
                Ok(self.contexts.len() - 1)
            }
        }
    }
}

impl InferenceBackend for SimBackend<'_> {
    fn name(&self) -> &'static str {
        "sim"
    }

    fn max_seq(&self) -> usize {
        self.engine.model().max_seq
    }

    fn capacity(&self) -> usize {
        // One decode iteration shares weight passes across all residents,
        // bounded by the on-chip activation buffer.
        crate::config::MAX_WEIGHT_SHARING_BATCH
    }

    fn prefill(
        &mut self,
        prompt_len: usize,
        _prompt: Option<&[u32]>,
        _sampler_seed: u64,
    ) -> Result<PrefillOutcome, BackendError> {
        let slot = self.claim_slot()?;
        self.contexts[slot] = Some(prompt_len);
        Ok(PrefillOutcome {
            slot,
            elapsed_ms: self
                .engine
                .simulate_prefill(prompt_len)
                .to_millis(self.engine.arch()),
            first_token: None,
        })
    }

    fn decode_batch(&mut self, slots: &[usize]) -> Result<DecodeOutcome, BackendError> {
        // Context of each pass is the post-append cache length, exactly as
        // the pre-trait scheduler computed it. Validate every slot before
        // mutating any, so an `Err` leaves all contexts untouched.
        let mut contexts = Vec::with_capacity(slots.len());
        for &s in slots {
            match self.contexts.get(s).copied().flatten() {
                Some(ctx) => contexts.push(ctx + 1),
                None => return Err(BackendError::SlotNotResident { slot: s }),
            }
        }
        let elapsed_ms = self
            .engine
            .simulate_decode_batch(&contexts)
            .to_millis(self.engine.arch());
        for &s in slots {
            // Validated above; a vacant slot here is unreachable.
            if let Some(ctx) = self.contexts[s].as_mut() {
                *ctx += 1;
            }
        }
        Ok(DecodeOutcome {
            elapsed_ms,
            tokens: None,
        })
    }

    fn release(&mut self, slot: usize) -> Result<(), BackendError> {
        match self.contexts.get_mut(slot) {
            Some(ctx @ Some(_)) => {
                *ctx = None;
                Ok(())
            }
            _ => Err(BackendError::SlotNotResident { slot }),
        }
    }

    fn supports_preemption(&self) -> bool {
        true
    }

    fn preempt(&mut self, slot: usize) -> Result<PreemptedSeq, BackendError> {
        match self.contexts.get_mut(slot).and_then(Option::take) {
            Some(context_len) => Ok(PreemptedSeq {
                context_len,
                last_token: None,
                sampler: None,
            }),
            None => Err(BackendError::SlotNotResident { slot }),
        }
    }

    fn resume(
        &mut self,
        seq: &PreemptedSeq,
        _context: Option<&[u32]>,
    ) -> Result<PrefillOutcome, BackendError> {
        // Resume re-runs the whole context as one prefill — the timing
        // model charges exactly what the functional substrate pays to
        // rebuild the KV cache.
        let slot = self.claim_slot()?;
        self.contexts[slot] = Some(seq.context_len);
        Ok(PrefillOutcome {
            slot,
            elapsed_ms: self
                .engine
                .simulate_prefill(seq.context_len)
                .to_millis(self.engine.arch()),
            first_token: None,
        })
    }
}

// ----------------------------------------------------- FunctionalBackend

/// How the functional backend samples each request's tokens. Every
/// request gets its *own* sampler (seeded by the scheduler, normally with
/// the request id), so batching order cannot perturb any request's output
/// stream.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum SamplerSpec {
    /// Deterministic arg-max decoding.
    Greedy,
    /// Top-k sampling at a temperature, seeded per request.
    TopK {
        /// Candidates kept.
        k: usize,
        /// Softmax temperature (> 0).
        temperature: f32,
    },
}

impl SamplerSpec {
    fn build(self, seed: u64) -> Sampler {
        match self {
            SamplerSpec::Greedy => Sampler::greedy(),
            SamplerSpec::TopK { k, temperature } => Sampler::top_k(k, temperature, seed),
        }
    }
}

/// One resident sequence's generation state.
#[derive(Debug)]
struct Resident {
    sampler: Sampler,
    /// Most recently sampled token — fed to the model by the next decode
    /// pass (the pass that makes it part of the KV history).
    last_token: u32,
}

/// A chunked prefill in flight: the slot is claimed and `fed` prompt
/// tokens are in its KV cache, but no resident exists yet (the first
/// output token is sampled when the final chunk lands).
#[derive(Debug)]
struct PendingPrefill {
    prompt: Vec<u32>,
    fed: usize,
    sampler_seed: u64,
}

/// The functional substrate: real W8A8 inference on a [`DistributedGpt2`]
/// built with [`DistributedGpt2::with_slots`]. Prefill runs the prompt
/// into the request's slot and samples its first output token; each
/// decode iteration feeds every resident's last token through the batched
/// pipeline (one weight stream per layer per step, shared by all) and
/// samples the next. Reported times are measured host wall-clock.
#[derive(Debug)]
pub struct FunctionalBackend {
    engine: DistributedGpt2,
    spec: SamplerSpec,
    residents: Vec<Option<Resident>>,
    /// Chunked prefills in flight, by slot (disjoint from `residents`).
    pending: Vec<Option<PendingPrefill>>,
    /// Set when a worker panic was caught mid-operation: the engine's
    /// KV/slot state may be partially mutated, so every subsequent
    /// operation fails rather than serving corrupt context.
    poisoned: Option<String>,
}

/// Renders a caught panic payload for [`BackendError::WorkerPoisoned`].
fn panic_detail(payload: Box<dyn std::any::Any + Send>) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

impl FunctionalBackend {
    /// Wraps a slot-capable engine. All slots must be free (build the
    /// engine with [`DistributedGpt2::with_slots`]).
    ///
    /// # Panics
    ///
    /// Panics if any slot is already resident.
    pub fn new(engine: DistributedGpt2, spec: SamplerSpec) -> Self {
        assert_eq!(
            engine.free_slots(),
            engine.slots(),
            "functional backend needs an engine with all slots free \
             (DistributedGpt2::with_slots)"
        );
        let slots = engine.slots();
        FunctionalBackend {
            engine,
            spec,
            residents: (0..slots).map(|_| None).collect(),
            pending: (0..slots).map(|_| None).collect(),
            poisoned: None,
        }
    }

    /// The underlying functional engine.
    pub fn engine(&self) -> &DistributedGpt2 {
        &self.engine
    }

    /// Whether a caught worker panic has poisoned this backend.
    pub fn is_poisoned(&self) -> bool {
        self.poisoned.is_some()
    }

    /// Fails fast once the backend is poisoned.
    fn check_poisoned(&self) -> Result<(), BackendError> {
        match &self.poisoned {
            Some(detail) => Err(BackendError::WorkerPoisoned {
                detail: detail.clone(),
            }),
            None => Ok(()),
        }
    }

    /// Marks the backend poisoned and returns the matching error.
    fn poison(&mut self, payload: Box<dyn std::any::Any + Send>) -> BackendError {
        let detail = panic_detail(payload);
        self.poisoned = Some(detail.clone());
        BackendError::WorkerPoisoned { detail }
    }

    /// Poisons the backend over a broken engine contract (no panic was
    /// thrown, but the engine's state can no longer be trusted).
    fn poison_contract(&mut self, detail: &str) -> BackendError {
        self.poisoned = Some(detail.to_string());
        BackendError::WorkerPoisoned {
            detail: detail.to_string(),
        }
    }

    /// Surfaces page pressure as a typed error *before* the engine runs.
    /// The engine itself treats pool exhaustion as a caller bug (it
    /// panics, which would poison this backend), so every KV-growing
    /// operation pre-checks here and returns with no state changed.
    ///
    /// The budget is [`DistributedGpt2::available_pages`]: free pages
    /// plus cold prefix-cache pages, which the engine reclaims (LRU)
    /// inside the grant — a full-but-idle cache never bounces work.
    fn check_pages(&self, needed: usize) -> Result<(), BackendError> {
        let free = self.engine.available_pages();
        if needed > free {
            return Err(BackendError::PagesExhausted { needed, free });
        }
        Ok(())
    }
}

impl InferenceBackend for FunctionalBackend {
    fn name(&self) -> &'static str {
        "functional"
    }

    fn max_seq(&self) -> usize {
        self.engine.slot_capacity()
    }

    fn capacity(&self) -> usize {
        self.engine.slots()
    }

    fn prefill(
        &mut self,
        prompt_len: usize,
        prompt: Option<&[u32]>,
        sampler_seed: u64,
    ) -> Result<PrefillOutcome, BackendError> {
        self.check_poisoned()?;
        let prompt = prompt.ok_or(BackendError::MissingPrompt)?;
        if prompt.len() != prompt_len {
            return Err(BackendError::PromptLengthMismatch {
                declared: prompt_len,
                got: prompt.len(),
            });
        }
        // Slot pressure outranks page pressure: a full house is held for
        // a release either way, and `SlotsExhausted` is what pre-paged
        // schedulers already understand.
        if self.engine.free_slots() == 0 {
            return Err(BackendError::SlotsExhausted {
                capacity: self.engine.slots(),
            });
        }
        // lint: allow(determinism) — measured elapsed_ms only; tokens unaffected
        let start = Instant::now();
        let slot = self
            .engine
            .acquire_slot()
            .ok_or(BackendError::SlotsExhausted {
                capacity: self.engine.slots(),
            })?;
        // Map any cached prefix into the fresh slot (a no-op while the
        // cache is off); only the novel suffix needs pages and compute.
        // Attaching allocates nothing, so an insufficient pool unwinds
        // cleanly: release the slot and report typed pressure.
        let hit = self.engine.prefix_attach(slot, prompt);
        let suffix = &prompt[hit..];
        let needed = self.engine.pages_needed(slot, suffix.len());
        if let Err(e) = self.check_pages(needed) {
            self.engine.release_slot(slot);
            return Err(e);
        }
        // A panic below (worker thread or host path) leaves the slot's KV
        // partially written; the backend poisons itself rather than serve
        // from a cache it cannot trust.
        let logits = match catch_unwind(AssertUnwindSafe(|| self.engine.prefill_slot(slot, suffix)))
        {
            Ok(logits) => logits,
            Err(payload) => return Err(self.poison(payload)),
        };
        let mut sampler = self.spec.build(sampler_seed);
        let first = sampler.sample(&logits);
        self.residents[slot] = Some(Resident {
            sampler,
            last_token: first,
        });
        Ok(PrefillOutcome {
            slot,
            elapsed_ms: start.elapsed().as_secs_f64() * 1e3,
            first_token: Some(first),
        })
    }

    fn decode_batch(&mut self, slots: &[usize]) -> Result<DecodeOutcome, BackendError> {
        self.check_poisoned()?;
        let mut entries = Vec::with_capacity(slots.len());
        for &s in slots {
            match self.residents.get(s).and_then(Option::as_ref) {
                Some(r) => entries.push((s, r.last_token)),
                None => return Err(BackendError::SlotNotResident { slot: s }),
            }
        }
        self.check_pages(slots.iter().map(|&s| self.engine.pages_needed(s, 1)).sum())?;
        // lint: allow(determinism) — measured elapsed_ms only; tokens unaffected
        let start = Instant::now();
        let logits =
            match catch_unwind(AssertUnwindSafe(|| self.engine.decode_step_batch(&entries))) {
                Ok(logits) => logits,
                Err(payload) => return Err(self.poison(payload)),
            };
        let mut tokens = Vec::with_capacity(slots.len());
        for (&s, row) in slots.iter().zip(&logits) {
            // Validated above; a vacant resident here is unreachable.
            let Some(resident) = self.residents[s].as_mut() else {
                return Err(BackendError::SlotNotResident { slot: s });
            };
            let next = resident.sampler.sample(row);
            resident.last_token = next;
            tokens.push(next);
        }
        // Sampling is part of the serving pipeline's critical path, so it
        // bills to the clock here exactly as prefill bills its first-token
        // sample.
        Ok(DecodeOutcome {
            elapsed_ms: start.elapsed().as_secs_f64() * 1e3,
            tokens: Some(tokens),
        })
    }

    fn release(&mut self, slot: usize) -> Result<(), BackendError> {
        self.check_poisoned()?;
        let resident = self
            .residents
            .get_mut(slot)
            .and_then(Option::take)
            .is_some();
        let pending = self.pending.get_mut(slot).and_then(Option::take).is_some();
        if !resident && !pending {
            return Err(BackendError::SlotNotResident { slot });
        }
        self.engine.release_slot(slot);
        Ok(())
    }

    fn supports_chunked_prefill(&self) -> bool {
        true
    }

    fn prefill_open(
        &mut self,
        prompt_len: usize,
        prompt: Option<&[u32]>,
        sampler_seed: u64,
    ) -> Result<usize, BackendError> {
        self.check_poisoned()?;
        let prompt = prompt.ok_or(BackendError::MissingPrompt)?;
        if prompt.len() != prompt_len {
            return Err(BackendError::PromptLengthMismatch {
                declared: prompt_len,
                got: prompt.len(),
            });
        }
        let slot = self
            .engine
            .acquire_slot()
            .ok_or(BackendError::SlotsExhausted {
                capacity: self.engine.slots(),
            })?;
        // Map any cached prefix now (free — no pages, no compute): the
        // mapped tokens count as already fed, so the chunk budget is
        // spent only on the novel suffix. Cache-aware admission falls
        // out for free: a strong hit turns a long prompt into a short
        // one from the scheduler's point of view.
        let hit = self.engine.prefix_attach(slot, prompt);
        // No pages claimed yet: each prefill_step grants only what its
        // chunk needs, which is what lets long prompts trickle in under
        // page pressure.
        self.pending[slot] = Some(PendingPrefill {
            prompt: prompt.to_vec(),
            fed: hit,
            sampler_seed,
        });
        Ok(slot)
    }

    fn prefill_step(
        &mut self,
        slot: usize,
        max_tokens: usize,
    ) -> Result<PrefillProgress, BackendError> {
        self.check_poisoned()?;
        assert!(
            max_tokens > 0,
            "a prefill chunk must feed at least one token"
        );
        let (chunk, is_last, seed) = match self.pending.get(slot).and_then(Option::as_ref) {
            Some(p) => {
                let left = p.prompt.len() - p.fed;
                let take = left.min(max_tokens);
                (
                    p.prompt[p.fed..p.fed + take].to_vec(),
                    take == left,
                    p.sampler_seed,
                )
            }
            None => return Err(BackendError::SlotNotResident { slot }),
        };
        self.check_pages(self.engine.pages_needed(slot, chunk.len()))?;
        // lint: allow(determinism) — measured elapsed_ms only; tokens unaffected
        let start = Instant::now();
        // Non-final chunks skip the LM head entirely; only the final one
        // produces the logits the first token is sampled from.
        let logits = match catch_unwind(AssertUnwindSafe(|| {
            self.engine.prefill_slot_chunk(slot, &chunk, is_last)
        })) {
            Ok(logits) => logits,
            Err(payload) => return Err(self.poison(payload)),
        };
        // Checked resident above; a vacant pending here is unreachable.
        let Some(p) = self.pending[slot].as_mut() else {
            return Err(BackendError::SlotNotResident { slot });
        };
        p.fed += chunk.len();
        let remaining = p.prompt.len() - p.fed;
        let first_token = match (is_last, logits) {
            (true, Some(logits)) => {
                let mut sampler = self.spec.build(seed);
                let first = sampler.sample(&logits);
                self.pending[slot] = None;
                self.residents[slot] = Some(Resident {
                    sampler,
                    last_token: first,
                });
                Some(first)
            }
            // The engine contract says the final chunk carries logits; a
            // violation means its state cannot be trusted — poison.
            (true, None) => {
                return Err(self.poison_contract("final prefill chunk produced no logits"))
            }
            (false, _) => None,
        };
        Ok(PrefillProgress {
            elapsed_ms: start.elapsed().as_secs_f64() * 1e3,
            remaining,
            first_token,
        })
    }

    fn supports_preemption(&self) -> bool {
        true
    }

    fn reclaimable_pages(&self, slot: usize) -> usize {
        if self.residents.get(slot).and_then(Option::as_ref).is_none() {
            return 0;
        }
        self.engine.unshared_pages(slot)
    }

    fn preempt(&mut self, slot: usize) -> Result<PreemptedSeq, BackendError> {
        self.check_poisoned()?;
        let resident = match self.residents.get_mut(slot).and_then(Option::take) {
            Some(r) => r,
            None => return Err(BackendError::SlotNotResident { slot }),
        };
        let context_len = self.engine.slot_pos(slot);
        // Releasing the slot returns its exclusive pages to the pool
        // (shared prefix pages survive their other holders) and, with
        // the cache on, indexes the context for a cheap resume.
        self.engine.release_slot(slot);
        Ok(PreemptedSeq {
            context_len,
            last_token: Some(resident.last_token),
            sampler: Some(resident.sampler),
        })
    }

    fn resume(
        &mut self,
        seq: &PreemptedSeq,
        context: Option<&[u32]>,
    ) -> Result<PrefillOutcome, BackendError> {
        self.check_poisoned()?;
        let context = context.ok_or(BackendError::MissingPrompt)?;
        if context.len() != seq.context_len {
            return Err(BackendError::PromptLengthMismatch {
                declared: seq.context_len,
                got: context.len(),
            });
        }
        // A timing-only PreemptedSeq (from SimBackend) carries no sampler
        // or last token to restore — it cannot resume on the functional
        // path. Reject before claiming any slot or page.
        let (Some(sampler), Some(last_token)) = (seq.sampler.clone(), seq.last_token) else {
            return Err(BackendError::Unsupported {
                op: "resuming a timing-only preempted sequence",
            });
        };
        if self.engine.free_slots() == 0 {
            return Err(BackendError::SlotsExhausted {
                capacity: self.engine.slots(),
            });
        }
        // lint: allow(determinism) — measured elapsed_ms only; tokens unaffected
        let start = Instant::now();
        let slot = self
            .engine
            .acquire_slot()
            .ok_or(BackendError::SlotsExhausted {
                capacity: self.engine.slots(),
            })?;
        // The preemption registered the context's pages with the prefix
        // cache, so a prompt resume often maps most of its KV straight
        // back instead of re-prefilling it (a no-op while the cache is
        // off). Attach allocates nothing: on page shortfall, unwind by
        // releasing the slot and report typed pressure.
        let hit = self.engine.prefix_attach(slot, context);
        let rest = &context[hit..];
        let needed = self.engine.pages_needed(slot, rest.len());
        if let Err(e) = self.check_pages(needed) {
            self.engine.release_slot(slot);
            return Err(e);
        }
        // Re-prefill rebuilds the KV cache bit-identically (int8 GEMM rows
        // accumulate independently, so one batched pass over the context
        // equals the original prefill + decode history; shared pages hold
        // the very bytes the original wrote) and samples nothing: the
        // sequence's sampler resumes exactly where it froze.
        if let Err(payload) = catch_unwind(AssertUnwindSafe(|| {
            self.engine.prefill_slot_chunk(slot, rest, false)
        })) {
            return Err(self.poison(payload));
        }
        self.residents[slot] = Some(Resident {
            sampler,
            last_token,
        });
        Ok(PrefillOutcome {
            slot,
            elapsed_ms: start.elapsed().as_secs_f64() * 1e3,
            first_token: None,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::ArchConfig;
    use crate::router::RingMode;
    use looplynx_model::config::ModelConfig;
    use looplynx_model::generate::Autoregressive;
    use looplynx_model::gpt2::Gpt2Model;

    #[test]
    fn sim_backend_charges_engine_time_exactly() {
        let engine = LoopLynx::new(
            ModelConfig::gpt2_medium(),
            ArchConfig::builder().nodes(2).build().unwrap(),
        )
        .unwrap();
        let mut backend = SimBackend::new(&engine);
        let p = backend.prefill(16, None, 0).unwrap();
        assert_eq!(
            p.elapsed_ms,
            engine.simulate_prefill(16).to_millis(engine.arch())
        );
        assert_eq!(p.first_token, None);
        let d = backend.decode_batch(&[p.slot]).unwrap();
        assert_eq!(
            d.elapsed_ms,
            engine.simulate_decode_batch(&[17]).to_millis(engine.arch())
        );
        // context advanced: next pass is one longer
        let d2 = backend.decode_batch(&[p.slot]).unwrap();
        assert_eq!(
            d2.elapsed_ms,
            engine.simulate_decode_batch(&[18]).to_millis(engine.arch())
        );
        backend.release(p.slot).unwrap();
        // slot is recyclable
        let p2 = backend.prefill(8, None, 1).unwrap();
        assert_eq!(p2.slot, p.slot);
    }

    #[test]
    fn sim_backend_over_admission_is_a_typed_error() {
        let engine = LoopLynx::new(
            ModelConfig::gpt2_medium(),
            ArchConfig::builder().nodes(1).build().unwrap(),
        )
        .unwrap();
        let mut backend = SimBackend::new(&engine);
        let capacity = backend.capacity();
        for _ in 0..capacity {
            backend.prefill(4, None, 0).unwrap();
        }
        assert_eq!(
            backend.prefill(4, None, 0).unwrap_err(),
            BackendError::SlotsExhausted { capacity }
        );
        // Exhaustion clears on release — the request was held, not lost.
        backend.release(0).unwrap();
        assert_eq!(backend.prefill(4, None, 0).unwrap().slot, 0);
    }

    #[test]
    fn sim_backend_free_slot_operations_are_typed_errors() {
        let engine = LoopLynx::new(
            ModelConfig::gpt2_medium(),
            ArchConfig::builder().nodes(1).build().unwrap(),
        )
        .unwrap();
        let mut backend = SimBackend::new(&engine);
        let p = backend.prefill(4, None, 0).unwrap();
        assert_eq!(
            backend.decode_batch(&[p.slot + 1]).unwrap_err(),
            BackendError::SlotNotResident { slot: p.slot + 1 }
        );
        backend.release(p.slot).unwrap();
        assert_eq!(
            backend.release(p.slot).unwrap_err(),
            BackendError::SlotNotResident { slot: p.slot }
        );
    }

    #[test]
    fn functional_backend_matches_lone_generation() {
        let cfg = ModelConfig::tiny();
        let model = Gpt2Model::synthetic(&cfg, 1234);
        let engine = DistributedGpt2::with_slots(&model, 2, RingMode::Exact, 3, 32).unwrap();
        let mut backend = FunctionalBackend::new(engine, SamplerSpec::Greedy);

        let prompts = [vec![1u32, 2, 3], vec![7u32, 6], vec![9u32, 9, 1, 4]];
        let outs: Vec<PrefillOutcome> = prompts
            .iter()
            .enumerate()
            .map(|(i, p)| backend.prefill(p.len(), Some(p), i as u64).unwrap())
            .collect();
        let mut produced: Vec<Vec<u32>> =
            outs.iter().map(|o| vec![o.first_token.unwrap()]).collect();
        let slots: Vec<usize> = outs.iter().map(|o| o.slot).collect();
        for _ in 0..4 {
            let d = backend.decode_batch(&slots).unwrap();
            for (seq, &tok) in produced.iter_mut().zip(d.tokens.as_ref().unwrap()) {
                seq.push(tok);
            }
        }
        for (i, prompt) in prompts.iter().enumerate() {
            let mut lone = model.clone();
            let expected = lone.generate(prompt, 5, &mut Sampler::greedy());
            assert_eq!(produced[i], expected, "sequence {i} diverged");
        }
    }

    #[test]
    fn functional_backend_requires_prompts() {
        let model = Gpt2Model::synthetic(&ModelConfig::tiny(), 9);
        let engine = DistributedGpt2::with_slots(&model, 1, RingMode::Exact, 1, 8).unwrap();
        let mut backend = FunctionalBackend::new(engine, SamplerSpec::Greedy);
        assert_eq!(
            backend.prefill(4, None, 0).unwrap_err(),
            BackendError::MissingPrompt
        );
        assert_eq!(
            backend.prefill(4, Some(&[1, 2]), 0).unwrap_err(),
            BackendError::PromptLengthMismatch {
                declared: 4,
                got: 2
            }
        );
    }

    #[test]
    fn functional_backend_slot_exhaustion_recovers_on_release() {
        // Regression for the slot-exhaustion satellite: over-admitting past
        // slot capacity must surface a typed error, hold no slot, and
        // succeed again once a resident releases.
        let model = Gpt2Model::synthetic(&ModelConfig::tiny(), 11);
        let engine = DistributedGpt2::with_slots(&model, 1, RingMode::Exact, 2, 16).unwrap();
        let mut backend = FunctionalBackend::new(engine, SamplerSpec::Greedy);
        let a = backend.prefill(2, Some(&[1, 2]), 0).unwrap();
        let b = backend.prefill(2, Some(&[3, 4]), 1).unwrap();
        for _ in 0..3 {
            assert_eq!(
                backend.prefill(2, Some(&[5, 6]), 2).unwrap_err(),
                BackendError::SlotsExhausted { capacity: 2 }
            );
        }
        // Residents are unperturbed by the failed admissions.
        let d = backend.decode_batch(&[a.slot, b.slot]).unwrap();
        assert_eq!(d.tokens.as_ref().unwrap().len(), 2);
        backend.release(a.slot).unwrap();
        let c = backend.prefill(2, Some(&[5, 6]), 2).unwrap();
        assert_eq!(c.slot, a.slot, "lowest free slot recycled");
    }

    #[test]
    fn sim_backend_preempt_resume_recharges_prefill_time() {
        let engine = LoopLynx::new(
            ModelConfig::gpt2_medium(),
            ArchConfig::builder().nodes(1).build().unwrap(),
        )
        .unwrap();
        let mut backend = SimBackend::new(&engine);
        assert!(backend.supports_preemption());
        let p = backend.prefill(10, None, 0).unwrap();
        backend.decode_batch(&[p.slot]).unwrap();
        backend.decode_batch(&[p.slot]).unwrap();
        let seq = backend.preempt(p.slot).unwrap();
        assert_eq!(seq.context_len, 12);
        assert_eq!(
            backend.decode_batch(&[p.slot]).unwrap_err(),
            BackendError::SlotNotResident { slot: p.slot }
        );
        let r = backend.resume(&seq, None).unwrap();
        assert_eq!(r.first_token, None);
        assert_eq!(
            r.elapsed_ms,
            engine.simulate_prefill(12).to_millis(engine.arch()),
            "resume bills a full context re-prefill"
        );
        // The resumed context keeps growing from where it stopped.
        let d = backend.decode_batch(&[r.slot]).unwrap();
        assert_eq!(
            d.elapsed_ms,
            engine.simulate_decode_batch(&[13]).to_millis(engine.arch())
        );
    }

    #[test]
    fn functional_chunked_prefill_matches_single_pass() {
        // Any chunking of the prompt must give the same first token and
        // the same downstream stream as one-shot prefill.
        let cfg = ModelConfig::tiny();
        let model = Gpt2Model::synthetic(&cfg, 321);
        let prompt: Vec<u32> = vec![5, 1, 9, 2, 8, 3, 7];
        let stream_for = |chunk: Option<usize>| {
            let engine = DistributedGpt2::with_slots(&model, 1, RingMode::Exact, 2, 32).unwrap();
            let mut b = FunctionalBackend::new(
                engine,
                SamplerSpec::TopK {
                    k: 4,
                    temperature: 0.9,
                },
            );
            let (slot, first) = match chunk {
                None => {
                    let p = b.prefill(prompt.len(), Some(&prompt), 7).unwrap();
                    (p.slot, p.first_token.unwrap())
                }
                Some(step) => {
                    assert!(b.supports_chunked_prefill());
                    let slot = b.prefill_open(prompt.len(), Some(&prompt), 7).unwrap();
                    let first = loop {
                        let p = b.prefill_step(slot, step).unwrap();
                        if p.remaining == 0 {
                            break p.first_token;
                        }
                        assert_eq!(p.first_token, None, "non-final chunk sampled");
                    };
                    (slot, first.unwrap())
                }
            };
            let mut out = vec![first];
            for _ in 0..5 {
                out.push(b.decode_batch(&[slot]).unwrap().tokens.unwrap()[0]);
            }
            out
        };
        let single = stream_for(None);
        for step in [1, 2, 3, prompt.len()] {
            assert_eq!(stream_for(Some(step)), single, "chunk size {step} diverged");
        }
    }

    #[test]
    fn functional_preempt_resume_is_bit_exact() {
        let cfg = ModelConfig::tiny();
        let model = Gpt2Model::synthetic(&cfg, 99);
        let prompt = [3u32, 1, 4, 1, 5];
        let spec = SamplerSpec::TopK {
            k: 4,
            temperature: 0.8,
        };

        let engine = DistributedGpt2::with_slots(&model, 1, RingMode::Exact, 2, 32).unwrap();
        let mut clean = FunctionalBackend::new(engine, spec);
        let p = clean.prefill(prompt.len(), Some(&prompt), 11).unwrap();
        let mut want = vec![p.first_token.unwrap()];
        for _ in 0..6 {
            want.push(clean.decode_batch(&[p.slot]).unwrap().tokens.unwrap()[0]);
        }

        let engine = DistributedGpt2::with_slots(&model, 1, RingMode::Exact, 2, 32).unwrap();
        let mut b = FunctionalBackend::new(engine, spec);
        assert!(b.supports_preemption());
        let p = b.prefill(prompt.len(), Some(&prompt), 11).unwrap();
        let mut got = vec![p.first_token.unwrap()];
        for _ in 0..3 {
            got.push(b.decode_batch(&[p.slot]).unwrap().tokens.unwrap()[0]);
        }
        let seq = b.preempt(p.slot).unwrap();
        assert_eq!(seq.last_token, Some(*got.last().unwrap()));
        // Context = prompt + produced-but-last: the last token has been
        // sampled but never fed, so it is not in the KV history yet.
        let mut context = prompt.to_vec();
        context.extend_from_slice(&got[..got.len() - 1]);
        assert_eq!(context.len(), seq.context_len);
        let r = b.resume(&seq, Some(&context)).unwrap();
        assert_eq!(r.first_token, None, "resume must not sample");
        for _ in 0..3 {
            got.push(b.decode_batch(&[r.slot]).unwrap().tokens.unwrap()[0]);
        }
        assert_eq!(
            got, want,
            "preempted stream diverged from uninterrupted run"
        );
    }

    #[test]
    fn functional_page_exhaustion_is_typed_and_preemption_clears_it() {
        // Oversubscribed paged engine: 4 slots of up to 16 tokens, but a
        // pool of only 4 pages × 4 tokens = 16 tokens of real storage.
        let cfg = ModelConfig::tiny();
        let model = Gpt2Model::synthetic(&cfg, 55);
        let engine =
            DistributedGpt2::with_paged_slots(&model, 1, RingMode::Exact, 4, 16, 4, 4).unwrap();
        let mut b = FunctionalBackend::new(engine, SamplerSpec::Greedy);
        let p0 = b.prefill(4, Some(&[1, 2, 3, 4]), 0).unwrap();
        let p1 = b.prefill(4, Some(&[5, 6, 7, 8]), 1).unwrap();
        let p2 = b.prefill(4, Some(&[9, 1, 2, 3]), 2).unwrap();
        // 3 pages held; a 5-token admission needs 2 of the 1 remaining.
        assert_eq!(
            b.prefill(5, Some(&[1, 2, 3, 4, 5]), 3).unwrap_err(),
            BackendError::PagesExhausted { needed: 2, free: 1 }
        );
        assert!(!BackendError::PagesExhausted { needed: 2, free: 1 }.is_transient());
        // Decoding all three residents past their page boundaries needs 3
        // fresh pages at once with only 1 free: typed error, no mutation.
        let err = b.decode_batch(&[p0.slot, p1.slot, p2.slot]).unwrap_err();
        assert_eq!(err, BackendError::PagesExhausted { needed: 3, free: 1 });
        // Preempting one resident frees its page; the other two decode.
        let seq = b.preempt(p2.slot).unwrap();
        let d = b.decode_batch(&[p0.slot, p1.slot]).unwrap();
        assert_eq!(d.tokens.unwrap().len(), 2);
        // And the preempted sequence comes back once pressure clears.
        b.release(p0.slot).unwrap();
        b.release(p1.slot).unwrap();
        let r = b.resume(&seq, Some(&[9, 1, 2, 3])).unwrap();
        let d = b.decode_batch(&[r.slot]).unwrap();
        assert_eq!(d.tokens.unwrap().len(), 1);
    }

    #[test]
    fn functional_release_abandons_open_chunked_prefill() {
        let model = Gpt2Model::synthetic(&ModelConfig::tiny(), 42);
        let engine = DistributedGpt2::with_slots(&model, 1, RingMode::Exact, 1, 16).unwrap();
        let mut b = FunctionalBackend::new(engine, SamplerSpec::Greedy);
        let slot = b.prefill_open(4, Some(&[1, 2, 3, 4]), 0).unwrap();
        b.prefill_step(slot, 2).unwrap();
        // Mid-prefill slots are not decodable and not preemptible.
        assert_eq!(
            b.decode_batch(&[slot]).unwrap_err(),
            BackendError::SlotNotResident { slot }
        );
        assert_eq!(
            b.preempt(slot).unwrap_err(),
            BackendError::SlotNotResident { slot }
        );
        b.release(slot).unwrap();
        // The slot (and its pages) came back whole: a fresh admission
        // starts from scratch and matches a clean backend.
        let p = b.prefill(2, Some(&[7, 7]), 1).unwrap();
        assert_eq!(p.slot, slot);
    }

    #[test]
    fn functional_backend_catches_panics_and_poisons() {
        // A prompt longer than the slot capacity panics deep inside the
        // engine's KV arena; the backend must catch it, report a typed
        // error, and refuse further service instead of crashing the
        // process or serving from a half-written cache.
        let model = Gpt2Model::synthetic(&ModelConfig::tiny(), 13);
        let engine = DistributedGpt2::with_slots(&model, 1, RingMode::Exact, 1, 4).unwrap();
        let mut backend = FunctionalBackend::new(engine, SamplerSpec::Greedy);
        let long: Vec<u32> = (0..9).collect();
        let err = backend.prefill(long.len(), Some(&long), 0).unwrap_err();
        assert!(
            matches!(err, BackendError::WorkerPoisoned { .. }),
            "got {err:?}"
        );
        assert!(backend.is_poisoned());
        assert!(matches!(
            backend.prefill(2, Some(&[1, 2]), 1).unwrap_err(),
            BackendError::WorkerPoisoned { .. }
        ));
    }
}
