//! No-op stand-in for the real `serde_derive` proc-macro crate.
//!
//! The derives accept the same invocation syntax but generate **no
//! code**: the workspace only needs `#[derive(Serialize, Deserialize)]`
//! to compile, not to serialize (see `vendor/README.md`).

use proc_macro::TokenStream;

/// No-op `#[derive(Serialize)]`.
#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}

/// No-op `#[derive(Deserialize)]`.
#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}
