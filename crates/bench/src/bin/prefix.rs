//! Multi-turn chat-trace prefix-cache benchmark: prefill amplification
//! and hit rate with the cache on vs off at equal arena bytes, written
//! to `BENCH_prefix.json` (pass `--quick` for the CI-sized trace, and
//! an optional output path as the other argument).

use std::env;
use std::fs;

use looplynx_bench::prefix;

fn main() {
    let mut quick = false;
    let mut out_path = String::from("BENCH_prefix.json");
    for arg in env::args().skip(1) {
        match arg.as_str() {
            "--quick" => quick = true,
            other if other.starts_with('-') => {
                eprintln!("unknown flag {other}; usage: prefix [--quick] [output.json]");
                std::process::exit(2);
            }
            other => out_path = other.to_string(),
        }
    }
    let report = prefix::measure(quick);
    print!("{}", prefix::render(&report));
    let json = prefix::to_json(&report);
    fs::write(&out_path, &json).expect("write benchmark JSON");
    println!("wrote {out_path}");
}
