//! Macro dataflow kernels (MDK).
//!
//! "Kernels in classical spatial architectures with the same functionality
//! are grouped and implemented as macro dataflow kernels … we then employ a
//! scheduler to flexibly organize and reuse these kernels in a temporal
//! manner, achieving much higher peak hardware resource usage during each
//! activation" (paper Section III-B).
//!
//! Each kernel exposes a *timing* method returning a [`KernelTiming`]
//! (computed with the cycle-accurate pipeline calculator of
//! [`looplynx_sim::pipeline`]) and, where applicable, a functional compute
//! path so real data flows through the same activation.

pub mod dma;
pub mod lnres;
pub mod mha;
pub mod mp;
pub mod quantizer;

use serde::{Deserialize, Serialize};

use looplynx_sim::time::Cycles;

/// Timing result of one kernel activation.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct KernelTiming {
    /// Total cycles the activation occupies the kernel (exposed time).
    pub total: Cycles,
    /// Named sub-intervals for breakdown reporting; they need not sum to
    /// `total` (overlapped portions are reported once).
    pub segments: Vec<Segment>,
}

/// A named sub-interval of a kernel activation.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Segment {
    /// What the interval was spent on (e.g. `"dma"`, `"softmax"`).
    pub label: String,
    /// Duration.
    pub cycles: Cycles,
}

impl Segment {
    /// Creates a segment.
    pub fn new(label: impl Into<String>, cycles: Cycles) -> Self {
        Segment {
            label: label.into(),
            cycles,
        }
    }
}

impl KernelTiming {
    /// Creates a timing with segments.
    pub fn new(total: Cycles, segments: Vec<Segment>) -> Self {
        KernelTiming { total, segments }
    }

    /// Cycles attributed to the segment with the given label (0 if absent).
    pub fn segment(&self, label: &str) -> Cycles {
        self.segments
            .iter()
            .filter(|s| s.label == label)
            .map(|s| s.cycles)
            .sum()
    }
}
