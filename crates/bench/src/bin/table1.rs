//! Regenerates paper Table I (platform comparison).
fn main() {
    print!("{}", looplynx_bench::experiments::render_table1());
}
