//! Row-sharded GEMM test wall: stitching per-shard output slabs must
//! reproduce the unsharded batched forward **bit for bit** at 1, 2 and 4
//! shards — the property the engine's batch-row sharding stands on. It
//! holds because sharding partitions *output rows*: no dot product is
//! ever split, and the dequant epilogue is per-element.

use proptest::prelude::*;

use looplynx_tensor::linear::QuantLinear;
use looplynx_tensor::matrix::Matrix;

/// Proptest case count — shrunk under Miri (~100× interpreter slowdown).
const CASES: u32 = if cfg!(miri) { 2 } else { 48 };

fn arb_f32_matrix(rows: usize, cols: usize, seed: u64) -> Matrix<f32> {
    let mut state = seed.wrapping_mul(0x9E37_79B9_7F4A_7C15).max(1);
    Matrix::from_fn(rows, cols, |_, _| {
        state ^= state << 13;
        state ^= state >> 7;
        state ^= state << 17;
        ((state >> 11) as f32 / (1u64 << 53) as f32).mul_add(2.0, -1.0)
    })
}

fn arb_i8_matrix(rows: usize, cols: usize, seed: u64) -> Matrix<i8> {
    let mut state = seed.wrapping_mul(0xD134_2543_DE82_EF95).max(1);
    Matrix::from_fn(rows, cols, |_, _| {
        state ^= state << 13;
        state ^= state >> 7;
        state ^= state << 17;
        (state >> 32) as i8
    })
}

/// Balanced contiguous row ranges, mirroring the engine's `split_range`.
fn split(rows: usize, parts: usize) -> Vec<std::ops::Range<usize>> {
    let base = rows / parts;
    let rem = rows % parts;
    let mut out = Vec::with_capacity(parts);
    let mut start = 0;
    for i in 0..parts {
        let len = base + usize::from(i < rem);
        out.push(start..start + len);
        start += len;
    }
    out
}

/// Runs the range forward over `parts` shards and stitches the slabs
/// side by side into the full `b × rows` layout.
fn sharded_forward(lin: &QuantLinear, x: &Matrix<i8>, x_scales: &[f32], parts: usize) -> Vec<f32> {
    let (b, rows) = (x.rows(), lin.out_features());
    let ranges = split(rows, parts);
    let slabs: Vec<Vec<f32>> = ranges
        .iter()
        .map(|r| {
            let (mut acc, mut out) = (Vec::new(), Vec::new());
            lin.forward_batch_scaled_range_into(x, x_scales, r.clone(), &mut acc, &mut out);
            assert_eq!(out.len(), b * r.len(), "slab shape");
            out
        })
        .collect();
    let mut stitched = vec![0.0f32; b * rows];
    for (range, slab) in ranges.iter().zip(&slabs) {
        for t in 0..b {
            stitched[t * rows + range.start..t * rows + range.end]
                .copy_from_slice(&slab[t * range.len()..(t + 1) * range.len()]);
        }
    }
    stitched
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(CASES))]

    /// 1-, 2- and 4-way row sharding all reproduce the unsharded batched
    /// GEMM bitwise, across odd shapes that leave ragged shard sizes.
    #[test]
    fn sharded_slabs_stitch_bitwise(
        rows in 1usize..40,
        cols in prop::sample::select(vec![1usize, 3, 16, 33, 64]),
        b in 1usize..6,
        seed in any::<u64>(),
    ) {
        let w = arb_f32_matrix(rows, cols, seed);
        let bias: Vec<f32> = arb_f32_matrix(1, rows, seed ^ 1).into_vec();
        let lin = QuantLinear::from_f32(&w, &bias).expect("bias matches rows");
        let x = arb_i8_matrix(b, cols, seed ^ 2);
        let x_scales: Vec<f32> = (0..b).map(|t| 0.003 + t as f32 * 1e-4).collect();

        let (mut acc, mut full) = (Vec::new(), Vec::new());
        lin.forward_batch_scaled_into(&x, &x_scales, &mut acc, &mut full);

        for parts in [1usize, 2, 4] {
            let shards = parts.min(rows); // never more shards than rows
            let stitched = sharded_forward(&lin, &x, &x_scales, shards);
            prop_assert_eq!(stitched.len(), full.len());
            for (i, (s, f)) in stitched.iter().zip(&full).enumerate() {
                prop_assert!(
                    s.to_bits() == f.to_bits(),
                    "element {} differs at {} shards: {} vs {}", i, shards, s, f
                );
            }
        }
    }

    /// Empty ranges (more shards than rows would produce them) are legal
    /// and yield empty slabs.
    #[test]
    fn empty_range_yields_empty_slab(
        rows in 1usize..8,
        cols in 1usize..16,
        seed in any::<u64>(),
    ) {
        let w = arb_f32_matrix(rows, cols, seed);
        let lin = QuantLinear::from_f32(&w, &vec![0.0; rows]).expect("bias");
        let x = arb_i8_matrix(2, cols, seed ^ 2);
        let (mut acc, mut out) = (Vec::new(), Vec::new());
        lin.forward_batch_scaled_range_into(&x, &[0.01, 0.02], rows..rows, &mut acc, &mut out);
        prop_assert!(out.is_empty());
    }
}
