//! # looplynx-model — functional GPT-2 substrate
//!
//! A self-contained, auto-regressive GPT-2 implementation running under the
//! W8A8 quantization scheme of the LoopLynx paper: int8 weights and
//! activations with 32-bit accumulation for every linear layer and for the
//! attention score / token-mixing MACs, f32 for the critical-path operators
//! (layernorm, residual, softmax) exactly as the accelerator partitions the
//! work between its integer MAC hardware and its float units.
//!
//! The paper evaluates the GPT-2 (345M) model; checkpoints are not
//! available offline, so weights are *synthetic* (seeded, reproducible —
//! see [`weights`]). All latency/energy results depend only on tensor
//! shapes, never on weight values; functional tests use small configs where
//! the integer pipeline can be compared against an f32 reference.
//!
//! * [`config`] — model hyper-parameters and derived byte counts.
//! * [`weights`] — seeded synthetic weight generation.
//! * [`checkpoint`] — on-disk quantized checkpoints with a page-aligned
//!   tensor arena, loaded zero-copy through `mmap`.
//! * [`kv_cache`] — the quantized key/value cache, single-sequence
//!   ([`kv_cache::KvCache`]) and multi-sequence
//!   ([`kv_cache::SlotKvArena`], the continuous-batching slot arena).
//! * [`paged`] — the paged (block-table) multi-sequence KV allocator
//!   ([`paged::PagedKvArena`]): fixed-size pages granted on demand, so
//!   resident concurrency is bounded by *actual* context, not worst-case.
//! * [`prefix`] — content-addressed prefix index over paged KV
//!   ([`prefix::PrefixIndex`]): hash-chained page identities so repeated
//!   prompt prefixes share cached pages instead of re-prefilling.
//! * [`attention`] — causal multi-head attention over the cache.
//! * [`block`] — one transformer block (single-token, batched-prefill and
//!   batched-decode paths).
//! * [`gpt2`] — end-to-end model: prefill, decode, batched decode.
//! * [`generate`] — the [`generate::Autoregressive`] trait and the one
//!   shared generation driver.
//! * [`sampler`] — greedy and top-k sampling.
//! * [`tokenizer`] — byte-level tokenizer.
//!
//! # Example
//!
//! ```
//! use looplynx_model::config::ModelConfig;
//! use looplynx_model::generate::Autoregressive;
//! use looplynx_model::gpt2::Gpt2Model;
//! use looplynx_model::sampler::Sampler;
//!
//! let cfg = ModelConfig::tiny();
//! let mut model = Gpt2Model::synthetic(&cfg, 42);
//! let out = model.generate(&[1, 2, 3], 4, &mut Sampler::greedy());
//! assert_eq!(out.len(), 4);
//! ```

#![forbid(unsafe_code)]
#![deny(missing_docs)]
#![deny(missing_debug_implementations)]

pub mod attention;
pub mod block;
pub mod checkpoint;
pub mod config;
pub mod eval;
pub mod generate;
pub mod gpt2;
pub mod kv_cache;
pub mod paged;
pub mod prefix;
pub mod sampler;
pub mod tokenizer;
pub mod weights;

pub use config::ModelConfig;
pub use generate::Autoregressive;
pub use gpt2::Gpt2Model;
pub use kv_cache::SlotKvArena;
pub use paged::{PagedKvArena, PagesExhausted};
pub use sampler::Sampler;
