// Positive fixture for `panic_free`: none of this may fire.

/// Docs may say unwrap() and panic! freely.
fn fine(x: Option<u32>) -> u32 {
    // A comment mentioning x.unwrap() is not a call.
    let s = "x.unwrap() and panic! inside a string";
    let r = r#"raw string with .expect("…") inside"#;
    let _ = (s, r);
    /* block comment: /* nested */ still a comment: todo!() */
    let a = x.unwrap_or_default();
    let b = x.unwrap_or_else(|| 7);
    // lint: allow(panic_free) — fixture exercising a reasoned waiver
    let c = x.expect("waived deliberately");
    a + b + c
}

#[cfg(test)]
mod tests {
    #[test]
    fn tests_may_unwrap() {
        let v: Option<u32> = Some(1);
        assert_eq!(v.unwrap(), 1);
        let w: Result<u32, ()> = Ok(2);
        w.expect("test code is exempt");
    }
}
