//! Error types for tensor operations.

use std::fmt;

/// Error returned when matrix/vector shapes are incompatible.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ShapeError {
    expected: (usize, usize),
    actual: (usize, usize),
    context: &'static str,
}

impl ShapeError {
    /// Creates a shape error; `expected`/`actual` are `(rows, cols)` pairs
    /// (use `1` for vector dimensions).
    pub fn new(context: &'static str, expected: (usize, usize), actual: (usize, usize)) -> Self {
        ShapeError {
            expected,
            actual,
            context,
        }
    }

    /// The operation that failed.
    pub fn context(&self) -> &'static str {
        self.context
    }
}

impl fmt::Display for ShapeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "shape mismatch in {}: expected {}x{}, got {}x{}",
            self.context, self.expected.0, self.expected.1, self.actual.0, self.actual.1
        )
    }
}

impl std::error::Error for ShapeError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_names_the_operation() {
        let e = ShapeError::new("gemv", (4, 8), (4, 7));
        let s = e.to_string();
        assert!(s.contains("gemv"));
        assert!(s.contains("4x8"));
        assert!(s.contains("4x7"));
        assert_eq!(e.context(), "gemv");
    }
}
