//! Regenerates paper Table III (throughput and scalability).
use looplynx_bench::{experiments, paper};
use looplynx_model::ModelConfig;

fn main() {
    let model = ModelConfig::gpt2_medium();
    print!("{}", experiments::render_table3(&model));
    println!();
    println!("paper-vs-measured (tokens/s):");
    for (row, paper_tps) in experiments::table3(&model)
        .iter()
        .zip(paper::TABLE3_TOKENS_PER_S)
    {
        println!(
            "  {}-node: {}",
            row.nodes,
            paper::compare(row.tokens_per_second, paper_tps)
        );
    }
}
