//! Workspace-wiring smoke test.
//!
//! Exercises the default configuration end-to-end through the facade
//! crate: construct `ArchConfig` + `ModelConfig` defaults, run one
//! prefill and one decode token through `LoopLynx`, and assert a
//! non-empty `LatencyBreakdown`. If a future manifest or dependency
//! change breaks the crate graph (facade → core → {model, sim, tensor,
//! hw}), this is the first test to fail.

use looplynx::core::{ArchConfig, LoopLynx, TokenPhase};
use looplynx::model::ModelConfig;

#[test]
fn default_configs_drive_one_token_through_the_engine() {
    let arch = ArchConfig::paper();
    let model = ModelConfig::gpt2_medium();
    let engine = LoopLynx::new(model, arch).expect("paper defaults must partition");

    let prefill = engine.simulate_token(1, TokenPhase::Prefill, true);
    let decode = engine.simulate_token(2, TokenPhase::Decode, false);

    for (phase, timing) in [("prefill", &prefill), ("decode", &decode)] {
        let b = &timing.breakdown;
        assert!(
            b.total().as_u64() > 0,
            "{phase} breakdown must be non-empty, got {b:?}"
        );
        assert!(
            b.linear.as_u64() > 0 && b.critical_path.as_u64() > 0,
            "{phase} must exercise both the MP kernel and the critical path: {b:?}"
        );
    }
}

#[test]
fn default_configs_drive_a_short_generation() {
    let arch = ArchConfig::paper();
    let engine = LoopLynx::new(ModelConfig::gpt2_medium(), arch).expect("partitions");
    let report = engine.simulate_generation(4, 2);
    assert_eq!(report.prefill_tokens, 4);
    assert_eq!(report.decode_tokens, 2);
    assert!(report.breakdown.total().as_u64() > 0);
    assert!(report.total_ms() > 0.0);
    assert!(report.energy.joules > 0.0);
}
