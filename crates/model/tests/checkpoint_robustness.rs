//! Checkpoint test wall: round-trip fidelity and malformed-input
//! robustness.
//!
//! The save→map→load cycle must reproduce the exact weights (and
//! therefore bit-identical generations), keep the big matrices as
//! zero-copy arena views, and turn every class of file corruption into a
//! typed [`CheckpointError`] — never a panic.

use std::path::PathBuf;

use proptest::prelude::*;

use looplynx_model::checkpoint::{self, CheckpointError, ARENA_ALIGN, MAGIC, VERSION};
use looplynx_model::config::ModelConfig;
use looplynx_model::gpt2::Gpt2Model;
use looplynx_model::sampler::Sampler;
use looplynx_model::weights::Gpt2Weights;
use looplynx_model::Autoregressive;

/// Miri interprets every access (~100× slower), so the fuzz loops shrink
/// their case counts under it — same convention as `paged_alloc_fuzz`.
const CASES: u32 = if cfg!(miri) { 3 } else { 64 };

fn tiny_cfg() -> ModelConfig {
    ModelConfig {
        name: "ckpt-tiny".into(),
        layers: 2,
        d_model: 32,
        heads: 4,
        d_ff: 64,
        vocab: 50,
        max_seq: 48,
    }
}

/// Unique temp path per test (process id keeps parallel `cargo test`
/// invocations apart; the name keeps tests within one process apart).
fn tmp(name: &str) -> PathBuf {
    std::env::temp_dir().join(format!("looplynx_ckpt_{}_{name}.bin", std::process::id()))
}

fn saved_bytes(cfg: &ModelConfig, weights: &Gpt2Weights, name: &str) -> (PathBuf, Vec<u8>) {
    let path = tmp(name);
    checkpoint::save(cfg, weights, &path).expect("save");
    let bytes = std::fs::read(&path).expect("read back");
    (path, bytes)
}

#[test]
fn round_trip_preserves_config_and_weights() {
    let cfg = tiny_cfg();
    let weights = Gpt2Weights::synthetic(&cfg, 0xC0FFEE);
    let path = tmp("round_trip");
    checkpoint::save(&cfg, &weights, &path).expect("save");

    let (loaded_cfg, loaded) = checkpoint::load(&path).expect("load");
    assert_eq!(loaded_cfg, cfg);
    assert_eq!(
        loaded, weights,
        "weights must survive the round trip exactly"
    );
    std::fs::remove_file(&path).ok();
}

#[test]
fn round_trip_generations_are_bit_identical() {
    let cfg = tiny_cfg();
    let mut reference = Gpt2Model::synthetic(&cfg, 0x5EED);
    let path = tmp("generate");
    checkpoint::save(&cfg, reference.weights(), &path).expect("save");
    let mut loaded = checkpoint::load_model(&path).expect("load");

    let prompt = [3u32, 1, 4, 1, 5];
    let a = reference.generate(&prompt, 12, &mut Sampler::greedy());
    let b = loaded.generate(&prompt, 12, &mut Sampler::greedy());
    assert_eq!(a, b, "loaded model must generate the exact same tokens");
    std::fs::remove_file(&path).ok();
}

#[test]
fn big_matrices_load_as_zero_copy_views() {
    let cfg = tiny_cfg();
    let weights = Gpt2Weights::synthetic(&cfg, 7);
    let path = tmp("zero_copy");
    checkpoint::save(&cfg, &weights, &path).expect("save");
    let (_, loaded) = checkpoint::load(&path).expect("load");

    assert!(loaded.wte.is_arena_view(), "wte should view the mapping");
    assert!(loaded.wpe.is_arena_view(), "wpe should view the mapping");
    for block in &loaded.blocks {
        for lin in [&block.qkv, &block.proj, &block.fc1, &block.fc2] {
            assert!(
                lin.weight().data().is_arena_view(),
                "int8 payloads should view the mapping"
            );
        }
    }
    assert!(loaded.lm_head.weight().data().is_arena_view());
    std::fs::remove_file(&path).ok();
}

#[test]
fn arena_starts_on_a_page_boundary() {
    let cfg = tiny_cfg();
    let weights = Gpt2Weights::synthetic(&cfg, 7);
    let (path, bytes) = saved_bytes(&cfg, &weights, "layout");
    assert_eq!(&bytes[..8], &MAGIC);
    let arena_offset = u64::from_le_bytes(bytes[48..56].try_into().unwrap());
    assert_eq!(arena_offset as usize % ARENA_ALIGN, 0);
    let file_len = u64::from_le_bytes(bytes[40..48].try_into().unwrap());
    assert_eq!(file_len, bytes.len() as u64);
    std::fs::remove_file(&path).ok();
}

#[test]
fn truncated_file_is_a_typed_error() {
    let cfg = tiny_cfg();
    let weights = Gpt2Weights::synthetic(&cfg, 1);
    let (path, bytes) = saved_bytes(&cfg, &weights, "trunc");

    // below the fixed header
    std::fs::write(&path, &bytes[..20]).unwrap();
    assert!(matches!(
        checkpoint::load(&path),
        Err(CheckpointError::Truncated { .. })
    ));

    // half the arena missing
    std::fs::write(&path, &bytes[..bytes.len() / 2]).unwrap();
    assert!(matches!(
        checkpoint::load(&path),
        Err(CheckpointError::Truncated { .. })
    ));
    std::fs::remove_file(&path).ok();
}

#[test]
fn bad_magic_is_a_typed_error() {
    let cfg = tiny_cfg();
    let weights = Gpt2Weights::synthetic(&cfg, 2);
    let (path, mut bytes) = saved_bytes(&cfg, &weights, "magic");
    bytes[0] ^= 0xFF;
    std::fs::write(&path, &bytes).unwrap();
    assert!(matches!(
        checkpoint::load(&path),
        Err(CheckpointError::BadMagic(_))
    ));
    std::fs::remove_file(&path).ok();
}

#[test]
fn bad_version_is_a_typed_error() {
    let cfg = tiny_cfg();
    let weights = Gpt2Weights::synthetic(&cfg, 3);
    let (path, mut bytes) = saved_bytes(&cfg, &weights, "version");
    bytes[8..12].copy_from_slice(&(VERSION + 41).to_le_bytes());
    std::fs::write(&path, &bytes).unwrap();
    match checkpoint::load(&path) {
        Err(CheckpointError::BadVersion { found, expected }) => {
            assert_eq!(found, VERSION + 41);
            assert_eq!(expected, VERSION);
        }
        other => panic!("expected BadVersion, got {other:?}"),
    }
    std::fs::remove_file(&path).ok();
}

#[test]
fn misaligned_arena_is_a_typed_error() {
    let cfg = tiny_cfg();
    let weights = Gpt2Weights::synthetic(&cfg, 4);
    let (path, mut bytes) = saved_bytes(&cfg, &weights, "misaligned");
    let off = ARENA_ALIGN as u64 + 64; // 64-aligned but not page-aligned
    bytes[48..56].copy_from_slice(&off.to_le_bytes());
    std::fs::write(&path, &bytes).unwrap();
    assert!(matches!(
        checkpoint::load(&path),
        Err(CheckpointError::MisalignedArena { .. })
    ));
    std::fs::remove_file(&path).ok();
}

#[test]
fn garbage_file_is_a_typed_error() {
    let path = tmp("garbage");
    std::fs::write(&path, b"definitely not a checkpoint").unwrap();
    assert!(checkpoint::load(&path).is_err());
    std::fs::remove_file(&path).ok();
}

#[test]
fn missing_file_is_an_io_error() {
    let path = tmp("does_not_exist");
    std::fs::remove_file(&path).ok();
    assert!(matches!(
        checkpoint::load(&path),
        Err(CheckpointError::Io(_))
    ));
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(CASES))]

    /// Arbitrary single-byte corruption of the header page must yield
    /// `Ok` or a typed error — never a panic, never an abort.
    #[test]
    fn corrupted_header_never_panics(pos in 0usize..ARENA_ALIGN, val in any::<u8>()) {
        let cfg = tiny_cfg();
        let weights = Gpt2Weights::synthetic(&cfg, 5);
        let path = tmp(&format!("fuzz_{pos}_{val}"));
        checkpoint::save(&cfg, &weights, &path).expect("save");
        let mut bytes = std::fs::read(&path).expect("read");
        bytes[pos] = val;
        std::fs::write(&path, &bytes).expect("write");
        let _ = checkpoint::load(&path); // any Result is fine; panics fail the test
        std::fs::remove_file(&path).ok();
    }

    /// Arbitrary truncation points must never panic either.
    #[test]
    fn arbitrary_truncation_never_panics(frac in 0.0f64..1.0) {
        let cfg = tiny_cfg();
        let weights = Gpt2Weights::synthetic(&cfg, 6);
        let path = tmp(&format!("fuzztrunc_{}", (frac * 1e6) as u64));
        checkpoint::save(&cfg, &weights, &path).expect("save");
        let bytes = std::fs::read(&path).expect("read");
        let keep = ((bytes.len() as f64) * frac) as usize;
        std::fs::write(&path, &bytes[..keep]).expect("write");
        prop_assert!(checkpoint::load(&path).is_err(), "shorter file must not load");
        std::fs::remove_file(&path).ok();
    }
}
