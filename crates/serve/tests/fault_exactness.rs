//! Property suite: fault injection never changes *what* completed
//! requests compute, only *whether/when* they complete.
//!
//! For any seeded [`FaultPlan`] the gateway's retry path replays vetoed
//! operations against an unperturbed backend, so every request that
//! reaches `Completed` must produce a token stream bit-identical to the
//! fault-free run of the same workload. This is the serving-tier
//! extension of the batched-decode exactness suite: faults may shed,
//! stall, or strand requests, but they may never corrupt one.

use proptest::prelude::*;

use looplynx_core::backend::{FunctionalBackend, SamplerSpec};
use looplynx_core::engine::DistributedGpt2;
use looplynx_core::fault::{FaultPlan, FaultyBackend};
use looplynx_core::router::RingMode;
use looplynx_model::config::ModelConfig;
use looplynx_model::gpt2::Gpt2Model;
use looplynx_serve::{
    serve_gateway_on, ArrivalProcess, GatewayConfig, GatewayRequest, ShedPolicy, Terminal,
};

const SLOTS: usize = 4;

fn fresh_backend(model: &Gpt2Model) -> FunctionalBackend {
    let engine = DistributedGpt2::with_slots(model, 2, RingMode::Exact, SLOTS, 48)
        .expect("tiny model partitions");
    FunctionalBackend::new(engine, SamplerSpec::Greedy)
}

fn workload(n: usize, seed: u64) -> Vec<GatewayRequest> {
    let cfg = ModelConfig::tiny();
    let reqs = ArrivalProcess::Trace(vec![0.0; n]).workload_with_prompts(
        n,
        &[(6, 7), (4, 9), (8, 5)],
        cfg.vocab,
        seed,
    );
    GatewayRequest::from_workload(&reqs)
}

fn gateway_cfg() -> GatewayConfig {
    GatewayConfig {
        max_batch: SLOTS,
        queue_depth: 64,
        // No deadlines: the functional clock is measured host time, and
        // this suite is about token exactness, not latency.
        ttft_deadline_ms: None,
        e2e_deadline_ms: None,
        max_retries: 48,
        retry_backoff_ms: 0.5,
        shed: ShedPolicy::Reject,
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// For any seeded fault plan, completed requests are bit-identical
    /// to the fault-free run, and the run conserves every request.
    #[test]
    fn completed_streams_survive_any_fault_plan(
        plan_seed in any::<u64>(),
        workload_seed in any::<u64>(),
        prefill_rate in 0.0f64..0.4,
        decode_rate in 0.0f64..0.4,
        stall_rate in 0.0f64..0.3,
        leak_rate in 0.0f64..0.3,
        n in 4usize..10,
    ) {
        let model = Gpt2Model::synthetic(&ModelConfig::tiny(), 2024);
        let offered = workload(n, workload_seed);

        let mut clean = fresh_backend(&model);
        let reference = serve_gateway_on(&mut clean, &offered, &gateway_cfg());
        prop_assert_eq!(reference.counts().completed, n, "fault-free run completes all");

        let plan = FaultPlan {
            seed: plan_seed,
            prefill_fail_rate: prefill_rate,
            decode_fail_rate: decode_rate,
            stall_rate,
            stall_ms: 250.0,
            release_leak_rate: leak_rate,
        };
        let mut faulty = FaultyBackend::new(fresh_backend(&model), plan);
        let report = serve_gateway_on(&mut faulty, &offered, &gateway_cfg());

        // Conservation: exactly one terminal per offered request.
        prop_assert!(report.is_conserved(&offered), "{}", report);

        // Exactness: every completed stream matches the reference.
        for t in &report.terminals {
            if t.terminal != Terminal::Completed {
                continue;
            }
            prop_assert_eq!(
                report.serving.output_tokens(t.id),
                reference.serving.output_tokens(t.id),
                "request {} diverged under plan {:?}", t.id, plan
            );
        }
    }

    /// The fault-free plan is fully transparent: wrapping the backend in
    /// `FaultyBackend` with `FaultPlan::none()` leaves the gateway run's
    /// outputs and terminal census unchanged.
    #[test]
    fn none_plan_is_transparent(workload_seed in any::<u64>(), n in 3usize..8) {
        let model = Gpt2Model::synthetic(&ModelConfig::tiny(), 2024);
        let offered = workload(n, workload_seed);

        let mut bare = fresh_backend(&model);
        let a = serve_gateway_on(&mut bare, &offered, &gateway_cfg());
        let mut wrapped = FaultyBackend::new(fresh_backend(&model), FaultPlan::none());
        let b = serve_gateway_on(&mut wrapped, &offered, &gateway_cfg());

        prop_assert_eq!(a.counts(), b.counts());
        prop_assert_eq!(a.serving.outputs, b.serving.outputs);
        prop_assert_eq!(b.retries, 0);
    }
}
