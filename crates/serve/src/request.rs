//! Serving requests and per-request latency records.

use serde::{Deserialize, Serialize};

/// One generation request offered to the serving layer.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Request {
    /// Caller-chosen identifier (unique within a workload; also seeds the
    /// request's sampler on token-producing backends).
    pub id: u64,
    /// Arrival timestamp in milliseconds since the workload epoch.
    pub arrival_ms: f64,
    /// Prompt length in tokens.
    pub prefill_tokens: usize,
    /// Output tokens requested.
    pub decode_tokens: usize,
    /// Real prompt token ids. Timing-only backends ignore them;
    /// token-producing backends require them (see
    /// [`Request::with_prompt`]).
    pub prompt: Option<Vec<u32>>,
}

impl Request {
    /// Creates a request without prompt tokens (timing-only workloads).
    ///
    /// # Panics
    ///
    /// Panics if either token count is zero or `arrival_ms` is negative or
    /// non-finite.
    pub fn new(id: u64, arrival_ms: f64, prefill_tokens: usize, decode_tokens: usize) -> Self {
        assert!(
            prefill_tokens > 0 && decode_tokens > 0,
            "request needs at least one prompt and one output token"
        );
        assert!(
            arrival_ms.is_finite() && arrival_ms >= 0.0,
            "invalid arrival time {arrival_ms}"
        );
        Request {
            id,
            arrival_ms,
            prefill_tokens,
            decode_tokens,
            prompt: None,
        }
    }

    /// Attaches real prompt tokens (and syncs `prefill_tokens` to their
    /// count) so the request can run on a token-producing backend.
    ///
    /// # Panics
    ///
    /// Panics if `prompt` is empty.
    #[must_use]
    pub fn with_prompt(mut self, prompt: Vec<u32>) -> Self {
        assert!(!prompt.is_empty(), "prompt must not be empty");
        self.prefill_tokens = prompt.len();
        self.prompt = Some(prompt);
        self
    }

    /// Prompt plus requested output tokens. The KV cache peaks one short
    /// of this: the final output token is sampled but never forwarded
    /// (the same accounting as the engines' `generate`).
    pub fn total_tokens(&self) -> usize {
        self.prefill_tokens + self.decode_tokens
    }

    /// Largest KV-cache length any scheduled pass reaches: the last
    /// decode pass appends token `decode_tokens - 1` onto the prompt.
    pub fn peak_context(&self) -> usize {
        self.prefill_tokens + self.decode_tokens - 1
    }
}

/// Timing record of one completed request.
///
/// The first output token is sampled from the prefill logits (the paper's
/// host synchronizes model output and samples after the final prompt
/// token), so TTFT is the queue wait plus the prefill wall-clock; the
/// remaining `decode_tokens - 1` tokens each take one decode iteration.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct RequestMetrics {
    /// Request identifier.
    pub id: u64,
    /// Arrival timestamp (ms).
    pub arrival_ms: f64,
    /// Timestamp the first output token was emitted (ms).
    pub first_token_ms: f64,
    /// Timestamp the last output token was emitted (ms).
    pub completion_ms: f64,
    /// Prompt length in tokens.
    pub prefill_tokens: usize,
    /// Output tokens produced (equals the request's ask — the serving
    /// layer rejects workloads that would overflow `max_seq`).
    pub decode_tokens: usize,
}

impl RequestMetrics {
    /// Time-to-first-token: arrival to first output token (ms).
    pub fn ttft_ms(&self) -> f64 {
        self.first_token_ms - self.arrival_ms
    }

    /// Time-per-output-token over the decode phase (ms); `0.0` for a
    /// single-token generation, which has no decode phase.
    pub fn tpot_ms(&self) -> f64 {
        if self.decode_tokens <= 1 {
            return 0.0;
        }
        (self.completion_ms - self.first_token_ms) / (self.decode_tokens - 1) as f64
    }

    /// End-to-end latency: arrival to last output token (ms).
    pub fn e2e_ms(&self) -> f64 {
        self.completion_ms - self.arrival_ms
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn metrics_derive_latencies() {
        let m = RequestMetrics {
            id: 1,
            arrival_ms: 100.0,
            first_token_ms: 130.0,
            completion_ms: 190.0,
            prefill_tokens: 32,
            decode_tokens: 7,
        };
        assert!((m.ttft_ms() - 30.0).abs() < 1e-12);
        assert!((m.e2e_ms() - 90.0).abs() < 1e-12);
        assert!((m.tpot_ms() - 10.0).abs() < 1e-12);
    }

    #[test]
    fn single_token_request_has_no_tpot() {
        let m = RequestMetrics {
            id: 1,
            arrival_ms: 0.0,
            first_token_ms: 5.0,
            completion_ms: 5.0,
            prefill_tokens: 8,
            decode_tokens: 1,
        };
        assert_eq!(m.tpot_ms(), 0.0);
    }

    #[test]
    #[should_panic(expected = "at least one prompt")]
    fn zero_decode_rejected() {
        let _ = Request::new(0, 0.0, 8, 0);
    }
}
