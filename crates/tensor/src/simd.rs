//! Runtime-dispatched SIMD inner kernel for the int8 MAC loop.
//!
//! Every hot kernel in this crate (GEMV, GEMM, attention scores) bottoms
//! out in the same operation the accelerator's MAC array performs: an
//! `i8 × i8 → i32` dot product. Integer addition is associative, so a
//! vectorized accumulation is **bit-identical** to the scalar loop — this
//! module only changes how fast the exact same number is produced.
//!
//! On x86-64 the AVX2 path widens 16 int8 lanes to int16
//! (`vpmovsxbw`), multiply-accumulates pairs into int32 (`vpmaddwd` —
//! products of int8 values fit int16 pairs losslessly: |x·y| ≤ 16384,
//! and the pairwise add of two such products fits int32), and folds the
//! vector accumulator horizontally at the end. Feature detection is a
//! cached atomic load, cheap enough to keep even on short head-dim dots.
//! Other architectures (and CPUs without AVX2) use the scalar loop.

/// Integer dot product with i32 accumulation: `Σ a[i]·b[i]`.
///
/// # Panics
///
/// Panics if the slices differ in length (debug builds; release builds
/// truncate to the shorter slice like `zip`, matching the scalar path).
#[inline]
pub fn dot_i8_i32(a: &[i8], b: &[i8]) -> i32 {
    debug_assert_eq!(a.len(), b.len(), "dot operand length mismatch");
    #[cfg(target_arch = "x86_64")]
    {
        if a.len() >= 16 && is_x86_feature_detected!("avx2") {
            // SAFETY: AVX2 support was just verified at runtime.
            return unsafe { dot_i8_i32_avx2(a, b) };
        }
    }
    dot_i8_i32_scalar(a, b)
}

/// The scalar reference MAC loop (also the test oracle for the SIMD path).
#[inline]
pub fn dot_i8_i32_scalar(a: &[i8], b: &[i8]) -> i32 {
    a.iter().zip(b).map(|(&x, &y)| x as i32 * y as i32).sum()
}

/// AVX2 dot product: 16 int8 lanes per iteration via sign-extend +
/// `vpmaddwd`, exact i32 accumulation.
///
/// # Safety
///
/// The caller must ensure the CPU supports AVX2 (e.g. via
/// `is_x86_feature_detected!("avx2")`).
#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx2")]
unsafe fn dot_i8_i32_avx2(a: &[i8], b: &[i8]) -> i32 {
    use std::arch::x86_64::{
        __m128i, _mm256_add_epi32, _mm256_castsi256_si128, _mm256_cvtepi8_epi16,
        _mm256_extracti128_si256, _mm256_madd_epi16, _mm256_setzero_si256, _mm_add_epi32,
        _mm_cvtsi128_si32, _mm_loadu_si128, _mm_shuffle_epi32,
    };
    let n = a.len().min(b.len());
    let mut acc = _mm256_setzero_si256();
    let mut i = 0;
    while i + 16 <= n {
        // SAFETY: i + 16 <= n keeps both 16-byte loads in bounds.
        let (va, vb) = unsafe {
            (
                _mm256_cvtepi8_epi16(_mm_loadu_si128(a.as_ptr().add(i) as *const __m128i)),
                _mm256_cvtepi8_epi16(_mm_loadu_si128(b.as_ptr().add(i) as *const __m128i)),
            )
        };
        acc = _mm256_add_epi32(acc, _mm256_madd_epi16(va, vb));
        i += 16;
    }
    // Horizontal fold of the 8 i32 lanes.
    let mut s = _mm_add_epi32(
        _mm256_extracti128_si256(acc, 1),
        _mm256_castsi256_si128(acc),
    );
    s = _mm_add_epi32(s, _mm_shuffle_epi32(s, 0b01_00_11_10));
    s = _mm_add_epi32(s, _mm_shuffle_epi32(s, 0b00_00_00_01));
    let mut total = _mm_cvtsi128_si32(s);
    while i < n {
        total += a[i] as i32 * b[i] as i32;
        i += 1;
    }
    total
}

/// Batch-of-rows integer dot: `out[t] = Σ w[i]·xs[t][i]` for `N`
/// activation rows sharing **one pass over the weight row** — the
/// continuous-batching MAC kernel. Amortizing the weight-side work across
/// the batch lets the AVX2 path use the denser `vpmaddubsw` pipeline
/// (32 MACs per instruction vs 16 for the sign-extend path), which is
/// what makes batched decode faster than `N` separate GEMVs on a
/// compute-bound host.
///
/// Activation values must lie in `[-127, 127]` — every quantizer in this
/// workspace clamps there ([`crate::quant::QMAX`]); the weight row may
/// use the full i8 range. Within that contract the result is
/// **bit-identical** to calling [`dot_i8_i32`] per row: the `vpmaddubsw`
/// trick computes `|w| · sign(x, w)` whose i16 pair sums are at most
/// `2 · 128 · 127 < 2¹⁵` (no saturation), and i32 integer accumulation
/// is exact in any order. (A `-128` *activation* would wrap in
/// `vpsignb`; debug builds assert the range. Callers that cannot rule it
/// out must use [`dot_i8_i32`] — see the fallback scan in
/// `linear::gemm_i32`.)
pub fn dot_i8_i32_batch<const N: usize>(w: &[i8], xs: [&[i8]; N]) -> [i32; N] {
    debug_assert!(
        xs.iter().all(|x| x.iter().all(|&v| v > i8::MIN)),
        "dot_i8_i32_batch activations must be in [-127, 127]"
    );
    debug_assert!(
        xs.iter().all(|x| x.len() == w.len()),
        "dot_i8_i32_batch operand length mismatch"
    );
    #[cfg(target_arch = "x86_64")]
    {
        if w.len() >= 32 {
            if is_x86_feature_detected!("avx512vnni") && is_x86_feature_detected!("avx512vl") {
                // SAFETY: VNNI + VL support was just verified at runtime.
                return unsafe { dot_i8_i32_batch_vnni(w, xs) };
            }
            if is_x86_feature_detected!("avx2") {
                // SAFETY: AVX2 support was just verified at runtime.
                return unsafe { dot_i8_i32_batch_avx2(w, xs) };
            }
        }
    }
    let mut out = [0i32; N];
    for (o, x) in out.iter_mut().zip(xs) {
        *o = dot_i8_i32_scalar(w, x);
    }
    out
}

/// Whether the 512-bit VNNI batched-dot path ([`dot_biased_i8_i32_batch`]
/// with hardware acceleration) is available on this CPU.
#[inline]
pub fn vnni512_available() -> bool {
    #[cfg(target_arch = "x86_64")]
    {
        is_x86_feature_detected!("avx512f")
            && is_x86_feature_detected!("avx512bw")
            && is_x86_feature_detected!("avx512vnni")
    }
    #[cfg(not(target_arch = "x86_64"))]
    {
        false
    }
}

/// Rebias int8 activations to unsigned (`x ⊕ 0x80`, i.e. `x + 128`) —
/// the input form of [`dot_biased_i8_i32_batch`]. `-128` maps to `0`, so
/// the whole i8 range round-trips exactly.
#[inline]
pub fn bias_to_unsigned(src: &[i8], dst: &mut Vec<u8>) {
    dst.clear();
    dst.extend(src.iter().map(|&v| (v as u8) ^ 0x80));
}

/// Sum of an int8 row in i32 — the weight-side correction term of the
/// biased dot (`Σ x·w = Σ (x+128)·w − 128·Σw`). Cached per weight row by
/// `quant::QuantizedMatrix`.
#[inline]
pub fn row_sum_i8(row: &[i8]) -> i32 {
    row.iter().map(|&v| v as i32).sum()
}

/// Batch-of-rows *biased* integer dot: `out[t] = Σ w[i]·(xs[t][i] − 128)`
/// where `xs` carries activations rebias-ed by [`bias_to_unsigned`] and
/// `w_row_sum` is `Σ w[i]` ([`row_sum_i8`]).
///
/// This is the widest MAC kernel: on AVX512-VNNI hardware, `vpdpbusd`
/// fuses the u8×i8 multiply and the i32 accumulate — 64 MACs per
/// instruction at 512 bits, with the weight chunk loaded once per batch.
/// Unlike the `vpsignb` trick of [`dot_i8_i32_batch`], the bias identity
/// is exact over the **entire** i8 range (including `-128`, which maps
/// to unsigned `0`): `vpdpbusd` widens each lane's four u8×i8 products
/// to i32 before summing, so no intermediate saturates, and the final
/// `− 128·Σw` correction is exact i32 arithmetic. Bit-identical to
/// [`dot_i8_i32`] against the un-biased activations, always.
pub fn dot_biased_i8_i32_batch<const N: usize>(
    w: &[i8],
    w_row_sum: i32,
    xs: [&[u8]; N],
) -> [i32; N] {
    debug_assert!(
        xs.iter().all(|x| x.len() == w.len()),
        "dot_biased_i8_i32_batch operand length mismatch"
    );
    #[cfg(target_arch = "x86_64")]
    {
        if w.len() >= 64 && vnni512_available() {
            // SAFETY: AVX512F/BW/VNNI support was just verified.
            return unsafe { dot_biased_i8_i32_batch_vnni512(w, w_row_sum, xs) };
        }
    }
    let mut out = [0i32; N];
    for (o, x) in out.iter_mut().zip(xs) {
        *o = w
            .iter()
            .zip(x.iter())
            .map(|(&wv, &xv)| wv as i32 * (xv as i32 - 128))
            .sum();
    }
    // The scalar loop subtracts the bias per element; fold the identity
    // the same way the SIMD path does so both derive from w_row_sum.
    let _ = w_row_sum;
    out
}

/// Register-blocked biased dot over a 4×4 weight-row × activation-row
/// tile: `out[r][t] = Σ_i ws[r][i]·(xs[t][i] − 128)`, inputs in the same
/// rebias form as [`dot_biased_i8_i32_batch`].
///
/// This is the throughput kernel of the tiled GEMM. The per-row batch
/// kernel pays one weight load plus `N` activation loads for `N`
/// `vpdpbusd`s per 64-byte chunk — more loads than MACs, so the two load
/// ports gate it. The tile keeps 16 accumulators live and loads each
/// weight chunk and each activation chunk exactly once for 16
/// `vpdpbusd`s (8 loads per 16 MAC ops), which flips the bottleneck to
/// the MAC pipes. Integer accumulation is exact in any order, so the
/// tile result is bit-identical to 16 independent scalar dots.
pub fn dot_biased_i8_i32_tile4x4(
    ws: [&[i8]; 4],
    w_row_sums: [i32; 4],
    xs: [&[u8]; 4],
) -> [[i32; 4]; 4] {
    debug_assert!(
        ws.iter().all(|w| w.len() == ws[0].len()) && xs.iter().all(|x| x.len() == ws[0].len()),
        "dot_biased_i8_i32_tile4x4 operand length mismatch"
    );
    #[cfg(target_arch = "x86_64")]
    {
        if ws[0].len() >= 64 && vnni512_available() {
            // SAFETY: AVX512F/BW/VNNI support was just verified.
            return unsafe { dot_biased_tile4x4_vnni512(ws, w_row_sums, xs) };
        }
    }
    let mut out = [[0i32; 4]; 4];
    for (orow, w) in out.iter_mut().zip(ws) {
        for (o, x) in orow.iter_mut().zip(xs) {
            *o = w
                .iter()
                .zip(x.iter())
                .map(|(&wv, &xv)| wv as i32 * (xv as i32 - 128))
                .sum();
        }
    }
    // The scalar loop subtracts the bias per element; the SIMD path
    // folds the same identity through w_row_sums.
    let _ = w_row_sums;
    out
}

/// The 512-bit VNNI kernel behind [`dot_biased_i8_i32_tile4x4`].
///
/// # Safety
///
/// The caller must ensure the CPU supports AVX512F, AVX512BW and
/// AVX512VNNI.
#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx512f,avx512bw,avx512vnni")]
unsafe fn dot_biased_tile4x4_vnni512(
    ws: [&[i8]; 4],
    w_row_sums: [i32; 4],
    xs: [&[u8]; 4],
) -> [[i32; 4]; 4] {
    use std::arch::x86_64::{
        __m512i, _mm512_add_epi32, _mm512_dpbusd_epi32, _mm512_extracti32x4_epi32,
        _mm512_loadu_si512, _mm512_setzero_si512, _mm512_unpackhi_epi32, _mm512_unpackhi_epi64,
        _mm512_unpacklo_epi32, _mm512_unpacklo_epi64, _mm_add_epi32, _mm_prefetch,
        _mm_storeu_si128, _MM_HINT_T1,
    };
    let n = ws[0].len();
    // 16 accumulators + 4 weight chunks + 1 activation chunk = 21 live
    // zmm registers — comfortably inside the 32-register file once the
    // 4×4 loops below unroll.
    let mut acc = [[_mm512_setzero_si512(); 4]; 4];
    let mut i = 0;
    while i + 64 <= n {
        let vw: [__m512i; 4] = std::array::from_fn(|r| {
            // SAFETY: i + 64 <= n keeps every 64-byte load in bounds (the
            // debug assertion above pins all eight lengths to ws[0]'s).
            unsafe { _mm512_loadu_si512(ws[r].as_ptr().add(i) as *const _) }
        });
        for w in &ws {
            // Weight rows stream from DRAM once per GEMM while the
            // demand rate here far exceeds memory bandwidth. The GEMM
            // block loop re-sweeps each 32-row block once per token
            // group, so prefetching exactly one block ahead (32 rows ×
            // the shared row length `n`, contiguous in the row-major
            // weight matrix) pulls the next block into L2 while the
            // current block's later sweeps run compute-bound out of
            // cache. `wrapping_add` may point past the matrix — prefetch
            // never dereferences, so any address is architecturally safe.
            _mm_prefetch::<_MM_HINT_T1>(w.as_ptr().wrapping_add(i + 64 * n));
        }
        for (t, x) in xs.iter().enumerate() {
            // SAFETY: same bounds as `vw` — x.len() == ws[0].len().
            let vx = unsafe { _mm512_loadu_si512(x.as_ptr().add(i) as *const _) };
            for (accr, &vwr) in acc.iter_mut().zip(&vw) {
                accr[t] = _mm512_dpbusd_epi32(accr[t], vx, vwr);
            }
        }
        i += 64;
    }
    // Horizontal reduction, four accumulators at a time: interleave-add
    // pairs until each 128-bit lane holds one partial per accumulator,
    // fold the four lanes, and store the four sums with one 128-bit
    // store. Integer addition is associative, so the lane permutation
    // changes nothing about the result — only the shuffle count (~15 ops
    // for four sums vs ~32 for four scalar reduces).
    let hsum4 = |a0: __m512i, a1: __m512i, a2: __m512i, a3: __m512i| -> [i32; 4] {
        let s01 = _mm512_add_epi32(_mm512_unpacklo_epi32(a0, a1), _mm512_unpackhi_epi32(a0, a1));
        let s23 = _mm512_add_epi32(_mm512_unpacklo_epi32(a2, a3), _mm512_unpackhi_epi32(a2, a3));
        let v = _mm512_add_epi32(
            _mm512_unpacklo_epi64(s01, s23),
            _mm512_unpackhi_epi64(s01, s23),
        );
        let q = _mm_add_epi32(
            _mm_add_epi32(
                _mm512_extracti32x4_epi32(v, 0),
                _mm512_extracti32x4_epi32(v, 1),
            ),
            _mm_add_epi32(
                _mm512_extracti32x4_epi32(v, 2),
                _mm512_extracti32x4_epi32(v, 3),
            ),
        );
        let mut lanes = [0i32; 4];
        // SAFETY: `lanes` is a 16-byte local, exactly one store wide.
        unsafe { _mm_storeu_si128(lanes.as_mut_ptr() as *mut _, q) };
        lanes
    };
    let mut out = [[0i32; 4]; 4];
    for (r, (orow, accr)) in out.iter_mut().zip(acc).enumerate() {
        let sums = hsum4(accr[0], accr[1], accr[2], accr[3]);
        for (t, (o, s4)) in orow.iter_mut().zip(sums).enumerate() {
            let mut s = s4;
            for j in i..n {
                s += ws[r][j] as i32 * xs[t][j] as i32;
            }
            *o = s - 128 * w_row_sums[r];
        }
    }
    out
}

/// The 512-bit VNNI kernel behind [`dot_biased_i8_i32_batch`].
///
/// # Safety
///
/// The caller must ensure the CPU supports AVX512F, AVX512BW and
/// AVX512VNNI.
#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx512f,avx512bw,avx512vnni")]
unsafe fn dot_biased_i8_i32_batch_vnni512<const N: usize>(
    w: &[i8],
    w_row_sum: i32,
    xs: [&[u8]; N],
) -> [i32; N] {
    use std::arch::x86_64::{
        _mm512_dpbusd_epi32, _mm512_loadu_si512, _mm512_reduce_add_epi32, _mm512_setzero_si512,
    };
    let n = w.len();
    let mut acc = [_mm512_setzero_si512(); N];
    let mut i = 0;
    while i + 64 <= n {
        // SAFETY: i + 64 <= n keeps every 64-byte load in bounds (the
        // debug assertion above pins xs lengths to w's).
        let vw = unsafe { _mm512_loadu_si512(w.as_ptr().add(i) as *const _) };
        for (t, x) in xs.iter().enumerate() {
            // SAFETY: same bounds as `vw` — x.len() == w.len().
            let vx = unsafe { _mm512_loadu_si512(x.as_ptr().add(i) as *const _) };
            acc[t] = _mm512_dpbusd_epi32(acc[t], vx, vw);
        }
        i += 64;
    }
    let mut out = [0i32; N];
    for (o, (a, x)) in out.iter_mut().zip(acc.into_iter().zip(xs)) {
        let mut s = _mm512_reduce_add_epi32(a);
        for j in i..n {
            s += w[j] as i32 * x[j] as i32;
        }
        *o = s - 128 * w_row_sum;
    }
    out
}

/// AVX512-VNNI batched dot (256-bit form): `vpdpbusd` fuses the unsigned
/// × signed multiply and the i32 accumulate — 32 MACs per instruction,
/// one `vpsignb + vpdpbusd` per activation row per chunk, with the
/// weight-side `vpabsb` shared by the whole batch. Same `|w| · sign(x,
/// w)` algebra as the AVX2 path (`vpdpbusd` widens the four u8×i8
/// products of each lane to i32 before summing, so there is no
/// intermediate saturation at all): bit-identical to the scalar dot for
/// activations in `[-127, 127]`.
///
/// # Safety
///
/// The caller must ensure the CPU supports AVX512VNNI and AVX512VL.
#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx2,avx512vnni,avx512vl")]
unsafe fn dot_i8_i32_batch_vnni<const N: usize>(w: &[i8], xs: [&[i8]; N]) -> [i32; N] {
    use std::arch::x86_64::{
        __m256i, _mm256_abs_epi8, _mm256_castsi256_si128, _mm256_dpbusd_epi32,
        _mm256_extracti128_si256, _mm256_loadu_si256, _mm256_setzero_si256, _mm256_sign_epi8,
        _mm_add_epi32, _mm_cvtsi128_si32, _mm_shuffle_epi32,
    };
    let n = w.len();
    let mut acc = [_mm256_setzero_si256(); N];
    let mut i = 0;
    while i + 32 <= n {
        // SAFETY: i + 32 <= n keeps every 32-byte load in bounds (the
        // debug assertion above pins xs lengths to w's).
        let vw = unsafe { _mm256_loadu_si256(w.as_ptr().add(i) as *const __m256i) };
        let vwabs = _mm256_abs_epi8(vw);
        for (t, x) in xs.iter().enumerate() {
            // SAFETY: same bounds as `vw` — x.len() == w.len().
            let vx = unsafe { _mm256_loadu_si256(x.as_ptr().add(i) as *const __m256i) };
            acc[t] = _mm256_dpbusd_epi32(acc[t], vwabs, _mm256_sign_epi8(vx, vw));
        }
        i += 32;
    }
    let mut out = [0i32; N];
    for (o, a) in out.iter_mut().zip(acc) {
        let mut s = _mm_add_epi32(_mm256_extracti128_si256(a, 1), _mm256_castsi256_si128(a));
        s = _mm_add_epi32(s, _mm_shuffle_epi32(s, 0b01_00_11_10));
        s = _mm_add_epi32(s, _mm_shuffle_epi32(s, 0b00_00_00_01));
        *o = _mm_cvtsi128_si32(s);
    }
    for (o, x) in out.iter_mut().zip(xs) {
        for j in i..n {
            *o += w[j] as i32 * x[j] as i32;
        }
    }
    out
}

/// AVX2 batched dot: per 32-byte weight chunk, `vpabsb` widens the weight
/// side once and every activation row pays one
/// `vpsignb + vpmaddubsw + vpmaddwd(1̄) + vpaddd` — 32 exact MACs per row
/// per chunk with the weight-side work shared by the whole batch.
///
/// # Safety
///
/// The caller must ensure the CPU supports AVX2 (e.g. via
/// `is_x86_feature_detected!("avx2")`).
#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx2")]
unsafe fn dot_i8_i32_batch_avx2<const N: usize>(w: &[i8], xs: [&[i8]; N]) -> [i32; N] {
    use std::arch::x86_64::{
        __m256i, _mm256_abs_epi8, _mm256_add_epi32, _mm256_castsi256_si128,
        _mm256_extracti128_si256, _mm256_loadu_si256, _mm256_madd_epi16, _mm256_maddubs_epi16,
        _mm256_set1_epi16, _mm256_setzero_si256, _mm256_sign_epi8, _mm_add_epi32,
        _mm_cvtsi128_si32, _mm_shuffle_epi32,
    };
    let n = w.len();
    let ones = _mm256_set1_epi16(1);
    let mut acc = [_mm256_setzero_si256(); N];
    let mut i = 0;
    while i + 32 <= n {
        // SAFETY: i + 32 <= n keeps every 32-byte load in bounds (the
        // debug assertion above pins xs lengths to w's).
        let vw = unsafe { _mm256_loadu_si256(w.as_ptr().add(i) as *const __m256i) };
        let vwabs = _mm256_abs_epi8(vw);
        for (t, x) in xs.iter().enumerate() {
            // SAFETY: same bounds as `vw` — x.len() == w.len().
            let vx = unsafe { _mm256_loadu_si256(x.as_ptr().add(i) as *const __m256i) };
            // |w| · sign(x, w) == w · x element-wise for |x| ≤ 127.
            let signed = _mm256_sign_epi8(vx, vw);
            let pairs = _mm256_maddubs_epi16(vwabs, signed);
            acc[t] = _mm256_add_epi32(acc[t], _mm256_madd_epi16(pairs, ones));
        }
        i += 32;
    }
    let mut out = [0i32; N];
    for (o, a) in out.iter_mut().zip(acc) {
        let mut s = _mm_add_epi32(_mm256_extracti128_si256(a, 1), _mm256_castsi256_si128(a));
        s = _mm_add_epi32(s, _mm_shuffle_epi32(s, 0b01_00_11_10));
        s = _mm_add_epi32(s, _mm_shuffle_epi32(s, 0b00_00_00_01));
        *o = _mm_cvtsi128_si32(s);
    }
    for (o, x) in out.iter_mut().zip(xs) {
        for j in i..n {
            *o += w[j] as i32 * x[j] as i32;
        }
    }
    out
}

/// Largest absolute value of the slice (0.0 when empty).
///
/// `max` over finite f32 values is associative and commutative, so the
/// vectorized lane-fold returns the bit-identical result of the scalar
/// left fold.
#[inline]
pub fn absmax(xs: &[f32]) -> f32 {
    #[cfg(target_arch = "x86_64")]
    {
        if xs.len() >= 8 && is_x86_feature_detected!("avx2") {
            // SAFETY: AVX2 support was just verified at runtime.
            return unsafe { absmax_avx2(xs) };
        }
    }
    absmax_scalar(xs)
}

/// Scalar reference absmax (also the test oracle for the SIMD path).
#[inline]
pub fn absmax_scalar(xs: &[f32]) -> f32 {
    xs.iter().fold(0.0f32, |m, &x| m.max(x.abs()))
}

/// AVX2 absmax: lane-wise `|x|` + max fold, exact parity with the scalar
/// fold (including NaN handling — see the operand-order comment below).
///
/// # Safety
///
/// The caller must ensure the CPU supports AVX2 (e.g. via
/// `is_x86_feature_detected!("avx2")`).
#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx2")]
unsafe fn absmax_avx2(xs: &[f32]) -> f32 {
    use std::arch::x86_64::{
        _mm256_andnot_ps, _mm256_castps256_ps128, _mm256_extractf128_ps, _mm256_loadu_ps,
        _mm256_max_ps, _mm256_set1_ps, _mm256_setzero_ps, _mm_cvtss_f32, _mm_max_ps, _mm_movehl_ps,
        _mm_shuffle_ps,
    };
    let sign_mask = _mm256_set1_ps(-0.0);
    let mut acc = _mm256_setzero_ps();
    let mut i = 0;
    while i + 8 <= xs.len() {
        // SAFETY: i + 8 <= len keeps the 32-byte load in bounds.
        let v = unsafe { _mm256_loadu_ps(xs.as_ptr().add(i)) };
        // Operand order matters for NaN parity with the scalar fold:
        // maxps returns its *second* operand when either is NaN, so the
        // data must be first and the accumulator second — a NaN element
        // is then ignored (like `f32::max`) instead of poisoning the
        // lane for the rest of the fold.
        acc = _mm256_max_ps(_mm256_andnot_ps(sign_mask, v), acc);
        i += 8;
    }
    let mut m = _mm_max_ps(_mm256_extractf128_ps(acc, 1), _mm256_castps256_ps128(acc));
    m = _mm_max_ps(m, _mm_movehl_ps(m, m));
    m = _mm_max_ps(m, _mm_shuffle_ps(m, m, 0b01));
    let mut best = _mm_cvtss_f32(m);
    while i < xs.len() {
        best = best.max(xs[i].abs());
        i += 1;
    }
    best
}

/// Quantizes `src` under `scale` into `dst` with round-to-nearest-even
/// and saturation to ±127 — element-for-element the math of
/// `quant::quantize_value` (`(x / scale).round_ties_even().clamp(…)`),
/// vectorized. Division, rounding and clamping are lane-wise, so each
/// output byte is bit-identical to the scalar loop.
///
/// # Panics
///
/// Panics if `src` and `dst` lengths differ.
#[inline]
pub fn quantize_slice(src: &[f32], scale: f32, dst: &mut [i8]) {
    assert_eq!(src.len(), dst.len(), "quantize operand length mismatch");
    #[cfg(target_arch = "x86_64")]
    {
        if src.len() >= 8 && is_x86_feature_detected!("avx2") {
            // SAFETY: AVX2 support was just verified at runtime.
            unsafe { quantize_slice_avx2(src, scale, dst) };
            return;
        }
    }
    quantize_slice_scalar(src, scale, dst);
}

/// Scalar reference quantization loop (also the SIMD test oracle).
#[inline]
pub fn quantize_slice_scalar(src: &[f32], scale: f32, dst: &mut [i8]) {
    for (d, &x) in dst.iter_mut().zip(src) {
        let q = (x / scale).round_ties_even();
        *d = q.clamp(-127.0, 127.0) as i8;
    }
}

/// AVX2 quantization: lane-wise divide, ties-even round, clamp and
/// narrow — bit-identical to [`quantize_slice_scalar`].
///
/// # Safety
///
/// The caller must ensure the CPU supports AVX2 (e.g. via
/// `is_x86_feature_detected!("avx2")`); `src` and `dst` must be the same
/// length (checked by the [`quantize_slice`] dispatcher).
#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx2")]
unsafe fn quantize_slice_avx2(src: &[f32], scale: f32, dst: &mut [i8]) {
    use std::arch::x86_64::{
        _mm256_cvtps_epi32, _mm256_div_ps, _mm256_loadu_ps, _mm256_max_ps, _mm256_min_ps,
        _mm256_round_ps, _mm256_set1_ps, _mm256_storeu_si256, _MM_FROUND_NO_EXC,
        _MM_FROUND_TO_NEAREST_INT,
    };
    let vscale = _mm256_set1_ps(scale);
    let lo = _mm256_set1_ps(-127.0);
    let hi = _mm256_set1_ps(127.0);
    let n = src.len();
    let mut i = 0;
    let mut lanes = [0i32; 8];
    while i + 8 <= n {
        // SAFETY: i + 8 <= n keeps the load in bounds; `lanes` is 32 bytes.
        let v = unsafe { _mm256_loadu_ps(src.as_ptr().add(i)) };
        let q = _mm256_round_ps::<{ _MM_FROUND_TO_NEAREST_INT | _MM_FROUND_NO_EXC }>(
            _mm256_div_ps(v, vscale),
        );
        let c = _mm256_max_ps(lo, _mm256_min_ps(hi, q));
        // The value is already integral and within i8 range, so the
        // i32 conversion and narrowing cast are exact.
        // SAFETY: `lanes` is a 32-byte local, exactly one store wide.
        unsafe { _mm256_storeu_si256(lanes.as_mut_ptr() as *mut _, _mm256_cvtps_epi32(c)) };
        for (d, &l) in dst[i..i + 8].iter_mut().zip(&lanes) {
            *d = l as i8;
        }
        i += 8;
    }
    quantize_slice_scalar(&src[i..], scale, &mut dst[i..]);
}

/// Applies GELU elementwise in place — the vectorized twin of
/// [`crate::activation::gelu`]. The workspace compiles for baseline
/// x86-64 (SSE2), where the branchless polynomial cannot auto-vectorize
/// (`roundps` is SSE4.1+), so the AVX2 path spells out the identical
/// operation sequence with intrinsics: every lane performs the exact f32
/// multiplies, adds, min, division, ties-even round and sign transfer of
/// the scalar formula, so results are **bit-identical** to the scalar
/// loop.
#[inline]
pub fn gelu_slice(xs: &mut [f32]) {
    #[cfg(target_arch = "x86_64")]
    {
        if xs.len() >= 8 && is_x86_feature_detected!("avx2") {
            // SAFETY: AVX2 support was just verified at runtime.
            unsafe { gelu_slice_avx2(xs) };
            return;
        }
    }
    for x in xs.iter_mut() {
        *x = crate::activation::gelu(*x);
    }
}

/// AVX2 GELU: the scalar polynomial spelled out lane-wise — see
/// [`gelu_slice`] for the bit-exactness argument.
///
/// # Safety
///
/// The caller must ensure the CPU supports AVX2 (e.g. via
/// `is_x86_feature_detected!("avx2")`).
#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx2")]
unsafe fn gelu_slice_avx2(xs: &mut [f32]) {
    use std::arch::x86_64::{
        _mm256_add_epi32, _mm256_add_ps, _mm256_and_ps, _mm256_andnot_ps, _mm256_castsi256_ps,
        _mm256_cvtps_epi32, _mm256_div_ps, _mm256_loadu_ps, _mm256_min_ps, _mm256_mul_ps,
        _mm256_or_ps, _mm256_round_ps, _mm256_set1_epi32, _mm256_set1_ps, _mm256_slli_epi32,
        _mm256_storeu_ps, _mm256_sub_ps, _MM_FROUND_NO_EXC, _MM_FROUND_TO_NEAREST_INT,
    };
    const SQRT_2_OVER_PI: f32 = 0.797_884_6;
    let half = _mm256_set1_ps(0.5);
    let one = _mm256_set1_ps(1.0);
    let c = _mm256_set1_ps(0.044_715);
    let k = _mm256_set1_ps(SQRT_2_OVER_PI);
    let nine = _mm256_set1_ps(9.0);
    let neg2 = _mm256_set1_ps(-2.0);
    let log2e = _mm256_set1_ps(std::f32::consts::LOG2_E);
    let ln2 = _mm256_set1_ps(std::f32::consts::LN_2);
    let sign_mask = _mm256_set1_ps(-0.0);
    let bias = _mm256_set1_epi32(127);
    // Taylor coefficients of exp, innermost first (matching the scalar
    // Horner nesting exactly).
    let c6 = _mm256_set1_ps(1.0 / 720.0);
    let c5 = _mm256_set1_ps(1.0 / 120.0);
    let c4 = _mm256_set1_ps(1.0 / 24.0);
    let c3 = _mm256_set1_ps(1.0 / 6.0);
    let c2 = _mm256_set1_ps(0.5);

    let n = xs.len();
    let mut i = 0;
    while i + 8 <= n {
        // SAFETY: i + 8 <= n keeps the 32-byte load/store in bounds.
        let x = unsafe { _mm256_loadu_ps(xs.as_ptr().add(i)) };
        // u = K * (x + C·x·x·x), grouped ((C·x)·x)·x like the scalar.
        let x3 = _mm256_mul_ps(_mm256_mul_ps(_mm256_mul_ps(c, x), x), x);
        let u = _mm256_mul_ps(k, _mm256_add_ps(x, x3));
        // a = min(|u|, 9); t = exp(-2a) via the shared polynomial.
        let a = _mm256_min_ps(_mm256_andnot_ps(sign_mask, u), nine);
        let y = _mm256_mul_ps(_mm256_mul_ps(neg2, a), log2e);
        let nv = _mm256_round_ps::<{ _MM_FROUND_TO_NEAREST_INT | _MM_FROUND_NO_EXC }>(y);
        let g = _mm256_mul_ps(_mm256_sub_ps(y, nv), ln2);
        let mut p = _mm256_add_ps(c5, _mm256_mul_ps(g, c6));
        p = _mm256_add_ps(c4, _mm256_mul_ps(g, p));
        p = _mm256_add_ps(c3, _mm256_mul_ps(g, p));
        p = _mm256_add_ps(c2, _mm256_mul_ps(g, p));
        p = _mm256_add_ps(one, _mm256_mul_ps(g, p));
        p = _mm256_add_ps(one, _mm256_mul_ps(g, p));
        // 2^n through the exponent field (n is integral and in range, so
        // the nearest-int conversion is exact).
        let scale = _mm256_castsi256_ps(_mm256_slli_epi32::<23>(_mm256_add_epi32(
            _mm256_cvtps_epi32(nv),
            bias,
        )));
        let t = _mm256_mul_ps(p, scale);
        // tanh = copysign((1 - t) / (1 + t), u)
        let r = _mm256_div_ps(_mm256_sub_ps(one, t), _mm256_add_ps(one, t));
        let tanh = _mm256_or_ps(_mm256_andnot_ps(sign_mask, r), _mm256_and_ps(sign_mask, u));
        // gelu = (0.5 · x) · (1 + tanh)
        let out = _mm256_mul_ps(_mm256_mul_ps(half, x), _mm256_add_ps(one, tanh));
        // SAFETY: same bounds as the load above.
        unsafe { _mm256_storeu_ps(xs.as_mut_ptr().add(i), out) };
        i += 8;
    }
    for x in xs[i..].iter_mut() {
        *x = crate::activation::gelu(*x);
    }
}

/// `acc[j] += v[j] as f32 * s` — the attention value-mixing update. The
/// `d_head` accumulator lanes are independent, so vectorizing across `j`
/// preserves each lane's scalar operation order exactly (one multiply
/// rounding, one add rounding per element; no FMA contraction).
///
/// # Panics
///
/// Panics if `acc` and `v` lengths differ (debug builds).
#[inline]
pub fn accumulate_scaled_i8(acc: &mut [f32], v: &[i8], s: f32) {
    debug_assert_eq!(acc.len(), v.len(), "accumulate operand length mismatch");
    #[cfg(target_arch = "x86_64")]
    {
        if acc.len() >= 8 && is_x86_feature_detected!("avx2") {
            // SAFETY: AVX2 support was just verified at runtime.
            unsafe { accumulate_scaled_i8_avx2(acc, v, s) };
            return;
        }
    }
    accumulate_scaled_i8_scalar(acc, v, s);
}

/// Scalar reference accumulate loop (also the SIMD test oracle).
#[inline]
pub fn accumulate_scaled_i8_scalar(acc: &mut [f32], v: &[i8], s: f32) {
    for (a, &x) in acc.iter_mut().zip(v) {
        *a += x as f32 * s;
    }
}

/// AVX2 scaled accumulate: widen 8 int8 lanes to f32, one multiply and
/// one add rounding per lane — bit-identical to the scalar loop.
///
/// # Safety
///
/// The caller must ensure the CPU supports AVX2 (e.g. via
/// `is_x86_feature_detected!("avx2")`).
#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx2")]
unsafe fn accumulate_scaled_i8_avx2(acc: &mut [f32], v: &[i8], s: f32) {
    use std::arch::x86_64::{
        _mm256_add_ps, _mm256_cvtepi32_ps, _mm256_cvtepi8_epi32, _mm256_loadu_ps, _mm256_mul_ps,
        _mm256_set1_ps, _mm256_storeu_ps, _mm_loadl_epi64,
    };
    let vs = _mm256_set1_ps(s);
    let n = acc.len().min(v.len());
    let mut i = 0;
    while i + 8 <= n {
        // SAFETY: i + 8 <= n keeps the 8-byte int8 load and the 32-byte
        // f32 load/store in bounds.
        let v8 = unsafe { _mm_loadl_epi64(v.as_ptr().add(i) as *const _) };
        let vf = _mm256_cvtepi32_ps(_mm256_cvtepi8_epi32(v8));
        // SAFETY: same bounds as above for both the load and the store.
        unsafe {
            let a = _mm256_loadu_ps(acc.as_ptr().add(i));
            _mm256_storeu_ps(
                acc.as_mut_ptr().add(i),
                _mm256_add_ps(a, _mm256_mul_ps(vf, vs)),
            );
        }
        i += 8;
    }
    accumulate_scaled_i8_scalar(&mut acc[i..], &v[i..], s);
}

#[cfg(test)]
mod tests {
    use super::*;

    fn vecs(len: usize, seed: usize) -> (Vec<i8>, Vec<i8>) {
        (
            (0..len).map(|i| ((i * 37 + seed) % 255) as i8).collect(),
            (0..len)
                .map(|i| ((i * 91 + seed * 3) % 251) as i8)
                .collect(),
        )
    }

    #[test]
    fn batch_dot_matches_per_row_dot_exactly() {
        // The batched maddubs kernel must agree with the per-row dot for
        // every group size, length (vector body + tail) and sign pattern;
        // activations stay in [-127, 127] per the contract, the weight
        // row exercises the full i8 range including -128.
        for len in [0usize, 1, 31, 32, 33, 64, 100, 1024] {
            let w: Vec<i8> = (0..len).map(|i| ((i * 37) % 256) as u8 as i8).collect();
            let xs: Vec<Vec<i8>> = (0..8)
                .map(|t| {
                    (0..len)
                        .map(|i| (((i * 91 + t * 13) % 255) as i16 - 127) as i8)
                        .collect()
                })
                .collect();
            let expect: Vec<i32> = xs.iter().map(|x| dot_i8_i32_scalar(&w, x)).collect();
            let got8 = dot_i8_i32_batch::<8>(&w, std::array::from_fn(|k| xs[k].as_slice()));
            assert_eq!(got8.to_vec(), expect, "x8 len {len}");
            let got4 = dot_i8_i32_batch::<4>(&w, std::array::from_fn(|k| xs[k].as_slice()));
            assert_eq!(got4.to_vec(), expect[..4].to_vec(), "x4 len {len}");
            let got2 = dot_i8_i32_batch::<2>(&w, std::array::from_fn(|k| xs[k].as_slice()));
            assert_eq!(got2.to_vec(), expect[..2].to_vec(), "x2 len {len}");
        }
    }

    #[test]
    fn biased_batch_dot_is_exact_over_full_i8_range() {
        // The bias identity must hold for every i8 value — including
        // -128 on both sides — at vector-body and tail lengths.
        for len in [0usize, 1, 63, 64, 65, 128, 1000] {
            let w: Vec<i8> = (0..len).map(|i| ((i * 37) % 256) as u8 as i8).collect();
            let xs: Vec<Vec<i8>> = (0..8)
                .map(|t| {
                    (0..len)
                        .map(|i| ((i * 91 + t * 13) % 256) as u8 as i8)
                        .collect()
                })
                .collect();
            let sum = row_sum_i8(&w);
            let mut xu = Vec::new();
            let biased: Vec<Vec<u8>> = xs
                .iter()
                .map(|x| {
                    bias_to_unsigned(x, &mut xu);
                    xu.clone()
                })
                .collect();
            let expect: Vec<i32> = xs.iter().map(|x| dot_i8_i32_scalar(&w, x)).collect();
            let got = dot_biased_i8_i32_batch::<8>(
                &w,
                sum,
                std::array::from_fn(|k| biased[k].as_slice()),
            );
            assert_eq!(got.to_vec(), expect, "len {len}");
        }
    }

    #[test]
    fn gelu_slice_matches_scalar_gelu_bitwise() {
        // Vector body + scalar tail, signs, zeros, saturation range.
        for len in [0usize, 1, 7, 8, 9, 64, 1000] {
            let mut buf: Vec<f32> = (0..len)
                .map(|i| ((i as f32 * 0.37).sin() * 6.0) + if i % 3 == 0 { -0.5 } else { 0.25 })
                .collect();
            if len > 4 {
                buf[1] = 0.0;
                buf[2] = -0.0;
                buf[3] = 42.0;
                buf[4] = -42.0;
            }
            let expect: Vec<f32> = buf.iter().map(|&x| crate::activation::gelu(x)).collect();
            gelu_slice(&mut buf);
            for (i, (a, e)) in buf.iter().zip(&expect).enumerate() {
                assert_eq!(a.to_bits(), e.to_bits(), "len {len} index {i}: {a} vs {e}");
            }
        }
    }

    #[test]
    fn batch_dot_saturation_corner_is_exact() {
        // Worst-case magnitudes: |w| = 128 against |x| = 127 everywhere.
        // Pair sums reach 2·128·127 = 32512 < 2^15: no i16 saturation.
        let w = vec![-128i8; 64];
        let hot = vec![127i8; 64];
        let cold = vec![-127i8; 64];
        let out = dot_i8_i32_batch::<2>(&w, [&hot, &cold]);
        assert_eq!(out, [-128 * 127 * 64, 128 * 127 * 64]);
    }

    #[test]
    fn dispatch_matches_scalar_at_every_length() {
        // Cover the vector body, the scalar tail, and sub-vector sizes.
        for len in 0..=67 {
            let (a, b) = vecs(len, len);
            assert_eq!(dot_i8_i32(&a, &b), dot_i8_i32_scalar(&a, &b), "len {len}");
        }
        for len in [128usize, 192, 1024, 1025, 4096] {
            let (a, b) = vecs(len, 7);
            assert_eq!(dot_i8_i32(&a, &b), dot_i8_i32_scalar(&a, &b), "len {len}");
        }
    }

    #[test]
    fn saturating_inputs_accumulate_exactly() {
        // ±127 everywhere: the largest magnitude the quantizer emits.
        let a = vec![127i8; 1000];
        let b = vec![-127i8; 1000];
        assert_eq!(dot_i8_i32(&a, &b), -127 * 127 * 1000);
        assert_eq!(dot_i8_i32(&a, &a), 127 * 127 * 1000);
    }

    #[test]
    fn empty_dot_is_zero() {
        assert_eq!(dot_i8_i32(&[], &[]), 0);
    }

    fn f32s(len: usize, seed: usize) -> Vec<f32> {
        (0..len)
            .map(|i| ((i * 13 + seed) as f32 * 0.177).sin() * (seed as f32 + 0.5))
            .collect()
    }

    #[test]
    fn absmax_matches_scalar_at_every_length() {
        for len in 0..=35 {
            let xs = f32s(len, len + 1);
            assert_eq!(absmax(&xs), absmax_scalar(&xs), "len {len}");
        }
        let big = f32s(1027, 3);
        assert_eq!(absmax(&big), absmax_scalar(&big));
    }

    #[test]
    fn absmax_ignores_nan_like_the_scalar_fold() {
        // `f32::max` skips NaN operands; the vectorized fold must too,
        // even when the NaN lands mid-lane after a peak was recorded.
        let mut xs = vec![0.5f32; 32];
        xs[2] = 1000.0;
        xs[10] = f32::NAN; // same lane as the peak, later iteration
        assert_eq!(absmax(&xs), absmax_scalar(&xs));
        assert_eq!(absmax(&xs), 1000.0);
    }

    #[test]
    fn absmax_sees_negative_peaks_and_tail() {
        let mut xs = vec![0.25f32; 64];
        xs[63] = -9.5; // last lane of the vector body
        assert_eq!(absmax(&xs), 9.5);
        let mut ys = vec![0.1f32; 65];
        ys[64] = -3.25; // scalar tail element
        assert_eq!(absmax(&ys), 3.25);
    }

    #[test]
    fn quantize_slice_matches_scalar_bitwise() {
        for len in [0usize, 1, 7, 8, 9, 16, 63, 64, 200] {
            let xs = f32s(len, len + 2);
            for scale in [0.01f32, 0.33, 1.0, 7.5] {
                let mut a = vec![0i8; len];
                let mut b = vec![0i8; len];
                quantize_slice(&xs, scale, &mut a);
                quantize_slice_scalar(&xs, scale, &mut b);
                assert_eq!(a, b, "len {len} scale {scale}");
            }
        }
    }

    #[test]
    fn quantize_slice_saturates_and_rounds_ties_even() {
        let xs = [1e9f32, -1e9, 0.5, 1.5, -0.5, -2.5, 0.0, 3.0, 4.4];
        let mut out = vec![0i8; xs.len()];
        quantize_slice(&xs, 1.0, &mut out);
        assert_eq!(out, vec![127, -127, 0, 2, 0, -2, 0, 3, 4]);
    }

    #[test]
    fn accumulate_scaled_matches_scalar_bitwise() {
        for len in [1usize, 7, 8, 9, 16, 64, 129] {
            let v = vecs(len, len).0;
            let mut a = f32s(len, 4);
            let mut b = a.clone();
            accumulate_scaled_i8(&mut a, &v, 0.0173);
            accumulate_scaled_i8_scalar(&mut b, &v, 0.0173);
            assert_eq!(a, b, "len {len}");
        }
    }
}
