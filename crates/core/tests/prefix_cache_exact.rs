//! The prefix-cache bit-exactness wall.
//!
//! Content-addressed prefix sharing changes *where* prefill reads KV
//! from — cached pages mapped read-only instead of recomputed — and
//! never *what* any sequence computes: a mapped page holds exactly the
//! int8 KV bytes the suffix-only prefill would have produced, and
//! copy-on-write forks a shared boundary page before the first write
//! through it. So for any multi-turn chat workload and any interleaving
//! of admit/decode/preempt/resume, a cache-enabled engine must emit
//! token streams byte-identical to the same schedule with the cache
//! disabled — across node counts, page sizes, and attention kernels.
//!
//! This suite drives that differential: random conversations sharing a
//! system prompt (so hits cross conversations, not just turns), scripted
//! lifecycle interleavings over an oversubscribed pool (so LRU eviction
//! of pinned chains fires under pressure), and a deterministic
//! sequential run that additionally pins the cache *working* (hits and
//! reused tokens strictly positive).

use proptest::prelude::*;

use looplynx_core::backend::{
    BackendError, FunctionalBackend, InferenceBackend, PreemptedSeq, SamplerSpec,
};
use looplynx_core::engine::DistributedGpt2;
use looplynx_core::router::RingMode;
use looplynx_model::attention::AttnMode;
use looplynx_model::config::ModelConfig;
use looplynx_model::gpt2::Gpt2Model;
use looplynx_model::prefix::PrefixIndexStats;

const SAMPLER: SamplerSpec = SamplerSpec::TopK {
    k: 4,
    temperature: 0.9,
};
const TURNS: usize = 3;
const CAPACITY: usize = 48;

/// One conversation's position in the scripted lifecycle.
enum ConvState {
    /// The next turn's prompt (= full history) is ready to admit.
    Waiting,
    Resident {
        slot: usize,
    },
    Preempted {
        seq: PreemptedSeq,
    },
    Done,
}

/// A multi-turn conversation: each turn's prompt is the entire history
/// (system prompt, prior user/assistant spans, this turn's user span),
/// so consecutive turns re-prefill everything a cached run can share.
struct Conv {
    id: u64,
    history: Vec<u32>,
    users: Vec<Vec<u32>>,
    turn: usize,
    target: usize,
    turn_tokens: Vec<u32>,
    out: Vec<u32>,
    state: ConvState,
}

impl Conv {
    /// The context a resume must re-prefill: history plus every token
    /// produced this turn except the last (the next decode input).
    fn resume_context(&self) -> Vec<u32> {
        let mut c = self.history.clone();
        c.extend_from_slice(&self.turn_tokens[..self.turn_tokens.len() - 1]);
        c
    }

    /// Banks a finished turn and stages the next one (or finishes).
    fn finish_turn(&mut self) {
        let spoken = std::mem::take(&mut self.turn_tokens);
        self.history.extend_from_slice(&spoken);
        self.turn += 1;
        if self.turn < TURNS {
            self.history.extend_from_slice(&self.users[self.turn]);
            self.state = ConvState::Waiting;
        } else {
            self.state = ConvState::Done;
        }
    }
}

/// Deterministic conversation material (tiny xorshift; no rand
/// dependency). All conversations open with the same system prompt so
/// prefix hits cross conversation boundaries.
fn conversations(seed: u64, n: usize, vocab: u32) -> Vec<Conv> {
    let mut s = seed | 1;
    let mut next = move || {
        s ^= s << 13;
        s ^= s >> 7;
        s ^= s << 17;
        s
    };
    let system: Vec<u32> = (0..6).map(|_| (next() % vocab as u64) as u32).collect();
    (0..n)
        .map(|i| {
            let users: Vec<Vec<u32>> = (0..TURNS)
                .map(|_| {
                    let len = 2 + (next() % 3) as usize; // 2..=4
                    (0..len).map(|_| (next() % vocab as u64) as u32).collect()
                })
                .collect();
            let mut history = system.clone();
            history.extend_from_slice(&users[0]);
            Conv {
                id: i as u64,
                history,
                users,
                turn: 0,
                target: 2 + i % 3,
                turn_tokens: Vec::new(),
                out: Vec::new(),
                state: ConvState::Waiting,
            }
        })
        .collect()
}

/// Advances every resident one token; turns reaching their target are
/// released (which, on a cached engine, registers the chain).
fn decode_residents(b: &mut FunctionalBackend, convs: &mut [Conv]) -> Result<(), BackendError> {
    let idx: Vec<usize> = convs
        .iter()
        .enumerate()
        .filter(|(_, c)| matches!(c.state, ConvState::Resident { .. }))
        .map(|(i, _)| i)
        .collect();
    if idx.is_empty() {
        return Ok(());
    }
    let slots: Vec<usize> = idx
        .iter()
        .map(|&i| match convs[i].state {
            ConvState::Resident { slot } => slot,
            _ => unreachable!(),
        })
        .collect();
    let out = b.decode_batch(&slots)?;
    let tokens = out.tokens.expect("functional backend produces tokens");
    for (j, &i) in idx.iter().enumerate() {
        convs[i].turn_tokens.push(tokens[j]);
        convs[i].out.push(tokens[j]);
        if convs[i].turn_tokens.len() == convs[i].target {
            b.release(slots[j]).expect("resident owns its slot");
            convs[i].finish_turn();
        }
    }
    Ok(())
}

/// Admits `convs[i]`'s staged turn. Returns false on page pressure.
fn admit(b: &mut FunctionalBackend, c: &mut Conv) -> Result<bool, BackendError> {
    let prompt = c.history.clone();
    let id = c.id * 16 + c.turn as u64;
    match b.prefill(prompt.len(), Some(&prompt), id) {
        Ok(p) => {
            let first = p.first_token.unwrap();
            c.turn_tokens.push(first);
            c.out.push(first);
            if c.turn_tokens.len() == c.target {
                b.release(p.slot).expect("fresh resident owns its slot");
                c.finish_turn();
            } else {
                c.state = ConvState::Resident { slot: p.slot };
            }
            Ok(true)
        }
        Err(e) if e.is_resource_pressure() => Ok(false),
        Err(e) => Err(e),
    }
}

/// Runs one full chat workload to completion under a scripted
/// interleaving, returning each conversation's produced tokens and the
/// final cache statistics (`None` when the cache is disabled).
#[allow(clippy::too_many_arguments)]
fn run_chat(
    model: &Gpt2Model,
    nodes: usize,
    page_tokens: usize,
    pool: usize,
    mode: AttnMode,
    cache: bool,
    seed: u64,
    ops: &[u8],
) -> (Vec<Vec<u32>>, Option<PrefixIndexStats>) {
    let cfg = ModelConfig::tiny();
    let mut engine = DistributedGpt2::with_paged_slots(
        model,
        nodes,
        RingMode::Exact,
        3,
        CAPACITY,
        page_tokens,
        pool,
    )
    .unwrap();
    engine.set_attn_mode(mode);
    if cache {
        engine.enable_prefix_cache();
    }
    let mut b = FunctionalBackend::new(engine, SAMPLER);
    let mut convs = conversations(seed, 3, cfg.vocab as u32);

    // Scripted phase: ops drive the lifecycle; invalid or
    // pressure-blocked ops are skipped (the drain below finishes all).
    for &op in ops {
        match op {
            0 => {
                if let Some(c) = convs
                    .iter_mut()
                    .find(|c| matches!(c.state, ConvState::Waiting))
                {
                    admit(&mut b, c).expect("admission fails only on pressure");
                }
            }
            1 => {
                if let Err(e) = decode_residents(&mut b, &mut convs) {
                    assert!(e.is_resource_pressure(), "decode failed: {e}");
                }
            }
            2 => {
                // Preempt the last resident; its released pages stay
                // indexed, so the resume below re-maps them.
                if let Some(c) = convs
                    .iter_mut()
                    .rev()
                    .find(|c| matches!(c.state, ConvState::Resident { .. }))
                {
                    let slot = match c.state {
                        ConvState::Resident { slot } => slot,
                        _ => unreachable!(),
                    };
                    let seq = b.preempt(slot).expect("resident is preemptible");
                    c.state = ConvState::Preempted { seq };
                }
            }
            _ => {
                if let Some(i) = convs
                    .iter()
                    .position(|c| matches!(c.state, ConvState::Preempted { .. }))
                {
                    let context = convs[i].resume_context();
                    let seq = match &convs[i].state {
                        ConvState::Preempted { seq } => seq,
                        _ => unreachable!(),
                    };
                    match b.resume(seq, Some(&context)) {
                        Ok(p) => convs[i].state = ConvState::Resident { slot: p.slot },
                        Err(e) => {
                            assert!(e.is_resource_pressure(), "resume failed: {e}")
                        }
                    }
                }
            }
        }
    }

    // Drain phase: finish everything. Page pressure preempts the last
    // resident; a lone sequence always fits once the cache evicts.
    loop {
        if convs.iter().all(|c| matches!(c.state, ConvState::Done)) {
            break;
        }
        if convs
            .iter()
            .any(|c| matches!(c.state, ConvState::Resident { .. }))
        {
            if let Err(e) = decode_residents(&mut b, &mut convs) {
                assert!(e.is_resource_pressure(), "drain decode failed: {e}");
                let c = convs
                    .iter_mut()
                    .rev()
                    .find(|c| matches!(c.state, ConvState::Resident { .. }))
                    .expect("pressure implies a resident");
                let slot = match c.state {
                    ConvState::Resident { slot } => slot,
                    _ => unreachable!(),
                };
                let seq = b.preempt(slot).expect("resident is preemptible");
                c.state = ConvState::Preempted { seq };
            }
            continue;
        }
        if let Some(i) = convs
            .iter()
            .position(|c| matches!(c.state, ConvState::Preempted { .. }))
        {
            let context = convs[i].resume_context();
            let seq = match &convs[i].state {
                ConvState::Preempted { seq } => seq,
                _ => unreachable!(),
            };
            let p = b.resume(seq, Some(&context)).expect("lone resume fits");
            convs[i].state = ConvState::Resident { slot: p.slot };
        } else if let Some(c) = convs
            .iter_mut()
            .find(|c| matches!(c.state, ConvState::Waiting))
        {
            let ok = admit(&mut b, c).expect("admission fails only on pressure");
            assert!(ok, "lone admission fits an empty pool");
        }
    }

    let stats = b.engine().prefix_stats();
    (convs.into_iter().map(|c| c.out).collect(), stats)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(10))]

    /// For any chat workload, any admit/decode/preempt/resume
    /// interleaving, any node count, page size, and attention kernel:
    /// the cache-enabled run's token streams are bit-identical to the
    /// cache-disabled run of the same schedule.
    #[test]
    fn cached_chat_matches_uncached_bitwise(
        ops in proptest::collection::vec(0u8..4, 0..40),
        seed in any::<u64>(),
        nodes_idx in 0usize..3,
        page_idx in 0usize..3,
        fused in any::<bool>(),
    ) {
        let nodes = [1usize, 2, 4][nodes_idx];
        let page_tokens = [2usize, 4, 8][page_idx];
        let mode = if fused { AttnMode::Fused } else { AttnMode::Materialized };
        let model = Gpt2Model::synthetic(&ModelConfig::tiny(), 2024);

        // Tight pool: big enough that one sequence always fits after
        // eviction, small enough that pinned chains must be evicted.
        let pool = CAPACITY.div_ceil(page_tokens) + 4;

        let (plain, none) =
            run_chat(&model, nodes, page_tokens, pool, mode, false, seed, &ops);
        let (cached, stats) =
            run_chat(&model, nodes, page_tokens, pool, mode, true, seed, &ops);

        prop_assert!(none.is_none(), "cache-off run must report no stats");
        let stats = stats.expect("cache-on run reports stats");
        prop_assert!(stats.lookups > 0, "every admission consults the index");
        for (i, (got, want)) in cached.iter().zip(&plain).enumerate() {
            prop_assert_eq!(
                got, want,
                "conversation {} diverged ({} nodes, {}-token pages, {:?})",
                i, nodes, page_tokens, mode
            );
        }
    }
}

/// The deterministic sequential schedule (admit → decode to target →
/// release, one turn at a time) on a roomy pool: outputs still match the
/// uncached run, and the cache demonstrably *works* — turn N+1 hits the
/// chain turn N registered, reusing a strictly positive token count.
#[test]
fn sequential_multi_turn_chat_hits_and_stays_exact() {
    let model = Gpt2Model::synthetic(&ModelConfig::tiny(), 2024);
    for nodes in [1usize, 2] {
        let (plain, _) = run_chat(&model, nodes, 4, 32, AttnMode::Materialized, false, 99, &[]);
        let (cached, stats) = run_chat(&model, nodes, 4, 32, AttnMode::Materialized, true, 99, &[]);
        assert_eq!(cached, plain, "{nodes}-node sequential chat diverged");

        let stats = stats.expect("cache-on run reports stats");
        assert!(stats.hits > 0, "follow-up turns must hit the cache");
        assert!(stats.reused_tokens > 0, "hits must reuse a positive span");
        assert!(stats.inserted > 0, "releases must register chains");
    }
}
