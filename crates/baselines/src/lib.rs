//! # looplynx-baselines — comparator models
//!
//! The three systems the LoopLynx paper compares against, rebuilt as
//! analytical executors calibrated to Table I platform constants:
//!
//! * [`gpu`] — Nvidia A100 running GPT-2 under torch-int W8A8: per-kernel
//!   launch overhead dominates serial decode; batched prefill amortizes it.
//! * [`temporal`] — DFX-like temporal architecture (Hong et al., MICRO'22):
//!   instruction-driven, fp16 weights, serialized read→compute→write.
//! * [`spatial`] — the spatial dataflow architecture of Chen et al. (TRETS
//!   2024): all operators instantiated, but decode cannot form the
//!   task-level pipeline, leaving most kernels idle.
//!
//! Every model exposes per-token latency, per-run energy, and (for the
//! FPGA baselines) the resource row of the paper's Table II.
//!
//! # Example
//!
//! ```
//! use looplynx_baselines::gpu::A100Model;
//! use looplynx_model::ModelConfig;
//!
//! let gpu = A100Model::paper_baseline();
//! let run = gpu.generation(&ModelConfig::gpt2_medium(), 32, 512);
//! assert!(run.total_ms > 0.0);
//! ```

#![forbid(unsafe_code)]
#![deny(missing_docs)]
#![deny(missing_debug_implementations)]

pub mod gpu;
pub mod report;
pub mod spatial;
pub mod temporal;

pub use gpu::A100Model;
pub use report::FpgaBaselineReport;
pub use spatial::SpatialArch;
pub use temporal::TemporalArch;
