// Negative fixture for `safety_comment`: undocumented unsafe.

fn undocumented(p: *const u8) -> u8 {
    unsafe { *p }
}

unsafe fn also_undocumented(p: *const u8) -> u8 {
    *p
}
