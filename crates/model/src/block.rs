//! One transformer block on the W8A8 path.
//!
//! The stage sequence here is exactly the scheduler's stage list in the
//! accelerator (paper Fig. 3(c)): LN1 → QKV projection (fused MP kernel) →
//! MHA (fused MHA kernel) → output projection (MP again) → residual →
//! LN2 → FC1 (MP) → GELU → FC2 (MP) → residual. Keeping the functional
//! model stage-for-stage aligned with the hardware schedule is what lets
//! the engine attach cycle counts to real computation.

use looplynx_tensor::activation::gelu_vec;
use looplynx_tensor::norm::{layernorm, residual_add};
use looplynx_tensor::quant::quantize_vec;

use crate::attention::{attend_all, attend_all_fused, AttnMode};
use crate::config::ModelConfig;
use crate::kv_cache::LayerKvCache;
use crate::weights::BlockWeights;

/// Runs one token through one transformer block.
///
/// Appends the token's K/V to `cache` and returns the block output. `pos`
/// is the token's absolute position (the cache must hold exactly `pos`
/// earlier tokens on entry).
///
/// # Panics
///
/// Panics if `x.len() != cfg.d_model` or the cache length disagrees with
/// `pos`.
pub fn block_forward(
    x: &[f32],
    w: &BlockWeights,
    cache: &mut LayerKvCache,
    cfg: &ModelConfig,
    pos: usize,
) -> Vec<f32> {
    block_forward_mode(x, w, cache, cfg, pos, AttnMode::Materialized)
}

/// [`block_forward`] with an explicit attention kernel; the MHA stage
/// runs materialized or fused per `mode`, everything else is identical.
pub fn block_forward_mode(
    x: &[f32],
    w: &BlockWeights,
    cache: &mut LayerKvCache,
    cfg: &ModelConfig,
    pos: usize,
    mode: AttnMode,
) -> Vec<f32> {
    assert_eq!(x.len(), cfg.d_model, "block input dimension");
    assert_eq!(cache.len(), pos, "cache out of step with position");
    let d = cfg.d_model;

    // LN1 (critical path, f32) then quantize for the MP kernel.
    let h = layernorm(x, &w.ln1);
    let hq = quantize_vec(&h);

    // Fused MP kernel activation #1: QKV projection.
    let qkv = w.qkv.forward(&hq);
    let (q, kv) = qkv.split_at(d);
    let (k, v) = kv.split_at(d);

    // KV cache append (int8), then the fused MHA kernel.
    cache.append(k, v);
    let attn = attend(mode, q, cache, cfg, pos + 1);

    // Fused MP kernel activation #2: output projection, then residual.
    let aq = quantize_vec(&attn);
    let proj = w.proj.forward(&aq);
    let x1 = residual_add(x, &proj);

    // LN2 + MLP (MP activations #3 and #4) with GELU between.
    let h2 = layernorm(&x1, &w.ln2);
    let h2q = quantize_vec(&h2);
    let f1 = w.fc1.forward(&h2q);
    let g = gelu_vec(&f1);
    let gq = quantize_vec(&g);
    let f2 = w.fc2.forward(&gq);
    residual_add(&x1, &f2)
}

/// Runs a *batch* of consecutive tokens through one block with shared
/// weight passes (batched GEMMs) — the functional counterpart of the
/// accelerator's batched-prefill extension.
///
/// Each token is quantized with its own scale, so results are
/// **bit-identical** to calling [`block_forward`] token by token;
/// causality is preserved by attending each token only over `pos + t + 1`
/// cache entries even though the whole batch's K/V is appended first.
///
/// # Panics
///
/// Panics if `xs` is empty, any vector has the wrong width, or the cache
/// length disagrees with `pos`.
pub fn block_forward_batch(
    xs: &[Vec<f32>],
    w: &BlockWeights,
    cache: &mut LayerKvCache,
    cfg: &ModelConfig,
    pos: usize,
) -> Vec<Vec<f32>> {
    block_forward_batch_mode(xs, w, cache, cfg, pos, AttnMode::Materialized)
}

/// [`block_forward_batch`] with an explicit attention kernel.
pub fn block_forward_batch_mode(
    xs: &[Vec<f32>],
    w: &BlockWeights,
    cache: &mut LayerKvCache,
    cfg: &ModelConfig,
    pos: usize,
    mode: AttnMode,
) -> Vec<Vec<f32>> {
    assert!(!xs.is_empty(), "batch must not be empty");
    assert!(
        xs.iter().all(|x| x.len() == cfg.d_model),
        "block input dimension"
    );
    assert_eq!(cache.len(), pos, "cache out of step with position");
    let d = cfg.d_model;
    let b = xs.len();

    // LN1 + per-token quantization, stacked for one shared QKV pass.
    let (h1_rows, h1_scales) = quantize_rows(xs.iter().map(|x| layernorm(x, &w.ln1)));
    let qkv = w.qkv.forward_batch_scaled(
        &looplynx_tensor::matrix::Matrix::from_vec(b, d, h1_rows).expect("stacked rows"),
        &h1_scales,
    );

    // Append the whole batch's K/V, then attend causally per token.
    for t in 0..b {
        let row = qkv.row(t);
        cache.append(&row[d..2 * d], &row[2 * d..3 * d]);
    }
    let attn_rows: Vec<Vec<f32>> = (0..b)
        .map(|t| {
            let q = &qkv.row(t)[..d];
            attend(mode, q, cache, cfg, pos + t + 1)
        })
        .collect();

    // Shared projection pass, residual per token.
    let (a_rows, a_scales) = quantize_rows(attn_rows.iter().cloned());
    let proj = w.proj.forward_batch_scaled(
        &looplynx_tensor::matrix::Matrix::from_vec(b, d, a_rows).expect("stacked rows"),
        &a_scales,
    );
    let x1: Vec<Vec<f32>> = (0..b).map(|t| residual_add(&xs[t], proj.row(t))).collect();

    // MLP with shared FC1/FC2 passes.
    let (h2_rows, h2_scales) = quantize_rows(x1.iter().map(|x| layernorm(x, &w.ln2)));
    let f1 = w.fc1.forward_batch_scaled(
        &looplynx_tensor::matrix::Matrix::from_vec(b, d, h2_rows).expect("stacked rows"),
        &h2_scales,
    );
    let (g_rows, g_scales) = quantize_rows((0..b).map(|t| gelu_vec(f1.row(t))));
    let f2 = w.fc2.forward_batch_scaled(
        &looplynx_tensor::matrix::Matrix::from_vec(b, cfg.d_ff, g_rows).expect("stacked rows"),
        &g_scales,
    );
    (0..b).map(|t| residual_add(&x1[t], f2.row(t))).collect()
}

/// Runs one decode token for a *batch of independent sequences* through
/// one block, sharing every weight pass: row `t` of `xs` is the current
/// token of the sequence resident in `slots[t]` of `arena`.
///
/// This is the continuous-batching hot path. Each linear streams its
/// weights once per step through the blocked GEMM
/// ([`looplynx_tensor::linear::gemm_i32`]): every 32-row weight block is
/// tiled across all resident sequences before the next block is touched,
/// so weight traffic is amortized over the whole batch. Attention is
/// per-sequence over each slot's own cache, and every row is quantized
/// with its own scale — results are **bit-identical** to running
/// [`block_forward`] on each sequence alone.
///
/// # Panics
///
/// Panics if `xs` is empty, lengths disagree, a slot repeats within the
/// batch, or any vector has the wrong width.
pub fn block_forward_decode_batch(
    xs: &[Vec<f32>],
    w: &BlockWeights,
    arena: &mut crate::kv_cache::SlotKvArena,
    layer: usize,
    slots: &[usize],
    cfg: &ModelConfig,
) -> Vec<Vec<f32>> {
    block_forward_decode_batch_mode(xs, w, arena, layer, slots, cfg, AttnMode::Materialized)
}

/// [`block_forward_decode_batch`] with an explicit attention kernel.
#[allow(clippy::too_many_arguments)]
pub fn block_forward_decode_batch_mode(
    xs: &[Vec<f32>],
    w: &BlockWeights,
    arena: &mut crate::kv_cache::SlotKvArena,
    layer: usize,
    slots: &[usize],
    cfg: &ModelConfig,
    mode: AttnMode,
) -> Vec<Vec<f32>> {
    assert!(!xs.is_empty(), "batch must not be empty");
    assert_eq!(xs.len(), slots.len(), "one slot per token row");
    assert!(
        xs.iter().all(|x| x.len() == cfg.d_model),
        "block input dimension"
    );
    assert!(
        slots
            .iter()
            .enumerate()
            .all(|(i, s)| !slots[..i].contains(s)),
        "a sequence cannot decode two tokens in one step"
    );
    let d = cfg.d_model;
    let b = xs.len();

    // LN1 + per-row quantization, stacked for one shared QKV pass.
    let (h1_rows, h1_scales) = quantize_rows(xs.iter().map(|x| layernorm(x, &w.ln1)));
    let qkv = w.qkv.forward_batch_scaled(
        &looplynx_tensor::matrix::Matrix::from_vec(b, d, h1_rows).expect("stacked rows"),
        &h1_scales,
    );

    // Per sequence: append this token's K/V to its own slot, attend over
    // its own history (bit-identical to the single-sequence path).
    let attn_rows: Vec<Vec<f32>> = slots
        .iter()
        .enumerate()
        .map(|(t, &slot)| {
            let row = qkv.row(t);
            let cache = arena.layer_mut(slot, layer);
            cache.append(&row[d..2 * d], &row[2 * d..3 * d]);
            attend(mode, &row[..d], cache, cfg, cache.len())
        })
        .collect();

    // Shared projection pass, residual per row.
    let (a_rows, a_scales) = quantize_rows(attn_rows.into_iter());
    let proj = w.proj.forward_batch_scaled(
        &looplynx_tensor::matrix::Matrix::from_vec(b, d, a_rows).expect("stacked rows"),
        &a_scales,
    );
    let x1: Vec<Vec<f32>> = (0..b).map(|t| residual_add(&xs[t], proj.row(t))).collect();

    // MLP with shared FC1/FC2 passes.
    let (h2_rows, h2_scales) = quantize_rows(x1.iter().map(|x| layernorm(x, &w.ln2)));
    let f1 = w.fc1.forward_batch_scaled(
        &looplynx_tensor::matrix::Matrix::from_vec(b, d, h2_rows).expect("stacked rows"),
        &h2_scales,
    );
    let (g_rows, g_scales) = quantize_rows((0..b).map(|t| gelu_vec(f1.row(t))));
    let f2 = w.fc2.forward_batch_scaled(
        &looplynx_tensor::matrix::Matrix::from_vec(b, cfg.d_ff, g_rows).expect("stacked rows"),
        &g_scales,
    );
    (0..b).map(|t| residual_add(&x1[t], f2.row(t))).collect()
}

/// Dispatches one full-width attention call to the selected kernel.
fn attend(
    mode: AttnMode,
    q: &[f32],
    cache: &LayerKvCache,
    cfg: &ModelConfig,
    valid: usize,
) -> Vec<f32> {
    match mode {
        AttnMode::Materialized => attend_all(q, cache, cfg.heads, cfg.d_head(), valid),
        AttnMode::Fused => attend_all_fused(q, cache, cfg.heads, cfg.d_head(), valid),
    }
}

/// Quantizes each produced vector with its own scale and concatenates the
/// int8 rows (returning the flat buffer plus per-row scales).
fn quantize_rows(rows: impl Iterator<Item = Vec<f32>>) -> (Vec<i8>, Vec<f32>) {
    let mut data = Vec::new();
    let mut scales = Vec::new();
    for row in rows {
        let q = quantize_vec(&row);
        data.extend_from_slice(q.data());
        scales.push(q.scale());
    }
    (data, scales)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::weights::Gpt2Weights;

    fn setup() -> (ModelConfig, Gpt2Weights) {
        let cfg = ModelConfig::tiny();
        let w = Gpt2Weights::synthetic(&cfg, 11);
        (cfg, w)
    }

    #[test]
    fn output_shape_matches_input() {
        let (cfg, w) = setup();
        let mut cache = LayerKvCache::new(cfg.d_head());
        let x = vec![0.1f32; cfg.d_model];
        let y = block_forward(&x, &w.blocks[0], &mut cache, &cfg, 0);
        assert_eq!(y.len(), cfg.d_model);
        assert_eq!(cache.len(), 1);
    }

    #[test]
    fn cache_grows_one_token_per_call() {
        let (cfg, w) = setup();
        let mut cache = LayerKvCache::new(cfg.d_head());
        let mut x = vec![0.05f32; cfg.d_model];
        for pos in 0..4 {
            x = block_forward(&x, &w.blocks[0], &mut cache, &cfg, pos);
        }
        assert_eq!(cache.len(), 4);
    }

    #[test]
    fn deterministic_given_same_inputs() {
        let (cfg, w) = setup();
        let x = vec![0.2f32; cfg.d_model];
        let mut c1 = LayerKvCache::new(cfg.d_head());
        let mut c2 = LayerKvCache::new(cfg.d_head());
        let y1 = block_forward(&x, &w.blocks[0], &mut c1, &cfg, 0);
        let y2 = block_forward(&x, &w.blocks[0], &mut c2, &cfg, 0);
        assert_eq!(y1, y2);
    }

    #[test]
    fn residual_path_keeps_signal() {
        // With small synthetic weights the residual dominates: the output
        // must stay correlated with the input rather than collapse.
        let (cfg, w) = setup();
        let mut cache = LayerKvCache::new(cfg.d_head());
        let x: Vec<f32> = (0..cfg.d_model).map(|i| (i as f32 * 0.1).sin()).collect();
        let y = block_forward(&x, &w.blocks[0], &mut cache, &cfg, 0);
        let dot: f32 = x.iter().zip(&y).map(|(a, b)| a * b).sum();
        assert!(dot > 0.0, "residual signal lost");
    }

    #[test]
    #[should_panic(expected = "cache out of step")]
    fn position_mismatch_panics() {
        let (cfg, w) = setup();
        let mut cache = LayerKvCache::new(cfg.d_head());
        let x = vec![0.1f32; cfg.d_model];
        let _ = block_forward(&x, &w.blocks[0], &mut cache, &cfg, 3);
    }

    #[test]
    fn batched_block_is_bit_identical_to_sequential() {
        let (cfg, w) = setup();
        let xs: Vec<Vec<f32>> = (0..5)
            .map(|t| {
                (0..cfg.d_model)
                    .map(|i| ((t * cfg.d_model + i) as f32 * 0.03).sin())
                    .collect()
            })
            .collect();
        let mut seq_cache = LayerKvCache::new(cfg.d_head());
        let sequential: Vec<Vec<f32>> = xs
            .iter()
            .enumerate()
            .map(|(t, x)| block_forward(x, &w.blocks[0], &mut seq_cache, &cfg, t))
            .collect();
        let mut batch_cache = LayerKvCache::new(cfg.d_head());
        let batched = block_forward_batch(&xs, &w.blocks[0], &mut batch_cache, &cfg, 0);
        assert_eq!(sequential, batched, "batched path must be exact");
        // caches end up identical too
        assert_eq!(seq_cache, batch_cache);
    }

    #[test]
    fn batched_block_respects_causality() {
        // Changing a later token must not affect an earlier token's output.
        let (cfg, w) = setup();
        let mut xs: Vec<Vec<f32>> = (0..3)
            .map(|t| vec![0.1 * (t as f32 + 1.0); cfg.d_model])
            .collect();
        let mut c1 = LayerKvCache::new(cfg.d_head());
        let base = block_forward_batch(&xs, &w.blocks[0], &mut c1, &cfg, 0);
        xs[2] = vec![9.0; cfg.d_model];
        let mut c2 = LayerKvCache::new(cfg.d_head());
        let poked = block_forward_batch(&xs, &w.blocks[0], &mut c2, &cfg, 0);
        assert_eq!(base[0], poked[0]);
        assert_eq!(base[1], poked[1]);
        assert_ne!(base[2], poked[2]);
    }

    #[test]
    fn decode_batch_is_bit_identical_to_lone_sequences() {
        use crate::kv_cache::SlotKvArena;
        let (cfg, w) = setup();
        let mk = |s: usize, t: usize| -> Vec<f32> {
            (0..cfg.d_model)
                .map(|i| (((s * 131 + t * 17 + i) as f32) * 0.07).sin())
                .collect()
        };
        // Three sequences of different lengths, decoded together whenever
        // more than one is still active.
        let lens = [4usize, 2, 3];
        let mut arena = SlotKvArena::new(1, cfg.d_head(), cfg.heads, 3, 8);
        let slots: Vec<usize> = (0..3).map(|_| arena.acquire().unwrap()).collect();
        let mut batched: Vec<Vec<Vec<f32>>> = vec![Vec::new(); 3];
        for step in 0..4 {
            let active: Vec<usize> = (0..3).filter(|&s| step < lens[s]).collect();
            let xs: Vec<Vec<f32>> = active.iter().map(|&s| mk(s, step)).collect();
            let sel: Vec<usize> = active.iter().map(|&s| slots[s]).collect();
            let ys = block_forward_decode_batch(&xs, &w.blocks[0], &mut arena, 0, &sel, &cfg);
            for (&s, y) in active.iter().zip(ys) {
                arena.advance(slots[s], 1);
                batched[s].push(y);
            }
        }
        for s in 0..3 {
            let mut cache = LayerKvCache::new(cfg.d_head());
            let lone: Vec<Vec<f32>> = (0..lens[s])
                .map(|t| block_forward(&mk(s, t), &w.blocks[0], &mut cache, &cfg, t))
                .collect();
            assert_eq!(batched[s], lone, "sequence {s} diverged");
            assert_eq!(*arena.layer(slots[s], 0), cache, "cache {s} diverged");
        }
    }

    #[test]
    #[should_panic(expected = "two tokens in one step")]
    fn decode_batch_rejects_duplicate_slots() {
        use crate::kv_cache::SlotKvArena;
        let (cfg, w) = setup();
        let mut arena = SlotKvArena::new(1, cfg.d_head(), cfg.heads, 2, 4);
        let s = arena.acquire().unwrap();
        let xs = vec![vec![0.1f32; cfg.d_model]; 2];
        let _ = block_forward_decode_batch(&xs, &w.blocks[0], &mut arena, 0, &[s, s], &cfg);
    }

    #[test]
    #[should_panic(expected = "batch must not be empty")]
    fn empty_batch_panics() {
        let (cfg, w) = setup();
        let mut cache = LayerKvCache::new(cfg.d_head());
        let _ = block_forward_batch(&[], &w.blocks[0], &mut cache, &cfg, 0);
    }
}
