//! Bounded FIFO semantics.
//!
//! Every unit inside a LoopLynx macro dataflow kernel is "connected via
//! FIFOs, thus reducing the place and route complexity and enabling the
//! frequency to reach 285 MHz" (paper Section III-D). This module provides
//! the functional bounded queue used when real data flows through the
//! kernels, together with occupancy statistics that feed FIFO-sizing
//! decisions.

use std::collections::VecDeque;
use std::fmt;

/// Error returned by [`BoundedFifo::push`] when the queue is full.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FifoFullError {
    capacity: usize,
}

impl fmt::Display for FifoFullError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "fifo full at capacity {}", self.capacity)
    }
}

impl std::error::Error for FifoFullError {}

/// A bounded, single-producer single-consumer queue with occupancy stats.
///
/// # Example
///
/// ```
/// use looplynx_sim::fifo::BoundedFifo;
///
/// let mut f = BoundedFifo::new(2);
/// f.push(1).unwrap();
/// f.push(2).unwrap();
/// assert!(f.push(3).is_err());
/// assert_eq!(f.pop(), Some(1));
/// assert_eq!(f.high_water(), 2);
/// ```
#[derive(Debug, Clone)]
pub struct BoundedFifo<T> {
    items: VecDeque<T>,
    capacity: usize,
    high_water: usize,
    pushes: u64,
    pops: u64,
    rejected: u64,
}

impl<T> BoundedFifo<T> {
    /// Creates a FIFO with the given capacity.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero.
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "FIFO capacity must be at least 1");
        BoundedFifo {
            items: VecDeque::with_capacity(capacity.min(1024)),
            capacity,
            high_water: 0,
            pushes: 0,
            pops: 0,
            rejected: 0,
        }
    }

    /// Capacity in items.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Current occupancy.
    pub fn len(&self) -> usize {
        self.items.len()
    }

    /// Whether the FIFO is empty.
    pub fn is_empty(&self) -> bool {
        self.items.is_empty()
    }

    /// Whether the FIFO is full.
    pub fn is_full(&self) -> bool {
        self.items.len() == self.capacity
    }

    /// Enqueues an item.
    ///
    /// # Errors
    ///
    /// Returns [`FifoFullError`] (with the item lost to the caller —
    /// use [`BoundedFifo::try_push`] to retain it) when full.
    pub fn push(&mut self, item: T) -> Result<(), FifoFullError> {
        self.try_push(item).map_err(|(e, _)| e)
    }

    /// Enqueues an item, handing it back on failure.
    ///
    /// # Errors
    ///
    /// Returns the error and the rejected item when full.
    pub fn try_push(&mut self, item: T) -> Result<(), (FifoFullError, T)> {
        if self.is_full() {
            self.rejected += 1;
            return Err((
                FifoFullError {
                    capacity: self.capacity,
                },
                item,
            ));
        }
        self.items.push_back(item);
        self.pushes += 1;
        self.high_water = self.high_water.max(self.items.len());
        Ok(())
    }

    /// Dequeues the oldest item.
    pub fn pop(&mut self) -> Option<T> {
        let item = self.items.pop_front();
        if item.is_some() {
            self.pops += 1;
        }
        item
    }

    /// Peeks at the oldest item without removing it.
    pub fn peek(&self) -> Option<&T> {
        self.items.front()
    }

    /// Largest occupancy ever observed.
    pub fn high_water(&self) -> usize {
        self.high_water
    }

    /// Total successful pushes.
    pub fn pushes(&self) -> u64 {
        self.pushes
    }

    /// Total successful pops.
    pub fn pops(&self) -> u64 {
        self.pops
    }

    /// Pushes rejected because the FIFO was full (backpressure events).
    pub fn rejected(&self) -> u64 {
        self.rejected
    }

    /// Drains all items in FIFO order.
    pub fn drain_all(&mut self) -> Vec<T> {
        self.pops += self.items.len() as u64;
        self.items.drain(..).collect()
    }
}

impl<T> Extend<T> for BoundedFifo<T> {
    /// Extends the FIFO, silently dropping items beyond capacity
    /// (counted in [`BoundedFifo::rejected`]).
    fn extend<I: IntoIterator<Item = T>>(&mut self, iter: I) {
        for item in iter {
            let _ = self.try_push(item);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fifo_order_is_preserved() {
        let mut f = BoundedFifo::new(4);
        for i in 0..4 {
            f.push(i).unwrap();
        }
        assert_eq!(f.drain_all(), vec![0, 1, 2, 3]);
        assert!(f.is_empty());
    }

    #[test]
    fn full_fifo_rejects_and_counts() {
        let mut f = BoundedFifo::new(1);
        f.push("a").unwrap();
        assert!(f.is_full());
        let (err, item) = f.try_push("b").unwrap_err();
        assert_eq!(item, "b");
        assert!(err.to_string().contains("capacity 1"));
        assert_eq!(f.rejected(), 1);
    }

    #[test]
    fn high_water_tracks_peak() {
        let mut f = BoundedFifo::new(8);
        f.push(1).unwrap();
        f.push(2).unwrap();
        f.push(3).unwrap();
        f.pop();
        f.pop();
        f.push(4).unwrap();
        assert_eq!(f.high_water(), 3);
        assert_eq!(f.len(), 2);
        assert_eq!(f.pushes(), 4);
        assert_eq!(f.pops(), 2);
    }

    #[test]
    fn peek_does_not_consume() {
        let mut f = BoundedFifo::new(2);
        f.push(42).unwrap();
        assert_eq!(f.peek(), Some(&42));
        assert_eq!(f.len(), 1);
        assert_eq!(f.pop(), Some(42));
        assert_eq!(f.pop(), None);
    }

    #[test]
    fn extend_drops_overflow() {
        let mut f = BoundedFifo::new(3);
        f.extend(0..10);
        assert_eq!(f.len(), 3);
        assert_eq!(f.rejected(), 7);
    }

    #[test]
    #[should_panic(expected = "at least 1")]
    fn zero_capacity_rejected() {
        let _ = BoundedFifo::<u8>::new(0);
    }
}
