//! Bit-exactness suite for the hot-path kernel overhaul: the tiled GEMM,
//! the SIMD MAC/quantize/accumulate kernels, and the fused linear
//! epilogues must produce byte-identical results to the straightforward
//! reference implementations they replaced.

use proptest::prelude::*;

use looplynx_tensor::activation::{gelu_in_place, gelu_vec};
use looplynx_tensor::linear::{gemm_i32, gemm_i32_naive, gemv_i32, gemv_i32_into, QuantLinear};
use looplynx_tensor::matrix::Matrix;
use looplynx_tensor::norm::{
    layernorm, layernorm_into, residual_add, residual_add_into, LayerNormParams,
};
use looplynx_tensor::quant::{quantize_into, quantize_vec};
use looplynx_tensor::simd::{
    absmax, absmax_scalar, accumulate_scaled_i8, accumulate_scaled_i8_scalar, dot_i8_i32,
    dot_i8_i32_scalar, quantize_slice, quantize_slice_scalar,
};

fn arb_i8_matrix(rows: usize, cols: usize, seed: u64) -> Matrix<i8> {
    Matrix::from_fn(rows, cols, |r, c| {
        (((seed as usize)
            .wrapping_mul(37)
            .wrapping_add(r * 131 + c * 17))
            % 255) as i8
    })
}

fn arb_f32_vec(len: usize, seed: u64) -> Vec<f32> {
    (0..len)
        .map(|i| {
            ((((seed as usize).wrapping_mul(41).wrapping_add(i * 13)) % 400) as f32 / 50.0 - 4.0)
                * 0.37
        })
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Tiled GEMM equals the unblocked reference byte-for-byte, at shapes
    /// spanning partial and multiple row blocks.
    #[test]
    fn blocked_gemm_equals_naive(
        rows in 1usize..100,
        cols in 1usize..48,
        tokens in 1usize..12,
        seed in any::<u64>(),
    ) {
        let w = arb_i8_matrix(rows, cols, seed);
        let x = arb_i8_matrix(tokens, cols, seed.wrapping_add(1));
        let blocked = gemm_i32(&w, &x).expect("shapes");
        let naive = gemm_i32_naive(&w, &x).expect("shapes");
        prop_assert_eq!(blocked, naive);
    }

    /// GEMM rows equal per-token GEMV results exactly.
    #[test]
    fn gemm_rows_equal_gemv(
        rows in 1usize..64,
        cols in 1usize..40,
        tokens in 1usize..6,
        seed in any::<u64>(),
    ) {
        let w = arb_i8_matrix(rows, cols, seed);
        let x = arb_i8_matrix(tokens, cols, seed.wrapping_add(9));
        let full = gemm_i32(&w, &x).expect("shapes");
        for t in 0..tokens {
            let single = gemv_i32(&w, x.row(t)).expect("shapes");
            prop_assert_eq!(full.row(t), single.as_slice());
        }
    }

    /// The dispatched SIMD dot equals the scalar MAC loop for any length,
    /// including tails shorter than a vector.
    #[test]
    fn simd_dot_equals_scalar(len in 0usize..200, seed in any::<u64>()) {
        let a: Vec<i8> = arb_i8_matrix(1, len.max(1), seed).into_vec()[..len].to_vec();
        let b: Vec<i8> = arb_i8_matrix(1, len.max(1), seed.wrapping_add(77)).into_vec()[..len].to_vec();
        prop_assert_eq!(dot_i8_i32(&a, &b), dot_i8_i32_scalar(&a, &b));
    }

    /// Vectorized absmax equals the scalar fold bitwise.
    #[test]
    fn simd_absmax_equals_scalar(len in 0usize..130, seed in any::<u64>()) {
        let xs = arb_f32_vec(len, seed);
        prop_assert_eq!(absmax(&xs), absmax_scalar(&xs));
    }

    /// Vectorized quantization equals the scalar round/clamp loop bytewise.
    #[test]
    fn simd_quantize_equals_scalar(
        len in 0usize..130,
        seed in any::<u64>(),
        scale in 0.001f32..8.0,
    ) {
        let xs = arb_f32_vec(len, seed);
        let mut fast = vec![0i8; len];
        let mut slow = vec![0i8; len];
        quantize_slice(&xs, scale, &mut fast);
        quantize_slice_scalar(&xs, scale, &mut slow);
        prop_assert_eq!(fast, slow);
    }

    /// Vectorized value-mix accumulation equals the scalar loop bitwise
    /// (one multiply rounding + one add rounding per lane, no FMA).
    #[test]
    fn simd_accumulate_equals_scalar(
        len in 1usize..100,
        seed in any::<u64>(),
        s in -4.0f32..4.0,
    ) {
        let v: Vec<i8> = arb_i8_matrix(1, len, seed).into_vec();
        let mut fast = arb_f32_vec(len, seed.wrapping_add(3));
        let mut slow = fast.clone();
        accumulate_scaled_i8(&mut fast, &v, s);
        accumulate_scaled_i8_scalar(&mut slow, &v, s);
        prop_assert_eq!(fast, slow);
    }

    /// `gemv_i32_into` reusing a dirty buffer equals a fresh `gemv_i32`.
    #[test]
    fn gemv_into_ignores_buffer_history(
        rows in 1usize..40,
        cols in 1usize..40,
        seed in any::<u64>(),
    ) {
        let w = arb_i8_matrix(rows, cols, seed);
        let x: Vec<i8> = arb_i8_matrix(1, cols, seed.wrapping_add(5)).into_vec();
        let mut out = vec![0xAAu8 as i8 as i32; 97]; // deliberately dirty
        gemv_i32_into(&w, &x, &mut out).expect("shapes");
        prop_assert_eq!(out, gemv_i32(&w, &x).expect("shapes"));
    }

    /// The fused forward epilogue (`forward_into`) and the allocation-free
    /// quantizer equal their allocating counterparts bitwise.
    #[test]
    fn fused_forward_equals_reference(
        rows in 1usize..24,
        cols in 1usize..32,
        seed in any::<u64>(),
    ) {
        let wf = Matrix::from_fn(rows, cols, |r, c| {
            ((r * 31 + c * 7 + seed as usize % 13) as f32 * 0.011).sin()
        });
        let bias = arb_f32_vec(rows, seed.wrapping_add(2));
        let lin = QuantLinear::from_f32(&wf, &bias).expect("bias");
        let x = arb_f32_vec(cols, seed.wrapping_add(7));
        let mut q8 = vec![1i8; 3]; // dirty
        let scale = quantize_into(&x, &mut q8);
        let q = quantize_vec(&x);
        prop_assert_eq!(q.data(), q8.as_slice());
        prop_assert_eq!(q.scale(), scale);
        let mut out = vec![9.0f32; 2]; // dirty
        lin.forward_into(&q, &mut out);
        prop_assert_eq!(out.clone(), lin.forward(&q));
        let mut raw = vec![-3.0f32; 40]; // dirty
        lin.forward_raw_into(q.data(), q.scale(), &mut raw);
        prop_assert_eq!(raw, out);
    }

    /// The buffer-reuse critical-path operators (layernorm / residual /
    /// GELU) equal their allocating counterparts bitwise, buffer history
    /// notwithstanding.
    #[test]
    fn critical_path_into_variants_equal_reference(
        len in 1usize..80,
        seed in any::<u64>(),
    ) {
        let x = arb_f32_vec(len, seed);
        let r = arb_f32_vec(len, seed.wrapping_add(13));
        let params = LayerNormParams::new(
            arb_f32_vec(len, seed.wrapping_add(21)),
            arb_f32_vec(len, seed.wrapping_add(34)),
            1e-5,
        ).expect("lengths match");
        let mut buf = vec![5.0f32; 7]; // dirty
        layernorm_into(&x, &params, &mut buf);
        prop_assert_eq!(buf.clone(), layernorm(&x, &params));
        residual_add_into(&x, &r, &mut buf);
        prop_assert_eq!(buf.clone(), residual_add(&x, &r));
        let mut g = x.clone();
        gelu_in_place(&mut g);
        prop_assert_eq!(g, gelu_vec(&x));
    }
}
