//! Regenerates paper Table II (FPGA implementation comparison).
use looplynx_bench::{experiments, paper};
use looplynx_model::ModelConfig;

fn main() {
    let model = ModelConfig::gpt2_medium();
    print!("{}", experiments::render_table2(&model));
    println!();
    let rows = experiments::table2(&model);
    println!("paper-vs-measured (token latency):");
    let paper_ms = [
        paper::TABLE2_LOOPLYNX_MS[2],
        paper::TABLE2_LOOPLYNX_MS[1],
        paper::TABLE2_LOOPLYNX_MS[0],
        paper::TABLE2_DFX_MS,
        paper::TABLE2_SPATIAL_MS,
    ];
    // rows are 4/2/1-node, DFX, spatial
    let order = [2usize, 1, 0, 3, 4];
    for (i, &row_idx) in order.iter().enumerate() {
        let row = &rows[row_idx];
        println!(
            "  {:<28} {}",
            format!("{} {}", row.name, row.nodes_desc),
            paper::compare(row.token_latency_ms, paper_ms[i])
        );
    }
}
