//! Model-family study: how LoopLynx scales up the GPT-2 family, including
//! partition-validity and HBM-capacity checks the deployment tool must
//! make (GPT-2 XL's 25 heads divide over a 5-node ring, not 2 or 4).
//!
//! ```text
//! cargo run --release --example model_family
//! ```

use looplynx::core::memory::hbm_budget;
use looplynx::core::{ArchConfig, LoopLynx};
use looplynx::model::ModelConfig;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let family = [
        ModelConfig::gpt2_small(),
        ModelConfig::gpt2_medium(),
        ModelConfig::gpt2_large(),
        ModelConfig::gpt2_xl(),
    ];
    println!(
        "{:<14} {:>7} {:>9} {:>8} | decode ms/token per legal ring size",
        "model", "params", "weights", "heads"
    );
    for model in &family {
        let mut cells = Vec::new();
        for nodes in [1usize, 2, 4, 5, 8] {
            match ArchConfig::builder()
                .nodes(nodes)
                .build()
                .ok()
                .and_then(|arch| LoopLynx::new(model.clone(), arch).ok())
            {
                Some(engine) => {
                    let arch = engine.arch().clone();
                    let budget = hbm_budget(&arch, model, model.max_seq);
                    if budget.fits() {
                        cells.push(format!(
                            "{nodes}n: {:.2}",
                            engine.steady_state_decode_ms(512)
                        ));
                    } else {
                        cells.push(format!("{nodes}n: >HBM"));
                    }
                }
                None => cells.push(format!("{nodes}n: ✗")),
            }
        }
        println!(
            "{:<14} {:>6}M {:>7}MB {:>8} | {}",
            model.name,
            model.approx_params() / 1_000_000,
            model.weights_bytes_total() / 1_000_000,
            model.heads,
            cells.join("  ")
        );
    }

    println!(
        "\n✗ marks invalid partitions: heads must divide across the ring, so\n\
         GPT-2 XL (25 heads) runs on 1 or 5 nodes but not 2/4/8. Decode\n\
         latency scales with weight bytes — the architecture is HBM-bound —\n\
         so larger models preserve the same multi-node speedup shape the\n\
         paper shows for the 345M model."
    );
    Ok(())
}
