//! End-to-end acceptance of the serving layer: the offered-load sweep
//! runs across ring sizes, continuous batching beats the sequential
//! baseline under load, and the latency tails are well-formed.

use looplynx::core::{ArchConfig, LoopLynx};
use looplynx::model::ModelConfig;
use looplynx::serve::{serve_continuous, serve_sequential, ArrivalProcess, ServeConfig};
use looplynx_bench::experiments::{offered_load_sweep_with, SERVE_SHAPES};

fn engine(nodes: usize) -> LoopLynx {
    LoopLynx::new(
        ModelConfig::gpt2_medium(),
        ArchConfig::builder().nodes(nodes).build().unwrap(),
    )
    .unwrap()
}

#[test]
fn offered_load_sweep_end_to_end() {
    // One over-subscribed rate across all three paper ring sizes.
    let points = offered_load_sweep_with(&ModelConfig::gpt2_medium(), &[1, 2, 4], &[25.0], 16, 8);
    assert_eq!(points.len(), 3);
    for p in &points {
        // The acceptance bar: continuous batching sustains strictly more
        // tokens/s than serve-one-request-at-a-time at the same rate.
        assert!(
            p.batched_tokens_per_s > p.sequential_tokens_per_s,
            "{} nodes: batched {} vs sequential {}",
            p.nodes,
            p.batched_tokens_per_s,
            p.sequential_tokens_per_s
        );
        // TTFT/TPOT/E2E percentiles are populated and ordered.
        for tail in [p.ttft_ms, p.tpot_ms, p.e2e_ms] {
            assert!(tail[0] > 0.0, "empty percentile tail");
            assert!(tail[0] <= tail[1] && tail[1] <= tail[2]);
        }
    }
    // Ring scaling carries into serving throughput.
    assert!(points[1].batched_tokens_per_s > points[0].batched_tokens_per_s);
    assert!(points[2].batched_tokens_per_s > points[1].batched_tokens_per_s);
}

#[test]
fn bursty_and_poisson_workloads_complete() {
    let e = engine(2);
    for process in [
        ArrivalProcess::Poisson {
            rate_per_s: 12.0,
            seed: 5,
        },
        ArrivalProcess::Bursty {
            bursts_per_s: 2.0,
            burst_size: 5,
            seed: 5,
        },
    ] {
        let workload = process.workload(15, &SERVE_SHAPES);
        let report = serve_continuous(&e, &workload, &ServeConfig::default());
        assert_eq!(report.completed(), 15);
        assert_eq!(
            report.total_tokens(),
            workload.iter().map(|r| r.decode_tokens).sum::<usize>()
        );
    }
}

#[test]
fn low_load_has_no_batching_penalty() {
    // With arrivals far apart, requests never overlap: both schedulers
    // produce identical per-request latencies.
    let e = engine(2);
    let workload = ArrivalProcess::Trace(vec![0.0, 60_000.0, 120_000.0]).workload(3, &[(32, 16)]);
    let a = serve_continuous(&e, &workload, &ServeConfig::default());
    let b = serve_sequential(&e, &workload);
    for (x, y) in a.requests.iter().zip(&b.requests) {
        assert!((x.ttft_ms() - y.ttft_ms()).abs() < 1e-9);
        assert!((x.e2e_ms() - y.e2e_ms()).abs() < 1e-9);
    }
}
