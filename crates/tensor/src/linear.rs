//! Integer GEMV/GEMM and the quantized linear layer.
//!
//! The accelerator's matrix processing unit is "accumulator-multiplier based
//! MAC hardware": each MAC consumes one int8 weight and one int8 activation
//! per cycle and accumulates in 32-bit. After a row's `l_embed` MACs, the
//! quantization unit "performs bias addition and quantization" (paper
//! Section III-D). [`QuantLinear::forward`] reproduces exactly that
//! sequence: `i8 × i8 → i32` accumulate, dequantize with
//! `x_scale · w_scale[row]`, add the bias, and optionally requantize for
//! the next kernel.

use serde::{Deserialize, Serialize};

use crate::error::ShapeError;
use crate::matrix::Matrix;
use crate::quant::{
    quantize_matrix_per_row, quantize_vec_with_scale, QuantizedMatrix, QuantizedVector,
};

/// Rows per weight block in the tiled [`gemm_i32`]: 32 int8 rows of a
/// 1024-wide layer are 32 KiB — small enough to stay resident in L1/L2
/// while every token row of the activation batch is swept over them.
pub const GEMM_ROW_BLOCK: usize = 32;

use crate::simd::dot_i8_i32;

/// Integer matrix-vector product: `y[r] = Σ_c w[r,c] · x[c]` in i32.
///
/// # Errors
///
/// Returns [`ShapeError`] if `x.len() != w.cols()`.
pub fn gemv_i32(w: &Matrix<i8>, x: &[i8]) -> Result<Vec<i32>, ShapeError> {
    let mut out = Vec::new();
    gemv_i32_into(w, x, &mut out)?;
    Ok(out)
}

/// [`gemv_i32`] writing into a caller-provided buffer (cleared and
/// resized), so steady-state decode loops allocate nothing.
///
/// # Errors
///
/// Returns [`ShapeError`] if `x.len() != w.cols()`.
pub fn gemv_i32_into(w: &Matrix<i8>, x: &[i8], out: &mut Vec<i32>) -> Result<(), ShapeError> {
    if x.len() != w.cols() {
        return Err(ShapeError::new("gemv", (w.rows(), w.cols()), (1, x.len())));
    }
    out.clear();
    out.extend(w.iter_rows().map(|row| dot_i8_i32(row, x)));
    Ok(())
}

/// Unblocked reference GEMM — one full dot product per output element in
/// storage order. Kept as the oracle the tiled [`gemm_i32`] is tested
/// against (the two are exactly equal: i32 accumulation is associative
/// and the tiling never splits a dot product).
pub fn gemm_i32_naive(w: &Matrix<i8>, x: &Matrix<i8>) -> Result<Matrix<i32>, ShapeError> {
    if x.cols() != w.cols() {
        return Err(ShapeError::new(
            "gemm",
            (w.rows(), w.cols()),
            (x.rows(), x.cols()),
        ));
    }
    let mut out = Matrix::<i32>::zeros(x.rows(), w.rows());
    for (t, xrow) in x.iter_rows().enumerate() {
        for (r, wrow) in w.iter_rows().enumerate() {
            out.set(t, r, dot_i8_i32(wrow, xrow));
        }
    }
    Ok(out)
}

/// Integer matrix-matrix product `W · Xᵀ` where `X` holds one activation
/// vector per row: `y[r][t] = Σ_c w[r,c] · x[t,c]`.
///
/// This is the weight-sharing shape of both batched prefill (`t` indexes
/// prompt tokens) and continuous-batching decode (`t` indexes resident
/// sequences). The loop is tiled over blocks of [`GEMM_ROW_BLOCK`] weight
/// rows — each block is streamed from memory once and reused across
/// *all* token rows before the next block is touched — and token rows
/// run in groups through the batched MAC kernel
/// ([`crate::simd::dot_i8_i32_batch`]), which amortizes the weight-side
/// widening across the group. Results are bit-identical to
/// [`gemm_i32_naive`].
///
/// # Errors
///
/// Returns [`ShapeError`] if `x.cols() != w.cols()`.
pub fn gemm_i32(w: &Matrix<i8>, x: &Matrix<i8>) -> Result<Matrix<i32>, ShapeError> {
    if x.cols() != w.cols() {
        return Err(ShapeError::new(
            "gemm",
            (w.rows(), w.cols()),
            (x.rows(), x.cols()),
        ));
    }
    let mut flat = vec![0i32; x.rows() * w.rows()];
    gemm_tiled_flat(w, None, 0..w.rows(), x, &mut flat);
    Matrix::from_vec(x.rows(), w.rows(), flat)
}

/// [`gemm_i32`] writing into a caller-provided flat row-major buffer
/// (cleared and resized to `x.rows() × w.rows()`, token row `t` at
/// `t * w.rows()`), so batched decode loops allocate nothing per step.
/// Same tiling and token grouping, bit-identical results.
///
/// # Errors
///
/// Returns [`ShapeError`] if `x.cols() != w.cols()`.
pub fn gemm_i32_into(w: &Matrix<i8>, x: &Matrix<i8>, out: &mut Vec<i32>) -> Result<(), ShapeError> {
    if x.cols() != w.cols() {
        return Err(ShapeError::new(
            "gemm",
            (w.rows(), w.cols()),
            (x.rows(), x.cols()),
        ));
    }
    out.clear();
    out.resize(x.rows() * w.rows(), 0);
    gemm_tiled_flat(w, None, 0..w.rows(), x, out);
    Ok(())
}

/// The shared tiled GEMM core over weight rows `row_range`, writing into
/// a flat `x.rows() × row_range.len()` row-major buffer with column `0`
/// holding weight row `row_range.start` (shapes pre-validated and the
/// buffer pre-sized by the public entry points). `w_row_sums` is the
/// cached biased-dot correction when the caller holds a
/// [`QuantizedMatrix`], indexed by **absolute** weight row (`None`
/// computes it on the fly — only the raw-`Matrix` entry points pay
/// that). The range form is what batch-row sharding partitions: each
/// shard computes a disjoint slab of output columns, and stitching the
/// slabs reproduces the full GEMM bit-for-bit because no dot product is
/// ever split.
///
/// On VNNI hardware, multi-row activations run through the
/// register-blocked 4×4 tile ([`crate::simd::dot_biased_i8_i32_tile4x4`],
/// exact for all i8) with the per-row biased batch kernel
/// ([`crate::simd::dot_biased_i8_i32_batch`]) covering ragged edges;
/// without VNNI the `vpmaddubsw` path ([`crate::simd::dot_i8_i32_batch`],
/// exact for activations above `-128`, which quantized activations
/// always are — raw inputs containing `-128` fall back per row). Single
/// rows take the per-row [`dot_i8_i32`] GEMV path. Integer accumulation
/// makes every grouping bit-identical.
fn gemm_tiled_flat(
    w: &Matrix<i8>,
    w_row_sums: Option<&[i32]>,
    row_range: std::ops::Range<usize>,
    x: &Matrix<i8>,
    out: &mut [i32],
) {
    use crate::simd::{bias_to_unsigned, row_sum_i8, vnni512_available};

    let rows = x.rows();
    let width = x.cols();
    debug_assert!(row_range.start <= row_range.end && row_range.end <= w.rows());
    debug_assert_eq!(out.len(), rows * row_range.len());

    let path = if rows > 1 && vnni512_available() && width >= 64 {
        Path::Vnni
    } else if rows > 1 && !x.as_slice().contains(&i8::MIN) {
        Path::Maddubs
    } else {
        Path::PerRow
    };

    // VNNI prologue: rebias the whole activation matrix once and make
    // sure row sums exist (cached by QuantizedMatrix on the hot path).
    // The rebias buffer is thread-local so steady-state decode loops —
    // including the engine's long-lived pool workers — allocate nothing
    // per call once it reaches its high-water mark.
    thread_local! {
        static XU: std::cell::RefCell<Vec<u8>> = const { std::cell::RefCell::new(Vec::new()) };
    }
    XU.with(|cell| {
        let mut xu = cell.borrow_mut();
        let mut computed_sums: Vec<i32> = Vec::new();
        let sums: &[i32] = if matches!(path, Path::Vnni) {
            bias_to_unsigned(x.as_slice(), &mut xu);
            match w_row_sums {
                Some(s) => s,
                None => {
                    computed_sums.extend(w.iter_rows().map(row_sum_i8));
                    &computed_sums
                }
            }
        } else {
            &[]
        };
        gemm_tiled_blocks(w, row_range, x, out, &path, &xu, sums);
    });
}

/// Which MAC kernel [`gemm_tiled_flat`] selected for a call.
enum Path {
    /// Biased `vpdpbusd` batch kernel (VNNI hardware, any i8 input).
    Vnni,
    /// `vpmaddubsw` batch kernel (AVX2, activations above `-128`).
    Maddubs,
    /// Per-row [`dot_i8_i32`] GEMV.
    PerRow,
}

/// The tiled block/group loop of [`gemm_tiled_flat`] (split out so the
/// thread-local rebias buffer can be borrowed across it). `out` columns
/// are relative to `row_range.start`; `sums` is indexed by absolute
/// weight row.
fn gemm_tiled_blocks(
    w: &Matrix<i8>,
    row_range: std::ops::Range<usize>,
    x: &Matrix<i8>,
    out: &mut [i32],
    path: &Path,
    xu: &[u8],
    sums: &[i32],
) {
    use crate::simd::{dot_biased_i8_i32_batch, dot_biased_i8_i32_tile4x4, dot_i8_i32_batch};

    let rows = x.rows();
    let row0 = row_range.start;
    let cols = row_range.len();
    let width = x.cols();

    let mut block_start = row_range.start;
    while block_start < row_range.end {
        let block_end = (block_start + GEMM_ROW_BLOCK).min(row_range.end);
        let mut t = 0;
        while t < rows {
            let group = match path {
                Path::PerRow => 1,
                // The VNNI tile is 4 activation rows wide; larger groups
                // would spill its 16 accumulators.
                Path::Vnni => match rows - t {
                    n if n >= 4 => 4,
                    n if n >= 2 => 2,
                    _ => 1,
                },
                Path::Maddubs => match rows - t {
                    n if n >= 8 => 8,
                    n if n >= 4 => 4,
                    n if n >= 2 => 2,
                    _ => 1,
                },
            };
            match (path, group) {
                (Path::Vnni, 4) => {
                    let rows4: [&[u8]; 4] =
                        std::array::from_fn(|k| &xu[(t + k) * width..(t + k + 1) * width]);
                    let mut r = block_start;
                    while r + 4 <= block_end {
                        let wrows: [&[i8]; 4] = std::array::from_fn(|k| w.row(r + k));
                        let wsums: [i32; 4] = std::array::from_fn(|k| sums[r + k]);
                        let o = dot_biased_i8_i32_tile4x4(wrows, wsums, rows4);
                        for (k, orow) in o.into_iter().enumerate() {
                            for (tt, v) in orow.into_iter().enumerate() {
                                out[(t + tt) * cols + (r + k - row0)] = v;
                            }
                        }
                        r += 4;
                    }
                    for r in r..block_end {
                        let o = dot_biased_i8_i32_batch::<4>(w.row(r), sums[r], rows4);
                        for (k, v) in o.into_iter().enumerate() {
                            out[(t + k) * cols + (r - row0)] = v;
                        }
                    }
                }
                (Path::Vnni, 2) => {
                    let rows2: [&[u8]; 2] =
                        std::array::from_fn(|k| &xu[(t + k) * width..(t + k + 1) * width]);
                    for r in block_start..block_end {
                        let o = dot_biased_i8_i32_batch::<2>(w.row(r), sums[r], rows2);
                        for (k, v) in o.into_iter().enumerate() {
                            out[(t + k) * cols + (r - row0)] = v;
                        }
                    }
                }
                (Path::Vnni, _) => {
                    let rows1: [&[u8]; 1] = [&xu[t * width..(t + 1) * width]];
                    for r in block_start..block_end {
                        let o = dot_biased_i8_i32_batch::<1>(w.row(r), sums[r], rows1);
                        out[t * cols + (r - row0)] = o[0];
                    }
                }
                (Path::Maddubs, 8) => {
                    let rows8: [&[i8]; 8] = std::array::from_fn(|k| x.row(t + k));
                    for r in block_start..block_end {
                        let o = dot_i8_i32_batch::<8>(w.row(r), rows8);
                        for (k, v) in o.into_iter().enumerate() {
                            out[(t + k) * cols + (r - row0)] = v;
                        }
                    }
                }
                (Path::Maddubs, 4) => {
                    let rows4: [&[i8]; 4] = std::array::from_fn(|k| x.row(t + k));
                    for r in block_start..block_end {
                        let o = dot_i8_i32_batch::<4>(w.row(r), rows4);
                        for (k, v) in o.into_iter().enumerate() {
                            out[(t + k) * cols + (r - row0)] = v;
                        }
                    }
                }
                (Path::Maddubs, 2) => {
                    let rows2: [&[i8]; 2] = std::array::from_fn(|k| x.row(t + k));
                    for r in block_start..block_end {
                        let o = dot_i8_i32_batch::<2>(w.row(r), rows2);
                        for (k, v) in o.into_iter().enumerate() {
                            out[(t + k) * cols + (r - row0)] = v;
                        }
                    }
                }
                _ => {
                    for r in block_start..block_end {
                        out[t * cols + (r - row0)] = dot_i8_i32(w.row(r), x.row(t));
                    }
                }
            }
            t += group;
        }
        block_start = block_end;
    }
}

/// A W8A8 linear layer: int8 weights with per-row scales and an f32 bias.
///
/// # Example
///
/// ```
/// use looplynx_tensor::matrix::Matrix;
/// use looplynx_tensor::linear::QuantLinear;
/// use looplynx_tensor::quant::quantize_vec;
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let w = Matrix::from_fn(2, 4, |r, c| if r == 0 { 0.5 } else { (c as f32) * 0.1 });
/// let lin = QuantLinear::from_f32(&w, &[1.0, -1.0])?;
/// let y = lin.forward(&quantize_vec(&[1.0, 1.0, 1.0, 1.0]));
/// assert!((y[0] - 3.0).abs() < 0.1); // 4*0.5 + 1.0
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct QuantLinear {
    weight: QuantizedMatrix,
    bias: Vec<f32>,
}

impl QuantLinear {
    /// Quantizes an f32 weight matrix (per-row scales) and wraps the bias.
    ///
    /// # Errors
    ///
    /// Returns [`ShapeError`] if `bias.len() != w.rows()`.
    pub fn from_f32(w: &Matrix<f32>, bias: &[f32]) -> Result<Self, ShapeError> {
        if bias.len() != w.rows() {
            return Err(ShapeError::new(
                "linear bias",
                (w.rows(), 1),
                (bias.len(), 1),
            ));
        }
        Ok(QuantLinear {
            weight: quantize_matrix_per_row(w),
            bias: bias.to_vec(),
        })
    }

    /// Wraps pre-quantized weights.
    ///
    /// # Errors
    ///
    /// Returns [`ShapeError`] if `bias.len() != weight.shape().0`.
    pub fn new(weight: QuantizedMatrix, bias: Vec<f32>) -> Result<Self, ShapeError> {
        if bias.len() != weight.shape().0 {
            return Err(ShapeError::new(
                "linear bias",
                (weight.shape().0, 1),
                (bias.len(), 1),
            ));
        }
        Ok(QuantLinear { weight, bias })
    }

    /// Output features (rows of the weight matrix).
    pub fn out_features(&self) -> usize {
        self.weight.shape().0
    }

    /// Input features (columns of the weight matrix).
    pub fn in_features(&self) -> usize {
        self.weight.shape().1
    }

    /// The quantized weights.
    pub fn weight(&self) -> &QuantizedMatrix {
        &self.weight
    }

    /// The bias vector.
    pub fn bias(&self) -> &[f32] {
        &self.bias
    }

    /// Weight bytes streamed from HBM per activation of this layer.
    pub fn weight_bytes(&self) -> usize {
        self.weight.byte_len()
    }

    /// Forward pass for one token: int accumulate, dequantize, add bias.
    ///
    /// # Panics
    ///
    /// Panics if `x.len() != in_features()` (shape errors on the hot path
    /// indicate a programming bug, not recoverable input).
    pub fn forward(&self, x: &QuantizedVector) -> Vec<f32> {
        let mut out = Vec::new();
        self.forward_into(x, &mut out);
        out
    }

    /// [`QuantLinear::forward`] writing into a caller-provided buffer
    /// (cleared and resized). The dequant epilogue is fused into the MAC
    /// row loop — no intermediate `Vec<i32>` is materialized — with the
    /// same per-element expression, so results are bit-identical.
    ///
    /// # Panics
    ///
    /// Panics if `x.len() != in_features()`.
    pub fn forward_into(&self, x: &QuantizedVector, out: &mut Vec<f32>) {
        self.forward_raw_into(x.data(), x.scale(), out);
    }

    /// [`QuantLinear::forward_into`] taking the int8 payload and scale as
    /// raw parts, for callers that quantize into reused buffers rather
    /// than owning a [`QuantizedVector`].
    ///
    /// # Panics
    ///
    /// Panics if `x.len() != in_features()`.
    pub fn forward_raw_into(&self, x: &[i8], x_scale: f32, out: &mut Vec<f32>) {
        assert_eq!(x.len(), self.in_features(), "gemv shape");
        out.clear();
        out.extend(
            self.weight
                .data()
                .iter_rows()
                .zip(self.weight.row_scales())
                .zip(&self.bias)
                .map(|((row, &ws), &b)| {
                    let acc = dot_i8_i32(row, x);
                    acc as f32 * ws * x_scale + b
                }),
        );
    }

    /// Forward pass followed by requantization at the given output scale —
    /// the complete MP-kernel epilogue (bias + quantization in the
    /// quantization unit).
    pub fn forward_requantized(&self, x: &QuantizedVector, out_scale: f32) -> QuantizedVector {
        let y = self.forward(x);
        quantize_vec_with_scale(&y, out_scale)
    }

    /// Batched forward for prefill: one row of `x` per token.
    ///
    /// # Panics
    ///
    /// Panics if `x.cols() != in_features()`.
    pub fn forward_batch(&self, x: &Matrix<i8>, x_scale: f32) -> Matrix<f32> {
        let acc = gemm_i32(self.weight.data(), x).expect("gemm shape");
        let mut out = Matrix::<f32>::zeros(acc.rows(), acc.cols());
        for t in 0..acc.rows() {
            let arow = acc.row(t);
            for (((o, &a), &ws), &b) in out
                .row_mut(t)
                .iter_mut()
                .zip(arow)
                .zip(self.weight.row_scales())
                .zip(&self.bias)
            {
                *o = a as f32 * ws * x_scale + b;
            }
        }
        out
    }

    /// Batched forward where each token row of `x` carries its own
    /// activation scale — the exact batched counterpart of calling
    /// [`QuantLinear::forward`] per token (bit-identical results), used by
    /// the weight-sharing batched-prefill path.
    ///
    /// # Panics
    ///
    /// Panics if `x.cols() != in_features()` or
    /// `x_scales.len() != x.rows()`.
    pub fn forward_batch_scaled(&self, x: &Matrix<i8>, x_scales: &[f32]) -> Matrix<f32> {
        assert_eq!(x_scales.len(), x.rows(), "one scale per token row");
        assert_eq!(x.cols(), self.in_features(), "gemm shape");
        let mut flat = vec![0i32; x.rows() * self.out_features()];
        gemm_tiled_flat(
            self.weight.data(),
            Some(self.weight.row_sums()),
            0..self.out_features(),
            x,
            &mut flat,
        );
        let acc = Matrix::from_vec(x.rows(), self.out_features(), flat).expect("gemm shape");
        let mut out = Matrix::<f32>::zeros(acc.rows(), acc.cols());
        for (t, &x_scale) in x_scales.iter().enumerate() {
            let arow = acc.row(t);
            for (((o, &a), &ws), &b) in out
                .row_mut(t)
                .iter_mut()
                .zip(arow)
                .zip(self.weight.row_scales())
                .zip(&self.bias)
            {
                *o = a as f32 * ws * x_scale + b;
            }
        }
        out
    }

    /// [`QuantLinear::forward_batch_scaled`] writing the dequantized
    /// output into a caller-provided flat row-major buffer (cleared and
    /// resized to `x.rows() × out_features()`, token row `t` at
    /// `t * out_features()`), with GEMM scratch in `acc`. The batched
    /// continuous-decode hot path: one weight stream per call, shared by
    /// every token row, and no per-step allocation. Bit-identical to
    /// calling [`QuantLinear::forward`] per row.
    ///
    /// # Panics
    ///
    /// Panics if `x.cols() != in_features()` or
    /// `x_scales.len() != x.rows()`.
    pub fn forward_batch_scaled_into(
        &self,
        x: &Matrix<i8>,
        x_scales: &[f32],
        acc: &mut Vec<i32>,
        out: &mut Vec<f32>,
    ) {
        self.forward_batch_scaled_range_into(x, x_scales, 0..self.out_features(), acc, out);
    }

    /// [`QuantLinear::forward_batch_scaled_into`] restricted to output
    /// rows `rows` — the batch-row-sharding entry point. `out` holds
    /// `x.rows() × rows.len()` values with column `0` mapping to weight
    /// row `rows.start`; stitching each shard's slab side by side
    /// reproduces the full forward bit-for-bit (no dot product is ever
    /// split, and the dequant epilogue is per-element).
    ///
    /// # Panics
    ///
    /// Panics if `x.cols() != in_features()`,
    /// `x_scales.len() != x.rows()`, or `rows` falls outside
    /// `0..out_features()`.
    pub fn forward_batch_scaled_range_into(
        &self,
        x: &Matrix<i8>,
        x_scales: &[f32],
        rows: std::ops::Range<usize>,
        acc: &mut Vec<i32>,
        out: &mut Vec<f32>,
    ) {
        assert_eq!(x_scales.len(), x.rows(), "one scale per token row");
        assert_eq!(x.cols(), self.in_features(), "gemm shape");
        assert!(
            rows.start <= rows.end && rows.end <= self.out_features(),
            "row range {rows:?} outside 0..{}",
            self.out_features()
        );
        let cols = rows.len();
        acc.clear();
        acc.resize(x.rows() * cols, 0);
        gemm_tiled_flat(
            self.weight.data(),
            Some(self.weight.row_sums()),
            rows.clone(),
            x,
            acc,
        );
        out.clear();
        out.resize(x.rows() * cols, 0.0);
        let scales = &self.weight.row_scales()[rows.clone()];
        let biases = &self.bias[rows];
        for (t, &x_scale) in x_scales.iter().enumerate() {
            let arow = &acc[t * cols..(t + 1) * cols];
            for (((o, &a), &ws), &b) in out[t * cols..(t + 1) * cols]
                .iter_mut()
                .zip(arow)
                .zip(scales)
                .zip(biases)
            {
                *o = a as f32 * ws * x_scale + b;
            }
        }
    }

    /// Splits this layer by output rows into `parts` equal shards — the
    /// column-parallel partition used for multi-node execution.
    ///
    /// # Panics
    ///
    /// Panics if `out_features` is not divisible by `parts`.
    pub fn shard_rows(&self, parts: usize) -> Vec<QuantLinear> {
        assert!(parts > 0, "parts must be positive");
        assert_eq!(
            self.out_features() % parts,
            0,
            "out_features {} not divisible by {parts}",
            self.out_features()
        );
        let chunk = self.out_features() / parts;
        (0..parts)
            .map(|p| QuantLinear {
                weight: self.weight.slice_rows(p * chunk, (p + 1) * chunk),
                bias: self.bias[p * chunk..(p + 1) * chunk].to_vec(),
            })
            .collect()
    }
}

/// Reference f32 GEMV for accuracy comparisons.
pub fn gemv_f32(w: &Matrix<f32>, x: &[f32]) -> Result<Vec<f32>, ShapeError> {
    if x.len() != w.cols() {
        return Err(ShapeError::new(
            "gemv_f32",
            (w.rows(), w.cols()),
            (1, x.len()),
        ));
    }
    Ok(w.iter_rows()
        .map(|row| row.iter().zip(x).map(|(a, b)| a * b).sum())
        .collect())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::quant::quantize_vec;

    #[test]
    fn gemv_small_known_answer() {
        let w = Matrix::from_vec(2, 3, vec![1i8, 2, 3, -1, 0, 1]).unwrap();
        let y = gemv_i32(&w, &[1, 1, 1]).unwrap();
        assert_eq!(y, vec![6, 0]);
    }

    #[test]
    fn gemv_shape_error() {
        let w = Matrix::<i8>::zeros(2, 3);
        assert!(gemv_i32(&w, &[1, 2]).is_err());
    }

    #[test]
    fn gemm_matches_repeated_gemv() {
        let w = Matrix::from_fn(3, 4, |r, c| ((r * 4 + c) % 7) as i8 - 3);
        let x = Matrix::from_fn(2, 4, |t, c| (t as i8 + 1) * (c as i8 - 1));
        let full = gemm_i32(&w, &x).unwrap();
        for t in 0..2 {
            let single = gemv_i32(&w, x.row(t)).unwrap();
            for (r, &s) in single.iter().enumerate() {
                assert_eq!(full.get(t, r), s);
            }
        }
    }

    #[test]
    fn quant_linear_approximates_f32() {
        let w = Matrix::from_fn(8, 16, |r, c| {
            ((r as f32 - 4.0) * 0.1 + c as f32 * 0.01).sin()
        });
        let bias: Vec<f32> = (0..8).map(|i| i as f32 * 0.1).collect();
        let lin = QuantLinear::from_f32(&w, &bias).unwrap();
        let x: Vec<f32> = (0..16).map(|i| ((i as f32) * 0.3).cos()).collect();
        let qy = lin.forward(&quantize_vec(&x));
        let fy: Vec<f32> = gemv_f32(&w, &x)
            .unwrap()
            .iter()
            .zip(&bias)
            .map(|(a, b)| a + b)
            .collect();
        for (a, b) in qy.iter().zip(&fy) {
            assert!((a - b).abs() < 0.05, "quantized {a} vs reference {b}");
        }
    }

    #[test]
    fn requantized_output_has_requested_scale() {
        let w = Matrix::from_fn(4, 4, |_, _| 0.5);
        let lin = QuantLinear::from_f32(&w, &[0.0; 4]).unwrap();
        let out = lin.forward_requantized(&quantize_vec(&[1.0; 4]), 0.05);
        assert_eq!(out.scale(), 0.05);
        assert_eq!(out.len(), 4);
    }

    #[test]
    fn sharding_tiles_the_output_exactly() {
        let w = Matrix::from_fn(8, 4, |r, c| (r * 4 + c) as f32 * 0.01);
        let bias: Vec<f32> = (0..8).map(|i| i as f32).collect();
        let lin = QuantLinear::from_f32(&w, &bias).unwrap();
        let x = quantize_vec(&[0.5, -0.5, 0.25, 1.0]);
        let full = lin.forward(&x);
        let shards = lin.shard_rows(4);
        let stitched: Vec<f32> = shards.iter().flat_map(|s| s.forward(&x)).collect();
        assert_eq!(full.len(), stitched.len());
        for (a, b) in full.iter().zip(&stitched) {
            assert!((a - b).abs() < 1e-6);
        }
    }

    #[test]
    #[should_panic(expected = "not divisible")]
    fn sharding_requires_divisibility() {
        let w = Matrix::from_fn(6, 2, |_, _| 1.0);
        let lin = QuantLinear::from_f32(&w, &[0.0; 6]).unwrap();
        let _ = lin.shard_rows(4);
    }

    #[test]
    fn batch_forward_matches_single() {
        let w = Matrix::from_fn(3, 5, |r, c| (r as f32 + 1.0) * 0.1 - c as f32 * 0.02);
        let lin = QuantLinear::from_f32(&w, &[0.1, 0.2, 0.3]).unwrap();
        let x0 = quantize_vec(&[0.4, -0.2, 0.1, 0.9, -0.6]);
        let batch = Matrix::from_vec(1, 5, x0.data().to_vec()).unwrap();
        let yb = lin.forward_batch(&batch, x0.scale());
        let ys = lin.forward(&x0);
        for (r, &y) in ys.iter().enumerate() {
            assert!((yb.get(0, r) - y).abs() < 1e-6);
        }
    }

    #[test]
    fn scaled_batch_matches_per_token_forward() {
        let w = Matrix::from_fn(4, 6, |r, c| ((r * 6 + c) as f32 * 0.013).sin() * 0.1);
        let lin = QuantLinear::from_f32(&w, &[0.1, -0.2, 0.3, 0.0]).unwrap();
        let tokens: Vec<Vec<f32>> = (0..3)
            .map(|t| (0..6).map(|i| ((t * 6 + i) as f32 * 0.21).cos()).collect())
            .collect();
        let quantized: Vec<_> = tokens.iter().map(|t| quantize_vec(t)).collect();
        let data: Vec<i8> = quantized.iter().flat_map(|q| q.data().to_vec()).collect();
        let scales: Vec<f32> = quantized.iter().map(|q| q.scale()).collect();
        let x = Matrix::from_vec(3, 6, data).unwrap();
        let batch = lin.forward_batch_scaled(&x, &scales);
        for (t, q) in quantized.iter().enumerate() {
            let single = lin.forward(q);
            for (r, &s) in single.iter().enumerate() {
                assert_eq!(batch.get(t, r), s, "token {t} row {r}");
            }
        }
    }

    #[test]
    fn gemm_into_matches_gemm() {
        let w = Matrix::from_fn(67, 9, |r, c| ((r * 9 + c) % 13) as i8 - 6);
        let x = Matrix::from_fn(5, 9, |t, c| ((t * 9 + c) % 11) as i8 - 5);
        let full = gemm_i32(&w, &x).unwrap();
        let mut flat = vec![1i32; 3]; // dirty buffer must be overwritten
        gemm_i32_into(&w, &x, &mut flat).unwrap();
        assert_eq!(flat.len(), 5 * 67);
        for t in 0..5 {
            assert_eq!(&flat[t * 67..(t + 1) * 67], full.row(t));
        }
        let bad = Matrix::<i8>::zeros(2, 4);
        assert!(gemm_i32_into(&w, &bad, &mut flat).is_err());
    }

    #[test]
    fn scaled_batch_into_matches_scaled_batch() {
        let w = Matrix::from_fn(6, 8, |r, c| ((r * 8 + c) as f32 * 0.017).sin() * 0.2);
        let lin = QuantLinear::from_f32(&w, &[0.4, -0.1, 0.0, 0.2, -0.3, 0.7]).unwrap();
        let x = Matrix::from_fn(3, 8, |t, c| ((t * 8 + c) % 17) as i8 - 8);
        let scales = [0.01f32, 0.02, 0.005];
        let reference = lin.forward_batch_scaled(&x, &scales);
        let (mut acc, mut out) = (Vec::new(), Vec::new());
        lin.forward_batch_scaled_into(&x, &scales, &mut acc, &mut out);
        assert_eq!(out.len(), 3 * 6);
        for t in 0..3 {
            assert_eq!(&out[t * 6..(t + 1) * 6], reference.row(t), "token {t}");
        }
    }

    #[test]
    #[should_panic(expected = "one scale per token row")]
    fn scaled_batch_validates_scales() {
        let w = Matrix::from_fn(2, 2, |_, _| 1.0f32);
        let lin = QuantLinear::from_f32(&w, &[0.0; 2]).unwrap();
        let x = Matrix::<i8>::zeros(2, 2);
        let _ = lin.forward_batch_scaled(&x, &[1.0]);
    }

    #[test]
    fn bias_length_validated() {
        let w = Matrix::from_fn(3, 2, |_, _| 1.0f32);
        assert!(QuantLinear::from_f32(&w, &[0.0; 2]).is_err());
    }

    #[test]
    fn accessors_report_dimensions() {
        let w = Matrix::from_fn(3, 7, |_, _| 1.0f32);
        let lin = QuantLinear::from_f32(&w, &[0.0; 3]).unwrap();
        assert_eq!(lin.out_features(), 3);
        assert_eq!(lin.in_features(), 7);
        assert_eq!(lin.weight_bytes(), 21);
        assert_eq!(lin.bias().len(), 3);
    }
}
