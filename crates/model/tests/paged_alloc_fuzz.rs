//! Allocator fuzz: random acquire/reserve/advance/release scripts
//! against [`PagedKvArena`], checking the invariants the unit tests pin
//! pointwise — no double grant, no leak, page conservation — hold under
//! arbitrary interleavings and page geometries.

use std::collections::HashSet;

use proptest::prelude::*;

use looplynx_model::paged::PagedKvArena;

const LAYERS: usize = 2;
const D_HEAD: usize = 4;
const HEADS: usize = 2;

/// Collects every page index granted to any slot in any layer, and
/// asserts no page is granted twice.
fn granted_pages(arena: &PagedKvArena, slots: usize) -> HashSet<usize> {
    let mut seen = HashSet::new();
    for slot in 0..slots {
        if !arena.in_use(slot) {
            continue;
        }
        // One page table per slot serves every layer (layers grant in
        // lockstep), so the slot's table is the complete grant set.
        for &page in arena.slot_pages(slot) {
            assert!(
                seen.insert(page),
                "page {page} granted to more than one slot"
            );
        }
    }
    seen
}

/// Miri runs every memory access through its interpreter (~100× slower),
/// so the CI Miri job keeps a token case count — enough to exercise the
/// unsafe-free allocator paths under the aliasing model without blowing
/// the job's time budget. Native runs keep the full count.
const CASES: u32 = if cfg!(miri) { 4 } else { 64 };

proptest! {
    #![proptest_config(ProptestConfig::with_cases(CASES))]

    /// For any op script: pages are never double-granted, the free count
    /// plus granted count always equals the pool size, reservations are
    /// all-or-nothing at exhaustion, and releasing everything restores
    /// the pool to its initial free count.
    #[test]
    fn allocator_invariants_hold_under_any_script(
        ops in proptest::collection::vec((0u8..4, 0usize..4, 1usize..7), 0..60),
        page_idx in 0usize..3,
    ) {
        let page_tokens = [2usize, 4, 8][page_idx];
        let slots = 4usize;
        let capacity = 24usize;
        let pool = capacity.div_ceil(page_tokens) + 3;
        let mut arena = PagedKvArena::new(
            LAYERS, D_HEAD, HEADS, slots, capacity, page_tokens, pool,
        );
        let initial_free = arena.free_pages();
        prop_assert_eq!(initial_free, pool);

        for (op, slot, amount) in ops {
            match op {
                0 => {
                    let before = arena.free_slots();
                    let got = arena.acquire();
                    prop_assert_eq!(got.is_some(), before > 0, "acquire disagrees with free count");
                    if let Some(s) = got {
                        prop_assert_eq!(arena.pos(s), 0, "fresh slot has stale position");
                        prop_assert_eq!(arena.granted_tokens(s), 0, "fresh slot has stale grants");
                    }
                }
                1 => {
                    if arena.in_use(slot) && arena.pos(slot) + amount <= capacity {
                        let free = arena.free_pages();
                        let needed = arena.pages_needed(slot, amount);
                        let r = arena.try_reserve(slot, amount);
                        prop_assert_eq!(
                            r.is_ok(),
                            needed <= free,
                            "reservation disagrees with page arithmetic"
                        );
                        if let Err(e) = r {
                            // Exhaustion is exact and touches nothing.
                            prop_assert_eq!(e.needed, needed);
                            prop_assert_eq!(e.free, free);
                            prop_assert_eq!(arena.free_pages(), free);
                        } else {
                            prop_assert_eq!(arena.free_pages(), free - needed);
                            arena.advance(slot, amount);
                        }
                    }
                }
                2 => {
                    if arena.in_use(slot) {
                        let granted = arena.slot_pages(slot).len();
                        let free = arena.free_pages();
                        arena.release(slot);
                        prop_assert_eq!(
                            arena.free_pages(),
                            free + granted,
                            "release leaked pages"
                        );
                    }
                }
                _ => {
                    // Conservation audit: granted + free == pool, and no
                    // page serves two masters.
                    let granted = granted_pages(&arena, slots);
                    prop_assert_eq!(granted.len() + arena.free_pages(), pool);
                }
            }
        }

        // Releasing everything restores the initial free count exactly.
        for slot in 0..slots {
            if arena.in_use(slot) {
                arena.release(slot);
            }
        }
        prop_assert_eq!(arena.free_pages(), initial_free, "drained pool leaked pages");
        prop_assert_eq!(arena.free_slots(), slots);
    }

    /// Allocation order is a pure function of the op script: two arenas
    /// driven by the same script grant identical page tables.
    #[test]
    fn allocation_is_deterministic(
        ops in proptest::collection::vec((0u8..3, 0usize..4, 1usize..7), 0..40),
    ) {
        let mk = || PagedKvArena::new(LAYERS, D_HEAD, HEADS, 4, 24, 4, 9);
        let (mut a, mut b) = (mk(), mk());
        for (op, slot, amount) in ops {
            for arena in [&mut a, &mut b] {
                match op {
                    0 => {
                        arena.acquire();
                    }
                    1 => {
                        if arena.in_use(slot)
                            && arena.pos(slot) + amount <= 24
                            && arena.try_reserve(slot, amount).is_ok()
                        {
                            arena.advance(slot, amount);
                        }
                    }
                    _ => {
                        if arena.in_use(slot) {
                            arena.release(slot);
                        }
                    }
                }
            }
        }
        for slot in 0..4 {
            prop_assert_eq!(a.in_use(slot), b.in_use(slot));
            if a.in_use(slot) {
                prop_assert_eq!(
                    a.slot_pages(slot),
                    b.slot_pages(slot),
                    "same script, different page tables at slot {}",
                    slot
                );
            }
        }
    }
}
