//! Per-node HBM capacity budgeting.
//!
//! "Weights and the KV cache are stored in off-chip high-bandwidth memory"
//! (paper Section III-A). The Alveo U50 carries 8 GB of HBM2; a deployment
//! is only valid if each node's weight shard plus its head-partitioned KV
//! cache (at the maximum sequence length and batch) fits. This module
//! answers that question — and quantifies the paper's claim that head-wise
//! partitioning "minimizes the memory footprint on each device".

use std::fmt;

use serde::{Deserialize, Serialize};

use looplynx_model::config::ModelConfig;

use crate::config::ArchConfig;

/// U50 HBM capacity in bytes (8 GB).
pub const U50_HBM_BYTES: usize = 8 * 1024 * 1024 * 1024;

/// Per-node HBM occupancy of a deployment.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct HbmBudget {
    /// Int8 weight bytes stored on one node (output-dimension shard).
    pub weight_bytes: usize,
    /// Int8 KV-cache bytes on one node at the maximum sequence length
    /// (head-wise shard across all layers).
    pub kv_bytes: usize,
    /// HBM capacity of the device, shared by the nodes placed on it.
    pub capacity_bytes: usize,
    /// Nodes sharing the device's HBM stacks.
    pub nodes_per_device: usize,
}

impl HbmBudget {
    /// Total bytes one node occupies.
    pub fn used_bytes(&self) -> usize {
        self.weight_bytes + self.kv_bytes
    }

    /// Bytes available to one node (equal split of the device capacity).
    pub fn available_bytes(&self) -> usize {
        self.capacity_bytes / self.nodes_per_device
    }

    /// Whether the deployment fits.
    pub fn fits(&self) -> bool {
        self.used_bytes() <= self.available_bytes()
    }

    /// Occupancy fraction of the node's share.
    pub fn utilization(&self) -> f64 {
        self.used_bytes() as f64 / self.available_bytes() as f64
    }
}

impl fmt::Display for HbmBudget {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{:.1} MB weights + {:.1} MB KV of {:.0} MB/node ({:.1}%)",
            self.weight_bytes as f64 / 1e6,
            self.kv_bytes as f64 / 1e6,
            self.available_bytes() as f64 / 1e6,
            self.utilization() * 100.0
        )
    }
}

/// Computes the per-node HBM budget for `model` at `max_seq` context on
/// this architecture.
///
/// # Panics
///
/// Panics if `max_seq` is zero.
pub fn hbm_budget(cfg: &ArchConfig, model: &ModelConfig, max_seq: usize) -> HbmBudget {
    assert!(max_seq > 0, "max_seq must be positive");
    let n = cfg.nodes();
    let weight_bytes = model.weights_bytes_total().div_ceil(n);
    let kv_bytes = model.layers * model.kv_bytes_per_token_per_layer() * max_seq / n;
    HbmBudget {
        weight_bytes,
        kv_bytes,
        capacity_bytes: U50_HBM_BYTES,
        nodes_per_device: cfg.resource_model().nodes_per_device().min(n.max(1)),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg(nodes: usize) -> ArchConfig {
        ArchConfig::builder().nodes(nodes).build().unwrap()
    }

    #[test]
    fn gpt2_medium_fits_comfortably() {
        let b = hbm_budget(&cfg(2), &ModelConfig::gpt2_medium(), 1024);
        assert!(b.fits(), "{b}");
        // ~177 MB weights + ~25 MB KV against 4 GB/node
        assert!(b.utilization() < 0.1, "utilization {}", b.utilization());
    }

    #[test]
    fn footprint_shrinks_with_nodes() {
        let m = ModelConfig::gpt2_medium();
        let one = hbm_budget(&cfg(1), &m, 1024);
        let four = hbm_budget(&cfg(4), &m, 1024);
        assert!(four.weight_bytes < one.weight_bytes / 3);
        assert_eq!(four.kv_bytes * 4, one.kv_bytes);
    }

    #[test]
    fn kv_grows_with_context() {
        let m = ModelConfig::gpt2_medium();
        let short = hbm_budget(&cfg(2), &m, 128);
        let long = hbm_budget(&cfg(2), &m, 1024);
        assert_eq!(long.kv_bytes, 8 * short.kv_bytes);
        assert_eq!(long.weight_bytes, short.weight_bytes);
    }

    #[test]
    fn xl_single_node_still_fits_u50() {
        // GPT-2 XL ≈ 1.6 GB int8 on one node — under the 8 GB budget.
        let b = hbm_budget(&cfg(1), &ModelConfig::gpt2_xl(), 1024);
        assert!(b.fits(), "{b}");
        assert!(b.weight_bytes > 1_500_000_000);
    }

    #[test]
    fn display_reports_megabytes() {
        let b = hbm_budget(&cfg(2), &ModelConfig::gpt2_medium(), 512);
        let s = b.to_string();
        assert!(s.contains("MB weights"));
        assert!(s.contains('%'));
    }

    #[test]
    #[should_panic(expected = "max_seq must be positive")]
    fn zero_context_rejected() {
        let _ = hbm_budget(&cfg(1), &ModelConfig::tiny(), 0);
    }
}
