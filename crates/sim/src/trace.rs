//! Gantt-style activity traces.
//!
//! Every kernel activation in the scheduler can be recorded as a
//! [`Span`] on a named lane. Traces drive the latency-breakdown
//! analysis (paper Fig. 5) and the ASCII Gantt rendering used by the
//! examples to visualize how the hybrid schedule overlaps kernels.

use std::collections::BTreeMap;
use std::fmt;

use serde::{Deserialize, Serialize};

use crate::time::Cycles;

/// One activity interval `[start, end)` on a named lane.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Span {
    /// Lane (hardware unit / kernel) the activity ran on.
    pub lane: String,
    /// Human-readable activity label (e.g. `"fc1"`, `"mha.head3"`).
    pub label: String,
    /// First busy cycle.
    pub start: Cycles,
    /// One past the last busy cycle.
    pub end: Cycles,
}

impl Span {
    /// Creates a span.
    ///
    /// # Panics
    ///
    /// Panics if `end < start`.
    pub fn new(
        lane: impl Into<String>,
        label: impl Into<String>,
        start: Cycles,
        end: Cycles,
    ) -> Self {
        assert!(end >= start, "span ends before it starts");
        Span {
            lane: lane.into(),
            label: label.into(),
            start,
            end,
        }
    }

    /// Duration of the span.
    pub fn duration(&self) -> Cycles {
        self.end - self.start
    }

    /// Whether two spans overlap in time (lane-agnostic).
    pub fn overlaps(&self, other: &Span) -> bool {
        self.start < other.end && other.start < self.end
    }
}

/// An append-only collection of [`Span`]s.
///
/// # Example
///
/// ```
/// use looplynx_sim::trace::{Span, Trace};
/// use looplynx_sim::time::Cycles;
///
/// let mut t = Trace::new();
/// t.push(Span::new("mp", "qkv", Cycles::new(0), Cycles::new(100)));
/// t.push(Span::new("mha", "attn", Cycles::new(100), Cycles::new(150)));
/// assert_eq!(t.end().as_u64(), 150);
/// assert_eq!(t.lane_busy("mp").as_u64(), 100);
/// ```
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct Trace {
    spans: Vec<Span>,
}

impl Trace {
    /// Creates an empty trace.
    pub fn new() -> Self {
        Trace { spans: Vec::new() }
    }

    /// Appends a span.
    pub fn push(&mut self, span: Span) {
        self.spans.push(span);
    }

    /// All recorded spans in insertion order.
    pub fn spans(&self) -> &[Span] {
        &self.spans
    }

    /// Number of spans.
    pub fn len(&self) -> usize {
        self.spans.len()
    }

    /// Whether the trace has no spans.
    pub fn is_empty(&self) -> bool {
        self.spans.is_empty()
    }

    /// Latest end time over all spans (`Cycles::ZERO` when empty).
    pub fn end(&self) -> Cycles {
        self.spans
            .iter()
            .map(|s| s.end)
            .fold(Cycles::ZERO, Cycles::max)
    }

    /// Earliest start time over all spans (`Cycles::ZERO` when empty).
    pub fn start(&self) -> Cycles {
        self.spans
            .iter()
            .map(|s| s.start)
            .min()
            .unwrap_or(Cycles::ZERO)
    }

    /// Total busy cycles on one lane (sum of span durations; spans on a
    /// physical lane are expected not to overlap).
    pub fn lane_busy(&self, lane: &str) -> Cycles {
        self.spans
            .iter()
            .filter(|s| s.lane == lane)
            .map(Span::duration)
            .sum()
    }

    /// Busy cycles grouped by lane.
    pub fn busy_by_lane(&self) -> BTreeMap<String, Cycles> {
        let mut map = BTreeMap::new();
        for s in &self.spans {
            *map.entry(s.lane.clone()).or_insert(Cycles::ZERO) += s.duration();
        }
        map
    }

    /// Busy cycles grouped by label prefix up to the first `.`
    /// (so `"mha.head3"` aggregates under `"mha"`).
    pub fn busy_by_label_group(&self) -> BTreeMap<String, Cycles> {
        let mut map = BTreeMap::new();
        for s in &self.spans {
            let group = s.label.split('.').next().unwrap_or(&s.label).to_owned();
            *map.entry(group).or_insert(Cycles::ZERO) += s.duration();
        }
        map
    }

    /// Checks that no two spans on the same lane overlap; returns the first
    /// offending pair if any. Physical hardware units are exclusive, so this
    /// is a structural invariant of every schedule.
    pub fn find_lane_conflict(&self) -> Option<(&Span, &Span)> {
        let mut by_lane: BTreeMap<&str, Vec<&Span>> = BTreeMap::new();
        for s in &self.spans {
            by_lane.entry(s.lane.as_str()).or_default().push(s);
        }
        for spans in by_lane.values_mut() {
            spans.sort_by_key(|s| s.start);
            for w in spans.windows(2) {
                if w[0].overlaps(w[1]) {
                    return Some((w[0], w[1]));
                }
            }
        }
        None
    }

    /// Renders an ASCII Gantt chart with the given width in characters.
    ///
    /// # Panics
    ///
    /// Panics if `width` is zero.
    pub fn render_gantt(&self, width: usize) -> String {
        assert!(width > 0, "gantt width must be positive");
        let end = self.end().as_u64().max(1);
        let mut lanes: BTreeMap<&str, Vec<&Span>> = BTreeMap::new();
        for s in &self.spans {
            lanes.entry(s.lane.as_str()).or_default().push(s);
        }
        let name_w = lanes.keys().map(|k| k.len()).max().unwrap_or(4).max(4);
        let mut out = String::new();
        for (lane, spans) in &lanes {
            let mut row = vec![b'.'; width];
            for s in spans {
                let a = (s.start.as_u64() * width as u64 / end) as usize;
                let b = ((s.end.as_u64() * width as u64).div_ceil(end) as usize).min(width);
                for cell in &mut row[a.min(width.saturating_sub(1))..b] {
                    *cell = b'#';
                }
            }
            out.push_str(&format!(
                "{lane:<name_w$} |{}|\n",
                String::from_utf8(row).expect("ascii row")
            ));
        }
        out
    }
}

impl fmt::Display for Trace {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "trace with {} spans ending at {}",
            self.len(),
            self.end()
        )
    }
}

impl FromIterator<Span> for Trace {
    fn from_iter<I: IntoIterator<Item = Span>>(iter: I) -> Self {
        Trace {
            spans: iter.into_iter().collect(),
        }
    }
}

impl Extend<Span> for Trace {
    fn extend<I: IntoIterator<Item = Span>>(&mut self, iter: I) {
        self.spans.extend(iter);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn span(lane: &str, label: &str, a: u64, b: u64) -> Span {
        Span::new(lane, label, Cycles::new(a), Cycles::new(b))
    }

    #[test]
    fn span_duration_and_overlap() {
        let a = span("x", "a", 0, 10);
        let b = span("x", "b", 5, 15);
        let c = span("x", "c", 10, 20);
        assert_eq!(a.duration().as_u64(), 10);
        assert!(a.overlaps(&b));
        assert!(!a.overlaps(&c), "touching spans do not overlap");
    }

    #[test]
    #[should_panic(expected = "ends before it starts")]
    fn span_rejects_reversed() {
        let _ = span("x", "a", 10, 5);
    }

    #[test]
    fn trace_aggregation() {
        let t: Trace = vec![
            span("mp", "qkv", 0, 100),
            span("mp", "fc1", 150, 250),
            span("mha", "attn.h0", 100, 130),
            span("mha", "attn.h1", 130, 150),
        ]
        .into_iter()
        .collect();
        assert_eq!(t.len(), 4);
        assert_eq!(t.start().as_u64(), 0);
        assert_eq!(t.end().as_u64(), 250);
        assert_eq!(t.lane_busy("mp").as_u64(), 200);
        assert_eq!(t.busy_by_lane()["mha"].as_u64(), 50);
        assert_eq!(t.busy_by_label_group()["attn"].as_u64(), 50);
    }

    #[test]
    fn lane_conflicts_detected() {
        let mut t = Trace::new();
        t.push(span("mp", "a", 0, 100));
        t.push(span("mp", "b", 50, 80));
        assert!(t.find_lane_conflict().is_some());

        let mut ok = Trace::new();
        ok.push(span("mp", "a", 0, 50));
        ok.push(span("mp", "b", 50, 80));
        ok.push(span("mha", "c", 20, 60));
        assert!(ok.find_lane_conflict().is_none());
    }

    #[test]
    fn gantt_renders_every_lane() {
        let mut t = Trace::new();
        t.push(span("mp", "a", 0, 50));
        t.push(span("mha", "b", 50, 100));
        let g = t.render_gantt(20);
        assert!(g.contains("mp"));
        assert!(g.contains("mha"));
        assert!(g.contains('#'));
    }

    #[test]
    fn empty_trace_defaults() {
        let t = Trace::new();
        assert!(t.is_empty());
        assert_eq!(t.end(), Cycles::ZERO);
        assert_eq!(t.start(), Cycles::ZERO);
    }
}
