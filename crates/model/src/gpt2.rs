//! End-to-end GPT-2: embed → blocks → final LN → LM head.
//!
//! Reproduces the paper's two-stage flow (Fig. 1): [`Gpt2Model::prefill`]
//! runs the prompt through the model to fill the KV cache — outputs of
//! non-final prompt tokens are discarded, so the LM head is only evaluated
//! for the last one — and [`Gpt2Model::decode_step`] generates one token at
//! a time auto-regressively.

use serde::{Deserialize, Serialize};

use looplynx_tensor::norm::layernorm;
use looplynx_tensor::quant::quantize_vec;

use crate::block::block_forward;
use crate::config::ModelConfig;
use crate::kv_cache::KvCache;
use crate::sampler::Sampler;
use crate::weights::Gpt2Weights;

/// A GPT-2 model instance with its KV cache.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Gpt2Model {
    cfg: ModelConfig,
    weights: Gpt2Weights,
    cache: KvCache,
    pos: usize,
}

impl Gpt2Model {
    /// Builds a model with synthetic seeded weights.
    pub fn synthetic(cfg: &ModelConfig, seed: u64) -> Self {
        let weights = Gpt2Weights::synthetic(cfg, seed);
        Self::from_weights(cfg.clone(), weights)
    }

    /// Wraps existing weights.
    ///
    /// The KV arenas start lazy (first append allocates, then doubling
    /// growth re-strides — a handful of copies over a model lifetime):
    /// this model also serves as `DistributedGpt2`'s host-side embedder,
    /// which never touches the cache, so eagerly reserving
    /// `layers × heads × max_seq × d_head × 2` bytes here would be dead
    /// weight per engine. The distributed engine preallocates the caches
    /// it actually appends to (per node, head-sliced) to `max_seq`.
    pub fn from_weights(cfg: ModelConfig, weights: Gpt2Weights) -> Self {
        let cache = KvCache::new(cfg.layers, cfg.d_head());
        Gpt2Model {
            cfg,
            weights,
            cache,
            pos: 0,
        }
    }

    /// The model configuration.
    pub fn config(&self) -> &ModelConfig {
        &self.cfg
    }

    /// The weights (shared with the partitioned multi-node engine).
    pub fn weights(&self) -> &Gpt2Weights {
        &self.weights
    }

    /// Tokens currently in the KV cache.
    pub fn seq_len(&self) -> usize {
        self.pos
    }

    /// The KV cache (for byte accounting).
    pub fn cache(&self) -> &KvCache {
        &self.cache
    }

    /// Clears the KV cache and resets the position.
    pub fn reset(&mut self) {
        self.cache.clear();
        self.pos = 0;
    }

    /// Embedding lookup: token + positional embedding (host-side in the
    /// paper's system).
    ///
    /// # Panics
    ///
    /// Panics if `token` is out of vocabulary or `pos` exceeds `max_seq`.
    pub fn embed(&self, token: u32, pos: usize) -> Vec<f32> {
        assert!(
            (token as usize) < self.cfg.vocab,
            "token {token} out of vocab"
        );
        assert!(pos < self.cfg.max_seq, "position {pos} beyond max_seq");
        self.weights
            .wte
            .row(token as usize)
            .iter()
            .zip(self.weights.wpe.row(pos))
            .map(|(a, b)| a + b)
            .collect()
    }

    /// Runs one token through every block; computes logits only when
    /// `want_logits` (prefill discards non-final outputs, paper Fig. 1).
    fn forward_token(&mut self, token: u32, want_logits: bool) -> Option<Vec<f32>> {
        assert!(
            self.pos < self.cfg.max_seq,
            "sequence exceeded max_seq {}",
            self.cfg.max_seq
        );
        let mut x = self.embed(token, self.pos);
        for (l, block) in self.weights.blocks.iter().enumerate() {
            x = block_forward(&x, block, self.cache.layer_mut(l), &self.cfg, self.pos);
        }
        self.pos += 1;
        if !want_logits {
            return None;
        }
        let h = layernorm(&x, &self.weights.ln_f);
        let hq = quantize_vec(&h);
        Some(self.weights.lm_head.forward(&hq))
    }

    /// Prefill: processes the prompt, fills the KV cache, and returns the
    /// logits after the final prompt token.
    ///
    /// # Panics
    ///
    /// Panics if `prompt` is empty or overruns `max_seq`.
    pub fn prefill(&mut self, prompt: &[u32]) -> Vec<f32> {
        assert!(!prompt.is_empty(), "prompt must not be empty");
        let (last, rest) = prompt.split_last().expect("non-empty");
        for &t in rest {
            self.forward_token(t, false);
        }
        self.forward_token(*last, true).expect("logits requested")
    }

    /// Decode step: feeds one token and returns next-token logits.
    pub fn decode_step(&mut self, token: u32) -> Vec<f32> {
        self.forward_token(token, true).expect("logits requested")
    }

    /// Batched prefill: processes the whole prompt with one weight pass per
    /// layer per linear (GEMM instead of per-token GEMV) — the functional
    /// counterpart of the accelerator's batched-prefill extension.
    /// Bit-identical to [`Gpt2Model::prefill`].
    ///
    /// # Panics
    ///
    /// Panics if `prompt` is empty or overruns `max_seq`.
    pub fn prefill_batched(&mut self, prompt: &[u32]) -> Vec<f32> {
        assert!(!prompt.is_empty(), "prompt must not be empty");
        assert!(
            self.pos + prompt.len() <= self.cfg.max_seq,
            "sequence exceeded max_seq {}",
            self.cfg.max_seq
        );
        let start = self.pos;
        let mut xs: Vec<Vec<f32>> = prompt
            .iter()
            .enumerate()
            .map(|(i, &t)| self.embed(t, start + i))
            .collect();
        for (l, block) in self.weights.blocks.iter().enumerate() {
            xs = crate::block::block_forward_batch(
                &xs,
                block,
                self.cache.layer_mut(l),
                &self.cfg,
                start,
            );
        }
        self.pos += prompt.len();
        let last = xs.last().expect("non-empty batch");
        let h = layernorm(last, &self.weights.ln_f);
        let hq = quantize_vec(&h);
        self.weights.lm_head.forward(&hq)
    }

    /// Generates up to `n` tokens after prefilling `prompt`.
    ///
    /// Returns only the generated tokens. The final sampled token is not
    /// fed back through the model (its successor's logits would be
    /// discarded — one wasted forward pass per call), so after a full
    /// generation `seq_len()` is `prompt.len() + n - 1` and the final
    /// token is absent from the KV cache. To continue a conversation,
    /// start the next call's prompt with the previous call's final output
    /// token so prefill appends it before any new text. The returned
    /// vector is shorter than `n` when the KV cache reaches `max_seq`
    /// (no further token can be forwarded).
    pub fn generate(&mut self, prompt: &[u32], n: usize, sampler: &mut Sampler) -> Vec<u32> {
        let mut logits = self.prefill(prompt);
        let mut out = Vec::with_capacity(n);
        for i in 0..n {
            let next = sampler.sample(&logits);
            out.push(next);
            if i + 1 == n || self.pos >= self.cfg.max_seq {
                break;
            }
            logits = self.decode_step(next);
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn model() -> Gpt2Model {
        Gpt2Model::synthetic(&ModelConfig::tiny(), 99)
    }

    #[test]
    fn prefill_returns_vocab_logits() {
        let mut m = model();
        let logits = m.prefill(&[1, 2, 3]);
        assert_eq!(logits.len(), m.config().vocab);
        assert_eq!(m.seq_len(), 3);
    }

    #[test]
    fn generation_is_deterministic_with_greedy() {
        let mut a = model();
        let mut b = model();
        let ta = a.generate(&[5, 6], 6, &mut Sampler::greedy());
        let tb = b.generate(&[5, 6], 6, &mut Sampler::greedy());
        assert_eq!(ta, tb);
        assert_eq!(ta.len(), 6);
    }

    #[test]
    fn decode_extends_cache() {
        let mut m = model();
        m.prefill(&[1]);
        m.decode_step(2);
        m.decode_step(3);
        assert_eq!(m.seq_len(), 3);
        assert_eq!(m.cache().seq_len(), 3);
    }

    #[test]
    fn reset_clears_state() {
        let mut m = model();
        m.prefill(&[1, 2]);
        m.reset();
        assert_eq!(m.seq_len(), 0);
        assert_eq!(m.cache().byte_len(), 0);
        // usable again after reset
        let logits = m.prefill(&[3]);
        assert_eq!(logits.len(), m.config().vocab);
    }

    #[test]
    fn prefill_then_decode_matches_token_by_token() {
        // Running [a, b] as prefill then decoding c must equal running
        // a, b, c one at a time — the KV-cache equivalence that motivates
        // caching at all.
        let mut fast = model();
        fast.prefill(&[1, 2]);
        let fast_logits = fast.decode_step(3);

        let mut slow = model();
        slow.prefill(&[1]);
        slow.decode_step(2);
        let slow_logits = slow.decode_step(3);

        for (a, b) in fast_logits.iter().zip(&slow_logits) {
            assert!((a - b).abs() < 1e-4, "{a} vs {b}");
        }
    }

    #[test]
    fn batched_prefill_is_bit_identical() {
        let prompt = [1u32, 9, 2, 8, 3, 7];
        let mut seq = model();
        let mut bat = model();
        let a = seq.prefill(&prompt);
        let b = bat.prefill_batched(&prompt);
        assert_eq!(a, b, "batched prefill must match sequential exactly");
        assert_eq!(seq.seq_len(), bat.seq_len());
        // subsequent decoding agrees too (caches are identical)
        assert_eq!(seq.decode_step(4), bat.decode_step(4));
    }

    #[test]
    fn generation_stops_at_max_seq() {
        let mut m = model();
        let max = m.config().max_seq;
        let tokens = m.generate(&[1], max + 50, &mut Sampler::greedy());
        assert!(tokens.len() <= max);
        assert!(m.seq_len() <= max);
    }

    #[test]
    #[should_panic(expected = "out of vocab")]
    fn oov_token_panics() {
        let m = model();
        let _ = m.embed(9999, 0);
    }

    #[test]
    #[should_panic(expected = "must not be empty")]
    fn empty_prompt_panics() {
        let mut m = model();
        let _ = m.prefill(&[]);
    }
}
