//! Power models.
//!
//! The paper obtains FPGA power from the Xilinx power analysis tool and GPU
//! power from `nvidia-smi`, then reports energy per token. We rebuild both
//! instruments:
//!
//! * [`FpgaPowerModel`] — static (shell + board) power per device plus
//!   dynamic power proportional to the resources toggling, calibrated so a
//!   dual-node U50 lands near 38 W — the operating point implied by the
//!   paper's energy ratios (2-node uses 37.3 % of the A100's energy at
//!   1.67× its speed ⇒ ≈0.62× its power).
//! * [`GpuPowerModel`] — idle power plus utilization-scaled dynamic power;
//!   GPT-2-medium decode barely utilizes an A100 (serial token generation),
//!   prefill utilizes it substantially.

use serde::{Deserialize, Serialize};

use crate::resources::ResourceVector;

/// Resource-proportional FPGA power model.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FpgaPowerModel {
    /// Watts per device regardless of activity (shell, HBM PHY, board).
    pub static_watts_per_device: f64,
    /// Dynamic milliwatts per active DSP slice at the kernel clock.
    pub mw_per_dsp: f64,
    /// Dynamic milliwatts per thousand LUTs of active logic.
    pub mw_per_klut: f64,
    /// Dynamic milliwatts per BRAM36 under continuous access.
    pub mw_per_bram: f64,
    /// Watts per active HBM channel (controller + PHY activity).
    pub watts_per_hbm_channel: f64,
}

impl FpgaPowerModel {
    /// Calibrated model for the paper's Alveo U50 design point.
    pub fn paper() -> Self {
        FpgaPowerModel {
            static_watts_per_device: 16.0,
            mw_per_dsp: 2.5,
            mw_per_klut: 40.0,
            mw_per_bram: 4.0,
            watts_per_hbm_channel: 0.35,
        }
    }

    /// Dynamic watts of one node given its resources and HBM channels,
    /// scaled by `activity` (0‥1 average toggle/occupancy factor).
    ///
    /// # Panics
    ///
    /// Panics if `activity` is outside `[0, 1]`.
    pub fn node_dynamic_watts(
        &self,
        node: &ResourceVector,
        hbm_channels: usize,
        activity: f64,
    ) -> f64 {
        assert!((0.0..=1.0).contains(&activity), "activity must be in [0,1]");
        let logic = node.dsp * self.mw_per_dsp / 1e3
            + node.lut / 1e3 * self.mw_per_klut / 1e3
            + node.bram * self.mw_per_bram / 1e3;
        (logic + hbm_channels as f64 * self.watts_per_hbm_channel) * activity
    }

    /// Total board power: devices × static + Σ node dynamic.
    pub fn total_watts(
        &self,
        devices: usize,
        node: &ResourceVector,
        nodes: usize,
        hbm_channels_per_node: usize,
        activity: f64,
    ) -> f64 {
        devices as f64 * self.static_watts_per_device
            + nodes as f64 * self.node_dynamic_watts(node, hbm_channels_per_node, activity)
    }
}

/// Utilization-based GPU power model.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct GpuPowerModel {
    /// Idle board power in watts.
    pub idle_watts: f64,
    /// Power at 100 % utilization (TDP) in watts.
    pub peak_watts: f64,
}

impl GpuPowerModel {
    /// Calibrated A100 model: 45 W idle, 300 W TDP.
    pub fn a100() -> Self {
        GpuPowerModel {
            idle_watts: 45.0,
            peak_watts: 300.0,
        }
    }

    /// Power at the given utilization.
    ///
    /// # Panics
    ///
    /// Panics if `utilization` is outside `[0, 1]`.
    pub fn watts_at(&self, utilization: f64) -> f64 {
        assert!(
            (0.0..=1.0).contains(&utilization),
            "utilization must be in [0,1]"
        );
        self.idle_watts + utilization * (self.peak_watts - self.idle_watts)
    }
}

/// Energy in joules for running at `watts` for `seconds`.
pub fn energy_joules(watts: f64, seconds: f64) -> f64 {
    assert!(watts >= 0.0 && seconds >= 0.0, "negative power or time");
    watts * seconds
}

/// Tokens per joule given tokens produced and energy consumed.
///
/// # Panics
///
/// Panics if `joules` is not strictly positive.
pub fn tokens_per_joule(tokens: usize, joules: f64) -> f64 {
    assert!(joules > 0.0, "energy must be positive");
    tokens as f64 / joules
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::resources::NodeResourceModel;

    #[test]
    fn dual_node_u50_lands_near_calibration_point() {
        let p = FpgaPowerModel::paper();
        let node = NodeResourceModel::paper().per_node(2);
        let w = p.total_watts(1, &node, 2, 12, 1.0);
        assert!(w > 30.0 && w < 45.0, "dual-node power {w} W");
    }

    #[test]
    fn single_node_uses_less_than_dual() {
        let p = FpgaPowerModel::paper();
        let m = NodeResourceModel::paper();
        let one = p.total_watts(1, &m.per_node(1), 1, 12, 1.0);
        let two = p.total_watts(1, &m.per_node(2), 2, 12, 1.0);
        assert!(one < two);
        assert!(one > 20.0, "single-node power {one} W");
    }

    #[test]
    fn four_nodes_need_two_boards_of_static_power() {
        let p = FpgaPowerModel::paper();
        let m = NodeResourceModel::paper();
        let four = p.total_watts(2, &m.per_node(4), 4, 12, 1.0);
        let two = p.total_watts(1, &m.per_node(2), 2, 12, 1.0);
        assert!(four > 1.8 * two, "four-node {four} vs two-node {two}");
    }

    #[test]
    fn power_stays_under_tdp() {
        let p = FpgaPowerModel::paper();
        let node = NodeResourceModel::paper().per_node(2);
        let w = p.total_watts(1, &node, 2, 16, 1.0);
        assert!(w < 75.0, "exceeds U50 TDP: {w}");
    }

    #[test]
    fn activity_scales_dynamic_only() {
        let p = FpgaPowerModel::paper();
        let node = NodeResourceModel::paper().per_node(2);
        let idle = p.total_watts(1, &node, 2, 12, 0.0);
        assert!((idle - p.static_watts_per_device).abs() < 1e-9);
    }

    #[test]
    fn gpu_power_interpolates() {
        let g = GpuPowerModel::a100();
        assert_eq!(g.watts_at(0.0), 45.0);
        assert_eq!(g.watts_at(1.0), 300.0);
        let mid = g.watts_at(0.5);
        assert!(mid > 45.0 && mid < 300.0);
    }

    #[test]
    fn decode_utilization_power_is_modest() {
        // the design point behind the paper's energy story: A100 drawing
        // ~65 W during serial decode
        let g = GpuPowerModel::a100();
        let w = g.watts_at(0.08);
        assert!(w > 55.0 && w < 75.0, "decode power {w}");
    }

    #[test]
    fn energy_helpers() {
        assert_eq!(energy_joules(10.0, 2.0), 20.0);
        assert!((tokens_per_joule(100, 20.0) - 5.0).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "must be in [0,1]")]
    fn utilization_validated() {
        let _ = GpuPowerModel::a100().watts_at(1.5);
    }
}
