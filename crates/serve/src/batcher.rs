//! The serving schedulers: continuous batching and the sequential
//! baseline.
//!
//! Both run on the cycle-accurate [`LoopLynx`] timing engine and share the
//! same per-request cost model, so their difference is purely scheduling:
//!
//! * [`serve_sequential`] — one request at a time, start to finish. The
//!   accelerator streams every weight pass for a single token.
//! * [`serve_continuous`] — *continuous batching*: new requests are
//!   admitted into the decode loop between iterations (prefill runs on the
//!   existing batched-prefill path), and each decode iteration advances
//!   every active request by one token while sharing every weight pass
//!   ([`looplynx_core::scheduler::Scheduler::schedule_decode_batch`]).
//!
//! A request's first output token is sampled from its prefill logits, so
//! TTFT = queue wait + prefill; the remaining `decode_tokens - 1` tokens
//! each take one decode iteration. Admission is strictly FIFO in arrival
//! order, which makes starvation impossible: every admitted request stays
//! resident until it completes, and the queue head is always admitted
//! first.

use std::collections::VecDeque;

use serde::{Deserialize, Serialize};

use looplynx_core::engine::LoopLynx;
use looplynx_sim::stats::Summary;

use crate::metrics::ServingReport;
use crate::request::{Request, RequestMetrics};

/// Serving-policy knobs.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct ServeConfig {
    max_batch: usize,
}

impl ServeConfig {
    /// Creates a configuration with the given decode-batch ceiling.
    ///
    /// # Panics
    ///
    /// Panics if `max_batch` is zero or exceeds
    /// [`looplynx_core::config::MAX_WEIGHT_SHARING_BATCH`] (the on-chip
    /// activation-buffer bound shared with the batched-prefill extension).
    pub fn new(max_batch: usize) -> Self {
        assert!(
            (1..=looplynx_core::config::MAX_WEIGHT_SHARING_BATCH).contains(&max_batch),
            "max_batch must be 1..={} (bounded by on-chip activation buffer)",
            looplynx_core::config::MAX_WEIGHT_SHARING_BATCH
        );
        ServeConfig { max_batch }
    }

    /// Maximum concurrent requests in one decode iteration.
    pub fn max_batch(&self) -> usize {
        self.max_batch
    }
}

impl Default for ServeConfig {
    /// Eight concurrent requests — deep enough to amortize weight
    /// streaming, shallow enough for the activation buffer.
    fn default() -> Self {
        ServeConfig::new(8)
    }
}

/// A request resident in the decode loop.
#[derive(Debug)]
struct Active {
    req: Request,
    first_token_ms: f64,
    /// Output tokens emitted so far (≥ 1 — the prefill emits the first).
    produced: usize,
}

impl Active {
    /// KV-cache length after the *next* decode pass appends its token
    /// (the cache holds the prompt plus every emitted token but the
    /// latest, which the pass itself appends).
    fn next_context(&self) -> usize {
        self.req.prefill_tokens + self.produced
    }
}

/// Sorts requests by arrival (stable: ties keep workload order) and
/// validates them against the engine's model.
fn admission_queue(engine: &LoopLynx, requests: &[Request]) -> VecDeque<Request> {
    let max_seq = engine.model().max_seq;
    for r in requests {
        assert!(
            r.peak_context() <= max_seq,
            "request {}: {} prompt + {} output tokens exceed max_seq {max_seq}",
            r.id,
            r.prefill_tokens,
            r.decode_tokens
        );
    }
    let mut sorted: Vec<Request> = requests.to_vec();
    sorted.sort_by(|a, b| {
        a.arrival_ms
            .partial_cmp(&b.arrival_ms)
            .expect("arrival times are finite")
    });
    sorted.into()
}

/// Runs one request's prefill at the current clock; returns the updated
/// clock (= its first-token timestamp).
fn run_prefill(engine: &LoopLynx, req: &Request, clock: f64) -> f64 {
    let start = clock.max(req.arrival_ms);
    start
        + engine
            .simulate_prefill(req.prefill_tokens)
            .to_millis(engine.arch())
}

/// Serves the workload with continuous batching.
///
/// Between decode iterations the scheduler admits every arrived request
/// (FIFO) up to `cfg.max_batch()` residents; admission runs the prompt
/// through the batched-prefill path and emits the request's first token.
/// Each decode iteration then advances all residents by one token on the
/// shared weight stream. When the loop is empty the clock jumps to the
/// next arrival.
///
/// # Panics
///
/// Panics if any request would overflow the model's `max_seq`.
pub fn serve_continuous(
    engine: &LoopLynx,
    requests: &[Request],
    cfg: &ServeConfig,
) -> ServingReport {
    let mut queue = admission_queue(engine, requests);
    let mut active: Vec<Active> = Vec::new();
    let mut done: Vec<RequestMetrics> = Vec::new();
    let mut occupancy = Summary::new();
    let mut iterations = 0u64;
    let mut clock = 0.0f64;

    while !queue.is_empty() || !active.is_empty() {
        // Idle: jump to the next arrival.
        if active.is_empty() {
            if let Some(front) = queue.front() {
                clock = clock.max(front.arrival_ms);
            }
        }
        // Admit every arrived request, FIFO, up to the batch ceiling.
        while active.len() < cfg.max_batch() && queue.front().is_some_and(|r| r.arrival_ms <= clock)
        {
            let req = queue.pop_front().expect("front checked");
            clock = run_prefill(engine, &req, clock);
            if req.decode_tokens == 1 {
                done.push(RequestMetrics {
                    id: req.id,
                    arrival_ms: req.arrival_ms,
                    first_token_ms: clock,
                    completion_ms: clock,
                    prefill_tokens: req.prefill_tokens,
                    decode_tokens: 1,
                });
            } else {
                active.push(Active {
                    first_token_ms: clock,
                    produced: 1,
                    req,
                });
            }
        }
        if active.is_empty() {
            continue;
        }

        // One decode iteration: every resident gains one token.
        let contexts: Vec<usize> = active.iter().map(Active::next_context).collect();
        clock += engine
            .simulate_decode_batch(&contexts)
            .to_millis(engine.arch());
        iterations += 1;
        occupancy.add(active.len() as f64);
        for a in &mut active {
            a.produced += 1;
        }
        active.retain(|a| {
            if a.produced == a.req.decode_tokens {
                done.push(RequestMetrics {
                    id: a.req.id,
                    arrival_ms: a.req.arrival_ms,
                    first_token_ms: a.first_token_ms,
                    completion_ms: clock,
                    prefill_tokens: a.req.prefill_tokens,
                    decode_tokens: a.req.decode_tokens,
                });
                false
            } else {
                true
            }
        });
    }
    ServingReport::new(done, iterations, occupancy)
}

/// Serves the workload one request at a time (the baseline continuous
/// batching is measured against): each request runs prefill and its full
/// decode before the next request starts.
///
/// # Panics
///
/// Panics if any request would overflow the model's `max_seq`.
pub fn serve_sequential(engine: &LoopLynx, requests: &[Request]) -> ServingReport {
    let queue = admission_queue(engine, requests);
    let mut done: Vec<RequestMetrics> = Vec::new();
    let mut occupancy = Summary::new();
    let mut iterations = 0u64;
    let mut clock = 0.0f64;

    for req in queue {
        clock = run_prefill(engine, &req, clock);
        let first_token_ms = clock;
        // Decode passes for tokens 2..=decode_tokens, one at a time on the
        // same cost model as the batched path (a singleton batch is
        // cycle-identical to a plain decode token).
        for t in 1..req.decode_tokens {
            let ctx = req.prefill_tokens + t;
            clock += engine
                .simulate_decode_batch(&[ctx])
                .to_millis(engine.arch());
            iterations += 1;
            occupancy.add(1.0);
        }
        done.push(RequestMetrics {
            id: req.id,
            arrival_ms: req.arrival_ms,
            first_token_ms,
            completion_ms: clock,
            prefill_tokens: req.prefill_tokens,
            decode_tokens: req.decode_tokens,
        });
    }
    ServingReport::new(done, iterations, occupancy)
}

#[cfg(test)]
mod tests {
    use super::*;
    use looplynx_core::config::ArchConfig;
    use looplynx_model::config::ModelConfig;

    use crate::arrival::ArrivalProcess;

    fn engine(nodes: usize) -> LoopLynx {
        LoopLynx::new(
            ModelConfig::gpt2_medium(),
            ArchConfig::builder().nodes(nodes).build().unwrap(),
        )
        .unwrap()
    }

    fn saturating_workload(n: usize) -> Vec<Request> {
        // Everything arrives at t=0: maximal queueing pressure.
        ArrivalProcess::Trace(vec![0.0; n]).workload(n, &[(16, 8)])
    }

    #[test]
    fn all_requests_complete_with_exact_token_counts() {
        let e = engine(2);
        let reqs = saturating_workload(6);
        let report = serve_continuous(&e, &reqs, &ServeConfig::default());
        assert_eq!(report.completed(), 6);
        assert_eq!(report.total_tokens(), 6 * 8);
        for m in &report.requests {
            assert!(m.first_token_ms >= m.arrival_ms);
            assert!(m.completion_ms >= m.first_token_ms);
        }
    }

    #[test]
    fn continuous_beats_sequential_under_load() {
        let e = engine(2);
        let reqs = saturating_workload(6);
        let batched = serve_continuous(&e, &reqs, &ServeConfig::default());
        let serial = serve_sequential(&e, &reqs);
        assert!(
            batched.tokens_per_second() > serial.tokens_per_second(),
            "batched {} vs sequential {}",
            batched.tokens_per_second(),
            serial.tokens_per_second()
        );
        assert!(batched.batch_occupancy.mean() > 1.0);
    }

    #[test]
    fn max_batch_one_equals_sequential() {
        // With a batch ceiling of 1 the continuous scheduler degenerates to
        // the sequential baseline exactly.
        let e = engine(1);
        let reqs = ArrivalProcess::Trace(vec![0.0, 3.0, 9.0]).workload(3, &[(12, 5), (8, 3)]);
        let a = serve_continuous(&e, &reqs, &ServeConfig::new(1));
        let b = serve_sequential(&e, &reqs);
        assert_eq!(a.requests.len(), b.requests.len());
        for (x, y) in a.requests.iter().zip(&b.requests) {
            assert_eq!(x.id, y.id);
            assert!((x.first_token_ms - y.first_token_ms).abs() < 1e-9);
            assert!((x.completion_ms - y.completion_ms).abs() < 1e-9);
        }
    }

    #[test]
    fn idle_engine_waits_for_arrivals() {
        let e = engine(1);
        let reqs = ArrivalProcess::Trace(vec![1000.0]).workload(1, &[(8, 4)]);
        let report = serve_continuous(&e, &reqs, &ServeConfig::default());
        assert!(report.requests[0].first_token_ms >= 1000.0);
        // TTFT excludes the idle wait before arrival
        assert!(report.requests[0].ttft_ms() < 500.0);
    }

    #[test]
    fn single_token_requests_complete_at_prefill() {
        let e = engine(1);
        let reqs = ArrivalProcess::Trace(vec![0.0]).workload(1, &[(8, 1)]);
        let report = serve_continuous(&e, &reqs, &ServeConfig::default());
        assert_eq!(report.decode_iterations, 0);
        let m = &report.requests[0];
        assert_eq!(m.first_token_ms, m.completion_ms);
    }

    #[test]
    fn fifo_admission_preserves_arrival_order_of_first_tokens() {
        let e = engine(2);
        let reqs = ArrivalProcess::Trace(vec![0.0, 0.0, 0.0, 50.0, 60.0]).workload(5, &[(16, 12)]);
        let report = serve_continuous(&e, &reqs, &ServeConfig::new(2));
        let mut by_id: Vec<&RequestMetrics> = report.requests.iter().collect();
        by_id.sort_by_key(|m| m.id);
        for pair in by_id.windows(2) {
            assert!(
                pair[0].first_token_ms <= pair[1].first_token_ms,
                "FIFO violated: {} after {}",
                pair[0].id,
                pair[1].id
            );
        }
    }

    #[test]
    #[should_panic(expected = "exceed max_seq")]
    fn oversized_request_rejected() {
        let e = engine(1);
        let reqs = vec![Request::new(0, 0.0, 1000, 100)];
        let _ = serve_continuous(&e, &reqs, &ServeConfig::default());
    }
}
