//! Execution backends: one serving contract, two substrates.
//!
//! The serving layer (`looplynx-serve`) schedules requests; *how* a
//! prefill or a batched decode iteration actually executes is the
//! backend's business. [`InferenceBackend`] is that seam:
//!
//! * [`SimBackend`] — the cycle-accurate [`LoopLynx`] timing engine.
//!   Nothing is computed; every operation returns the simulated
//!   accelerator wall-clock. Use it for scheduling studies, offered-load
//!   sweeps and paper reproduction, where the metric is *modelled* time.
//! * [`FunctionalBackend`] — the real W8A8 [`DistributedGpt2`] pipeline
//!   over a multi-sequence slot arena. Tokens are actually produced
//!   (per-request samplers over real logits), batched decode shares every
//!   weight stream across residents, and operations report measured host
//!   wall-clock. Use it to serve real prompts and to measure functional
//!   throughput.
//!
//! The contract mirrors continuous batching's shape: admission runs one
//! prompt (`prefill`, returning a slot and — for token-producing
//! backends — the request's first output token, sampled from the prefill
//! logits), each decode iteration advances a *batch* of resident slots by
//! one token, and completed requests release their slots.

use std::time::Instant;

use looplynx_model::sampler::Sampler;

use crate::engine::{DistributedGpt2, LoopLynx};

/// Outcome of admitting one request's prompt.
#[derive(Debug, Clone, PartialEq)]
pub struct PrefillOutcome {
    /// Slot the sequence now occupies (pass to
    /// [`InferenceBackend::decode_batch`] / [`InferenceBackend::release`]).
    pub slot: usize,
    /// Time the prefill took, in the backend's clock domain (simulated
    /// accelerator ms or measured host ms).
    pub elapsed_ms: f64,
    /// The request's first output token, sampled from the prefill logits
    /// (`None` for timing-only backends).
    pub first_token: Option<u32>,
}

/// Outcome of one batched decode iteration.
#[derive(Debug, Clone, PartialEq)]
pub struct DecodeOutcome {
    /// Time the iteration took, in the backend's clock domain.
    pub elapsed_ms: f64,
    /// Next token per requested slot, in call order (`None` for
    /// timing-only backends).
    pub tokens: Option<Vec<u32>>,
}

/// The execution substrate behind the serving schedulers.
///
/// Slot discipline: `prefill` claims a slot, every `decode_batch` may
/// include it at most once, `release` frees it. A slot's sequence length
/// grows by one per decode iteration; the backend enforces its own
/// capacity bounds.
pub trait InferenceBackend {
    /// Short name for reports (`"sim"`, `"functional"`).
    fn name(&self) -> &'static str;

    /// Longest prompt + output a resident sequence can hold. The
    /// scheduler must reject requests whose peak context exceeds this.
    fn max_seq(&self) -> usize;

    /// Sequences the backend can hold resident simultaneously (the
    /// admission ceiling alongside the scheduler's own batch bound).
    fn capacity(&self) -> usize;

    /// Admits one prompt: claims a slot, processes `prompt_len` prompt
    /// tokens, and (for token-producing backends) samples the first
    /// output token with a sampler seeded by `sampler_seed`.
    ///
    /// `prompt` carries the real token ids when the workload has them;
    /// timing-only backends ignore it, token-producing backends require
    /// it.
    ///
    /// # Panics
    ///
    /// Panics if no slot is free (call sites must respect
    /// [`InferenceBackend::capacity`]) or a required prompt is missing.
    fn prefill(
        &mut self,
        prompt_len: usize,
        prompt: Option<&[u32]>,
        sampler_seed: u64,
    ) -> PrefillOutcome;

    /// One decode iteration: every slot in `slots` advances by one token,
    /// sharing every weight pass.
    ///
    /// # Panics
    ///
    /// Panics if `slots` is empty, repeats a slot, or names a free slot.
    fn decode_batch(&mut self, slots: &[usize]) -> DecodeOutcome;

    /// Frees a completed request's slot.
    ///
    /// # Panics
    ///
    /// Panics if the slot is not resident.
    fn release(&mut self, slot: usize);
}

// ------------------------------------------------------------ SimBackend

/// The timing substrate: scheduling against the cycle-accurate
/// [`LoopLynx`] engine. Tracks one context counter per resident slot and
/// charges [`LoopLynx::simulate_prefill`] /
/// [`LoopLynx::simulate_decode_batch`] time; no tokens are produced.
#[derive(Debug)]
pub struct SimBackend<'a> {
    engine: &'a LoopLynx,
    /// Per-slot KV context (prompt + produced-but-one tokens); `None`
    /// marks a free slot. Grows on demand up to [`SimBackend::capacity`].
    contexts: Vec<Option<usize>>,
}

impl<'a> SimBackend<'a> {
    /// Wraps a timing engine.
    pub fn new(engine: &'a LoopLynx) -> Self {
        SimBackend {
            engine,
            contexts: Vec::new(),
        }
    }

    /// The underlying timing engine.
    pub fn engine(&self) -> &LoopLynx {
        self.engine
    }
}

impl InferenceBackend for SimBackend<'_> {
    fn name(&self) -> &'static str {
        "sim"
    }

    fn max_seq(&self) -> usize {
        self.engine.model().max_seq
    }

    fn capacity(&self) -> usize {
        // One decode iteration shares weight passes across all residents,
        // bounded by the on-chip activation buffer.
        crate::config::MAX_WEIGHT_SHARING_BATCH
    }

    fn prefill(
        &mut self,
        prompt_len: usize,
        _prompt: Option<&[u32]>,
        _sampler_seed: u64,
    ) -> PrefillOutcome {
        let slot = match self.contexts.iter().position(Option::is_none) {
            Some(free) => free,
            None => {
                assert!(self.contexts.len() < self.capacity(), "no free slot");
                self.contexts.push(None);
                self.contexts.len() - 1
            }
        };
        self.contexts[slot] = Some(prompt_len);
        PrefillOutcome {
            slot,
            elapsed_ms: self
                .engine
                .simulate_prefill(prompt_len)
                .to_millis(self.engine.arch()),
            first_token: None,
        }
    }

    fn decode_batch(&mut self, slots: &[usize]) -> DecodeOutcome {
        // Context of each pass is the post-append cache length, exactly as
        // the pre-trait scheduler computed it.
        let contexts: Vec<usize> = slots
            .iter()
            .map(|&s| self.contexts[s].expect("decode on free slot") + 1)
            .collect();
        let elapsed_ms = self
            .engine
            .simulate_decode_batch(&contexts)
            .to_millis(self.engine.arch());
        for &s in slots {
            *self.contexts[s].as_mut().expect("decode on free slot") += 1;
        }
        DecodeOutcome {
            elapsed_ms,
            tokens: None,
        }
    }

    fn release(&mut self, slot: usize) {
        assert!(
            self.contexts[slot].take().is_some(),
            "slot {slot} not resident"
        );
    }
}

// ----------------------------------------------------- FunctionalBackend

/// How the functional backend samples each request's tokens. Every
/// request gets its *own* sampler (seeded by the scheduler, normally with
/// the request id), so batching order cannot perturb any request's output
/// stream.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum SamplerSpec {
    /// Deterministic arg-max decoding.
    Greedy,
    /// Top-k sampling at a temperature, seeded per request.
    TopK {
        /// Candidates kept.
        k: usize,
        /// Softmax temperature (> 0).
        temperature: f32,
    },
}

impl SamplerSpec {
    fn build(self, seed: u64) -> Sampler {
        match self {
            SamplerSpec::Greedy => Sampler::greedy(),
            SamplerSpec::TopK { k, temperature } => Sampler::top_k(k, temperature, seed),
        }
    }
}

/// One resident sequence's generation state.
#[derive(Debug)]
struct Resident {
    sampler: Sampler,
    /// Most recently sampled token — fed to the model by the next decode
    /// pass (the pass that makes it part of the KV history).
    last_token: u32,
}

/// The functional substrate: real W8A8 inference on a [`DistributedGpt2`]
/// built with [`DistributedGpt2::with_slots`]. Prefill runs the prompt
/// into the request's slot and samples its first output token; each
/// decode iteration feeds every resident's last token through the batched
/// pipeline (one weight stream per layer per step, shared by all) and
/// samples the next. Reported times are measured host wall-clock.
#[derive(Debug)]
pub struct FunctionalBackend {
    engine: DistributedGpt2,
    spec: SamplerSpec,
    residents: Vec<Option<Resident>>,
}

impl FunctionalBackend {
    /// Wraps a slot-capable engine. All slots must be free (build the
    /// engine with [`DistributedGpt2::with_slots`]).
    ///
    /// # Panics
    ///
    /// Panics if any slot is already resident.
    pub fn new(engine: DistributedGpt2, spec: SamplerSpec) -> Self {
        assert_eq!(
            engine.free_slots(),
            engine.slots(),
            "functional backend needs an engine with all slots free \
             (DistributedGpt2::with_slots)"
        );
        let slots = engine.slots();
        FunctionalBackend {
            engine,
            spec,
            residents: (0..slots).map(|_| None).collect(),
        }
    }

    /// The underlying functional engine.
    pub fn engine(&self) -> &DistributedGpt2 {
        &self.engine
    }
}

impl InferenceBackend for FunctionalBackend {
    fn name(&self) -> &'static str {
        "functional"
    }

    fn max_seq(&self) -> usize {
        self.engine.slot_capacity()
    }

    fn capacity(&self) -> usize {
        self.engine.slots()
    }

    fn prefill(
        &mut self,
        prompt_len: usize,
        prompt: Option<&[u32]>,
        sampler_seed: u64,
    ) -> PrefillOutcome {
        let prompt = prompt.expect(
            "functional backend needs real prompt tokens \
             (Request::with_prompt / ArrivalProcess::workload_with_prompts)",
        );
        assert_eq!(prompt.len(), prompt_len, "prompt length mismatch");
        let start = Instant::now();
        let slot = self.engine.acquire_slot().expect("no free slot");
        let logits = self.engine.prefill_slot(slot, prompt);
        let mut sampler = self.spec.build(sampler_seed);
        let first = sampler.sample(&logits);
        self.residents[slot] = Some(Resident {
            sampler,
            last_token: first,
        });
        PrefillOutcome {
            slot,
            elapsed_ms: start.elapsed().as_secs_f64() * 1e3,
            first_token: Some(first),
        }
    }

    fn decode_batch(&mut self, slots: &[usize]) -> DecodeOutcome {
        let entries: Vec<(usize, u32)> = slots
            .iter()
            .map(|&s| {
                (
                    s,
                    self.residents[s]
                        .as_ref()
                        .expect("decode on free slot")
                        .last_token,
                )
            })
            .collect();
        let start = Instant::now();
        let logits = self.engine.decode_step_batch(&entries);
        let tokens: Vec<u32> = slots
            .iter()
            .zip(&logits)
            .map(|(&s, row)| {
                let resident = self.residents[s].as_mut().expect("decode on free slot");
                let next = resident.sampler.sample(row);
                resident.last_token = next;
                next
            })
            .collect();
        // Sampling is part of the serving pipeline's critical path, so it
        // bills to the clock here exactly as prefill bills its first-token
        // sample.
        DecodeOutcome {
            elapsed_ms: start.elapsed().as_secs_f64() * 1e3,
            tokens: Some(tokens),
        }
    }

    fn release(&mut self, slot: usize) {
        assert!(
            self.residents[slot].take().is_some(),
            "slot {slot} not resident"
        );
        self.engine.release_slot(slot);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::ArchConfig;
    use crate::router::RingMode;
    use looplynx_model::config::ModelConfig;
    use looplynx_model::generate::Autoregressive;
    use looplynx_model::gpt2::Gpt2Model;

    #[test]
    fn sim_backend_charges_engine_time_exactly() {
        let engine = LoopLynx::new(
            ModelConfig::gpt2_medium(),
            ArchConfig::builder().nodes(2).build().unwrap(),
        )
        .unwrap();
        let mut backend = SimBackend::new(&engine);
        let p = backend.prefill(16, None, 0);
        assert_eq!(
            p.elapsed_ms,
            engine.simulate_prefill(16).to_millis(engine.arch())
        );
        assert_eq!(p.first_token, None);
        let d = backend.decode_batch(&[p.slot]);
        assert_eq!(
            d.elapsed_ms,
            engine.simulate_decode_batch(&[17]).to_millis(engine.arch())
        );
        // context advanced: next pass is one longer
        let d2 = backend.decode_batch(&[p.slot]);
        assert_eq!(
            d2.elapsed_ms,
            engine.simulate_decode_batch(&[18]).to_millis(engine.arch())
        );
        backend.release(p.slot);
        // slot is recyclable
        let p2 = backend.prefill(8, None, 1);
        assert_eq!(p2.slot, p.slot);
    }

    #[test]
    fn functional_backend_matches_lone_generation() {
        let cfg = ModelConfig::tiny();
        let model = Gpt2Model::synthetic(&cfg, 1234);
        let engine = DistributedGpt2::with_slots(&model, 2, RingMode::Exact, 3, 32).unwrap();
        let mut backend = FunctionalBackend::new(engine, SamplerSpec::Greedy);

        let prompts = [vec![1u32, 2, 3], vec![7u32, 6], vec![9u32, 9, 1, 4]];
        let outs: Vec<PrefillOutcome> = prompts
            .iter()
            .enumerate()
            .map(|(i, p)| backend.prefill(p.len(), Some(p), i as u64))
            .collect();
        let mut produced: Vec<Vec<u32>> =
            outs.iter().map(|o| vec![o.first_token.unwrap()]).collect();
        let slots: Vec<usize> = outs.iter().map(|o| o.slot).collect();
        for _ in 0..4 {
            let d = backend.decode_batch(&slots);
            for (seq, &tok) in produced.iter_mut().zip(d.tokens.as_ref().unwrap()) {
                seq.push(tok);
            }
        }
        for (i, prompt) in prompts.iter().enumerate() {
            let mut lone = model.clone();
            let expected = lone.generate(prompt, 5, &mut Sampler::greedy());
            assert_eq!(produced[i], expected, "sequence {i} diverged");
        }
    }

    #[test]
    #[should_panic(expected = "real prompt tokens")]
    fn functional_backend_requires_prompts() {
        let model = Gpt2Model::synthetic(&ModelConfig::tiny(), 9);
        let engine = DistributedGpt2::with_slots(&model, 1, RingMode::Exact, 1, 8).unwrap();
        let mut backend = FunctionalBackend::new(engine, SamplerSpec::Greedy);
        let _ = backend.prefill(4, None, 0);
    }
}
