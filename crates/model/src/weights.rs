//! Seeded synthetic weight generation.
//!
//! GPT-2 checkpoints are unavailable offline, so the reproduction uses
//! synthetic weights drawn from the initializer distribution GPT-2 itself
//! uses (`N(0, 0.02)`, with the residual-projection scaling of the original
//! paper). All timing and energy results depend only on tensor *shapes*;
//! functional correctness (quantized integer pipeline vs f32 reference,
//! single-node vs multi-node equivalence) is exercised with these weights
//! on small configs where every value flows through the same code paths a
//! real checkpoint would.

use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};
use serde::{Deserialize, Serialize};

use looplynx_tensor::linear::QuantLinear;
use looplynx_tensor::matrix::Matrix;
use looplynx_tensor::norm::LayerNormParams;

use crate::config::ModelConfig;

/// Weights of one transformer block.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct BlockWeights {
    /// Pre-attention layernorm.
    pub ln1: LayerNormParams,
    /// Fused QKV projection (`3·d_model × d_model`).
    pub qkv: QuantLinear,
    /// Attention output projection (`d_model × d_model`).
    pub proj: QuantLinear,
    /// Pre-MLP layernorm.
    pub ln2: LayerNormParams,
    /// MLP up-projection (`d_ff × d_model`).
    pub fc1: QuantLinear,
    /// MLP down-projection (`d_model × d_ff`).
    pub fc2: QuantLinear,
}

/// Full model weights.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Gpt2Weights {
    /// Token embedding table (`vocab × d_model`, f32 — looked up on the
    /// host in the paper's system, not streamed through the accelerator).
    pub wte: Matrix<f32>,
    /// Positional embedding table (`max_seq × d_model`).
    pub wpe: Matrix<f32>,
    /// Transformer blocks.
    pub blocks: Vec<BlockWeights>,
    /// Final layernorm.
    pub ln_f: LayerNormParams,
    /// LM head (`vocab × d_model`).
    pub lm_head: QuantLinear,
}

/// Draws from an approximately normal distribution with the given standard
/// deviation (Irwin–Hall sum of 12 uniforms; exact normality is irrelevant
/// here, the initializer just needs a symmetric bell shape).
fn normal(rng: &mut StdRng, std: f32) -> f32 {
    let sum: f32 = (0..12).map(|_| rng.random::<f32>()).sum();
    (sum - 6.0) * std
}

fn random_matrix(rng: &mut StdRng, rows: usize, cols: usize, std: f32) -> Matrix<f32> {
    Matrix::from_fn(rows, cols, |_, _| normal(rng, std))
}

fn random_linear(rng: &mut StdRng, rows: usize, cols: usize, std: f32) -> QuantLinear {
    let w = random_matrix(rng, rows, cols, std);
    let bias: Vec<f32> = (0..rows).map(|_| normal(rng, 0.01)).collect();
    QuantLinear::from_f32(&w, &bias).expect("bias length matches rows")
}

fn random_layernorm(rng: &mut StdRng, dim: usize) -> LayerNormParams {
    let gamma: Vec<f32> = (0..dim).map(|_| 1.0 + normal(rng, 0.05)).collect();
    let beta: Vec<f32> = (0..dim).map(|_| normal(rng, 0.02)).collect();
    LayerNormParams::new(gamma, beta, 1e-5).expect("equal lengths")
}

impl Gpt2Weights {
    /// Generates reproducible synthetic weights for `cfg` from `seed`.
    ///
    /// GPT-2's initializer: `N(0, 0.02)` everywhere, residual projections
    /// scaled by `1/sqrt(2·layers)`.
    pub fn synthetic(cfg: &ModelConfig, seed: u64) -> Self {
        let mut rng = StdRng::seed_from_u64(seed);
        let std = 0.02f32;
        let resid_std = std / ((2 * cfg.layers) as f32).sqrt();
        let blocks = (0..cfg.layers)
            .map(|_| BlockWeights {
                ln1: random_layernorm(&mut rng, cfg.d_model),
                qkv: random_linear(&mut rng, 3 * cfg.d_model, cfg.d_model, std),
                proj: random_linear(&mut rng, cfg.d_model, cfg.d_model, resid_std),
                ln2: random_layernorm(&mut rng, cfg.d_model),
                fc1: random_linear(&mut rng, cfg.d_ff, cfg.d_model, std),
                fc2: random_linear(&mut rng, cfg.d_model, cfg.d_ff, resid_std),
            })
            .collect();
        Gpt2Weights {
            wte: random_matrix(&mut rng, cfg.vocab, cfg.d_model, std),
            wpe: random_matrix(&mut rng, cfg.max_seq, cfg.d_model, 0.01),
            blocks,
            ln_f: random_layernorm(&mut rng, cfg.d_model),
            lm_head: random_linear(&mut rng, cfg.vocab, cfg.d_model, std),
        }
    }

    /// Total int8 weight bytes across blocks and LM head — must agree with
    /// [`ModelConfig::weights_bytes_total`].
    pub fn weight_bytes(&self) -> usize {
        let block_bytes: usize = self
            .blocks
            .iter()
            .map(|b| {
                b.qkv.weight_bytes()
                    + b.proj.weight_bytes()
                    + b.fc1.weight_bytes()
                    + b.fc2.weight_bytes()
            })
            .sum();
        block_bytes + self.lm_head.weight_bytes()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generation_is_deterministic() {
        let cfg = ModelConfig::tiny();
        let a = Gpt2Weights::synthetic(&cfg, 7);
        let b = Gpt2Weights::synthetic(&cfg, 7);
        assert_eq!(a.blocks[0].qkv.weight(), b.blocks[0].qkv.weight());
        assert_eq!(a.wte, b.wte);
    }

    #[test]
    fn different_seeds_differ() {
        let cfg = ModelConfig::tiny();
        let a = Gpt2Weights::synthetic(&cfg, 1);
        let b = Gpt2Weights::synthetic(&cfg, 2);
        assert_ne!(a.blocks[0].qkv.weight(), b.blocks[0].qkv.weight());
    }

    #[test]
    fn byte_accounting_matches_config() {
        let cfg = ModelConfig::tiny();
        let w = Gpt2Weights::synthetic(&cfg, 3);
        assert_eq!(w.weight_bytes(), cfg.weights_bytes_total());
    }

    #[test]
    fn shapes_follow_config() {
        let cfg = ModelConfig::tiny();
        let w = Gpt2Weights::synthetic(&cfg, 3);
        assert_eq!(w.blocks.len(), cfg.layers);
        let b = &w.blocks[0];
        assert_eq!(b.qkv.out_features(), 3 * cfg.d_model);
        assert_eq!(b.qkv.in_features(), cfg.d_model);
        assert_eq!(b.fc1.out_features(), cfg.d_ff);
        assert_eq!(b.fc2.in_features(), cfg.d_ff);
        assert_eq!(w.wte.shape(), (cfg.vocab, cfg.d_model));
        assert_eq!(w.lm_head.out_features(), cfg.vocab);
    }

    #[test]
    fn initializer_magnitude_is_small() {
        let cfg = ModelConfig::tiny();
        let w = Gpt2Weights::synthetic(&cfg, 3);
        // dequantized weights should be centered near zero with std ~0.02
        let deq = w.blocks[0].qkv.weight().dequantize();
        let mean: f32 = deq.as_slice().iter().sum::<f32>() / deq.len() as f32;
        assert!(mean.abs() < 0.01, "mean {mean}");
        let max = deq.as_slice().iter().fold(0.0f32, |m, &x| m.max(x.abs()));
        assert!(max < 0.2, "max {max}");
    }
}
