//! The paged-KV bit-exactness wall.
//!
//! The paged arena, chunked prefill, and preempt/resume each reorder
//! *where* KV bytes live and *when* they are written — never *what* is
//! computed. Attention walks pages in token order, int8 dot products are
//! order-exact, and a resume re-prefills the evicted context through the
//! same quantization pipeline, so every schedule the scheduler can
//! produce must generate byte-identical tokens to running each sequence
//! alone on an unpaged engine. This suite drives random interleavings of
//! admit/decode/preempt/resume over random prompts, page sizes, node
//! counts, and threading, and pins that invariant; the chunked-prefill
//! differential additionally compares materialized KV contents across
//! page geometries.

use proptest::prelude::*;

use looplynx_core::backend::{
    BackendError, FunctionalBackend, InferenceBackend, PreemptedSeq, SamplerSpec,
};
use looplynx_core::engine::DistributedGpt2;
use looplynx_core::router::RingMode;
use looplynx_model::config::ModelConfig;
use looplynx_model::gpt2::Gpt2Model;

/// One sequence's position in the scripted lifecycle.
enum SeqState {
    Waiting,
    Resident { slot: usize },
    Preempted { seq: PreemptedSeq },
    Done,
}

struct Seq {
    id: u64,
    prompt: Vec<u32>,
    target: usize,
    tokens: Vec<u32>,
    state: SeqState,
}

impl Seq {
    /// The context a resume must re-prefill: prompt plus every produced
    /// token except the last (the last is the next decode input).
    fn resume_context(&self) -> Vec<u32> {
        let mut c = self.prompt.clone();
        c.extend_from_slice(&self.tokens[..self.tokens.len() - 1]);
        c
    }
}

/// Deterministic prompt material (tiny xorshift; no rand dependency).
fn prompts(seed: u64, n: usize, vocab: u32) -> Vec<Vec<u32>> {
    let mut s = seed | 1;
    let mut next = move || {
        s ^= s << 13;
        s ^= s >> 7;
        s ^= s << 17;
        s
    };
    (0..n)
        .map(|_| {
            let len = 4 + (next() % 5) as usize; // 4..=8
            (0..len).map(|_| (next() % vocab as u64) as u32).collect()
        })
        .collect()
}

const SAMPLER: SamplerSpec = SamplerSpec::TopK {
    k: 4,
    temperature: 0.9,
};

/// Each sequence generated alone on an unpaged (legacy-geometry,
/// single-node, unthreaded) backend — the reference every schedule must
/// reproduce byte-for-byte.
fn lone_reference(model: &Gpt2Model, seqs: &[(u64, Vec<u32>, usize)]) -> Vec<Vec<u32>> {
    seqs.iter()
        .map(|(id, prompt, target)| {
            let engine = DistributedGpt2::with_slots(model, 1, RingMode::Exact, 1, 48).unwrap();
            let mut b = FunctionalBackend::new(engine, SAMPLER);
            let p = b.prefill(prompt.len(), Some(prompt), *id).unwrap();
            let mut out = vec![p.first_token.unwrap()];
            for _ in 1..*target {
                out.push(b.decode_batch(&[p.slot]).unwrap().tokens.unwrap()[0]);
            }
            out
        })
        .collect()
}

/// Advances every unfinished resident one token; sequences reaching
/// their target are released. Returns Err only on page pressure.
fn decode_residents(b: &mut FunctionalBackend, seqs: &mut [Seq]) -> Result<(), BackendError> {
    let idx: Vec<usize> = seqs
        .iter()
        .enumerate()
        .filter(|(_, s)| matches!(s.state, SeqState::Resident { .. }))
        .map(|(i, _)| i)
        .collect();
    if idx.is_empty() {
        return Ok(());
    }
    let slots: Vec<usize> = idx
        .iter()
        .map(|&i| match seqs[i].state {
            SeqState::Resident { slot } => slot,
            _ => unreachable!(),
        })
        .collect();
    let out = b.decode_batch(&slots)?;
    let tokens = out.tokens.expect("functional backend produces tokens");
    for (j, &i) in idx.iter().enumerate() {
        seqs[i].tokens.push(tokens[j]);
        if seqs[i].tokens.len() == seqs[i].target {
            b.release(slots[j]).expect("resident owns its slot");
            seqs[i].state = SeqState::Done;
        }
    }
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Any interleaving of admit/decode/preempt/resume over any page
    /// size, node count, and threading produces streams bit-identical
    /// to lone unpaged generation.
    #[test]
    fn interleavings_match_lone_generation(
        ops in proptest::collection::vec(0u8..4, 0..40),
        seed in any::<u64>(),
        nodes_idx in 0usize..3,
        page_idx in 0usize..3,
        threaded in any::<bool>(),
    ) {
        let nodes = [1usize, 2, 4][nodes_idx];
        let page_tokens = [2usize, 4, 8][page_idx];
        let cfg = ModelConfig::tiny();
        let model = Gpt2Model::synthetic(&cfg, 2024);

        let raw = prompts(seed, 4, cfg.vocab as u32);
        let spec: Vec<(u64, Vec<u32>, usize)> = raw
            .into_iter()
            .enumerate()
            .map(|(i, p)| (i as u64, p, 3 + i % 4))
            .collect();
        let reference = lone_reference(&model, &spec);

        // An oversubscribed pool: 4 slots × capacity 48 would want
        // 4 × (48 / page_tokens) pages; grant only enough for one full
        // sequence plus change, so the script's evictions matter.
        let pool = 48_usize.div_ceil(page_tokens) + 2;
        let mut engine =
            DistributedGpt2::with_paged_slots(&model, nodes, RingMode::Exact, 4, 48, page_tokens, pool)
                .unwrap();
        engine.set_threaded(threaded);
        let mut b = FunctionalBackend::new(engine, SAMPLER);

        let mut seqs: Vec<Seq> = spec
            .iter()
            .map(|(id, prompt, target)| Seq {
                id: *id,
                prompt: prompt.clone(),
                target: *target,
                tokens: Vec::new(),
                state: SeqState::Waiting,
            })
            .collect();

        // Scripted phase: ops drive the lifecycle; invalid or
        // pressure-blocked ops are skipped (the drain phase below
        // finishes everything).
        for op in ops {
            match op {
                0 => {
                    // Admit the first waiting sequence.
                    if let Some(s) = seqs
                        .iter_mut()
                        .find(|s| matches!(s.state, SeqState::Waiting))
                    {
                        match b.prefill(s.prompt.len(), Some(&s.prompt), s.id) {
                            Ok(p) => {
                                s.tokens.push(p.first_token.unwrap());
                                if s.tokens.len() == s.target {
                                    b.release(p.slot).unwrap();
                                    s.state = SeqState::Done;
                                } else {
                                    s.state = SeqState::Resident { slot: p.slot };
                                }
                            }
                            Err(e) => prop_assert!(
                                e.is_resource_pressure(),
                                "admission failed for a non-pressure reason: {e}"
                            ),
                        }
                    }
                }
                1 => {
                    let r = decode_residents(&mut b, &mut seqs);
                    if let Err(e) = r {
                        prop_assert!(e.is_resource_pressure(), "decode failed: {e}");
                    }
                }
                2 => {
                    // Preempt the last resident.
                    if let Some(s) = seqs
                        .iter_mut()
                        .rev()
                        .find(|s| matches!(s.state, SeqState::Resident { .. }))
                    {
                        let slot = match s.state {
                            SeqState::Resident { slot } => slot,
                            _ => unreachable!(),
                        };
                        let seq = b.preempt(slot).expect("resident is preemptible");
                        s.state = SeqState::Preempted { seq };
                    }
                }
                _ => {
                    // Resume the first preempted sequence.
                    if let Some(i) = seqs
                        .iter()
                        .position(|s| matches!(s.state, SeqState::Preempted { .. }))
                    {
                        let context = seqs[i].resume_context();
                        let seq = match &seqs[i].state {
                            SeqState::Preempted { seq } => seq,
                            _ => unreachable!(),
                        };
                        match b.resume(seq, Some(&context)) {
                            Ok(p) => seqs[i].state = SeqState::Resident { slot: p.slot },
                            Err(e) => prop_assert!(
                                e.is_resource_pressure(),
                                "resume failed for a non-pressure reason: {e}"
                            ),
                        }
                    }
                }
            }
        }

        // Drain phase: finish every sequence. Residents decode first;
        // page pressure evicts the last resident (a single sequence
        // always fits the pool by construction, so this terminates).
        loop {
            if seqs.iter().all(|s| matches!(s.state, SeqState::Done)) {
                break;
            }
            if seqs
                .iter()
                .any(|s| matches!(s.state, SeqState::Resident { .. }))
            {
                if let Err(e) = decode_residents(&mut b, &mut seqs) {
                    prop_assert!(e.is_resource_pressure(), "drain decode failed: {e}");
                    let s = seqs
                        .iter_mut()
                        .rev()
                        .find(|s| matches!(s.state, SeqState::Resident { .. }))
                        .expect("pressure implies a resident");
                    let slot = match s.state {
                        SeqState::Resident { slot } => slot,
                        _ => unreachable!(),
                    };
                    let seq = b.preempt(slot).expect("resident is preemptible");
                    s.state = SeqState::Preempted { seq };
                }
                continue;
            }
            // Nothing resident: bring back one parked or waiting
            // sequence. With an empty pool this must fit.
            if let Some(i) = seqs
                .iter()
                .position(|s| matches!(s.state, SeqState::Preempted { .. }))
            {
                let context = seqs[i].resume_context();
                let seq = match &seqs[i].state {
                    SeqState::Preempted { seq } => seq,
                    _ => unreachable!(),
                };
                let p = b.resume(seq, Some(&context)).expect("lone resume fits");
                seqs[i].state = SeqState::Resident { slot: p.slot };
            } else if let Some(s) = seqs
                .iter_mut()
                .find(|s| matches!(s.state, SeqState::Waiting))
            {
                let p = b
                    .prefill(s.prompt.len(), Some(&s.prompt), s.id)
                    .expect("lone admission fits");
                s.tokens.push(p.first_token.unwrap());
                if s.tokens.len() == s.target {
                    b.release(p.slot).unwrap();
                    s.state = SeqState::Done;
                } else {
                    s.state = SeqState::Resident { slot: p.slot };
                }
            }
        }

        for (s, want) in seqs.iter().zip(&reference) {
            prop_assert_eq!(
                &s.tokens,
                want,
                "sequence {} diverged ({} nodes, {}-token pages, threaded={})",
                s.id,
                nodes,
                page_tokens,
                threaded
            );
        }
    }
}

/// Chunked-prefill differential (chunk ∈ {1, 3, 16, prompt_len}): first
/// tokens, downstream decode, and *materialized KV contents* all match
/// single-pass prefill — across different page geometries, since
/// [`looplynx_model::kv_cache::LayerKvCache`] equality is content-based.
#[test]
fn chunked_prefill_matches_single_pass_kv_and_tokens() {
    let cfg = ModelConfig::tiny();
    let model = Gpt2Model::synthetic(&cfg, 555);
    let prompt: Vec<u32> = (0..10u32).map(|i| (i * 7 + 3) % cfg.vocab as u32).collect();

    // Single-pass reference on the legacy 16-token-page geometry.
    let mut one_pass =
        DistributedGpt2::with_paged_slots(&model, 2, RingMode::Exact, 2, 32, 16, 4).unwrap();
    let slot = one_pass.acquire_slot().expect("fresh engine has slots");
    let ref_logits = one_pass.prefill_slot(slot, &prompt);
    let ref_kv = one_pass.materialized_kv(slot);

    for chunk in [1usize, 3, 16, prompt.len()] {
        // Deliberately different page size (4-token pages) so the KV
        // comparison also crosses geometries.
        let mut chunked =
            DistributedGpt2::with_paged_slots(&model, 2, RingMode::Exact, 2, 32, 4, 16).unwrap();
        let slot = chunked.acquire_slot().expect("fresh engine has slots");
        let mut fed = 0;
        let mut logits = None;
        while fed < prompt.len() {
            let end = (fed + chunk).min(prompt.len());
            let last = end == prompt.len();
            logits = chunked.prefill_slot_chunk(slot, &prompt[fed..end], last);
            assert_eq!(
                logits.is_some(),
                last,
                "only the final chunk computes logits"
            );
            fed = end;
        }
        assert_eq!(
            logits.expect("final chunk ran"),
            ref_logits,
            "chunk size {chunk}: prefill logits diverged"
        );
        assert_eq!(
            chunked.materialized_kv(slot),
            ref_kv,
            "chunk size {chunk}: KV contents diverged from single-pass prefill"
        );
    }
}

/// Regression for the stale-state-on-reuse bug class: a slot that served
/// a long sequence is released and reused for a *shorter* one. Any
/// leftover position, page grant, or scale state from the first tenancy
/// would corrupt the second.
#[test]
fn slot_reuse_after_longer_sequence_is_exact() {
    let cfg = ModelConfig::tiny();
    let model = Gpt2Model::synthetic(&cfg, 808);
    let long: Vec<u32> = (0..20u32).map(|i| (i * 5 + 1) % cfg.vocab as u32).collect();
    let short = [9u32, 2, 7];

    let spec = vec![(7u64, short.to_vec(), 5usize)];
    let clean = lone_reference(&model, &spec);

    // One slot forces reuse: the long tenancy must leave nothing behind.
    let engine =
        DistributedGpt2::with_paged_slots(&model, 2, RingMode::Exact, 1, 32, 4, 8).unwrap();
    let mut b = FunctionalBackend::new(engine, SAMPLER);
    let p = b.prefill(long.len(), Some(&long), 1).unwrap();
    for _ in 0..6 {
        b.decode_batch(&[p.slot]).unwrap();
    }
    b.release(p.slot).unwrap();

    let p = b.prefill(short.len(), Some(&short), 7).unwrap();
    let mut got = vec![p.first_token.unwrap()];
    for _ in 1..5 {
        got.push(b.decode_batch(&[p.slot]).unwrap().tokens.unwrap()[0]);
    }
    assert_eq!(got, clean[0], "reused slot leaked state from prior tenancy");
}
