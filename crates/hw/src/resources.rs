//! FPGA resource vectors and the LoopLynx resource composition model.
//!
//! The composition model reproduces the paper's Table II utilization rows
//! from three ingredients:
//!
//! 1. **Per-node kernel resources** — the macro dataflow kernels
//!    (Fig. 7's component rows describe the dual-node device; one node is
//!    half of each row).
//! 2. **A per-node shared buffer** whose BRAM shrinks with ring size
//!    (`240 / nodes` — the KV/activation staging buffer is head-partitioned,
//!    so more nodes each hold a smaller slice).
//! 3. **A per-device static region (shell)** paid once per FPGA.
//!
//! With the constants below this reconstructs every Table II row within
//! 0.2 %: 1-node {568 DSP, 220K LUT, 313K FF, 641 BRAM}, 2-node
//! {1132, 312K, 478K, 924.5}, 4-node (two devices) {2264, 624K, 954K, 1609}.

use std::fmt;
use std::iter::Sum;
use std::ops::{Add, AddAssign, Mul};

use serde::{Deserialize, Serialize};

/// Quantities of each FPGA resource type.
///
/// Stored as `f64` because Xilinx reports fractional BRAM (36Kb blocks used
/// as two 18Kb halves), e.g. the paper's 924.5 BRAM.
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct ResourceVector {
    /// DSP48 slices.
    pub dsp: f64,
    /// Look-up tables.
    pub lut: f64,
    /// Flip-flops.
    pub ff: f64,
    /// 36Kb block RAMs (fractional halves allowed).
    pub bram: f64,
    /// UltraRAM blocks.
    pub uram: f64,
}

impl ResourceVector {
    /// All-zero vector.
    pub const ZERO: ResourceVector = ResourceVector {
        dsp: 0.0,
        lut: 0.0,
        ff: 0.0,
        bram: 0.0,
        uram: 0.0,
    };

    /// Creates a vector.
    pub const fn new(dsp: f64, lut: f64, ff: f64, bram: f64, uram: f64) -> Self {
        ResourceVector {
            dsp,
            lut,
            ff,
            bram,
            uram,
        }
    }

    /// Whether every component of `self` fits within `budget`.
    pub fn fits_within(&self, budget: &ResourceVector) -> bool {
        self.dsp <= budget.dsp
            && self.lut <= budget.lut
            && self.ff <= budget.ff
            && self.bram <= budget.bram
            && self.uram <= budget.uram
    }

    /// Per-resource utilization fractions of `budget`
    /// (`[dsp, lut, ff, bram, uram]`; zero-budget entries report 0).
    pub fn utilization_of(&self, budget: &ResourceVector) -> [f64; 5] {
        fn frac(used: f64, total: f64) -> f64 {
            if total <= 0.0 {
                0.0
            } else {
                used / total
            }
        }
        [
            frac(self.dsp, budget.dsp),
            frac(self.lut, budget.lut),
            frac(self.ff, budget.ff),
            frac(self.bram, budget.bram),
            frac(self.uram, budget.uram),
        ]
    }

    /// The largest utilization fraction — the binding constraint.
    pub fn max_utilization_of(&self, budget: &ResourceVector) -> f64 {
        self.utilization_of(budget).into_iter().fold(0.0, f64::max)
    }
}

impl Add for ResourceVector {
    type Output = ResourceVector;
    fn add(self, rhs: ResourceVector) -> ResourceVector {
        ResourceVector {
            dsp: self.dsp + rhs.dsp,
            lut: self.lut + rhs.lut,
            ff: self.ff + rhs.ff,
            bram: self.bram + rhs.bram,
            uram: self.uram + rhs.uram,
        }
    }
}

impl AddAssign for ResourceVector {
    fn add_assign(&mut self, rhs: ResourceVector) {
        *self = *self + rhs;
    }
}

impl Mul<f64> for ResourceVector {
    type Output = ResourceVector;
    fn mul(self, k: f64) -> ResourceVector {
        ResourceVector {
            dsp: self.dsp * k,
            lut: self.lut * k,
            ff: self.ff * k,
            bram: self.bram * k,
            uram: self.uram * k,
        }
    }
}

impl Sum for ResourceVector {
    fn sum<I: Iterator<Item = ResourceVector>>(iter: I) -> ResourceVector {
        iter.fold(ResourceVector::ZERO, |a, b| a + b)
    }
}

impl fmt::Display for ResourceVector {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "DSP {:.0}, LUT {:.0}K, FF {:.0}K, BRAM {:.1}, URAM {:.0}",
            self.dsp,
            self.lut / 1e3,
            self.ff / 1e3,
            self.bram,
            self.uram
        )
    }
}

/// One named component of the accelerator (a Fig. 7 row).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ComponentResources {
    /// Component name as printed in Fig. 7.
    pub name: String,
    /// Resources used by this component.
    pub resources: ResourceVector,
}

/// The LoopLynx resource composition model.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct NodeResourceModel {
    /// Kernel resources of one node, excluding the shared buffer BRAM.
    node_fixed: ResourceVector,
    /// BRAM of the shared staging buffer for a single-node ring; divided by
    /// the ring size for larger rings (head-wise partitioning).
    shared_buffer_bram: f64,
    /// Static-region (shell) resources paid once per device.
    shell: ResourceVector,
    /// Nodes that fit on one device (one per SLR on the U50).
    nodes_per_device: usize,
}

impl NodeResourceModel {
    /// The paper's model (Alveo U50, two nodes per device).
    pub fn paper() -> Self {
        NodeResourceModel {
            node_fixed: ResourceVector::new(564.0, 92_000.0, 165_000.0, 283.5, 0.0),
            shared_buffer_bram: 240.0,
            shell: ResourceVector::new(4.0, 128_000.0, 148_000.0, 117.5, 4.0),
            nodes_per_device: 2,
        }
    }

    /// Creates a custom model.
    ///
    /// # Panics
    ///
    /// Panics if `nodes_per_device` is zero.
    pub fn new(
        node_fixed: ResourceVector,
        shared_buffer_bram: f64,
        shell: ResourceVector,
        nodes_per_device: usize,
    ) -> Self {
        assert!(nodes_per_device > 0, "need at least one node per device");
        NodeResourceModel {
            node_fixed,
            shared_buffer_bram,
            shell,
            nodes_per_device,
        }
    }

    /// Nodes placed on one device.
    pub fn nodes_per_device(&self) -> usize {
        self.nodes_per_device
    }

    /// Shell resources of one device.
    pub fn shell(&self) -> ResourceVector {
        self.shell
    }

    /// Resources of one node in a ring of `ring_nodes`.
    ///
    /// # Panics
    ///
    /// Panics if `ring_nodes` is zero.
    pub fn per_node(&self, ring_nodes: usize) -> ResourceVector {
        assert!(ring_nodes > 0, "ring size must be positive");
        let mut r = self.node_fixed;
        r.bram += self.shared_buffer_bram / ring_nodes as f64;
        r
    }

    /// Devices needed for a ring of `ring_nodes`.
    pub fn devices_for(&self, ring_nodes: usize) -> usize {
        ring_nodes.div_ceil(self.nodes_per_device)
    }

    /// Total resources of one device carrying `nodes_on_device` nodes of a
    /// ring of the same size (the paper's single-device configurations).
    pub fn device_total(&self, nodes_on_device: usize) -> ResourceVector {
        self.per_node(nodes_on_device) * nodes_on_device as f64 + self.shell
    }

    /// Total resources across all devices for a ring of `ring_nodes`.
    pub fn ring_total(&self, ring_nodes: usize) -> ResourceVector {
        let devices = self.devices_for(ring_nodes);
        self.per_node(ring_nodes) * ring_nodes as f64 + self.shell * devices as f64
    }

    /// Fig. 7 component breakdown for a device carrying `nodes_on_device`
    /// nodes (the paper prints the dual-node device).
    ///
    /// Component rows are the paper's constants scaled from the dual-node
    /// reference; the shared-buffer BRAM lives in the Fused LN kernel row.
    pub fn component_breakdown(&self, nodes_on_device: usize) -> Vec<ComponentResources> {
        let n = nodes_on_device as f64;
        // Per-node component split of the dual-node Fig. 7 rows.
        let rows = [
            ("Fused MP Kernel", 261.0, 17_000.0, 28_000.0, 120.5),
            ("Fused MHA Kernel", 191.0, 19_000.0, 22_500.0, 8.0),
            ("Fused LN Kernel", 96.0, 11_500.0, 15_000.0, 0.0),
            ("DMA", 0.0, 8_000.0, 14_000.0, 48.5),
            ("Other Kernels/Buffer", 16.0, 8_500.0, 13_000.0, 0.5),
        ];
        let mut out: Vec<ComponentResources> = rows
            .iter()
            .map(|&(name, dsp, lut, ff, bram)| {
                let mut r = ResourceVector::new(dsp, lut, ff, bram, 0.0) * n;
                if name == "Fused LN Kernel" {
                    // Shared staging buffer: total BRAM is constant per ring
                    // node count; the dual-node device shows 240.
                    r.bram += self.shared_buffer_bram / nodes_on_device as f64 * n;
                    // (= shared_buffer_bram; kept explicit for clarity)
                }
                ComponentResources {
                    name: name.to_owned(),
                    resources: r,
                }
            })
            .collect();
        out.push(ComponentResources {
            name: "Routing/Infra".to_owned(),
            resources: ResourceVector::new(0.0, 28_000.0, 72_500.0, 106.0, 0.0) * n,
        });
        out.push(ComponentResources {
            name: "Shell (static)".to_owned(),
            resources: self.shell,
        });
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn close(a: f64, b: f64, tol: f64) -> bool {
        (a - b).abs() <= tol * b.abs().max(1.0)
    }

    #[test]
    fn vector_arithmetic() {
        let a = ResourceVector::new(1.0, 2.0, 3.0, 4.0, 5.0);
        let b = ResourceVector::new(10.0, 20.0, 30.0, 40.0, 50.0);
        let s = a + b;
        assert_eq!(s.dsp, 11.0);
        assert_eq!((a * 2.0).bram, 8.0);
        let total: ResourceVector = [a, b].into_iter().sum();
        assert_eq!(total.uram, 55.0);
    }

    #[test]
    fn fits_and_utilization() {
        let used = ResourceVector::new(50.0, 100.0, 100.0, 10.0, 0.0);
        let budget = ResourceVector::new(100.0, 200.0, 400.0, 20.0, 10.0);
        assert!(used.fits_within(&budget));
        let u = used.utilization_of(&budget);
        assert_eq!(u[0], 0.5);
        assert_eq!(u[4], 0.0);
        assert_eq!(used.max_utilization_of(&budget), 0.5);
        let too_big = ResourceVector::new(101.0, 0.0, 0.0, 0.0, 0.0);
        assert!(!too_big.fits_within(&budget));
    }

    #[test]
    fn table2_one_node_row() {
        let m = NodeResourceModel::paper();
        let r = m.device_total(1);
        assert!(close(r.dsp, 568.0, 0.01), "dsp {}", r.dsp);
        assert!(close(r.lut, 220_000.0, 0.01), "lut {}", r.lut);
        assert!(close(r.ff, 313_000.0, 0.01), "ff {}", r.ff);
        assert!(close(r.bram, 641.0, 0.01), "bram {}", r.bram);
        assert!(close(r.uram, 4.0, 0.01), "uram {}", r.uram);
    }

    #[test]
    fn table2_two_node_row() {
        let m = NodeResourceModel::paper();
        let r = m.device_total(2);
        assert!(close(r.dsp, 1132.0, 0.01));
        assert!(close(r.lut, 312_000.0, 0.01));
        assert!(close(r.ff, 478_000.0, 0.01));
        assert!(close(r.bram, 924.5, 0.01));
    }

    #[test]
    fn table2_four_node_row() {
        let m = NodeResourceModel::paper();
        assert_eq!(m.devices_for(4), 2);
        let r = m.ring_total(4);
        assert!(close(r.dsp, 2264.0, 0.01), "dsp {}", r.dsp);
        assert!(close(r.lut, 624_000.0, 0.01), "lut {}", r.lut);
        assert!(close(r.ff, 954_000.0, 0.01), "ff {}", r.ff);
        assert!(close(r.bram, 1609.0, 0.01), "bram {}", r.bram);
        assert!(close(r.uram, 8.0, 0.01), "uram {}", r.uram);
    }

    #[test]
    fn shared_buffer_shrinks_with_ring() {
        let m = NodeResourceModel::paper();
        let one = m.per_node(1).bram;
        let four = m.per_node(4).bram;
        assert!(one > four);
        assert!(close(one - four, 240.0 * (1.0 - 0.25), 0.01));
    }

    #[test]
    fn fig7_components_sum_near_device_total() {
        let m = NodeResourceModel::paper();
        let parts: ResourceVector = m
            .component_breakdown(2)
            .into_iter()
            .map(|c| c.resources)
            .sum();
        let total = m.device_total(2);
        assert!(
            close(parts.dsp, total.dsp, 0.01),
            "{} vs {}",
            parts.dsp,
            total.dsp
        );
        assert!(close(parts.lut, total.lut, 0.01));
        assert!(close(parts.ff, total.ff, 0.01));
        assert!(
            close(parts.bram, total.bram, 0.01),
            "{} vs {}",
            parts.bram,
            total.bram
        );
    }

    #[test]
    fn fig7_kernel_rows_match_paper() {
        let m = NodeResourceModel::paper();
        let parts = m.component_breakdown(2);
        let mp = parts.iter().find(|c| c.name.contains("MP")).unwrap();
        assert!(close(mp.resources.dsp, 522.0, 0.01));
        assert!(close(mp.resources.lut, 34_000.0, 0.01));
        let ln = parts.iter().find(|c| c.name.contains("LN")).unwrap();
        assert!(
            close(ln.resources.bram, 240.0, 0.01),
            "{}",
            ln.resources.bram
        );
        let mha = parts.iter().find(|c| c.name.contains("MHA")).unwrap();
        assert!(close(mha.resources.dsp, 382.0, 0.01));
    }

    #[test]
    fn display_is_compact() {
        let r = ResourceVector::new(568.0, 220_000.0, 313_000.0, 641.0, 4.0);
        let s = r.to_string();
        assert!(s.contains("DSP 568"));
        assert!(s.contains("LUT 220K"));
    }

    #[test]
    #[should_panic(expected = "ring size must be positive")]
    fn zero_ring_rejected() {
        let _ = NodeResourceModel::paper().per_node(0);
    }
}
