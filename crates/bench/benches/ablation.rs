//! Fig. 5 ablation bench: token simulation under every optimization-flag
//! combination, printing the simulated latencies (the paper's Fig. 5
//! series) alongside Criterion's measurement of the simulator.

use std::hint::black_box;
use std::time::Duration;

use criterion::{criterion_group, criterion_main, Criterion};

use looplynx_bench::experiments::{fig5, TABLE2_CONTEXT};
use looplynx_core::config::{ArchConfig, OptimizationFlags};
use looplynx_core::engine::{LoopLynx, TokenPhase};
use looplynx_model::config::ModelConfig;

fn bench_optimization_levels(c: &mut Criterion) {
    let model = ModelConfig::gpt2_medium();
    for level in fig5(&model) {
        eprintln!(
            "[fig5] {}: {:.2} ms (-{:.1}% vs baseline)",
            level.label,
            level.token_ms,
            level.reduction_vs_baseline * 100.0
        );
    }
    let combos: [(&str, OptimizationFlags); 4] = [
        ("none", OptimizationFlags::NONE),
        (
            "fuse_ln_res",
            OptimizationFlags {
                fuse_ln_res: true,
                headwise_pipeline: false,
                hide_transmission: false,
            },
        ),
        (
            "fuse+headwise",
            OptimizationFlags {
                fuse_ln_res: true,
                headwise_pipeline: true,
                hide_transmission: false,
            },
        ),
        ("all", OptimizationFlags::ALL),
    ];
    let mut group = c.benchmark_group("fig5_ablation");
    for (label, opts) in combos {
        let arch = ArchConfig::builder()
            .nodes(2)
            .opts(opts)
            .build()
            .expect("valid");
        let engine = LoopLynx::new(model.clone(), arch).expect("partitions");
        group.bench_function(label, |b| {
            b.iter(|| engine.simulate_token(black_box(TABLE2_CONTEXT), TokenPhase::Decode, false))
        });
    }
    group.finish();
}

fn bench_transmission_hiding(c: &mut Criterion) {
    // The multi-node-only ablation: hide_transmission matters at 4 nodes.
    let model = ModelConfig::gpt2_medium();
    let mut group = c.benchmark_group("transmission_hiding_4node");
    for (label, hide) in [("hidden", true), ("exposed", false)] {
        let arch = ArchConfig::builder()
            .nodes(4)
            .opts(OptimizationFlags {
                hide_transmission: hide,
                ..OptimizationFlags::ALL
            })
            .build()
            .expect("valid");
        let engine = LoopLynx::new(model.clone(), arch).expect("partitions");
        let ms = engine.steady_state_decode_ms(TABLE2_CONTEXT);
        eprintln!("[transmission] 4-node sync {label}: {ms:.3} ms/token");
        group.bench_function(label, |b| {
            b.iter(|| engine.simulate_token(black_box(TABLE2_CONTEXT), TokenPhase::Decode, false))
        });
    }
    group.finish();
}

fn config() -> Criterion {
    Criterion::default()
        .sample_size(10)
        .warm_up_time(Duration::from_millis(200))
        .measurement_time(Duration::from_millis(800))
}

criterion_group! {
    name = benches;
    config = config();
    targets = bench_optimization_levels, bench_transmission_hiding
}
criterion_main!(benches);
