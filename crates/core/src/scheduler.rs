//! The hybrid-architecture scheduler.
//!
//! The scheduler is the "temporal" half of the hybrid design: a state
//! machine that walks the stage sequence of every transformer block and
//! *reuses* the three macro dataflow kernels — "taking the fused MP kernel
//! as an example, all linear layer computations can be executed using this
//! kernel. At this point, the scheduler enters the 6th stage to compute the
//! projection matrix, thus reusing the Fused MP kernel" (paper
//! Section III-B, Fig. 3(c.1)).

use std::fmt;

use serde::{Deserialize, Serialize};

use looplynx_model::config::ModelConfig;
use looplynx_sim::time::Cycles;
use looplynx_sim::trace::{Span, Trace};

use crate::config::ArchConfig;
use crate::kernels::lnres::{FusedLnResKernel, LnResJob};
use crate::kernels::mha::{FusedMhaKernel, MhaJob};
use crate::kernels::mp::{FusedMpKernel, MpJob};
use crate::latency::LatencyBreakdown;
use crate::parallel::{validate_partition, PartitionError};

/// A stage of the per-layer schedule (paper Fig. 3(c.1) numbering).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Stage {
    /// Residual of the previous block fused with the pre-attention LN.
    LnRes1,
    /// QKV projection on the fused MP kernel (head-aligned, no sync).
    QkvProj,
    /// Multi-head attention on the fused MHA kernel (+ output gather).
    Mha,
    /// Attention output projection on the fused MP kernel (+ gather).
    OutProj,
    /// Residual fused with the pre-MLP LN.
    LnRes2,
    /// MLP up-projection on the fused MP kernel (+ gather of GELU input).
    Fc1,
    /// GELU on the element-wise vector unit (node-local slice).
    Gelu,
    /// MLP down-projection on the fused MP kernel (+ gather).
    Fc2,
}

impl Stage {
    /// The per-layer stage sequence.
    pub const SEQUENCE: [Stage; 8] = [
        Stage::LnRes1,
        Stage::QkvProj,
        Stage::Mha,
        Stage::OutProj,
        Stage::LnRes2,
        Stage::Fc1,
        Stage::Gelu,
        Stage::Fc2,
    ];

    /// Which hardware kernel executes this stage.
    pub fn kernel_lane(self) -> &'static str {
        match self {
            Stage::LnRes1 | Stage::LnRes2 | Stage::Gelu => "lnres",
            Stage::QkvProj | Stage::OutProj | Stage::Fc1 | Stage::Fc2 => "mp",
            Stage::Mha => "mha",
        }
    }
}

impl fmt::Display for Stage {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let name = match self {
            Stage::LnRes1 => "ln&res1",
            Stage::QkvProj => "qkv",
            Stage::Mha => "mha",
            Stage::OutProj => "proj",
            Stage::LnRes2 => "ln&res2",
            Stage::Fc1 => "fc1",
            Stage::Gelu => "gelu",
            Stage::Fc2 => "fc2",
        };
        f.write_str(name)
    }
}

/// Timing of one token through all layers (plus final LN / LM head / host).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TokenTiming {
    /// Total exposed cycles for the token.
    pub total: Cycles,
    /// Bucketized breakdown.
    pub breakdown: LatencyBreakdown,
    /// Kernel-activation trace (one span per stage activation).
    pub trace: Trace,
}

impl TokenTiming {
    /// Milliseconds under the configuration's clock.
    pub fn total_ms(&self, cfg: &ArchConfig) -> f64 {
        self.total.to_millis(cfg.freq())
    }
}

/// The scheduler: drives kernels through the stage sequence and accumulates
/// cycle-accurate timing.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Scheduler {
    cfg: ArchConfig,
    model: ModelConfig,
    mp: FusedMpKernel,
    mha: FusedMhaKernel,
    lnres: FusedLnResKernel,
}

impl Scheduler {
    /// Creates a scheduler for the given architecture and model.
    ///
    /// # Errors
    ///
    /// Returns [`PartitionError`] if the model cannot be split over the
    /// configured ring (heads, `d_model` or `d_ff` do not divide) — the
    /// same validation [`crate::engine::LoopLynx::new`] applies.
    pub fn new(cfg: ArchConfig, model: ModelConfig) -> Result<Self, PartitionError> {
        validate_partition(&model, cfg.nodes())?;
        Ok(Scheduler {
            mp: FusedMpKernel::new(&cfg),
            mha: FusedMhaKernel::new(&cfg),
            lnres: FusedLnResKernel::new(&cfg),
            cfg,
            model,
        })
    }

    /// The architecture configuration.
    pub fn config(&self) -> &ArchConfig {
        &self.cfg
    }

    /// The model configuration.
    pub fn model(&self) -> &ModelConfig {
        &self.model
    }

    /// Builds the MP job for a linear-layer stage at the current ring size.
    fn mp_job(&self, stage: Stage) -> MpJob {
        let n = self.cfg.nodes();
        let d = self.model.d_model;
        let ff = self.model.d_ff;
        match stage {
            // Head-aligned QKV shard: each node computes q, k, v rows of its
            // own heads — no synchronization afterwards.
            Stage::QkvProj => MpJob {
                rows: 3 * d / n,
                cols: d,
                sync_bytes: 0,
                batch: 1,
            },
            Stage::OutProj => MpJob {
                rows: d / n,
                cols: d,
                sync_bytes: d / n,
                batch: 1,
            },
            Stage::Fc1 => MpJob {
                rows: ff / n,
                cols: d,
                sync_bytes: ff / n,
                batch: 1,
            },
            Stage::Fc2 => MpJob {
                rows: d / n,
                cols: ff,
                sync_bytes: d / n,
                batch: 1,
            },
            _ => unreachable!("{stage} is not an MP stage"),
        }
    }

    /// Times one stage of one layer at the given attention context.
    fn stage_timing(&self, stage: Stage, context: usize) -> (Cycles, LatencyBreakdown) {
        let mut b = LatencyBreakdown::zero();
        let total = match stage {
            Stage::QkvProj | Stage::OutProj | Stage::Fc1 | Stage::Fc2 => {
                let t = self.mp.timing(&self.mp_job(stage));
                b.sync += t.segment("sync");
                b.critical_path += t.segment("overhead");
                b.linear += t.total - t.segment("sync") - t.segment("overhead");
                t.total
            }
            Stage::Mha => {
                let n = self.cfg.nodes();
                let t = self.mha.timing(&MhaJob {
                    heads: self.model.heads / n,
                    d_head: self.model.d_head(),
                    context,
                    sync_bytes: self.model.d_model / n,
                });
                b.sync += t.segment("sync");
                b.critical_path += t.segment("overhead");
                b.mha += t.total - t.segment("sync") - t.segment("overhead");
                t.total
            }
            Stage::LnRes1 | Stage::LnRes2 => {
                let t = self.lnres.timing(&LnResJob {
                    dim: self.model.d_model,
                    with_residual: true,
                });
                b.critical_path += t.total;
                t.total
            }
            Stage::Gelu => {
                // GELU runs on the node-local FC1 slice.
                let t = self
                    .lnres
                    .elementwise_timing(self.model.d_ff / self.cfg.nodes());
                b.critical_path += t.total;
                t.total
            }
        };
        (total, b)
    }

    /// Times one token through every layer.
    ///
    /// * `context` — tokens in the KV cache after this token is appended.
    /// * `with_lm_head` — whether logits are produced (decode tokens and
    ///   the final prefill token).
    ///
    /// # Panics
    ///
    /// Panics if `context` is zero.
    pub fn schedule_token(&self, context: usize, with_lm_head: bool) -> TokenTiming {
        assert!(context > 0, "context must include the current token");
        let mut cursor = Cycles::ZERO;
        let mut breakdown = LatencyBreakdown::zero();
        let mut trace = Trace::new();

        for layer in 0..self.model.layers {
            for stage in Stage::SEQUENCE {
                let (dur, b) = self.stage_timing(stage, context);
                trace.push(Span::new(
                    stage.kernel_lane(),
                    format!("L{layer}.{stage}"),
                    cursor,
                    cursor + dur,
                ));
                cursor += dur;
                breakdown += b;
            }
        }

        // Final layernorm before the LM head.
        let final_ln = self.lnres.timing(&LnResJob {
            dim: self.model.d_model,
            with_residual: true,
        });
        trace.push(Span::new(
            "lnres",
            "final_ln".to_owned(),
            cursor,
            cursor + final_ln.total,
        ));
        cursor += final_ln.total;
        breakdown.critical_path += final_ln.total;

        if with_lm_head {
            // LM head sharded over vocab rows; the host gathers logits over
            // PCIe (inside host overhead), so no ring sync.
            let job = MpJob {
                rows: self.model.vocab.div_ceil(self.cfg.nodes()),
                cols: self.model.d_model,
                sync_bytes: 0,
                batch: 1,
            };
            let t = self.mp.timing(&job);
            trace.push(Span::new(
                "mp",
                "lm_head".to_owned(),
                cursor,
                cursor + t.total,
            ));
            cursor += t.total;
            breakdown.critical_path += t.segment("overhead");
            breakdown.linear += t.total - t.segment("overhead");
        }

        let host = self.cfg.host_overhead_cycles(&self.model, with_lm_head);
        breakdown.host += host;
        cursor += host;

        TokenTiming {
            total: cursor,
            breakdown,
            trace,
        }
    }

    /// The shared per-layer walk of both weight-sharing batch schedules:
    /// MP stages run once for the whole batch with the batch factor;
    /// per-item stages (MHA, LN/residual, GELU) are charged once per
    /// entry of `contexts` at that entry's own context. Appends spans to
    /// `trace` starting at cycle zero and returns the accumulated cursor
    /// and breakdown.
    fn schedule_batched_layers(
        &self,
        contexts: &[usize],
        trace: &mut Trace,
    ) -> (Cycles, LatencyBreakdown) {
        let batch = contexts.len();
        assert!(batch > 0, "batch must be at least 1");
        assert!(
            batch <= crate::config::MAX_WEIGHT_SHARING_BATCH,
            "batch {batch} exceeds the activation-buffer bound {}",
            crate::config::MAX_WEIGHT_SHARING_BATCH
        );
        assert!(
            contexts.iter().all(|&c| c > 0),
            "context must include the current token"
        );
        let mut cursor = Cycles::ZERO;
        let mut breakdown = LatencyBreakdown::zero();
        for layer in 0..self.model.layers {
            for stage in Stage::SEQUENCE {
                let (dur, b) = match stage {
                    Stage::QkvProj | Stage::OutProj | Stage::Fc1 | Stage::Fc2 => {
                        let mut job = self.mp_job(stage);
                        job.batch = batch;
                        job.sync_bytes *= batch;
                        let t = self.mp.timing(&job);
                        let mut b = LatencyBreakdown::zero();
                        b.sync += t.segment("sync");
                        b.critical_path += t.segment("overhead");
                        b.linear += t.total - t.segment("sync") - t.segment("overhead");
                        (t.total, b)
                    }
                    _ => {
                        let mut total = Cycles::ZERO;
                        let mut b = LatencyBreakdown::zero();
                        for &ctx in contexts {
                            let (d, bi) = self.stage_timing(stage, ctx);
                            total += d;
                            b += bi;
                        }
                        (total, b)
                    }
                };
                trace.push(Span::new(
                    stage.kernel_lane(),
                    format!("L{layer}.{stage}x{batch}"),
                    cursor,
                    cursor + dur,
                ));
                cursor += dur;
                breakdown += b;
            }
        }
        (cursor, breakdown)
    }

    /// Times a *batch* of consecutive prefill tokens sharing each weight
    /// pass — the batched-prefill extension (see
    /// [`ArchConfig::prefill_batch`]).
    ///
    /// MP stages run once per batch with the batch factor; MHA and
    /// critical-path stages are inherently per-token (each prompt token
    /// attends over a different, growing context) and are charged per
    /// token. `first_context` is the cache length after the *first* token
    /// of the batch is appended.
    ///
    /// # Panics
    ///
    /// Panics if `first_context` or `batch` is zero, or `batch` exceeds
    /// [`crate::config::MAX_WEIGHT_SHARING_BATCH`].
    pub fn schedule_prefill_batch(&self, first_context: usize, batch: usize) -> TokenTiming {
        assert!(first_context > 0, "context must include the current token");
        let contexts: Vec<usize> = (0..batch).map(|i| first_context + i).collect();
        let mut trace = Trace::new();
        let (mut cursor, mut breakdown) = self.schedule_batched_layers(&contexts, &mut trace);

        // Final LN + host overhead charged per token; no LM head (batched
        // prefill never contains the last prompt token — the engine
        // schedules that one unbatched).
        let final_ln = self.lnres.timing(&LnResJob {
            dim: self.model.d_model,
            with_residual: true,
        });
        let host = self.cfg.host_overhead_cycles(&self.model, false);
        let epilogue = (final_ln.total + host) * batch as u64;
        breakdown.critical_path += final_ln.total * batch as u64;
        breakdown.host += host * batch as u64;
        cursor += epilogue;

        TokenTiming {
            total: cursor,
            breakdown,
            trace,
        }
    }

    /// Times one *continuous-batching decode iteration*: one token for each
    /// of several concurrent requests, all sharing every weight pass.
    ///
    /// `contexts[i]` is request *i*'s KV-cache length after its token is
    /// appended. Requests share the model, so MP stages (and the LM head)
    /// run once with the weight-sharing batch factor of the batched-prefill
    /// extension — each streamed weight block serves every request, two
    /// weight-shared int8 MACs packed per DSP per cycle. MHA is inherently
    /// per-request (each attends over its own cache at its own length), as
    /// are the critical-path operators and host epilogue; those are charged
    /// per request. A singleton batch is cycle-identical to
    /// [`Scheduler::schedule_token`] with the LM head on.
    ///
    /// # Panics
    ///
    /// Panics if `contexts` is empty, any context is zero, or the batch
    /// exceeds [`crate::config::MAX_WEIGHT_SHARING_BATCH`].
    pub fn schedule_decode_batch(&self, contexts: &[usize]) -> TokenTiming {
        assert!(!contexts.is_empty(), "decode batch must not be empty");
        let batch = contexts.len();
        let mut trace = Trace::new();
        let (mut cursor, mut breakdown) = self.schedule_batched_layers(contexts, &mut trace);

        // Final LN per request, then one batched LM head (every decode
        // token needs logits), then the host epilogue per request.
        let final_ln = self.lnres.timing(&LnResJob {
            dim: self.model.d_model,
            with_residual: true,
        });
        trace.push(Span::new(
            "lnres",
            format!("final_ln x{batch}"),
            cursor,
            cursor + final_ln.total * batch as u64,
        ));
        cursor += final_ln.total * batch as u64;
        breakdown.critical_path += final_ln.total * batch as u64;

        let job = MpJob {
            rows: self.model.vocab.div_ceil(self.cfg.nodes()),
            cols: self.model.d_model,
            sync_bytes: 0,
            batch,
        };
        let t = self.mp.timing(&job);
        trace.push(Span::new(
            "mp",
            format!("lm_head x{batch}"),
            cursor,
            cursor + t.total,
        ));
        cursor += t.total;
        breakdown.critical_path += t.segment("overhead");
        breakdown.linear += t.total - t.segment("overhead");

        let host = self.cfg.host_overhead_cycles(&self.model, true) * batch as u64;
        breakdown.host += host;
        cursor += host;

        TokenTiming {
            total: cursor,
            breakdown,
            trace,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::OptimizationFlags;

    fn sched(nodes: usize) -> Scheduler {
        Scheduler::new(
            ArchConfig::builder().nodes(nodes).build().unwrap(),
            ModelConfig::gpt2_medium(),
        )
        .unwrap()
    }

    #[test]
    fn stage_sequence_covers_all_kernels() {
        let lanes: std::collections::BTreeSet<&str> =
            Stage::SEQUENCE.iter().map(|s| s.kernel_lane()).collect();
        assert_eq!(lanes.len(), 3);
        assert!(lanes.contains("mp") && lanes.contains("mha") && lanes.contains("lnres"));
    }

    #[test]
    fn trace_has_one_span_per_stage_plus_epilogue() {
        let s = sched(1);
        let t = s.schedule_token(16, true);
        // 24 layers × 8 stages + final LN + LM head
        assert_eq!(t.trace.len(), 24 * 8 + 2);
        // every span on the right lane; no overlap on a physical kernel
        assert!(t.trace.find_lane_conflict().is_none());
    }

    #[test]
    fn decode_token_near_paper_single_node_latency() {
        // Table II: 1-node ≈ 6.59 ms/token. Accept ±12 %.
        let s = sched(1);
        let t = s.schedule_token(512, true);
        let ms = t.total_ms(s.config());
        assert!((5.8..7.4).contains(&ms), "1-node token {ms} ms");
    }

    #[test]
    fn two_node_near_paper_latency() {
        // Table II: 2-node ≈ 3.85 ms/token.
        let s = sched(2);
        let ms = s.schedule_token(512, true).total_ms(s.config());
        assert!((3.4..4.3).contains(&ms), "2-node token {ms} ms");
    }

    #[test]
    fn four_node_near_paper_latency() {
        // Table II: 4-node ≈ 2.55 ms/token.
        let s = sched(4);
        let ms = s.schedule_token(512, true).total_ms(s.config());
        assert!((2.2..2.9).contains(&ms), "4-node token {ms} ms");
    }

    #[test]
    fn scaling_is_sublinear() {
        // Table III: 2-node speedup 1.71x, 4-node (vs 2-node) 1.51x —
        // sub-linear because critical-path operators do not distribute.
        let l1 = sched(1).schedule_token(512, true).total.as_f64();
        let l2 = sched(2).schedule_token(512, true).total.as_f64();
        let l4 = sched(4).schedule_token(512, true).total.as_f64();
        let s21 = l1 / l2;
        let s42 = l2 / l4;
        assert!(s21 > 1.4 && s21 < 2.0, "2-node speedup {s21}");
        assert!(s42 > 1.3 && s42 < 1.8, "4-node speedup {s42}");
        assert!(s42 < s21, "scaling efficiency must fall");
    }

    #[test]
    fn unoptimized_breakdown_matches_fig5_shape() {
        // Fig. 5(a): linear+MHA ≈ 81.5 %, critical path ≈ 18.5 %.
        let cfg = ArchConfig::builder()
            .nodes(1)
            .opts(OptimizationFlags::NONE)
            .build()
            .unwrap();
        let s = Scheduler::new(cfg, ModelConfig::gpt2_medium()).unwrap();
        let t = s.schedule_token(512, true);
        let cp = t.breakdown.critical_path_fraction();
        assert!((0.12..0.27).contains(&cp), "critical-path fraction {cp}");
    }

    #[test]
    fn optimizations_never_slow_a_token() {
        for nodes in [1usize, 2, 4] {
            let on = sched(nodes).schedule_token(256, true).total;
            let cfg_off = ArchConfig::builder()
                .nodes(nodes)
                .opts(OptimizationFlags::NONE)
                .build()
                .unwrap();
            let off = Scheduler::new(cfg_off, ModelConfig::gpt2_medium())
                .unwrap()
                .schedule_token(256, true)
                .total;
            assert!(on < off, "optimizations regressed at {nodes} nodes");
        }
    }

    #[test]
    fn prefill_tokens_skip_lm_head() {
        let s = sched(2);
        let with = s.schedule_token(128, true).total;
        let without = s.schedule_token(128, false).total;
        assert!(without < with);
    }

    #[test]
    fn longer_context_costs_more() {
        let s = sched(2);
        let short = s.schedule_token(32, true).total;
        let long = s.schedule_token(512, true).total;
        assert!(long > short);
    }

    #[test]
    fn indivisible_heads_rejected() {
        // gpt2-medium has 16 heads: a 3-node ring cannot partition them.
        let cfg = ArchConfig::builder().nodes(3).build().unwrap();
        let err = Scheduler::new(cfg, ModelConfig::gpt2_medium()).unwrap_err();
        assert!(err.to_string().contains("heads"), "{err}");
    }

    #[test]
    fn singleton_decode_batch_matches_schedule_token() {
        for nodes in [1usize, 2, 4] {
            let s = sched(nodes);
            for ctx in [1usize, 64, 512] {
                let single = s.schedule_token(ctx, true);
                let batched = s.schedule_decode_batch(&[ctx]);
                assert_eq!(
                    single.total, batched.total,
                    "{nodes} nodes ctx {ctx}: singleton batch diverged"
                );
                assert_eq!(single.breakdown, batched.breakdown);
            }
        }
    }

    #[test]
    fn decode_batch_amortizes_weight_streaming() {
        // Two concurrent requests must cost strictly less than two
        // back-to-back single-token iterations (weights streamed once),
        // but more than one (MHA and epilogue are per-request).
        let s = sched(2);
        let one = s.schedule_token(256, true).total.as_u64();
        let two = s.schedule_decode_batch(&[256, 256]).total.as_u64();
        assert!(two < 2 * one, "batched {two} vs 2x single {}", 2 * one);
        assert!(two > one, "batched {two} vs single {one}");
    }

    #[test]
    fn decode_batch_per_token_cost_is_monotone_down() {
        let s = sched(2);
        let mut prev = f64::INFINITY;
        for batch in [1usize, 2, 4, 8] {
            let contexts = vec![256usize; batch];
            let per = s.schedule_decode_batch(&contexts).total.as_f64() / batch as f64;
            assert!(per < prev, "batch {batch}: per-token {per} vs {prev}");
            prev = per;
        }
    }

    #[test]
    fn decode_batch_handles_mixed_contexts() {
        // Continuous batching interleaves requests at different decode
        // depths; the MHA charge must follow each request's own context.
        let s = sched(2);
        let mixed = s.schedule_decode_batch(&[16, 512]).total;
        let both_short = s.schedule_decode_batch(&[16, 16]).total;
        let both_long = s.schedule_decode_batch(&[512, 512]).total;
        assert!(both_short < mixed && mixed < both_long);
    }

    #[test]
    #[should_panic(expected = "must not be empty")]
    fn empty_decode_batch_rejected() {
        let _ = sched(1).schedule_decode_batch(&[]);
    }
}
