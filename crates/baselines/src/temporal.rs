//! DFX-like temporal architecture model.
//!
//! DFX (Hong et al., MICRO 2022) is the paper's temporal-architecture
//! baseline: an instruction-set overlay on an Alveo U280 executing fp16
//! transformer inference. Its defining costs, per the paper's analysis
//! (Section III-B, Fig. 3(a)):
//!
//! * **fp16 weights** — twice the HBM traffic of W8A8;
//! * **serialized execution** — "frequent operations of memory read,
//!   compute, and write-back, typically in a serialized manner", so memory
//!   and compute do not overlap;
//! * **instruction overhead** — each operation is fetched/decoded at the
//!   200 MHz overlay clock.

use serde::{Deserialize, Serialize};

use looplynx_hw::resources::ResourceVector;
use looplynx_model::config::ModelConfig;

use crate::report::FpgaBaselineReport;

/// The temporal (DFX-like) executor model.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TemporalArch {
    /// Overlay clock in MHz.
    pub freq_mhz: f64,
    /// Bytes per weight (fp16 = 2).
    pub bytes_per_weight: f64,
    /// Aggregate HBM bandwidth of the U280 in GB/s.
    pub hbm_gbps: f64,
    /// Achieved fraction of peak bandwidth (instruction-driven access
    /// patterns cannot sustain long bursts).
    pub hbm_efficiency: f64,
    /// DSP slices doing MACs.
    pub dsps: usize,
    /// DSPs consumed per fp16 MAC per cycle.
    pub dsp_per_mac: f64,
    /// Instructions executed per transformer layer.
    pub instructions_per_layer: usize,
    /// Fetch/decode/dispatch overhead per instruction in microseconds.
    pub instruction_overhead_us: f64,
    /// Board power in watts while decoding (U280-class overlay).
    pub power_watts: f64,
}

impl TemporalArch {
    /// DFX single-U280 calibration (paper Table II row: 5.37 ms, 200 MHz,
    /// Float16).
    pub fn dfx_u280() -> Self {
        TemporalArch {
            freq_mhz: 200.0,
            bytes_per_weight: 2.0,
            hbm_gbps: 460.0,
            hbm_efficiency: 0.42,
            dsps: 3533,
            dsp_per_mac: 2.0,
            instructions_per_layer: 30,
            instruction_overhead_us: 1.0,
            power_watts: 90.0,
        }
    }

    /// Per-token latency in milliseconds. Memory, compute and instruction
    /// overhead add up — the serialized pattern the hybrid design removes.
    pub fn token_latency_ms(&self, model: &ModelConfig) -> f64 {
        let weights = model.weights_bytes_total() as f64;
        let mem_ms = weights * self.bytes_per_weight / (self.hbm_gbps * self.hbm_efficiency) / 1e6;
        let macs = weights; // one MAC per weight element
        let macs_per_sec = self.dsps as f64 / self.dsp_per_mac * self.freq_mhz * 1e6;
        let compute_ms = macs / macs_per_sec * 1e3;
        let instr_ms =
            model.layers as f64 * self.instructions_per_layer as f64 * self.instruction_overhead_us
                / 1e3;
        mem_ms + compute_ms + instr_ms
    }

    /// Energy per generated token in joules.
    pub fn energy_per_token_j(&self, model: &ModelConfig) -> f64 {
        self.power_watts * self.token_latency_ms(model) / 1e3
    }

    /// The Table II row for this baseline.
    pub fn report(&self, model: &ModelConfig) -> FpgaBaselineReport {
        FpgaBaselineReport {
            name: "Temporal Architecture [2]".into(),
            nodes_desc: "U280".into(),
            freq_mhz: self.freq_mhz,
            quantization: "Float16".into(),
            token_latency_ms: self.token_latency_ms(model),
            resources: ResourceVector::new(3533.0, 520_000.0, 1_107_000.0, 1192.0, 104.0),
        }
    }
}

impl Default for TemporalArch {
    fn default() -> Self {
        Self::dfx_u280()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn latency_near_paper_row() {
        // Table II: DFX ≈ 5.37 ms/token on GPT-2 (345M). Accept ±10 %.
        let t = TemporalArch::dfx_u280().token_latency_ms(&ModelConfig::gpt2_medium());
        assert!((4.8..6.0).contains(&t), "DFX latency {t} ms");
    }

    #[test]
    fn memory_dominates() {
        let a = TemporalArch::dfx_u280();
        let m = ModelConfig::gpt2_medium();
        let weights = m.weights_bytes_total() as f64;
        let mem_ms = weights * 2.0 / (a.hbm_gbps * a.hbm_efficiency) / 1e6;
        assert!(
            mem_ms / a.token_latency_ms(&m) > 0.6,
            "fp16 traffic should dominate"
        );
    }

    #[test]
    fn fp16_pays_double_traffic() {
        let mut a = TemporalArch::dfx_u280();
        let base = a.token_latency_ms(&ModelConfig::gpt2_medium());
        a.bytes_per_weight = 1.0;
        let int8 = a.token_latency_ms(&ModelConfig::gpt2_medium());
        assert!(base > 1.4 * int8, "fp16 {base} vs int8 {int8}");
    }

    #[test]
    fn report_matches_paper_resources() {
        let r = TemporalArch::dfx_u280().report(&ModelConfig::gpt2_medium());
        assert_eq!(r.resources.dsp, 3533.0);
        assert_eq!(r.resources.uram, 104.0);
        assert_eq!(r.quantization, "Float16");
    }

    #[test]
    fn energy_scales_with_latency() {
        let a = TemporalArch::dfx_u280();
        let m = ModelConfig::gpt2_medium();
        let e = a.energy_per_token_j(&m);
        assert!((e - a.power_watts * a.token_latency_ms(&m) / 1e3).abs() < 1e-12);
        assert!(e > 0.3 && e < 0.8, "J/token {e}");
    }
}
