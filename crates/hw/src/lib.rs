//! # looplynx-hw — FPGA and GPU platform substrate
//!
//! Device, resource, floorplan and power models for the platforms of the
//! LoopLynx paper (Table I): the Nvidia A100 GPU baseline and the Xilinx
//! Alveo U50 / U280 FPGAs.
//!
//! * [`resources`] — DSP/LUT/FF/BRAM/URAM resource vectors with the
//!   composition model that reproduces the paper's Table II utilization
//!   rows and Fig. 7 component breakdown.
//! * [`device`] — Alveo U50/U280 capacity and SLR geometry.
//! * [`platform`] — the platform-comparison constants of Table I.
//! * [`power`] — resource-proportional FPGA power and utilization-based
//!   GPU power, calibrated to the paper's energy ratios.
//! * [`floorplan`] — SLR placement/fit checking and the ASCII layout of
//!   Fig. 7.
//!
//! # Example
//!
//! ```
//! use looplynx_hw::device::FpgaDevice;
//! use looplynx_hw::resources::NodeResourceModel;
//!
//! let model = NodeResourceModel::paper();
//! let two_node = model.device_total(2);
//! assert!(two_node.fits_within(&FpgaDevice::alveo_u50().resources()));
//! ```

#![forbid(unsafe_code)]
#![deny(missing_docs)]
#![deny(missing_debug_implementations)]

pub mod device;
pub mod floorplan;
pub mod platform;
pub mod power;
pub mod resources;

pub use device::FpgaDevice;
pub use platform::PlatformSpec;
pub use power::{FpgaPowerModel, GpuPowerModel};
pub use resources::{NodeResourceModel, ResourceVector};
