//! Host-runtime model.
//!
//! Paper Fig. 2(b): "upon receiving input prompts, the host first embeds
//! each token and then passes it to the accelerator through PCIe … the
//! host synchronizes the model's output and feeds it as input to initiate
//! token generation." Every token therefore pays a host-side cost:
//!
//! * embedding lookup (table read + add, microseconds),
//! * PCIe transfer of the embedding vector down to the accelerator,
//! * PCIe transfer of the logits back up (decode tokens only — by far the
//!   largest term: GPT-2's 50257 fp32 logits are ~200 KB), and
//! * sampling + loop bookkeeping.
//!
//! [`HostModel::token_overhead_us`] computes this from the model shape;
//! [`crate::config::ArchConfig`] uses it whenever no explicit override is
//! configured.

use serde::{Deserialize, Serialize};

use looplynx_model::config::ModelConfig;
use looplynx_sim::time::{Cycles, Frequency};

/// Host CPU + PCIe cost model.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct HostModel {
    /// Effective PCIe throughput in GB/s (Gen3 x16 sustains ~12 of its
    /// 16 GB/s on small DMA transfers).
    pub pcie_gbps: f64,
    /// Fixed per-transfer PCIe/driver latency in microseconds.
    pub pcie_latency_us: f64,
    /// Embedding lookup + add on the host in microseconds.
    pub embed_us: f64,
    /// Sampling (arg-max / top-k over the logits) in microseconds.
    pub sample_us: f64,
}

impl HostModel {
    /// The calibration behind the paper-matching results (≈19 µs per
    /// decode token on GPT-2 medium).
    pub fn paper() -> Self {
        HostModel {
            pcie_gbps: 12.0,
            pcie_latency_us: 1.0,
            embed_us: 0.5,
            sample_us: 2.0,
        }
    }

    /// Microseconds to move `bytes` across PCIe.
    pub fn transfer_us(&self, bytes: usize) -> f64 {
        self.pcie_latency_us + bytes as f64 / (self.pcie_gbps * 1e3)
    }

    /// Host overhead for one token in microseconds.
    ///
    /// `needs_logits` is true for decode tokens and the final prefill
    /// token; other prompt tokens only ship an embedding downstream.
    pub fn token_overhead_us(&self, model: &ModelConfig, needs_logits: bool) -> f64 {
        // embedding vector down: d_model int8 activations (+ scale header)
        let down = self.transfer_us(model.d_model + 16);
        let up = if needs_logits {
            // logits up: vocab × f32
            self.transfer_us(model.vocab * 4) + self.sample_us
        } else {
            0.0
        };
        self.embed_us + down + up
    }

    /// Host overhead in kernel-clock cycles.
    pub fn token_overhead_cycles(
        &self,
        model: &ModelConfig,
        needs_logits: bool,
        clock: Frequency,
    ) -> Cycles {
        clock.cycles_in_seconds(self.token_overhead_us(model, needs_logits) * 1e-6)
    }
}

impl Default for HostModel {
    fn default() -> Self {
        Self::paper()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn decode_token_overhead_near_calibration_point() {
        let h = HostModel::paper();
        let us = h.token_overhead_us(&ModelConfig::gpt2_medium(), true);
        // ~0.5 embed + ~1.1 down + ~17.8 up + 2 sample ≈ 21 µs
        assert!((15.0..25.0).contains(&us), "decode host overhead {us} µs");
    }

    #[test]
    fn logit_upload_dominates() {
        let h = HostModel::paper();
        let m = ModelConfig::gpt2_medium();
        let with = h.token_overhead_us(&m, true);
        let without = h.token_overhead_us(&m, false);
        assert!(with > 4.0 * without, "{with} vs {without}");
    }

    #[test]
    fn bigger_vocab_costs_more() {
        let h = HostModel::paper();
        let small = h.token_overhead_us(&ModelConfig::tiny(), true);
        let big = h.token_overhead_us(&ModelConfig::gpt2_medium(), true);
        assert!(big > small);
    }

    #[test]
    fn transfer_includes_fixed_latency() {
        let h = HostModel::paper();
        assert!(h.transfer_us(0) >= h.pcie_latency_us);
        // 12 GB/s → 1 MB in ~83 µs + latency
        let us = h.transfer_us(1 << 20);
        assert!((80.0..95.0).contains(&us), "{us}");
    }

    #[test]
    fn cycles_conversion_consistent() {
        let h = HostModel::paper();
        let m = ModelConfig::gpt2_medium();
        let clock = Frequency::from_mhz(285.0);
        let us = h.token_overhead_us(&m, true);
        let cyc = h.token_overhead_cycles(&m, true, clock);
        assert!((cyc.to_micros(clock) - us).abs() < 0.01);
    }
}
