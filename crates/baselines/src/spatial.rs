//! Spatial dataflow architecture model.
//!
//! The paper's spatial baseline (Chen et al., TRETS 2024) instantiates
//! every operator as its own kernel on an Alveo U280 and connects them in
//! a dataflow; during prefill the task-level pipeline keeps all kernels
//! busy, but "the sequential processing patterns in the decoding stage …
//! prevent continuous pipeline formation": at any instant only the kernels
//! of the currently-executing operator stream data, so most of the fabric
//! — and most of the HBM channels wired to idle kernels — sit unused
//! (paper Fig. 3(b.2)).

use serde::{Deserialize, Serialize};

use looplynx_hw::resources::ResourceVector;
use looplynx_model::config::ModelConfig;

use crate::report::FpgaBaselineReport;

/// The spatial-architecture executor model.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SpatialArch {
    /// Kernel clock in MHz.
    pub freq_mhz: f64,
    /// Aggregate U280 HBM bandwidth in GB/s.
    pub hbm_gbps: f64,
    /// Fraction of aggregate bandwidth usable during *decode* — only the
    /// active kernel's channels stream (the architecture's decode problem).
    pub decode_bw_fraction: f64,
    /// Fraction usable during *prefill*, when the task-level pipeline keeps
    /// every kernel (and its channels) busy.
    pub prefill_bw_fraction: f64,
    /// Fixed per-token overhead in milliseconds (pipeline fills between
    /// cascaded small kernels).
    pub per_token_overhead_ms: f64,
    /// Board power in watts.
    pub power_watts: f64,
}

impl SpatialArch {
    /// Calibration for the paper's Table II row (4.17 ms, 245 MHz, W8A8).
    pub fn u280() -> Self {
        SpatialArch {
            freq_mhz: 245.0,
            hbm_gbps: 460.0,
            decode_bw_fraction: 0.19,
            prefill_bw_fraction: 0.65,
            per_token_overhead_ms: 0.1,
            power_watts: 80.0,
        }
    }

    /// Decode per-token latency in milliseconds (W8A8 weights streamed
    /// through the active kernel's share of the bandwidth).
    pub fn decode_token_ms(&self, model: &ModelConfig) -> f64 {
        let bytes = model.weights_bytes_total() as f64;
        bytes / (self.hbm_gbps * self.decode_bw_fraction) / 1e6 + self.per_token_overhead_ms
    }

    /// Prefill per-token latency in milliseconds (task-level pipeline
    /// active — the architecture's strong regime).
    pub fn prefill_token_ms(&self, model: &ModelConfig) -> f64 {
        let bytes = model.weights_bytes_total() as f64;
        bytes / (self.hbm_gbps * self.prefill_bw_fraction) / 1e6 + self.per_token_overhead_ms
    }

    /// The paper's reported metric: a weighted per-token processing
    /// latency over a `[prefill : decode]` mix (the implementation "has
    /// separate versions for prefill and decode").
    ///
    /// # Panics
    ///
    /// Panics if both counts are zero.
    pub fn weighted_token_ms(&self, model: &ModelConfig, prefill: usize, decode: usize) -> f64 {
        assert!(prefill + decode > 0, "empty workload");
        let total = prefill as f64 * self.prefill_token_ms(model)
            + decode as f64 * self.decode_token_ms(model);
        total / (prefill + decode) as f64
    }

    /// Energy per decoded token in joules.
    pub fn energy_per_token_j(&self, model: &ModelConfig) -> f64 {
        self.power_watts * self.decode_token_ms(model) / 1e3
    }

    /// The Table II row for this baseline.
    pub fn report(&self, model: &ModelConfig) -> FpgaBaselineReport {
        FpgaBaselineReport {
            name: "Spatial Architecture [6]".into(),
            nodes_desc: "U280".into(),
            freq_mhz: self.freq_mhz,
            quantization: "W8A8".into(),
            token_latency_ms: self.decode_token_ms(model),
            resources: ResourceVector::new(1780.0, 653_000.0, 569_000.0, 389.0, 111.0),
        }
    }
}

impl Default for SpatialArch {
    fn default() -> Self {
        Self::u280()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn decode_latency_near_paper_row() {
        // Table II: spatial ≈ 4.17 ms/token. Accept ±10 %.
        let t = SpatialArch::u280().decode_token_ms(&ModelConfig::gpt2_medium());
        assert!((3.7..4.6).contains(&t), "spatial latency {t} ms");
    }

    #[test]
    fn prefill_is_much_faster_than_decode() {
        let a = SpatialArch::u280();
        let m = ModelConfig::gpt2_medium();
        assert!(
            a.decode_token_ms(&m) / a.prefill_token_ms(&m) > 2.5,
            "pipeline should shine in prefill"
        );
    }

    #[test]
    fn weighted_latency_interpolates() {
        let a = SpatialArch::u280();
        let m = ModelConfig::gpt2_medium();
        let w = a.weighted_token_ms(&m, 128, 512);
        assert!(w > a.prefill_token_ms(&m));
        assert!(w < a.decode_token_ms(&m));
    }

    #[test]
    fn report_matches_paper_resources() {
        let r = SpatialArch::u280().report(&ModelConfig::gpt2_medium());
        assert_eq!(r.resources.dsp, 1780.0);
        assert_eq!(r.resources.bram, 389.0);
        assert!((r.freq_mhz - 245.0).abs() < 1e-9);
    }

    #[test]
    fn ordering_between_baselines_matches_paper() {
        // Table II ordering: spatial (4.17) beats DFX (5.37) on decode.
        let spatial = SpatialArch::u280().decode_token_ms(&ModelConfig::gpt2_medium());
        let dfx =
            crate::temporal::TemporalArch::dfx_u280().token_latency_ms(&ModelConfig::gpt2_medium());
        assert!(spatial < dfx, "spatial {spatial} vs DFX {dfx}");
    }

    #[test]
    #[should_panic(expected = "empty workload")]
    fn empty_mix_rejected() {
        let _ = SpatialArch::u280().weighted_token_ms(&ModelConfig::gpt2_medium(), 0, 0);
    }
}
