//! Property suite: fault injection never changes *what* completed
//! requests compute, only *whether/when* they complete.
//!
//! For any seeded [`FaultPlan`] the gateway's retry path replays vetoed
//! operations against an unperturbed backend, so every request that
//! reaches `Completed` must produce a token stream bit-identical to the
//! fault-free run of the same workload. This is the serving-tier
//! extension of the batched-decode exactness suite: faults may shed,
//! stall, or strand requests, but they may never corrupt one.

use proptest::prelude::*;

use looplynx_core::backend::{FunctionalBackend, SamplerSpec};
use looplynx_core::engine::DistributedGpt2;
use looplynx_core::fault::{FaultPlan, FaultyBackend};
use looplynx_core::router::RingMode;
use looplynx_model::config::ModelConfig;
use looplynx_model::gpt2::Gpt2Model;
use looplynx_serve::{
    serve_gateway_on, ArrivalProcess, EvictPolicyKind, GatewayConfig, GatewayRequest, ShedPolicy,
    Terminal,
};

const SLOTS: usize = 4;

fn fresh_backend(model: &Gpt2Model) -> FunctionalBackend {
    let engine = DistributedGpt2::with_slots(model, 2, RingMode::Exact, SLOTS, 48)
        .expect("tiny model partitions");
    FunctionalBackend::new(engine, SamplerSpec::Greedy)
}

/// An oversubscribed paged backend: 4-token pages, a 12-page pool (the
/// minimum the geometry allows for capacity 48) against `SLOTS * 2`
/// slots — residents routinely outgrow the pool and must be preempted.
fn oversubscribed_backend(model: &Gpt2Model) -> FunctionalBackend {
    let engine = DistributedGpt2::with_paged_slots(model, 2, RingMode::Exact, SLOTS * 2, 48, 4, 12)
        .expect("tiny model partitions");
    FunctionalBackend::new(engine, SamplerSpec::Greedy)
}

fn workload(n: usize, seed: u64) -> Vec<GatewayRequest> {
    let cfg = ModelConfig::tiny();
    let reqs = ArrivalProcess::Trace(vec![0.0; n]).workload_with_prompts(
        n,
        &[(6, 7), (4, 9), (8, 5)],
        cfg.vocab,
        seed,
    );
    GatewayRequest::from_workload(&reqs)
}

fn gateway_cfg() -> GatewayConfig {
    GatewayConfig {
        max_batch: SLOTS,
        queue_depth: 64,
        // No deadlines: the functional clock is measured host time, and
        // this suite is about token exactness, not latency.
        ttft_deadline_ms: None,
        e2e_deadline_ms: None,
        max_retries: 48,
        retry_backoff_ms: 0.5,
        shed: ShedPolicy::Reject,
        prefill_chunk: None,
        evict: EvictPolicyKind::YoungestFirst,
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// For any seeded fault plan, completed requests are bit-identical
    /// to the fault-free run, and the run conserves every request.
    #[test]
    fn completed_streams_survive_any_fault_plan(
        plan_seed in any::<u64>(),
        workload_seed in any::<u64>(),
        prefill_rate in 0.0f64..0.4,
        decode_rate in 0.0f64..0.4,
        stall_rate in 0.0f64..0.3,
        leak_rate in 0.0f64..0.3,
        n in 4usize..10,
    ) {
        let model = Gpt2Model::synthetic(&ModelConfig::tiny(), 2024);
        let offered = workload(n, workload_seed);

        let mut clean = fresh_backend(&model);
        let reference = serve_gateway_on(&mut clean, &offered, &gateway_cfg());
        prop_assert_eq!(reference.counts().completed, n, "fault-free run completes all");

        let plan = FaultPlan {
            seed: plan_seed,
            prefill_fail_rate: prefill_rate,
            decode_fail_rate: decode_rate,
            stall_rate,
            stall_ms: 250.0,
            release_leak_rate: leak_rate,
            page_fault_rate: 0.0,
        };
        let mut faulty = FaultyBackend::new(fresh_backend(&model), plan);
        let report = serve_gateway_on(&mut faulty, &offered, &gateway_cfg());

        // Conservation: exactly one terminal per offered request.
        prop_assert!(report.is_conserved(&offered), "{}", report);

        // Exactness: every completed stream matches the reference.
        for t in &report.terminals {
            if t.terminal != Terminal::Completed {
                continue;
            }
            prop_assert_eq!(
                report.serving.output_tokens(t.id),
                reference.serving.output_tokens(t.id),
                "request {} diverged under plan {:?}", t.id, plan
            );
        }
    }

    /// The fault-free plan is fully transparent: wrapping the backend in
    /// `FaultyBackend` with `FaultPlan::none()` leaves the gateway run's
    /// outputs and terminal census unchanged.
    #[test]
    fn none_plan_is_transparent(workload_seed in any::<u64>(), n in 3usize..8) {
        let model = Gpt2Model::synthetic(&ModelConfig::tiny(), 2024);
        let offered = workload(n, workload_seed);

        let mut bare = fresh_backend(&model);
        let a = serve_gateway_on(&mut bare, &offered, &gateway_cfg());
        let mut wrapped = FaultyBackend::new(fresh_backend(&model), FaultPlan::none());
        let b = serve_gateway_on(&mut wrapped, &offered, &gateway_cfg());

        prop_assert_eq!(a.counts(), b.counts());
        prop_assert_eq!(a.serving.outputs, b.serving.outputs);
        prop_assert_eq!(b.retries, 0);
    }

    /// Injected page faults under the `Preempt` policy: every offered
    /// request reaches exactly one terminal state (a preempted request
    /// is resumed, not lost), and every completed stream bit-matches the
    /// fault-free reference.
    #[test]
    fn page_faults_preempt_but_never_corrupt(
        plan_seed in any::<u64>(),
        workload_seed in any::<u64>(),
        page_rate in 0.0f64..0.35,
        n in 4usize..10,
    ) {
        let model = Gpt2Model::synthetic(&ModelConfig::tiny(), 2024);
        let offered = workload(n, workload_seed);

        let mut clean = fresh_backend(&model);
        let reference = serve_gateway_on(&mut clean, &offered, &gateway_cfg());

        let plan = FaultPlan {
            seed: plan_seed,
            prefill_fail_rate: 0.0,
            decode_fail_rate: 0.0,
            stall_rate: 0.0,
            stall_ms: 0.0,
            release_leak_rate: 0.0,
            page_fault_rate: page_rate,
        };
        let mut faulty = FaultyBackend::new(fresh_backend(&model), plan);
        let cfg = GatewayConfig { shed: ShedPolicy::Preempt, ..gateway_cfg() };
        let report = serve_gateway_on(&mut faulty, &offered, &cfg);

        prop_assert!(report.is_conserved(&offered), "{}", report);
        for t in &report.terminals {
            if t.terminal != Terminal::Completed {
                continue;
            }
            prop_assert_eq!(
                report.serving.output_tokens(t.id),
                reference.serving.output_tokens(t.id),
                "request {} diverged under page-fault plan {:?}", t.id, plan
            );
        }
    }

    /// Genuine page pressure (an oversubscribed pool, no injected
    /// faults): preemption lets every request terminate `Completed`,
    /// bit-identical to the roomy reference, at any prefill chunking.
    #[test]
    fn oversubscription_completes_exactly(
        workload_seed in any::<u64>(),
        raw_chunk in 0usize..10,
        n in 4usize..10,
    ) {
        // 0 means "no chunking" — one-pass prefill.
        let chunk = (raw_chunk > 0).then_some(raw_chunk);
        let model = Gpt2Model::synthetic(&ModelConfig::tiny(), 2024);
        let offered = workload(n, workload_seed);

        let mut clean = fresh_backend(&model);
        let reference = serve_gateway_on(&mut clean, &offered, &gateway_cfg());

        let mut tight = oversubscribed_backend(&model);
        let cfg = GatewayConfig {
            max_batch: SLOTS * 2,
            shed: ShedPolicy::Preempt,
            prefill_chunk: chunk,
            ..gateway_cfg()
        };
        let report = serve_gateway_on(&mut tight, &offered, &cfg);

        prop_assert!(report.is_conserved(&offered), "{}", report);
        prop_assert_eq!(report.counts().completed, n, "{}", report);
        for t in &report.terminals {
            prop_assert_eq!(
                report.serving.output_tokens(t.id),
                reference.serving.output_tokens(t.id),
                "request {} diverged under oversubscription (chunk {:?})", t.id, chunk
            );
        }
    }
}
