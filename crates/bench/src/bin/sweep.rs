//! Design-space + scaling sweep, CSV output — machine-readable companion
//! to Table II/III and the `design_space`/`multi_fpga_scaling` examples.
//!
//! ```text
//! cargo run --release -p looplynx-bench --bin sweep > sweep.csv
//! ```

use looplynx_core::config::ArchConfig;
use looplynx_core::engine::LoopLynx;
use looplynx_core::memory::hbm_budget;
use looplynx_model::config::ModelConfig;

fn main() {
    let model = ModelConfig::gpt2_medium();
    let context = 512usize;
    println!(
        "nodes,mp_channels,n_group,prefill_batch,ms_per_token,tokens_per_s,\
         watts,tokens_per_joule,devices,hbm_utilization"
    );
    for nodes in [1usize, 2, 4, 8] {
        for mp_channels in [6usize, 8, 10, 12] {
            for n_group in [16usize, 32] {
                for prefill_batch in [1usize, 8] {
                    let Ok(arch) = ArchConfig::builder()
                        .nodes(nodes)
                        .mp_channels(mp_channels)
                        .n_group(n_group)
                        .prefill_batch(prefill_batch)
                        .build()
                    else {
                        continue; // over the HBM channel budget
                    };
                    let Ok(engine) = LoopLynx::new(model.clone(), arch.clone()) else {
                        continue;
                    };
                    let ms = engine.steady_state_decode_ms(context);
                    let watts = arch.power_watts(1.0);
                    let tps = 1e3 / ms;
                    let budget = hbm_budget(&arch, &model, model.max_seq);
                    println!(
                        "{nodes},{mp_channels},{n_group},{prefill_batch},\
                         {ms:.3},{tps:.1},{watts:.1},{:.3},{},{:.4}",
                        tps / watts,
                        arch.devices(),
                        budget.utilization(),
                    );
                }
            }
        }
    }
}
