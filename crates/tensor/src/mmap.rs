//! Read-only memory-mapped byte arenas for zero-copy weight loading.
//!
//! Quantized checkpoints (see `looplynx-model`'s `checkpoint` module) store
//! their tensor payload in one page-aligned arena. Mapping that arena with
//! `mmap(2)` instead of `read(2)` means model load touches no weight bytes
//! up front: pages fault in lazily as the first decode step streams each
//! matrix, and the page cache — not the process heap — owns the resident
//! copy. [`Matrix::from_arena`](crate::matrix::Matrix::from_arena) builds
//! zero-copy matrix views on top of an [`Arc<MappedArena>`].
//!
//! The crate vendors no `libc`, so the two syscall wrappers are declared
//! by hand behind `#[cfg(unix)]`; every other platform (and any `mmap`
//! failure) falls back to a plain heap read, which is bit-identical, just
//! not lazy.

use std::fs::File;
use std::io::Read;
use std::path::Path;
use std::sync::Arc;

/// Errors from carving a typed slice out of an arena.
///
/// These are programming/corruption errors surfaced as values (not panics)
/// so checkpoint loaders can map them to their own typed errors.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ArenaError {
    /// The requested byte range runs past the end of the arena.
    OutOfBounds {
        /// Requested end offset (bytes).
        end: usize,
        /// Arena length (bytes).
        len: usize,
    },
    /// The start of the range is not aligned for the element type.
    Misaligned {
        /// Requested start offset (bytes).
        offset: usize,
        /// Required alignment (bytes).
        align: usize,
    },
}

impl std::fmt::Display for ArenaError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ArenaError::OutOfBounds { end, len } => {
                write!(f, "arena slice ends at byte {end} but arena holds {len}")
            }
            ArenaError::Misaligned { offset, align } => {
                write!(f, "arena offset {offset} not aligned to {align}")
            }
        }
    }
}

impl std::error::Error for ArenaError {}

#[cfg(unix)]
mod sys {
    //! Hand-declared prototypes for the two syscalls we need. The
    //! constants match Linux and the BSDs (including macOS) on 64-bit
    //! targets, which is every `unix` target this workspace builds for.
    use std::os::raw::{c_int, c_void};

    /// Pages may be read.
    pub const PROT_READ: c_int = 1;
    /// Changes are private (we never write, but private is the
    /// conservative choice: a concurrent writer cannot alter our view
    /// beyond what the OS already permits for file-backed maps).
    pub const MAP_PRIVATE: c_int = 2;

    extern "C" {
        pub fn mmap(
            addr: *mut c_void,
            len: usize,
            prot: c_int,
            flags: c_int,
            fd: c_int,
            offset: i64,
        ) -> *mut c_void;
        pub fn munmap(addr: *mut c_void, len: usize) -> c_int;
    }
}

/// How the arena's bytes are backed.
#[derive(Debug)]
enum Backing {
    /// A private read-only file mapping; unmapped on drop.
    #[cfg(unix)]
    Mapped {
        /// Page-aligned base address returned by `mmap`.
        ptr: *const u8,
        /// Mapping length in bytes (non-zero).
        len: usize,
    },
    /// Plain heap bytes (fallback path and `from_bytes`).
    Heap(Vec<u8>),
}

/// An immutable byte arena, memory-mapped when the platform allows it.
///
/// The arena is shared via [`Arc`] by every matrix view carved out of it,
/// so the mapping outlives all borrows of its bytes. The mapped variant is
/// never written through — `PROT_READ` makes the kernel enforce what the
/// type system promises.
///
/// # Example
///
/// ```
/// use looplynx_tensor::mmap::MappedArena;
///
/// let arena = MappedArena::from_bytes(vec![1, 2, 3, 4]);
/// assert_eq!(arena.bytes(), &[1, 2, 3, 4]);
/// ```
#[derive(Debug)]
pub struct MappedArena {
    backing: Backing,
}

// SAFETY: the mapped variant is a private, read-only mapping that is never
// mutated through `ptr` (no `PROT_WRITE`), so shared references to its
// bytes are valid from any thread; the heap variant is an ordinary Vec.
unsafe impl Send for MappedArena {}
// SAFETY: see the `Send` justification — the arena is immutable after
// construction, so concurrent `&self` access cannot race.
unsafe impl Sync for MappedArena {}

impl MappedArena {
    /// Maps `path` read-only, falling back to a heap read if `mmap` is
    /// unavailable (non-unix) or fails. Empty files always use the heap
    /// backing (`mmap` rejects zero-length mappings).
    ///
    /// # Errors
    ///
    /// Returns the underlying I/O error if the file cannot be opened or
    /// (on the fallback path) read.
    pub fn map_file(path: &Path) -> std::io::Result<Arc<Self>> {
        let mut file = File::open(path)?;
        let len = file.metadata()?.len() as usize;

        // Miri has no shim for file-backed mmap through hand-declared
        // FFI, so interpreter runs take the (bit-identical) heap path.
        #[cfg(all(unix, not(miri)))]
        if len > 0 {
            use std::os::unix::io::AsRawFd;
            // SAFETY: we pass a null hint, a length matching the open
            // file, and flags asking for a fresh private read-only
            // mapping; the fd stays open across the call. `mmap` either
            // returns a valid mapping of `len` bytes or MAP_FAILED
            // (checked below).
            let ptr = unsafe {
                sys::mmap(
                    std::ptr::null_mut(),
                    len,
                    sys::PROT_READ,
                    sys::MAP_PRIVATE,
                    file.as_raw_fd(),
                    0,
                )
            };
            if ptr as isize != -1 && !ptr.is_null() {
                return Ok(Arc::new(MappedArena {
                    backing: Backing::Mapped {
                        ptr: ptr as *const u8,
                        len,
                    },
                }));
            }
            // fall through to the heap read on MAP_FAILED
        }

        let mut data = Vec::with_capacity(len);
        file.read_to_end(&mut data)?;
        Ok(Arc::new(MappedArena {
            backing: Backing::Heap(data),
        }))
    }

    /// Wraps heap bytes in an arena (testing and the non-mmap fallback).
    pub fn from_bytes(data: Vec<u8>) -> Arc<Self> {
        Arc::new(MappedArena {
            backing: Backing::Heap(data),
        })
    }

    /// The arena's bytes.
    pub fn bytes(&self) -> &[u8] {
        match &self.backing {
            #[cfg(unix)]
            Backing::Mapped { ptr, len } => {
                // SAFETY: `ptr` is the live mapping created in `map_file`
                // with exactly `len` readable bytes; it stays valid until
                // `Drop` runs, which cannot happen while `&self` is
                // borrowed.
                unsafe { std::slice::from_raw_parts(*ptr, *len) }
            }
            Backing::Heap(v) => v,
        }
    }

    /// Length in bytes.
    pub fn len(&self) -> usize {
        match &self.backing {
            #[cfg(unix)]
            Backing::Mapped { len, .. } => *len,
            Backing::Heap(v) => v.len(),
        }
    }

    /// Whether the arena is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Whether the bytes come from a live `mmap` (false on the heap
    /// fallback) — lets tests assert the zero-copy path actually engaged.
    pub fn is_mapped(&self) -> bool {
        match &self.backing {
            #[cfg(unix)]
            Backing::Mapped { .. } => true,
            Backing::Heap(_) => false,
        }
    }

    /// Bounds- and alignment-checks a typed byte range, returning the
    /// validated start offset. Helper for
    /// [`Matrix::from_arena`](crate::matrix::Matrix::from_arena).
    ///
    /// # Errors
    ///
    /// [`ArenaError::OutOfBounds`] if `offset + byte_len` exceeds the
    /// arena; [`ArenaError::Misaligned`] if the byte at `offset` is not
    /// `align`-aligned in memory.
    pub fn check_range(
        &self,
        offset: usize,
        byte_len: usize,
        align: usize,
    ) -> Result<(), ArenaError> {
        let end = offset
            .checked_add(byte_len)
            .ok_or(ArenaError::OutOfBounds {
                end: usize::MAX,
                len: self.len(),
            })?;
        if end > self.len() {
            return Err(ArenaError::OutOfBounds {
                end,
                len: self.len(),
            });
        }
        let addr = self.bytes().as_ptr() as usize + offset;
        if !addr.is_multiple_of(align) {
            return Err(ArenaError::Misaligned { offset, align });
        }
        Ok(())
    }
}

impl Drop for MappedArena {
    fn drop(&mut self) {
        #[cfg(unix)]
        if let Backing::Mapped { ptr, len } = self.backing {
            // SAFETY: `ptr`/`len` describe the mapping `map_file`
            // created; every view into it holds the owning Arc, so no
            // slice derived from this arena can outlive this drop.
            unsafe {
                sys::munmap(ptr as *mut std::os::raw::c_void, len);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn heap_arena_round_trips() {
        let arena = MappedArena::from_bytes((0u8..64).collect());
        assert_eq!(arena.len(), 64);
        assert!(!arena.is_empty());
        assert!(!arena.is_mapped());
        assert_eq!(arena.bytes()[63], 63);
    }

    #[test]
    fn map_file_reads_real_bytes() {
        let path = std::env::temp_dir().join("looplynx_mmap_test.bin");
        std::fs::write(&path, [7u8; 4096]).unwrap();
        let arena = MappedArena::map_file(&path).unwrap();
        assert_eq!(arena.len(), 4096);
        assert!(arena.bytes().iter().all(|&b| b == 7));
        #[cfg(all(unix, not(miri)))]
        assert!(arena.is_mapped(), "unix should take the mmap path");
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn empty_file_maps_to_empty_heap() {
        let path = std::env::temp_dir().join("looplynx_mmap_empty.bin");
        std::fs::write(&path, []).unwrap();
        let arena = MappedArena::map_file(&path).unwrap();
        assert!(arena.is_empty());
        assert!(!arena.is_mapped());
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn check_range_rejects_overruns_and_misalignment() {
        let arena = MappedArena::from_bytes(vec![0; 16]);
        assert!(arena.check_range(0, 16, 1).is_ok());
        assert!(matches!(
            arena.check_range(1, 16, 1),
            Err(ArenaError::OutOfBounds { end: 17, len: 16 })
        ));
        assert!(matches!(
            arena.check_range(usize::MAX, 2, 1),
            Err(ArenaError::OutOfBounds { .. })
        ));
        // A Vec<u8> is 1-aligned at minimum; offset 1 from a 4-aligned
        // base must fail a 4-alignment check whichever way the allocator
        // placed it — probe both offsets to find one misaligned.
        let base = arena.bytes().as_ptr() as usize;
        let off = (4 - base % 4) % 4 + 1; // first 4-misaligned offset
        assert!(matches!(
            arena.check_range(off, 4, 4),
            Err(ArenaError::Misaligned { .. })
        ));
    }
}
