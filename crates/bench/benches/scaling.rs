//! Table III bench: multi-node scaling. Measures the generation simulator
//! across ring sizes and the ring-network discrete-event simulation,
//! printing the simulated throughput rows (the paper's metric) alongside.

use std::hint::black_box;
use std::time::Duration;

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use looplynx_bench::experiments::{table3, TABLE2_CONTEXT};
use looplynx_core::config::ArchConfig;
use looplynx_core::engine::LoopLynx;
use looplynx_model::config::ModelConfig;
use looplynx_sim::net::{RingSim, RingSpec};
use looplynx_sim::time::Frequency;

fn bench_generation_scaling(c: &mut Criterion) {
    let model = ModelConfig::gpt2_medium();
    for row in table3(&model) {
        eprintln!(
            "[table3] {}-node: {:.1} token/s{}",
            row.nodes,
            row.tokens_per_second,
            row.speedup_vs_previous
                .map_or(String::new(), |s| format!(" ({s:.2}x)")),
        );
    }
    let mut group = c.benchmark_group("table3_generation");
    for nodes in [1usize, 2, 4, 8] {
        let arch = ArchConfig::builder().nodes(nodes).build().expect("valid");
        let engine = LoopLynx::new(model.clone(), arch).expect("partitions");
        group.bench_with_input(BenchmarkId::new("nodes", nodes), &nodes, |b, _| {
            b.iter(|| engine.simulate_generation(black_box(16), black_box(16)))
        });
    }
    group.finish();
}

fn bench_ring_all_gather(c: &mut Criterion) {
    let clock = Frequency::from_mhz(285.0);
    let mut group = c.benchmark_group("ring_all_gather_des");
    for nodes in [2usize, 4, 8] {
        let spec = RingSpec::paper_ring(nodes, clock);
        let shards: Vec<Vec<u8>> = (0..nodes).map(|i| vec![i as u8; 4096]).collect();
        group.bench_with_input(BenchmarkId::new("nodes", nodes), &nodes, |b, _| {
            let sim = RingSim::new(spec.clone());
            b.iter(|| sim.all_gather(black_box(&shards)))
        });
    }
    group.finish();
}

fn bench_steady_state_latency_model(c: &mut Criterion) {
    let model = ModelConfig::gpt2_medium();
    let mut group = c.benchmark_group("steady_state_decode");
    for nodes in [1usize, 2, 4] {
        let arch = ArchConfig::builder().nodes(nodes).build().expect("valid");
        let engine = LoopLynx::new(model.clone(), arch).expect("partitions");
        group.bench_with_input(BenchmarkId::new("nodes", nodes), &nodes, |b, _| {
            b.iter(|| engine.steady_state_decode_ms(black_box(TABLE2_CONTEXT)))
        });
    }
    group.finish();
}

fn config() -> Criterion {
    Criterion::default()
        .sample_size(10)
        .warm_up_time(Duration::from_millis(200))
        .measurement_time(Duration::from_millis(800))
}

criterion_group! {
    name = benches;
    config = config();
    targets = bench_generation_scaling, bench_ring_all_gather, bench_steady_state_latency_model
}
criterion_main!(benches);
