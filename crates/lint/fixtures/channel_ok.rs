// Positive fixture for `bounded_channel`: bounded channels carry their
// backpressure in the type.

use std::sync::mpsc;

fn fine() {
    let (tx, rx) = mpsc::sync_channel::<u32>(8);
    tx.send(1).ok();
    let _ = rx.recv();
}

#[cfg(test)]
mod tests {
    #[test]
    fn tests_may_use_unbounded() {
        let (tx, rx) = std::sync::mpsc::channel::<u32>();
        tx.send(1).ok();
        assert_eq!(rx.recv().ok(), Some(1));
    }
}
