//! Deterministic fault injection for the serving stack.
//!
//! Chaos testing an inference fleet only works if the chaos is
//! *replayable*: the same plan must inject the same faults at the same
//! points so a failing run can be debugged and an invariant ("completed
//! requests are bit-identical to a fault-free run") can be asserted
//! exactly. [`FaultPlan`] is that seeded plan, and [`FaultyBackend`]
//! applies it to any [`InferenceBackend`]:
//!
//! * **prefill / decode faults** — the operation is vetoed *before* the
//!   inner backend runs, so inner state never diverges from a valid
//!   schedule and retrying the identical call is exact;
//! * **latency stalls** — the operation succeeds but reports extra
//!   elapsed time, pushing the serving clock toward request deadlines;
//! * **release leaks** — a completed request's slot is silently never
//!   returned to the inner backend, permanently shrinking
//!   [`InferenceBackend::capacity`] the way a crashed worker strands its
//!   sequences.
//!
//! Faults are drawn from a SplitMix64 stream seeded by the plan, one
//! Bernoulli roll per injection point, so a (plan, workload, scheduler)
//! triple replays bit-identically on timing-deterministic backends.

use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};
use serde::{Deserialize, Serialize};

use crate::backend::{
    BackendError, DecodeOutcome, InferenceBackend, PreemptedSeq, PrefillOutcome, PrefillProgress,
};

/// A seeded, rate-parameterized chaos plan.
///
/// Rates are per-operation Bernoulli probabilities in `[0, 1]`.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct FaultPlan {
    /// Seed of the fault stream (equal plans inject equal faults).
    pub seed: u64,
    /// Probability a prefill is vetoed with
    /// [`BackendError::InjectedFault`].
    pub prefill_fail_rate: f64,
    /// Probability a decode iteration is vetoed with
    /// [`BackendError::InjectedFault`].
    pub decode_fail_rate: f64,
    /// Probability a successful operation stalls for
    /// [`FaultPlan::stall_ms`] extra reported milliseconds.
    pub stall_rate: f64,
    /// Injected stall length (ms of the backend's clock domain).
    pub stall_ms: f64,
    /// Probability a release leaks: the caller sees success but the
    /// inner slot is stranded forever.
    pub release_leak_rate: f64,
    /// Probability a KV-growing operation (a decode iteration, a prefill
    /// chunk, a resume) is vetoed with [`BackendError::PagesExhausted`]
    /// *before* the inner backend runs — synthetic page pressure, so
    /// preemption paths exercise without a genuinely tiny pool.
    pub page_fault_rate: f64,
}

impl FaultPlan {
    /// The fault-free plan (every rate zero) — wrapping a backend with it
    /// changes nothing but the draw of unused random numbers.
    pub fn none() -> Self {
        FaultPlan {
            seed: 0,
            prefill_fail_rate: 0.0,
            decode_fail_rate: 0.0,
            stall_rate: 0.0,
            stall_ms: 0.0,
            release_leak_rate: 0.0,
            page_fault_rate: 0.0,
        }
    }

    /// A plan that exercises every *transient-or-leak* fault kind at
    /// intensity `rate`: prefill/decode faults at `rate`, stalls at
    /// `rate / 2` (1500 ms each), release leaks at `rate / 4`. Page
    /// faults are **not** included — [`BackendError::PagesExhausted`] is
    /// not retryable, so it only makes sense against schedulers that
    /// preempt; opt in by setting
    /// [`page_fault_rate`](FaultPlan::page_fault_rate) explicitly.
    ///
    /// # Panics
    ///
    /// Panics if `rate` is outside `[0, 1]`.
    pub fn uniform(seed: u64, rate: f64) -> Self {
        assert!(
            (0.0..=1.0).contains(&rate),
            "fault rate {rate} not in [0,1]"
        );
        FaultPlan {
            seed,
            prefill_fail_rate: rate,
            decode_fail_rate: rate,
            stall_rate: rate / 2.0,
            stall_ms: 1_500.0,
            release_leak_rate: rate / 4.0,
            page_fault_rate: 0.0,
        }
    }

    /// Whether this plan can never inject anything.
    pub fn is_fault_free(&self) -> bool {
        self.prefill_fail_rate == 0.0
            && self.decode_fail_rate == 0.0
            && self.stall_rate == 0.0
            && self.release_leak_rate == 0.0
            && self.page_fault_rate == 0.0
    }

    /// Validates every rate is a probability and the stall is finite.
    ///
    /// # Panics
    ///
    /// Panics on a malformed plan.
    fn validate(&self) {
        for (name, rate) in [
            ("prefill_fail_rate", self.prefill_fail_rate),
            ("decode_fail_rate", self.decode_fail_rate),
            ("stall_rate", self.stall_rate),
            ("release_leak_rate", self.release_leak_rate),
            ("page_fault_rate", self.page_fault_rate),
        ] {
            assert!((0.0..=1.0).contains(&rate), "{name} {rate} not in [0,1]");
        }
        assert!(
            self.stall_ms.is_finite() && self.stall_ms >= 0.0,
            "stall_ms must be finite and non-negative"
        );
    }
}

/// Counters of what a [`FaultyBackend`] actually injected.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct FaultStats {
    /// Prefills vetoed.
    pub prefill_faults: u64,
    /// Decode iterations vetoed.
    pub decode_faults: u64,
    /// Stalls added to successful operations.
    pub stalls: u64,
    /// Releases leaked (slots stranded in the inner backend).
    pub leaked_releases: u64,
    /// KV-growing operations vetoed with synthetic page pressure.
    pub page_faults: u64,
}

impl FaultStats {
    /// Total injections of any kind.
    pub fn total(&self) -> u64 {
        self.prefill_faults
            + self.decode_faults
            + self.stalls
            + self.leaked_releases
            + self.page_faults
    }
}

/// Wraps any backend with deterministic, seeded fault injection.
///
/// Vetoed operations never reach the inner backend, so the inner
/// KV/slot/sampler state evolves exactly as it would under some valid
/// fault-free schedule — which is why requests that *complete* under
/// chaos are bit-identical to their fault-free generations.
#[derive(Debug)]
pub struct FaultyBackend<B> {
    inner: B,
    plan: FaultPlan,
    rng: StdRng,
    stats: FaultStats,
    /// Slots the wrapper reported released but never released inside.
    leaked: Vec<usize>,
}

impl<B: InferenceBackend> FaultyBackend<B> {
    /// Wraps `inner` under `plan`.
    ///
    /// # Panics
    ///
    /// Panics if the plan's rates are not probabilities.
    pub fn new(inner: B, plan: FaultPlan) -> Self {
        plan.validate();
        FaultyBackend {
            inner,
            plan,
            rng: StdRng::seed_from_u64(plan.seed),
            stats: FaultStats::default(),
            leaked: Vec::new(),
        }
    }

    /// The wrapped backend.
    pub fn inner(&self) -> &B {
        &self.inner
    }

    /// What has been injected so far.
    pub fn stats(&self) -> FaultStats {
        self.stats
    }

    /// The plan in force.
    pub fn plan(&self) -> &FaultPlan {
        &self.plan
    }

    /// Slots stranded by leaked releases.
    pub fn leaked_slots(&self) -> &[usize] {
        &self.leaked
    }

    /// One Bernoulli roll at probability `rate`. Rolls draw in operation
    /// order, so a fixed operation sequence replays identically.
    fn roll(&mut self, rate: f64) -> bool {
        rate > 0.0 && self.rng.random::<f64>() < rate
    }

    /// Rolls the page-fault point: synthetic pool pressure, vetoing the
    /// operation before the inner backend runs.
    fn roll_page_fault(&mut self) -> Result<(), BackendError> {
        if self.roll(self.plan.page_fault_rate) {
            self.stats.page_faults += 1;
            return Err(BackendError::PagesExhausted { needed: 1, free: 0 });
        }
        Ok(())
    }
}

impl<B: InferenceBackend> InferenceBackend for FaultyBackend<B> {
    fn name(&self) -> &'static str {
        self.inner.name()
    }

    fn max_seq(&self) -> usize {
        self.inner.max_seq()
    }

    /// The inner capacity minus slots stranded by leaked releases: the
    /// admission ceiling honestly shrinks as chaos strands sequences.
    fn capacity(&self) -> usize {
        self.inner.capacity().saturating_sub(self.leaked.len())
    }

    fn prefill(
        &mut self,
        prompt_len: usize,
        prompt: Option<&[u32]>,
        sampler_seed: u64,
    ) -> Result<PrefillOutcome, BackendError> {
        if self.roll(self.plan.prefill_fail_rate) {
            self.stats.prefill_faults += 1;
            return Err(BackendError::InjectedFault { op: "prefill" });
        }
        let mut outcome = self.inner.prefill(prompt_len, prompt, sampler_seed)?;
        if self.roll(self.plan.stall_rate) {
            self.stats.stalls += 1;
            outcome.elapsed_ms += self.plan.stall_ms;
        }
        Ok(outcome)
    }

    fn decode_batch(&mut self, slots: &[usize]) -> Result<DecodeOutcome, BackendError> {
        if self.roll(self.plan.decode_fail_rate) {
            self.stats.decode_faults += 1;
            return Err(BackendError::InjectedFault { op: "decode" });
        }
        self.roll_page_fault()?;
        let mut outcome = self.inner.decode_batch(slots)?;
        if self.roll(self.plan.stall_rate) {
            self.stats.stalls += 1;
            outcome.elapsed_ms += self.plan.stall_ms;
        }
        Ok(outcome)
    }

    fn release(&mut self, slot: usize) -> Result<(), BackendError> {
        if self.roll(self.plan.release_leak_rate) {
            self.stats.leaked_releases += 1;
            self.leaked.push(slot);
            return Ok(());
        }
        self.inner.release(slot)
    }

    fn supports_chunked_prefill(&self) -> bool {
        self.inner.supports_chunked_prefill()
    }

    fn prefill_open(
        &mut self,
        prompt_len: usize,
        prompt: Option<&[u32]>,
        sampler_seed: u64,
    ) -> Result<usize, BackendError> {
        if self.roll(self.plan.prefill_fail_rate) {
            self.stats.prefill_faults += 1;
            return Err(BackendError::InjectedFault { op: "prefill" });
        }
        self.inner.prefill_open(prompt_len, prompt, sampler_seed)
    }

    fn prefill_step(
        &mut self,
        slot: usize,
        max_tokens: usize,
    ) -> Result<PrefillProgress, BackendError> {
        self.roll_page_fault()?;
        let mut progress = self.inner.prefill_step(slot, max_tokens)?;
        if self.roll(self.plan.stall_rate) {
            self.stats.stalls += 1;
            progress.elapsed_ms += self.plan.stall_ms;
        }
        Ok(progress)
    }

    fn supports_preemption(&self) -> bool {
        self.inner.supports_preemption()
    }

    fn reclaimable_pages(&self, slot: usize) -> usize {
        self.inner.reclaimable_pages(slot)
    }

    /// Never injected: preemption *frees* resources, and vetoing the
    /// scheduler's escape hatch under pressure would deadlock recovery.
    fn preempt(&mut self, slot: usize) -> Result<PreemptedSeq, BackendError> {
        self.inner.preempt(slot)
    }

    fn resume(
        &mut self,
        seq: &PreemptedSeq,
        context: Option<&[u32]>,
    ) -> Result<PrefillOutcome, BackendError> {
        self.roll_page_fault()?;
        let mut outcome = self.inner.resume(seq, context)?;
        if self.roll(self.plan.stall_rate) {
            self.stats.stalls += 1;
            outcome.elapsed_ms += self.plan.stall_ms;
        }
        Ok(outcome)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::backend::{FunctionalBackend, SamplerSpec};
    use crate::engine::DistributedGpt2;
    use crate::router::RingMode;
    use looplynx_model::config::ModelConfig;
    use looplynx_model::gpt2::Gpt2Model;

    fn functional(slots: usize) -> FunctionalBackend {
        let model = Gpt2Model::synthetic(&ModelConfig::tiny(), 77);
        let engine = DistributedGpt2::with_slots(&model, 1, RingMode::Exact, slots, 24).unwrap();
        FunctionalBackend::new(engine, SamplerSpec::Greedy)
    }

    #[test]
    fn fault_free_plan_is_transparent() {
        let mut plain = functional(2);
        let mut wrapped = FaultyBackend::new(functional(2), FaultPlan::none());
        let p1 = plain.prefill(3, Some(&[1, 2, 3]), 0).unwrap();
        let p2 = wrapped.prefill(3, Some(&[1, 2, 3]), 0).unwrap();
        assert_eq!(p1.slot, p2.slot);
        assert_eq!(p1.first_token, p2.first_token);
        let d1 = plain.decode_batch(&[p1.slot]).unwrap();
        let d2 = wrapped.decode_batch(&[p2.slot]).unwrap();
        assert_eq!(d1.tokens, d2.tokens);
        wrapped.release(p2.slot).unwrap();
        assert_eq!(wrapped.stats().total(), 0);
        assert_eq!(wrapped.capacity(), 2);
    }

    #[test]
    fn always_fail_plan_vetoes_without_touching_inner_state() {
        let plan = FaultPlan {
            prefill_fail_rate: 1.0,
            ..FaultPlan::none()
        };
        let mut b = FaultyBackend::new(functional(2), plan);
        for _ in 0..5 {
            assert_eq!(
                b.prefill(2, Some(&[1, 2]), 0).unwrap_err(),
                BackendError::InjectedFault { op: "prefill" }
            );
        }
        assert_eq!(b.stats().prefill_faults, 5);
        // No slot was consumed by the vetoed attempts.
        assert_eq!(b.inner().engine().free_slots(), 2);
    }

    #[test]
    fn vetoed_decode_is_retryable_bit_exactly() {
        let plan = FaultPlan {
            seed: 3,
            decode_fail_rate: 0.5,
            ..FaultPlan::none()
        };
        let mut faulty = FaultyBackend::new(functional(1), plan);
        let mut clean = functional(1);
        let p = faulty.prefill(2, Some(&[4, 5]), 7).unwrap();
        let q = clean.prefill(2, Some(&[4, 5]), 7).unwrap();
        let mut got = vec![p.first_token.unwrap()];
        let mut want = vec![q.first_token.unwrap()];
        for _ in 0..6 {
            // Retry the identical call until the veto lifts.
            let out = loop {
                match faulty.decode_batch(&[p.slot]) {
                    Ok(out) => break out,
                    Err(BackendError::InjectedFault { .. }) => continue,
                    Err(e) => panic!("unexpected {e}"),
                }
            };
            got.push(out.tokens.unwrap()[0]);
            want.push(clean.decode_batch(&[q.slot]).unwrap().tokens.unwrap()[0]);
        }
        assert_eq!(got, want, "retried stream diverged from fault-free run");
        assert!(faulty.stats().decode_faults > 0, "plan never fired");
    }

    #[test]
    fn stalls_inflate_reported_time_only() {
        let plan = FaultPlan {
            stall_rate: 1.0,
            stall_ms: 250.0,
            ..FaultPlan::none()
        };
        let mut b = FaultyBackend::new(functional(1), plan);
        let p = b.prefill(2, Some(&[1, 2]), 0).unwrap();
        assert!(p.elapsed_ms >= 250.0, "stall not billed: {}", p.elapsed_ms);
        let d = b.decode_batch(&[p.slot]).unwrap();
        assert!(d.elapsed_ms >= 250.0);
        assert!(d.tokens.is_some(), "stalled decode still produces tokens");
        assert_eq!(b.stats().stalls, 2);
    }

    #[test]
    fn leaked_releases_shrink_capacity() {
        let plan = FaultPlan {
            release_leak_rate: 1.0,
            ..FaultPlan::none()
        };
        let mut b = FaultyBackend::new(functional(2), plan);
        let p = b.prefill(2, Some(&[1, 2]), 0).unwrap();
        assert_eq!(b.capacity(), 2);
        b.release(p.slot).unwrap();
        // The caller saw success, but the slot is stranded inside.
        assert_eq!(b.stats().leaked_releases, 1);
        assert_eq!(b.capacity(), 1);
        assert_eq!(b.inner().engine().free_slots(), 1);
        // The second slot still serves; a third admission is exhaustion.
        let q = b.prefill(2, Some(&[3, 4]), 1).unwrap();
        assert!(matches!(
            b.prefill(2, Some(&[5, 6]), 2).unwrap_err(),
            BackendError::SlotsExhausted { .. }
        ));
        let _ = q;
    }

    #[test]
    fn equal_plans_replay_identically() {
        let plan = FaultPlan::uniform(42, 0.3);
        let run = |mut b: FaultyBackend<FunctionalBackend>| {
            let mut events = Vec::new();
            for i in 0..20 {
                match b.prefill(2, Some(&[1, 2]), i) {
                    Ok(p) => {
                        events.push(1);
                        let _ = b.decode_batch(&[p.slot]);
                        let _ = b.release(p.slot);
                    }
                    Err(_) => events.push(0),
                }
            }
            (events, b.stats())
        };
        let a = run(FaultyBackend::new(functional(2), plan));
        let b = run(FaultyBackend::new(functional(2), plan));
        assert_eq!(a, b, "seeded chaos must replay");
    }
}
