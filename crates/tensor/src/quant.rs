//! Symmetric 8-bit quantization and SmoothQuant migration.
//!
//! The paper runs both the accelerator and the A100 baseline under the
//! SmoothQuant W8A8 scheme (Xiao et al., ICML 2023): symmetric int8 weights
//! and activations. SmoothQuant's key trick is migrating quantization
//! difficulty from activations (which have outlier channels) to weights by
//! a per-channel factor `s_j = max|X_j|^α / max|W_j|^(1−α)`; activations are
//! divided by `s_j` and weight columns multiplied by it, keeping the product
//! mathematically unchanged while making both operands int8-friendly.

use serde::{Deserialize, Serialize};

use crate::matrix::Matrix;

/// Quantized range limit for symmetric int8 (±127; −128 is unused so the
/// representable range is symmetric, matching common W8A8 practice).
pub const QMAX: f32 = 127.0;

/// Returns the largest absolute value of the slice (0.0 when empty).
pub fn absmax(xs: &[f32]) -> f32 {
    crate::simd::absmax(xs)
}

/// Computes the symmetric scale mapping `[-absmax, absmax]` onto ±127.
/// Degenerate all-zero inputs get scale 1.0 so that dequantization is a
/// no-op rather than a division by zero.
pub fn scale_for(absmax: f32) -> f32 {
    if absmax <= f32::MIN_POSITIVE {
        1.0
    } else {
        absmax / QMAX
    }
}

/// Quantizes one value under `scale` with round-to-nearest-even and
/// saturation — the rounding mode of the accelerator's quantization unit.
pub fn quantize_value(x: f32, scale: f32) -> i8 {
    let q = (x / scale).round_ties_even();
    q.clamp(-QMAX, QMAX) as i8
}

/// A quantized activation vector with its per-tensor scale.
///
/// # Example
///
/// ```
/// use looplynx_tensor::quant::quantize_vec;
///
/// let q = quantize_vec(&[0.5, -1.0, 0.25]);
/// let back = q.dequantize();
/// assert!((back[1] + 1.0).abs() < 0.01);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct QuantizedVector {
    data: Vec<i8>,
    scale: f32,
}

impl QuantizedVector {
    /// Wraps pre-quantized data.
    pub fn new(data: Vec<i8>, scale: f32) -> Self {
        assert!(scale > 0.0 && scale.is_finite(), "scale must be positive");
        QuantizedVector { data, scale }
    }

    /// The int8 payload.
    pub fn data(&self) -> &[i8] {
        &self.data
    }

    /// The per-tensor scale (`real = q * scale`).
    pub fn scale(&self) -> f32 {
        self.scale
    }

    /// Element count.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// Whether the vector is empty.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Reconstructs the real-valued vector.
    pub fn dequantize(&self) -> Vec<f32> {
        self.data.iter().map(|&q| q as f32 * self.scale).collect()
    }

    /// Bytes occupied by the payload (1 byte/element — what the DMA moves).
    pub fn byte_len(&self) -> usize {
        self.data.len()
    }
}

/// Quantizes a vector with a per-tensor symmetric scale.
pub fn quantize_vec(xs: &[f32]) -> QuantizedVector {
    let scale = scale_for(absmax(xs));
    let mut data = vec![0i8; xs.len()];
    crate::simd::quantize_slice(xs, scale, &mut data);
    QuantizedVector { data, scale }
}

/// Quantizes a vector into a caller-provided buffer (cleared and
/// resized), returning the per-tensor scale — the exact math of
/// [`quantize_vec`] without the allocation, for steady-state hot loops.
pub fn quantize_into(xs: &[f32], out: &mut Vec<i8>) -> f32 {
    let scale = scale_for(absmax(xs));
    out.clear();
    out.resize(xs.len(), 0);
    crate::simd::quantize_slice(xs, scale, out);
    scale
}

/// Quantizes a vector reusing a caller-provided (e.g. calibrated) scale.
pub fn quantize_vec_with_scale(xs: &[f32], scale: f32) -> QuantizedVector {
    assert!(scale > 0.0 && scale.is_finite(), "scale must be positive");
    let mut data = vec![0i8; xs.len()];
    crate::simd::quantize_slice(xs, scale, &mut data);
    QuantizedVector { data, scale }
}

/// A weight matrix quantized with one symmetric scale per row
/// (per output channel).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct QuantizedMatrix {
    data: Matrix<i8>,
    row_scales: Vec<f32>,
    /// Per-row i8 sums, cached at construction: the correction term of
    /// the biased VNNI dot (`crate::simd::dot_biased_i8_i32_batch`),
    /// which the batched GEMM would otherwise recompute per call.
    row_sums: Vec<i32>,
}

impl QuantizedMatrix {
    /// Wraps pre-quantized weights.
    ///
    /// # Panics
    ///
    /// Panics if `row_scales.len() != data.rows()` or any scale is
    /// non-positive.
    pub fn new(data: Matrix<i8>, row_scales: Vec<f32>) -> Self {
        assert_eq!(row_scales.len(), data.rows(), "one scale per row");
        assert!(
            row_scales.iter().all(|&s| s > 0.0 && s.is_finite()),
            "scales must be positive"
        );
        let row_sums = data.iter_rows().map(crate::simd::row_sum_i8).collect();
        QuantizedMatrix {
            data,
            row_scales,
            row_sums,
        }
    }

    /// Reassembles a matrix from checkpointed parts, trusting the cached
    /// `row_sums` instead of rescanning the payload — the whole point of
    /// a memory-mapped load is *not* to fault every weight page in at
    /// construction time. Sums that disagree with the payload produce
    /// wrong dequantized values, never unsoundness; round-trip tests in
    /// the checkpoint layer guard the write side.
    ///
    /// # Panics
    ///
    /// Panics if `row_scales`/`row_sums` lengths don't match `data.rows()`
    /// or any scale is non-positive.
    pub fn from_parts(data: Matrix<i8>, row_scales: Vec<f32>, row_sums: Vec<i32>) -> Self {
        assert_eq!(row_scales.len(), data.rows(), "one scale per row");
        assert_eq!(row_sums.len(), data.rows(), "one sum per row");
        assert!(
            row_scales.iter().all(|&s| s > 0.0 && s.is_finite()),
            "scales must be positive"
        );
        QuantizedMatrix {
            data,
            row_scales,
            row_sums,
        }
    }

    /// The int8 weights.
    pub fn data(&self) -> &Matrix<i8> {
        &self.data
    }

    /// Per-row scales.
    pub fn row_scales(&self) -> &[f32] {
        &self.row_scales
    }

    /// Per-row i8 sums (the biased-dot correction term).
    pub fn row_sums(&self) -> &[i32] {
        &self.row_sums
    }

    /// `(rows, cols)`.
    pub fn shape(&self) -> (usize, usize) {
        self.data.shape()
    }

    /// Bytes occupied by the int8 payload — the per-token HBM traffic this
    /// matrix induces when streamed.
    pub fn byte_len(&self) -> usize {
        self.data.len()
    }

    /// Reconstructs the real-valued matrix.
    pub fn dequantize(&self) -> Matrix<f32> {
        Matrix::from_fn(self.data.rows(), self.data.cols(), |r, c| {
            self.data.get(r, c) as f32 * self.row_scales[r]
        })
    }

    /// Copies rows `[start, end)` with their scales — how weights are
    /// sharded across nodes (column-parallel split of the output dim).
    pub fn slice_rows(&self, start: usize, end: usize) -> QuantizedMatrix {
        QuantizedMatrix {
            data: self.data.slice_rows(start, end),
            row_scales: self.row_scales[start..end].to_vec(),
            row_sums: self.row_sums[start..end].to_vec(),
        }
    }
}

/// Quantizes a real matrix with per-row symmetric scales.
pub fn quantize_matrix_per_row(w: &Matrix<f32>) -> QuantizedMatrix {
    let scales: Vec<f32> = w.row_absmax().into_iter().map(scale_for).collect();
    let data = Matrix::from_fn(w.rows(), w.cols(), |r, c| {
        quantize_value(w.get(r, c), scales[r])
    });
    let row_sums = data.iter_rows().map(crate::simd::row_sum_i8).collect();
    QuantizedMatrix {
        data,
        row_scales: scales,
        row_sums,
    }
}

/// Computes SmoothQuant per-channel migration factors
/// `s_j = max|X_j|^α / max|W_j|^(1−α)`.
///
/// Channels where either statistic is zero get factor 1.0.
///
/// # Panics
///
/// Panics if the two slices differ in length or `alpha ∉ [0, 1]`.
pub fn smoothquant_factors(act_absmax: &[f32], weight_col_absmax: &[f32], alpha: f32) -> Vec<f32> {
    assert_eq!(
        act_absmax.len(),
        weight_col_absmax.len(),
        "statistics must cover the same channels"
    );
    assert!((0.0..=1.0).contains(&alpha), "alpha must be in [0,1]");
    act_absmax
        .iter()
        .zip(weight_col_absmax)
        .map(|(&a, &w)| {
            if a <= f32::MIN_POSITIVE || w <= f32::MIN_POSITIVE {
                1.0
            } else {
                a.powf(alpha) / w.powf(1.0 - alpha)
            }
        })
        .collect()
}

/// Applies SmoothQuant: weight columns are multiplied by the factors and a
/// matching per-channel divisor is returned for the activation side.
///
/// Returns the divisors (`activations[j] /= divisors[j]` before
/// quantization).
pub fn smooth_weights_in_place(w: &mut Matrix<f32>, factors: &[f32]) -> Vec<f32> {
    w.scale_cols(factors);
    factors.to_vec()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_error_is_bounded_by_half_step() {
        let xs: Vec<f32> = (-50..=50).map(|i| i as f32 * 0.037).collect();
        let q = quantize_vec(&xs);
        let back = q.dequantize();
        let half_step = q.scale() / 2.0 + 1e-6;
        for (x, y) in xs.iter().zip(&back) {
            assert!((x - y).abs() <= half_step, "{x} vs {y}");
        }
    }

    #[test]
    fn saturation_clamps_to_qmax() {
        assert_eq!(quantize_value(1e9, 1.0), 127);
        assert_eq!(quantize_value(-1e9, 1.0), -127);
    }

    #[test]
    fn zero_vector_has_unit_scale() {
        let q = quantize_vec(&[0.0; 8]);
        assert_eq!(q.scale(), 1.0);
        assert!(q.dequantize().iter().all(|&x| x == 0.0));
    }

    #[test]
    fn per_row_scales_isolate_outlier_rows() {
        // Row 0 is tiny, row 1 has a huge outlier. Per-row scales keep row 0
        // precise even though row 1 needs a coarse scale.
        let w = Matrix::from_vec(2, 2, vec![0.01f32, -0.02, 100.0, 50.0]).unwrap();
        let q = quantize_matrix_per_row(&w);
        let back = q.dequantize();
        assert!((back.get(0, 1) + 0.02).abs() < 0.001);
        assert!((back.get(1, 0) - 100.0).abs() < 1.0);
    }

    #[test]
    fn matrix_slice_preserves_scales() {
        let w = Matrix::from_fn(4, 2, |r, _| (r + 1) as f32);
        let q = quantize_matrix_per_row(&w);
        let s = q.slice_rows(2, 4);
        assert_eq!(s.shape(), (2, 2));
        assert_eq!(s.row_scales(), &q.row_scales()[2..4]);
    }

    #[test]
    fn smoothquant_balances_magnitudes() {
        // alpha=0.5: s_j = sqrt(a_j / w_j); after migration both sides have
        // effective max sqrt(a_j * w_j).
        let factors = smoothquant_factors(&[16.0, 4.0], &[1.0, 1.0], 0.5);
        assert!((factors[0] - 4.0).abs() < 1e-5);
        assert!((factors[1] - 2.0).abs() < 1e-5);
    }

    #[test]
    fn smoothquant_identity_at_degenerate_channels() {
        let factors = smoothquant_factors(&[0.0, 2.0], &[1.0, 0.0], 0.5);
        assert_eq!(factors, vec![1.0, 1.0]);
    }

    #[test]
    fn smoothing_preserves_the_matvec_product() {
        // (W * diag(s)) @ (x / s) == W @ x
        let mut w = Matrix::from_vec(2, 3, vec![1.0f32, 2.0, 3.0, -1.0, 0.5, 4.0]).unwrap();
        let x = [2.0f32, 8.0, 1.0];
        let reference: Vec<f32> = (0..2)
            .map(|r| w.row(r).iter().zip(&x).map(|(a, b)| a * b).sum())
            .collect();
        let factors = smoothquant_factors(&[2.0, 8.0, 1.0], &w.col_absmax(), 0.5);
        let divisors = smooth_weights_in_place(&mut w, &factors);
        let x_smooth: Vec<f32> = x.iter().zip(&divisors).map(|(a, d)| a / d).collect();
        let smoothed: Vec<f32> = (0..2)
            .map(|r| w.row(r).iter().zip(&x_smooth).map(|(a, b)| a * b).sum())
            .collect();
        for (a, b) in reference.iter().zip(&smoothed) {
            assert!((a - b).abs() < 1e-4, "{a} vs {b}");
        }
    }

    #[test]
    fn quantize_with_calibrated_scale() {
        let q = quantize_vec_with_scale(&[1.0, 2.0], 0.1);
        assert_eq!(q.data(), &[10, 20]);
        assert_eq!(q.byte_len(), 2);
    }

    #[test]
    #[should_panic(expected = "one scale per row")]
    fn scale_count_mismatch_panics() {
        let _ = QuantizedMatrix::new(Matrix::zeros(2, 2), vec![1.0]);
    }

    #[test]
    fn ties_round_to_even() {
        // 0.5 / 1.0 = 0.5 rounds to 0 (even), 1.5 rounds to 2
        assert_eq!(quantize_value(0.5, 1.0), 0);
        assert_eq!(quantize_value(1.5, 1.0), 2);
    }
}
