//! Language-model evaluation: cross-entropy and perplexity.
//!
//! Used to sanity-check the functional W8A8 pipeline: quantization noise
//! should cost little perplexity relative to the model's own entropy, and
//! a freshly-initialized model must score near the uniform bound
//! `ppl ≈ vocab`.

use serde::{Deserialize, Serialize};

use crate::gpt2::Gpt2Model;

/// Numerically-stable log-softmax probability of `target` under `logits`.
///
/// # Panics
///
/// Panics if `logits` is empty or `target` is out of range.
pub fn log_prob(logits: &[f32], target: u32) -> f64 {
    assert!(!logits.is_empty(), "empty logits");
    assert!((target as usize) < logits.len(), "target out of range");
    let max = logits.iter().copied().fold(f32::NEG_INFINITY, f32::max) as f64;
    let log_sum: f64 = logits
        .iter()
        .map(|&l| (l as f64 - max).exp())
        .sum::<f64>()
        .ln()
        + max;
    logits[target as usize] as f64 - log_sum
}

/// Streaming cross-entropy accumulator.
#[derive(Debug, Clone, Copy, Default, PartialEq, Serialize, Deserialize)]
pub struct Perplexity {
    nll_sum: f64,
    tokens: usize,
}

impl Perplexity {
    /// Creates an empty accumulator.
    pub fn new() -> Self {
        Self::default()
    }

    /// Scores one prediction.
    pub fn add(&mut self, logits: &[f32], target: u32) {
        self.nll_sum -= log_prob(logits, target);
        self.tokens += 1;
    }

    /// Tokens scored.
    pub fn tokens(&self) -> usize {
        self.tokens
    }

    /// Mean negative log-likelihood in nats (0.0 when empty).
    pub fn cross_entropy(&self) -> f64 {
        if self.tokens == 0 {
            0.0
        } else {
            self.nll_sum / self.tokens as f64
        }
    }

    /// Perplexity `exp(cross_entropy)` (1.0 when empty).
    pub fn perplexity(&self) -> f64 {
        self.cross_entropy().exp()
    }
}

/// Evaluates teacher-forced perplexity of `model` on `tokens` (each token
/// after the first is predicted from its prefix).
///
/// Resets the model's cache first.
///
/// # Panics
///
/// Panics if fewer than two tokens are supplied.
pub fn evaluate(model: &mut Gpt2Model, tokens: &[u32]) -> Perplexity {
    assert!(tokens.len() >= 2, "need at least two tokens to score one");
    model.reset();
    let mut ppl = Perplexity::new();
    let mut logits = model.prefill(&tokens[..1]);
    for &next in &tokens[1..] {
        ppl.add(&logits, next);
        logits = model.decode_step(next);
    }
    ppl
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::ModelConfig;

    #[test]
    fn log_prob_of_uniform_logits() {
        let logits = vec![0.0f32; 8];
        let lp = log_prob(&logits, 3);
        assert!((lp + (8f64).ln()).abs() < 1e-6);
    }

    #[test]
    fn confident_prediction_scores_near_zero_nll() {
        let mut logits = vec![-20.0f32; 10];
        logits[4] = 20.0;
        assert!(log_prob(&logits, 4).abs() < 1e-5);
        assert!(log_prob(&logits, 5) < -30.0);
    }

    #[test]
    fn perplexity_of_uniform_is_vocab() {
        let mut ppl = Perplexity::new();
        let logits = vec![0.0f32; 50];
        for t in 0..10u32 {
            ppl.add(&logits, t % 50);
        }
        assert_eq!(ppl.tokens(), 10);
        assert!((ppl.perplexity() - 50.0).abs() < 1e-6);
    }

    #[test]
    fn empty_accumulator_defaults() {
        let ppl = Perplexity::new();
        assert_eq!(ppl.cross_entropy(), 0.0);
        assert_eq!(ppl.perplexity(), 1.0);
    }

    #[test]
    fn fresh_model_scores_near_uniform() {
        // A randomly-initialized model carries almost no information about
        // the next token: perplexity should be within a factor of ~2 of
        // the vocabulary size (and certainly above a tenth of it).
        let cfg = ModelConfig::tiny();
        let mut m = Gpt2Model::synthetic(&cfg, 5);
        let tokens: Vec<u32> = (0..24).map(|i| (i * 37 % 256) as u32).collect();
        let ppl = evaluate(&mut m, &tokens).perplexity();
        let vocab = cfg.vocab as f64;
        assert!(
            ppl > vocab / 10.0 && ppl < vocab * 3.0,
            "random-model perplexity {ppl} vs vocab {vocab}"
        );
    }

    #[test]
    fn evaluate_is_deterministic() {
        let cfg = ModelConfig::tiny();
        let tokens: Vec<u32> = (0..16).map(|i| (i * 11 % 256) as u32).collect();
        let a = evaluate(&mut Gpt2Model::synthetic(&cfg, 9), &tokens).perplexity();
        let b = evaluate(&mut Gpt2Model::synthetic(&cfg, 9), &tokens).perplexity();
        assert_eq!(a, b);
    }

    #[test]
    #[should_panic(expected = "at least two tokens")]
    fn evaluate_needs_two_tokens() {
        let mut m = Gpt2Model::synthetic(&ModelConfig::tiny(), 1);
        let _ = evaluate(&mut m, &[1]);
    }
}
