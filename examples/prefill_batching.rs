//! Prefill-batching extension study.
//!
//! The paper concedes the prefill-heavy `[128:32]` setting to the A100
//! ("GPUs are more powerful in batched processing during the prefill
//! stage") because LoopLynx streams all weights once *per prompt token*.
//! This reproduction adds the natural fix the paper's scalability analysis
//! hints at: batch the prompt so each streamed weight block serves several
//! tokens, with weight-shared int8 DSP packing executing two of the
//! batched MACs per DSP per cycle.
//!
//! ```text
//! cargo run --release --example prefill_batching
//! ```

use looplynx::baselines::gpu::A100Model;
use looplynx::core::{ArchConfig, LoopLynx};
use looplynx::model::ModelConfig;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let model = ModelConfig::gpt2_medium();
    let gpu = A100Model::paper_baseline();

    println!("— prefill cost per prompt token vs batch (2-node ring) —");
    println!("{:>7} {:>16} {:>12}", "batch", "prefill ms/tok", "speedup");
    let mut base = None;
    for batch in [1usize, 2, 4, 8, 16, 32] {
        let arch = ArchConfig::builder()
            .nodes(2)
            .prefill_batch(batch)
            .build()?;
        let engine = LoopLynx::new(model.clone(), arch)?;
        let per_token = engine.simulate_generation(128, 2).prefill_ms / 128.0;
        let b = *base.get_or_insert(per_token);
        println!("{batch:>7} {per_token:>16.3} {:>11.2}x", b / per_token);
    }

    println!("\n— does batching close the [128:32] gap against the A100? —");
    let g = gpu.generation(&model, 128, 32);
    println!("{:<28} {:>10.0} ms", "Nvidia A100", g.total_ms);
    for (label, batch) in [
        ("LoopLynx 2-node (paper)", 1usize),
        ("LoopLynx 2-node (batch 16)", 16),
    ] {
        let arch = ArchConfig::builder()
            .nodes(2)
            .prefill_batch(batch)
            .build()?;
        let engine = LoopLynx::new(model.clone(), arch)?;
        let r = engine.simulate_generation(128, 32);
        let vs = g.total_ms / r.total_ms();
        println!(
            "{label:<28} {:>10.0} ms   ({})",
            r.total_ms(),
            if vs >= 1.0 {
                format!("FPGA wins {vs:.2}x")
            } else {
                format!("A100 wins {:.2}x", 1.0 / vs)
            }
        );
    }

    println!(
        "\nBatching amortizes the HBM stream until the MAC array becomes the\n\
         bottleneck (two weight-shared int8 MACs per DSP per cycle), roughly\n\
         halving the memory-bound prefill cost and pulling the prefill-heavy\n\
         corner of Fig. 8 close to parity."
    );
    Ok(())
}
