//! Chat-style multi-request serving on the LoopLynx ring — on *both*
//! execution backends.
//!
//! The serving schedulers are generic over
//! [`looplynx::core::backend::InferenceBackend`]:
//!
//! * the **sim backend** times the cycle-accurate accelerator model, so
//!   the first half of this example sweeps offered load and compares
//!   continuous batching against the sequential baseline in simulated
//!   milliseconds;
//! * the **functional backend** actually runs W8A8 inference over the
//!   multi-sequence slot arena — the second half serves real prompts,
//!   decodes real tokens, and prints each request's generated text.
//!
//! ```text
//! cargo run --release --example serving
//! ```

use looplynx::core::backend::SimBackend;
use looplynx::core::backend::{FunctionalBackend, SamplerSpec};
use looplynx::core::engine::DistributedGpt2;
use looplynx::core::router::RingMode;
use looplynx::core::{ArchConfig, LoopLynx};
use looplynx::model::gpt2::Gpt2Model;
use looplynx::model::tokenizer::ByteTokenizer;
use looplynx::model::ModelConfig;
use looplynx::serve::{
    serve_continuous, serve_continuous_on, serve_gateway_on, serve_sequential, ArrivalProcess,
    GatewayConfig, GatewayRequest, Request, ServeConfig, Terminal,
};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // ------------------------------------------------ sim backend sweep
    let model = ModelConfig::gpt2_medium();
    let engine = LoopLynx::new(model, ArchConfig::builder().nodes(2).build()?)?;

    // A chat mix: short questions with mid-size answers, long prompts with
    // short answers, short prompts with long answers.
    let shapes = [(32usize, 32usize), (96, 16), (16, 64)];
    let requests = 24;

    println!("— sim backend: 24 chat requests on a 2-node ring, Poisson arrivals —\n");
    println!(
        "{:>6} {:>10} {:>10} {:>6} {:>16} {:>10}",
        "req/s", "seq tok/s", "cb tok/s", "gain", "TTFT p50/p99", "E2E p95"
    );
    for rate in [2.0, 6.0, 12.0, 24.0] {
        let workload = ArrivalProcess::Poisson {
            rate_per_s: rate,
            seed: 42,
        }
        .workload(requests, &shapes);
        let serial = serve_sequential(&engine, &workload);
        let batched = serve_continuous(&engine, &workload, &ServeConfig::default());
        println!(
            "{:>6.0} {:>10.1} {:>10.1} {:>5.2}x {:>8.0} {:>6.0}ms {:>8.0}ms",
            rate,
            serial.tokens_per_second(),
            batched.tokens_per_second(),
            batched.tokens_per_second() / serial.tokens_per_second(),
            batched.ttft_ms.p50().expect("non-empty"),
            batched.ttft_ms.p99().expect("non-empty"),
            batched.e2e_ms.p95().expect("non-empty"),
        );
    }

    // --------------------------------------- functional backend, end to end
    println!("\n— functional backend: real prompts, real tokens, 2-node ring —\n");
    let cfg = ModelConfig::tiny();
    let reference = Gpt2Model::synthetic(&cfg, 0xC0FFEE);
    let dist = DistributedGpt2::with_slots(&reference, 2, RingMode::Exact, 8, cfg.max_seq)?;
    let mut backend = FunctionalBackend::new(dist, SamplerSpec::Greedy);

    let tok = ByteTokenizer::new();
    // Byte-level tokens: one per character, so prompts stay short enough
    // for the tiny config's max_seq alongside the generated tail.
    let prompts = [
        "Ring shards gather",
        "One weight stream",
        "KV cache decode",
        "Int8 attention",
    ];
    let workload: Vec<Request> = prompts
        .iter()
        .enumerate()
        .map(|(i, text)| {
            Request::new(i as u64, i as f64 * 0.5, 1, 24).with_prompt(tok.encode(text))
        })
        .collect();

    let report = serve_continuous_on(&mut backend, &workload, &ServeConfig::new(4));
    println!(
        "{} requests, {} output tokens, mean batch occupancy {:.2}\n",
        report.completed(),
        report.total_tokens(),
        report.batch_occupancy.mean()
    );
    for req in &workload {
        let m = report
            .requests
            .iter()
            .find(|m| m.id == req.id)
            .expect("request completed");
        let tokens = report.output_tokens(req.id).expect("tokens generated");
        println!(
            "request {} | TTFT {:>6.1} ms | E2E {:>7.1} ms",
            req.id,
            m.ttft_ms(),
            m.e2e_ms()
        );
        println!("  prompt: {:?}", prompts[req.id as usize]);
        println!("  output: {:?}\n", tok.decode(tokens));
    }

    println!("the same scheduler drove both runs: the sim backend answers");
    println!("\"how would the accelerator schedule this\", the functional");
    println!("backend actually produces every token — bit-identical to");
    println!("generating each request alone.");

    // ------------------------------- the gateway: deadlines + cancellation
    println!("\n— gateway: deadlines, cancellation, admission control —\n");
    // Same chat mix through the fault-tolerant ingress tier. Client 2
    // hangs up 150 simulated ms in; client 3 demands its full answer
    // within 400 ms (prefill alone is ~85 ms and decode ~6 ms/token, so
    // 64 tokens cannot make it); the rest run to completion.
    let gated: Vec<GatewayRequest> = ArrivalProcess::Poisson {
        rate_per_s: 12.0,
        seed: 42,
    }
    .workload(8, &shapes)
    .into_iter()
    .map(|r| match r.id {
        2 => GatewayRequest::new(r).cancel_at(150.0),
        3 => GatewayRequest::new(r).with_deadline(400.0),
        _ => GatewayRequest::new(r),
    })
    .collect();
    let gate_cfg = GatewayConfig {
        max_batch: 4,
        queue_depth: 4,
        ttft_deadline_ms: Some(1_500.0),
        e2e_deadline_ms: None,
        ..GatewayConfig::default()
    };
    let report = serve_gateway_on(&mut SimBackend::new(&engine), &gated, &gate_cfg);
    for t in &report.terminals {
        println!(
            "request {} | arrived {:>5.0} ms | {:>9} at {:>5.0} ms",
            t.id,
            t.arrival_ms,
            match &t.terminal {
                Terminal::Completed => "completed",
                Terminal::Rejected(_) => "rejected",
                Terminal::TimedOut(_) => "timed out",
                Terminal::Cancelled => "cancelled",
                Terminal::Failed(_) => "failed",
            },
            t.at_ms,
        );
    }
    println!("\n{report}");
    println!("\nevery request reached exactly one terminal state; completed");
    println!("requests are bit-identical to a run with no deadlines at all.");
    Ok(())
}
