//! # looplynx-lint — workspace invariant checker
//!
//! The repo's reliability contract ("bit-exact under any schedule, no
//! request lost") is enforced dynamically by the test wall; this crate
//! enforces the *conventions* that keep it true statically, so the next
//! PR cannot sneak an `unwrap()` into the gateway drain loop, an
//! undocumented `unsafe` into a kernel, or a `HashMap` iteration into a
//! bit-exact path. Offline build, so the parser is hand-rolled
//! ([`lexer`]) rather than `syn`.
//!
//! Rules ([`rules`]):
//!
//! * `panic_free` — no `unwrap`/`expect`/`panic!`/`todo!`/
//!   `unimplemented!` in non-test code of `serve::{gateway,batcher}` and
//!   `core::{backend,engine,pool}`; errors flow through `BackendError`.
//! * `safety_comment` — every `unsafe` workspace-wide carries an
//!   adjacent `// SAFETY:` comment (or `/// # Safety` section).
//! * `determinism` — no `Instant`/`SystemTime`, `HashMap`/`HashSet`, or
//!   entropy-seeded RNG in the bit-exact crates (`model`,
//!   `core::backend`).
//! * `bounded_channel` — no unbounded `channel()` in `serve`.
//!
//! Per-site waivers: `// lint: allow(<rule>) — <reason>` on the
//! offending line or the line above (reason mandatory). The catalogue
//! and waiver policy live in `docs/INVARIANTS.md`.
//!
//! Run as a binary (`cargo run -p looplynx-lint`, exits non-zero on
//! findings) and as a tier-1 test (`cargo test -p looplynx-lint`, which
//! asserts the workspace is clean *and* that every rule still fires on
//! its negative fixtures).

#![forbid(unsafe_code)]

pub mod lexer;
pub mod rules;

use std::fs;
use std::io;
use std::path::{Path, PathBuf};

pub use rules::{lint_source, Finding};

/// The source roots the workspace check walks: every member crate's
/// `src` tree plus the facade crate's. Integration-test and bench trees
/// are test code by definition; `vendor/` is third-party; the lint
/// crate's `fixtures/` are deliberately violating inputs.
fn source_roots(root: &Path) -> io::Result<Vec<PathBuf>> {
    let mut roots = vec![root.join("src")];
    for entry in fs::read_dir(root.join("crates"))? {
        let dir = entry?.path().join("src");
        if dir.is_dir() {
            roots.push(dir);
        }
    }
    roots.sort();
    Ok(roots)
}

/// Recursively collects `.rs` files under `dir`, sorted for
/// deterministic reports.
fn rust_files(dir: &Path, out: &mut Vec<PathBuf>) -> io::Result<()> {
    let mut entries: Vec<PathBuf> = fs::read_dir(dir)?
        .collect::<io::Result<Vec<_>>>()?
        .into_iter()
        .map(|e| e.path())
        .collect();
    entries.sort();
    for path in entries {
        if path.is_dir() {
            rust_files(&path, out)?;
        } else if path.extension().is_some_and(|e| e == "rs") {
            out.push(path);
        }
    }
    Ok(())
}

/// Lints every workspace source file under `root` (the repo root) and
/// returns the surviving findings, sorted by file and line.
pub fn lint_workspace(root: &Path) -> io::Result<Vec<Finding>> {
    let mut files = Vec::new();
    for dir in source_roots(root)? {
        rust_files(&dir, &mut files)?;
    }
    let mut findings = Vec::new();
    for path in files {
        let source = fs::read_to_string(&path)?;
        let rel = path
            .strip_prefix(root)
            .unwrap_or(&path)
            .to_string_lossy()
            .replace('\\', "/");
        findings.extend(lint_source(&rel, &source));
    }
    findings.sort_by(|a, b| (&a.file, a.line).cmp(&(&b.file, b.line)));
    Ok(findings)
}

/// The repo root, resolved from this crate's manifest directory
/// (`crates/lint` → two levels up).
pub fn workspace_root() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR"))
        .ancestors()
        .nth(2)
        .map(Path::to_path_buf)
        .unwrap_or_else(|| PathBuf::from("."))
}
