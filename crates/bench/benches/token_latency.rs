//! Table II bench: steady-state per-token simulation for every LoopLynx
//! ring size. Each iteration simulates one decode token cycle-accurately;
//! the *simulated* latency (the paper's metric) is printed once per
//! configuration alongside Criterion's measurement of the simulator
//! itself.

use std::hint::black_box;
use std::time::Duration;

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use looplynx_bench::experiments::TABLE2_CONTEXT;
use looplynx_core::config::ArchConfig;
use looplynx_core::engine::{LoopLynx, TokenPhase};
use looplynx_model::config::ModelConfig;

fn bench_token_simulation(c: &mut Criterion) {
    let model = ModelConfig::gpt2_medium();
    let mut group = c.benchmark_group("table2_token_latency");
    for nodes in [1usize, 2, 4] {
        let arch = ArchConfig::builder().nodes(nodes).build().expect("valid");
        let engine = LoopLynx::new(model.clone(), arch).expect("partitions");
        let simulated_ms = engine.steady_state_decode_ms(TABLE2_CONTEXT);
        eprintln!("[table2] {nodes}-node simulated token latency: {simulated_ms:.2} ms");
        group.bench_with_input(BenchmarkId::new("nodes", nodes), &nodes, |b, _| {
            b.iter(|| engine.simulate_token(black_box(TABLE2_CONTEXT), TokenPhase::Decode, false))
        });
    }
    group.finish();
}

fn bench_context_sweep(c: &mut Criterion) {
    let model = ModelConfig::gpt2_medium();
    let arch = ArchConfig::builder().nodes(2).build().expect("valid");
    let engine = LoopLynx::new(model, arch).expect("partitions");
    let mut group = c.benchmark_group("token_latency_vs_context");
    for context in [32usize, 128, 512, 1024] {
        group.bench_with_input(BenchmarkId::from_parameter(context), &context, |b, &ctx| {
            b.iter(|| engine.simulate_token(black_box(ctx), TokenPhase::Decode, false))
        });
    }
    group.finish();
}

fn config() -> Criterion {
    Criterion::default()
        .sample_size(10)
        .warm_up_time(Duration::from_millis(200))
        .measurement_time(Duration::from_millis(800))
}

criterion_group! {
    name = benches;
    config = config();
    targets = bench_token_simulation, bench_context_sweep
}
criterion_main!(benches);
