//! Cross-crate property-based tests (proptest) on the invariants the
//! architecture depends on.

use proptest::prelude::*;

use looplynx::core::config::{ArchConfig, OptimizationFlags};
use looplynx::core::engine::{LoopLynx, TokenPhase};
use looplynx::core::parallel::split_range;
use looplynx::core::router::{RingMode, Router};
use looplynx::model::ModelConfig;
use looplynx::serve::{serve_continuous, serve_sequential, ArrivalProcess, ServeConfig};
use looplynx::sim::net::{functional_all_gather, RingSim, RingSpec};
use looplynx::sim::time::{Cycles, Frequency};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// split_range always tiles [0, total) exactly, in order, for any
    /// (total, parts) combination.
    #[test]
    fn split_range_tiles(total in 0usize..10_000, parts in 1usize..64) {
        let mut covered = 0usize;
        for i in 0..parts {
            let r = split_range(total, parts, i);
            prop_assert_eq!(r.start, covered);
            covered = r.end;
            // near-equal: sizes differ by at most one
            prop_assert!(r.len() >= total / parts);
            prop_assert!(r.len() <= total / parts + 1);
        }
        prop_assert_eq!(covered, total);
    }

    /// The exact-mode ring gather is concatenation in node order for any
    /// shard contents.
    #[test]
    fn exact_gather_is_concat(
        nodes in 1usize..6,
        shard_len in 1usize..32,
        seed in any::<u64>(),
    ) {
        let shards: Vec<Vec<f32>> = (0..nodes)
            .map(|n| {
                (0..shard_len)
                    .map(|i| ((seed ^ (n as u64 * 31 + i as u64)) % 1000) as f32 / 500.0 - 1.0)
                    .collect()
            })
            .collect();
        let full = Router::new(nodes, RingMode::Exact).all_gather(&shards);
        prop_assert_eq!(full, shards.concat());
    }

    /// The ring DES agrees with the closed-form all-gather cycle count for
    /// any ring size and shard size, and all router buffers converge.
    #[test]
    fn ring_des_matches_closed_form(nodes in 2usize..8, shard_kb in 1usize..16) {
        let spec = RingSpec::paper_ring(nodes, Frequency::from_mhz(285.0));
        let shards: Vec<Vec<u8>> = (0..nodes)
            .map(|i| vec![(i * 37 % 251) as u8; shard_kb * 1024])
            .collect();
        let outcome = RingSim::new(spec.clone()).all_gather(&shards);
        prop_assert_eq!(outcome.end_time, spec.all_gather_cycles(shard_kb * 1024));
        prop_assert!(outcome.buffers_consistent());
        prop_assert_eq!(outcome.buffers[0].clone(), shards.concat());
        // and the pure-functional gather agrees with the DES contents
        prop_assert_eq!(functional_all_gather(&shards)[0].clone(), outcome.buffers[0].clone());
    }

    /// Token latency is monotone in context length for any ring size.
    #[test]
    fn latency_monotone_in_context(
        nodes in prop::sample::select(vec![1usize, 2, 4]),
        ctx_a in 1usize..512,
        delta in 1usize..256,
    ) {
        let arch = ArchConfig::builder().nodes(nodes).build().expect("valid");
        let engine = LoopLynx::new(ModelConfig::gpt2_medium(), arch).expect("partitions");
        let a = engine.simulate_token(ctx_a, TokenPhase::Decode, false).total;
        let b = engine.simulate_token(ctx_a + delta, TokenPhase::Decode, false).total;
        prop_assert!(b >= a, "context {} -> {}: {} vs {}", ctx_a, ctx_a + delta, a, b);
    }

    /// Every optimization flag is individually non-regressive at any ring
    /// size and context.
    #[test]
    fn each_flag_is_non_regressive(
        nodes in prop::sample::select(vec![1usize, 2, 4]),
        ctx in 1usize..640,
        fuse in any::<bool>(),
        headwise in any::<bool>(),
        hide in any::<bool>(),
    ) {
        let base = OptimizationFlags {
            fuse_ln_res: fuse,
            headwise_pipeline: headwise,
            hide_transmission: hide,
        };
        let all_on = OptimizationFlags::ALL;
        let model = ModelConfig::gpt2_medium();
        let t_base = LoopLynx::new(
            model.clone(),
            ArchConfig::builder().nodes(nodes).opts(base).build().expect("valid"),
        )
        .expect("partitions")
        .simulate_token(ctx, TokenPhase::Decode, true)
        .total;
        let t_on = LoopLynx::new(
            model,
            ArchConfig::builder().nodes(nodes).opts(all_on).build().expect("valid"),
        )
        .expect("partitions")
        .simulate_token(ctx, TokenPhase::Decode, true)
        .total;
        prop_assert!(t_on <= t_base, "flags {base:?}: all-on {t_on} vs {t_base}");
    }

    /// `simulate_generation`'s reported wall-clock equals the sum of its
    /// per-token and per-batch schedule pieces — the report is exactly the
    /// schedule it claims to aggregate, for any prefill-batch setting.
    #[test]
    fn generation_totals_are_sum_of_schedules(
        nodes in prop::sample::select(vec![1usize, 2, 4]),
        prefill in 1usize..96,
        decode in 1usize..24,
        batch in 1usize..12,
    ) {
        let arch = ArchConfig::builder()
            .nodes(nodes)
            .prefill_batch(batch)
            .build()
            .expect("valid");
        let engine = LoopLynx::new(ModelConfig::gpt2_medium(), arch).expect("partitions");
        let report = engine.simulate_generation(prefill, decode);

        // Replicate the engine's prefill walk from the public scheduler.
        let sched = engine.scheduler();
        let mut prefill_cycles = 0u64;
        let mut t = 0usize;
        while t + 1 < prefill {
            let this_batch = batch.min(prefill - 1 - t);
            prefill_cycles += if this_batch > 1 {
                sched.schedule_prefill_batch(t + 1, this_batch).total.as_u64()
            } else {
                sched.schedule_token(t + 1, false).total.as_u64()
            };
            t += this_batch;
        }
        prefill_cycles += sched.schedule_token(prefill, true).total.as_u64();
        let decode_cycles: u64 = (0..decode)
            .map(|t| sched.schedule_token(prefill + t + 1, true).total.as_u64())
            .sum();

        let freq = engine.arch().freq();
        prop_assert_eq!(Cycles::new(prefill_cycles).to_millis(freq), report.prefill_ms);
        prop_assert_eq!(Cycles::new(decode_cycles).to_millis(freq), report.decode_ms);
    }

    /// A continuous-batching decode iteration is never cheaper than the
    /// most expensive single token in it, never pricier than running all
    /// its tokens back-to-back, and a singleton batch is exact.
    #[test]
    fn decode_batch_bounded_by_sequential(
        nodes in prop::sample::select(vec![1usize, 2, 4]),
        contexts in prop::collection::vec(1usize..512, 1..9),
    ) {
        let arch = ArchConfig::builder().nodes(nodes).build().expect("valid");
        let engine = LoopLynx::new(ModelConfig::gpt2_medium(), arch).expect("partitions");
        let sched = engine.scheduler();
        let batched = sched.schedule_decode_batch(&contexts).total.as_u64();
        let singles: Vec<u64> = contexts
            .iter()
            .map(|&c| sched.schedule_token(c, true).total.as_u64())
            .collect();
        let sum: u64 = singles.iter().sum();
        let max = *singles.iter().max().expect("non-empty");
        prop_assert!(batched <= sum, "batched {} beats sequential sum {}", batched, sum);
        prop_assert!(batched >= max, "batched {} under its largest member {}", batched, max);
        if contexts.len() == 1 {
            prop_assert_eq!(batched, sum);
        }
    }

    /// Serving invariants: every request completes with exactly the token
    /// count it asked for, no request starves (first tokens follow FIFO
    /// arrival order), and timestamps are causally ordered.
    #[test]
    fn serving_completes_everyone_exactly(
        n in 1usize..8,
        max_batch in 1usize..6,
        rate in prop::sample::select(vec![5.0f64, 50.0, 500.0]),
        seed in any::<u64>(),
    ) {
        let arch = ArchConfig::builder().nodes(2).build().expect("valid");
        let engine = LoopLynx::new(ModelConfig::gpt2_medium(), arch).expect("partitions");
        let workload = ArrivalProcess::Poisson { rate_per_s: rate, seed }
            .workload(n, &[(16, 6), (8, 3), (24, 2)]);
        let report = serve_continuous(&engine, &workload, &ServeConfig::new(max_batch));

        prop_assert_eq!(report.completed(), n, "a request starved");
        let requested: usize = workload.iter().map(|r| r.decode_tokens).sum();
        prop_assert_eq!(report.total_tokens(), requested);
        let mut by_id: Vec<_> = report.requests.clone();
        by_id.sort_by_key(|m| m.id);
        for (m, r) in by_id.iter().zip(&workload) {
            prop_assert_eq!(m.decode_tokens, r.decode_tokens);
            prop_assert!(m.first_token_ms >= m.arrival_ms);
            prop_assert!(m.completion_ms >= m.first_token_ms);
        }
        // FIFO admission: ids arrive in order, so first tokens are ordered.
        for pair in by_id.windows(2) {
            prop_assert!(pair[0].first_token_ms <= pair[1].first_token_ms);
        }
    }

    /// Under a zero-jitter fixed trace the continuous batcher and the
    /// sequential baseline both deliver every requested token, and
    /// batching never produces *less* total throughput.
    #[test]
    fn zero_jitter_trace_conserves_tokens(
        n in 1usize..7,
        gap_ms in prop::sample::select(vec![0.0f64, 10.0, 200.0]),
    ) {
        let arch = ArchConfig::builder().nodes(2).build().expect("valid");
        let engine = LoopLynx::new(ModelConfig::gpt2_medium(), arch).expect("partitions");
        let trace: Vec<f64> = (0..n).map(|i| i as f64 * gap_ms).collect();
        let workload = ArrivalProcess::Trace(trace).workload(n, &[(12, 5)]);
        let batched = serve_continuous(&engine, &workload, &ServeConfig::new(4));
        let serial = serve_sequential(&engine, &workload);
        prop_assert_eq!(batched.total_tokens(), n * 5);
        prop_assert_eq!(serial.total_tokens(), n * 5);
        // Same workload, same cost model: batching can only help makespan.
        prop_assert!(batched.makespan_ms() <= serial.makespan_ms() + 1e-9);
    }

    /// More nodes never slow a decode token down (with all optimizations).
    #[test]
    fn more_nodes_never_hurt(ctx in 1usize..768) {
        let model = ModelConfig::gpt2_medium();
        let mut prev = Cycles::new(u64::MAX);
        for nodes in [1usize, 2, 4, 8] {
            let arch = ArchConfig::builder().nodes(nodes).build().expect("valid");
            let t = LoopLynx::new(model.clone(), arch)
                .expect("partitions")
                .simulate_token(ctx, TokenPhase::Decode, true)
                .total;
            prop_assert!(t <= prev, "{nodes} nodes regressed: {t} vs {prev}");
            prev = t;
        }
    }
}
