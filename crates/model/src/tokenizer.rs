//! Byte-level tokenizer.
//!
//! GPT-2's BPE vocabulary is unavailable offline; a byte-level tokenizer
//! (every byte is one token, ids 0‥255) preserves everything the
//! reproduction needs — prompt/generation lengths drive all timing results,
//! and the functional model is exercised with real token streams.

use serde::{Deserialize, Serialize};

/// Byte-level tokenizer: token id = byte value.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct ByteTokenizer;

impl ByteTokenizer {
    /// Creates a tokenizer.
    pub fn new() -> Self {
        ByteTokenizer
    }

    /// Vocabulary size needed by a model using this tokenizer.
    pub const fn required_vocab() -> usize {
        256
    }

    /// Encodes a string as one token per UTF-8 byte.
    pub fn encode(&self, text: &str) -> Vec<u32> {
        text.bytes().map(u32::from).collect()
    }

    /// Decodes tokens back to a string; ids ≥ 256 and invalid UTF-8
    /// sequences are replaced with `\u{FFFD}`.
    pub fn decode(&self, tokens: &[u32]) -> String {
        let bytes: Vec<u8> = tokens
            .iter()
            .map(|&t| u8::try_from(t).unwrap_or(b'?'))
            .collect();
        String::from_utf8_lossy(&bytes).into_owned()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ascii_round_trips() {
        let tok = ByteTokenizer::new();
        let ids = tok.encode("Earth is the");
        assert_eq!(ids.len(), 12);
        assert_eq!(tok.decode(&ids), "Earth is the");
    }

    #[test]
    fn utf8_round_trips() {
        let tok = ByteTokenizer::new();
        let ids = tok.encode("héllo ✓");
        assert_eq!(tok.decode(&ids), "héllo ✓");
    }

    #[test]
    fn out_of_range_tokens_degrade_gracefully() {
        let tok = ByteTokenizer::new();
        let s = tok.decode(&[72, 105, 9999]);
        assert!(s.starts_with("Hi"));
    }

    #[test]
    fn ids_are_bytes() {
        let tok = ByteTokenizer::new();
        assert!(tok.encode("anything").iter().all(|&t| t < 256));
        assert_eq!(ByteTokenizer::required_vocab(), 256);
    }

    #[test]
    fn empty_string_is_empty() {
        let tok = ByteTokenizer::new();
        assert!(tok.encode("").is_empty());
        assert_eq!(tok.decode(&[]), "");
    }
}
