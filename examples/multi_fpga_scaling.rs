//! Multi-FPGA scaling study: extends the paper's Table III beyond 4 nodes
//! to explore where ring scaling saturates (the paper's own analysis
//! predicts it: "operators on the critical path cannot be distributed" and
//! small per-node blocks "expose the latency of quantization and
//! synchronization").
//!
//! ```text
//! cargo run --release --example multi_fpga_scaling
//! ```

use looplynx::core::{ArchConfig, LoopLynx};
use looplynx::model::ModelConfig;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let model = ModelConfig::gpt2_medium();
    let context = 512usize;
    println!("scaling GPT-2 (345M) decode across ring sizes (context {context}):\n");
    println!(
        "{:>6} {:>8} {:>12} {:>12} {:>11} {:>12} {:>10}",
        "nodes", "U50s", "ms/token", "token/s", "speedup", "efficiency", "watts"
    );
    let mut prev_tps: Option<f64> = None;
    let mut base_tps: Option<f64> = None;
    for nodes in [1usize, 2, 4, 8, 16] {
        let arch = ArchConfig::builder().nodes(nodes).build()?;
        let engine = LoopLynx::new(model.clone(), arch)?;
        let ms = engine.steady_state_decode_ms(context);
        let tps = 1e3 / ms;
        let base = *base_tps.get_or_insert(tps);
        let speedup_prev = prev_tps.map(|p| tps / p);
        // parallel efficiency vs ideal linear scaling from 1 node
        let efficiency = tps / (base * nodes as f64);
        println!(
            "{:>6} {:>8} {:>12.2} {:>12.1} {:>11} {:>11.0}% {:>10.1}",
            nodes,
            engine.arch().devices(),
            ms,
            tps,
            speedup_prev.map_or("-".into(), |s| format!("{s:.2}x")),
            efficiency * 100.0,
            engine.arch().power_watts(1.0),
        );
        prev_tps = Some(tps);
    }

    println!(
        "\nScaling flattens exactly as the paper's analysis predicts: the\n\
         critical-path operators (LN, residual, softmax barriers) replicate on\n\
         every node instead of splitting, and at large rings the per-node\n\
         matrix blocks shrink until quantization-pipeline fill and the final\n\
         block's ring synchronization dominate. Past ~8 nodes, additional\n\
         boards buy almost no decode latency for GPT-2-medium."
    );
    Ok(())
}
