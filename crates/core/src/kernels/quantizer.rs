//! The quantization unit.
//!
//! "After the quantization unit performs bias addition and quantization,
//! datapacks are forwarded to the router" (paper Section III-D). The unit
//! is fully pipelined — one datapack per cycle — with a modest pipeline
//! depth; its latency is normally hidden inside the MP pipeline and only
//! exposed when a stage drains (which is exactly what the paper observes at
//! 4 nodes, where small per-node blocks "expose the latency of quantization
//! and synchronization").

use serde::{Deserialize, Serialize};

use looplynx_sim::time::Cycles;
use looplynx_tensor::quant::{quantize_vec_with_scale, QuantizedVector};

use crate::config::ArchConfig;
use crate::datapack::datapacks_for;

/// The fused bias-add + requantize unit.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct QuantUnit {
    latency: Cycles,
    n_group: usize,
}

impl QuantUnit {
    /// Creates the unit from the architecture config.
    pub fn new(cfg: &ArchConfig) -> Self {
        QuantUnit {
            latency: cfg.quant_latency(),
            n_group: cfg.n_group(),
        }
    }

    /// Pipeline depth.
    pub fn latency(&self) -> Cycles {
        self.latency
    }

    /// Cycles to requantize `elements` int32 accumulators: one datapack per
    /// cycle once the pipeline is full.
    pub fn cycles_for(&self, elements: usize) -> Cycles {
        if elements == 0 {
            return Cycles::ZERO;
        }
        Cycles::new(datapacks_for(elements) as u64) + self.latency
    }

    /// Functional path: bias-add then symmetric requantization at
    /// `out_scale` — the epilogue every MP activation applies.
    ///
    /// # Panics
    ///
    /// Panics if `bias.len() != values.len()`.
    pub fn requantize(&self, values: &[f32], bias: &[f32], out_scale: f32) -> QuantizedVector {
        assert_eq!(values.len(), bias.len(), "bias length mismatch");
        let biased: Vec<f32> = values.iter().zip(bias).map(|(v, b)| v + b).collect();
        quantize_vec_with_scale(&biased, out_scale)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn unit() -> QuantUnit {
        QuantUnit::new(&ArchConfig::paper())
    }

    #[test]
    fn throughput_is_one_pack_per_cycle() {
        let u = unit();
        let small = u.cycles_for(32).as_u64();
        let large = u.cycles_for(3200).as_u64();
        // 100 packs vs 1 pack: difference must be 99 cycles
        assert_eq!(large - small, 99);
    }

    #[test]
    fn latency_dominates_tiny_jobs() {
        let u = unit();
        assert_eq!(u.cycles_for(1).as_u64(), 1 + u.latency().as_u64());
        assert_eq!(u.cycles_for(0), Cycles::ZERO);
    }

    #[test]
    fn functional_requantize_applies_bias() {
        let u = unit();
        let q = u.requantize(&[1.0, 2.0], &[0.5, -0.5], 0.05);
        let back = q.dequantize();
        assert!((back[0] - 1.5).abs() < 0.05);
        assert!((back[1] - 1.5).abs() < 0.05);
    }

    #[test]
    #[should_panic(expected = "bias length mismatch")]
    fn bias_length_checked() {
        let _ = unit().requantize(&[1.0], &[1.0, 2.0], 0.1);
    }
}
