//! A hand-rolled Rust lexer, just deep enough for invariant checking.
//!
//! The build environment is offline, so no `syn`/`proc-macro2`: this
//! module tokenizes Rust source by hand. It understands exactly what the
//! rules need and nothing more:
//!
//! * line comments (`//`, `///`, `//!`) — kept, with their text, so the
//!   rule engine can find waivers and `// SAFETY:` comments;
//! * block comments (`/* … */`), **nested** as in real Rust — skipped;
//! * string literals (`"…"` with escapes, spanning lines), byte strings
//!   (`b"…"`), and raw strings (`r"…"`, `r#"…"#` with any number of
//!   hashes, `br#"…"#`) — skipped, so `let s = "x.unwrap()";` never
//!   trips a rule;
//! * char literals (`'a'`, `'\n'`, `'\''`) vs lifetimes (`'static`) —
//!   both skipped, disambiguated the way rustc does;
//! * identifiers and raw identifiers (`r#type`) — kept;
//! * numbers — skipped (with care: in `x.0.unwrap()` the `.` before
//!   `unwrap` must survive as punctuation, so a `.` is part of a number
//!   only when a digit follows);
//! * everything else — kept as single-character punctuation.
//!
//! A second pass ([`mark_test_code`]) flags the tokens that live inside
//! `#[cfg(test)]`-gated items or `mod tests { … }` blocks so rules can
//! restrict themselves to non-test code.

/// What a token is. Literals and block comments never become tokens —
/// the lexer consumes them silently.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TokenKind {
    /// Identifier or keyword (raw identifiers lose their `r#` prefix).
    Ident(String),
    /// Any other non-whitespace character.
    Punct(char),
    /// A `//` line comment; the text excludes the leading slashes.
    LineComment(String),
}

/// One token with its 1-based source line.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Token {
    pub kind: TokenKind,
    pub line: u32,
}

impl Token {
    /// The identifier text, if this token is an identifier.
    pub fn ident(&self) -> Option<&str> {
        match &self.kind {
            TokenKind::Ident(s) => Some(s),
            _ => None,
        }
    }

    /// The punctuation character, if this token is punctuation.
    pub fn punct(&self) -> Option<char> {
        match &self.kind {
            TokenKind::Punct(c) => Some(*c),
            _ => None,
        }
    }
}

/// Tokenizes `source`. Never fails: unterminated literals simply consume
/// the rest of the input (the compiler will reject such files anyway —
/// the linter's job is only to not misread valid code).
pub fn lex(source: &str) -> Vec<Token> {
    Lexer {
        chars: source.chars().collect(),
        pos: 0,
        line: 1,
        out: Vec::new(),
    }
    .run()
}

struct Lexer {
    chars: Vec<char>,
    pos: usize,
    line: u32,
    out: Vec<Token>,
}

impl Lexer {
    fn run(mut self) -> Vec<Token> {
        while let Some(c) = self.peek(0) {
            match c {
                '\n' => {
                    self.line += 1;
                    self.pos += 1;
                }
                c if c.is_whitespace() => self.pos += 1,
                '/' if self.peek(1) == Some('/') => self.line_comment(),
                '/' if self.peek(1) == Some('*') => self.block_comment(),
                '"' => self.string_literal(),
                '\'' => self.char_or_lifetime(),
                c if c.is_ascii_digit() => self.number(),
                c if is_ident_start(c) => self.ident_or_prefixed_literal(),
                c => {
                    self.out.push(Token {
                        kind: TokenKind::Punct(c),
                        line: self.line,
                    });
                    self.pos += 1;
                }
            }
        }
        self.out
    }

    fn peek(&self, ahead: usize) -> Option<char> {
        self.chars.get(self.pos + ahead).copied()
    }

    /// Advances one char, keeping the line count honest.
    fn bump(&mut self) -> Option<char> {
        let c = self.peek(0)?;
        if c == '\n' {
            self.line += 1;
        }
        self.pos += 1;
        Some(c)
    }

    fn line_comment(&mut self) {
        let line = self.line;
        self.pos += 2;
        let start = self.pos;
        while let Some(c) = self.peek(0) {
            if c == '\n' {
                break;
            }
            self.pos += 1;
        }
        let text: String = self.chars[start..self.pos].iter().collect();
        self.out.push(Token {
            kind: TokenKind::LineComment(text),
            line,
        });
    }

    /// Skips a `/* … */` comment, honoring nesting.
    fn block_comment(&mut self) {
        self.pos += 2;
        let mut depth = 1usize;
        while depth > 0 {
            match (self.peek(0), self.peek(1)) {
                (Some('/'), Some('*')) => {
                    depth += 1;
                    self.pos += 2;
                }
                (Some('*'), Some('/')) => {
                    depth -= 1;
                    self.pos += 2;
                }
                (Some(_), _) => {
                    self.bump();
                }
                (None, _) => break,
            }
        }
    }

    /// Skips a `"…"` literal (escapes honored, may span lines).
    fn string_literal(&mut self) {
        self.pos += 1;
        while let Some(c) = self.bump() {
            match c {
                '\\' => {
                    self.bump();
                }
                '"' => break,
                _ => {}
            }
        }
    }

    /// Skips a raw string `r"…"` / `r#"…"#` (any hash count). The caller
    /// has consumed the prefix letters; `self.pos` is at the first `#`
    /// or the opening quote.
    fn raw_string_literal(&mut self) {
        let mut hashes = 0usize;
        while self.peek(0) == Some('#') {
            hashes += 1;
            self.pos += 1;
        }
        debug_assert_eq!(self.peek(0), Some('"'), "caller checked the quote");
        self.pos += 1;
        loop {
            match self.bump() {
                Some('"') => {
                    let mut seen = 0usize;
                    while seen < hashes && self.peek(0) == Some('#') {
                        seen += 1;
                        self.pos += 1;
                    }
                    if seen == hashes {
                        return;
                    }
                }
                Some(_) => {}
                None => return,
            }
        }
    }

    /// `'a'` (char literal) vs `'a` (lifetime): after the quote, an
    /// escape or a non-identifier char means char literal; an identifier
    /// char followed by a closing quote is a one-char literal like `'x'`;
    /// otherwise it is a lifetime and only the quote + name is consumed.
    fn char_or_lifetime(&mut self) {
        self.pos += 1;
        match self.peek(0) {
            Some('\\') => {
                // Escaped char literal: consume through the closing quote.
                self.pos += 1;
                self.bump();
                while let Some(c) = self.bump() {
                    if c == '\'' {
                        break;
                    }
                }
            }
            Some(c) if is_ident_start(c) => {
                if self.peek(1) == Some('\'') {
                    self.pos += 2; // 'x'
                } else {
                    // Lifetime: consume the name, emit nothing.
                    while let Some(c) = self.peek(0) {
                        if !is_ident_continue(c) {
                            break;
                        }
                        self.pos += 1;
                    }
                }
            }
            Some(_) => {
                // Non-identifier char literal like '+' or '\u{…}' start.
                self.bump();
                if self.peek(0) == Some('\'') {
                    self.pos += 1;
                }
            }
            None => {}
        }
    }

    /// Skips a numeric literal. A `.` joins the number only when a digit
    /// follows, so `x.0.unwrap()` keeps its method-call dot.
    fn number(&mut self) {
        while let Some(c) = self.peek(0) {
            let joins = c.is_ascii_alphanumeric()
                || c == '_'
                || (c == '.' && self.peek(1).is_some_and(|d| d.is_ascii_digit()));
            if !joins {
                break;
            }
            self.pos += 1;
        }
    }

    /// An identifier — or the prefix of a raw/byte string (`r"`, `r#"`,
    /// `b"`, `br#"`) or raw identifier (`r#name`).
    fn ident_or_prefixed_literal(&mut self) {
        let line = self.line;
        let start = self.pos;
        while let Some(c) = self.peek(0) {
            if !is_ident_continue(c) {
                break;
            }
            self.pos += 1;
        }
        let word: String = self.chars[start..self.pos].iter().collect();
        match word.as_str() {
            "r" | "br" | "b" if self.peek(0) == Some('"') => {
                if word == "b" {
                    self.string_literal();
                } else {
                    self.raw_string_literal();
                }
                return;
            }
            "r" | "br" if self.peek(0) == Some('#') => {
                // `r#"…"#` raw string or `r#name` raw identifier.
                if self.peek(1) == Some('"') || self.peek(1) == Some('#') {
                    self.raw_string_literal();
                } else {
                    // Raw identifier: consume `#` + name, emit the name.
                    self.pos += 1;
                    let istart = self.pos;
                    while let Some(c) = self.peek(0) {
                        if !is_ident_continue(c) {
                            break;
                        }
                        self.pos += 1;
                    }
                    let name: String = self.chars[istart..self.pos].iter().collect();
                    self.out.push(Token {
                        kind: TokenKind::Ident(name),
                        line,
                    });
                }
                return;
            }
            _ => {}
        }
        self.out.push(Token {
            kind: TokenKind::Ident(word),
            line,
        });
    }
}

fn is_ident_start(c: char) -> bool {
    c.is_alphabetic() || c == '_'
}

fn is_ident_continue(c: char) -> bool {
    c.is_alphanumeric() || c == '_'
}

/// Marks the tokens that belong to test code: items gated by a
/// `#[cfg(test)]` / `#[test]` attribute (through any further attributes,
/// to the end of the item — its `;` or its balanced `{ … }` block) and
/// `mod tests { … }` blocks. Returns one flag per token.
pub fn mark_test_code(tokens: &[Token]) -> Vec<bool> {
    let mut flags = vec![false; tokens.len()];
    let mut i = 0;
    while i < tokens.len() {
        if let Some(end) = test_item_end(tokens, i) {
            for flag in &mut flags[i..end] {
                *flag = true;
            }
            i = end;
        } else {
            i += 1;
        }
    }
    flags
}

/// If the token at `start` begins a test-gated item, returns the index
/// one past its end.
fn test_item_end(tokens: &[Token], start: usize) -> Option<usize> {
    if is_test_attr(tokens, start) {
        return Some(item_end(tokens, start));
    }
    // `mod tests { … }`
    if tokens[start].ident() == Some("mod")
        && tokens.get(start + 1).and_then(Token::ident) == Some("tests")
        && tokens.get(start + 2).and_then(Token::punct) == Some('{')
    {
        return Some(skip_balanced(tokens, start + 2));
    }
    None
}

/// Whether tokens at `start` spell `#[cfg(test)]`-like or `#[test]`:
/// a `#[ … ]` attribute whose content mentions the identifier `test`
/// with `cfg`, or is exactly `test`.
fn is_test_attr(tokens: &[Token], start: usize) -> bool {
    if tokens[start].punct() != Some('#')
        || tokens.get(start + 1).and_then(Token::punct) != Some('[')
    {
        return false;
    }
    let close = match matching_bracket(tokens, start + 1) {
        Some(c) => c,
        None => return false,
    };
    let inner = &tokens[start + 2..close];
    let mentions = |name: &str| inner.iter().any(|t| t.ident() == Some(name));
    // `#[test]` exactly, or any `#[cfg(… test …)]` shape.
    (inner.len() == 1 && inner[0].ident() == Some("test")) || (mentions("cfg") && mentions("test"))
}

/// One past the end of the item starting at the attribute at `start`:
/// skips further attributes and doc comments, then either the item's
/// balanced `{ … }` block or its terminating `;` — whichever comes
/// first at nesting depth zero.
fn item_end(tokens: &[Token], start: usize) -> usize {
    let mut i = start;
    // Skip the attribute itself plus any stacked attributes/comments.
    while i < tokens.len() {
        match &tokens[i].kind {
            TokenKind::Punct('#') if tokens.get(i + 1).and_then(Token::punct) == Some('[') => {
                match matching_bracket(tokens, i + 1) {
                    Some(close) => i = close + 1,
                    None => return tokens.len(),
                }
            }
            TokenKind::LineComment(_) => i += 1,
            _ => break,
        }
    }
    // Scan the item header for `{` (block) or `;` (e.g. `use …;`).
    let mut depth = 0i32;
    while i < tokens.len() {
        match tokens[i].punct() {
            Some('{') => return skip_balanced(tokens, i),
            Some(';') if depth == 0 => return i + 1,
            Some('(') | Some('[') => depth += 1,
            Some(')') | Some(']') => depth -= 1,
            _ => {}
        }
        i += 1;
    }
    tokens.len()
}

/// One past the `}` matching the `{` at `open`.
fn skip_balanced(tokens: &[Token], open: usize) -> usize {
    debug_assert_eq!(tokens[open].punct(), Some('{'));
    let mut depth = 0i32;
    for (i, t) in tokens.iter().enumerate().skip(open) {
        match t.punct() {
            Some('{') => depth += 1,
            Some('}') => {
                depth -= 1;
                if depth == 0 {
                    return i + 1;
                }
            }
            _ => {}
        }
    }
    tokens.len()
}

/// Index of the `]` matching the `[` at `open`.
fn matching_bracket(tokens: &[Token], open: usize) -> Option<usize> {
    debug_assert_eq!(tokens[open].punct(), Some('['));
    let mut depth = 0i32;
    for (i, t) in tokens.iter().enumerate().skip(open) {
        match t.punct() {
            Some('[') => depth += 1,
            Some(']') => {
                depth -= 1;
                if depth == 0 {
                    return Some(i);
                }
            }
            _ => {}
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;

    fn idents(src: &str) -> Vec<String> {
        lex(src)
            .into_iter()
            .filter_map(|t| match t.kind {
                TokenKind::Ident(s) => Some(s),
                _ => None,
            })
            .collect()
    }

    #[test]
    fn strings_hide_their_content() {
        assert_eq!(idents(r#"let s = "x.unwrap()";"#), ["let", "s"]);
    }

    #[test]
    fn line_comment_inside_string_is_not_a_comment() {
        let toks = lex(r#"let url = "https://example.com"; call()"#);
        assert!(
            !toks
                .iter()
                .any(|t| matches!(t.kind, TokenKind::LineComment(_))),
            "`//` inside a string must not open a comment: {toks:?}"
        );
        assert!(toks.iter().any(|t| t.ident() == Some("call")));
    }

    #[test]
    fn raw_strings_with_hashes() {
        assert_eq!(
            idents(r###"let s = r#"quote " and .unwrap() inside"#; done()"###),
            ["let", "s", "done"]
        );
        assert_eq!(
            idents(r#"let s = r"plain raw .expect("; end()"#),
            ["let", "s", "end"]
        );
    }

    #[test]
    fn nested_block_comments() {
        assert_eq!(
            idents("before /* outer /* inner panic!() */ still comment */ after"),
            ["before", "after"]
        );
    }

    #[test]
    fn char_literals_and_lifetimes() {
        assert_eq!(
            idents("fn f<'a>(x: &'a str) { let c = 'x'; let q = '\\''; }"),
            ["fn", "f", "x", "str", "let", "c", "let", "q"]
        );
    }

    #[test]
    fn tuple_field_method_call_keeps_its_dot() {
        let toks = lex("pair.0.unwrap()");
        let has_unwrap = toks
            .windows(2)
            .any(|w| w[0].punct() == Some('.') && w[1].ident() == Some("unwrap"));
        assert!(has_unwrap, "number lexing swallowed `.unwrap`: {toks:?}");
    }

    #[test]
    fn raw_identifiers_lex_as_identifiers() {
        assert_eq!(idents("let r#type = 1;"), ["let", "type"]);
    }

    #[test]
    fn cfg_test_mod_is_marked() {
        let src = "fn live() {}\n#[cfg(test)]\nmod tests {\n fn t() { x.unwrap(); }\n}\n";
        let toks = lex(src);
        let flags = mark_test_code(&toks);
        let unwrap_idx = toks
            .iter()
            .position(|t| t.ident() == Some("unwrap"))
            .expect("unwrap token present");
        assert!(flags[unwrap_idx], "unwrap inside cfg(test) not marked");
        let live_idx = toks
            .iter()
            .position(|t| t.ident() == Some("live"))
            .expect("live token present");
        assert!(!flags[live_idx], "non-test code wrongly marked");
    }

    #[test]
    fn cfg_test_use_statement_is_marked() {
        let src = "#[cfg(test)]\nuse std::collections::HashMap;\nfn live() {}\n";
        let toks = lex(src);
        let flags = mark_test_code(&toks);
        let hm = toks
            .iter()
            .position(|t| t.ident() == Some("HashMap"))
            .expect("HashMap token present");
        assert!(flags[hm], "cfg(test) use-item not marked");
        let live = toks
            .iter()
            .position(|t| t.ident() == Some("live"))
            .expect("live token present");
        assert!(!flags[live]);
    }

    #[test]
    fn stacked_attributes_stay_in_scope() {
        let src =
            "#[cfg(test)]\n#[allow(dead_code)]\nfn helper() { x.expect(\"\"); }\nfn live() {}";
        let toks = lex(src);
        let flags = mark_test_code(&toks);
        let expect_idx = toks
            .iter()
            .position(|t| t.ident() == Some("expect"))
            .expect("expect token present");
        assert!(flags[expect_idx], "attribute stack broke cfg(test) scoping");
        let live = toks
            .iter()
            .position(|t| t.ident() == Some("live"))
            .expect("live token present");
        assert!(!flags[live]);
    }
}
