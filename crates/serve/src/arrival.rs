//! Request arrival processes.
//!
//! Serving throughput is meaningless without an offered load, so the
//! workload generator supports the three shapes serving papers sweep:
//! memoryless Poisson traffic, bursty traffic (batched arrivals at Poisson
//! epochs — the "everyone hits enter after the game ends" shape), and
//! fixed traces for reproducible regression tests.

use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};
use serde::{Deserialize, Serialize};

use crate::request::Request;

/// How requests arrive at the serving queue.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum ArrivalProcess {
    /// Memoryless arrivals: exponential inter-arrival gaps at `rate_per_s`
    /// requests per second, generated deterministically from `seed`.
    Poisson {
        /// Mean arrival rate in requests per second.
        rate_per_s: f64,
        /// RNG seed (equal seeds produce equal workloads).
        seed: u64,
    },
    /// Bursts of `burst_size` simultaneous requests whose epochs are
    /// Poisson at `bursts_per_s`.
    Bursty {
        /// Mean burst rate in bursts per second.
        bursts_per_s: f64,
        /// Requests per burst.
        burst_size: usize,
        /// RNG seed.
        seed: u64,
    },
    /// Explicit arrival timestamps in milliseconds (must be sorted
    /// ascending). Zero jitter: the same trace always yields the same
    /// workload.
    Trace(Vec<f64>),
}

impl ArrivalProcess {
    /// Generates `n` arrival timestamps in milliseconds, sorted ascending.
    ///
    /// # Panics
    ///
    /// Panics if a rate is not strictly positive, a burst size is zero, or
    /// a trace is unsorted or shorter than `n`.
    pub fn arrival_times_ms(&self, n: usize) -> Vec<f64> {
        match self {
            ArrivalProcess::Poisson { rate_per_s, seed } => {
                assert!(
                    *rate_per_s > 0.0 && rate_per_s.is_finite(),
                    "arrival rate must be positive"
                );
                let mut rng = StdRng::seed_from_u64(*seed);
                let mut t = 0.0f64;
                (0..n)
                    .map(|_| {
                        t += exponential_gap_ms(&mut rng, *rate_per_s);
                        t
                    })
                    .collect()
            }
            ArrivalProcess::Bursty {
                bursts_per_s,
                burst_size,
                seed,
            } => {
                assert!(
                    *bursts_per_s > 0.0 && bursts_per_s.is_finite(),
                    "burst rate must be positive"
                );
                assert!(*burst_size > 0, "burst size must be positive");
                let mut rng = StdRng::seed_from_u64(*seed);
                let mut t = 0.0f64;
                let mut out = Vec::with_capacity(n);
                while out.len() < n {
                    t += exponential_gap_ms(&mut rng, *bursts_per_s);
                    for _ in 0..*burst_size {
                        if out.len() == n {
                            break;
                        }
                        out.push(t);
                    }
                }
                out
            }
            ArrivalProcess::Trace(times) => {
                assert!(
                    times.len() >= n,
                    "trace has {} arrivals, {n} requested",
                    times.len()
                );
                assert!(
                    times.windows(2).all(|w| w[0] <= w[1]),
                    "trace must be sorted ascending"
                );
                times[..n].to_vec()
            }
        }
    }

    /// Builds a workload of `n` requests whose `[prefill : decode]` shapes
    /// cycle through `shapes` (a chat-style mix), with ids `0..n` in
    /// arrival order.
    ///
    /// # Panics
    ///
    /// Panics if `shapes` is empty or the arrival generation panics.
    pub fn workload(&self, n: usize, shapes: &[(usize, usize)]) -> Vec<Request> {
        assert!(!shapes.is_empty(), "need at least one request shape");
        self.arrival_times_ms(n)
            .into_iter()
            .enumerate()
            .map(|(i, at)| {
                let (prefill, decode) = shapes[i % shapes.len()];
                Request::new(i as u64, at, prefill, decode)
            })
            .collect()
    }

    /// Like [`ArrivalProcess::workload`], but every request also carries
    /// deterministic synthetic prompt tokens in `0..vocab` (seeded by
    /// `prompt_seed` and the request id), so the workload can run on a
    /// token-producing backend. Identical `(process, shapes, vocab,
    /// prompt_seed)` always yields the identical workload.
    ///
    /// # Panics
    ///
    /// Panics if `shapes` is empty, `vocab` is zero, or the arrival
    /// generation panics.
    pub fn workload_with_prompts(
        &self,
        n: usize,
        shapes: &[(usize, usize)],
        vocab: usize,
        prompt_seed: u64,
    ) -> Vec<Request> {
        assert!(vocab > 0, "vocab must be positive");
        self.workload(n, shapes)
            .into_iter()
            .map(|req| {
                let mut rng = StdRng::seed_from_u64(prompt_seed ^ req.id.wrapping_mul(0x9E37_79B9));
                let prompt: Vec<u32> = (0..req.prefill_tokens)
                    .map(|_| (rng.random::<u64>() % vocab as u64) as u32)
                    .collect();
                req.with_prompt(prompt)
            })
            .collect()
    }
}

/// One exponential inter-arrival gap in milliseconds at `rate_per_s`.
fn exponential_gap_ms(rng: &mut StdRng, rate_per_s: f64) -> f64 {
    // u ∈ [0, 1) ⇒ 1 - u ∈ (0, 1] ⇒ ln is finite and ≤ 0.
    let u: f64 = rng.random();
    -(1.0 - u).ln() / rate_per_s * 1e3
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn poisson_is_sorted_and_deterministic() {
        let p = ArrivalProcess::Poisson {
            rate_per_s: 20.0,
            seed: 7,
        };
        let a = p.arrival_times_ms(50);
        let b = p.arrival_times_ms(50);
        assert_eq!(a, b, "equal seeds must produce equal arrivals");
        assert!(a.windows(2).all(|w| w[0] <= w[1]));
        assert!(a.iter().all(|&t| t >= 0.0));
    }

    #[test]
    fn poisson_mean_gap_tracks_rate() {
        let p = ArrivalProcess::Poisson {
            rate_per_s: 10.0,
            seed: 3,
        };
        let times = p.arrival_times_ms(2000);
        let mean_gap = times.last().unwrap() / times.len() as f64;
        // 10 req/s ⇒ 100 ms mean gap; allow 15 % sampling noise.
        assert!((85.0..115.0).contains(&mean_gap), "mean gap {mean_gap}");
    }

    #[test]
    fn bursts_arrive_together() {
        let p = ArrivalProcess::Bursty {
            bursts_per_s: 2.0,
            burst_size: 4,
            seed: 1,
        };
        let times = p.arrival_times_ms(12);
        for chunk in times.chunks(4) {
            assert!(chunk.iter().all(|&t| t == chunk[0]), "burst split apart");
        }
    }

    #[test]
    fn trace_is_verbatim() {
        let p = ArrivalProcess::Trace(vec![0.0, 1.0, 5.0]);
        assert_eq!(p.arrival_times_ms(2), vec![0.0, 1.0]);
    }

    #[test]
    #[should_panic(expected = "sorted")]
    fn unsorted_trace_rejected() {
        let p = ArrivalProcess::Trace(vec![5.0, 1.0]);
        let _ = p.arrival_times_ms(2);
    }

    #[test]
    fn workload_cycles_shapes() {
        let p = ArrivalProcess::Trace(vec![0.0; 5]);
        let reqs = p.workload(5, &[(32, 16), (64, 8)]);
        assert_eq!(reqs.len(), 5);
        assert_eq!(reqs[0].prefill_tokens, 32);
        assert_eq!(reqs[1].prefill_tokens, 64);
        assert_eq!(reqs[2].prefill_tokens, 32);
        assert_eq!(reqs[4].decode_tokens, 16);
    }
}
