//! Chaos harness: the robustness acceptance gate of the serving gateway.
//!
//! Replays bursty and overload traces through
//! [`looplynx_serve::serve_gateway_on`] on the functional W8A8 engine
//! while a seeded [`FaultyBackend`] injects prefill/decode faults,
//! latency stalls, and slot-release leaks at rates of 0%, 1%, 5% and 20%
//! ([`FAULT_RATES`]). Each cell checks the invariants that define
//! "fault-tolerant" for this repo:
//!
//! * **Conservation** — every offered request reaches exactly one
//!   terminal state: nothing lost, nothing double-counted, no hang
//!   (the run finishing at all is the no-hang proof — the gateway's
//!   event loop must shed work it can no longer serve).
//! * **No spurious failures** — with retries enabled, transient injected
//!   faults never surface as `Failed` terminals at these rates.
//! * **Bit-exact completions** — every request that completes under
//!   chaos produces a token stream identical to the fault-free
//!   reference run (vetoed operations never touch backend state, so a
//!   retry replays the exact computation).
//! * **Graceful goodput** — every cell still completes work
//!   (`goodput > 0`); faults degrade throughput, never collapse it.
//!
//! The `chaos` binary renders `BENCH_robustness.json` and exits non-zero
//! if any invariant is violated, which CI gates on.

use std::time::Instant;

use looplynx_core::backend::{FunctionalBackend, SamplerSpec};
use looplynx_core::engine::DistributedGpt2;
use looplynx_core::fault::{FaultPlan, FaultyBackend};
use looplynx_core::router::RingMode;
use looplynx_model::config::ModelConfig;
use looplynx_model::gpt2::Gpt2Model;
use looplynx_serve::{
    serve_gateway_on, ArrivalProcess, EvictPolicyKind, GatewayConfig, GatewayRequest, ShedPolicy,
    Terminal,
};

/// Injected fault intensities swept per scenario (fraction of
/// operations): fault-free control, 1%, 5%, and 20%.
pub const FAULT_RATES: [f64; 4] = [0.0, 0.01, 0.05, 0.20];

/// Seed of the fault stream (scenario index is added so the two traces
/// draw distinct streams).
pub const CHAOS_SEED: u64 = 0xC4A05;

/// One (scenario × fault-rate) measurement with its invariant verdicts.
#[derive(Debug, Clone, PartialEq)]
pub struct ChaosCell {
    /// Scenario name (`bursty` or `overload`).
    pub scenario: &'static str,
    /// Injected fault intensity (see [`FaultPlan::uniform`]).
    pub fault_rate: f64,
    /// Requests offered to the gateway.
    pub offered: usize,
    /// Requests that completed with their full token stream.
    pub completed: usize,
    /// Requests shed by admission control.
    pub rejected: usize,
    /// Requests cancelled by the (scripted) client.
    pub cancelled: usize,
    /// Requests that surfaced a permanent failure.
    pub failed: usize,
    /// Transient-fault retries the gateway performed.
    pub retries: u64,
    /// Slots stranded by injected release leaks.
    pub leaked_slots: usize,
    /// Completed output tokens per second over the completed makespan.
    pub goodput_tok_s: f64,
    /// Every offered id reached exactly one terminal state.
    pub conserved: bool,
    /// Every completed stream matched the fault-free reference.
    pub bit_exact: bool,
    /// Host wall-clock of the cell (s).
    pub wall_s: f64,
}

impl ChaosCell {
    /// Whether the cell upholds every robustness invariant.
    ///
    /// `Failed` terminals are a violation: all injected faults are
    /// transient, so with retries enabled none may surface. A fault-free
    /// cell must additionally complete its entire admitted workload.
    pub fn passed(&self) -> bool {
        self.conserved
            && self.bit_exact
            && self.failed == 0
            && self.completed > 0
            && self.goodput_tok_s > 0.0
            && (self.fault_rate > 0.0
                || self.completed + self.rejected + self.cancelled == self.offered)
    }
}

/// The full chaos-harness report.
#[derive(Debug, Clone, PartialEq)]
pub struct ChaosReport {
    /// Every (scenario × fault-rate) cell.
    pub cells: Vec<ChaosCell>,
    /// Host wall-clock of the whole harness (s).
    pub wall_s: f64,
    /// Whether the run used the reduced `--quick` workload.
    pub quick: bool,
}

impl ChaosReport {
    /// Whether every cell upheld every invariant.
    pub fn passed(&self) -> bool {
        !self.cells.is_empty() && self.cells.iter().all(ChaosCell::passed)
    }
}

/// Sizing of one chaos run.
#[derive(Debug, Clone, Copy)]
struct Sizing {
    requests: usize,
    slots: usize,
    /// Queue bound of the overload trace — deliberately smaller than the
    /// request count so admission control must shed even fault-free.
    overload_queue: usize,
}

fn sizing(quick: bool) -> Sizing {
    if quick {
        Sizing {
            requests: 12,
            slots: 4,
            overload_queue: 6,
        }
    } else {
        Sizing {
            requests: 32,
            slots: 6,
            overload_queue: 12,
        }
    }
}

fn fresh_backend(model: &Gpt2Model, slots: usize) -> FunctionalBackend {
    let engine = DistributedGpt2::with_slots(model, 2, RingMode::Exact, slots, 48)
        .expect("tiny model partitions");
    FunctionalBackend::new(engine, SamplerSpec::Greedy)
}

/// The bursty trace: Poisson burst epochs, a couple of scripted
/// client cancellations, queue deep enough that nothing overflows.
fn bursty_workload(cfg: &ModelConfig, n: usize) -> Vec<GatewayRequest> {
    let reqs = ArrivalProcess::Bursty {
        bursts_per_s: 40.0,
        burst_size: 4,
        seed: 0xB0057,
    }
    .workload_with_prompts(n, &[(6, 10), (4, 8), (8, 6)], cfg.vocab, 0x5EED);
    let mut offered = GatewayRequest::from_workload(&reqs);
    // Two clients hang up mid-run: exercises queued and resident
    // cancellation under chaos. (Which state each lands in depends on
    // host timing; conservation must hold either way.)
    let last = offered.len() - 1;
    offered[last / 2] = offered[last / 2].clone().cancel_at(120.0);
    offered[last] = offered[last].clone().cancel_at(200.0);
    offered
}

/// The overload trace: everything lands at t = 0 against a queue bound
/// below the request count, so load shedding fires even fault-free.
fn overload_workload(cfg: &ModelConfig, n: usize) -> Vec<GatewayRequest> {
    let reqs = ArrivalProcess::Trace(vec![0.0; n]).workload_with_prompts(
        n,
        &[(6, 10), (4, 8)],
        cfg.vocab,
        0xFEED,
    );
    GatewayRequest::from_workload(&reqs)
}

/// Reference outputs: every request served fault-free with an unbounded
/// queue, so each id has a canonical token stream to compare against.
fn reference_outputs(
    model: &Gpt2Model,
    offered: &[GatewayRequest],
    slots: usize,
) -> Vec<(u64, Vec<u32>)> {
    let plain: Vec<GatewayRequest> = offered
        .iter()
        .map(|g| GatewayRequest::new(g.req.clone()))
        .collect();
    let cfg = GatewayConfig {
        max_batch: slots,
        queue_depth: plain.len().max(1),
        ..GatewayConfig::default()
    };
    let mut backend = fresh_backend(model, slots);
    let report = serve_gateway_on(&mut backend, &plain, &cfg);
    assert_eq!(
        report.counts().completed,
        plain.len(),
        "reference run must complete everything: {report}"
    );
    report
        .serving
        .outputs
        .iter()
        .map(|o| (o.id, o.tokens.clone()))
        .collect()
}

/// Everything that distinguishes one chaos cell from another: the trace
/// being replayed and the knobs of the gateway + fault plan driving it.
struct CellSpec<'a> {
    scenario: &'static str,
    offered: &'a [GatewayRequest],
    reference: &'a [(u64, Vec<u32>)],
    queue_depth: usize,
    slots: usize,
    fault_rate: f64,
    seed: u64,
}

/// Runs one (scenario × fault-rate) cell and checks its invariants.
fn run_cell(model: &Gpt2Model, spec: &CellSpec<'_>) -> ChaosCell {
    let t0 = Instant::now();
    let cfg = GatewayConfig {
        max_batch: spec.slots,
        queue_depth: spec.queue_depth,
        // Generous retry budget: at a 20% per-op fault rate the chance of
        // 33 consecutive vetoes is negligible, so `Failed` terminals
        // would indicate a real bug, not bad luck.
        max_retries: 32,
        retry_backoff_ms: 1.0,
        ttft_deadline_ms: None,
        e2e_deadline_ms: None,
        shed: ShedPolicy::Reject,
        prefill_chunk: None,
        evict: EvictPolicyKind::YoungestFirst,
    };
    let mut backend = FaultyBackend::new(
        fresh_backend(model, spec.slots),
        FaultPlan::uniform(spec.seed, spec.fault_rate),
    );
    let report = serve_gateway_on(&mut backend, spec.offered, &cfg);

    let counts = report.counts();
    let bit_exact = report.terminals.iter().all(|t| {
        if t.terminal != Terminal::Completed {
            return true;
        }
        let want = spec
            .reference
            .iter()
            .find(|(id, _)| *id == t.id)
            .map(|(_, tokens)| tokens.as_slice());
        report.serving.output_tokens(t.id) == want
    });

    ChaosCell {
        scenario: spec.scenario,
        fault_rate: spec.fault_rate,
        offered: spec.offered.len(),
        completed: counts.completed,
        rejected: counts.rejected,
        cancelled: counts.cancelled,
        failed: counts.failed,
        retries: report.retries,
        leaked_slots: backend.leaked_slots().len(),
        goodput_tok_s: report.goodput_tok_s(),
        conserved: report.is_conserved(spec.offered),
        bit_exact,
        wall_s: t0.elapsed().as_secs_f64(),
    }
}

/// Runs the full harness: both scenarios at every [`FAULT_RATES`] entry
/// on the tiny model (chaos exercises control flow, not FLOPs).
pub fn measure(quick: bool) -> ChaosReport {
    let t0 = Instant::now();
    let cfg = ModelConfig::tiny();
    let model = Gpt2Model::synthetic(&cfg, 2024);
    let s = sizing(quick);

    let bursty = bursty_workload(&cfg, s.requests);
    let overload = overload_workload(&cfg, s.requests);
    let bursty_ref = reference_outputs(&model, &bursty, s.slots);
    let overload_ref = reference_outputs(&model, &overload, s.slots);

    let mut cells = Vec::new();
    for (i, &rate) in FAULT_RATES.iter().enumerate() {
        cells.push(run_cell(
            &model,
            &CellSpec {
                scenario: "bursty",
                offered: &bursty,
                reference: &bursty_ref,
                queue_depth: bursty.len(),
                slots: s.slots,
                fault_rate: rate,
                seed: CHAOS_SEED + i as u64,
            },
        ));
        cells.push(run_cell(
            &model,
            &CellSpec {
                scenario: "overload",
                offered: &overload,
                reference: &overload_ref,
                queue_depth: s.overload_queue,
                slots: s.slots,
                fault_rate: rate,
                seed: CHAOS_SEED + 100 + i as u64,
            },
        ));
    }

    ChaosReport {
        cells,
        wall_s: t0.elapsed().as_secs_f64(),
        quick,
    }
}

fn json_f64(x: f64) -> String {
    if x.is_finite() {
        format!("{x:.3}")
    } else {
        "null".into()
    }
}

/// Renders the report as a JSON document (`BENCH_robustness.json`).
pub fn to_json(report: &ChaosReport) -> String {
    let mut out = String::from("{\n");
    out.push_str(&format!("  \"passed\": {},\n", report.passed()));
    out.push_str(&format!("  \"quick\": {},\n", report.quick));
    out.push_str("  \"fault_rates\": [0.0, 0.01, 0.05, 0.2],\n");
    out.push_str("  \"cells\": [\n");
    for (i, c) in report.cells.iter().enumerate() {
        out.push_str(&format!(
            "    {{\"scenario\": \"{}\", \"fault_rate\": {}, \"offered\": {}, \
             \"completed\": {}, \"rejected\": {}, \"cancelled\": {}, \
             \"failed\": {}, \"retries\": {}, \"leaked_slots\": {}, \
             \"goodput_tok_s\": {}, \"conserved\": {}, \"bit_exact\": {}, \
             \"passed\": {}, \"wall_s\": {}}}{}\n",
            c.scenario,
            json_f64(c.fault_rate),
            c.offered,
            c.completed,
            c.rejected,
            c.cancelled,
            c.failed,
            c.retries,
            c.leaked_slots,
            json_f64(c.goodput_tok_s),
            c.conserved,
            c.bit_exact,
            c.passed(),
            json_f64(c.wall_s),
            if i + 1 < report.cells.len() { "," } else { "" }
        ));
    }
    out.push_str("  ],\n");
    out.push_str(&format!("  \"wall_s\": {}\n}}\n", json_f64(report.wall_s)));
    out
}

/// Renders a human-readable table.
pub fn render(report: &ChaosReport) -> String {
    let mut out = String::from(
        "CHAOS HARNESS — gateway robustness under injected faults\n\
         scenario   rate   offered done rej cxl fail retry leak  goodput  verdict\n",
    );
    for c in &report.cells {
        out.push_str(&format!(
            "{:<10} {:>4.0}%  {:>7} {:>4} {:>3} {:>3} {:>4} {:>5} {:>4} {:>8.1} {}\n",
            c.scenario,
            c.fault_rate * 100.0,
            c.offered,
            c.completed,
            c.rejected,
            c.cancelled,
            c.failed,
            c.retries,
            c.leaked_slots,
            c.goodput_tok_s,
            if c.passed() { "ok" } else { "VIOLATED" },
        ));
    }
    out.push_str(&format!(
        "overall: {}\n",
        if report.passed() {
            "all invariants hold"
        } else {
            "INVARIANT VIOLATION"
        }
    ));
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_harness_upholds_every_invariant() {
        let report = measure(true);
        assert_eq!(report.cells.len(), 2 * FAULT_RATES.len());
        assert!(report.passed(), "{}", render(&report));
        // The fault-free control cells must not retry or leak.
        for c in report.cells.iter().filter(|c| c.fault_rate == 0.0) {
            assert_eq!(c.retries, 0, "{c:?}");
            assert_eq!(c.leaked_slots, 0, "{c:?}");
        }
        // The overload trace must actually overload.
        for c in report.cells.iter().filter(|c| c.scenario == "overload") {
            assert!(c.rejected > 0, "queue bound never bit: {c:?}");
        }
    }

    #[test]
    fn json_carries_the_verdict() {
        let report = ChaosReport {
            cells: vec![ChaosCell {
                scenario: "bursty",
                fault_rate: 0.05,
                offered: 12,
                completed: 11,
                rejected: 0,
                cancelled: 1,
                failed: 0,
                retries: 9,
                leaked_slots: 1,
                goodput_tok_s: 1234.5,
                conserved: true,
                bit_exact: true,
                wall_s: 0.2,
            }],
            wall_s: 0.3,
            quick: true,
        };
        let json = to_json(&report);
        assert!(json.contains("\"passed\": true"));
        assert!(json.contains("\"scenario\": \"bursty\""));
        assert!(json.contains("\"goodput_tok_s\": 1234.500"));
    }
}
