//! The end-to-end LoopLynx engine.
//!
//! Two complementary facilities:
//!
//! * [`LoopLynx`] — the *timing* engine: simulates full prefill+decode
//!   generations cycle-accurately (paper Fig. 2(b): host embeds tokens,
//!   accelerator runs the transformer blocks, host synchronizes the output
//!   and feeds generation back), producing latency, throughput, breakdown
//!   and energy reports.
//! * [`DistributedGpt2`] — the *functional* engine: executes real W8A8
//!   inference partitioned across N simulated nodes with ring all-gathers
//!   between sharded stages. In [`RingMode::Exact`] the result is
//!   bit-identical to the single-node reference model, which the test
//!   suite uses to prove the partitioning algebra correct.

use std::fmt;

use serde::{Deserialize, Serialize};

use looplynx_model::attention::{
    attend_heads_fused_segments_into, attend_heads_fused_segments_to, attend_heads_segments_into,
    attend_heads_segments_to, AttnMode, AttnScratch,
};
use looplynx_model::config::ModelConfig;
use looplynx_model::generate::Autoregressive;
use looplynx_model::gpt2::Gpt2Model;
use looplynx_model::kv_cache::LayerKvCache;
use looplynx_model::paged::PagedKvArena;
use looplynx_model::prefix::{PrefixIndex, PrefixIndexStats};
use looplynx_tensor::activation::gelu_in_place;
use looplynx_tensor::linear::QuantLinear;
use looplynx_tensor::matrix::Matrix;
use looplynx_tensor::norm::{layernorm_into, residual_add_into, LayerNormParams};
use looplynx_tensor::quant::quantize_into;

use crate::config::ArchConfig;
use crate::energy::{fpga_energy, EnergyReport};
use crate::latency::LatencyBreakdown;
use crate::parallel::{shard_weights, split_range, NodeWeights, PartitionError};
use crate::pool::WorkerPool;
use crate::router::{RingMode, Router};
use crate::scheduler::{Scheduler, TokenTiming};

/// Which phase a simulated token belongs to.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum TokenPhase {
    /// Prompt processing (KV-cache fill; logits only for the last token).
    Prefill,
    /// Auto-regressive generation.
    Decode,
}

/// Latency/energy outcome of a simulated generation.
///
/// Accounting follows the *paper's* convention: every generated token is
/// charged one full decode pass, so `decode_ms` covers `decode_tokens`
/// passes and [`GenerationReport::tokens_per_second`] is the Table III
/// steady-state metric. The serving layer (`looplynx-serve`) instead
/// models the deployed pipeline, where the first output token is sampled
/// from the prefill logits and only `decode_tokens - 1` decode iterations
/// run — its TPOT is therefore not directly comparable to
/// [`GenerationReport::decode_ms_per_token`] for short generations.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct GenerationReport {
    /// Ring size used.
    pub nodes: usize,
    /// Prompt length.
    pub prefill_tokens: usize,
    /// Generated tokens.
    pub decode_tokens: usize,
    /// Prefill wall-clock in milliseconds.
    pub prefill_ms: f64,
    /// Decode wall-clock in milliseconds.
    pub decode_ms: f64,
    /// Accumulated latency buckets over the whole run.
    pub breakdown: LatencyBreakdown,
    /// Energy over the whole run.
    pub energy: EnergyReport,
}

impl GenerationReport {
    /// Total wall-clock in milliseconds.
    pub fn total_ms(&self) -> f64 {
        self.prefill_ms + self.decode_ms
    }

    /// Average decode latency per generated token in milliseconds.
    ///
    /// Returns `0.0` for a degenerate report (zero tokens or zero decode
    /// wall-clock) rather than `inf`/`NaN`.
    pub fn decode_ms_per_token(&self) -> f64 {
        if self.decode_tokens == 0 || self.decode_ms <= 0.0 {
            return 0.0;
        }
        self.decode_ms / self.decode_tokens as f64
    }

    /// Decode throughput in tokens per second (Table III metric).
    ///
    /// Returns `0.0` for a degenerate report (zero decode wall-clock)
    /// rather than `inf`/`NaN`.
    pub fn tokens_per_second(&self) -> f64 {
        if self.decode_ms <= 0.0 {
            return 0.0;
        }
        self.decode_tokens as f64 / (self.decode_ms / 1e3)
    }
}

impl fmt::Display for GenerationReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "[{}:{}] on {} node(s): {:.1} ms total, {:.2} ms/token, {:.1} tok/s, {:.1} J",
            self.prefill_tokens,
            self.decode_tokens,
            self.nodes,
            self.total_ms(),
            self.decode_ms_per_token(),
            self.tokens_per_second(),
            self.energy.joules
        )
    }
}

/// Aggregate timing of a multi-token phase (a prefill walk or a batched
/// decode iteration): total exposed cycles plus the bucketized breakdown,
/// without the per-stage trace of [`TokenTiming`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct PhaseTiming {
    /// Total exposed cycles of the phase.
    pub cycles: looplynx_sim::time::Cycles,
    /// Bucketized breakdown over the phase.
    pub breakdown: LatencyBreakdown,
}

impl PhaseTiming {
    /// Milliseconds under the configuration's clock.
    pub fn to_millis(&self, cfg: &ArchConfig) -> f64 {
        self.cycles.to_millis(cfg.freq())
    }
}

/// The LoopLynx timing engine.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct LoopLynx {
    scheduler: Scheduler,
}

impl LoopLynx {
    /// Creates an engine for the model on the given architecture.
    ///
    /// # Errors
    ///
    /// Returns [`PartitionError`] if the model cannot be split over the
    /// configured ring.
    pub fn new(model: ModelConfig, arch: ArchConfig) -> Result<Self, PartitionError> {
        Ok(LoopLynx {
            scheduler: Scheduler::new(arch, model)?,
        })
    }

    /// The architecture configuration.
    pub fn arch(&self) -> &ArchConfig {
        self.scheduler.config()
    }

    /// The model configuration.
    pub fn model(&self) -> &ModelConfig {
        self.scheduler.model()
    }

    /// The underlying stage scheduler (for callers that need raw
    /// per-stage schedules, e.g. the serving layer and invariant tests).
    pub fn scheduler(&self) -> &Scheduler {
        &self.scheduler
    }

    /// Cycle-accurate timing of one token at the given cache context.
    pub fn simulate_token(
        &self,
        context: usize,
        phase: TokenPhase,
        is_last_prefill: bool,
    ) -> TokenTiming {
        let with_lm_head = match phase {
            TokenPhase::Decode => true,
            TokenPhase::Prefill => is_last_prefill,
        };
        self.scheduler.schedule_token(context, with_lm_head)
    }

    /// Steady-state decode latency in ms at a fixed context — the paper's
    /// Table II "token latency" operating point.
    pub fn steady_state_decode_ms(&self, context: usize) -> f64 {
        self.simulate_token(context, TokenPhase::Decode, false)
            .total_ms(self.arch())
    }

    /// Cycle-accurate timing of the whole prompt-processing phase for a
    /// `prefill`-token prompt: all but the last token run in weight-sharing
    /// batches of [`ArchConfig::prefill_batch`] (the paper's behaviour is
    /// batch = 1); the last prefill token runs unbatched because it
    /// produces logits.
    ///
    /// # Panics
    ///
    /// Panics if `prefill` is zero or exceeds the model's maximum.
    pub fn simulate_prefill(&self, prefill: usize) -> PhaseTiming {
        assert!(prefill > 0, "need at least one prompt token");
        assert!(
            prefill <= self.model().max_seq,
            "prompt {} exceeds max_seq {}",
            prefill,
            self.model().max_seq
        );
        let mut breakdown = LatencyBreakdown::zero();
        let mut cycles = 0u64;
        let batch = self.arch().prefill_batch();
        let mut t = 0usize;
        while t + 1 < prefill {
            let this_batch = batch.min(prefill - 1 - t);
            if this_batch > 1 {
                let timing = self.scheduler.schedule_prefill_batch(t + 1, this_batch);
                cycles += timing.total.as_u64();
                breakdown += timing.breakdown;
            } else {
                let timing = self.simulate_token(t + 1, TokenPhase::Prefill, false);
                cycles += timing.total.as_u64();
                breakdown += timing.breakdown;
            }
            t += this_batch;
        }
        let timing = self.simulate_token(prefill, TokenPhase::Prefill, true);
        cycles += timing.total.as_u64();
        breakdown += timing.breakdown;
        PhaseTiming {
            cycles: looplynx_sim::time::Cycles::new(cycles),
            breakdown,
        }
    }

    /// Cycle-accurate timing of one continuous-batching decode iteration —
    /// one token for each concurrent request, all sharing every weight
    /// pass. Delegates to [`Scheduler::schedule_decode_batch`]; see there
    /// for the cost model.
    ///
    /// # Panics
    ///
    /// Panics if `contexts` is empty or any context is zero.
    pub fn simulate_decode_batch(&self, contexts: &[usize]) -> PhaseTiming {
        let timing = self.scheduler.schedule_decode_batch(contexts);
        PhaseTiming {
            cycles: timing.total,
            breakdown: timing.breakdown,
        }
    }

    /// Simulates a full `[prefill : decode]` generation.
    ///
    /// Each of the `decode` tokens is charged one full decode pass (the
    /// paper's accounting — see [`GenerationReport`] for how this differs
    /// from the serving layer's first-token-from-prefill pipeline model).
    ///
    /// # Panics
    ///
    /// Panics if `prefill` or `decode` is zero or the sequence exceeds the
    /// model's maximum.
    pub fn simulate_generation(&self, prefill: usize, decode: usize) -> GenerationReport {
        assert!(prefill > 0 && decode > 0, "need at least one token each");
        assert!(
            prefill + decode <= self.model().max_seq,
            "sequence {} exceeds max_seq {}",
            prefill + decode,
            self.model().max_seq
        );
        let prefill_phase = self.simulate_prefill(prefill);
        let mut breakdown = prefill_phase.breakdown;
        let mut decode_cycles = 0u64;
        for t in 0..decode {
            let timing = self.simulate_token(prefill + t + 1, TokenPhase::Decode, false);
            decode_cycles += timing.total.as_u64();
            breakdown += timing.breakdown;
        }
        let freq = self.arch().freq();
        let prefill_ms = prefill_phase.cycles.to_millis(freq);
        let decode_ms = looplynx_sim::time::Cycles::new(decode_cycles).to_millis(freq);
        let total_s = (prefill_ms + decode_ms) / 1e3;
        let energy = fpga_energy(self.arch(), total_s, decode, 1.0);
        GenerationReport {
            nodes: self.arch().nodes(),
            prefill_tokens: prefill,
            decode_tokens: decode,
            prefill_ms,
            decode_ms,
            breakdown,
            energy,
        }
    }
}

/// Per-node functional state: weight shards, the node's head-slice of the
/// paged multi-sequence KV arena, and persistent working memory (attention
/// scratch plus batched-GEMM buffers) reused across layers, tokens and
/// decode steps instead of reallocating.
#[derive(Debug, Clone, Serialize, Deserialize)]
struct NodeState {
    weights: NodeWeights,
    arena: PagedKvArena,
    scratch: AttnScratch,
    /// The node's full per-stage output, row-major `batch × out_features`.
    /// With one row shard this is the GEMM destination itself (swapped in
    /// from the shard slab); with several it is the stitched slabs.
    gemm_out: Vec<f32>,
    /// The node's attention output, row-major `batch × shard_width`; row
    /// shards write disjoint row blocks of it in place.
    attn_out: Vec<f32>,
    /// Per-row-shard working memory (`row_shards` entries).
    shards: Vec<ShardScratch>,
}

/// Working memory owned by one row shard of one node: GEMM slab buffers
/// (the shard's weight-row range × the whole batch) plus attention
/// scratch for the batch rows the shard attends. Purely scratch — every
/// buffer is overwritten before use.
#[derive(Debug, Clone, Default)]
struct ShardScratch {
    acc: Vec<i32>,
    out: Vec<f32>,
    attn: AttnScratch,
}

/// Scratch holds no semantic state (every buffer is overwritten before
/// use), so node equality is weights + arena only.
impl PartialEq for NodeState {
    fn eq(&self, other: &Self) -> bool {
        self.weights == other.weights && self.arena == other.arena
    }
}

/// Runs `f` once per node — the data-parallel section between two ring
/// synchronizations. Nodes are data-independent there (each touches only
/// its own shard and slot arena), so when a [`WorkerPool`] is supplied the
/// closures run on its persistent per-node threads (spawned once per
/// engine, not per section — the old `std::thread::scope` paid a
/// spawn/join `layers × stages` times per token). Results are collected
/// in node order, which makes the pooled path bit-identical to the
/// sequential one: the per-node computation is untouched and gathers see
/// shards in the same order.
fn par_map_nodes<T: Send>(
    nodes: &mut [NodeState],
    pool: Option<&WorkerPool>,
    f: impl Fn(usize, &mut NodeState) -> T + Sync,
) -> Vec<T> {
    match pool {
        Some(pool) if nodes.len() >= 2 => {
            let f = &f;
            pool.run(nodes.iter_mut().enumerate().map(|(i, n)| {
                let job: Box<dyn FnOnce() -> T + Send + '_> = Box::new(move || f(i, n));
                job
            }))
        }
        _ => nodes.iter_mut().enumerate().map(|(i, n)| f(i, n)).collect(),
    }
}

/// Runs a batch of prepared jobs — one per (node, row-shard) — on the
/// pool when present, else sequentially on the caller. Results are
/// discarded (jobs communicate through the disjoint buffers they
/// captured), so sequential and pooled execution are trivially
/// bit-identical: each job touches only its own slab.
fn run_jobs(pool: Option<&WorkerPool>, jobs: Vec<Box<dyn FnOnce() + Send + '_>>) {
    match pool {
        Some(pool) if jobs.len() >= 2 => {
            pool.run(jobs);
        }
        _ => {
            for job in jobs {
                job();
            }
        }
    }
}

/// Smallest `d_model` for which threading per-node stages pays for the
/// thread spawn/join overhead (below it, a node's whole shard pass is
/// cheaper than dispatching a thread).
const THREADING_MIN_D_MODEL: usize = 256;

/// Most batch-row shards a node's batched stages split into. Beyond this
/// the per-shard GEMM slabs get too thin to amortize dispatch (and
/// host-side stitching starts to show), so extra cores go unused rather
/// than oversubscribed.
const MAX_ROW_SHARDS: usize = 4;

/// Smallest per-worker working set (weight or KV bytes touched) for which
/// dispatching a pool job pays for the channel round-trip. Stages below
/// this run sequentially even on a threaded engine — the per-dispatch
/// work-size gate that keeps small shapes single-threaded (a tiny model's
/// whole per-node stage costs less than waking a worker).
const MIN_DISPATCH_BYTES: usize = 1 << 18;

/// Applies the work-size gate: the pool, but only when each worker's
/// share of the stage touches at least [`MIN_DISPATCH_BYTES`].
fn gate(pool: Option<&WorkerPool>, per_worker_bytes: usize) -> Option<&WorkerPool> {
    pool.filter(|_| per_worker_bytes >= MIN_DISPATCH_BYTES)
}

/// Splits a flat row-major `rows × width` buffer into one contiguous
/// block per row shard, matching [`split_range`]`(rows, parts, s)` — the
/// disjoint `&mut` windows the attention phase hands its workers.
fn split_row_chunks<T>(
    mut buf: &mut [T],
    rows: usize,
    width: usize,
    parts: usize,
) -> Vec<&mut [T]> {
    let mut out = Vec::with_capacity(parts);
    for s in 0..parts {
        let len = split_range(rows, parts, s).len() * width;
        let (head, tail) = buf.split_at_mut(len);
        out.push(head);
        buf = tail;
    }
    out
}

/// One sharded batched linear over every node: each (node, row-shard)
/// worker computes its weight-row range of `lin(node)`'s output into its
/// own slab (`forward_batch_scaled_range_into`), optionally applying the
/// node-local GELU (elementwise, so per-slab application equals
/// whole-output application bit for bit); the host then stitches each
/// node's slabs side by side into `gemm_out` (`batch × out_features`
/// row-major). With one shard the slab *is* the full output and is
/// swapped in instead of copied. Because no dot product is ever split
/// across shards, the stitched result is bit-identical to the unsharded
/// `forward_batch_scaled_into` for any shard count.
#[allow(clippy::too_many_arguments)]
fn sharded_linear_phase(
    nodes: &mut [NodeState],
    pool: Option<&WorkerPool>,
    row_shards: usize,
    b: usize,
    lin: fn(&NodeWeights, usize) -> &QuantLinear,
    layer: usize,
    xmat: &Matrix<i8>,
    scales: &[f32],
    gelu: bool,
) {
    let width = xmat.cols();
    let mut jobs: Vec<Box<dyn FnOnce() + Send + '_>> = Vec::with_capacity(nodes.len() * row_shards);
    let mut per_worker_bytes = usize::MAX;
    for node in nodes.iter_mut() {
        let NodeState {
            weights, shards, ..
        } = node;
        let linear = lin(weights, layer);
        let out_rows = linear.out_features();
        per_worker_bytes = per_worker_bytes.min(out_rows * width / row_shards.max(1));
        for (s, shard) in shards.iter_mut().enumerate() {
            let range = split_range(out_rows, row_shards, s);
            jobs.push(Box::new(move || {
                linear.forward_batch_scaled_range_into(
                    xmat,
                    scales,
                    range,
                    &mut shard.acc,
                    &mut shard.out,
                );
                if gelu {
                    gelu_in_place(&mut shard.out);
                }
            }));
        }
    }
    run_jobs(gate(pool, per_worker_bytes), jobs);
    // Stitch slabs into each node's full output.
    for node in nodes.iter_mut() {
        let out_rows = lin(&node.weights, layer).out_features();
        if row_shards == 1 {
            std::mem::swap(&mut node.gemm_out, &mut node.shards[0].out);
        } else {
            node.gemm_out.clear();
            node.gemm_out.resize(b * out_rows, 0.0);
            for (s, shard) in node.shards.iter().enumerate() {
                let range = split_range(out_rows, row_shards, s);
                let cols = range.len();
                for t in 0..b {
                    node.gemm_out[t * out_rows + range.start..t * out_rows + range.end]
                        .copy_from_slice(&shard.out[t * cols..(t + 1) * cols]);
                }
            }
        }
    }
}

/// Which sequence each batch row attends (and how far).
#[derive(Clone, Copy)]
enum AttnRows<'a> {
    /// Batched decode: row `t` is one new token of sequence `slots[t]`
    /// (valid length = its current position + 1).
    Decode { slots: &'a [usize] },
    /// Batched prefill: row `t` is prompt token `start + t` of one slot
    /// (causal: valid length = `start + t + 1`).
    Prefill { slot: usize, start: usize },
}

/// The row-partitioned attention phase: every (node, row-shard) worker
/// attends its contiguous block of batch rows over the node's immutable
/// paged KV view (all appends for the step already happened), writing
/// each row's heads directly into its strip of the node's flat
/// `attn_out` buffer. Row blocks are disjoint and each row's computation
/// is byte-for-byte the single-row path, so any shard count and any
/// execution order produce identical buffers.
#[allow(clippy::too_many_arguments)]
fn batch_attention_phase(
    nodes: &mut [NodeState],
    pool: Option<&WorkerPool>,
    row_shards: usize,
    layer: usize,
    rows: AttnRows<'_>,
    b: usize,
    d_head: usize,
    mode: AttnMode,
) {
    let mut jobs: Vec<Box<dyn FnOnce() + Send + '_>> = Vec::with_capacity(nodes.len() * row_shards);
    let mut per_worker_bytes = usize::MAX;
    for node in nodes.iter_mut() {
        let NodeState {
            weights,
            arena,
            gemm_out,
            attn_out,
            shards,
            ..
        } = node;
        let head_range = weights.head_range.clone();
        let w = head_range.len() * d_head;
        // KV bytes one worker streams: Σ valid_len × shard width / shards.
        let kv_tokens: usize = match rows {
            AttnRows::Decode { slots } => slots.iter().map(|&s| arena.pos(s) + 1).sum(),
            AttnRows::Prefill { start, .. } => (0..b).map(|t| start + t + 1).sum(),
        };
        per_worker_bytes = per_worker_bytes.min(2 * kv_tokens * w / row_shards.max(1));
        attn_out.clear();
        attn_out.resize(b * w, 0.0);
        let gemm_out = &*gemm_out;
        let arena = &*arena;
        for ((s, shard), chunk) in shards
            .iter_mut()
            .enumerate()
            .zip(split_row_chunks(attn_out, b, w, row_shards))
        {
            let row_range = split_range(b, row_shards, s);
            let head_range = head_range.clone();
            jobs.push(Box::new(move || {
                for (t, row_out) in row_range.clone().zip(chunk.chunks_exact_mut(w)) {
                    let (slot, valid_len) = match rows {
                        AttnRows::Decode { slots } => (slots[t], arena.pos(slots[t]) + 1),
                        AttnRows::Prefill { slot, start } => (slot, start + t + 1),
                    };
                    let q = &gemm_out[t * 3 * w..t * 3 * w + w];
                    let view = arena.layer_view(slot, layer);
                    match mode {
                        AttnMode::Materialized => attend_heads_segments_to(
                            q,
                            |h| view.segments(h),
                            head_range.clone(),
                            head_range.start,
                            d_head,
                            valid_len,
                            &mut shard.attn,
                            row_out,
                        ),
                        AttnMode::Fused => attend_heads_fused_segments_to(
                            q,
                            |h| view.segments(h),
                            head_range.clone(),
                            head_range.start,
                            d_head,
                            valid_len,
                            &mut shard.attn,
                            row_out,
                        ),
                    }
                }
            }));
        }
    }
    run_jobs(gate(pool, per_worker_bytes), jobs);
}

/// Flat counterpart of one ring all-gather per batch row: for every row
/// `t`, node shards land in node order at offset `node × shard_w`,
/// exactly the router's node-id offset rule. [`RingMode::Exact`] copies
/// the f32 shard; [`RingMode::Quantized`] quantizes each (row, node)
/// shard with its own per-shard scale and dequantizes — operation for
/// operation what [`Router::all_gather`] does per row, so the flat form
/// is bit-identical to gathering row vectors.
fn gather_rows_flat(
    router: &Router,
    nodes: &mut [NodeState],
    src: GatherSrc,
    b: usize,
    shard_w: usize,
    q8: &mut Vec<i8>,
    out: &mut Vec<f32>,
) {
    let n = nodes.len();
    if n == 1 && router.mode() == RingMode::Exact {
        // The 1-node exact gather is the identity; move the buffer out
        // instead of copying it (the source is scratch, overwritten by
        // the next stage) — the flat twin of `all_gather_owned`'s
        // single-shard fast path.
        std::mem::swap(out, src.buf(&mut nodes[0]));
        return;
    }
    out.clear();
    out.reserve(b * n * shard_w);
    for t in 0..b {
        for node in nodes.iter_mut() {
            let shard = &src.buf(node)[t * shard_w..(t + 1) * shard_w];
            match router.mode() {
                RingMode::Exact => out.extend_from_slice(shard),
                RingMode::Quantized => {
                    // quant unit → datapacks → router → dequantize at the
                    // consumer; per-shard scale travels in the header.
                    let scale = quantize_into(shard, q8);
                    out.extend(q8.iter().map(|&q| q as f32 * scale));
                }
            }
        }
    }
}

/// Which per-node buffer [`gather_rows_flat`] gathers from.
#[derive(Clone, Copy)]
enum GatherSrc {
    /// The node's attention output (`attn_out`).
    Attn,
    /// The node's stitched GEMM output (`gemm_out`).
    Gemm,
}

impl GatherSrc {
    fn buf(self, node: &mut NodeState) -> &mut Vec<f32> {
        match self {
            GatherSrc::Attn => &mut node.attn_out,
            GatherSrc::Gemm => &mut node.gemm_out,
        }
    }
}

/// Default KV page size in tokens for engines built without explicit page
/// geometry ([`DistributedGpt2::with_slots`] /
/// [`DistributedGpt2::new`]).
pub const DEFAULT_PAGE_TOKENS: usize = 16;

/// Functionally-correct multi-node W8A8 inference over the simulated ring.
///
/// Two surfaces share one set of weight shards and one slot arena per
/// node:
///
/// * the **single-sequence** API ([`DistributedGpt2::prefill`],
///   [`DistributedGpt2::decode_step`], the [`Autoregressive`] driver),
///   which always runs in slot 0 — engines built with
///   [`DistributedGpt2::new`] pre-acquire it;
/// * the **multi-sequence** API ([`DistributedGpt2::acquire_slot`],
///   [`DistributedGpt2::prefill_slot`],
///   [`DistributedGpt2::decode_step_batch`]), the continuous-batching
///   substrate, available on engines built with
///   [`DistributedGpt2::with_slots`].
///
/// Do not drive slot 0 through both surfaces at once: on a `with_slots`
/// engine, use the slot API exclusively.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DistributedGpt2 {
    model_cfg: ModelConfig,
    router: Router,
    nodes: Vec<NodeState>,
    // Host-side tables (embedding + final LN replicated to every node).
    host: Gpt2Model,
    /// Execute per-node stages on the persistent worker pool
    /// (bit-identical either way; see [`DistributedGpt2::set_threaded`]).
    threaded: bool,
    /// Batch-row shards per node in the batched hot paths: each node's
    /// GEMMs split into that many weight-row slabs and its attention into
    /// that many batch-row blocks, all bit-identical to one shard (see
    /// [`DistributedGpt2::set_row_shards`]).
    row_shards: usize,
    /// Attention kernel for every functional path (default
    /// [`AttnMode::Materialized`], the bit-exact oracle; fused is
    /// opt-in via [`DistributedGpt2::set_attn_mode`]).
    attn_mode: AttnMode,
    /// Long-lived workers, one per (node, row-shard); `Some` iff
    /// `threaded` and there is more than one worker's worth of jobs.
    pool: Option<WorkerPool>,
    /// Content-addressed prefix cache (`None` = disabled, the default);
    /// see [`DistributedGpt2::enable_prefix_cache`].
    prefix_cache: Option<PrefixCacheState>,
}

/// Engine-side state of the content-addressed prefix cache: the index
/// pairing hash chains with pinned arena pages, plus each resident
/// slot's fed-token history (the ground truth the index registers —
/// block tables alone don't say which tokens a page holds).
#[derive(Debug, Clone, PartialEq)]
struct PrefixCacheState {
    index: PrefixIndex,
    /// Tokens fed to each slot since acquisition (prefix-mapped tokens
    /// included), indexed by slot. Cleared on acquire and release.
    fed: Vec<Vec<u32>>,
}

impl DistributedGpt2 {
    /// Partitions `model`'s weights across `nodes` ring nodes with a
    /// single resident sequence (slot 0, pre-acquired, `max_seq`
    /// capacity) — the paper's one-generation-at-a-time operating point.
    ///
    /// Node-parallel threading defaults to on when there is more than one
    /// node, the host has more than one core, and the model is large
    /// enough for a per-node stage to outweigh job dispatch; override
    /// with [`DistributedGpt2::set_threaded`].
    ///
    /// # Errors
    ///
    /// Returns [`PartitionError`] if the model does not divide.
    pub fn new(model: &Gpt2Model, nodes: usize, mode: RingMode) -> Result<Self, PartitionError> {
        let max_seq = model.config().max_seq;
        let mut engine = Self::with_slots(model, nodes, mode, 1, max_seq)?;
        for n in &mut engine.nodes {
            // lint: allow(panic_free) — engine invariant; a panic poisons the backend via catch_unwind
            let slot = n.arena.acquire().expect("fresh arena has a free slot");
            debug_assert_eq!(slot, 0);
        }
        Ok(engine)
    }

    /// Partitions `model`'s weights across `nodes` ring nodes with
    /// `slots` resident-sequence slots of `capacity` tokens each on every
    /// node — the substrate the functional serving backend batches over.
    /// All slots start free.
    ///
    /// Storage is the paged arena with the pool sized to
    /// `slots × ⌈capacity / page⌉` pages, so every slot can always reach
    /// its full capacity — page grants never fail on engines built here.
    /// Use [`DistributedGpt2::with_paged_slots`] to oversubscribe.
    ///
    /// # Errors
    ///
    /// Returns [`PartitionError`] if the model does not divide.
    ///
    /// # Panics
    ///
    /// Panics if `slots` is zero or `capacity` is zero or exceeds the
    /// model's `max_seq`.
    pub fn with_slots(
        model: &Gpt2Model,
        nodes: usize,
        mode: RingMode,
        slots: usize,
        capacity: usize,
    ) -> Result<Self, PartitionError> {
        let pages = slots * capacity.div_ceil(DEFAULT_PAGE_TOKENS);
        Self::with_paged_slots(
            model,
            nodes,
            mode,
            slots,
            capacity,
            DEFAULT_PAGE_TOKENS,
            pages,
        )
    }

    /// Partitions `model`'s weights like [`DistributedGpt2::with_slots`]
    /// but with explicit page geometry: `page_tokens` tokens per KV page
    /// and `pages` pages per layer pool on every node. When
    /// `pages × page_tokens < slots × capacity` the engine is
    /// **oversubscribed**: more sequences can be resident than worst-case
    /// KV bytes would allow, and operations surface
    /// [`looplynx_model::paged::PagesExhausted`]-shaped pressure that the
    /// serving layer answers with waiting or preemption.
    ///
    /// # Errors
    ///
    /// Returns [`PartitionError`] if the model does not divide.
    ///
    /// # Panics
    ///
    /// Panics if any dimension is zero, `capacity` exceeds the model's
    /// `max_seq`, or the pool cannot hold even one sequence at
    /// `capacity`.
    #[allow(clippy::too_many_arguments)]
    pub fn with_paged_slots(
        model: &Gpt2Model,
        nodes: usize,
        mode: RingMode,
        slots: usize,
        capacity: usize,
        page_tokens: usize,
        pages: usize,
    ) -> Result<Self, PartitionError> {
        let cfg = model.config().clone();
        assert!(
            capacity > 0 && capacity <= cfg.max_seq,
            "slot capacity must be 1..={}",
            cfg.max_seq
        );
        let shards = shard_weights(model.weights(), &cfg, nodes)?;
        let d_head = cfg.d_head();
        // Sizing heuristic: use spare cores for batch-row sharding within
        // each node, capped so nodes × row_shards never exceeds the
        // host's cores (and by the point where slabs get dispatch-bound).
        let cores = std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get);
        let big = cfg.d_model >= THREADING_MIN_D_MODEL;
        let row_shards = if cores > 1 && big {
            (cores / nodes).clamp(1, MAX_ROW_SHARDS)
        } else {
            1
        };
        let threaded = cores > 1 && big && nodes * row_shards > 1;
        let node_states: Vec<NodeState> = shards
            .into_iter()
            .map(|weights| NodeState {
                arena: PagedKvArena::new(
                    cfg.layers,
                    d_head,
                    weights.head_range.len(),
                    slots,
                    capacity,
                    page_tokens,
                    pages,
                ),
                weights,
                scratch: AttnScratch::new(),
                gemm_out: Vec::new(),
                attn_out: Vec::new(),
                shards: vec![ShardScratch::default(); row_shards],
            })
            .collect();
        let pool = threaded.then(|| WorkerPool::new(nodes * row_shards));
        Ok(DistributedGpt2 {
            router: Router::new(nodes, mode),
            nodes: node_states,
            host: model.clone(),
            model_cfg: cfg,
            threaded,
            row_shards,
            attn_mode: AttnMode::default(),
            pool,
            prefix_cache: None,
        })
    }

    /// Ring size.
    pub fn nodes(&self) -> usize {
        self.nodes.len()
    }

    /// Whether per-node stages run on the persistent worker pool.
    pub fn threaded(&self) -> bool {
        self.threaded
    }

    /// Forces node-parallel threading on or off. Results are bit-identical
    /// in both modes (pinned by tests); only wall-clock changes. Turning
    /// threading on creates the worker pool if absent; turning it off
    /// tears the pool down.
    pub fn set_threaded(&mut self, threaded: bool) {
        self.threaded = threaded;
        self.resize_pool();
    }

    /// Batch-row shards per node in the batched hot paths.
    pub fn row_shards(&self) -> usize {
        self.row_shards
    }

    /// The attention kernel this engine evaluates.
    pub fn attn_mode(&self) -> AttnMode {
        self.attn_mode
    }

    /// Selects the attention kernel. [`AttnMode::Fused`] is opt-in: its
    /// results are close to — deterministic and geometry-invariant, but
    /// not bit-identical with — the materialized default, so engines
    /// compared against the reference model must stay materialized.
    pub fn set_attn_mode(&mut self, mode: AttnMode) {
        self.attn_mode = mode;
    }

    /// Forces the per-node batch-row shard count. Results are
    /// bit-identical for every count (pinned by tests); only the number
    /// of independent jobs per stage changes. The worker pool is resized
    /// to `nodes × row_shards` when threading is on.
    ///
    /// # Panics
    ///
    /// Panics if `row_shards` is zero.
    pub fn set_row_shards(&mut self, row_shards: usize) {
        assert!(row_shards > 0, "at least one row shard per node");
        self.row_shards = row_shards;
        for node in &mut self.nodes {
            node.shards.resize_with(row_shards, ShardScratch::default);
        }
        self.resize_pool();
    }

    /// (Re)creates or tears down the worker pool to match `threaded` and
    /// the current `nodes × row_shards` job count.
    fn resize_pool(&mut self) {
        let workers = self.nodes.len() * self.row_shards;
        if self.threaded && workers > 1 {
            if self.pool.as_ref().map(WorkerPool::workers) != Some(workers) {
                self.pool = Some(WorkerPool::new(workers));
            }
        } else {
            self.pool = None;
        }
    }

    /// Resident-sequence slots per node.
    pub fn slots(&self) -> usize {
        self.nodes[0].arena.slots()
    }

    /// Slots currently free for admission.
    pub fn free_slots(&self) -> usize {
        self.nodes[0].arena.free_slots()
    }

    /// Token capacity of each slot.
    pub fn slot_capacity(&self) -> usize {
        self.nodes[0].arena.capacity()
    }

    /// KV page size in tokens.
    pub fn page_tokens(&self) -> usize {
        self.nodes[0].arena.page_tokens()
    }

    /// Free KV pages per layer pool (identical on every node and layer —
    /// grants run in lockstep). Backends pre-check this against
    /// [`DistributedGpt2::pages_needed`] before mutating, so page
    /// exhaustion surfaces as a typed error instead of a poisoning panic.
    pub fn free_pages(&self) -> usize {
        self.nodes[0].arena.free_pages()
    }

    /// Pages in each layer pool.
    pub fn total_pages(&self) -> usize {
        self.nodes[0].arena.total_pages()
    }

    /// Pages a grant for `additional` more tokens in resident `slot`
    /// would need (0 when the granted pages already cover them).
    ///
    /// # Panics
    ///
    /// Panics if `slot` is out of range.
    pub fn pages_needed(&self, slot: usize, additional: usize) -> usize {
        self.nodes[0].arena.pages_needed(slot, additional)
    }

    /// Pages a *fresh* sequence of `tokens` tokens would need.
    pub fn pages_for_tokens(&self, tokens: usize) -> usize {
        tokens.div_ceil(self.page_tokens())
    }

    /// Turns on the content-addressed prefix cache: finished KV pages
    /// are registered under hash-chained identities (see
    /// [`looplynx_model::prefix`]) and later prompts sharing a prefix
    /// map them read-only via [`DistributedGpt2::prefix_attach`] instead
    /// of re-prefilling. Cold cached pages are reclaimed automatically
    /// (LRU by last hit) whenever a grant would otherwise starve.
    ///
    /// # Panics
    ///
    /// Panics if any slot is already resident — histories of already-fed
    /// sequences are unknown, so the cache must start with the arena.
    pub fn enable_prefix_cache(&mut self) {
        assert_eq!(
            self.free_slots(),
            self.slots(),
            "enable the prefix cache before admitting sequences"
        );
        self.prefix_cache = Some(PrefixCacheState {
            index: PrefixIndex::new(self.page_tokens()),
            fed: vec![Vec::new(); self.slots()],
        });
    }

    /// Whether the prefix cache is on.
    pub fn prefix_cache_enabled(&self) -> bool {
        self.prefix_cache.is_some()
    }

    /// Prefix-cache traffic counters, `None` while disabled.
    pub fn prefix_stats(&self) -> Option<PrefixIndexStats> {
        self.prefix_cache.as_ref().map(|c| c.index.stats())
    }

    /// Pages currently pinned by the prefix cache (0 while disabled).
    pub fn cached_prefix_pages(&self) -> usize {
        self.prefix_cache.as_ref().map_or(0, |c| c.index.len())
    }

    /// Pages a grant can draw on right now: free pages plus cached
    /// pages held by nothing but the cache (evicting those frees them).
    /// Backends pre-check *this* — not [`DistributedGpt2::free_pages`]
    /// — so a full-but-cold cache never turns into spurious
    /// page-exhaustion errors.
    pub fn available_pages(&self) -> usize {
        let free = self.nodes[0].arena.free_pages();
        match &self.prefix_cache {
            Some(c) => free + c.index.evictable_pages(self.nodes[0].arena.refcounts()),
            None => free,
        }
    }

    /// Pages of `slot` not shared with the cache or other slots — the
    /// amount preempting `slot` would actually return to the free pool.
    ///
    /// # Panics
    ///
    /// Panics if `slot` is out of range.
    pub fn unshared_pages(&self, slot: usize) -> usize {
        self.nodes[0].arena.unshared_pages(slot)
    }

    /// Maps the longest cached prefix of `prompt` into freshly acquired
    /// `slot` and returns the token count covered (0 on a miss or while
    /// the cache is off). The caller then prefills **only the suffix**
    /// `&prompt[hit..]` — the mapped pages already hold the prefix's KV
    /// rows, shared read-only (copy-on-write isolates any append into a
    /// partially-filled boundary page). Mapping allocates nothing, so
    /// it cannot fail on page pressure.
    ///
    /// # Panics
    ///
    /// Panics if `slot` already has history (attach pairs with
    /// acquisition) or `prompt` exceeds the slot capacity.
    pub fn prefix_attach(&mut self, slot: usize, prompt: &[u32]) -> usize {
        let Some(cache) = self.prefix_cache.as_mut() else {
            return 0;
        };
        let m = cache.index.lookup(prompt);
        if m.tokens == 0 {
            return 0;
        }
        for n in &mut self.nodes {
            n.arena.map_shared(slot, &m.pages, m.tokens);
        }
        cache.fed[slot].clear();
        cache.fed[slot].extend_from_slice(&prompt[..m.tokens]);
        m.tokens
    }

    /// Registers `slot`'s finished pages with the prefix index: every
    /// full page, plus the final partial page as a chain terminator iff
    /// `include_partial` (only safe once the slot stops appending).
    /// Newly indexed pages get one cache pin on every node. No-op while
    /// the cache is off.
    fn prefix_register(&mut self, slot: usize, include_partial: bool) {
        let Some(cache) = self.prefix_cache.as_mut() else {
            return;
        };
        let fed = &cache.fed[slot];
        let page_tokens = self.nodes[0].arena.page_tokens();
        let len = if include_partial {
            fed.len()
        } else {
            fed.len() - fed.len() % page_tokens
        };
        if len == 0 {
            return;
        }
        let pages = self.nodes[0].arena.slot_pages(slot);
        let newly = cache.index.register(&fed[..len], pages);
        for page in newly {
            for n in &mut self.nodes {
                n.arena.retain_page(page);
            }
        }
    }

    /// Drops cold cache pins (LRU by last hit, sole-owner pages only)
    /// until at least `needed` pages are free or nothing evictable
    /// remains. Runs before every grant so cached-but-idle pages never
    /// starve live sequences.
    fn evict_cached_for(&mut self, needed: usize) {
        while self.nodes[0].arena.free_pages() < needed {
            let Some(cache) = self.prefix_cache.as_mut() else {
                return;
            };
            let pages = cache.index.evict_lru(self.nodes[0].arena.refcounts());
            if pages.is_empty() {
                return;
            }
            for page in pages {
                for n in &mut self.nodes {
                    n.arena.release_page(page);
                }
            }
        }
    }

    /// Total int8 bytes of `node`'s KV page pools (occupancy-independent
    /// storage commitment; compare with [`DistributedGpt2::node_kv_bytes`]
    /// for live usage).
    pub fn node_kv_pool_bytes(&self, node: usize) -> usize {
        self.nodes[node].arena.pool_byte_len()
    }

    /// Grants pages for the upcoming appends on every node, in lockstep.
    ///
    /// # Panics
    ///
    /// Panics on page exhaustion — callers that can see exhaustion at
    /// runtime (the functional backend) pre-check
    /// [`DistributedGpt2::free_pages`] and surface a typed error instead
    /// of ever reaching this panic.
    fn reserve_for(&mut self, entries: &[(usize, usize)]) {
        if self.prefix_cache.is_some() {
            let needed = entries
                .iter()
                .map(|&(slot, additional)| self.nodes[0].arena.pages_needed(slot, additional))
                .sum();
            self.evict_cached_for(needed);
        }
        for node in &mut self.nodes {
            node.arena
                .try_reserve_batch(entries)
                // lint: allow(panic_free) — engine invariant; a panic poisons the backend via catch_unwind
                .expect("KV page pool exhausted: pre-check free_pages before this call");
        }
    }

    /// Claims the lowest-index free slot on every node, or `None` when
    /// all slots are resident.
    pub fn acquire_slot(&mut self) -> Option<usize> {
        if self.nodes[0].arena.free_slots() == 0 {
            return None;
        }
        let acquired: Vec<usize> = self
            .nodes
            .iter_mut()
            // lint: allow(panic_free) — engine invariant; a panic poisons the backend via catch_unwind
            .map(|n| n.arena.acquire().expect("node arenas evolve in lockstep"))
            .collect();
        let slot = acquired[0];
        debug_assert!(
            acquired.iter().all(|&s| s == slot),
            "arenas out of lockstep"
        );
        if let Some(cache) = self.prefix_cache.as_mut() {
            cache.fed[slot].clear();
        }
        Some(slot)
    }

    /// Returns `slot` to the free list on every node and reports how
    /// many pages actually came free (shared pages survive their other
    /// holders — a cache pin or another slot's mapping keeps them
    /// resident, so the count can be less than the table length).
    ///
    /// With the prefix cache on, the slot's pages are indexed first
    /// (full pages plus the final partial as a terminator), so a
    /// sequence's KV outlives it for future prompts sharing the prefix.
    ///
    /// # Panics
    ///
    /// Panics if `slot` is out of range or not in use.
    pub fn release_slot(&mut self, slot: usize) -> usize {
        self.prefix_register(slot, true);
        if let Some(cache) = self.prefix_cache.as_mut() {
            cache.fed[slot].clear();
        }
        let freed: Vec<usize> = self
            .nodes
            .iter_mut()
            .map(|n| n.arena.release(slot))
            .collect();
        debug_assert!(
            freed.iter().all(|&f| f == freed[0]),
            "arenas out of lockstep"
        );
        freed[0]
    }

    /// Tokens processed by the sequence resident in `slot`.
    ///
    /// # Panics
    ///
    /// Panics if `slot` is out of range.
    pub fn slot_pos(&self, slot: usize) -> usize {
        self.nodes[0].arena.pos(slot)
    }

    /// Tokens processed so far by the single-sequence surface (slot 0).
    pub fn seq_len(&self) -> usize {
        self.slot_pos(0)
    }

    /// Per-node int8 KV bytes currently cached across all slots (shows
    /// the head-wise footprint reduction).
    pub fn node_kv_bytes(&self, node: usize) -> usize {
        self.nodes[node].arena.byte_len()
    }

    /// Materializes `slot`'s entire KV state as contiguous per-layer
    /// caches, in `(node, layer)` order. [`LayerKvCache`] equality is
    /// content-based, so two engines agree here exactly when their KV
    /// states hold the same tokens — regardless of page geometry or how
    /// the prompt was chunked. This is the differential-test hook; it
    /// copies every byte, so keep it out of hot paths.
    pub fn materialized_kv(&self, slot: usize) -> Vec<LayerKvCache> {
        let layers = self.model_cfg.layers;
        self.nodes
            .iter()
            .flat_map(|n| (0..layers).map(|l| n.arena.materialize(slot, l)))
            .collect()
    }

    /// Resets the single-sequence surface: clears slot 0's caches on every
    /// node and its position.
    pub fn reset(&mut self) {
        if let Some(cache) = self.prefix_cache.as_mut() {
            // Reset discards the sequence, so nothing gets registered.
            cache.fed[0].clear();
        }
        for n in &mut self.nodes {
            if n.arena.in_use(0) {
                n.arena.release(0);
                // lint: allow(panic_free) — engine invariant; a panic poisons the backend via catch_unwind
                let slot = n.arena.acquire().expect("slot 0 just freed");
                debug_assert_eq!(slot, 0);
            }
        }
    }

    /// Runs one token of the sequence in `slot` through the distributed
    /// pipeline; returns logits when requested.
    ///
    /// Every per-node section between two ring synchronizations runs
    /// through [`par_map_nodes`] — sequential or on the persistent worker
    /// pool depending on [`DistributedGpt2::threaded`], bit-identical
    /// either way.
    fn forward_token_in(&mut self, slot: usize, token: u32, want_logits: bool) -> Option<Vec<f32>> {
        self.reserve_for(&[(slot, 1)]);
        let cfg = &self.model_cfg;
        let d = cfg.d_model;
        let d_head = cfg.d_head();
        let n = self.nodes.len();
        let pos = self.nodes[0].arena.pos(slot);
        // Work-size gate per stage: each hint is the weight (plus KV)
        // bytes one node streams, the dominant cost of its job — tiny
        // models fall below MIN_DISPATCH_BYTES and stay sequential.
        let d_ff = cfg.d_ff;
        let vocab = cfg.vocab;
        let attn_mode = self.attn_mode;
        let pool = self.pool.as_ref();
        let qkv_pool = gate(pool, (3 * d * d + 2 * (pos + 1) * d) / n);
        let proj_pool = gate(pool, d * d / n);
        let mlp_pool = gate(pool, d_ff * d / n);
        let lm_pool = gate(pool, vocab * d / n);

        // Host distributes the same full embedding vector to all nodes.
        let mut x = self.host.embed(token, pos);

        // Host-side working buffers, hoisted out of the layer loop so the
        // replicated critical-path operators (LN, quantize, residual)
        // allocate once per token instead of once per layer.
        let mut h = Vec::new();
        let mut q8 = Vec::new();
        let mut x1 = Vec::new();

        for layer in 0..cfg.layers {
            // LN1 computed redundantly on every node (identical result).
            layernorm_into(&x, &self.nodes[0].weights.layers[layer].ln1, &mut h);
            let h_scale = quantize_into(&h, &mut q8);

            // QKV projection: head-aligned shards, attention node-local.
            let attn_shards = par_map_nodes(&mut self.nodes, qkv_pool, |_, node| {
                let NodeState {
                    weights,
                    arena,
                    scratch,
                    ..
                } = node;
                let shard = &weights.layers[layer];
                let w = d / n;
                let mut qkv = Vec::new();
                shard.qkv.forward_raw_into(&q8, h_scale, &mut qkv);
                let (q, kv) = qkv.split_at(w);
                let (k, v) = kv.split_at(w);
                arena.append_at(slot, layer, pos, k, v);
                let head_range = weights.head_range.clone();
                let view = arena.layer_view(slot, layer);
                let mut attn = Vec::new();
                match attn_mode {
                    AttnMode::Materialized => attend_heads_segments_into(
                        q,
                        |h| view.segments(h),
                        head_range.clone(),
                        head_range.start,
                        d_head,
                        pos + 1,
                        scratch,
                        &mut attn,
                    ),
                    AttnMode::Fused => attend_heads_fused_segments_into(
                        q,
                        |h| view.segments(h),
                        head_range.clone(),
                        head_range.start,
                        d_head,
                        pos + 1,
                        scratch,
                        &mut attn,
                    ),
                }
                attn
            });
            let attn = self.router.all_gather_owned(attn_shards);

            // Output projection shards + gather, then residual.
            let a_scale = quantize_into(&attn, &mut q8);
            let proj_shards = par_map_nodes(&mut self.nodes, proj_pool, |_, node| {
                let mut out = Vec::new();
                node.weights.layers[layer]
                    .proj
                    .forward_raw_into(&q8, a_scale, &mut out);
                out
            });
            let proj = self.router.all_gather_owned(proj_shards);
            residual_add_into(&x, &proj, &mut x1);

            // MLP: FC1 + node-local GELU, gather, FC2, gather, residual.
            layernorm_into(&x1, &self.nodes[0].weights.layers[layer].ln2, &mut h);
            let h2_scale = quantize_into(&h, &mut q8);
            let gelu_shards = par_map_nodes(&mut self.nodes, mlp_pool, |_, node| {
                let mut f1 = Vec::new();
                node.weights.layers[layer]
                    .fc1
                    .forward_raw_into(&q8, h2_scale, &mut f1);
                gelu_in_place(&mut f1);
                f1
            });
            let g = self.router.all_gather_owned(gelu_shards);
            let g_scale = quantize_into(&g, &mut q8);
            let f2_shards = par_map_nodes(&mut self.nodes, mlp_pool, |_, node| {
                let mut out = Vec::new();
                node.weights.layers[layer]
                    .fc2
                    .forward_raw_into(&q8, g_scale, &mut out);
                out
            });
            let f2 = self.router.all_gather_owned(f2_shards);
            residual_add_into(&x1, &f2, &mut x);
        }
        for node in &mut self.nodes {
            node.arena.advance(slot, 1);
        }
        if let Some(cache) = self.prefix_cache.as_mut() {
            cache.fed[slot].push(token);
        }
        if !want_logits {
            return None;
        }

        // Final LN (replicated) and vocabulary-sharded LM head; the host
        // concatenates logit shards in node order over PCIe.
        layernorm_into(&x, &self.nodes[0].weights.ln_f, &mut h);
        let hf_scale = quantize_into(&h, &mut q8);
        let logits: Vec<f32> = par_map_nodes(&mut self.nodes, lm_pool, |_, node| {
            let mut out = Vec::new();
            node.weights
                .lm_head
                .forward_raw_into(&q8, hf_scale, &mut out);
            out
        })
        .into_iter()
        .flatten()
        .collect();
        Some(logits)
    }

    /// Lazily claims slot 0 for the single-sequence surface. Engines
    /// built with [`DistributedGpt2::new`] pre-acquire it; on a
    /// `with_slots` engine the first `prefill`/`decode_step` claims it
    /// here (the paged arena grants pages only to resident slots).
    fn ensure_primary_slot(&mut self) {
        if self.nodes[0].arena.in_use(0) {
            return;
        }
        for n in &mut self.nodes {
            let slot = n
                .arena
                .acquire()
                // lint: allow(panic_free) — engine invariant; a panic poisons the backend via catch_unwind
                .expect("single-sequence surface needs a free slot");
            debug_assert_eq!(slot, 0, "slot 0 must be the lowest free slot");
        }
    }

    /// Prefill: processes the prompt in slot 0, returns last-token logits.
    ///
    /// # Panics
    ///
    /// Panics if `prompt` is empty.
    pub fn prefill(&mut self, prompt: &[u32]) -> Vec<f32> {
        self.ensure_primary_slot();
        self.prefill_slot(0, prompt)
    }

    /// Decode step on slot 0: one token in, next-token logits out.
    pub fn decode_step(&mut self, token: u32) -> Vec<f32> {
        self.ensure_primary_slot();
        self.forward_token_in(0, token, true)
            // lint: allow(panic_free) — engine invariant; a panic poisons the backend via catch_unwind
            .expect("logits requested")
    }

    /// Prefill `prompt` into `slot` with **shared weight passes**: every
    /// prompt token is a row of one batched GEMM per linear per node (the
    /// functional counterpart of the accelerator's batched-prefill
    /// extension), while attention stays causal per token. Each row is
    /// quantized with its own scale and gathers run per row in node
    /// order, so the logits and the resulting caches are bit-identical
    /// to feeding the prompt token by token.
    ///
    /// Returns the logits after the final prompt token.
    ///
    /// # Panics
    ///
    /// Panics if `prompt` is empty or the slot would overflow its
    /// capacity.
    pub fn prefill_slot(&mut self, slot: usize, prompt: &[u32]) -> Vec<f32> {
        self.prefill_slot_chunk(slot, prompt, true)
            // lint: allow(panic_free) — engine invariant; a panic poisons the backend via catch_unwind
            .expect("logits requested")
    }

    /// One chunk of an incremental prefill: feed `tokens` starting at the
    /// slot's current position. Because prefill starts at `arena.pos(slot)`
    /// and int8 GEMM rows accumulate independently, splitting a prompt into
    /// chunks of any size yields caches and final logits bit-identical to a
    /// single-pass prefill — this is what lets the scheduler interleave
    /// resident decode steps between long-prompt chunks.
    ///
    /// When `want_logits` is `false` the LM head is skipped entirely
    /// (non-final chunks never need logits) and `None` is returned.
    ///
    /// # Panics
    ///
    /// Panics if `tokens` is empty or the slot would overflow its
    /// capacity.
    pub fn prefill_slot_chunk(
        &mut self,
        slot: usize,
        prompt: &[u32],
        want_logits: bool,
    ) -> Option<Vec<f32>> {
        assert!(!prompt.is_empty(), "prompt must not be empty");
        self.reserve_for(&[(slot, prompt.len())]);
        let layers = self.model_cfg.layers;
        let vocab = self.model_cfg.vocab;
        let d = self.model_cfg.d_model;
        let d_head = self.model_cfg.d_head();
        let n = self.nodes.len();
        let b = prompt.len();
        let row_shards = self.row_shards;
        let start = self.nodes[0].arena.pos(slot);

        // Host embeds every prompt token at its absolute position into one
        // flat `b × d` activation buffer.
        let mut xs: Vec<f32> = Vec::with_capacity(b * d);
        for (t, &token) in prompt.iter().enumerate() {
            xs.extend_from_slice(&self.host.embed(token, start + t));
        }

        let mut scratch = StackScratch::default();
        let mut gathered: Vec<f32> = Vec::new();
        for layer in 0..layers {
            // Sharded QKV GEMM per node; append the whole prompt's K/V to
            // the slot, then attend each token causally over its prefix
            // (rows partitioned across the node's row shards).
            let xmat = scratch.stack_flat(&xs, Some(&self.nodes[0].weights.layers[layer].ln1), d);
            sharded_linear_phase(
                &mut self.nodes,
                self.pool.as_ref(),
                row_shards,
                b,
                |w, l| &w.layers[l].qkv,
                layer,
                &xmat,
                &scratch.scales,
                false,
            );
            scratch.reclaim(xmat);
            for node in &mut self.nodes {
                let NodeState {
                    weights,
                    arena,
                    gemm_out,
                    ..
                } = node;
                let w = weights.head_range.len() * d_head;
                for t in 0..b {
                    let row = &gemm_out[t * 3 * w..(t + 1) * 3 * w];
                    let (k, v) = row[w..].split_at(w);
                    arena.append_at(slot, layer, start + t, k, v);
                }
            }
            batch_attention_phase(
                &mut self.nodes,
                self.pool.as_ref(),
                row_shards,
                layer,
                AttnRows::Prefill { slot, start },
                b,
                d_head,
                self.attn_mode,
            );
            gather_rows_flat(
                &self.router,
                &mut self.nodes,
                GatherSrc::Attn,
                b,
                d / n,
                &mut scratch.q8,
                &mut gathered,
            );
            self.finish_layer_batch(layer, b, &mut xs, &mut gathered, &mut scratch);
        }
        for node in &mut self.nodes {
            node.arena.advance(slot, b);
        }
        if self.prefix_cache.is_some() {
            if let Some(cache) = self.prefix_cache.as_mut() {
                cache.fed[slot].extend_from_slice(prompt);
            }
            // Full prompt pages are final the moment the chunk lands —
            // index them now so concurrent admissions can share them.
            self.prefix_register(slot, false);
        }

        if !want_logits {
            return None;
        }

        // LM head for the final prompt token only (non-final outputs are
        // discarded, paper Fig. 1).
        let last = &xs[(b - 1) * d..];
        layernorm_into(last, &self.nodes[0].weights.ln_f, &mut scratch.h);
        let hf_scale = quantize_into(&scratch.h, &mut scratch.q8);
        let q8 = &scratch.q8;
        let pool = gate(self.pool.as_ref(), vocab * d / n);
        Some(
            par_map_nodes(&mut self.nodes, pool, |_, node| {
                let mut out = Vec::new();
                node.weights
                    .lm_head
                    .forward_raw_into(q8, hf_scale, &mut out);
                out
            })
            .into_iter()
            .flatten()
            .collect(),
        )
    }

    /// One decode step for a batch of resident sequences: entry `t` feeds
    /// `token` to the sequence in `slot` and receives its next-token
    /// logits, bit-identical to decoding each sequence alone through
    /// [`DistributedGpt2::decode_step`].
    ///
    /// This is the continuous-batching hot path: on every node, each
    /// linear runs once per step as a batched GEMM over all entry rows
    /// (each 32-row weight block is tiled across the whole batch before
    /// the next block streams — one weight pass per layer per step,
    /// shared by every resident sequence), while attention stays
    /// per-sequence over each slot's own head-sliced cache.
    ///
    /// # Panics
    ///
    /// Panics if `entries` is empty, a slot repeats within the batch, or
    /// any slot would overflow its capacity.
    pub fn decode_step_batch(&mut self, entries: &[(usize, u32)]) -> Vec<Vec<f32>> {
        assert!(!entries.is_empty(), "batch must not be empty");
        let slots: Vec<usize> = entries.iter().map(|&(s, _)| s).collect();
        assert!(
            slots
                .iter()
                .enumerate()
                .all(|(i, s)| !slots[..i].contains(s)),
            "a sequence cannot decode two tokens in one step"
        );
        let reserve: Vec<(usize, usize)> = slots.iter().map(|&s| (s, 1)).collect();
        self.reserve_for(&reserve);
        let layers = self.model_cfg.layers;
        let vocab = self.model_cfg.vocab;
        let d = self.model_cfg.d_model;
        let d_head = self.model_cfg.d_head();
        let n = self.nodes.len();
        let b = entries.len();
        let row_shards = self.row_shards;

        // Host embeds each sequence's token at its own position into one
        // flat `b × d` activation buffer.
        let mut xs: Vec<f32> = Vec::with_capacity(b * d);
        for &(slot, token) in entries {
            let pos = self.nodes[0].arena.pos(slot);
            xs.extend_from_slice(&self.host.embed(token, pos));
        }

        let mut scratch = StackScratch::default();
        let mut gathered: Vec<f32> = Vec::new();
        for layer in 0..layers {
            // LN1 + per-row quantize (replicated), one sharded QKV GEMM
            // per node, per-sequence cache append, then attention with the
            // batch rows partitioned across the node's row shards.
            let xmat = scratch.stack_flat(&xs, Some(&self.nodes[0].weights.layers[layer].ln1), d);
            sharded_linear_phase(
                &mut self.nodes,
                self.pool.as_ref(),
                row_shards,
                b,
                |w, l| &w.layers[l].qkv,
                layer,
                &xmat,
                &scratch.scales,
                false,
            );
            scratch.reclaim(xmat);
            for node in &mut self.nodes {
                let NodeState {
                    weights,
                    arena,
                    gemm_out,
                    ..
                } = node;
                let w = weights.head_range.len() * d_head;
                for (t, &slot) in slots.iter().enumerate() {
                    let row = &gemm_out[t * 3 * w..(t + 1) * 3 * w];
                    let (k, v) = row[w..].split_at(w);
                    let t_abs = arena.pos(slot);
                    arena.append_at(slot, layer, t_abs, k, v);
                }
            }
            batch_attention_phase(
                &mut self.nodes,
                self.pool.as_ref(),
                row_shards,
                layer,
                AttnRows::Decode { slots: &slots },
                b,
                d_head,
                self.attn_mode,
            );
            gather_rows_flat(
                &self.router,
                &mut self.nodes,
                GatherSrc::Attn,
                b,
                d / n,
                &mut scratch.q8,
                &mut gathered,
            );
            self.finish_layer_batch(layer, b, &mut xs, &mut gathered, &mut scratch);
        }
        for node in &mut self.nodes {
            for &slot in &slots {
                node.arena.advance(slot, 1);
            }
        }
        if let Some(cache) = self.prefix_cache.as_mut() {
            for &(slot, token) in entries {
                cache.fed[slot].push(token);
            }
        }

        // Final LN (replicated) and vocabulary-sharded LM head, sharded
        // like every other linear; the host concatenates logit shards in
        // node order (raw f32 over PCIe — logits never ride the ring).
        let fmat = scratch.stack_flat(&xs, Some(&self.nodes[0].weights.ln_f), d);
        sharded_linear_phase(
            &mut self.nodes,
            self.pool.as_ref(),
            row_shards,
            b,
            |w, _| &w.lm_head,
            0,
            &fmat,
            &scratch.scales,
            false,
        );
        scratch.reclaim(fmat);
        (0..b)
            .map(|t| {
                let mut row = Vec::with_capacity(vocab);
                for node in &self.nodes {
                    let vw = node.weights.lm_head.out_features();
                    row.extend_from_slice(&node.gemm_out[t * vw..(t + 1) * vw]);
                }
                row
            })
            .collect()
    }

    /// Shared tail of one batched layer — output projection + residual,
    /// then the MLP (FC1 + node-local GELU, FC2) with a residual — over
    /// `b` stacked rows, given the already-gathered attention rows in
    /// `gathered` (clobbered as the stage-to-stage gather buffer) and the
    /// flat `b × d` activations in `xs` (updated in place; the in-place
    /// `+=` adds the same two floats the old row-wise `residual_add`
    /// did, so the folded residuals are bit-identical).
    ///
    /// Batched prefill (rows = one slot's prompt tokens) and batched
    /// decode (rows = resident sequences) differ only in their
    /// QKV/attention stage; everything after it lives here exactly once,
    /// so the two paths cannot drift apart (the generate-loop lesson).
    fn finish_layer_batch(
        &mut self,
        layer: usize,
        b: usize,
        xs: &mut [f32],
        gathered: &mut Vec<f32>,
        scratch: &mut StackScratch,
    ) {
        let d = self.model_cfg.d_model;
        let d_ff = self.model_cfg.d_ff;
        let n = self.nodes.len();
        let row_shards = self.row_shards;

        // Sharded projection GEMM per node, gather per row, residual.
        let amat = scratch.stack_flat(gathered, None, d);
        sharded_linear_phase(
            &mut self.nodes,
            self.pool.as_ref(),
            row_shards,
            b,
            |w, l| &w.layers[l].proj,
            layer,
            &amat,
            &scratch.scales,
            false,
        );
        scratch.reclaim(amat);
        gather_rows_flat(
            &self.router,
            &mut self.nodes,
            GatherSrc::Gemm,
            b,
            d / n,
            &mut scratch.q8,
            gathered,
        );
        for (x, p) in xs.iter_mut().zip(gathered.iter()) {
            *x += p;
        }

        // MLP: sharded FC1 GEMM + per-slab GELU, gather, sharded FC2
        // GEMM, gather, residual.
        let hmat = scratch.stack_flat(xs, Some(&self.nodes[0].weights.layers[layer].ln2), d);
        sharded_linear_phase(
            &mut self.nodes,
            self.pool.as_ref(),
            row_shards,
            b,
            |w, l| &w.layers[l].fc1,
            layer,
            &hmat,
            &scratch.scales,
            true,
        );
        scratch.reclaim(hmat);
        gather_rows_flat(
            &self.router,
            &mut self.nodes,
            GatherSrc::Gemm,
            b,
            d_ff / n,
            &mut scratch.q8,
            gathered,
        );

        let gmat = scratch.stack_flat(gathered, None, d_ff);
        sharded_linear_phase(
            &mut self.nodes,
            self.pool.as_ref(),
            row_shards,
            b,
            |w, l| &w.layers[l].fc2,
            layer,
            &gmat,
            &scratch.scales,
            false,
        );
        scratch.reclaim(gmat);
        gather_rows_flat(
            &self.router,
            &mut self.nodes,
            GatherSrc::Gemm,
            b,
            d / n,
            &mut scratch.q8,
            gathered,
        );
        for (x, f) in xs.iter_mut().zip(gathered.iter()) {
            *x += f;
        }
    }
}

/// Host-side row-stacking scratch for the batched stages: LN + per-row
/// quantization buffers plus the stacked int8 storage.
/// [`StackScratch::stack`] moves the storage into the returned matrix and
/// [`StackScratch::reclaim`] takes it back, so per-stage stacking
/// allocates nothing in steady state.
#[derive(Debug, Default)]
struct StackScratch {
    h: Vec<f32>,
    q8: Vec<i8>,
    rows8: Vec<i8>,
    /// Per-row activation scales of the most recent [`StackScratch::stack`].
    scales: Vec<f32>,
}

impl StackScratch {
    /// Stacks `ln(row)` (or the raw row when `ln` is `None`) quantized
    /// per-row into a `rows / width × width` int8 matrix from a flat
    /// row-major buffer — the host-side replicated prologue of every
    /// sharded batched linear, one row per token (batched prefill) or per
    /// resident sequence (batched decode). Per-row scales land in
    /// `self.scales`.
    fn stack_flat(
        &mut self,
        rows: &[f32],
        ln: Option<&LayerNormParams>,
        width: usize,
    ) -> Matrix<i8> {
        debug_assert_eq!(rows.len() % width, 0, "flat buffer must be row-aligned");
        self.rows8.clear();
        self.scales.clear();
        for row in rows.chunks_exact(width) {
            let scale = match ln {
                Some(params) => {
                    layernorm_into(row, params, &mut self.h);
                    quantize_into(&self.h, &mut self.q8)
                }
                None => quantize_into(row, &mut self.q8),
            };
            self.rows8.extend_from_slice(&self.q8);
            self.scales.push(scale);
        }
        let stacked = Matrix::from_vec(rows.len() / width, width, std::mem::take(&mut self.rows8));
        // lint: allow(panic_free) — engine invariant; a panic poisons the backend via catch_unwind
        stacked.expect("stacked rows")
    }

    /// Returns a stacked matrix's storage for reuse by the next stage.
    fn reclaim(&mut self, mat: Matrix<i8>) {
        self.rows8 = mat.into_vec();
    }
}

impl Autoregressive for DistributedGpt2 {
    fn prefill(&mut self, prompt: &[u32]) -> Vec<f32> {
        DistributedGpt2::prefill(self, prompt)
    }

    fn decode_step(&mut self, token: u32) -> Vec<f32> {
        DistributedGpt2::decode_step(self, token)
    }

    fn seq_len(&self) -> usize {
        DistributedGpt2::seq_len(self)
    }

    fn max_seq(&self) -> usize {
        // The generate driver's early-stop bound is slot 0's capacity:
        // engines built with `new` preallocate it to the model's max_seq,
        // but a `with_slots` engine may hold less, and overrunning it
        // would panic in the arena instead of stopping early as the
        // generate contract promises.
        self.slot_capacity()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use looplynx_model::sampler::Sampler;

    fn engine(nodes: usize) -> LoopLynx {
        LoopLynx::new(
            ModelConfig::gpt2_medium(),
            ArchConfig::builder().nodes(nodes).build().unwrap(),
        )
        .unwrap()
    }

    #[test]
    fn generation_report_aggregates() {
        let e = engine(2);
        let r = e.simulate_generation(16, 16);
        assert_eq!(r.prefill_tokens, 16);
        assert_eq!(r.decode_tokens, 16);
        assert!(r.prefill_ms > 0.0 && r.decode_ms > 0.0);
        assert!((r.total_ms() - (r.prefill_ms + r.decode_ms)).abs() < 1e-9);
        assert!(r.tokens_per_second() > 0.0);
        assert!(r.energy.joules > 0.0);
    }

    #[test]
    fn table2_operating_point() {
        // steady-state decode at context 512 reproduces Table II latencies
        let l1 = engine(1).steady_state_decode_ms(512);
        let l2 = engine(2).steady_state_decode_ms(512);
        let l4 = engine(4).steady_state_decode_ms(512);
        assert!((5.8..7.4).contains(&l1), "1-node {l1}");
        assert!((3.4..4.3).contains(&l2), "2-node {l2}");
        assert!((2.2..2.9).contains(&l4), "4-node {l4}");
    }

    #[test]
    fn invalid_partition_is_an_error() {
        let res = LoopLynx::new(
            ModelConfig::gpt2_medium(),
            ArchConfig::builder().nodes(5).build().unwrap(),
        );
        assert!(res.is_err());
    }

    #[test]
    fn prefill_batching_extension_speeds_up_prompts() {
        // Extension beyond the paper: batched prefill amortizes weight
        // streaming across prompt tokens.
        let model = ModelConfig::gpt2_medium();
        let unbatched = LoopLynx::new(
            model.clone(),
            ArchConfig::builder().nodes(2).build().unwrap(),
        )
        .unwrap()
        .simulate_generation(128, 32);
        let batched = LoopLynx::new(
            model,
            ArchConfig::builder()
                .nodes(2)
                .prefill_batch(8)
                .build()
                .unwrap(),
        )
        .unwrap()
        .simulate_generation(128, 32);
        assert!(
            batched.prefill_ms < 0.75 * unbatched.prefill_ms,
            "batched {} vs unbatched {}",
            batched.prefill_ms,
            unbatched.prefill_ms
        );
        // decode path is untouched
        let rel = (batched.decode_ms - unbatched.decode_ms).abs() / unbatched.decode_ms;
        assert!(rel < 1e-9, "decode changed by {rel}");
    }

    #[test]
    fn prefill_batching_saturates_at_compute_bound() {
        // Doubling the batch beyond the DSP-packing limit stops helping:
        // per-token prefill latency converges.
        let model = ModelConfig::gpt2_medium();
        let per_token = |batch: usize| {
            LoopLynx::new(
                model.clone(),
                ArchConfig::builder()
                    .nodes(2)
                    .prefill_batch(batch)
                    .build()
                    .unwrap(),
            )
            .unwrap()
            .simulate_generation(128, 2)
            .prefill_ms
                / 128.0
        };
        let b1 = per_token(1);
        let b2 = per_token(2);
        let b16 = per_token(16);
        let b32 = per_token(32);
        assert!(b2 < b1);
        assert!(b16 < b2);
        // diminishing returns: the last doubling buys < 20 %
        assert!(b32 > 0.8 * b16, "b16 {b16} vs b32 {b32}");
    }

    #[test]
    fn prefill_is_cheaper_per_token_than_decode() {
        let e = engine(2);
        let r = e.simulate_generation(64, 64);
        let prefill_per = r.prefill_ms / 64.0;
        let decode_per = r.decode_ms / 64.0;
        assert!(
            prefill_per < decode_per,
            "prefill {prefill_per} vs decode {decode_per}"
        );
    }

    #[test]
    fn distributed_exact_matches_reference_logits() {
        let cfg = ModelConfig::tiny();
        let reference = Gpt2Model::synthetic(&cfg, 21);
        for nodes in [1usize, 2, 4] {
            let mut dist = DistributedGpt2::new(&reference, nodes, RingMode::Exact).unwrap();
            let mut single = reference.clone();
            let prompt = [3u32, 14, 15, 9, 2];
            let a = single.prefill(&prompt);
            let b = dist.prefill(&prompt);
            assert_eq!(
                a, b,
                "exact-mode logits must be bit-identical ({nodes} nodes)"
            );
            let a2 = single.decode_step(7);
            let b2 = dist.decode_step(7);
            assert_eq!(a2, b2, "decode logits must match ({nodes} nodes)");
        }
    }

    #[test]
    fn distributed_quantized_is_close_and_agrees_on_greedy_tokens() {
        let cfg = ModelConfig::tiny();
        let reference = Gpt2Model::synthetic(&cfg, 33);
        let mut dist = DistributedGpt2::new(&reference, 2, RingMode::Quantized).unwrap();
        let mut single = reference.clone();
        let prompt = [5u32, 6, 7];
        let a = single.generate(&prompt, 8, &mut Sampler::greedy());
        let b = dist.generate(&prompt, 8, &mut Sampler::greedy());
        // int8 ring payloads perturb logits slightly; greedy sequences may
        // diverge late but must agree at the start
        assert_eq!(a[0], b[0], "first generated token diverged: {a:?} vs {b:?}");
    }

    #[test]
    fn generate_skips_wasted_final_forward() {
        // Regression: the final decode_step used to run a full distributed
        // forward pass whose logits were immediately discarded. After the
        // fix the last sampled token is never forwarded, so the cache holds
        // exactly prompt + n - 1 tokens.
        let cfg = ModelConfig::tiny();
        let reference = Gpt2Model::synthetic(&cfg, 77);
        let prompt = [3u32, 14, 15, 9, 2];
        let n = 6;
        for nodes in [1usize, 2] {
            let mut dist = DistributedGpt2::new(&reference, nodes, RingMode::Exact).unwrap();
            let out = dist.generate(&prompt, n, &mut Sampler::greedy());
            assert_eq!(out.len(), n);
            assert_eq!(
                dist.seq_len(),
                prompt.len() + n - 1,
                "{nodes} nodes: wasted forward pass crept back in"
            );
        }
        // the reference engine agrees (same fix applied there)
        let mut single = reference.clone();
        single.generate(&prompt, n, &mut Sampler::greedy());
        assert_eq!(single.seq_len(), prompt.len() + n - 1);
    }

    #[test]
    fn generate_still_matches_reference_after_skip_fix() {
        // Skipping the wasted pass must not change the tokens produced.
        let cfg = ModelConfig::tiny();
        let reference = Gpt2Model::synthetic(&cfg, 33);
        let mut dist = DistributedGpt2::new(&reference, 2, RingMode::Exact).unwrap();
        let mut single = reference.clone();
        let prompt = [5u32, 6, 7];
        let a = single.generate(&prompt, 8, &mut Sampler::greedy());
        let b = dist.generate(&prompt, 8, &mut Sampler::greedy());
        assert_eq!(a, b, "exact-mode generation must match the reference");
    }

    #[test]
    fn degenerate_report_math_is_finite() {
        // decode_ms == 0 (and decode_tokens == 0) must not produce
        // inf/NaN in the derived metrics.
        let e = engine(2);
        let mut r = e.simulate_generation(8, 8);
        r.decode_ms = 0.0;
        assert_eq!(r.tokens_per_second(), 0.0);
        assert_eq!(r.decode_ms_per_token(), 0.0);
        r.decode_tokens = 0;
        assert_eq!(r.tokens_per_second(), 0.0);
        assert_eq!(r.decode_ms_per_token(), 0.0);
        assert!(r.to_string().contains("tok/s"));
    }

    #[test]
    fn simulate_prefill_matches_generation_prefill() {
        for batch in [1usize, 8] {
            let e = LoopLynx::new(
                ModelConfig::gpt2_medium(),
                ArchConfig::builder()
                    .nodes(2)
                    .prefill_batch(batch)
                    .build()
                    .unwrap(),
            )
            .unwrap();
            let phase = e.simulate_prefill(37);
            let report = e.simulate_generation(37, 1);
            assert_eq!(phase.to_millis(e.arch()), report.prefill_ms);
        }
    }

    #[test]
    fn node_kv_footprint_shrinks_with_nodes() {
        let cfg = ModelConfig::tiny();
        let reference = Gpt2Model::synthetic(&cfg, 40);
        let mut one = DistributedGpt2::new(&reference, 1, RingMode::Exact).unwrap();
        let mut four = DistributedGpt2::new(&reference, 4, RingMode::Exact).unwrap();
        one.prefill(&[1, 2, 3, 4]);
        four.prefill(&[1, 2, 3, 4]);
        assert_eq!(one.node_kv_bytes(0), 4 * four.node_kv_bytes(0));
    }

    #[test]
    fn generate_stops_early_at_slot_capacity() {
        // On a with_slots engine the generate driver must stop when slot
        // 0's arena fills (returning fewer tokens), not panic in the
        // arena's capacity assert.
        let cfg = ModelConfig::tiny();
        let reference = Gpt2Model::synthetic(&cfg, 5);
        let mut e = DistributedGpt2::with_slots(&reference, 1, RingMode::Exact, 2, 12).unwrap();
        let out = e.generate(&[1, 2, 3, 4], 100, &mut Sampler::greedy());
        assert!(!out.is_empty() && out.len() <= 12, "{} tokens", out.len());
        assert!(e.seq_len() <= 12);
    }

    #[test]
    fn reset_restores_distributed_state() {
        let cfg = ModelConfig::tiny();
        let reference = Gpt2Model::synthetic(&cfg, 50);
        let mut dist = DistributedGpt2::new(&reference, 2, RingMode::Exact).unwrap();
        let first = dist.prefill(&[1, 2]);
        dist.reset();
        assert_eq!(dist.seq_len(), 0);
        let second = dist.prefill(&[1, 2]);
        assert_eq!(first, second);
    }
}
