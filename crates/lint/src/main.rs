//! `looplynx-lint` binary: lints the workspace, prints findings as
//! `file:line: [rule] message`, and exits non-zero when any survive.
//! CI runs this as a gate; `cargo test -p looplynx-lint` asserts the
//! same cleanliness plus the rule engine's own fixtures.

#![forbid(unsafe_code)]

use std::process::ExitCode;

use looplynx_lint::{lint_workspace, workspace_root};

fn main() -> ExitCode {
    let root = workspace_root();
    let findings = match lint_workspace(&root) {
        Ok(f) => f,
        Err(e) => {
            eprintln!(
                "looplynx-lint: cannot walk workspace at {}: {e}",
                root.display()
            );
            return ExitCode::FAILURE;
        }
    };
    if findings.is_empty() {
        println!("looplynx-lint: workspace clean");
        return ExitCode::SUCCESS;
    }
    for f in &findings {
        println!("{f}");
    }
    println!(
        "\nlooplynx-lint: {} finding(s). Fix the code, or — when the panic/\
         nondeterminism is a documented design decision — waive the site with\n\
         \t// lint: allow(<rule>) — <reason>\n\
         on the offending line or the line above (reason mandatory; see \
         docs/INVARIANTS.md).",
        findings.len()
    );
    ExitCode::FAILURE
}
