//! Pipeline timing calculator.
//!
//! LoopLynx's macro dataflow kernels are built from units "connected via
//! FIFOs" (paper Section III-D): a DMA engine feeds a MAC array, which feeds
//! a packer, a quantization unit, and the router. For a *deterministic*
//! dataflow — fixed service times, in-order items — the cycle-accurate
//! behaviour of such a pipeline is fully captured by the classic
//! recurrences over item start times:
//!
//! ```text
//! start[s][i] = max( ready[s-1][i],            // data dependence
//!                    start[s][i-1] + II_s,     // structural (initiation interval)
//!                    start[s+1][i-C_s] )       // FIFO backpressure, capacity C_s
//! ready[s][i] = start[s][i] + L_s              // stage latency
//! ```
//!
//! Evaluating these is exactly equivalent to simulating every clock edge of
//! the pipeline, at a cost proportional to items × stages instead of cycles.
//! This is the same abstraction HLS scheduling reports use (II / latency /
//! depth), which is what makes the model comparable to the paper's HLS
//! implementation.

use std::fmt;

use serde::{Deserialize, Serialize};

use crate::time::Cycles;

/// Static description of one pipeline stage.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct StageSpec {
    /// Stage name (for traces and error messages).
    pub name: String,
    /// Latency: cycles from an item entering to it leaving the stage.
    pub latency: u64,
    /// Initiation interval: minimum cycles between successive item starts.
    pub ii: u64,
    /// Capacity of the FIFO between this stage and the next, in items.
    /// The last stage's capacity is ignored (its output is consumed freely).
    pub out_capacity: usize,
}

impl StageSpec {
    /// Creates a stage with effectively unbounded output FIFO.
    ///
    /// # Panics
    ///
    /// Panics if `ii` is zero (a stage must take at least one cycle between
    /// item starts) or `latency < ii` is fine but `latency` zero with `ii`
    /// zero is rejected.
    pub fn new(name: impl Into<String>, latency: u64, ii: u64) -> Self {
        assert!(ii > 0, "initiation interval must be at least 1");
        StageSpec {
            name: name.into(),
            latency,
            ii,
            out_capacity: usize::MAX,
        }
    }

    /// Sets the output-FIFO capacity (items) between this stage and the next.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero — a zero-capacity FIFO deadlocks a
    /// decoupled pipeline.
    pub fn with_out_capacity(mut self, capacity: usize) -> Self {
        assert!(capacity > 0, "FIFO capacity must be at least 1");
        self.out_capacity = capacity;
        self
    }
}

/// Static description of a linear pipeline.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct PipelineSpec {
    stages: Vec<StageSpec>,
}

impl PipelineSpec {
    /// Creates a pipeline from its stages (source to sink order).
    ///
    /// # Panics
    ///
    /// Panics if `stages` is empty.
    pub fn new(stages: Vec<StageSpec>) -> Self {
        assert!(!stages.is_empty(), "pipeline needs at least one stage");
        PipelineSpec { stages }
    }

    /// The stage descriptions.
    pub fn stages(&self) -> &[StageSpec] {
        &self.stages
    }

    /// Evaluates the pipeline for `n` items all available at cycle 0.
    pub fn evaluate_uniform(&self, n: usize) -> PipelineRun {
        self.evaluate(&vec![Cycles::ZERO; n])
    }

    /// Evaluates the pipeline for items whose *arrival times* at the first
    /// stage are given (must be non-decreasing).
    ///
    /// # Panics
    ///
    /// Panics if `arrivals` is not sorted in non-decreasing order.
    pub fn evaluate(&self, arrivals: &[Cycles]) -> PipelineRun {
        assert!(
            arrivals.windows(2).all(|w| w[0] <= w[1]),
            "arrival times must be non-decreasing"
        );
        let s_count = self.stages.len();
        let n = arrivals.len();
        // start[s] holds start times of all items at stage s, filled item-major
        // so FIFO backpressure can reference downstream starts of older items.
        let mut start = vec![vec![Cycles::ZERO; n]; s_count];
        let mut ready = vec![vec![Cycles::ZERO; n]; s_count];
        for i in 0..n {
            for s in 0..s_count {
                let stage = &self.stages[s];
                let data_dep = if s == 0 { arrivals[i] } else { ready[s - 1][i] };
                let structural = if i == 0 {
                    Cycles::ZERO
                } else {
                    start[s][i - 1] + Cycles::new(stage.ii)
                };
                // Backpressure: the item can only start stage s if there will
                // be room in the FIFO to stage s+1 when it finishes, i.e. the
                // item `capacity` positions ahead has already left that FIFO
                // (started stage s+1).
                let backpressure = if s + 1 < s_count {
                    let cap = stage.out_capacity;
                    if cap != usize::MAX && i >= cap {
                        start[s + 1][i - cap]
                    } else {
                        Cycles::ZERO
                    }
                } else {
                    Cycles::ZERO
                };
                let t = data_dep.max(structural).max(backpressure);
                start[s][i] = t;
                ready[s][i] = t + Cycles::new(stage.latency);
            }
        }
        let makespan = ready
            .last()
            .and_then(|r| r.last().copied())
            .unwrap_or(Cycles::ZERO);
        let stage_busy = (0..s_count)
            .map(|s| {
                let ii = Cycles::new(self.stages[s].ii);
                // Each item occupies the stage's issue slot for II cycles.
                ii * n as u64
            })
            .collect();
        let first_out = ready
            .last()
            .and_then(|r| r.first().copied())
            .unwrap_or(Cycles::ZERO);
        PipelineRun {
            items: n,
            makespan,
            first_out,
            stage_busy,
            stage_names: self.stages.iter().map(|s| s.name.clone()).collect(),
            last_stage_starts: start.last().cloned().unwrap_or_default(),
        }
    }

    /// Steady-state throughput bound: the largest initiation interval over
    /// all stages (items per cycle = 1 / bottleneck_ii).
    pub fn bottleneck_ii(&self) -> u64 {
        self.stages.iter().map(|s| s.ii).max().unwrap_or(1)
    }

    /// Sum of stage latencies: time for a single item to traverse an empty
    /// pipeline.
    pub fn fill_latency(&self) -> Cycles {
        Cycles::new(self.stages.iter().map(|s| s.latency).sum())
    }
}

impl fmt::Display for PipelineSpec {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "pipeline[")?;
        for (i, s) in self.stages.iter().enumerate() {
            if i > 0 {
                write!(f, " -> ")?;
            }
            write!(f, "{}(L{},II{})", s.name, s.latency, s.ii)?;
        }
        write!(f, "]")
    }
}

/// Result of evaluating a [`PipelineSpec`] over a set of items.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct PipelineRun {
    items: usize,
    makespan: Cycles,
    first_out: Cycles,
    stage_busy: Vec<Cycles>,
    stage_names: Vec<String>,
    last_stage_starts: Vec<Cycles>,
}

impl PipelineRun {
    /// Number of items processed.
    pub fn items(&self) -> usize {
        self.items
    }

    /// Cycle at which the last item leaves the last stage.
    pub fn makespan(&self) -> Cycles {
        self.makespan
    }

    /// Cycle at which the *first* item leaves the last stage (fill time).
    pub fn first_out(&self) -> Cycles {
        self.first_out
    }

    /// Issue-slot busy cycles per stage.
    pub fn stage_busy(&self) -> impl Iterator<Item = (&str, Cycles)> {
        self.stage_names
            .iter()
            .map(String::as_str)
            .zip(self.stage_busy.iter().copied())
    }

    /// Start times of every item at the final stage (useful for chaining
    /// pipelines: these become arrivals of a downstream pipeline).
    pub fn last_stage_starts(&self) -> &[Cycles] {
        &self.last_stage_starts
    }
}

impl fmt::Display for PipelineRun {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} items in {}", self.items, self.makespan)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn spec(stages: &[(&str, u64, u64)]) -> PipelineSpec {
        PipelineSpec::new(
            stages
                .iter()
                .map(|&(n, l, ii)| StageSpec::new(n, l, ii))
                .collect(),
        )
    }

    #[test]
    fn single_stage_serializes_on_ii() {
        let p = spec(&[("s", 5, 3)]);
        let run = p.evaluate_uniform(4);
        // starts at 0,3,6,9; last ready at 9+5=14
        assert_eq!(run.makespan().as_u64(), 14);
        assert_eq!(run.first_out().as_u64(), 5);
    }

    #[test]
    fn two_stage_pipeline_overlaps() {
        let p = spec(&[("a", 2, 2), ("b", 3, 3)]);
        let run = p.evaluate_uniform(3);
        // a starts 0,2,4 ready 2,4,6; b starts 2,5,8 ready 5,8,11
        assert_eq!(run.makespan().as_u64(), 11);
    }

    #[test]
    fn bottleneck_dominates_steady_state() {
        let p = spec(&[("fast", 1, 1), ("slow", 10, 10), ("fast2", 1, 1)]);
        let n = 100;
        let run = p.evaluate_uniform(n);
        // ~ n * bottleneck_ii + fill
        let lower = (n as u64 - 1) * 10;
        assert!(run.makespan().as_u64() >= lower);
        assert!(run.makespan().as_u64() <= lower + p.fill_latency().as_u64() + 10);
        assert_eq!(p.bottleneck_ii(), 10);
    }

    #[test]
    fn fifo_capacity_throttles_producer() {
        // Fast producer into slow consumer through a 2-deep FIFO: the
        // producer must stall once the FIFO is full.
        let fast_into_slow = PipelineSpec::new(vec![
            StageSpec::new("prod", 1, 1).with_out_capacity(2),
            StageSpec::new("cons", 10, 10),
        ]);
        let run = fast_into_slow.evaluate_uniform(8);
        // Consumer is the bottleneck either way; makespan identical to the
        // unbounded case...
        let unbounded = spec(&[("prod", 1, 1), ("cons", 10, 10)]).evaluate_uniform(8);
        assert_eq!(run.makespan(), unbounded.makespan());
        // ...but item 4's production is throttled to wait for consumer start
        // of item 2 — verify backpressure delayed producer starts via the
        // downstream start times being unchanged while makespan matches.
        assert_eq!(run.items(), 8);
    }

    #[test]
    fn arrivals_gate_the_pipeline() {
        let p = spec(&[("s", 1, 1)]);
        let arrivals: Vec<Cycles> = [0u64, 100, 200].iter().map(|&c| Cycles::new(c)).collect();
        let run = p.evaluate(&arrivals);
        assert_eq!(run.makespan().as_u64(), 201);
    }

    #[test]
    #[should_panic(expected = "non-decreasing")]
    fn unsorted_arrivals_rejected() {
        let p = spec(&[("s", 1, 1)]);
        let _ = p.evaluate(&[Cycles::new(5), Cycles::new(1)]);
    }

    #[test]
    fn chained_pipelines_match_fused() {
        // Splitting a pipeline in two and chaining via last_stage_starts must
        // give the same makespan as the fused pipeline when the cut FIFO is
        // unbounded.
        let fused = spec(&[("a", 2, 2), ("b", 4, 4), ("c", 1, 1)]);
        let front = spec(&[("a", 2, 2), ("b", 4, 4)]);
        let back = spec(&[("c", 1, 1)]);
        let n = 10;
        let f = fused.evaluate_uniform(n);
        let fr = front.evaluate_uniform(n);
        // arrivals of back stage = times items become ready out of `b`
        let arrivals: Vec<Cycles> = fr
            .last_stage_starts()
            .iter()
            .map(|&s| s + Cycles::new(4))
            .collect();
        let bk = back.evaluate(&arrivals);
        assert_eq!(f.makespan(), bk.makespan());
    }

    #[test]
    fn fill_latency_is_sum() {
        let p = spec(&[("a", 2, 1), ("b", 4, 1)]);
        assert_eq!(p.fill_latency().as_u64(), 6);
        assert_eq!(p.evaluate_uniform(1).makespan().as_u64(), 6);
    }

    #[test]
    #[should_panic(expected = "at least 1")]
    fn zero_ii_rejected() {
        let _ = StageSpec::new("s", 1, 0);
    }

    #[test]
    #[should_panic(expected = "at least one stage")]
    fn empty_pipeline_rejected() {
        let _ = PipelineSpec::new(vec![]);
    }

    #[test]
    fn zero_items_is_empty_run() {
        let p = spec(&[("a", 2, 2)]);
        let run = p.evaluate_uniform(0);
        assert_eq!(run.makespan(), Cycles::ZERO);
        assert_eq!(run.items(), 0);
    }

    #[test]
    fn display_formats() {
        let p = spec(&[("a", 2, 1)]);
        assert!(p.to_string().contains("a(L2,II1)"));
        assert!(p.evaluate_uniform(2).to_string().contains("2 items"));
    }
}
