//! # looplynx-sim — cycle-accurate dataflow simulation substrate
//!
//! This crate provides the measurement instrument used throughout the
//! LoopLynx reproduction: a set of composable, cycle-accurate timing models
//! for FPGA dataflow designs.
//!
//! The LoopLynx paper (DATE 2025) evaluates its accelerator with
//! *cycle-accurate simulation* that accounts for per-channel HBM bandwidth
//! (peak 8.49 GB/s) and ring-network bandwidth (peak 8.49 GB/s). This crate
//! rebuilds that instrument from first principles:
//!
//! * [`time`] — strongly-typed cycle counts and clock domains.
//! * [`engine`] — a small discrete-event simulation core used where
//!   component interleaving matters (e.g. the ring routers).
//! * [`fifo`] — bounded FIFO timing semantics (the paper's kernels are
//!   "connected via FIFOs", Section III-D).
//! * [`pipeline`] — a pipeline timing calculator implementing the classic
//!   initiation-interval / latency / capacity recurrences; this is what makes
//!   each macro dataflow kernel cycle-accurate without simulating every
//!   clock edge.
//! * [`hbm`] — burst-mode DMA over high-bandwidth-memory channels.
//! * [`net`] — ring-network links and all-gather timing.
//! * [`stats`] / [`trace`] — utilization accounting and Gantt-style traces
//!   used for the paper's latency-breakdown figure.
//!
//! # Example
//!
//! Computing the makespan of a three-stage dataflow pipeline processing
//! 16 items:
//!
//! ```
//! use looplynx_sim::pipeline::{PipelineSpec, StageSpec};
//!
//! let spec = PipelineSpec::new(vec![
//!     StageSpec::new("load", 4, 2),
//!     StageSpec::new("mac", 8, 4),
//!     StageSpec::new("store", 2, 2),
//! ]);
//! let run = spec.evaluate_uniform(16);
//! assert!(run.makespan().as_u64() > 0);
//! ```

#![forbid(unsafe_code)]
#![deny(missing_docs)]
#![deny(missing_debug_implementations)]

pub mod des_pipeline;
pub mod engine;
pub mod fifo;
pub mod hbm;
pub mod net;
pub mod pipeline;
pub mod stats;
pub mod time;
pub mod trace;

pub use hbm::{HbmChannel, HbmSubsystem};
pub use net::RingSpec;
pub use pipeline::{PipelineRun, PipelineSpec, StageSpec};
pub use time::{Cycles, Frequency};
