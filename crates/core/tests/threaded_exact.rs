//! Bit-exactness suite for threaded node execution: running the per-node
//! layer shards on scoped threads must produce byte-identical logits to
//! the sequential loop, at every ring size and in both ring modes. The
//! per-node computation is untouched by threading and shard gathers keep
//! node order, so any divergence here is a real synchronization bug.

use looplynx_core::engine::DistributedGpt2;
use looplynx_core::router::RingMode;
use looplynx_model::config::ModelConfig;
use looplynx_model::generate::Autoregressive;
use looplynx_model::gpt2::Gpt2Model;
use looplynx_model::sampler::Sampler;

fn engines(nodes: usize, mode: RingMode, seed: u64) -> (DistributedGpt2, DistributedGpt2) {
    let reference = Gpt2Model::synthetic(&ModelConfig::tiny(), seed);
    let mut threaded = DistributedGpt2::new(&reference, nodes, mode).expect("partitionable");
    let mut sequential = DistributedGpt2::new(&reference, nodes, mode).expect("partitionable");
    threaded.set_threaded(true);
    sequential.set_threaded(false);
    (threaded, sequential)
}

#[test]
fn threaded_prefill_and_decode_match_sequential() {
    let prompt = [3u32, 14, 15, 9, 2, 6];
    for nodes in [1usize, 2, 4] {
        let (mut threaded, mut sequential) = engines(nodes, RingMode::Exact, 21);
        let a = threaded.prefill(&prompt);
        let b = sequential.prefill(&prompt);
        assert_eq!(a, b, "prefill logits diverged at {nodes} nodes");
        for step in 0..5 {
            let a = threaded.decode_step(7 + step);
            let b = sequential.decode_step(7 + step);
            assert_eq!(a, b, "decode logits diverged at {nodes} nodes step {step}");
        }
        assert_eq!(threaded.seq_len(), sequential.seq_len());
    }
}

#[test]
fn threaded_matches_sequential_in_quantized_ring_mode() {
    // The int8 ring payload path must also be order-stable under threads.
    for nodes in [2usize, 4] {
        let (mut threaded, mut sequential) = engines(nodes, RingMode::Quantized, 33);
        let prompt = [5u32, 6, 7, 8];
        assert_eq!(
            threaded.prefill(&prompt),
            sequential.prefill(&prompt),
            "{nodes} nodes"
        );
        assert_eq!(threaded.decode_step(9), sequential.decode_step(9));
    }
}

#[test]
fn threaded_generation_matches_single_node_reference() {
    // End to end: threaded multi-node generation ≡ the single-model
    // reference in exact mode (transitively, threaded ≡ sequential ≡
    // reference).
    let cfg = ModelConfig::tiny();
    let reference = Gpt2Model::synthetic(&cfg, 77);
    let prompt = [1u32, 2, 3];
    let mut single = reference.clone();
    let expect = single.generate(&prompt, 6, &mut Sampler::greedy());
    for nodes in [2usize, 4] {
        let mut dist = DistributedGpt2::new(&reference, nodes, RingMode::Exact).expect("divides");
        dist.set_threaded(true);
        let got = dist.generate(&prompt, 6, &mut Sampler::greedy());
        assert_eq!(expect, got, "{nodes}-node threaded generation diverged");
    }
}

#[test]
fn threading_toggle_is_visible_and_stateless() {
    let reference = Gpt2Model::synthetic(&ModelConfig::tiny(), 50);
    let mut dist = DistributedGpt2::new(&reference, 2, RingMode::Exact).expect("divides");
    dist.set_threaded(true);
    assert!(dist.threaded());
    let a = dist.prefill(&[1, 2]);
    dist.reset();
    dist.set_threaded(false);
    assert!(!dist.threaded());
    let b = dist.prefill(&[1, 2]);
    assert_eq!(a, b, "toggling threading changed results");
}
