//! The fault-tolerant serving gateway: deadlines, admission control,
//! cancellation, and retry — the ingress tier in front of the
//! continuous-batching scheduler.
//!
//! [`batcher::serve_continuous_on`](crate::batcher::serve_continuous_on)
//! is a fair-weather scheduler: every request is pre-admitted, nothing
//! can fail, and nothing can be late. [`serve_gateway_on`] wraps the same
//! continuous-batching core with the machinery a production ingress needs:
//!
//! * **Admission control** — a bounded queue ([`GatewayConfig::queue_depth`]);
//!   arrivals past the bound are shed according to [`ShedPolicy`]
//!   (reject outright, or additionally degrade `decode_tokens` under
//!   pressure so everyone gets a shorter answer instead of some getting
//!   none).
//! * **Deadlines** — TTFT and end-to-end budgets, enforced while queued,
//!   after prefill, and between decode iterations.
//! * **Cancellation** — per-request scripted cancel times
//!   ([`GatewayRequest::cancel_at`]), honored whether the request is
//!   still queued or already resident.
//! * **Retry with exponential backoff** — transient backend faults
//!   ([`BackendError::is_transient`]) are retried up to
//!   [`GatewayConfig::max_retries`] times; because a vetoed operation
//!   never touched backend state, retries are bit-exact.
//! * **Failure containment** — a poisoned backend (caught worker panic)
//!   fails its residents and sheds the rest of the workload instead of
//!   hanging or crashing.
//!
//! Every offered request terminates in **exactly one** [`Terminal`]
//! state — `Completed`, `Rejected`, `TimedOut`, `Cancelled` or `Failed` —
//! recorded in the [`GatewayReport`] alongside the usual
//! [`ServingReport`] latency percentiles for the completed set.

use std::collections::VecDeque;

use serde::{Deserialize, Serialize};

use looplynx_core::backend::{BackendError, InferenceBackend, PreemptedSeq};
use looplynx_sim::stats::Summary;

use crate::metrics::{GeneratedOutput, ServingReport};
use crate::request::{Request, RequestMetrics};

/// What the gateway does with arrivals that exceed the bounded queue, and
/// with admitted requests under queue pressure.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum ShedPolicy {
    /// Arrivals past [`GatewayConfig::queue_depth`] are rejected; admitted
    /// requests are served exactly as asked.
    Reject,
    /// Arrivals past the queue bound are still rejected, but while the
    /// queue is more than half full every admission's `decode_tokens` is
    /// clamped to this ceiling — trading answer length for goodput.
    Degrade {
        /// Decode-token ceiling applied under pressure (≥ 1).
        max_decode_tokens: usize,
    },
    /// Arrivals past the queue bound are rejected, and KV **page
    /// pressure** is absorbed by preemption instead of failure: when a
    /// decode iteration hits [`BackendError::PagesExhausted`], the most
    /// recently admitted resident is evicted (its pages return to the
    /// pool; its progress is kept) and resumed — with its KV rebuilt
    /// bit-identically — once pressure clears. This is what lets a paged
    /// backend oversubscribe slots beyond worst-case arena bytes and
    /// still terminate every request. Requires
    /// [`InferenceBackend::supports_preemption`].
    Preempt,
}

/// One preemption candidate as an [`EvictPolicy`] sees it. The gateway
/// builds these from its residents; policies never touch the backend.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct EvictCandidate {
    /// Admission ordinal: larger = became resident more recently
    /// (resumes count as fresh admissions, matching the pre-policy
    /// youngest-first behavior).
    pub admit_seq: u64,
    /// Serving-clock time this resident last produced a token (its
    /// admission time until then).
    pub last_used_ms: f64,
    /// KV pages preempting it would actually free —
    /// [`InferenceBackend::reclaimable_pages`], so pages shared with a
    /// prefix cache or other sequences don't count.
    pub reclaimable_pages: usize,
}

/// Picks the preemption victim under page pressure. Implementations
/// must be deterministic pure functions of the candidate list — the
/// bit-exactness wall replays runs and expects identical choices.
pub trait EvictPolicy {
    /// Index of the victim within `candidates` (never empty).
    fn pick(&self, candidates: &[EvictCandidate]) -> usize;
}

/// The original oracle: evict the most recently admitted resident (it
/// has the least sunk prefill work). Exactly reproduces the behavior
/// before victim selection became a policy.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct YoungestFirst;

impl EvictPolicy for YoungestFirst {
    fn pick(&self, candidates: &[EvictCandidate]) -> usize {
        let (idx, _) = candidates
            .iter()
            .enumerate()
            .max_by_key(|(_, c)| c.admit_seq)
            // lint: allow(panic_free) — candidates is never empty (gateway invariant)
            .expect("at least one candidate");
        idx
    }
}

/// Pressure-aware selection: evict whoever frees the most exclusive
/// pages (that is what actually relieves page pressure — a resident
/// riding a shared prefix returns almost nothing), breaking ties toward
/// the least recently used, then the oldest admission.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct LruReclaim;

impl EvictPolicy for LruReclaim {
    fn pick(&self, candidates: &[EvictCandidate]) -> usize {
        let (idx, _) = candidates
            .iter()
            .enumerate()
            .min_by(|(_, a), (_, b)| {
                b.reclaimable_pages
                    .cmp(&a.reclaimable_pages)
                    .then(a.last_used_ms.total_cmp(&b.last_used_ms))
                    .then(a.admit_seq.cmp(&b.admit_seq))
            })
            // lint: allow(panic_free) — candidates is never empty (gateway invariant)
            .expect("at least one candidate");
        idx
    }
}

/// Serializable selector for the gateway's [`EvictPolicy`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum EvictPolicyKind {
    /// [`YoungestFirst`] — the default oracle.
    YoungestFirst,
    /// [`LruReclaim`] — frees the most unshared pages per eviction.
    LruReclaim,
}

impl EvictPolicyKind {
    /// Dispatches to the policy this kind names.
    #[must_use]
    pub fn pick(self, candidates: &[EvictCandidate]) -> usize {
        match self {
            EvictPolicyKind::YoungestFirst => YoungestFirst.pick(candidates),
            EvictPolicyKind::LruReclaim => LruReclaim.pick(candidates),
        }
    }
}

/// Gateway policy knobs.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct GatewayConfig {
    /// Decode-batch ceiling (the backend's capacity caps it further).
    pub max_batch: usize,
    /// Arrived-but-not-admitted requests held before load shedding.
    pub queue_depth: usize,
    /// Time-to-first-token budget from arrival (ms); `None` disables.
    pub ttft_deadline_ms: Option<f64>,
    /// End-to-end budget from arrival (ms); `None` disables. A request's
    /// own [`GatewayRequest::with_deadline`] overrides this.
    pub e2e_deadline_ms: Option<f64>,
    /// Retries per operation for transient faults (0 = fail fast).
    pub max_retries: u32,
    /// Base backoff billed to the serving clock before retry `n + 1`;
    /// doubles each attempt (`base × 2ⁿ`).
    pub retry_backoff_ms: f64,
    /// Load-shedding policy.
    pub shed: ShedPolicy,
    /// Chunked-prefill ceiling: `Some(c)` feeds each admission's prompt
    /// in chunks of at most `c` tokens, interleaving resident decode
    /// iterations between chunks so long prompts stop stalling the whole
    /// batch. `None` (the default) prefills in one pass. Ignored on
    /// backends without
    /// [`InferenceBackend::supports_chunked_prefill`]. Chunking cannot
    /// perturb tokens: any chunking is bit-identical to one-pass
    /// prefill.
    pub prefill_chunk: Option<usize>,
    /// Which resident the [`ShedPolicy::Preempt`] path evicts under
    /// page pressure. [`EvictPolicyKind::YoungestFirst`] is the
    /// default; [`EvictPolicyKind::LruReclaim`] frees the most
    /// unshared pages per eviction, which matters once a prefix cache
    /// makes residents share pages. Victim choice never changes any
    /// completed request's tokens — only which request waits.
    pub evict: EvictPolicyKind,
}

impl GatewayConfig {
    /// Validates the configuration.
    ///
    /// # Panics
    ///
    /// Panics if `max_batch` or `queue_depth` is zero, a deadline or the
    /// backoff is non-finite or negative, or a degrade ceiling is zero.
    pub fn validate(&self) {
        assert!(self.max_batch >= 1, "max_batch must be at least 1");
        assert!(self.queue_depth >= 1, "queue_depth must be at least 1");
        for d in [self.ttft_deadline_ms, self.e2e_deadline_ms]
            .into_iter()
            .flatten()
        {
            assert!(d.is_finite() && d > 0.0, "deadline {d} must be positive");
        }
        assert!(
            self.retry_backoff_ms.is_finite() && self.retry_backoff_ms >= 0.0,
            "retry backoff must be finite and non-negative"
        );
        if let ShedPolicy::Degrade { max_decode_tokens } = self.shed {
            assert!(max_decode_tokens >= 1, "degrade ceiling must be at least 1");
        }
        if let Some(chunk) = self.prefill_chunk {
            assert!(chunk >= 1, "prefill chunk must be at least 1");
        }
    }
}

impl Default for GatewayConfig {
    /// Eight-deep decode batches over a 32-deep queue, no deadlines,
    /// three retries with 1 ms base backoff, reject-only shedding.
    fn default() -> Self {
        GatewayConfig {
            max_batch: 8,
            queue_depth: 32,
            ttft_deadline_ms: None,
            e2e_deadline_ms: None,
            max_retries: 3,
            retry_backoff_ms: 1.0,
            shed: ShedPolicy::Reject,
            prefill_chunk: None,
            evict: EvictPolicyKind::YoungestFirst,
        }
    }
}

/// A [`Request`] plus the gateway-level contract attached to it.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct GatewayRequest {
    /// The underlying generation request.
    pub req: Request,
    /// Per-request end-to-end deadline (ms after arrival), overriding
    /// [`GatewayConfig::e2e_deadline_ms`].
    pub deadline_ms: Option<f64>,
    /// Scripted cancellation time (absolute workload ms): the client
    /// gives up at this instant whether the request is queued or
    /// decoding. `None` never cancels.
    pub cancel_ms: Option<f64>,
}

impl GatewayRequest {
    /// Wraps a request with no deadline override and no cancellation.
    pub fn new(req: Request) -> Self {
        GatewayRequest {
            req,
            deadline_ms: None,
            cancel_ms: None,
        }
    }

    /// Sets a per-request end-to-end deadline, in ms after arrival.
    ///
    /// # Panics
    ///
    /// Panics if `ms` is not positive and finite.
    #[must_use]
    pub fn with_deadline(mut self, ms: f64) -> Self {
        assert!(ms.is_finite() && ms > 0.0, "deadline {ms} must be positive");
        self.deadline_ms = Some(ms);
        self
    }

    /// Scripts a cancellation at the given absolute workload time (ms).
    ///
    /// # Panics
    ///
    /// Panics if `at_ms` is not finite.
    #[must_use]
    pub fn cancel_at(mut self, at_ms: f64) -> Self {
        assert!(at_ms.is_finite(), "cancel time {at_ms} must be finite");
        self.cancel_ms = Some(at_ms);
        self
    }

    /// Wraps a plain workload one-to-one (no deadlines, no cancels).
    pub fn from_workload(requests: &[Request]) -> Vec<GatewayRequest> {
        requests.iter().cloned().map(GatewayRequest::new).collect()
    }
}

/// Why a request was shed before admission.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum RejectReason {
    /// The bounded admission queue was full at arrival.
    QueueFull,
    /// Prompt + requested output exceed the backend's `max_seq`.
    TooLong,
    /// The backend can make no progress for this request (slot capacity
    /// collapsed, e.g. leaked to zero, or the backend was lost).
    Overload,
}

/// Which enforcement point a deadline expired at.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum TimeoutPhase {
    /// Still queued: the TTFT or E2E budget expired before admission.
    Queued,
    /// Admitted, but the first token arrived after its budget.
    FirstToken,
    /// Decoding, but the end-to-end budget expired mid-generation.
    Decode,
}

/// The exactly-one terminal state every offered request reaches.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum Terminal {
    /// Produced every requested (possibly degraded) output token.
    Completed,
    /// Shed by admission control; no backend work was spent.
    Rejected(RejectReason),
    /// A deadline expired; any produced tokens are discarded.
    TimedOut(TimeoutPhase),
    /// The client's scripted cancellation fired first.
    Cancelled,
    /// The backend permanently failed the request (retries exhausted,
    /// poisoned worker, or a contract violation). Carries the rendered
    /// error.
    Failed(String),
}

/// One request's terminal record.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RequestTerminal {
    /// Request identifier.
    pub id: u64,
    /// Arrival timestamp (ms).
    pub arrival_ms: f64,
    /// When the terminal state was reached (ms).
    pub at_ms: f64,
    /// The state.
    pub terminal: Terminal,
}

/// Terminal-state census of one gateway run.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct TerminalCounts {
    /// Requests that completed.
    pub completed: usize,
    /// Requests shed by admission control.
    pub rejected: usize,
    /// Requests that blew a deadline.
    pub timed_out: usize,
    /// Requests cancelled by the client.
    pub cancelled: usize,
    /// Requests the backend permanently failed.
    pub failed: usize,
}

impl TerminalCounts {
    /// Total requests across all terminal states.
    pub fn total(&self) -> usize {
        self.completed + self.rejected + self.timed_out + self.cancelled + self.failed
    }
}

/// Outcome of one gateway run: the completed set's [`ServingReport`] plus
/// the terminal record of *every* offered request.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct GatewayReport {
    /// Latency/throughput report over the **completed** requests only.
    pub serving: ServingReport,
    /// One terminal record per offered request, in termination order.
    pub terminals: Vec<RequestTerminal>,
    /// Transient-fault retries the gateway performed.
    pub retries: u64,
    /// Admissions whose `decode_tokens` were degraded under pressure.
    pub degraded: u64,
    /// Residents evicted under page pressure (each was later resumed,
    /// failed by the livelock guard, cancelled, or timed out).
    pub preemptions: u64,
}

impl GatewayReport {
    /// Requests offered to the gateway.
    pub fn offered(&self) -> usize {
        self.terminals.len()
    }

    /// Census of terminal states.
    pub fn counts(&self) -> TerminalCounts {
        let mut c = TerminalCounts::default();
        for t in &self.terminals {
            match t.terminal {
                Terminal::Completed => c.completed += 1,
                Terminal::Rejected(_) => c.rejected += 1,
                Terminal::TimedOut(_) => c.timed_out += 1,
                Terminal::Cancelled => c.cancelled += 1,
                Terminal::Failed(_) => c.failed += 1,
            }
        }
        c
    }

    /// The terminal state of request `id`, if it was offered.
    pub fn terminal_of(&self, id: u64) -> Option<&Terminal> {
        self.terminals
            .iter()
            .find(|t| t.id == id)
            .map(|t| &t.terminal)
    }

    /// Output tokens actually delivered to completed requests.
    pub fn completed_tokens(&self) -> usize {
        self.serving.total_tokens()
    }

    /// Goodput: completed output tokens per second over the completed
    /// set's makespan. `0.0` when nothing completed or the makespan is
    /// degenerate — an all-rejected run reports zero, never NaN.
    pub fn goodput_tok_s(&self) -> f64 {
        self.serving.tokens_per_second()
    }

    /// Conservation invariant: every offered id reached exactly one
    /// terminal state (no lost, no double-counted requests), and every
    /// completed terminal has a matching latency record.
    pub fn is_conserved(&self, offered: &[GatewayRequest]) -> bool {
        let mut seen: Vec<u64> = self.terminals.iter().map(|t| t.id).collect();
        seen.sort_unstable();
        if seen.windows(2).any(|w| w[0] == w[1]) {
            return false;
        }
        let mut want: Vec<u64> = offered.iter().map(|r| r.req.id).collect();
        want.sort_unstable();
        seen == want && self.counts().completed == self.serving.completed()
    }
}

impl std::fmt::Display for GatewayReport {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let c = self.counts();
        writeln!(
            f,
            "{} offered: {} completed, {} rejected, {} timed out, \
             {} cancelled, {} failed ({} retries, {} degraded, \
             {} preemptions, goodput {:.1} tok/s)",
            self.offered(),
            c.completed,
            c.rejected,
            c.timed_out,
            c.cancelled,
            c.failed,
            self.retries,
            self.degraded,
            self.preemptions,
            self.goodput_tok_s(),
        )?;
        write!(f, "{}", self.serving)
    }
}

/// Preempt→resume round-trips a request may make with no token produced
/// in between before the gateway fails it: the page pool is simply too
/// small for its context, and bouncing forever would never terminate.
const BOUNCE_LIMIT: u32 = 8;

/// A request resident in the decode loop.
#[derive(Debug)]
struct ActiveReq {
    gr: GatewayRequest,
    slot: usize,
    first_token_ms: f64,
    tokens: Vec<u32>,
    produced: usize,
    /// Output tokens this request will actually get (≤ asked when
    /// degraded under pressure).
    target: usize,
    /// Absolute end-to-end deadline, if any.
    e2e_deadline_at: Option<f64>,
    /// Consecutive preempt→resume cycles with no progress (see
    /// [`BOUNCE_LIMIT`]).
    bounces: u32,
    /// `produced` when this residency began — the progress marker the
    /// bounce guard compares against at the next preemption.
    produced_at_admit: usize,
    /// Ordinal of this residency (resumes get a fresh one) — what
    /// [`YoungestFirst`] ranks by.
    admit_seq: u64,
    /// Serving-clock time of the last produced token (admission time
    /// until then) — what [`LruReclaim`] breaks ties by.
    last_used_ms: f64,
}

/// A request whose prompt is being fed in chunks: the slot is claimed,
/// but no token exists yet.
#[derive(Debug)]
struct PrefillingReq {
    gr: GatewayRequest,
    slot: usize,
    target: usize,
    e2e_deadline_at: Option<f64>,
    /// Consecutive rounds this prefill could not grow by even one chunk
    /// (page pressure with nothing evictable); bounded like bounces.
    stalls: u32,
}

/// A request evicted under page pressure, waiting to be resumed. Holds
/// no backend resources at all — that is the point.
#[derive(Debug)]
struct PreemptedReq {
    gr: GatewayRequest,
    seq: PreemptedSeq,
    first_token_ms: f64,
    tokens: Vec<u32>,
    produced: usize,
    target: usize,
    e2e_deadline_at: Option<f64>,
    bounces: u32,
}

/// The in-flight state of one gateway run.
struct Run<'a, B: InferenceBackend> {
    backend: &'a mut B,
    cfg: &'a GatewayConfig,
    clock: f64,
    pending: VecDeque<GatewayRequest>,
    queued: VecDeque<GatewayRequest>,
    active: Vec<ActiveReq>,
    prefilling: Vec<PrefillingReq>,
    preempted: VecDeque<PreemptedReq>,
    terminals: Vec<RequestTerminal>,
    done: Vec<RequestMetrics>,
    outputs: Vec<GeneratedOutput>,
    occupancy: Summary,
    iterations: u64,
    retries: u64,
    degraded: u64,
    preemptions: u64,
    /// Monotone residency counter feeding [`ActiveReq::admit_seq`].
    admits: u64,
}

impl<B: InferenceBackend> Run<'_, B> {
    fn terminate(&mut self, gr: &GatewayRequest, terminal: Terminal) {
        self.terminals.push(RequestTerminal {
            id: gr.req.id,
            arrival_ms: gr.req.arrival_ms,
            at_ms: self.clock,
            terminal,
        });
    }

    /// Releases a slot whose owner is leaving the gateway. A failure
    /// here is not actionable at the call site: `SlotNotResident` means
    /// the slot was already lost (leaked by an injected fault or a
    /// drain) and the capacity accounting absorbs it, while a poisoned
    /// backend is observed by the next backend operation, which calls
    /// `drain_lost_backend`. The drain paths release the same way.
    fn release_quietly(&mut self, slot: usize) {
        let _ = self.backend.release(slot);
    }

    /// Absolute E2E deadline of a request (override beats config).
    fn e2e_deadline_at(&self, gr: &GatewayRequest) -> Option<f64> {
        gr.deadline_ms
            .or(self.cfg.e2e_deadline_ms)
            .map(|d| gr.req.arrival_ms + d)
    }

    /// Moves every arrived request into the bounded queue, shedding
    /// arrivals past `queue_depth`.
    fn pump_arrivals(&mut self) {
        while self
            .pending
            .front()
            .is_some_and(|g| g.req.arrival_ms <= self.clock)
        {
            let Some(gr) = self.pending.pop_front() else {
                break;
            };
            if gr.req.peak_context() > self.backend.max_seq() {
                self.terminate(&gr, Terminal::Rejected(RejectReason::TooLong));
            } else if self.queued.len() >= self.cfg.queue_depth {
                self.terminate(&gr, Terminal::Rejected(RejectReason::QueueFull));
            } else {
                self.queued.push_back(gr);
            }
        }
    }

    /// Cancels and times out requests still waiting in the queue.
    fn scan_queued(&mut self) {
        let mut keep = VecDeque::with_capacity(self.queued.len());
        while let Some(gr) = self.queued.pop_front() {
            if gr.cancel_ms.is_some_and(|t| t <= self.clock) {
                self.terminate(&gr, Terminal::Cancelled);
            } else if self
                .cfg
                .ttft_deadline_ms
                .is_some_and(|d| self.clock > gr.req.arrival_ms + d)
                || self.e2e_deadline_at(&gr).is_some_and(|at| self.clock > at)
            {
                self.terminate(&gr, Terminal::TimedOut(TimeoutPhase::Queued));
            } else {
                keep.push_back(gr);
            }
        }
        self.queued = keep;
    }

    /// Runs one operation with exponential-backoff retries on transient
    /// faults, billing the backoff to the serving clock.
    fn with_retries<T>(
        &mut self,
        mut op: impl FnMut(&mut B) -> Result<T, BackendError>,
    ) -> Result<T, BackendError> {
        let mut attempt = 0u32;
        loop {
            match op(self.backend) {
                Ok(v) => return Ok(v),
                Err(e) if e.is_transient() && attempt < self.cfg.max_retries => {
                    self.retries += 1;
                    self.clock += self.cfg.retry_backoff_ms * f64::powi(2.0, attempt as i32);
                    attempt += 1;
                }
                Err(e) => return Err(e),
            }
        }
    }

    /// Admits queued requests (FIFO) up to the batch ceiling, prefilling
    /// each with retry. Requests may terminate here: failed prefills,
    /// first tokens past their deadline, single-token completions.
    fn admit(&mut self) {
        loop {
            // Prefills advance the clock; requests arriving meanwhile
            // join this same admission burst (matching the continuous
            // scheduler's admission semantics).
            self.pump_arrivals();
            if self.queued.is_empty() {
                return;
            }
            let room = self.cfg.max_batch.min(self.backend.capacity());
            if self.active.len() + self.prefilling.len() >= room {
                if self.active.is_empty() && self.prefilling.is_empty() {
                    // room == 0 with nothing resident: capacity has
                    // collapsed (every slot leaked or lost) and no
                    // release will ever restore it. Shed the queue —
                    // the only terminating move.
                    let stuck: Vec<GatewayRequest> = self.queued.drain(..).collect();
                    for gr in stuck {
                        self.terminate(&gr, Terminal::Rejected(RejectReason::Overload));
                    }
                }
                return;
            }
            let Some(gr) = self.queued.pop_front() else {
                return;
            };

            // Under pressure, the degrade policy trades answer length for
            // admission throughput.
            let mut target = gr.req.decode_tokens;
            if let ShedPolicy::Degrade { max_decode_tokens } = self.cfg.shed {
                if self.queued.len() > self.cfg.queue_depth / 2 && target > max_decode_tokens {
                    target = max_decode_tokens;
                    self.degraded += 1;
                }
            }

            // Chunked admission claims a slot and stages the prompt; the
            // actual token feeding happens in `prefill_round`,
            // interleaved with resident decode iterations.
            if self.cfg.prefill_chunk.is_some() && self.backend.supports_chunked_prefill() {
                let opened = self.with_retries(|b| {
                    b.prefill_open(gr.req.prefill_tokens, gr.req.prompt.as_deref(), gr.req.id)
                });
                match opened {
                    Ok(slot) => {
                        let e2e_deadline_at = self.e2e_deadline_at(&gr);
                        self.prefilling.push(PrefillingReq {
                            gr,
                            slot,
                            target,
                            e2e_deadline_at,
                            stalls: 0,
                        });
                        continue;
                    }
                    Err(
                        BackendError::SlotsExhausted { .. } | BackendError::PagesExhausted { .. },
                    ) => {
                        if self.active.is_empty() && self.prefilling.is_empty() {
                            self.terminate(&gr, Terminal::Rejected(RejectReason::Overload));
                            continue;
                        }
                        self.queued.push_front(gr);
                        return;
                    }
                    Err(e) => {
                        self.terminate(&gr, Terminal::Failed(e.to_string()));
                        if matches!(e, BackendError::WorkerPoisoned { .. }) {
                            self.drain_lost_backend();
                            return;
                        }
                        continue;
                    }
                }
            }

            let prefill = self.with_retries(|b| {
                b.prefill(gr.req.prefill_tokens, gr.req.prompt.as_deref(), gr.req.id)
            });
            // Computed after the retry loop so billed backoff is part of
            // the request's latency, not overwritten by it.
            let start = self.clock.max(gr.req.arrival_ms);
            let outcome = match prefill {
                Ok(o) => o,
                Err(BackendError::SlotsExhausted { .. } | BackendError::PagesExhausted { .. }) => {
                    if self.active.is_empty() && self.prefilling.is_empty() {
                        // Nothing resident will ever release a slot or a
                        // page: the backend's capacity has collapsed
                        // under this request (leaked slots, stranded
                        // sequences). Shedding it is the only way to
                        // terminate.
                        self.terminate(&gr, Terminal::Rejected(RejectReason::Overload));
                        continue;
                    }
                    // A resident will free a slot; hold the request.
                    self.queued.push_front(gr);
                    return;
                }
                Err(e) => {
                    self.terminate(&gr, Terminal::Failed(e.to_string()));
                    if matches!(e, BackendError::WorkerPoisoned { .. }) {
                        self.drain_lost_backend();
                        return;
                    }
                    continue;
                }
            };
            self.clock = start + outcome.elapsed_ms;

            // First token exists now — is it on time?
            let ttft_late = self
                .cfg
                .ttft_deadline_ms
                .is_some_and(|d| self.clock > gr.req.arrival_ms + d);
            let e2e_deadline_at = self.e2e_deadline_at(&gr);
            if ttft_late || e2e_deadline_at.is_some_and(|at| self.clock > at) {
                self.release_quietly(outcome.slot);
                self.terminate(&gr, Terminal::TimedOut(TimeoutPhase::FirstToken));
                continue;
            }

            self.admits += 1;
            let entry = ActiveReq {
                slot: outcome.slot,
                first_token_ms: self.clock,
                tokens: outcome.first_token.into_iter().collect(),
                produced: 1,
                target,
                e2e_deadline_at,
                bounces: 0,
                produced_at_admit: 1,
                admit_seq: self.admits,
                last_used_ms: self.clock,
                gr,
            };
            if entry.produced >= entry.target {
                self.complete(entry);
            } else {
                self.active.push(entry);
            }
        }
    }

    /// Completes a resident request: releases its slot, records metrics,
    /// tokens and the terminal state.
    fn complete(&mut self, a: ActiveReq) {
        self.release_quietly(a.slot);
        self.done.push(RequestMetrics {
            id: a.gr.req.id,
            arrival_ms: a.gr.req.arrival_ms,
            first_token_ms: a.first_token_ms,
            completion_ms: self.clock,
            prefill_tokens: a.gr.req.prefill_tokens,
            decode_tokens: a.produced,
        });
        if !a.tokens.is_empty() {
            self.outputs.push(GeneratedOutput {
                id: a.gr.req.id,
                tokens: a.tokens,
            });
        }
        self.terminate(&a.gr, Terminal::Completed);
    }

    /// Fails every resident and sheds everything still waiting: the
    /// backend is lost (poisoned worker) and can serve nothing more.
    fn drain_lost_backend(&mut self) {
        for a in std::mem::take(&mut self.active) {
            // The poisoned backend may refuse the release; the slot is
            // lost either way.
            let _ = self.backend.release(a.slot);
            self.terminate(&a.gr, Terminal::Failed("backend poisoned".into()));
        }
        for p in std::mem::take(&mut self.prefilling) {
            let _ = self.backend.release(p.slot);
            self.terminate(&p.gr, Terminal::Failed("backend poisoned".into()));
        }
        for p in std::mem::take(&mut self.preempted) {
            self.terminate(&p.gr, Terminal::Failed("backend poisoned".into()));
        }
        let waiting: Vec<GatewayRequest> = self
            .queued
            .drain(..)
            .chain(std::mem::take(&mut self.pending))
            .collect();
        for gr in waiting {
            self.terminate(&gr, Terminal::Rejected(RejectReason::Overload));
        }
    }

    /// Evicts the most recently admitted resident (LIFO — the youngest
    /// residency has the least sunk decode work), returning its KV pages
    /// to the pool. Returns `true` if pressure was relieved: either the
    /// resident was parked for resume, or the bounce guard failed a
    /// livelocked request (its pages are back either way).
    fn try_preempt_one(&mut self) -> bool {
        if !self.backend.supports_preemption() {
            return false;
        }
        if self.active.is_empty() {
            return false;
        }
        let candidates: Vec<EvictCandidate> = self
            .active
            .iter()
            .map(|a| EvictCandidate {
                admit_seq: a.admit_seq,
                last_used_ms: a.last_used_ms,
                reclaimable_pages: self.backend.reclaimable_pages(a.slot),
            })
            .collect();
        let victim = self.cfg.evict.pick(&candidates);
        let a = self.active.remove(victim);
        let seq = match self.backend.preempt(a.slot) {
            Ok(seq) => seq,
            Err(e) => {
                self.terminate(&a.gr, Terminal::Failed(format!("preempt failed: {e}")));
                if matches!(e, BackendError::WorkerPoisoned { .. }) {
                    self.drain_lost_backend();
                }
                return true;
            }
        };
        let bounces = if a.produced == a.produced_at_admit {
            a.bounces + 1
        } else {
            0
        };
        if bounces > BOUNCE_LIMIT {
            // Preempt→resume round-trips keep landing back here with no
            // token produced in between: the pool cannot hold this
            // context even briefly, and resuming would bounce forever.
            self.terminate(
                &a.gr,
                Terminal::Failed(format!(
                    "preemption livelock: {bounces} evictions with no progress"
                )),
            );
            return true;
        }
        self.preemptions += 1;
        self.preempted.push_back(PreemptedReq {
            gr: a.gr,
            seq,
            first_token_ms: a.first_token_ms,
            tokens: a.tokens,
            produced: a.produced,
            target: a.target,
            e2e_deadline_at: a.e2e_deadline_at,
            bounces,
        });
        true
    }

    /// Cancels and times out requests parked in the preempted set —
    /// they hold no backend resources, so the terminal is immediate.
    fn scan_preempted(&mut self) {
        let mut keep = VecDeque::with_capacity(self.preempted.len());
        while let Some(p) = self.preempted.pop_front() {
            if p.gr.cancel_ms.is_some_and(|t| t <= self.clock) {
                self.terminate(&p.gr, Terminal::Cancelled);
            } else if p.e2e_deadline_at.is_some_and(|at| self.clock > at) {
                self.terminate(&p.gr, Terminal::TimedOut(TimeoutPhase::Decode));
            } else {
                keep.push_back(p);
            }
        }
        self.preempted = keep;
    }

    /// Resumes preempted requests (FIFO, ahead of new admissions) while
    /// there is room. A resume re-prefills the evicted context, which
    /// rebuilds the KV cache bit-identically; the request then decodes
    /// on from its preserved sampler and last token as if never evicted.
    fn resume_preempted(&mut self) {
        while !self.preempted.is_empty() {
            let room = self.cfg.max_batch.min(self.backend.capacity());
            if self.active.len() + self.prefilling.len() >= room {
                if self.active.is_empty() && self.prefilling.is_empty() {
                    // room == 0 with nothing resident: capacity has
                    // collapsed and nothing will ever free a slot for
                    // these to resume into.
                    let stuck: Vec<PreemptedReq> = self.preempted.drain(..).collect();
                    for p in stuck {
                        self.terminate(
                            &p.gr,
                            Terminal::Failed("capacity collapsed while preempted".into()),
                        );
                    }
                }
                return;
            }
            let Some(p) = self.preempted.pop_front() else {
                return;
            };
            // The resumable context is the prompt plus every produced
            // token except the last: the last produced token is the next
            // decode *input* and was never appended to the KV cache.
            let context: Option<Vec<u32>> = p.gr.req.prompt.as_ref().map(|prompt| {
                let mut c = prompt.clone();
                c.extend_from_slice(&p.tokens[..p.produced - 1]);
                c
            });
            let resumed = self.with_retries(|b| b.resume(&p.seq, context.as_deref()));
            let start = self.clock;
            match resumed {
                Ok(outcome) => {
                    self.clock = start + outcome.elapsed_ms;
                    self.admits += 1;
                    self.active.push(ActiveReq {
                        slot: outcome.slot,
                        first_token_ms: p.first_token_ms,
                        tokens: p.tokens,
                        produced: p.produced,
                        target: p.target,
                        e2e_deadline_at: p.e2e_deadline_at,
                        bounces: p.bounces,
                        produced_at_admit: p.produced,
                        admit_seq: self.admits,
                        last_used_ms: self.clock,
                        gr: p.gr,
                    });
                }
                Err(
                    e @ (BackendError::SlotsExhausted { .. } | BackendError::PagesExhausted { .. }),
                ) => {
                    if self.active.is_empty() && self.prefilling.is_empty() {
                        // Nothing resident will ever free pages, and this
                        // context alone does not fit: it can never come
                        // back.
                        self.terminate(&p.gr, Terminal::Failed(format!("resume cannot fit: {e}")));
                        continue;
                    }
                    // A resident will free pages; hold and retry later.
                    self.preempted.push_front(p);
                    return;
                }
                Err(e) => {
                    self.terminate(&p.gr, Terminal::Failed(format!("resume failed: {e}")));
                    if matches!(e, BackendError::WorkerPoisoned { .. }) {
                        self.drain_lost_backend();
                        return;
                    }
                }
            }
        }
    }

    /// Advances every open chunked prefill by one chunk. Runs once per
    /// scheduler iteration, so long prompts interleave with resident
    /// decode rounds instead of stalling the whole batch.
    fn prefill_round(&mut self) {
        let chunk = match self.cfg.prefill_chunk {
            Some(c) if !self.prefilling.is_empty() => c,
            _ => return,
        };
        let mut work: VecDeque<PrefillingReq> = std::mem::take(&mut self.prefilling).into();
        let mut keep: Vec<PrefillingReq> = Vec::with_capacity(work.len());
        while let Some(mut p) = work.pop_front() {
            if p.gr.cancel_ms.is_some_and(|t| t <= self.clock) {
                let _ = self.backend.release(p.slot);
                self.terminate(&p.gr, Terminal::Cancelled);
                continue;
            }
            if p.e2e_deadline_at.is_some_and(|at| self.clock > at)
                || self
                    .cfg
                    .ttft_deadline_ms
                    .is_some_and(|d| self.clock > p.gr.req.arrival_ms + d)
            {
                let _ = self.backend.release(p.slot);
                self.terminate(&p.gr, Terminal::TimedOut(TimeoutPhase::FirstToken));
                continue;
            }
            let stepped = self.with_retries(|b| b.prefill_step(p.slot, chunk));
            match stepped {
                Ok(progress) => {
                    self.clock += progress.elapsed_ms;
                    p.stalls = 0;
                    if progress.remaining > 0 {
                        keep.push(p);
                        continue;
                    }
                    // First token exists now — same gates as `admit`.
                    let ttft_late = self
                        .cfg
                        .ttft_deadline_ms
                        .is_some_and(|d| self.clock > p.gr.req.arrival_ms + d);
                    if ttft_late || p.e2e_deadline_at.is_some_and(|at| self.clock > at) {
                        self.release_quietly(p.slot);
                        self.terminate(&p.gr, Terminal::TimedOut(TimeoutPhase::FirstToken));
                        continue;
                    }
                    self.admits += 1;
                    let entry = ActiveReq {
                        slot: p.slot,
                        first_token_ms: self.clock,
                        tokens: progress.first_token.into_iter().collect(),
                        produced: 1,
                        target: p.target,
                        e2e_deadline_at: p.e2e_deadline_at,
                        bounces: 0,
                        produced_at_admit: 1,
                        admit_seq: self.admits,
                        last_used_ms: self.clock,
                        gr: p.gr,
                    };
                    if entry.produced >= entry.target {
                        self.complete(entry);
                    } else {
                        self.active.push(entry);
                    }
                }
                Err(e @ BackendError::PagesExhausted { .. }) => {
                    let relieved =
                        matches!(self.cfg.shed, ShedPolicy::Preempt) && self.try_preempt_one();
                    if relieved {
                        // Pressure relieved; the chunk retries next round.
                        keep.push(p);
                    } else {
                        p.stalls += 1;
                        if p.stalls > BOUNCE_LIMIT {
                            let _ = self.backend.release(p.slot);
                            self.terminate(
                                &p.gr,
                                Terminal::Failed(format!("prefill starved: {e}")),
                            );
                        } else {
                            keep.push(p);
                        }
                    }
                }
                Err(e) => {
                    let _ = self.backend.release(p.slot);
                    self.terminate(&p.gr, Terminal::Failed(e.to_string()));
                    if matches!(e, BackendError::WorkerPoisoned { .. }) {
                        keep.extend(work.drain(..));
                        self.prefilling = keep;
                        self.drain_lost_backend();
                        return;
                    }
                }
            }
        }
        self.prefilling = keep;
    }

    /// One decode iteration over every resident, with retry. On permanent
    /// failure every resident fails (their streams cannot be trusted to
    /// resume exactly).
    fn decode_round(&mut self) {
        let outcome = loop {
            let slots: Vec<usize> = self.active.iter().map(|a| a.slot).collect();
            match self.with_retries(|b| b.decode_batch(&slots)) {
                Ok(o) => break o,
                Err(BackendError::PagesExhausted { .. })
                    if matches!(self.cfg.shed, ShedPolicy::Preempt)
                        && self.backend.supports_preemption() =>
                {
                    // The page pool cannot grow every resident by one
                    // token. Evict the youngest resident (its pages come
                    // back; its progress is kept) and retry the round
                    // with the smaller batch. A failed decode touched no
                    // state, so the retry is bit-exact.
                    if !self.try_preempt_one() || self.active.is_empty() {
                        return;
                    }
                }
                Err(e) => {
                    if matches!(e, BackendError::WorkerPoisoned { .. }) {
                        self.drain_lost_backend();
                    } else {
                        let detail =
                            format!("decode failed after {} retries: {e}", self.cfg.max_retries);
                        for a in std::mem::take(&mut self.active) {
                            let _ = self.backend.release(a.slot);
                            self.terminate(&a.gr, Terminal::Failed(detail.clone()));
                        }
                    }
                    return;
                }
            }
        };
        self.clock += outcome.elapsed_ms;
        self.iterations += 1;
        self.occupancy.add(self.active.len() as f64);
        for (i, a) in self.active.iter_mut().enumerate() {
            a.produced += 1;
            a.last_used_ms = self.clock;
            if let Some(tokens) = &outcome.tokens {
                a.tokens.push(tokens[i]);
            }
        }

        // Completion first (a request that just finished beat its
        // deadline by definition of "finished at this clock"), then
        // cancellation, then deadline enforcement.
        let mut still_active = Vec::with_capacity(self.active.len());
        for a in std::mem::take(&mut self.active) {
            if a.produced >= a.target {
                self.complete(a);
            } else if a.gr.cancel_ms.is_some_and(|t| t <= self.clock) {
                self.release_quietly(a.slot);
                self.terminate(&a.gr, Terminal::Cancelled);
            } else if a.e2e_deadline_at.is_some_and(|at| self.clock > at) {
                self.release_quietly(a.slot);
                self.terminate(&a.gr, Terminal::TimedOut(TimeoutPhase::Decode));
            } else {
                still_active.push(a);
            }
        }
        self.active = still_active;
    }
}

/// Serves a workload through the fault-tolerant gateway on any backend.
///
/// Drives the same continuous-batching schedule as
/// [`crate::batcher::serve_continuous_on`], but every hazard a real
/// ingress faces — queue overflow, deadline misses, client cancellations,
/// transient and permanent backend faults, collapsing slot capacity — is
/// absorbed into a per-request [`Terminal`] state instead of a panic or a
/// hang. The run always terminates: every offered request reaches exactly
/// one terminal state.
///
/// Requests that complete produce token streams bit-identical to a
/// fault-free run of the same request (vetoed operations never touch
/// backend state; per-request samplers make streams schedule-invariant).
///
/// # Panics
///
/// Panics only on caller bugs: an invalid `cfg` (see
/// [`GatewayConfig::validate`]) or duplicate request ids.
pub fn serve_gateway_on<B: InferenceBackend>(
    backend: &mut B,
    requests: &[GatewayRequest],
    cfg: &GatewayConfig,
) -> GatewayReport {
    cfg.validate();
    let mut sorted: Vec<GatewayRequest> = requests.to_vec();
    // total_cmp: a total order even on NaN arrival times, so the sort
    // itself can never panic.
    sorted.sort_by(|a, b| a.req.arrival_ms.total_cmp(&b.req.arrival_ms));
    {
        let mut ids: Vec<u64> = sorted.iter().map(|g| g.req.id).collect();
        ids.sort_unstable();
        assert!(
            ids.windows(2).all(|w| w[0] != w[1]),
            "duplicate request ids break terminal accounting"
        );
    }

    let mut run = Run {
        backend,
        cfg,
        clock: 0.0,
        pending: sorted.into(),
        queued: VecDeque::new(),
        active: Vec::new(),
        prefilling: Vec::new(),
        preempted: VecDeque::new(),
        terminals: Vec::new(),
        done: Vec::new(),
        outputs: Vec::new(),
        occupancy: Summary::new(),
        iterations: 0,
        retries: 0,
        degraded: 0,
        preemptions: 0,
        admits: 0,
    };

    while !run.pending.is_empty()
        || !run.queued.is_empty()
        || !run.active.is_empty()
        || !run.prefilling.is_empty()
        || !run.preempted.is_empty()
    {
        // Idle: jump to the next arrival (the only future event while
        // nothing is queued or resident — queued requests either admit or
        // terminate within this iteration).
        if run.active.is_empty()
            && run.queued.is_empty()
            && run.prefilling.is_empty()
            && run.preempted.is_empty()
        {
            if let Some(front) = run.pending.front() {
                run.clock = run.clock.max(front.req.arrival_ms);
            }
        }
        run.pump_arrivals();
        run.scan_queued();
        run.scan_preempted();
        run.resume_preempted();
        run.admit();
        run.prefill_round();
        if run.active.is_empty() {
            continue;
        }
        run.decode_round();
    }

    GatewayReport {
        serving: ServingReport::with_outputs(run.done, run.outputs, run.iterations, run.occupancy),
        terminals: run.terminals,
        retries: run.retries,
        degraded: run.degraded,
        preemptions: run.preemptions,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use looplynx_core::backend::{FunctionalBackend, SamplerSpec, SimBackend};
    use looplynx_core::config::ArchConfig;
    use looplynx_core::engine::{DistributedGpt2, LoopLynx};
    use looplynx_core::fault::{FaultPlan, FaultyBackend};
    use looplynx_core::router::RingMode;
    use looplynx_model::config::ModelConfig;
    use looplynx_model::gpt2::Gpt2Model;

    use crate::arrival::ArrivalProcess;
    use crate::batcher::{serve_continuous_on, ServeConfig};

    fn engine(nodes: usize) -> LoopLynx {
        LoopLynx::new(
            ModelConfig::gpt2_medium(),
            ArchConfig::builder().nodes(nodes).build().unwrap(),
        )
        .unwrap()
    }

    fn functional_backend(slots: usize) -> (Gpt2Model, FunctionalBackend) {
        let model = Gpt2Model::synthetic(&ModelConfig::tiny(), 2024);
        let dist = DistributedGpt2::with_slots(&model, 2, RingMode::Exact, slots, 48).unwrap();
        (model, FunctionalBackend::new(dist, SamplerSpec::Greedy))
    }

    fn prompted_workload(n: usize, seed: u64) -> Vec<Request> {
        ArrivalProcess::Trace(vec![0.0; n]).workload_with_prompts(
            n,
            &[(6, 5), (4, 7)],
            ModelConfig::tiny().vocab,
            seed,
        )
    }

    fn no_deadline_cfg() -> GatewayConfig {
        GatewayConfig::default()
    }

    #[test]
    fn fault_free_gateway_matches_continuous_scheduler() {
        let e = engine(2);
        let reqs = ArrivalProcess::Trace(vec![0.0, 0.0, 4.0, 9.0]).workload(4, &[(16, 8), (12, 5)]);
        let baseline = serve_continuous_on(&mut SimBackend::new(&e), &reqs, &ServeConfig::new(8));
        let gated = serve_gateway_on(
            &mut SimBackend::new(&e),
            &GatewayRequest::from_workload(&reqs),
            &no_deadline_cfg(),
        );
        assert!(gated.is_conserved(&GatewayRequest::from_workload(&reqs)));
        assert_eq!(gated.counts().completed, reqs.len());
        assert_eq!(gated.retries, 0);
        // Same schedule, same clock: per-request timing agrees exactly.
        let mut a: Vec<_> = baseline.requests.clone();
        let mut b: Vec<_> = gated.serving.requests.clone();
        a.sort_by_key(|m| m.id);
        b.sort_by_key(|m| m.id);
        assert_eq!(a.len(), b.len());
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(x.id, y.id);
            assert!((x.first_token_ms - y.first_token_ms).abs() < 1e-9);
            assert!((x.completion_ms - y.completion_ms).abs() < 1e-9);
        }
    }

    #[test]
    fn queue_overflow_sheds_excess_arrivals() {
        let e = engine(1);
        let reqs = ArrivalProcess::Trace(vec![0.0; 6]).workload(6, &[(16, 8)]);
        let offered = GatewayRequest::from_workload(&reqs);
        let cfg = GatewayConfig {
            queue_depth: 2,
            ..no_deadline_cfg()
        };
        let report = serve_gateway_on(&mut SimBackend::new(&e), &offered, &cfg);
        assert!(report.is_conserved(&offered));
        let c = report.counts();
        assert_eq!(c.completed, 2);
        assert_eq!(c.rejected, 4);
        for t in &report.terminals {
            if let Terminal::Rejected(r) = t.terminal {
                assert_eq!(r, RejectReason::QueueFull);
            }
        }
    }

    #[test]
    fn ttft_deadline_sheds_late_queued_requests() {
        let e = engine(1);
        // Batch of 1 serializes the queue; a tight TTFT budget means only
        // the head of the line can make it.
        let reqs = ArrivalProcess::Trace(vec![0.0; 4]).workload(4, &[(32, 16)]);
        let offered = GatewayRequest::from_workload(&reqs);
        let cfg = GatewayConfig {
            max_batch: 1,
            ttft_deadline_ms: Some(1.0),
            ..no_deadline_cfg()
        };
        let report = serve_gateway_on(&mut SimBackend::new(&e), &offered, &cfg);
        assert!(report.is_conserved(&offered));
        let c = report.counts();
        assert!(c.timed_out >= 1, "tight TTFT budget must shed: {report}");
        assert_eq!(c.completed + c.timed_out, 4);
        assert!(report
            .terminals
            .iter()
            .all(|t| !matches!(t.terminal, Terminal::Failed(_))));
    }

    #[test]
    fn e2e_deadline_expires_mid_decode() {
        let e = engine(1);
        // Prefill of 16 tokens takes ~85 simulated ms and each decode
        // ~6 ms: a 300 ms budget survives prefill but not 64 tokens.
        let reqs = ArrivalProcess::Trace(vec![0.0]).workload(1, &[(16, 64)]);
        let offered: Vec<GatewayRequest> = GatewayRequest::from_workload(&reqs)
            .into_iter()
            .map(|g| g.with_deadline(300.0))
            .collect();
        let report = serve_gateway_on(&mut SimBackend::new(&e), &offered, &no_deadline_cfg());
        assert!(report.is_conserved(&offered));
        assert_eq!(
            report.terminal_of(0),
            Some(&Terminal::TimedOut(TimeoutPhase::Decode))
        );
        assert_eq!(report.serving.completed(), 0);
    }

    #[test]
    fn cancellation_honored_queued_and_resident() {
        let e = engine(1);
        let reqs = ArrivalProcess::Trace(vec![0.0, 0.0, 0.0]).workload(3, &[(16, 32)]);
        let mut offered = GatewayRequest::from_workload(&reqs);
        // Batch of 1: request 1 waits behind request 0 and cancels while
        // queued; request 0 cancels mid-decode.
        offered[0] = offered[0].clone().cancel_at(40.0);
        offered[1] = offered[1].clone().cancel_at(1.0);
        let cfg = GatewayConfig {
            max_batch: 1,
            ..no_deadline_cfg()
        };
        let report = serve_gateway_on(&mut SimBackend::new(&e), &offered, &cfg);
        assert!(report.is_conserved(&offered));
        assert_eq!(report.terminal_of(0), Some(&Terminal::Cancelled));
        assert_eq!(report.terminal_of(1), Some(&Terminal::Cancelled));
        assert_eq!(report.terminal_of(2), Some(&Terminal::Completed));
    }

    #[test]
    fn degrade_policy_trades_length_for_goodput() {
        let e = engine(1);
        let reqs = ArrivalProcess::Trace(vec![0.0; 8]).workload(8, &[(16, 32)]);
        let offered = GatewayRequest::from_workload(&reqs);
        let cfg = GatewayConfig {
            max_batch: 2,
            queue_depth: 8,
            shed: ShedPolicy::Degrade {
                max_decode_tokens: 4,
            },
            ..no_deadline_cfg()
        };
        let report = serve_gateway_on(&mut SimBackend::new(&e), &offered, &cfg);
        assert!(report.is_conserved(&offered));
        assert_eq!(report.counts().completed, 8);
        assert!(report.degraded > 0, "pressure must trigger degradation");
        assert!(report.serving.requests.iter().any(|m| m.decode_tokens == 4));
        // Early admissions saw no pressure and kept their full ask.
        assert!(report
            .serving
            .requests
            .iter()
            .any(|m| m.decode_tokens == 32));
    }

    #[test]
    fn oversized_request_is_rejected_not_a_panic() {
        let e = engine(1);
        let mut offered = GatewayRequest::from_workload(
            &ArrivalProcess::Trace(vec![0.0]).workload(1, &[(16, 8)]),
        );
        offered.push(GatewayRequest::new(Request::new(1, 0.0, 5000, 100)));
        let report = serve_gateway_on(&mut SimBackend::new(&e), &offered, &no_deadline_cfg());
        assert!(report.is_conserved(&offered));
        assert_eq!(
            report.terminal_of(1),
            Some(&Terminal::Rejected(RejectReason::TooLong))
        );
        assert_eq!(report.terminal_of(0), Some(&Terminal::Completed));
    }

    #[test]
    fn all_rejected_run_produces_well_formed_report() {
        let e = engine(1);
        let offered: Vec<GatewayRequest> = (0..3)
            .map(|id| GatewayRequest::new(Request::new(id, 0.0, 5000, 100)))
            .collect();
        let report = serve_gateway_on(&mut SimBackend::new(&e), &offered, &no_deadline_cfg());
        assert!(report.is_conserved(&offered));
        assert_eq!(report.counts().rejected, 3);
        assert_eq!(report.goodput_tok_s(), 0.0);
        assert_eq!(report.serving.makespan_ms(), 0.0);
        assert_eq!(report.serving.ttft_ms.p50(), None);
        // Display must not panic on the degenerate report.
        let _ = format!("{report}");
    }

    #[test]
    fn transient_faults_retry_to_bit_exact_completion() {
        let reqs = prompted_workload(5, 11);
        let offered = GatewayRequest::from_workload(&reqs);

        let (_m1, mut clean) = functional_backend(4);
        let clean_report = serve_gateway_on(&mut clean, &offered, &no_deadline_cfg());
        assert_eq!(clean_report.counts().completed, 5);

        let (_m2, inner) = functional_backend(4);
        let mut faulty = FaultyBackend::new(
            inner,
            FaultPlan {
                seed: 7,
                prefill_fail_rate: 0.3,
                decode_fail_rate: 0.3,
                stall_rate: 0.0,
                stall_ms: 0.0,
                release_leak_rate: 0.0,
                page_fault_rate: 0.0,
            },
        );
        let cfg = GatewayConfig {
            max_retries: 64,
            ..no_deadline_cfg()
        };
        let report = serve_gateway_on(&mut faulty, &offered, &cfg);
        assert!(report.is_conserved(&offered));
        assert_eq!(report.counts().completed, 5, "{report}");
        assert!(report.retries > 0, "fault plan must have fired");
        for r in &reqs {
            assert_eq!(
                report.serving.output_tokens(r.id),
                clean_report.serving.output_tokens(r.id),
                "request {} diverged under retry",
                r.id
            );
        }
    }

    #[test]
    fn exhausted_retries_fail_requests_without_hanging() {
        let (_m, inner) = functional_backend(4);
        let mut faulty = FaultyBackend::new(
            inner,
            FaultPlan {
                seed: 3,
                prefill_fail_rate: 1.0,
                decode_fail_rate: 1.0,
                stall_rate: 0.0,
                stall_ms: 0.0,
                release_leak_rate: 0.0,
                page_fault_rate: 0.0,
            },
        );
        let reqs = prompted_workload(3, 5);
        let offered = GatewayRequest::from_workload(&reqs);
        let cfg = GatewayConfig {
            max_retries: 2,
            ..no_deadline_cfg()
        };
        let report = serve_gateway_on(&mut faulty, &offered, &cfg);
        assert!(report.is_conserved(&offered));
        assert_eq!(report.counts().failed, 3);
        for t in &report.terminals {
            assert!(matches!(t.terminal, Terminal::Failed(_)));
        }
    }

    #[test]
    fn leaked_slots_collapse_into_overload_rejection() {
        // Every release leaks: capacity shrinks to zero and the tail of
        // the workload must be shed, not hung.
        let (_m, inner) = functional_backend(2);
        let mut faulty = FaultyBackend::new(
            inner,
            FaultPlan {
                seed: 9,
                prefill_fail_rate: 0.0,
                decode_fail_rate: 0.0,
                stall_rate: 0.0,
                stall_ms: 0.0,
                release_leak_rate: 1.0,
                page_fault_rate: 0.0,
            },
        );
        let reqs = prompted_workload(6, 21);
        let offered = GatewayRequest::from_workload(&reqs);
        let report = serve_gateway_on(&mut faulty, &offered, &no_deadline_cfg());
        assert!(report.is_conserved(&offered));
        let c = report.counts();
        assert_eq!(c.completed, 2, "two slots leak after two completions");
        assert_eq!(c.rejected, 4);
        assert!(report
            .terminals
            .iter()
            .all(|t| !matches!(t.terminal, Terminal::Rejected(RejectReason::QueueFull))));
    }

    #[test]
    fn poisoned_backend_fails_head_and_sheds_tail() {
        let (_m, mut backend) = functional_backend(4);
        // Poison the backend up front: an over-long prompt panics inside
        // the engine and the backend catches it.
        let oversize = vec![1u32; 64];
        assert!(backend.prefill(64, Some(&oversize), 0).is_err());
        let reqs = prompted_workload(3, 8);
        let offered = GatewayRequest::from_workload(&reqs);
        let report = serve_gateway_on(&mut backend, &offered, &no_deadline_cfg());
        assert!(report.is_conserved(&offered));
        let c = report.counts();
        assert_eq!(c.failed, 1, "head request observes the poisoned worker");
        assert_eq!(c.rejected, 2, "tail is shed, not hung");
    }

    #[test]
    fn stalls_bill_the_serving_clock() {
        let (_m1, inner) = functional_backend(4);
        let mut faulty = FaultyBackend::new(
            inner,
            FaultPlan {
                seed: 13,
                prefill_fail_rate: 0.0,
                decode_fail_rate: 0.0,
                stall_rate: 1.0,
                stall_ms: 500.0,
                release_leak_rate: 0.0,
                page_fault_rate: 0.0,
            },
        );
        let reqs = prompted_workload(2, 31);
        let offered = GatewayRequest::from_workload(&reqs);
        let stalled = serve_gateway_on(&mut faulty, &offered, &no_deadline_cfg());
        let (_m2, mut clean) = functional_backend(4);
        let smooth = serve_gateway_on(&mut clean, &offered, &no_deadline_cfg());
        assert_eq!(stalled.counts().completed, 2);
        assert!(
            stalled.serving.e2e_ms.p50().unwrap() > smooth.serving.e2e_ms.p50().unwrap() + 400.0,
            "stalls must show up in latency"
        );
    }

    /// A paged functional backend oversubscribed on purpose: many slots,
    /// a page pool far smaller than `slots × capacity`.
    fn paged_backend(slots: usize, pool_pages: usize) -> (Gpt2Model, FunctionalBackend) {
        let model = Gpt2Model::synthetic(&ModelConfig::tiny(), 2024);
        let dist =
            DistributedGpt2::with_paged_slots(&model, 2, RingMode::Exact, slots, 48, 4, pool_pages)
                .unwrap();
        (model, FunctionalBackend::new(dist, SamplerSpec::Greedy))
    }

    #[test]
    fn preempt_policy_oversubscribes_without_failures() {
        // With 4-token pages, 8 resident ~11-token contexts want ~24
        // pages; the pool has 12 (the minimum geometry allows). Reject
        // policy cannot serve this concurrency; Preempt must, with every
        // stream bit-identical to an uncontended run.
        let reqs = prompted_workload(8, 17);
        let offered = GatewayRequest::from_workload(&reqs);

        let (_m1, mut roomy) = functional_backend(8);
        let baseline = serve_gateway_on(&mut roomy, &offered, &no_deadline_cfg());
        assert_eq!(baseline.counts().completed, 8);

        let (_m2, mut tight) = paged_backend(8, 12);
        let cfg = GatewayConfig {
            shed: ShedPolicy::Preempt,
            ..no_deadline_cfg()
        };
        let report = serve_gateway_on(&mut tight, &offered, &cfg);
        assert!(report.is_conserved(&offered));
        assert_eq!(report.counts().completed, 8, "{report}");
        assert!(
            report.preemptions > 0,
            "a 10-page pool under 8 residents must preempt: {report}"
        );
        for r in &reqs {
            assert_eq!(
                report.serving.output_tokens(r.id),
                baseline.serving.output_tokens(r.id),
                "request {} diverged across preemption",
                r.id
            );
        }
    }

    #[test]
    fn evict_policies_rank_candidates_as_documented() {
        let candidates = [
            EvictCandidate {
                admit_seq: 3,
                last_used_ms: 40.0,
                reclaimable_pages: 1,
            },
            EvictCandidate {
                admit_seq: 7,
                last_used_ms: 40.0,
                reclaimable_pages: 1,
            },
            EvictCandidate {
                admit_seq: 5,
                last_used_ms: 10.0,
                reclaimable_pages: 4,
            },
        ];
        // Youngest-first: largest admission ordinal, regardless of pages.
        assert_eq!(YoungestFirst.pick(&candidates), 1);
        // LruReclaim: the most exclusive pages wins outright.
        assert_eq!(LruReclaim.pick(&candidates), 2);
        // Page tie → least recently used; full tie → oldest admission.
        let tied = [
            EvictCandidate {
                admit_seq: 9,
                last_used_ms: 25.0,
                reclaimable_pages: 2,
            },
            EvictCandidate {
                admit_seq: 4,
                last_used_ms: 12.0,
                reclaimable_pages: 2,
            },
            EvictCandidate {
                admit_seq: 2,
                last_used_ms: 12.0,
                reclaimable_pages: 2,
            },
        ];
        assert_eq!(LruReclaim.pick(&tied), 2);
    }

    #[test]
    fn lru_reclaim_policy_serves_oversubscribed_pool_bit_identically() {
        // Same oversubscription as the youngest-first test, but victims
        // are chosen by reclaimable pages. Scheduling changes; tokens
        // must not (per-request samplers are schedule-invariant).
        let reqs = prompted_workload(8, 17);
        let offered = GatewayRequest::from_workload(&reqs);

        let (_m1, mut roomy) = functional_backend(8);
        let baseline = serve_gateway_on(&mut roomy, &offered, &no_deadline_cfg());

        let (_m2, mut tight) = paged_backend(8, 12);
        let cfg = GatewayConfig {
            shed: ShedPolicy::Preempt,
            evict: EvictPolicyKind::LruReclaim,
            ..no_deadline_cfg()
        };
        let report = serve_gateway_on(&mut tight, &offered, &cfg);
        assert!(report.is_conserved(&offered));
        assert_eq!(report.counts().completed, 8, "{report}");
        assert!(report.preemptions > 0, "tight pool must preempt: {report}");
        for r in &reqs {
            assert_eq!(
                report.serving.output_tokens(r.id),
                baseline.serving.output_tokens(r.id),
                "request {} diverged under LruReclaim eviction",
                r.id
            );
        }
    }

    #[test]
    fn chunked_prefill_is_bit_identical_to_one_pass() {
        let reqs = prompted_workload(6, 23);
        let offered = GatewayRequest::from_workload(&reqs);

        let (_m1, mut one_pass) = functional_backend(4);
        let baseline = serve_gateway_on(&mut one_pass, &offered, &no_deadline_cfg());
        assert_eq!(baseline.counts().completed, 6);

        for chunk in [1usize, 3, 16] {
            let (_m2, mut chunked) = functional_backend(4);
            let cfg = GatewayConfig {
                prefill_chunk: Some(chunk),
                ..no_deadline_cfg()
            };
            let report = serve_gateway_on(&mut chunked, &offered, &cfg);
            assert!(report.is_conserved(&offered));
            assert_eq!(report.counts().completed, 6, "chunk={chunk}: {report}");
            for r in &reqs {
                assert_eq!(
                    report.serving.output_tokens(r.id),
                    baseline.serving.output_tokens(r.id),
                    "request {} diverged under chunk={chunk}",
                    r.id
                );
            }
        }
    }

    #[test]
    fn chunked_prefill_with_preemption_under_page_pressure() {
        // Chunked prefill AND an oversubscribed pool at once: prefill
        // chunks compete with resident decode for pages, and preemption
        // arbitrates. Everything still completes bit-identically.
        let reqs = prompted_workload(8, 29);
        let offered = GatewayRequest::from_workload(&reqs);

        let (_m1, mut roomy) = functional_backend(8);
        let baseline = serve_gateway_on(&mut roomy, &offered, &no_deadline_cfg());

        let (_m2, mut tight) = paged_backend(8, 12);
        let cfg = GatewayConfig {
            shed: ShedPolicy::Preempt,
            prefill_chunk: Some(3),
            ..no_deadline_cfg()
        };
        let report = serve_gateway_on(&mut tight, &offered, &cfg);
        assert!(report.is_conserved(&offered));
        assert_eq!(report.counts().completed, 8, "{report}");
        for r in &reqs {
            assert_eq!(
                report.serving.output_tokens(r.id),
                baseline.serving.output_tokens(r.id),
                "request {} diverged under chunked+preempted serving",
                r.id
            );
        }
    }

    #[test]
    fn injected_page_faults_recover_under_preempt_policy() {
        let reqs = prompted_workload(6, 41);
        let offered = GatewayRequest::from_workload(&reqs);

        let (_m1, mut clean) = functional_backend(4);
        let baseline = serve_gateway_on(&mut clean, &offered, &no_deadline_cfg());

        let (_m2, inner) = functional_backend(4);
        let mut faulty = FaultyBackend::new(
            inner,
            FaultPlan {
                seed: 19,
                prefill_fail_rate: 0.0,
                decode_fail_rate: 0.0,
                stall_rate: 0.0,
                stall_ms: 0.0,
                release_leak_rate: 0.0,
                page_fault_rate: 0.25,
            },
        );
        let cfg = GatewayConfig {
            shed: ShedPolicy::Preempt,
            ..no_deadline_cfg()
        };
        let report = serve_gateway_on(&mut faulty, &offered, &cfg);
        assert!(report.is_conserved(&offered));
        assert_eq!(
            report.counts().completed,
            6,
            "preemption must absorb injected page faults: {report}"
        );
        for r in &reqs {
            assert_eq!(
                report.serving.output_tokens(r.id),
                baseline.serving.output_tokens(r.id),
                "request {} diverged across fault-driven preemption",
                r.id
            );
        }
    }

    #[test]
    fn sim_backend_preempts_without_token_tracking() {
        // The timing backend supports preemption with no prompt/token
        // state; Preempt policy must work there too (resume recharges the
        // prefill clock). Pool pressure never arises on SimBackend, so we
        // just check the policy is inert and harmless.
        let e = engine(2);
        let reqs = ArrivalProcess::Trace(vec![0.0; 4]).workload(4, &[(16, 8)]);
        let offered = GatewayRequest::from_workload(&reqs);
        let cfg = GatewayConfig {
            shed: ShedPolicy::Preempt,
            ..no_deadline_cfg()
        };
        let report = serve_gateway_on(&mut SimBackend::new(&e), &offered, &cfg);
        assert!(report.is_conserved(&offered));
        assert_eq!(report.counts().completed, 4);
        assert_eq!(report.preemptions, 0);
    }

    #[test]
    #[should_panic(expected = "duplicate request ids")]
    fn duplicate_ids_rejected() {
        let e = engine(1);
        let offered = vec![
            GatewayRequest::new(Request::new(7, 0.0, 8, 4)),
            GatewayRequest::new(Request::new(7, 1.0, 8, 4)),
        ];
        let _ = serve_gateway_on(&mut SimBackend::new(&e), &offered, &no_deadline_cfg());
    }
}
