//! Utilization and throughput accounting.
//!
//! The paper's central argument is about *peak area utilization*: temporal
//! architectures serialize functional units, spatial architectures leave
//! most instantiated kernels idle during decode, and the hybrid design keeps
//! one large kernel busy at a time at full width. These accumulators let the
//! scheduler quantify that claim.

use std::fmt;

use serde::{Deserialize, Serialize};

use crate::time::Cycles;

/// Busy-time accumulator for one hardware unit.
///
/// # Example
///
/// ```
/// use looplynx_sim::stats::Utilization;
/// use looplynx_sim::time::Cycles;
///
/// let mut u = Utilization::new("mp");
/// u.record_busy(Cycles::new(30));
/// u.record_busy(Cycles::new(20));
/// assert!((u.fraction_of(Cycles::new(100)) - 0.5).abs() < 1e-12);
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Utilization {
    name: String,
    busy: Cycles,
    activations: u64,
}

impl Utilization {
    /// Creates an accumulator for the unit with the given name.
    pub fn new(name: impl Into<String>) -> Self {
        Utilization {
            name: name.into(),
            busy: Cycles::ZERO,
            activations: 0,
        }
    }

    /// Unit name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Adds one activation of `busy` cycles.
    pub fn record_busy(&mut self, busy: Cycles) {
        self.busy += busy;
        self.activations += 1;
    }

    /// Total busy cycles.
    pub fn busy(&self) -> Cycles {
        self.busy
    }

    /// Number of recorded activations.
    pub fn activations(&self) -> u64 {
        self.activations
    }

    /// Busy fraction of the given span (clamped to 1.0; overlapping
    /// activations can transiently exceed the span in pipelined designs).
    pub fn fraction_of(&self, span: Cycles) -> f64 {
        if span == Cycles::ZERO {
            return 0.0;
        }
        (self.busy.as_f64() / span.as_f64()).min(1.0)
    }
}

impl fmt::Display for Utilization {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}: {} over {} activations",
            self.name, self.busy, self.activations
        )
    }
}

/// Streaming mean/min/max accumulator for scalar samples.
///
/// # Example
///
/// ```
/// use looplynx_sim::stats::Summary;
///
/// let mut s = Summary::new();
/// for x in [1.0, 2.0, 3.0] {
///     s.add(x);
/// }
/// assert_eq!(s.mean(), 2.0);
/// assert_eq!(s.min(), Some(1.0));
/// assert_eq!(s.max(), Some(3.0));
/// ```
#[derive(Debug, Clone, Copy, Default, PartialEq, Serialize, Deserialize)]
pub struct Summary {
    count: u64,
    sum: f64,
    min: f64,
    max: f64,
}

impl Summary {
    /// Creates an empty summary.
    pub fn new() -> Self {
        Summary {
            count: 0,
            sum: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
        }
    }

    /// Adds one sample.
    ///
    /// # Panics
    ///
    /// Panics if `x` is not finite.
    pub fn add(&mut self, x: f64) {
        assert!(x.is_finite(), "non-finite sample: {x}");
        self.count += 1;
        self.sum += x;
        self.min = self.min.min(x);
        self.max = self.max.max(x);
    }

    /// Number of samples.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Sum of all samples.
    pub fn sum(&self) -> f64 {
        self.sum
    }

    /// Mean of the samples, `0.0` when empty.
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum / self.count as f64
        }
    }

    /// Smallest sample, `None` when empty.
    pub fn min(&self) -> Option<f64> {
        (self.count > 0).then_some(self.min)
    }

    /// Largest sample, `None` when empty.
    pub fn max(&self) -> Option<f64> {
        (self.count > 0).then_some(self.max)
    }
}

impl fmt::Display for Summary {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.count == 0 {
            write!(f, "no samples")
        } else {
            write!(
                f,
                "n={} mean={:.3} min={:.3} max={:.3}",
                self.count,
                self.mean(),
                self.min,
                self.max
            )
        }
    }
}

/// Exact-sorted sample set with percentile queries — the
/// percentile-capable variant of [`Summary`] used by the serving layer
/// for TTFT/TPOT/end-to-end latency tails.
///
/// Samples are kept fully sorted (insertion is `O(n)`), so every
/// percentile is exact rather than estimated; the workloads this repo
/// simulates produce at most a few thousand samples, where exactness is
/// worth more than a reservoir's constant memory.
///
/// # Example
///
/// ```
/// use looplynx_sim::stats::Percentiles;
///
/// let mut p = Percentiles::new();
/// for x in 1..=100 {
///     p.add(x as f64);
/// }
/// assert_eq!(p.percentile(50.0), Some(50.0));
/// assert_eq!(p.p99(), Some(99.0));
/// ```
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct Percentiles {
    sorted: Vec<f64>,
}

impl Percentiles {
    /// Creates an empty sample set.
    pub fn new() -> Self {
        Percentiles { sorted: Vec::new() }
    }

    /// Adds one sample, keeping the set sorted.
    ///
    /// # Panics
    ///
    /// Panics if `x` is not finite.
    pub fn add(&mut self, x: f64) {
        assert!(x.is_finite(), "non-finite sample: {x}");
        let at = self.sorted.partition_point(|&s| s < x);
        self.sorted.insert(at, x);
    }

    /// Number of samples.
    pub fn count(&self) -> u64 {
        self.sorted.len() as u64
    }

    /// Whether no sample has been added yet.
    pub fn is_empty(&self) -> bool {
        self.sorted.is_empty()
    }

    /// Mean of the samples, `0.0` when empty.
    pub fn mean(&self) -> f64 {
        if self.sorted.is_empty() {
            0.0
        } else {
            self.sorted.iter().sum::<f64>() / self.sorted.len() as f64
        }
    }

    /// Smallest sample, `None` when empty.
    pub fn min(&self) -> Option<f64> {
        self.sorted.first().copied()
    }

    /// Largest sample, `None` when empty.
    pub fn max(&self) -> Option<f64> {
        self.sorted.last().copied()
    }

    /// Exact nearest-rank percentile: the smallest sample such that at
    /// least `p` percent of all samples are ≤ it. `None` when empty.
    ///
    /// # Panics
    ///
    /// Panics if `p` is outside `[0, 100]`.
    pub fn percentile(&self, p: f64) -> Option<f64> {
        assert!((0.0..=100.0).contains(&p), "percentile {p} out of range");
        if self.sorted.is_empty() {
            return None;
        }
        let n = self.sorted.len();
        let rank = ((p / 100.0 * n as f64).ceil() as usize).clamp(1, n);
        Some(self.sorted[rank - 1])
    }

    /// Median (50th percentile), `None` when empty.
    pub fn p50(&self) -> Option<f64> {
        self.percentile(50.0)
    }

    /// 95th percentile, `None` when empty.
    pub fn p95(&self) -> Option<f64> {
        self.percentile(95.0)
    }

    /// 99th percentile, `None` when empty.
    pub fn p99(&self) -> Option<f64> {
        self.percentile(99.0)
    }

    /// Collapses the samples into a streaming [`Summary`] (count, mean,
    /// min, max).
    pub fn summary(&self) -> Summary {
        let mut s = Summary::new();
        for &x in &self.sorted {
            s.add(x);
        }
        s
    }
}

impl fmt::Display for Percentiles {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.sorted.is_empty() {
            write!(f, "no samples")
        } else {
            write!(
                f,
                "n={} mean={:.3} p50={:.3} p95={:.3} p99={:.3} max={:.3}",
                self.count(),
                self.mean(),
                self.p50().expect("non-empty"),
                self.p95().expect("non-empty"),
                self.p99().expect("non-empty"),
                self.max().expect("non-empty"),
            )
        }
    }
}

/// Geometric mean over positive ratios (the conventional way to average
/// normalized speedups such as Fig. 8's latency ratios).
///
/// Returns `None` for an empty slice.
///
/// # Panics
///
/// Panics if any ratio is not strictly positive.
pub fn geometric_mean(ratios: &[f64]) -> Option<f64> {
    if ratios.is_empty() {
        return None;
    }
    let log_sum: f64 = ratios
        .iter()
        .map(|&r| {
            assert!(r > 0.0 && r.is_finite(), "invalid ratio {r}");
            r.ln()
        })
        .sum();
    Some((log_sum / ratios.len() as f64).exp())
}

/// Arithmetic mean; returns `None` for an empty slice.
pub fn arithmetic_mean(xs: &[f64]) -> Option<f64> {
    if xs.is_empty() {
        return None;
    }
    Some(xs.iter().sum::<f64>() / xs.len() as f64)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn utilization_accumulates() {
        let mut u = Utilization::new("unit");
        u.record_busy(Cycles::new(10));
        u.record_busy(Cycles::new(15));
        assert_eq!(u.busy().as_u64(), 25);
        assert_eq!(u.activations(), 2);
        assert!((u.fraction_of(Cycles::new(50)) - 0.5).abs() < 1e-12);
    }

    #[test]
    fn utilization_fraction_clamps() {
        let mut u = Utilization::new("unit");
        u.record_busy(Cycles::new(200));
        assert_eq!(u.fraction_of(Cycles::new(100)), 1.0);
        assert_eq!(u.fraction_of(Cycles::ZERO), 0.0);
    }

    #[test]
    fn summary_empty() {
        let s = Summary::new();
        assert_eq!(s.mean(), 0.0);
        assert_eq!(s.min(), None);
        assert_eq!(s.max(), None);
        assert_eq!(s.to_string(), "no samples");
    }

    #[test]
    fn summary_tracks_extremes() {
        let mut s = Summary::new();
        for x in [4.0, -1.0, 7.5] {
            s.add(x);
        }
        assert_eq!(s.count(), 3);
        assert_eq!(s.min(), Some(-1.0));
        assert_eq!(s.max(), Some(7.5));
        assert!((s.mean() - 3.5).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "non-finite")]
    fn summary_rejects_nan() {
        Summary::new().add(f64::NAN);
    }

    #[test]
    fn percentiles_empty() {
        let p = Percentiles::new();
        assert!(p.is_empty());
        assert_eq!(p.p50(), None);
        assert_eq!(p.mean(), 0.0);
        assert_eq!(p.to_string(), "no samples");
    }

    #[test]
    fn percentiles_are_exact_nearest_rank() {
        let mut p = Percentiles::new();
        // insert out of order to exercise the sorted insert
        for x in [5.0, 1.0, 4.0, 2.0, 3.0] {
            p.add(x);
        }
        assert_eq!(p.count(), 5);
        assert_eq!(p.min(), Some(1.0));
        assert_eq!(p.max(), Some(5.0));
        assert_eq!(p.percentile(0.0), Some(1.0));
        assert_eq!(p.p50(), Some(3.0));
        assert_eq!(p.percentile(100.0), Some(5.0));
        // with 5 samples, p95 and p99 both resolve to the maximum
        assert_eq!(p.p95(), Some(5.0));
        assert_eq!(p.p99(), Some(5.0));
        assert!((p.mean() - 3.0).abs() < 1e-12);
    }

    #[test]
    fn percentiles_match_summary() {
        let mut p = Percentiles::new();
        for x in [4.0, -1.0, 7.5] {
            p.add(x);
        }
        let s = p.summary();
        assert_eq!(s.count(), 3);
        assert_eq!(s.min(), Some(-1.0));
        assert_eq!(s.max(), Some(7.5));
        assert!((s.mean() - p.mean()).abs() < 1e-12);
    }

    #[test]
    fn percentiles_are_monotone_in_p() {
        let mut p = Percentiles::new();
        for i in 0..200 {
            p.add((i * 37 % 101) as f64);
        }
        let mut last = f64::NEG_INFINITY;
        for q in [0.0, 10.0, 50.0, 90.0, 95.0, 99.0, 100.0] {
            let v = p.percentile(q).unwrap();
            assert!(v >= last, "percentile({q}) regressed: {v} < {last}");
            last = v;
        }
    }

    #[test]
    #[should_panic(expected = "non-finite")]
    fn percentiles_reject_nan() {
        Percentiles::new().add(f64::NAN);
    }

    #[test]
    fn geomean_of_reciprocal_pair_is_one() {
        let g = geometric_mean(&[2.0, 0.5]).unwrap();
        assert!((g - 1.0).abs() < 1e-12);
    }

    #[test]
    fn geomean_empty_is_none() {
        assert_eq!(geometric_mean(&[]), None);
        assert_eq!(arithmetic_mean(&[]), None);
    }

    #[test]
    fn arithmetic_mean_basic() {
        assert!((arithmetic_mean(&[1.0, 2.0, 3.0]).unwrap() - 2.0).abs() < 1e-12);
    }
}
