//! Hot-path wall-clock benchmark: functional prefill/decode tokens/s at
//! 1/2/4 ring nodes plus the serve_sweep saturation wall-clock, written to
//! `BENCH_hotpath.json` (pass `--quick` for the CI-sized workload, and an
//! optional output path as the other argument).

use std::env;
use std::fs;

use looplynx_bench::hotpath;

fn main() {
    let mut quick = false;
    let mut out_path = String::from("BENCH_hotpath.json");
    for arg in env::args().skip(1) {
        match arg.as_str() {
            "--quick" => quick = true,
            other if other.starts_with('-') => {
                eprintln!("unknown flag {other}; usage: hotpath [--quick] [output.json]");
                std::process::exit(2);
            }
            other => out_path = other.to_string(),
        }
    }
    let report = hotpath::measure(quick);
    print!("{}", hotpath::render(&report));
    let json = hotpath::to_json(&report);
    fs::write(&out_path, &json).expect("write benchmark JSON");
    println!("wrote {out_path}");
}
