//! Property-based tests for the comparator models.

use proptest::prelude::*;

use looplynx_baselines::gpu::A100Model;
use looplynx_baselines::spatial::SpatialArch;
use looplynx_baselines::temporal::TemporalArch;
use looplynx_model::config::ModelConfig;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// GPU generation time and energy are monotone in both prompt and
    /// generation length.
    #[test]
    fn gpu_generation_monotone(prefill in 1usize..512, decode in 1usize..512) {
        let g = A100Model::paper_baseline();
        let m = ModelConfig::gpt2_medium();
        let base = g.generation(&m, prefill, decode);
        let longer_prompt = g.generation(&m, prefill + 64, decode);
        let longer_gen = g.generation(&m, prefill, decode + 64);
        prop_assert!(longer_prompt.total_ms >= base.total_ms);
        prop_assert!(longer_gen.total_ms > base.total_ms);
        prop_assert!(longer_gen.energy_joules > base.energy_joules);
        prop_assert!(base.energy_joules > 0.0);
    }

    /// GPU decode latency per token is constant (launch-bound), so totals
    /// are linear in decode count.
    #[test]
    fn gpu_decode_linear(decode in 1usize..256) {
        let g = A100Model::paper_baseline();
        let m = ModelConfig::gpt2_medium();
        let one = g.generation(&m, 1, decode);
        let two = g.generation(&m, 1, decode * 2);
        let ratio = two.decode_ms / one.decode_ms;
        prop_assert!((ratio - 2.0).abs() < 1e-9, "ratio {ratio}");
    }

    /// The temporal model is monotone in model size across the GPT-2
    /// family and always slower than its pure memory bound.
    #[test]
    fn temporal_monotone_and_bounded(idx in 0usize..3) {
        let family = [
            ModelConfig::gpt2_small(),
            ModelConfig::gpt2_medium(),
            ModelConfig::gpt2_large(),
        ];
        let a = TemporalArch::dfx_u280();
        let small = a.token_latency_ms(&family[idx]);
        if idx + 1 < family.len() {
            let big = a.token_latency_ms(&family[idx + 1]);
            prop_assert!(big > small);
        }
        let mem_floor = family[idx].weights_bytes_total() as f64 * a.bytes_per_weight
            / (a.hbm_gbps * 1e6);
        prop_assert!(small > mem_floor, "{small} vs floor {mem_floor}");
    }

    /// The spatial model's weighted latency is a true weighted mean: it
    /// lies between the prefill and decode per-token costs and moves
    /// toward decode as the mix gets decode-heavier.
    #[test]
    fn spatial_weighted_mean(prefill in 1usize..256, decode in 1usize..512) {
        let a = SpatialArch::u280();
        let m = ModelConfig::gpt2_medium();
        let w = a.weighted_token_ms(&m, prefill, decode);
        prop_assert!(w >= a.prefill_token_ms(&m) - 1e-9);
        prop_assert!(w <= a.decode_token_ms(&m) + 1e-9);
        let heavier = a.weighted_token_ms(&m, prefill, decode + 64);
        prop_assert!(heavier >= w - 1e-9);
    }

    /// Baseline orderings hold for every GPT-2 family member: spatial
    /// decode beats DFX (int8 vs fp16 traffic on the same board).
    #[test]
    fn spatial_beats_dfx_across_family(idx in 0usize..4) {
        let family = [
            ModelConfig::gpt2_small(),
            ModelConfig::gpt2_medium(),
            ModelConfig::gpt2_large(),
            ModelConfig::gpt2_xl(),
        ];
        let m = &family[idx];
        let dfx = TemporalArch::dfx_u280().token_latency_ms(m);
        let spatial = SpatialArch::u280().decode_token_ms(m);
        prop_assert!(spatial < dfx, "{spatial} vs {dfx} on {}", m.name);
    }
}
