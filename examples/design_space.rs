//! Design-space exploration: sweeps the architecture knobs DESIGN.md calls
//! out (MP channel count, `n_group`, DMA burst length) under the U50's
//! 32-HBM-channel budget, reporting decode latency and the binding
//! constraint — the kind of study that justifies the paper's
//! `n_group = 32`, 285 MHz design point.
//!
//! ```text
//! cargo run --release --example design_space
//! ```

use looplynx::core::{ArchConfig, LoopLynx};
use looplynx::model::ModelConfig;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let model = ModelConfig::gpt2_medium();
    let context = 512usize;

    println!("— MP channels per node (2 nodes/device, 4 KV channels fixed) —");
    println!(
        "{:>9} {:>14} {:>12}",
        "channels", "ms/token", "HBM ch/device"
    );
    for mp in [4usize, 6, 8, 10, 12] {
        let arch = ArchConfig::builder().nodes(2).mp_channels(mp).build()?;
        let engine = LoopLynx::new(model.clone(), arch)?;
        println!(
            "{:>9} {:>14.2} {:>12}",
            mp,
            engine.steady_state_decode_ms(context),
            engine.arch().channels_per_node() * 2,
        );
    }

    println!("\n— n_group (MACs per slice = datapack bytes) —");
    println!("{:>9} {:>14}", "n_group", "ms/token");
    for ng in [8usize, 16, 32, 64] {
        let arch = ArchConfig::builder().nodes(2).n_group(ng).build()?;
        let engine = LoopLynx::new(model.clone(), arch)?;
        println!("{:>9} {:>14.2}", ng, engine.steady_state_decode_ms(context));
    }

    println!("\n— DMA burst length —");
    println!("{:>9} {:>14}", "burst B", "ms/token");
    for burst in [256usize, 1024, 4096] {
        let arch = ArchConfig::builder().nodes(2).burst_bytes(burst).build()?;
        let engine = LoopLynx::new(model.clone(), arch)?;
        println!(
            "{:>9} {:>14.2}",
            burst,
            engine.steady_state_decode_ms(context)
        );
    }

    println!(
        "\nDecode is HBM-bound: latency tracks channel count almost linearly\n\
         until the channel budget runs out, n_group barely matters once the\n\
         burst is large enough to amortize protocol overhead, and short DMA\n\
         bursts forfeit bandwidth exactly as the paper's 'sufficient burst\n\
         size' remark implies."
    );

    // Invalid points are rejected, not silently mis-simulated.
    assert!(ArchConfig::builder()
        .nodes(2)
        .mp_channels(20)
        .build()
        .is_err());
    println!("\nover-budget configurations are rejected by validation ✓");
    Ok(())
}
