//! Row-major dense matrices.
//!
//! Weights in the accelerator are stored row-major in HBM so that one output
//! channel's dot product is a contiguous burst — [`Matrix::row`] is therefore
//! the natural unit both for the functional math and for DMA byte
//! accounting.

use std::fmt;

use serde::{Deserialize, Serialize};

use crate::error::ShapeError;

/// A dense row-major `rows × cols` matrix.
///
/// # Example
///
/// ```
/// use looplynx_tensor::matrix::Matrix;
///
/// let m = Matrix::from_fn(2, 3, |r, c| (r * 3 + c) as i32);
/// assert_eq!(m.row(1), &[3, 4, 5]);
/// assert_eq!(m.get(0, 2), 2);
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Matrix<T> {
    rows: usize,
    cols: usize,
    data: Vec<T>,
}

impl<T: Copy + Default> Matrix<T> {
    /// Creates a zero-initialized (default-initialized) matrix.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        Matrix {
            rows,
            cols,
            data: vec![T::default(); rows * cols],
        }
    }

    /// Creates a matrix by evaluating `f(row, col)` for every element.
    pub fn from_fn(rows: usize, cols: usize, mut f: impl FnMut(usize, usize) -> T) -> Self {
        let mut data = Vec::with_capacity(rows * cols);
        for r in 0..rows {
            for c in 0..cols {
                data.push(f(r, c));
            }
        }
        Matrix { rows, cols, data }
    }

    /// Wraps an existing row-major buffer.
    ///
    /// # Errors
    ///
    /// Returns [`ShapeError`] if `data.len() != rows * cols`.
    pub fn from_vec(rows: usize, cols: usize, data: Vec<T>) -> Result<Self, ShapeError> {
        if data.len() != rows * cols {
            return Err(ShapeError::new("from_vec", (rows, cols), (1, data.len())));
        }
        Ok(Matrix { rows, cols, data })
    }

    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// `(rows, cols)`.
    pub fn shape(&self) -> (usize, usize) {
        (self.rows, self.cols)
    }

    /// Total element count.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// Whether the matrix has no elements.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Element at `(r, c)`.
    ///
    /// # Panics
    ///
    /// Panics if out of bounds.
    pub fn get(&self, r: usize, c: usize) -> T {
        assert!(
            r < self.rows && c < self.cols,
            "index ({r},{c}) out of bounds"
        );
        self.data[r * self.cols + c]
    }

    /// Sets element at `(r, c)`.
    ///
    /// # Panics
    ///
    /// Panics if out of bounds.
    pub fn set(&mut self, r: usize, c: usize, v: T) {
        assert!(
            r < self.rows && c < self.cols,
            "index ({r},{c}) out of bounds"
        );
        self.data[r * self.cols + c] = v;
    }

    /// Row `r` as a contiguous slice.
    ///
    /// # Panics
    ///
    /// Panics if `r >= rows`.
    pub fn row(&self, r: usize) -> &[T] {
        assert!(r < self.rows, "row {r} out of bounds");
        &self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// Mutable row `r`.
    ///
    /// # Panics
    ///
    /// Panics if `r >= rows`.
    pub fn row_mut(&mut self, r: usize) -> &mut [T] {
        assert!(r < self.rows, "row {r} out of bounds");
        &mut self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// Iterator over rows.
    pub fn iter_rows(&self) -> impl Iterator<Item = &[T]> {
        self.data.chunks_exact(self.cols)
    }

    /// Copies rows `[start, end)` into a new matrix.
    ///
    /// # Panics
    ///
    /// Panics if the range is out of bounds or reversed.
    pub fn slice_rows(&self, start: usize, end: usize) -> Matrix<T> {
        assert!(
            start <= end && end <= self.rows,
            "bad row range {start}..{end}"
        );
        Matrix {
            rows: end - start,
            cols: self.cols,
            data: self.data[start * self.cols..end * self.cols].to_vec(),
        }
    }

    /// Transposed copy.
    ///
    /// Walks the source row by row (each source row scatters into one
    /// destination column) instead of per-element bounds-checked `get`
    /// calls — the source side, at least, streams contiguously.
    pub fn transposed(&self) -> Matrix<T> {
        let mut out = Matrix::zeros(self.cols, self.rows);
        for (r, row) in self.iter_rows().enumerate() {
            for (c, &v) in row.iter().enumerate() {
                out.data[c * self.rows + r] = v;
            }
        }
        out
    }

    /// Underlying row-major buffer.
    pub fn as_slice(&self) -> &[T] {
        &self.data
    }

    /// Consumes the matrix, returning its buffer.
    pub fn into_vec(self) -> Vec<T> {
        self.data
    }

    /// Vertically stacks `self` on top of `other`.
    ///
    /// # Errors
    ///
    /// Returns [`ShapeError`] if column counts differ.
    pub fn vstack(&self, other: &Matrix<T>) -> Result<Matrix<T>, ShapeError> {
        if self.cols != other.cols {
            return Err(ShapeError::new(
                "vstack",
                (self.rows, self.cols),
                (other.rows, other.cols),
            ));
        }
        let mut data = self.data.clone();
        data.extend_from_slice(&other.data);
        Ok(Matrix {
            rows: self.rows + other.rows,
            cols: self.cols,
            data,
        })
    }
}

impl Matrix<f32> {
    /// Largest absolute value per row (used for per-output-channel scales).
    pub fn row_absmax(&self) -> Vec<f32> {
        self.iter_rows()
            .map(|r| r.iter().fold(0.0f32, |m, &x| m.max(x.abs())))
            .collect()
    }

    /// Largest absolute value per column (used by SmoothQuant migration).
    pub fn col_absmax(&self) -> Vec<f32> {
        let mut maxes = vec![0.0f32; self.cols];
        for row in self.iter_rows() {
            for (m, &x) in maxes.iter_mut().zip(row) {
                *m = m.max(x.abs());
            }
        }
        maxes
    }

    /// Multiplies column `c` by `factors[c]` in place.
    ///
    /// # Panics
    ///
    /// Panics if `factors.len() != cols`.
    pub fn scale_cols(&mut self, factors: &[f32]) {
        assert_eq!(factors.len(), self.cols, "one factor per column");
        for row in self.data.chunks_exact_mut(self.cols) {
            for (x, &f) in row.iter_mut().zip(factors) {
                *x *= f;
            }
        }
    }
}

impl<T: fmt::Display + Copy + Default> fmt::Display for Matrix<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "[{}x{}]", self.rows, self.cols)?;
        let show = self.rows.min(4);
        for r in 0..show {
            let row = self.row(r);
            let cells: Vec<String> = row.iter().take(8).map(|x| format!("{x}")).collect();
            writeln!(
                f,
                "  [{}{}]",
                cells.join(", "),
                if self.cols > 8 { ", ..." } else { "" }
            )?;
        }
        if self.rows > show {
            writeln!(f, "  ...")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_and_access() {
        let m = Matrix::from_fn(3, 4, |r, c| (r * 10 + c) as i32);
        assert_eq!(m.shape(), (3, 4));
        assert_eq!(m.get(2, 3), 23);
        assert_eq!(m.row(1), &[10, 11, 12, 13]);
        assert_eq!(m.len(), 12);
        assert!(!m.is_empty());
    }

    #[test]
    fn from_vec_validates_length() {
        assert!(Matrix::from_vec(2, 2, vec![1, 2, 3]).is_err());
        let m = Matrix::from_vec(2, 2, vec![1, 2, 3, 4]).unwrap();
        assert_eq!(m.get(1, 1), 4);
    }

    #[test]
    fn set_and_row_mut() {
        let mut m = Matrix::<i32>::zeros(2, 2);
        m.set(0, 1, 7);
        m.row_mut(1)[0] = 9;
        assert_eq!(m.as_slice(), &[0, 7, 9, 0]);
    }

    #[test]
    fn transpose_round_trips() {
        let m = Matrix::from_fn(2, 3, |r, c| (r * 3 + c) as i32);
        let t = m.transposed();
        assert_eq!(t.shape(), (3, 2));
        assert_eq!(t.get(2, 1), m.get(1, 2));
        assert_eq!(t.transposed(), m);
    }

    #[test]
    fn slice_rows_copies_range() {
        let m = Matrix::from_fn(4, 2, |r, _| r as i32);
        let s = m.slice_rows(1, 3);
        assert_eq!(s.shape(), (2, 2));
        assert_eq!(s.row(0), &[1, 1]);
        assert_eq!(s.row(1), &[2, 2]);
    }

    #[test]
    fn vstack_concatenates() {
        let a = Matrix::from_fn(1, 2, |_, c| c as i32);
        let b = Matrix::from_fn(2, 2, |r, _| r as i32 + 10);
        let s = a.vstack(&b).unwrap();
        assert_eq!(s.shape(), (3, 2));
        assert_eq!(s.row(0), &[0, 1]);
        assert_eq!(s.row(2), &[11, 11]);
        let bad = Matrix::<i32>::zeros(1, 3);
        assert!(a.vstack(&bad).is_err());
    }

    #[test]
    fn absmax_helpers() {
        let m = Matrix::from_vec(2, 2, vec![1.0f32, -4.0, 3.0, 2.0]).unwrap();
        assert_eq!(m.row_absmax(), vec![4.0, 3.0]);
        assert_eq!(m.col_absmax(), vec![3.0, 4.0]);
    }

    #[test]
    fn scale_cols_applies_per_column() {
        let mut m = Matrix::from_vec(2, 2, vec![1.0f32, 2.0, 3.0, 4.0]).unwrap();
        m.scale_cols(&[2.0, 0.5]);
        assert_eq!(m.as_slice(), &[2.0, 1.0, 6.0, 2.0]);
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn get_out_of_bounds_panics() {
        let m = Matrix::<i32>::zeros(2, 2);
        let _ = m.get(2, 0);
    }

    #[test]
    fn display_truncates() {
        let m = Matrix::<i32>::zeros(10, 10);
        let s = m.to_string();
        assert!(s.contains("[10x10]"));
        assert!(s.contains("..."));
    }
}
