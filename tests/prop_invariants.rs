//! Cross-crate property-based tests (proptest) on the invariants the
//! architecture depends on.

use proptest::prelude::*;

use looplynx::core::config::{ArchConfig, OptimizationFlags};
use looplynx::core::engine::{LoopLynx, TokenPhase};
use looplynx::core::parallel::split_range;
use looplynx::core::router::{RingMode, Router};
use looplynx::model::ModelConfig;
use looplynx::sim::net::{functional_all_gather, RingSim, RingSpec};
use looplynx::sim::time::{Cycles, Frequency};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// split_range always tiles [0, total) exactly, in order, for any
    /// (total, parts) combination.
    #[test]
    fn split_range_tiles(total in 0usize..10_000, parts in 1usize..64) {
        let mut covered = 0usize;
        for i in 0..parts {
            let r = split_range(total, parts, i);
            prop_assert_eq!(r.start, covered);
            covered = r.end;
            // near-equal: sizes differ by at most one
            prop_assert!(r.len() >= total / parts);
            prop_assert!(r.len() <= total / parts + 1);
        }
        prop_assert_eq!(covered, total);
    }

    /// The exact-mode ring gather is concatenation in node order for any
    /// shard contents.
    #[test]
    fn exact_gather_is_concat(
        nodes in 1usize..6,
        shard_len in 1usize..32,
        seed in any::<u64>(),
    ) {
        let shards: Vec<Vec<f32>> = (0..nodes)
            .map(|n| {
                (0..shard_len)
                    .map(|i| ((seed ^ (n as u64 * 31 + i as u64)) % 1000) as f32 / 500.0 - 1.0)
                    .collect()
            })
            .collect();
        let full = Router::new(nodes, RingMode::Exact).all_gather(&shards);
        prop_assert_eq!(full, shards.concat());
    }

    /// The ring DES agrees with the closed-form all-gather cycle count for
    /// any ring size and shard size, and all router buffers converge.
    #[test]
    fn ring_des_matches_closed_form(nodes in 2usize..8, shard_kb in 1usize..16) {
        let spec = RingSpec::paper_ring(nodes, Frequency::from_mhz(285.0));
        let shards: Vec<Vec<u8>> = (0..nodes)
            .map(|i| vec![(i * 37 % 251) as u8; shard_kb * 1024])
            .collect();
        let outcome = RingSim::new(spec.clone()).all_gather(&shards);
        prop_assert_eq!(outcome.end_time, spec.all_gather_cycles(shard_kb * 1024));
        prop_assert!(outcome.buffers_consistent());
        prop_assert_eq!(outcome.buffers[0].clone(), shards.concat());
        // and the pure-functional gather agrees with the DES contents
        prop_assert_eq!(functional_all_gather(&shards)[0].clone(), outcome.buffers[0].clone());
    }

    /// Token latency is monotone in context length for any ring size.
    #[test]
    fn latency_monotone_in_context(
        nodes in prop::sample::select(vec![1usize, 2, 4]),
        ctx_a in 1usize..512,
        delta in 1usize..256,
    ) {
        let arch = ArchConfig::builder().nodes(nodes).build().expect("valid");
        let engine = LoopLynx::new(ModelConfig::gpt2_medium(), arch).expect("partitions");
        let a = engine.simulate_token(ctx_a, TokenPhase::Decode, false).total;
        let b = engine.simulate_token(ctx_a + delta, TokenPhase::Decode, false).total;
        prop_assert!(b >= a, "context {} -> {}: {} vs {}", ctx_a, ctx_a + delta, a, b);
    }

    /// Every optimization flag is individually non-regressive at any ring
    /// size and context.
    #[test]
    fn each_flag_is_non_regressive(
        nodes in prop::sample::select(vec![1usize, 2, 4]),
        ctx in 1usize..640,
        fuse in any::<bool>(),
        headwise in any::<bool>(),
        hide in any::<bool>(),
    ) {
        let base = OptimizationFlags {
            fuse_ln_res: fuse,
            headwise_pipeline: headwise,
            hide_transmission: hide,
        };
        let all_on = OptimizationFlags::ALL;
        let model = ModelConfig::gpt2_medium();
        let t_base = LoopLynx::new(
            model.clone(),
            ArchConfig::builder().nodes(nodes).opts(base).build().expect("valid"),
        )
        .expect("partitions")
        .simulate_token(ctx, TokenPhase::Decode, true)
        .total;
        let t_on = LoopLynx::new(
            model,
            ArchConfig::builder().nodes(nodes).opts(all_on).build().expect("valid"),
        )
        .expect("partitions")
        .simulate_token(ctx, TokenPhase::Decode, true)
        .total;
        prop_assert!(t_on <= t_base, "flags {base:?}: all-on {t_on} vs {t_base}");
    }

    /// More nodes never slow a decode token down (with all optimizations).
    #[test]
    fn more_nodes_never_hurt(ctx in 1usize..768) {
        let model = ModelConfig::gpt2_medium();
        let mut prev = Cycles::new(u64::MAX);
        for nodes in [1usize, 2, 4, 8] {
            let arch = ArchConfig::builder().nodes(nodes).build().expect("valid");
            let t = LoopLynx::new(model.clone(), arch)
                .expect("partitions")
                .simulate_token(ctx, TokenPhase::Decode, true)
                .total;
            prop_assert!(t <= prev, "{nodes} nodes regressed: {t} vs {prev}");
            prev = t;
        }
    }
}
