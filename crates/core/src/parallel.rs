//! Model parallelism: weight sharding and head-wise KV partitioning.
//!
//! Paper Fig. 2(c): "this strategy distributes the weights of linear layers
//! across devices along the output dimension and employs a head-wise
//! partitioning approach for the KV cache to minimize the memory footprint
//! on each device. For multi-node collaborative inference, the host
//! distributes the same full embedding vector to all nodes, with each node
//! responsible for computing a sub-vector."
//!
//! The QKV projection is sharded *head-aligned*: node *i* receives the Q,
//! K and V rows of its own heads, so attention runs entirely node-locally
//! and no synchronization is needed between the QKV projection and MHA.

use std::fmt;
use std::ops::Range;

use serde::{Deserialize, Serialize};

use looplynx_model::config::ModelConfig;
use looplynx_model::weights::{BlockWeights, Gpt2Weights};
use looplynx_tensor::error::ShapeError;
use looplynx_tensor::linear::QuantLinear;
use looplynx_tensor::matrix::Matrix;
use looplynx_tensor::norm::LayerNormParams;
use looplynx_tensor::quant::QuantizedMatrix;

/// Error returned when a model cannot be partitioned over a ring.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PartitionError {
    message: String,
}

impl fmt::Display for PartitionError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "cannot partition model: {}", self.message)
    }
}

impl std::error::Error for PartitionError {}

/// Validates that `model` can be split across `nodes`.
///
/// # Errors
///
/// Returns [`PartitionError`] if heads or the FFN width do not divide.
pub fn validate_partition(model: &ModelConfig, nodes: usize) -> Result<(), PartitionError> {
    if nodes == 0 {
        return Err(PartitionError {
            message: "ring needs at least one node".into(),
        });
    }
    if !model.heads.is_multiple_of(nodes) {
        return Err(PartitionError {
            message: format!("{} heads not divisible by {} nodes", model.heads, nodes),
        });
    }
    if !model.d_model.is_multiple_of(model.heads) {
        return Err(PartitionError {
            message: format!(
                "d_model {} not divisible by {} heads",
                model.d_model, model.heads
            ),
        });
    }
    if !model.d_ff.is_multiple_of(nodes) {
        return Err(PartitionError {
            message: format!("d_ff {} not divisible by {} nodes", model.d_ff, nodes),
        });
    }
    Ok(())
}

/// Near-equal split of `total` items into `parts`; part `i` gets the range
/// with any remainder distributed to the earliest parts.
///
/// # Panics
///
/// Panics if `parts` is zero or `i >= parts`.
pub fn split_range(total: usize, parts: usize, i: usize) -> Range<usize> {
    assert!(parts > 0, "parts must be positive");
    assert!(i < parts, "part index out of range");
    let base = total / parts;
    let extra = total % parts;
    let start = i * base + i.min(extra);
    let len = base + usize::from(i < extra);
    start..start + len
}

/// Vertically concatenates quantized row-shards, preserving per-row
/// scales. One preallocated buffer and a single pass over the parts —
/// repeated `vstack` would re-copy every already-stacked row per part
/// (O(parts²) bytes moved).
///
/// # Errors
///
/// Returns [`ShapeError`] if the parts disagree on column count.
fn concat_quantized(parts: &[QuantizedMatrix]) -> Result<QuantizedMatrix, ShapeError> {
    let cols = parts[0].shape().1;
    let total_rows: usize = parts.iter().map(|p| p.shape().0).sum();
    let mut data = Vec::with_capacity(total_rows * cols);
    let mut scales = Vec::with_capacity(total_rows);
    for p in parts {
        if p.shape().1 != cols {
            return Err(ShapeError::new("concat", (total_rows, cols), p.shape()));
        }
        data.extend_from_slice(p.data().as_slice());
        scales.extend_from_slice(p.row_scales());
    }
    Ok(QuantizedMatrix::new(
        Matrix::from_vec(total_rows, cols, data)?,
        scales,
    ))
}

/// Extracts the rows `range` of a linear layer as a standalone shard.
fn slice_linear(lin: &QuantLinear, range: Range<usize>) -> QuantLinear {
    let weight = lin.weight().slice_rows(range.start, range.end);
    let bias = lin.bias()[range].to_vec();
    QuantLinear::new(weight, bias).expect("shard bias matches shard rows")
}

/// One layer's weight shards on one node.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct LayerShard {
    /// Head-aligned QKV rows (this node's heads' Q, then K, then V).
    pub qkv: QuantLinear,
    /// Output-projection rows.
    pub proj: QuantLinear,
    /// FC1 rows.
    pub fc1: QuantLinear,
    /// FC2 rows.
    pub fc2: QuantLinear,
    /// Pre-attention layernorm (replicated).
    pub ln1: LayerNormParams,
    /// Pre-MLP layernorm (replicated).
    pub ln2: LayerNormParams,
}

/// All weights one node holds.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct NodeWeights {
    /// Node id in ring order.
    pub node: usize,
    /// Ring size.
    pub nodes: usize,
    /// Heads this node owns.
    pub head_range: Range<usize>,
    /// Per-layer shards.
    pub layers: Vec<LayerShard>,
    /// Final layernorm (replicated).
    pub ln_f: LayerNormParams,
    /// LM-head row shard (vocabulary split).
    pub lm_head: QuantLinear,
    /// Vocabulary rows this node computes.
    pub vocab_range: Range<usize>,
}

impl NodeWeights {
    /// Int8 weight bytes stored on this node — the per-node HBM footprint
    /// the head-wise/output-split partitioning minimizes.
    pub fn weight_bytes(&self) -> usize {
        self.layers
            .iter()
            .map(|l| {
                l.qkv.weight_bytes()
                    + l.proj.weight_bytes()
                    + l.fc1.weight_bytes()
                    + l.fc2.weight_bytes()
            })
            .sum::<usize>()
            + self.lm_head.weight_bytes()
    }
}

fn shard_block(block: &BlockWeights, model: &ModelConfig, node: usize, nodes: usize) -> LayerShard {
    let d = model.d_model;
    let slice = split_range(d, nodes, node);
    // Head-aligned QKV: this node's Q rows, K rows, V rows.
    let q = block.qkv.weight().slice_rows(slice.start, slice.end);
    let k = block
        .qkv
        .weight()
        .slice_rows(d + slice.start, d + slice.end);
    let v = block
        .qkv
        .weight()
        .slice_rows(2 * d + slice.start, 2 * d + slice.end);
    let qkv_w = concat_quantized(&[q, k, v]).expect("equal widths");
    let mut qkv_bias = block.qkv.bias()[slice.clone()].to_vec();
    qkv_bias.extend_from_slice(&block.qkv.bias()[d + slice.start..d + slice.end]);
    qkv_bias.extend_from_slice(&block.qkv.bias()[2 * d + slice.start..2 * d + slice.end]);
    let qkv = QuantLinear::new(qkv_w, qkv_bias).expect("qkv shard consistent");

    let ff_slice = split_range(model.d_ff, nodes, node);
    LayerShard {
        qkv,
        proj: slice_linear(&block.proj, slice.clone()),
        fc1: slice_linear(&block.fc1, ff_slice),
        fc2: slice_linear(&block.fc2, slice),
        ln1: block.ln1.clone(),
        ln2: block.ln2.clone(),
    }
}

/// Shards full model weights across `nodes` ring nodes.
///
/// # Errors
///
/// Returns [`PartitionError`] if the model does not divide.
pub fn shard_weights(
    weights: &Gpt2Weights,
    model: &ModelConfig,
    nodes: usize,
) -> Result<Vec<NodeWeights>, PartitionError> {
    validate_partition(model, nodes)?;
    Ok((0..nodes)
        .map(|node| {
            let heads = split_range(model.heads, nodes, node);
            let vocab = split_range(model.vocab, nodes, node);
            NodeWeights {
                node,
                nodes,
                head_range: heads,
                layers: weights
                    .blocks
                    .iter()
                    .map(|b| shard_block(b, model, node, nodes))
                    .collect(),
                ln_f: weights.ln_f.clone(),
                lm_head: slice_linear(&weights.lm_head, vocab.clone()),
                vocab_range: vocab,
            }
        })
        .collect())
}

#[cfg(test)]
mod tests {
    use super::*;
    use looplynx_tensor::quant::quantize_vec;

    fn setup() -> (ModelConfig, Gpt2Weights) {
        let cfg = ModelConfig::tiny();
        let w = Gpt2Weights::synthetic(&cfg, 5);
        (cfg, w)
    }

    #[test]
    fn split_range_tiles_exactly() {
        for (total, parts) in [(16usize, 4usize), (50257, 4), (7, 3), (5, 5)] {
            let mut covered = 0;
            for i in 0..parts {
                let r = split_range(total, parts, i);
                assert_eq!(r.start, covered, "ranges must be contiguous");
                covered = r.end;
            }
            assert_eq!(covered, total, "ranges must cover everything");
        }
    }

    #[test]
    fn validate_rejects_bad_splits() {
        let m = ModelConfig::gpt2_medium();
        assert!(validate_partition(&m, 1).is_ok());
        assert!(validate_partition(&m, 2).is_ok());
        assert!(validate_partition(&m, 4).is_ok());
        assert!(validate_partition(&m, 3).is_err());
        assert!(validate_partition(&m, 0).is_err());
        // GPT-2 XL has 25 heads: cannot split over 2 nodes
        assert!(validate_partition(&ModelConfig::gpt2_xl(), 2).is_err());
    }

    #[test]
    fn shards_cover_all_bytes() {
        let (cfg, w) = setup();
        for nodes in [1usize, 2, 4] {
            let shards = shard_weights(&w, &cfg, nodes).unwrap();
            let total: usize = shards.iter().map(NodeWeights::weight_bytes).sum();
            assert_eq!(total, cfg.weights_bytes_total(), "nodes={nodes}");
        }
    }

    #[test]
    fn single_node_shard_is_whole_model() {
        let (cfg, w) = setup();
        let shards = shard_weights(&w, &cfg, 1).unwrap();
        assert_eq!(shards.len(), 1);
        assert_eq!(shards[0].head_range, 0..cfg.heads);
        assert_eq!(shards[0].layers[0].fc1.out_features(), cfg.d_ff);
    }

    #[test]
    fn qkv_shard_is_head_aligned() {
        // Node i's QKV shard applied to x must equal the corresponding rows
        // of the full QKV output: [q_i, k_i, v_i].
        let (cfg, w) = setup();
        let nodes = 2;
        let shards = shard_weights(&w, &cfg, nodes).unwrap();
        let x = quantize_vec(&vec![0.1f32; cfg.d_model]);
        let full = w.blocks[0].qkv.forward(&x);
        let d = cfg.d_model;
        for (i, s) in shards.iter().enumerate() {
            let part = s.layers[0].qkv.forward(&x);
            let slice = split_range(d, nodes, i);
            let width = slice.len();
            for (j, &v) in part.iter().enumerate() {
                let expect = match j / width {
                    0 => full[slice.start + (j % width)],
                    1 => full[d + slice.start + (j % width)],
                    2 => full[2 * d + slice.start + (j % width)],
                    _ => unreachable!(),
                };
                assert!((v - expect).abs() < 1e-5, "node {i} elem {j}");
            }
        }
    }

    #[test]
    fn linear_shards_stitch_to_full_output() {
        let (cfg, w) = setup();
        let nodes = 4;
        let shards = shard_weights(&w, &cfg, nodes).unwrap();
        let x = quantize_vec(
            &(0..cfg.d_model)
                .map(|i| (i as f32 * 0.17).sin())
                .collect::<Vec<_>>(),
        );
        let full = w.blocks[0].proj.forward(&x);
        let stitched: Vec<f32> = shards
            .iter()
            .flat_map(|s| s.layers[0].proj.forward(&x))
            .collect();
        assert_eq!(full.len(), stitched.len());
        for (a, b) in full.iter().zip(&stitched) {
            assert!((a - b).abs() < 1e-5);
        }
    }

    #[test]
    fn lm_head_vocab_split_covers_vocab() {
        let (cfg, w) = setup();
        let shards = shard_weights(&w, &cfg, 4).unwrap();
        let covered: usize = shards.iter().map(|s| s.vocab_range.len()).sum();
        assert_eq!(covered, cfg.vocab);
        // ranges in node order are contiguous
        for w2 in shards.windows(2) {
            assert_eq!(w2[0].vocab_range.end, w2[1].vocab_range.start);
        }
    }

    #[test]
    fn per_node_footprint_shrinks() {
        let (cfg, w) = setup();
        let one = shard_weights(&w, &cfg, 1).unwrap()[0].weight_bytes();
        let four = shard_weights(&w, &cfg, 4).unwrap()[0].weight_bytes();
        assert!(
            four * 3 < one,
            "4-way shard should be ~1/4: {four} vs {one}"
        );
    }
}
