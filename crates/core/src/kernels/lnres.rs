//! The fused layernorm & residual (LN&Res) kernel and the element-wise
//! vector unit.
//!
//! "Operators such as residual connections and layer normalization can be
//! parallelized and have their execution overlapped, forming a Fused
//! LN&Res kernel, achieving improved latency with modest costs" (paper
//! Section III-C, Fig. 4(a)). With the optimization disabled the operators
//! run serially on a single lane — the configuration of the Fig. 5(a)
//! baseline where critical-path operators consume 18.5 % of token latency.

use serde::{Deserialize, Serialize};

use looplynx_sim::time::Cycles;
use looplynx_tensor::norm::{residual_add, residual_layernorm, LayerNormParams};

use crate::config::ArchConfig;
use crate::kernels::{KernelTiming, Segment};

/// One activation of the LN&Res kernel.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct LnResJob {
    /// Vector dimension normalized.
    pub dim: usize,
    /// Whether a residual addition accompanies the normalization.
    pub with_residual: bool,
}

/// The fused LN&Res kernel timing model (also times the element-wise GELU
/// unit, which shares the critical-path vector lanes).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FusedLnResKernel {
    cfg: ArchConfig,
}

impl FusedLnResKernel {
    /// Creates the kernel for a configuration.
    pub fn new(cfg: &ArchConfig) -> Self {
        FusedLnResKernel { cfg: cfg.clone() }
    }

    /// Cycle-accurate timing of one LN(+residual) activation.
    ///
    /// Layer normalization is three dependent passes (mean, variance,
    /// normalize) over `dim` elements on `effective_cp_lanes()` lanes.
    /// When fused, the residual addition overlaps the first pass; when not,
    /// it precedes the normalization serially.
    ///
    /// # Panics
    ///
    /// Panics if `dim` is zero.
    pub fn timing(&self, job: &LnResJob) -> KernelTiming {
        assert!(job.dim > 0, "degenerate LN job");
        let lanes = self.cfg.effective_cp_lanes() as u64;
        let pass = (job.dim as u64).div_ceil(lanes);
        let fill = 16u64; // reduction-tree and divider latency
        let ln = 3 * pass + fill;
        let res = if job.with_residual { pass } else { 0 };
        let total_compute = if self.cfg.opts().fuse_ln_res {
            // residual overlaps the mean pass
            ln.max(res + 2 * pass + fill)
        } else {
            ln + res
        };
        let total = Cycles::new(total_compute) + self.cfg.stage_overhead();
        KernelTiming::new(
            total,
            vec![
                Segment::new("layernorm", Cycles::new(ln)),
                Segment::new("residual", Cycles::new(res)),
                Segment::new("overhead", self.cfg.stage_overhead()),
            ],
        )
    }

    /// Timing of an element-wise pass (GELU) over `dim` elements on the
    /// shared vector lanes.
    ///
    /// # Panics
    ///
    /// Panics if `dim` is zero.
    pub fn elementwise_timing(&self, dim: usize) -> KernelTiming {
        assert!(dim > 0, "degenerate element-wise job");
        let lanes = self.cfg.effective_cp_lanes() as u64;
        let cycles = (dim as u64).div_ceil(lanes) + 8;
        let total = Cycles::new(cycles) + self.cfg.stage_overhead();
        KernelTiming::new(
            total,
            vec![
                Segment::new("elementwise", Cycles::new(cycles)),
                Segment::new("overhead", self.cfg.stage_overhead()),
            ],
        )
    }

    /// Functional path: fused residual + layernorm.
    pub fn forward(
        &self,
        x: &[f32],
        residual: Option<&[f32]>,
        params: &LayerNormParams,
    ) -> Vec<f32> {
        match residual {
            Some(r) => residual_layernorm(x, r, params),
            None => looplynx_tensor::norm::layernorm(x, params),
        }
    }

    /// Functional residual-only path.
    pub fn forward_residual(&self, x: &[f32], r: &[f32]) -> Vec<f32> {
        residual_add(x, r)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::OptimizationFlags;

    fn kernel(fused: bool) -> FusedLnResKernel {
        let cfg = ArchConfig::builder()
            .opts(OptimizationFlags {
                fuse_ln_res: fused,
                ..OptimizationFlags::ALL
            })
            .build()
            .unwrap();
        FusedLnResKernel::new(&cfg)
    }

    fn job(dim: usize) -> LnResJob {
        LnResJob {
            dim,
            with_residual: true,
        }
    }

    #[test]
    fn fusion_and_lanes_cut_latency_substantially() {
        let fused = kernel(true).timing(&job(1024)).total;
        let plain = kernel(false).timing(&job(1024)).total;
        // 8 lanes + overlap vs 1 lane serial: better than 5x
        assert!(
            plain.as_f64() / fused.as_f64() > 5.0,
            "fused {fused} vs plain {plain}"
        );
    }

    #[test]
    fn residual_free_jobs_are_cheaper_when_serial() {
        let k = kernel(false);
        let with = k.timing(&job(1024)).total;
        let without = k
            .timing(&LnResJob {
                dim: 1024,
                with_residual: false,
            })
            .total;
        assert!(without < with);
    }

    #[test]
    fn fused_residual_is_free() {
        // When fused, the residual overlaps the LN passes entirely.
        let k = kernel(true);
        let with = k.timing(&job(1024)).total;
        let without = k
            .timing(&LnResJob {
                dim: 1024,
                with_residual: false,
            })
            .total;
        assert_eq!(with, without);
    }

    #[test]
    fn elementwise_scales_with_dim_and_lanes() {
        let wide = kernel(true).elementwise_timing(4096).total.as_f64();
        let narrow = kernel(false).elementwise_timing(4096).total.as_f64();
        assert!(narrow / wide > 4.0, "lanes should speed GELU up");
    }

    #[test]
    fn functional_fused_matches_substrate() {
        let k = kernel(true);
        let params = LayerNormParams::identity(4);
        let x = [0.1f32, -0.4, 0.2, 0.9];
        let r = [1.0f32, 0.5, -0.5, 0.0];
        let out = k.forward(&x, Some(&r), &params);
        let expect = residual_layernorm(&x, &r, &params);
        assert_eq!(out, expect);
        let plain = k.forward(&x, None, &params);
        assert_eq!(plain, looplynx_tensor::norm::layernorm(&x, &params));
    }

    #[test]
    #[should_panic(expected = "degenerate LN job")]
    fn zero_dim_rejected() {
        let _ = kernel(true).timing(&LnResJob {
            dim: 0,
            with_residual: false,
        });
    }
}
