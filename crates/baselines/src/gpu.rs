//! Analytical Nvidia A100 executor.
//!
//! The paper runs GPT-2 on an A100 through PyTorch with the torch-int
//! W8A8 kernels. Two regimes govern that system:
//!
//! * **Decode** — one token at a time. Every transformer layer dispatches a
//!   dozen small CUDA kernels (quantize, GEMV, dequantize, LN, softmax, …)
//!   whose *launch overhead* dwarfs their execution on a 345M-parameter
//!   model; the GPU's 1935 GB/s cannot be fed. This is why a 285 MHz FPGA
//!   can win.
//! * **Prefill** — all prompt tokens in one batched pass: launches amortize
//!   across the batch and the tensor cores saturate, which is why the
//!   paper's `[128:32]` setting favours the A100.
//!
//! Power follows the utilization model of [`looplynx_hw::power`]: decode
//! barely utilizes the device (~65 W measured-style), prefill drives it
//! substantially harder.

use serde::{Deserialize, Serialize};

use looplynx_hw::power::GpuPowerModel;
use looplynx_model::config::ModelConfig;

use crate::report::GpuGenerationReport;

/// Calibrated A100 + torch-int executor model.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct A100Model {
    /// Per-kernel launch + framework overhead in microseconds.
    pub launch_overhead_us: f64,
    /// CUDA kernels dispatched per transformer layer (torch-int W8A8 path).
    pub kernels_per_layer: usize,
    /// Additional kernels outside the layers (embedding, final LN, LM
    /// head, sampling sync).
    pub extra_kernels: usize,
    /// Peak HBM2e bandwidth in GB/s (Table I).
    pub mem_bw_gbps: f64,
    /// Achievable fraction of peak bandwidth for streaming GEMV.
    pub mem_efficiency: f64,
    /// Dense int8 tensor-core throughput in TOPS.
    pub int8_tops: f64,
    /// Achievable fraction of peak TOPS on these layer shapes.
    pub compute_efficiency: f64,
    /// Device utilization during serial decode (drives power).
    pub decode_utilization: f64,
    /// Device utilization during batched prefill.
    pub prefill_utilization: f64,
    /// The power model.
    pub power: GpuPowerModel,
}

impl A100Model {
    /// The calibration used against the paper's Fig. 8 / Table II claims.
    pub fn paper_baseline() -> Self {
        A100Model {
            launch_overhead_us: 33.0,
            kernels_per_layer: 12,
            extra_kernels: 8,
            mem_bw_gbps: 1935.0,
            mem_efficiency: 0.8,
            int8_tops: 624.0,
            compute_efficiency: 0.3,
            decode_utilization: 0.08,
            prefill_utilization: 0.40,
            power: GpuPowerModel::a100(),
        }
    }

    /// Total kernel launches for one forward pass.
    fn launches(&self, model: &ModelConfig) -> usize {
        model.layers * self.kernels_per_layer + self.extra_kernels
    }

    /// Milliseconds of pure launch/framework overhead per forward pass.
    fn launch_ms(&self, model: &ModelConfig) -> f64 {
        self.launches(model) as f64 * self.launch_overhead_us / 1e3
    }

    /// Latency of one decode token in milliseconds.
    pub fn decode_token_ms(&self, model: &ModelConfig) -> f64 {
        let bytes = model.weights_bytes_total() as f64;
        let mem_ms = bytes / (self.mem_bw_gbps * self.mem_efficiency) / 1e6;
        self.launch_ms(model) + mem_ms
    }

    /// Latency of prefilling `prompt` tokens in one batched pass,
    /// in milliseconds.
    ///
    /// # Panics
    ///
    /// Panics if `prompt` is zero.
    pub fn prefill_ms(&self, model: &ModelConfig, prompt: usize) -> f64 {
        assert!(prompt > 0, "prompt must not be empty");
        // One pass over the weights regardless of batch; compute grows with
        // the token count. The launch overhead is paid once.
        let bytes = model.weights_bytes_total() as f64;
        let mem_ms = bytes / (self.mem_bw_gbps * self.mem_efficiency) / 1e6;
        let macs = 2.0 * bytes * prompt as f64; // multiply-accumulate ops
        let compute_ms = macs / (self.int8_tops * 1e12 * self.compute_efficiency) * 1e3;
        self.launch_ms(model) + mem_ms.max(compute_ms)
    }

    /// Simulates a `[prefill : decode]` generation.
    ///
    /// # Panics
    ///
    /// Panics if either count is zero.
    pub fn generation(
        &self,
        model: &ModelConfig,
        prefill: usize,
        decode: usize,
    ) -> GpuGenerationReport {
        assert!(decode > 0, "need at least one generated token");
        let prefill_ms = self.prefill_ms(model, prefill);
        let decode_ms = decode as f64 * self.decode_token_ms(model);
        let e_prefill = self.power.watts_at(self.prefill_utilization) * prefill_ms / 1e3;
        let e_decode = self.power.watts_at(self.decode_utilization) * decode_ms / 1e3;
        let energy = e_prefill + e_decode;
        GpuGenerationReport {
            prefill_tokens: prefill,
            decode_tokens: decode,
            prefill_ms,
            decode_ms,
            total_ms: prefill_ms + decode_ms,
            energy_joules: energy,
            tokens_per_joule: decode as f64 / energy,
        }
    }
}

impl Default for A100Model {
    fn default() -> Self {
        Self::paper_baseline()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn model() -> ModelConfig {
        ModelConfig::gpt2_medium()
    }

    #[test]
    fn decode_is_launch_bound() {
        let g = A100Model::paper_baseline();
        let total = g.decode_token_ms(&model());
        let launch = g.launch_ms(&model());
        assert!(launch / total > 0.9, "decode must be overhead-dominated");
        // the calibration band: ~9-11 ms per token for GPT-2 medium
        assert!((8.0..12.0).contains(&total), "decode token {total} ms");
    }

    #[test]
    fn prefill_amortizes_launches() {
        let g = A100Model::paper_baseline();
        let m = model();
        let p128 = g.prefill_ms(&m, 128);
        let serial = 128.0 * g.decode_token_ms(&m);
        assert!(
            p128 < serial / 10.0,
            "batched prefill should crush serial: {p128} vs {serial}"
        );
    }

    #[test]
    fn prefill_grows_sublinearly_then_compute_bound() {
        let g = A100Model::paper_baseline();
        let m = model();
        let p1 = g.prefill_ms(&m, 1);
        let p128 = g.prefill_ms(&m, 128);
        let p1024 = g.prefill_ms(&m, 1024);
        assert!(p128 < 2.0 * p1, "small prefills are overhead-bound");
        assert!(p1024 > p128, "very long prompts become compute-bound");
    }

    #[test]
    fn generation_totals_consistent() {
        let g = A100Model::paper_baseline();
        let r = g.generation(&model(), 32, 512);
        assert!((r.total_ms - (r.prefill_ms + r.decode_ms)).abs() < 1e-9);
        assert!(r.energy_joules > 0.0);
        assert!((r.tokens_per_joule - 512.0 / r.energy_joules).abs() < 1e-9);
    }

    #[test]
    fn decode_energy_rate_in_measured_band() {
        // ~0.5-0.8 J per decoded token (≈65 W × ≈10 ms)
        let g = A100Model::paper_baseline();
        let r = g.generation(&model(), 1, 100);
        let per_token = r.energy_joules / 100.0;
        assert!((0.4..0.9).contains(&per_token), "J/token {per_token}");
    }

    #[test]
    fn bigger_models_are_slower() {
        let g = A100Model::paper_baseline();
        assert!(
            g.decode_token_ms(&ModelConfig::gpt2_xl()) > g.decode_token_ms(&model()),
            "more layers mean more launches"
        );
    }

    #[test]
    #[should_panic(expected = "prompt must not be empty")]
    fn empty_prompt_rejected() {
        let _ = A100Model::paper_baseline().prefill_ms(&model(), 0);
    }
}
