//! Causal multi-head attention over the quantized KV cache.
//!
//! Mirrors the fused MHA kernel's structure (paper Fig. 6(b)): a first MAC
//! array computes integer attention scores per head from the key cache, a
//! mask unit keeps only forward attention, the two-phase softmax produces
//! weighted scores, and a second MAC array mixes the cached values. Scores
//! and token mixing run on the int8 path with i32 accumulation; softmax
//! runs in f32.
//!
//! `head_range` selects which *global* heads to compute while
//! `cache_head_offset` maps them onto the (possibly head-sliced) cache —
//! a node that owns heads 8‥16 passes the same query slice it produced and
//! offset 0 into its local cache, and obtains bit-identical results to the
//! corresponding slice of a full-width computation (per-head quantization
//! makes the partition boundary exact).

use std::ops::Range;

use looplynx_tensor::activation::{causal_mask, softmax};
use looplynx_tensor::quant::{quantize_vec, QuantizedVector};

use crate::kv_cache::LayerKvCache;

/// Integer dot product between two int8 slices.
fn dot_i8(a: &[i8], b: &[i8]) -> i32 {
    a.iter().zip(b).map(|(&x, &y)| x as i32 * y as i32).sum()
}

/// Computes attention for `head_range` of the query `q`.
///
/// * `q` — the query slice held by the caller (`q.len()` must equal
///   `head_range.len() × d_head`; a full-width caller passes the full
///   query and `0..heads`).
/// * `cache` — KV cache whose local head 0 corresponds to global head
///   `cache_head_offset`.
/// * `valid_len` — cache positions attended (own position + predecessors).
///
/// Returns the concatenated per-head outputs.
///
/// # Panics
///
/// Panics if geometry is inconsistent or `valid_len` exceeds the cache.
pub fn attend_heads(
    q: &[f32],
    cache: &LayerKvCache,
    head_range: Range<usize>,
    cache_head_offset: usize,
    d_head: usize,
    valid_len: usize,
) -> Vec<f32> {
    assert_eq!(
        q.len(),
        head_range.len() * d_head,
        "query length mismatch for head range"
    );
    assert!(valid_len <= cache.len(), "valid_len beyond cache");
    assert!(valid_len > 0, "attention needs at least one cached token");
    assert!(
        head_range.start >= cache_head_offset
            && head_range.end - cache_head_offset <= cache.heads(),
        "head range outside cache slice"
    );

    let inv_sqrt = 1.0 / (d_head as f32).sqrt();
    let mut out = Vec::with_capacity(head_range.len() * d_head);

    for (local_idx, h) in head_range.clone().enumerate() {
        let cache_h = h - cache_head_offset;
        // --- first MAC array: integer attention scores from the key cache
        let q_h: QuantizedVector = quantize_vec(&q[local_idx * d_head..(local_idx + 1) * d_head]);
        let mut scores: Vec<f32> = (0..valid_len)
            .map(|t| {
                let k = cache.key_head(t, cache_h);
                let acc = dot_i8(q_h.data(), k.data());
                acc as f32 * q_h.scale() * k.scale() * inv_sqrt
            })
            .collect();
        // --- mask unit: only forward attention survives
        causal_mask(&mut scores, valid_len);
        // --- softmax unit (two phases internally)
        let weights = softmax(&scores);
        // --- second MAC array: token mixing over the value cache.
        // Attention weights are requantized to int8 so the mixing MACs stay
        // on the integer path; each cached head has its own value scale.
        let wq = quantize_vec(&weights);
        let mut acc = vec![0.0f32; d_head];
        for (t, &w8) in wq.data().iter().enumerate().take(valid_len) {
            if w8 == 0 {
                continue;
            }
            let v = cache.value_head(t, cache_h);
            let vs = v.scale() * wq.scale() * w8 as f32;
            for (a, &v8) in acc.iter_mut().zip(v.data()) {
                *a += v8 as f32 * vs;
            }
        }
        out.extend_from_slice(&acc);
    }
    out
}

/// Full-width attention over all heads of a full cache.
pub fn attend_all(
    q: &[f32],
    cache: &LayerKvCache,
    heads: usize,
    d_head: usize,
    valid_len: usize,
) -> Vec<f32> {
    attend_heads(q, cache, 0..heads, 0, d_head, valid_len)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cache_with(d_head: usize, tokens: &[(&[f32], &[f32])]) -> LayerKvCache {
        let mut c = LayerKvCache::new(d_head);
        for (k, v) in tokens {
            c.append(k, v);
        }
        c
    }

    #[test]
    fn single_token_attends_to_itself() {
        let v = [0.5f32, -0.5, 0.25, 1.0];
        let cache = cache_with(4, &[(&[1.0, 0.0, 0.0, 0.0], &v)]);
        let out = attend_all(&[1.0, 0.0, 0.0, 0.0], &cache, 1, 4, 1);
        // with one token, softmax weight is 1.0: output ≈ value vector
        for (o, expect) in out.iter().zip(&v) {
            assert!((o - expect).abs() < 0.05, "{o} vs {expect}");
        }
    }

    #[test]
    fn attention_prefers_matching_key() {
        let cache = cache_with(2, &[(&[4.0, 0.0], &[1.0, 0.0]), (&[0.0, 4.0], &[0.0, 1.0])]);
        let out = attend_all(&[4.0, 0.0], &cache, 1, 2, 2);
        assert!(
            out[0] > 0.8,
            "weight should concentrate on token 0: {out:?}"
        );
        assert!(out[1] < 0.2);
    }

    #[test]
    fn causal_masking_ignores_future_tokens() {
        let cache = cache_with(
            2,
            &[(&[1.0, 0.0], &[1.0, 1.0]), (&[1.0, 0.0], &[-9.0, -9.0])],
        );
        // valid_len = 1: the second (future) token must not contribute
        let out = attend_all(&[1.0, 0.0], &cache, 1, 2, 1);
        assert!(out[0] > 0.8 && out[1] > 0.8, "future token leaked: {out:?}");
    }

    #[test]
    fn head_partition_is_bit_identical_to_full() {
        let heads = 4;
        let d_head = 4;
        let d = heads * d_head;
        let mk = |t: usize| -> (Vec<f32>, Vec<f32>) {
            (
                (0..d).map(|i| ((i + t) as f32 * 0.37).sin()).collect(),
                (0..d)
                    .map(|i| ((i * (t + 1)) as f32 * 0.21).cos())
                    .collect(),
            )
        };
        let mut full = LayerKvCache::new(d_head);
        let mut lo_cache = LayerKvCache::new(d_head);
        let mut hi_cache = LayerKvCache::new(d_head);
        for t in 0..3 {
            let (k, v) = mk(t);
            full.append(&k, &v);
            lo_cache.append(&k[..d / 2], &v[..d / 2]);
            hi_cache.append(&k[d / 2..], &v[d / 2..]);
        }
        let q: Vec<f32> = (0..d).map(|i| (i as f32 * 0.11).sin()).collect();
        let reference = attend_all(&q, &full, heads, d_head, 3);
        // node 0 owns heads 0..2 with a local cache; node 1 owns heads 2..4
        let lo = attend_heads(&q[..d / 2], &lo_cache, 0..2, 0, d_head, 3);
        let hi = attend_heads(&q[d / 2..], &hi_cache, 2..4, 2, d_head, 3);
        let stitched: Vec<f32> = lo.into_iter().chain(hi).collect();
        assert_eq!(reference, stitched, "partitioned attention must be exact");
    }

    #[test]
    #[should_panic(expected = "beyond cache")]
    fn valid_len_checked() {
        let cache = cache_with(2, &[(&[1.0, 0.0], &[1.0, 0.0])]);
        let _ = attend_all(&[1.0, 0.0], &cache, 1, 2, 2);
    }

    #[test]
    #[should_panic(expected = "query length mismatch")]
    fn geometry_checked() {
        let cache = cache_with(2, &[(&[1.0, 0.0], &[1.0, 0.0])]);
        let _ = attend_all(&[1.0, 0.0, 3.0], &cache, 1, 2, 1);
    }

    #[test]
    #[should_panic(expected = "outside cache slice")]
    fn head_range_checked_against_cache() {
        let cache = cache_with(2, &[(&[1.0, 0.0], &[1.0, 0.0])]);
        // cache has 1 head but we ask for heads 0..2
        let _ = attend_heads(&[1.0, 0.0, 0.5, 0.5], &cache, 0..2, 0, 2, 1);
    }
}
