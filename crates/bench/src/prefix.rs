//! Multi-turn chat-trace prefix-cache benchmark.
//!
//! Measures what content-addressed prefix sharing bought: the prefill
//! cost of a chat workload where every turn re-submits the full
//! conversation history. Each turn's prompt is the system prompt, all
//! prior user/assistant spans, and one new user span — so with the
//! cache off the engine recomputes the whole history every turn, while
//! with the cache on it maps the cached pages and prefills only the
//! novel suffix. Conversations are interleaved round-robin, so the
//! index must hold every conversation's chain (plus the shared system
//! prompt) simultaneously.
//!
//! Both sides run at **equal arena bytes** (same page pool) and must
//! produce bit-identical token streams — the run asserts that, not just
//! the tests. The headline metric is *prefill amplification*: summed
//! cache-off prefill time over summed cache-on prefill time, i.e. how
//! many times more prompt tokens per second the same arena sustains on
//! this trace. The acceptance bar for the prefix-cache work is ≥ 2×.
//!
//! The `prefix` binary renders `BENCH_prefix.json`, embedding the
//! pinned pre-change baseline ([`BASELINE`]) so every run reports the
//! cache-off prefill throughput it is judged against.

use std::time::Instant;

use looplynx_core::backend::{FunctionalBackend, InferenceBackend, SamplerSpec};
use looplynx_core::engine::DistributedGpt2;
use looplynx_core::router::RingMode;
use looplynx_model::config::ModelConfig;
use looplynx_model::gpt2::Gpt2Model;
use looplynx_model::prefix::PrefixIndexStats;

use crate::hotpath::medium_shaped;

/// Timed repetitions per side; the best (lowest prefill time)
/// repetition is reported, matching the `hotpath` methodology.
pub const MEASURE_REPS: usize = 5;

/// Cache-off chat-trace prefill throughput of the **pre-change** tree
/// (PR 9 state: paged arena, no prefix sharing), measured on this repo
/// by this benchmark's cache-off side immediately before the prefix
/// cache landed. The cache-on side is judged as a multiple of this.
pub const BASELINE: Baseline = Baseline {
    captured_at: "pre-prefix-cache (PR 9 tree, cache-off side of this trace, best-of-5)",
    medium_prefill_tok_s_1node: 1621.5,
};

/// Pre-change reference numbers baked into the report.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Baseline {
    /// Where the numbers come from.
    pub captured_at: &'static str,
    /// Chat-trace prefill tokens/s, [`medium_shaped`], 1 node, no cache.
    pub medium_prefill_tok_s_1node: f64,
}

/// Shape of the chat trace both sides replay.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ChatTraceSpec {
    /// Concurrent conversations, interleaved round-robin.
    pub convs: usize,
    /// Turns per conversation.
    pub turns: usize,
    /// Shared system-prompt length (tokens) — identical across
    /// conversations, so even first turns hit the cache.
    pub system_tokens: usize,
    /// New user tokens per turn.
    pub user_tokens: usize,
    /// Assistant tokens decoded per turn.
    pub decode_tokens: usize,
    /// Tokens per KV page.
    pub page_tokens: usize,
    /// Page-pool size — identical on both sides (equal arena bytes).
    pub pool_pages: usize,
    /// Per-slot KV capacity (tokens).
    pub capacity: usize,
}

impl ChatTraceSpec {
    /// The full-sized trace.
    pub fn full() -> Self {
        ChatTraceSpec {
            convs: 4,
            turns: 4,
            system_tokens: 64,
            user_tokens: 8,
            decode_tokens: 8,
            page_tokens: 16,
            pool_pages: 48,
            capacity: 160,
        }
    }

    /// The CI-sized `--quick` trace.
    pub fn quick() -> Self {
        ChatTraceSpec {
            convs: 3,
            turns: 3,
            system_tokens: 48,
            user_tokens: 6,
            decode_tokens: 6,
            page_tokens: 16,
            pool_pages: 32,
            capacity: 128,
        }
    }
}

/// The full chat-trace report.
#[derive(Debug, Clone, PartialEq)]
pub struct PrefixReport {
    /// Model configuration name.
    pub model: String,
    /// Ring size.
    pub nodes: usize,
    /// The trace shape.
    pub spec: ChatTraceSpec,
    /// Total prompt tokens submitted across all prefills (both sides
    /// submit exactly this many; the cached side *computes* fewer).
    pub prompt_tokens: usize,
    /// Summed prefill time with the cache off (best repetition).
    pub off_prefill_ms: f64,
    /// Summed prefill time with the cache on (best repetition).
    pub on_prefill_ms: f64,
    /// `off_prefill_ms / on_prefill_ms` — the headline amplification.
    pub amplification: f64,
    /// Prompt tokens/s sustained by the cache-off side.
    pub off_prefill_tok_s: f64,
    /// Prompt tokens/s sustained by the cache-on side (same submitted
    /// tokens over less time — this is the amplified rate).
    pub on_prefill_tok_s: f64,
    /// Index statistics from the cache-on side's best repetition.
    pub stats: PrefixIndexStats,
    /// `hits / lookups` over the cache-on run.
    pub hit_rate: f64,
    /// Host wall-clock of the whole measurement.
    pub wall_s: f64,
    /// Whether the run used the reduced `--quick` trace.
    pub quick: bool,
}

/// One replay's outcome.
struct TraceOutcome {
    prefill_ms: f64,
    prompt_tokens: usize,
    tokens: Vec<Vec<u32>>,
    stats: Option<PrefixIndexStats>,
}

/// Deterministic token material (tiny LCG; no rand dependency).
fn lcg_tokens(state: &mut u64, n: usize, vocab: usize) -> Vec<u32> {
    (0..n)
        .map(|_| {
            *state = state
                .wrapping_mul(6_364_136_223_846_793_005)
                .wrapping_add(1_442_695_040_888_963_407);
            ((*state >> 33) % vocab as u64) as u32
        })
        .collect()
}

/// Replays the chat trace once. Conversations advance round-robin:
/// admit the next turn (full history as the prompt), decode the
/// assistant span, release (which, cache-on, registers the chain).
fn run_trace(model: &Gpt2Model, vocab: usize, spec: &ChatTraceSpec, cache: bool) -> TraceOutcome {
    let mut engine = DistributedGpt2::with_paged_slots(
        model,
        1,
        RingMode::Exact,
        2,
        spec.capacity,
        spec.page_tokens,
        spec.pool_pages,
    )
    .expect("benchmark model partitions");
    if cache {
        engine.enable_prefix_cache();
    }
    let mut b = FunctionalBackend::new(engine, SamplerSpec::Greedy);

    let mut seed = 0x00C0_FFEEu64;
    let system = lcg_tokens(&mut seed, spec.system_tokens, vocab);
    let users: Vec<Vec<Vec<u32>>> = (0..spec.convs)
        .map(|_| {
            (0..spec.turns)
                .map(|_| lcg_tokens(&mut seed, spec.user_tokens, vocab))
                .collect()
        })
        .collect();

    let mut history: Vec<Vec<u32>> = vec![system.clone(); spec.convs];
    let mut tokens: Vec<Vec<u32>> = vec![Vec::new(); spec.convs];
    let mut prefill_ms = 0.0f64;
    let mut prompt_tokens = 0usize;

    for turn in 0..spec.turns {
        for (c, user) in users.iter().enumerate() {
            history[c].extend_from_slice(&user[turn]);
            let prompt = history[c].clone();
            prompt_tokens += prompt.len();
            let id = (c * spec.turns + turn) as u64;
            let p = b
                .prefill(prompt.len(), Some(&prompt), id)
                .expect("trace fits the arena");
            prefill_ms += p.elapsed_ms;
            let mut spoken = vec![p.first_token.expect("functional backend emits tokens")];
            for _ in 1..spec.decode_tokens {
                let out = b.decode_batch(&[p.slot]).expect("resident decodes");
                spoken.push(out.tokens.expect("functional backend emits tokens")[0]);
            }
            b.release(p.slot).expect("resident owns its slot");
            history[c].extend_from_slice(&spoken);
            tokens[c].extend_from_slice(&spoken);
        }
    }

    let stats = b.engine().prefix_stats();
    TraceOutcome {
        prefill_ms,
        prompt_tokens,
        tokens,
        stats,
    }
}

/// Measures the chat trace on `cfg`: both sides replay the identical
/// trace at equal arena bytes, [`MEASURE_REPS`] times each, best
/// (lowest prefill time) repetition reported. Asserts bit-identical
/// token streams between the sides on every repetition.
pub fn measure_model(cfg: &ModelConfig, spec: &ChatTraceSpec) -> PrefixReport {
    let model = Gpt2Model::synthetic(cfg, 4207);
    let t0 = Instant::now();

    let mut off_ms = f64::INFINITY;
    let mut reference: Option<Vec<Vec<u32>>> = None;
    let mut prompt_tokens = 0usize;
    for _ in 0..MEASURE_REPS {
        let out = run_trace(&model, cfg.vocab, spec, false);
        assert!(out.stats.is_none(), "cache-off side must not index");
        off_ms = off_ms.min(out.prefill_ms);
        prompt_tokens = out.prompt_tokens;
        if let Some(r) = &reference {
            assert_eq!(&out.tokens, r, "cache-off replay is nondeterministic");
        } else {
            reference = Some(out.tokens);
        }
    }
    let reference = reference.expect("at least one repetition ran");

    let mut on_ms = f64::INFINITY;
    let mut stats = None;
    for _ in 0..MEASURE_REPS {
        let out = run_trace(&model, cfg.vocab, spec, true);
        assert_eq!(
            out.tokens, reference,
            "prefix cache changed the trace's tokens"
        );
        if out.prefill_ms < on_ms {
            on_ms = out.prefill_ms;
            stats = out.stats;
        }
    }
    let stats = stats.expect("cache-on side reports stats");

    PrefixReport {
        model: cfg.name.clone(),
        nodes: 1,
        spec: *spec,
        prompt_tokens,
        off_prefill_ms: off_ms,
        on_prefill_ms: on_ms,
        amplification: if on_ms > 0.0 { off_ms / on_ms } else { 0.0 },
        off_prefill_tok_s: if off_ms > 0.0 {
            prompt_tokens as f64 / (off_ms / 1e3)
        } else {
            0.0
        },
        on_prefill_tok_s: if on_ms > 0.0 {
            prompt_tokens as f64 / (on_ms / 1e3)
        } else {
            0.0
        },
        hit_rate: if stats.lookups > 0 {
            stats.hits as f64 / stats.lookups as f64
        } else {
            0.0
        },
        stats,
        wall_s: t0.elapsed().as_secs_f64(),
        quick: false,
    }
}

/// Runs the benchmark on the [`medium_shaped`] configuration (the
/// weight-streaming-bound regime where recomputing a shared prefix is
/// pure waste). `quick` shrinks the trace, never the structure: every
/// turn still re-submits the full history.
pub fn measure(quick: bool) -> PrefixReport {
    let cfg = medium_shaped();
    let spec = if quick {
        ChatTraceSpec::quick()
    } else {
        ChatTraceSpec::full()
    };
    let mut report = measure_model(&cfg, &spec);
    report.quick = quick;
    report
}

fn json_f64(x: f64) -> String {
    if x.is_finite() {
        format!("{x:.3}")
    } else {
        "null".into()
    }
}

/// Renders the report (plus the pinned [`BASELINE`]) as a JSON document.
pub fn to_json(report: &PrefixReport) -> String {
    let s = &report.spec;
    let st = &report.stats;
    let mut out = String::from("{\n");
    out.push_str(&format!(
        "  \"baseline\": {{\n    \"captured_at\": \"{}\",\n    \"medium_prefill_tok_s_1node\": {}\n  }},\n",
        BASELINE.captured_at,
        json_f64(BASELINE.medium_prefill_tok_s_1node),
    ));
    out.push_str(&format!("  \"quick\": {},\n", report.quick));
    out.push_str(&format!(
        "  \"model\": \"{}\",\n  \"nodes\": {},\n",
        report.model, report.nodes
    ));
    out.push_str(&format!(
        "  \"trace\": {{\n    \"convs\": {},\n    \"turns\": {},\n    \"system_tokens\": {},\n    \"user_tokens\": {},\n    \"decode_tokens\": {},\n    \"page_tokens\": {},\n    \"pool_pages\": {},\n    \"capacity\": {}\n  }},\n",
        s.convs, s.turns, s.system_tokens, s.user_tokens, s.decode_tokens, s.page_tokens,
        s.pool_pages, s.capacity,
    ));
    out.push_str(&format!("  \"prompt_tokens\": {},\n", report.prompt_tokens));
    out.push_str(&format!(
        "  \"off_prefill_ms\": {},\n  \"on_prefill_ms\": {},\n",
        json_f64(report.off_prefill_ms),
        json_f64(report.on_prefill_ms),
    ));
    out.push_str(&format!(
        "  \"off_prefill_tok_s\": {},\n  \"on_prefill_tok_s\": {},\n",
        json_f64(report.off_prefill_tok_s),
        json_f64(report.on_prefill_tok_s),
    ));
    out.push_str(&format!(
        "  \"amplification\": {},\n",
        json_f64(report.amplification)
    ));
    out.push_str(&format!("  \"hit_rate\": {},\n", json_f64(report.hit_rate)));
    out.push_str(&format!(
        "  \"index\": {{\n    \"lookups\": {},\n    \"hits\": {},\n    \"reused_tokens\": {},\n    \"inserted\": {},\n    \"deduped\": {},\n    \"evicted\": {}\n  }},\n",
        st.lookups, st.hits, st.reused_tokens, st.inserted, st.deduped, st.evicted,
    ));
    out.push_str(&format!("  \"wall_s\": {}\n}}\n", json_f64(report.wall_s)));
    out
}

/// Renders a human-readable table.
pub fn render(report: &PrefixReport) -> String {
    let s = &report.spec;
    let st = &report.stats;
    format!(
        "PREFIX CACHE — multi-turn chat trace, equal arena bytes (host wall-clock)\n\
         model {} on {} node(s): {} convs × {} turns, system {} + user {} + assistant {} tokens/turn\n\
         \x20 cache off : {:>9.1} ms prefill, {:>9.1} tok/s\n\
         \x20 cache on  : {:>9.1} ms prefill, {:>9.1} tok/s\n\
         \x20 amplification : {:>5.2}x (bar: >= 2)\n\
         \x20 index: {}/{} hits ({:.0}% hit rate), {} tokens reused, {} inserted, {} deduped, {} evicted\n\
         pre-change cache-off prefill: {:.1} tok/s ({})\n",
        report.model,
        report.nodes,
        s.convs,
        s.turns,
        s.system_tokens,
        s.user_tokens,
        s.decode_tokens,
        report.off_prefill_ms,
        report.off_prefill_tok_s,
        report.on_prefill_ms,
        report.on_prefill_tok_s,
        report.amplification,
        st.hits,
        st.lookups,
        report.hit_rate * 100.0,
        st.reused_tokens,
        st.inserted,
        st.deduped,
        st.evicted,
        BASELINE.medium_prefill_tok_s_1node,
        BASELINE.captured_at,
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn chat_trace_amplifies_prefill_and_stays_exact() {
        // Full pipeline on the tiny config (max_seq 64) so the test
        // stays debug-fast: a shrunk trace whose work ratio (full
        // history vs novel suffix) is still ~3x, so the >= 2x bar holds
        // with timing margin; bit-exactness between the sides is
        // asserted inside `measure_model` on every repetition.
        let spec = ChatTraceSpec {
            convs: 3,
            turns: 3,
            system_tokens: 24,
            user_tokens: 4,
            decode_tokens: 4,
            page_tokens: 4,
            pool_pages: 40,
            capacity: 56,
        };
        let r = measure_model(&ModelConfig::tiny(), &spec);
        assert!(r.off_prefill_ms > 0.0 && r.on_prefill_ms > 0.0);
        assert!(
            r.amplification >= 2.0,
            "prefix cache failed the 2x amplification bar: {r:?}"
        );
        assert!(r.hit_rate > 0.0, "chat trace never hit the cache: {r:?}");
        assert!(r.stats.reused_tokens > 0, "hits reused nothing: {r:?}");
        // One lookup per prefill (stats come from a single repetition).
        assert_eq!(r.stats.lookups as usize, r.spec.convs * r.spec.turns);
    }

    #[test]
    fn json_is_wellformed_enough() {
        let report = PrefixReport {
            model: "medium-shaped".into(),
            nodes: 1,
            spec: ChatTraceSpec::full(),
            prompt_tokens: 1536,
            off_prefill_ms: 6000.0,
            on_prefill_ms: 750.0,
            amplification: 8.0,
            off_prefill_tok_s: 256.0,
            on_prefill_tok_s: 2048.0,
            stats: PrefixIndexStats {
                lookups: 16,
                hits: 15,
                reused_tokens: 1344,
                inserted: 40,
                deduped: 24,
                evicted: 0,
            },
            hit_rate: 15.0 / 16.0,
            wall_s: 30.0,
            quick: false,
        };
        let j = to_json(&report);
        assert_eq!(j.matches('{').count(), j.matches('}').count());
        assert_eq!(j.matches('[').count(), j.matches(']').count());
        assert!(j.contains("\"baseline\""));
        assert!(j.contains("\"amplification\": 8.000"));
        assert!(j.contains("\"hit_rate\": 0.938"));
        assert!(j.contains("\"reused_tokens\": 1344"));
        assert!(render(&report).contains("amplification"));
    }
}
