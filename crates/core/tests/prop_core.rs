//! Property-based tests for the LoopLynx architecture crate.

use proptest::prelude::*;

use looplynx_core::config::ArchConfig;
use looplynx_core::datapack::{datapacks_for, DataPack, DATAPACK_BYTES};
use looplynx_core::kernels::mha::{FusedMhaKernel, MhaJob};
use looplynx_core::kernels::mp::{FusedMpKernel, MpJob};
use looplynx_core::parallel::{shard_weights, split_range};
use looplynx_core::router::{RingMode, Router};
use looplynx_model::config::ModelConfig;
use looplynx_model::weights::Gpt2Weights;
use looplynx_tensor::quant::quantize_vec;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Datapack streams round-trip for arbitrary payload lengths.
    #[test]
    fn datapack_roundtrip(data in prop::collection::vec(any::<i8>(), 0..300)) {
        let packs = DataPack::pack_stream(&data);
        prop_assert_eq!(packs.len(), datapacks_for(data.len()));
        if !data.is_empty() {
            let back = DataPack::unpack_stream(&packs, data.len());
            prop_assert_eq!(back, data);
        }
        prop_assert!(packs.iter().all(|p| p.payload().len() == DATAPACK_BYTES));
    }

    /// MP kernel time is monotone in rows, cols and sync bytes.
    #[test]
    fn mp_timing_monotone(
        rows in 32usize..2048,
        cols in 32usize..2048,
        sync in 0usize..1024,
    ) {
        let cfg = ArchConfig::builder().nodes(4).build().expect("valid");
        let k = FusedMpKernel::new(&cfg);
        let base = k.timing(&MpJob { rows, cols, sync_bytes: sync, batch: 1 }).total;
        let more_rows = k.timing(&MpJob { rows: rows * 2, cols, sync_bytes: sync, batch: 1 }).total;
        let more_cols = k.timing(&MpJob { rows, cols: cols * 2, sync_bytes: sync, batch: 1 }).total;
        let more_sync = k.timing(&MpJob { rows, cols, sync_bytes: sync + 4096, batch: 1 }).total;
        prop_assert!(more_rows >= base);
        prop_assert!(more_cols >= base);
        prop_assert!(more_sync >= base);
    }

    /// MP kernel time never beats the aggregate memory bound.
    #[test]
    fn mp_never_beats_memory_bound(rows in 32usize..4096, cols in 32usize..4096) {
        let cfg = ArchConfig::builder().nodes(1).build().expect("valid");
        let k = FusedMpKernel::new(&cfg);
        let t = k.timing(&MpJob { rows, cols, sync_bytes: 0, batch: 1 }).total.as_f64();
        let peak = cfg.mp_channels() as f64 * cfg.hbm_channel().peak_bytes_per_cycle();
        let ideal = (rows * cols) as f64 / peak;
        prop_assert!(t >= ideal, "{t} beats memory bound {ideal}");
    }

    /// MHA timing is monotone in context and heads.
    #[test]
    fn mha_timing_monotone(context in 1usize..1024, heads in 1usize..16) {
        let cfg = ArchConfig::paper();
        let k = FusedMhaKernel::new(&cfg);
        let job = MhaJob { heads, d_head: 64, context, sync_bytes: 0 };
        let base = k.timing(&job).total;
        let deeper = k.timing(&MhaJob { context: context + 64, ..job }).total;
        let wider = k.timing(&MhaJob { heads: heads + 1, ..job }).total;
        prop_assert!(deeper >= base);
        prop_assert!(wider >= base);
    }

    /// split_range parts are contiguous, ordered, near-equal and complete.
    #[test]
    fn split_range_properties(total in 0usize..100_000, parts in 1usize..128) {
        let mut end = 0usize;
        let mut min_len = usize::MAX;
        let mut max_len = 0usize;
        for i in 0..parts {
            let r = split_range(total, parts, i);
            prop_assert_eq!(r.start, end);
            end = r.end;
            min_len = min_len.min(r.len());
            max_len = max_len.max(r.len());
        }
        prop_assert_eq!(end, total);
        prop_assert!(max_len - min_len <= 1, "unbalanced: {min_len}..{max_len}");
    }

    /// Weight shards tile the model exactly for every legal ring size:
    /// byte totals match and stitched linear outputs equal the full layer.
    #[test]
    fn shards_tile_model(nodes in prop::sample::select(vec![1usize, 2, 4]), seed in 0u64..50) {
        let cfg = ModelConfig::tiny();
        let w = Gpt2Weights::synthetic(&cfg, seed);
        let shards = shard_weights(&w, &cfg, nodes).expect("tiny partitions");
        let total: usize = shards.iter().map(|s| s.weight_bytes()).sum();
        prop_assert_eq!(total, cfg.weights_bytes_total());
        // stitched fc1 output equals the unsharded fc1
        let x = quantize_vec(&(0..cfg.d_model).map(|i| (i as f32 * 0.1).sin()).collect::<Vec<_>>());
        let full = w.blocks[0].fc1.forward(&x);
        let stitched: Vec<f32> = shards.iter().flat_map(|s| s.layers[0].fc1.forward(&x)).collect();
        prop_assert_eq!(full, stitched);
    }

    /// Exact-mode gather equals concatenation; quantized-mode gather stays
    /// within one quantization step per shard.
    #[test]
    fn router_modes_agree(
        nodes in 1usize..5,
        shard_len in 1usize..32,
        seed in any::<u64>(),
    ) {
        let shards: Vec<Vec<f32>> = (0..nodes)
            .map(|n| {
                (0..shard_len)
                    .map(|i| (((seed >> (n % 7)) as usize + i * 13) % 100) as f32 / 25.0 - 2.0)
                    .collect()
            })
            .collect();
        let exact = Router::new(nodes, RingMode::Exact).all_gather(&shards);
        let quant = Router::new(nodes, RingMode::Quantized).all_gather(&shards);
        prop_assert_eq!(exact.len(), quant.len());
        for (n, shard) in shards.iter().enumerate() {
            let step = shard.iter().fold(0.0f32, |m, &x| m.max(x.abs())) / 127.0;
            for (i, _) in shard.iter().enumerate() {
                let idx = n * shard_len + i;
                prop_assert!(
                    (exact[idx] - quant[idx]).abs() <= step / 2.0 + 1e-6,
                    "shard {n} elem {i}: {} vs {}", exact[idx], quant[idx]
                );
            }
        }
    }

    /// Any valid builder configuration yields self-consistent derived
    /// quantities.
    #[test]
    fn config_derived_quantities_consistent(
        nodes in prop::sample::select(vec![1usize, 2, 4, 8]),
        mp in 2usize..12,
        kv in prop::sample::select(vec![2usize, 4]),
    ) {
        prop_assume!((mp + kv) * 2 <= 32 || nodes == 1);
        let cfg = ArchConfig::builder()
            .nodes(nodes)
            .mp_channels(mp)
            .kv_channels(kv)
            .build();
        prop_assume!(cfg.is_ok());
        let cfg = cfg.unwrap();
        prop_assert_eq!(cfg.channels_per_node(), mp + kv);
        prop_assert_eq!(cfg.devices(), nodes.div_ceil(2));
        let eff = cfg.channel_bytes_per_cycle();
        prop_assert!(eff > 0.0 && eff <= cfg.hbm_channel().peak_bytes_per_cycle());
        prop_assert!(cfg.power_watts(1.0) > cfg.power_watts(0.0));
    }
}
